"""Facade tying specification, PDE and kernel variants together.

``KernelGenerator`` is the analog of invoking ExaHyPE's Toolkit /
Kernel Generator on a specification file: it instantiates the requested
STP kernel variant, records its execution plan and can render a C-like
source listing of the generated kernel.
"""

from __future__ import annotations

from repro.codegen.plan import KernelPlan
from repro.codegen.render import render_plan
from repro.core.spec import VARIANTS, KernelSpec
from repro.pde.base import LinearPDE

__all__ = ["KernelGenerator"]


class KernelGenerator:
    """Generate STP kernels tailored to an application and architecture."""

    def __init__(self, spec: KernelSpec, pde: LinearPDE):
        if pde.nquantities != spec.nquantities:
            raise ValueError(
                f"spec expects m={spec.nquantities} quantities but "
                f"{pde.name} has m={pde.nquantities}"
            )
        self.spec = spec
        self.pde = pde

    def kernel(self, variant: str):
        """Instantiate the requested STP kernel variant.

        Accepts the four paper variants plus the opt-in extensions in
        :data:`repro.core.variants.KERNEL_CLASSES` (e.g. the Sec. V-A
        ``transpose_uf`` alternative).
        """
        # Imported lazily: the variants package depends on this package.
        from repro.core.variants import make_kernel

        return make_kernel(variant, self.spec, self.pde)

    def plan(self, variant: str) -> KernelPlan:
        """Record the operation plan of one kernel invocation."""
        return self.kernel(variant).build_plan()

    def render(self, variant: str) -> str:
        """Render a C-like source listing of the generated kernel."""
        return render_plan(self.plan(variant), self.spec)

    def lower(self, variant: str) -> str:
        """Generated executable kernel source for the variant's plan.

        The compiled backend's view of the same plan :meth:`render`
        shows as a C-like listing; see :mod:`repro.codegen.lowering`.
        """
        from repro.codegen.lowering import lower_plan

        return lower_plan(self.plan(variant), self.pde)

    def plans(self, variants=None) -> dict[str, KernelPlan]:
        """Plans for the requested variants (default: the paper's four).

        Unknown variant names raise ``ValueError`` up front -- before
        any plan is recorded -- naming the offender and the available
        registry.
        """
        from repro.core.variants import KERNEL_CLASSES

        selected = tuple(VARIANTS if variants is None else variants)
        unknown = [v for v in selected if v not in KERNEL_CLASSES]
        if unknown:
            raise ValueError(
                f"unknown variant names {unknown!r}; available: "
                f"{sorted(KERNEL_CLASSES)}"
            )
        return {v: self.plan(v) for v in selected}
