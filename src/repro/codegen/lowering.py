"""Lower kernel plans to compiled-backend source (the native-kernel view).

:mod:`repro.codegen.render` shows a recorded :class:`~repro.codegen.plan.
KernelPlan` as a *C-like listing* for inspection; this module goes one
step further and emits **executable** kernel source for the same
operation stream: plain Python functions over contiguous ``float64``
arrays, written so that ``numba.njit`` compiles every loop nest to
native code (the Loop-over-GEMM contractions, the PDE user functions,
the Rusanov face sweep and the corrector's surface lifting).

Two properties make the generated source the conformance anchor of the
compiled backend:

* it is **valid Python** -- the test-suite executes it *without* Numba
  on tiny problems and checks round-off-level agreement against the
  NumPy executor, so the generated numerics are verified even on
  machines where Numba is absent;
* it is **deterministic** -- equal ``(family, spec, PDE)`` inputs yield
  byte-identical source (enforced by a regression test), so the
  process-wide plan registry can key compiled artifacts structurally.

Only PDEs with a registered flux template can be lowered
(:func:`supports_pde`); everything else falls back to the NumPy
executor at run time.  Non-conservative products are not lowered --
the NCP systems stay on the NumPy path.
"""

from __future__ import annotations

import time

from repro.pde.base import LinearPDE
from repro.pde.elastic import _NORMAL, _SHEAR, _SHEAR_V, VX

__all__ = [
    "FAMILY_OF_VARIANT",
    "variant_family",
    "supports_pde",
    "unsupported_reason",
    "pde_token",
    "generate_module_source",
    "compile_module",
    "lower_plan",
]

#: kernel-loop family of each STP variant: the SplitCK single-time-level
#: recurrence (Sec. IV) or the full space-time storage loop (Fig. 1 /
#: Sec. III).  The compiled backend lowers one loop nest per family on
#: the canonical ``(b, N, N, N, m)`` layout -- layout games (AoS
#: padding, AoSoA) are a NumPy-executor concern; compiled loops are
#: already vectorized by the compiler.
FAMILY_OF_VARIANT = {
    "splitck": "splitck",
    "transpose_uf": "splitck",
    "aosoa": "splitck",
    "log": "spacetime",
    "generic": "spacetime",
}


def variant_family(variant: str) -> str:
    """Loop family of ``variant``; raises ``ValueError`` when unknown."""
    try:
        return FAMILY_OF_VARIANT[variant]
    except KeyError:
        raise ValueError(
            f"unknown variant {variant!r}; available: {sorted(FAMILY_OF_VARIANT)}"
        ) from None


# ---------------------------------------------------------------------------
# per-PDE user-function templates
# ---------------------------------------------------------------------------


def _advection_flux(pde, d: int) -> list[str]:
    v = repr(float(pde.velocity[d]))
    return [
        "for s in range(M):",
        f"    f[k, s] = {v} * q[k, s]",
    ]


def _advection_wave(pde) -> list[str]:
    import numpy as np

    speed = repr(float(np.max(np.abs(pde.velocity))))
    return [f"ws = {speed}"]


def _acoustic_flux(pde, d: int) -> list[str]:
    del pde
    return [
        "rho = q[k, 4]",
        "c = q[k, 5]",
        "for s in range(M):",
        "    f[k, s] = 0.0",
        f"f[k, 0] = rho * c * c * q[k, {1 + d}]",
        f"f[k, {1 + d}] = q[k, 0] / rho",
    ]


def _acoustic_wave(pde) -> list[str]:
    del pde
    return ["ws = abs(q[k, 5])"]


def _elastic_material_lines(nvar: int) -> list[str]:
    return [
        f"rho = q[k, {nvar + 0}]",
        f"cp = q[k, {nvar + 1}]",
        f"cs = q[k, {nvar + 2}]",
        "mu = rho * cs * cs",
        "lam = rho * (cp * cp - 2.0 * cs * cs)",
        "inv_rho = 1.0 / rho",
    ]


def _cartesian_elastic_components(b: int) -> dict[int, str]:
    """Nonzero Cartesian elastic flux components of direction ``b``.

    Expression strings in terms of ``q[k, j]`` and the material locals
    of :func:`_elastic_material_lines`; mirrors
    :meth:`repro.pde.elastic.ElasticPDE.flux` statement by statement.
    """
    comp: dict[int, str] = {}
    comp[VX + b] = f"-q[k, {_NORMAL[b]}] * inv_rho"
    for shear_idx, v_idx in zip(_SHEAR[b], _SHEAR_V[b]):
        comp[v_idx] = f"-q[k, {shear_idx}] * inv_rho"
    for a, idx in enumerate(_NORMAL):
        coeff = "(lam + 2.0 * mu)" if a == b else "lam"
        comp[idx] = f"-{coeff} * q[k, {VX + b}]"
    for shear_idx, v_idx in zip(_SHEAR[b], _SHEAR_V[b]):
        comp[shear_idx] = f"-mu * q[k, {v_idx}]"
    return comp


def _elastic_flux(pde, d: int) -> list[str]:
    del pde
    lines = _elastic_material_lines(9)
    lines += ["for s in range(M):", "    f[k, s] = 0.0"]
    for j, expr in sorted(_cartesian_elastic_components(d).items()):
        lines.append(f"f[k, {j}] = {expr}")
    return lines


def _elastic_wave(pde) -> list[str]:
    del pde
    return ["ws = abs(q[k, 10])"]


def _curvilinear_flux(pde, d: int) -> list[str]:
    del pde
    lines = _elastic_material_lines(9)
    for b in range(3):
        lines.append(f"g{b} = q[k, {12 + 3 * d + b}]")
    lines += ["for s in range(M):", "    f[k, s] = 0.0"]
    comps = [_cartesian_elastic_components(b) for b in range(3)]
    for j in range(9):
        terms = [
            f"g{b} * ({comps[b][j]})" for b in range(3) if j in comps[b]
        ]
        lines.append(f"f[k, {j}] = " + " + ".join(terms))
    return lines


def _curvilinear_wave(pde) -> list[str]:
    del pde
    lines = []
    for row in range(3):
        g = [f"q[k, {12 + 3 * row + col}]" for col in range(3)]
        lines.append(
            f"rn{row} = np.sqrt({g[0]} * {g[0]} + {g[1]} * {g[1]} + "
            f"{g[2]} * {g[2]})"
        )
    lines.append("ws = abs(q[k, 10]) * max(max(rn0, rn1), rn2)")
    return lines


#: PDE name -> (flux template, wave-speed template).  Flux templates
#: emit statements assigning every quantity slot of ``f[k, :]`` from
#: ``q[k, :]`` for a generation-time direction ``d``; wave templates
#: set the local ``ws``.
_PDE_TEMPLATES = {
    "advection": (_advection_flux, _advection_wave),
    "acoustic": (_acoustic_flux, _acoustic_wave),
    "elastic": (_elastic_flux, _elastic_wave),
    "curvilinear_elastic": (_curvilinear_flux, _curvilinear_wave),
}


def unsupported_reason(pde: LinearPDE) -> str | None:
    """Why ``pde`` cannot be lowered (``None`` when it can)."""
    if getattr(pde, "has_ncp", False):
        return f"{pde.name}: non-conservative products are not lowered"
    if not getattr(pde, "is_linear", True):
        return f"{pde.name}: only linear systems are lowered"
    if pde.name not in _PDE_TEMPLATES:
        return (
            f"no flux template registered for PDE {pde.name!r}; "
            f"available: {sorted(_PDE_TEMPLATES)}"
        )
    return None


def supports_pde(pde: LinearPDE) -> bool:
    """Whether the compiled backend can lower this PDE's user functions."""
    return unsupported_reason(pde) is None


def pde_token(pde: LinearPDE) -> tuple:
    """Hashable generation key of a PDE (name, sizes, flux constants)."""
    extra: tuple = ()
    if pde.name == "advection":
        extra = tuple(float(v) for v in pde.velocity)
    return (pde.name, pde.nvar, pde.nparam, extra)


# ---------------------------------------------------------------------------
# source emission
# ---------------------------------------------------------------------------


def _emit_def(out: list[str], header: str, body: list[str]) -> None:
    out.append(f"def {header}:")
    for line in body:
        out.append("    " + line)
    out.append("")
    out.append("")


def _flux_fn(pde: LinearPDE, d: int) -> list[str]:
    flux_tpl, _ = _PDE_TEMPLATES[pde.name]
    body = [
        f'"""Generated {pde.name} flux, direction {d}, on (K, M) nodes."""',
        "for k in range(q.shape[0]):",
    ]
    body += ["    " + line for line in flux_tpl(pde, d)]
    return body


def _wave_fn(pde: LinearPDE) -> list[str]:
    _, wave_tpl = _PDE_TEMPLATES[pde.name]
    body = [
        f'"""Generated {pde.name} max wave speed on (K, M) nodes."""',
        "for k in range(q.shape[0]):",
    ]
    body += ["    " + line for line in wave_tpl(pde)]
    body += ["    out[k] = ws"]
    return body


_HELPERS = """\
def _fill(a, v):
    \"\"\"Set every entry of the flat array ``a`` to ``v``.\"\"\"
    for i in range(a.shape[0]):
        a[i] = v


def _copy(dst, src):
    \"\"\"Copy the flat array ``src`` into ``dst``.\"\"\"
    for i in range(dst.shape[0]):
        dst[i] = src[i]


def _axpy(dst, c, src):
    \"\"\"Accumulate ``dst += c * src`` over flat arrays.\"\"\"
    for i in range(dst.shape[0]):
        dst[i] += c * src[i]


def _set_params(dst, src):
    \"\"\"Copy the static parameter slots of ``src`` into ``dst`` (K, M).\"\"\"
    for k in range(dst.shape[0]):
        for s in range(NVAR, M):
            dst[k, s] = src[k, s]


def _scale_params(dst, src, c):
    \"\"\"Write ``c`` times the parameter slots of ``src`` into ``dst``.\"\"\"
    for k in range(dst.shape[0]):
        for s in range(NVAR, M):
            dst[k, s] = c * src[k, s]
"""

#: per-direction contraction loop nests: the canonical-axis twin of
#: :func:`repro.tensor.contraction.block_contract_axis` (d -> axis map
#: is AXIS_OF_DIM shifted by the block axis; always accumulating).
_CONTRACT = """\
def contract_d0(mat, src, dst):
    \"\"\"dst[e,z,y,l,s] += mat[l,j] src[e,z,y,j,s] (x-derivative LoG).\"\"\"
    for e in range(src.shape[0]):
        for z in range(N):
            for y in range(N):
                for l in range(N):
                    for j in range(N):
                        w = mat[l, j]
                        for s in range(M):
                            dst[e, z, y, l, s] += w * src[e, z, y, j, s]


def contract_d1(mat, src, dst):
    \"\"\"dst[e,z,l,x,s] += mat[l,j] src[e,z,j,x,s] (y-derivative LoG).\"\"\"
    for e in range(src.shape[0]):
        for z in range(N):
            for l in range(N):
                for j in range(N):
                    w = mat[l, j]
                    for x in range(N):
                        for s in range(M):
                            dst[e, z, l, x, s] += w * src[e, z, j, x, s]


def contract_d2(mat, src, dst):
    \"\"\"dst[e,l,y,x,s] += mat[l,j] src[e,j,y,x,s] (z-derivative LoG).\"\"\"
    for e in range(src.shape[0]):
        for l in range(N):
            for j in range(N):
                w = mat[l, j]
                for y in range(N):
                    for x in range(N):
                        for s in range(M):
                            dst[e, l, y, x, s] += w * src[e, j, y, x, s]
"""

_STP_SPLITCK = """\
def stp_splitck(q, dt, coef, nderiv, src, src_mask, p, pnext, flx, qavg, favg0, favg1, favg2, savg):
    \"\"\"SplitCK recurrence (Sec. IV) on a canonical (b, N, N, N, M) block.

    Mirrors ``BatchedSTP._block_splitck`` statement by statement on the
    unpadded layout: Taylor accumulation, three flux + LoG-derivative
    stages per degree, source injection, parameter refresh, then the
    ``favg_d = V_d qavg`` recomputation.  All outputs are written in
    place; ``src``/``src_mask`` carry the per-element point-source
    terms (``src`` is only read where the mask is set).
    \"\"\"
    b = q.shape[0]
    _copy(p.reshape(-1), q.reshape(-1))
    _fill(qavg.reshape(-1), 0.0)
    _fill(savg.reshape(-1), 0.0)
    for o in range(N):
        c = coef[o]
        _axpy(qavg.reshape(-1), c, p.reshape(-1))
        _fill(pnext.reshape(-1), 0.0)
        flux_d0(p.reshape(-1, M), flx.reshape(-1, M))
        contract_d0(nderiv, flx, pnext)
        flux_d1(p.reshape(-1, M), flx.reshape(-1, M))
        contract_d1(nderiv, flx, pnext)
        flux_d2(p.reshape(-1, M), flx.reshape(-1, M))
        contract_d2(nderiv, flx, pnext)
        for e in range(b):
            if src_mask[e]:
                _axpy(pnext[e].reshape(-1), 1.0, src[e, o].reshape(-1))
                _axpy(savg[e].reshape(-1), c, src[e, o].reshape(-1))
        _set_params(pnext.reshape(-1, M), q.reshape(-1, M))
        swap = p
        p = pnext
        pnext = swap
    _set_params(qavg.reshape(-1, M), q.reshape(-1, M))
    _fill(favg0.reshape(-1), 0.0)
    _fill(favg1.reshape(-1), 0.0)
    _fill(favg2.reshape(-1), 0.0)
    flux_d0(qavg.reshape(-1, M), flx.reshape(-1, M))
    contract_d0(nderiv, flx, favg0)
    flux_d1(qavg.reshape(-1, M), flx.reshape(-1, M))
    contract_d1(nderiv, flx, favg1)
    flux_d2(qavg.reshape(-1, M), flx.reshape(-1, M))
    contract_d2(nderiv, flx, favg2)
    _scale_params(qavg.reshape(-1, M), q.reshape(-1, M), dt)
"""

_STP_SPACETIME = """\
def stp_spacetime(q, dt, coef, nderiv, src, src_mask, pst, dfst, flx, qavg, favg0, favg1, favg2, savg):
    \"\"\"Full space-time-storage CK loop (Fig. 1) on a canonical block.

    Mirrors ``BatchedSTP._block_spacetime``: every Taylor degree keeps
    its own ``p`` level (``pst``, ``(N+1, b, N, N, N, M)``) and
    directional derivative (``dfst``, ``(N, 3, b, N, N, N, M)``); the
    time-averaged outputs are Taylor-weighted sums over the stored
    levels.
    \"\"\"
    b = q.shape[0]
    _fill(pst.reshape(-1), 0.0)
    _copy(pst[0].reshape(-1), q.reshape(-1))
    for o in range(N):
        flux_d0(pst[o].reshape(-1, M), flx.reshape(-1, M))
        _fill(dfst[o, 0].reshape(-1), 0.0)
        contract_d0(nderiv, flx, dfst[o, 0])
        flux_d1(pst[o].reshape(-1, M), flx.reshape(-1, M))
        _fill(dfst[o, 1].reshape(-1), 0.0)
        contract_d1(nderiv, flx, dfst[o, 1])
        flux_d2(pst[o].reshape(-1, M), flx.reshape(-1, M))
        _fill(dfst[o, 2].reshape(-1), 0.0)
        contract_d2(nderiv, flx, dfst[o, 2])
        nxt = pst[o + 1]
        _axpy(nxt.reshape(-1), 1.0, dfst[o, 0].reshape(-1))
        _axpy(nxt.reshape(-1), 1.0, dfst[o, 1].reshape(-1))
        _axpy(nxt.reshape(-1), 1.0, dfst[o, 2].reshape(-1))
        for e in range(b):
            if src_mask[e]:
                _axpy(nxt[e].reshape(-1), 1.0, src[e, o].reshape(-1))
        _set_params(nxt.reshape(-1, M), q.reshape(-1, M))
    _fill(qavg.reshape(-1), 0.0)
    _fill(savg.reshape(-1), 0.0)
    for o in range(N):
        _axpy(qavg.reshape(-1), coef[o], pst[o].reshape(-1))
    _fill(favg0.reshape(-1), 0.0)
    _fill(favg1.reshape(-1), 0.0)
    _fill(favg2.reshape(-1), 0.0)
    for o in range(N):
        _axpy(favg0.reshape(-1), coef[o], dfst[o, 0].reshape(-1))
    for o in range(N):
        _axpy(favg1.reshape(-1), coef[o], dfst[o, 1].reshape(-1))
    for o in range(N):
        _axpy(favg2.reshape(-1), coef[o], dfst[o, 2].reshape(-1))
    for e in range(b):
        if src_mask[e]:
            for o in range(N):
                _axpy(savg[e].reshape(-1), coef[o], src[e, o].reshape(-1))
    _scale_params(qavg.reshape(-1, M), q.reshape(-1, M), dt)
"""


def _riemann_fn(d: int) -> list[str]:
    return [
        f'"""Rusanov flux over flattened face nodes, direction {d}.',
        "",
        "``ql`` / ``qr`` are parameter-embedded (K, M) face states;",
        "scratch ``fl``/``fr``/``sl``/``sr`` and the output are caller",
        "buffers.  Mirrors :func:`repro.engine.riemann.rusanov_flux`.",
        '"""',
        f"flux_d{d}(ql, fl)",
        f"flux_d{d}(qr, fr)",
        "wave_speed(ql, sl)",
        "wave_speed(qr, sr)",
        "for k in range(ql.shape[0]):",
        "    smax = sl[k] if sl[k] > sr[k] else sr[k]",
        "    for s in range(M):",
        "        out[k, s] = 0.5 * (fl[k, s] + fr[k, s])",
        "    for s in range(NVAR):",
        "        out[k, s] -= 0.5 * smax * (qr[k, s] - ql[k, s])",
    ]


_CORRECTOR = """\
def corrector_apply(q, vavg, sterm, jumps, lift_l, lift_r, inv_h, out):
    \"\"\"Corrector volume update + six surface lifts (paper eq. 5).

    ``jumps`` holds the precomputed ``F* - F(qface)`` per element face,
    ``(b, 3, 2, N, N, M)``; ``sterm`` the dense time-integrated source
    block (zero where no source).  Mirrors
    :func:`repro.core.corrector.corrector_all` in update order.
    \"\"\"
    b = q.shape[0]
    qf = q.reshape(-1)
    vf = vavg.reshape(-1)
    sf = sterm.reshape(-1)
    of = out.reshape(-1)
    for i in range(qf.shape[0]):
        of[i] = qf[i] + vf[i] + sf[i]
    for e in range(b):
        for z in range(N):
            for y in range(N):
                for x in range(N):
                    for s in range(M):
                        out[e, z, y, x, s] += inv_h * lift_l[x] * jumps[e, 0, 0, z, y, s]
        for z in range(N):
            for y in range(N):
                for x in range(N):
                    for s in range(M):
                        out[e, z, y, x, s] -= inv_h * lift_r[x] * jumps[e, 0, 1, z, y, s]
        for z in range(N):
            for y in range(N):
                for x in range(N):
                    for s in range(M):
                        out[e, z, y, x, s] += inv_h * lift_l[y] * jumps[e, 1, 0, z, x, s]
        for z in range(N):
            for y in range(N):
                for x in range(N):
                    for s in range(M):
                        out[e, z, y, x, s] -= inv_h * lift_r[y] * jumps[e, 1, 1, z, x, s]
        for z in range(N):
            for y in range(N):
                for x in range(N):
                    for s in range(M):
                        out[e, z, y, x, s] += inv_h * lift_l[z] * jumps[e, 2, 0, y, x, s]
        for z in range(N):
            for y in range(N):
                for x in range(N):
                    for s in range(M):
                        out[e, z, y, x, s] -= inv_h * lift_r[z] * jumps[e, 2, 1, y, x, s]
"""


def generate_module_source(
    family: str, n: int, pde: LinearPDE, header: str = ""
) -> str:
    """Emit the kernel-module source of one ``(family, order, PDE)`` triple.

    The module contains the family's STP loop, the three per-direction
    flux sweeps, the wave-speed sweep, the per-direction Rusanov face
    kernels and the block corrector -- everything a whole solver step
    needs.  ``header`` is an optional comment block (the plan summary
    :func:`lower_plan` prepends).
    """
    if family not in ("splitck", "spacetime"):
        raise ValueError(f"unknown kernel family {family!r}")
    reason = unsupported_reason(pde)
    if reason is not None:
        raise ValueError(f"cannot lower {pde.name}: {reason}")
    m, nvar = pde.nquantities, pde.nvar
    out: list[str] = []
    out.append(
        f'"""Generated kernels: family={family}, pde={pde.name}, '
        f'N={n}, M={m}."""'
    )
    if header:
        out.extend(header.rstrip().splitlines())
    out += [
        "import numpy as np",
        "",
        f"N = {n}",
        f"M = {m}",
        f"NVAR = {nvar}",
        "",
        "",
    ]
    out.extend(_HELPERS.splitlines())
    out += ["", ""]
    for d in range(3):
        _emit_def(out, f"flux_d{d}(q, f)", _flux_fn(pde, d))
    _emit_def(out, "wave_speed(q, out)", _wave_fn(pde))
    out.extend(_CONTRACT.splitlines())
    out += ["", ""]
    if family == "splitck":
        out.extend(_STP_SPLITCK.splitlines())
    else:
        out.extend(_STP_SPACETIME.splitlines())
    out += ["", ""]
    for d in range(3):
        _emit_def(
            out,
            f"riemann_rusanov_d{d}(ql, qr, fl, fr, sl, sr, out)",
            _riemann_fn(d),
        )
    out.extend(_CORRECTOR.splitlines())
    return "\n".join(out).rstrip() + "\n"


#: names of the generated functions that get jit-wrapped, in dependency
#: order (callees first, so callers resolve the wrapped versions).
KERNEL_NAMES = (
    "_fill",
    "_copy",
    "_axpy",
    "_set_params",
    "_scale_params",
    "flux_d0",
    "flux_d1",
    "flux_d2",
    "wave_speed",
    "contract_d0",
    "contract_d1",
    "contract_d2",
    "stp_splitck",
    "stp_spacetime",
    "riemann_rusanov_d0",
    "riemann_rusanov_d1",
    "riemann_rusanov_d2",
    "corrector_apply",
)


def compile_module(source: str, jit=None, tag: str = "generated") -> tuple[dict, float]:
    """Execute generated source, optionally jit-wrapping every kernel.

    ``jit`` is a decorator (e.g. ``numba.njit``) applied to each
    generated function; ``None`` leaves them as plain Python (the
    conformance-test mode).  Returns ``(namespace, seconds)`` where
    ``seconds`` is the wall time of the exec + wrap step (actual native
    compilation is lazy and surfaces in the first-call timing).
    """
    started = time.perf_counter()
    namespace: dict = {}
    code = compile(source, f"<{tag}>", "exec")
    exec(code, namespace)
    if jit is not None:
        for name in KERNEL_NAMES:
            if name in namespace:
                namespace[name] = jit(namespace[name])
    return namespace, time.perf_counter() - started


def lower_plan(plan, pde: LinearPDE) -> str:
    """Lower a recorded :class:`~repro.codegen.plan.KernelPlan` to source.

    The plan contributes the variant (hence loop family) and a summary
    header -- its GEMM schedule and temporary footprint -- embedded as
    comments, so the generated module documents the operation stream it
    replaces.  The plan's op kinds are validated: a plan containing an
    unknown operation type cannot be lowered.
    """
    from repro.codegen.plan import GemmOp, PointwiseOp, TransposeOp

    for op in plan.ops:
        if not isinstance(op, (GemmOp, PointwiseOp, TransposeOp)):
            raise ValueError(f"plan contains un-lowerable op {op!r}")
    family = variant_family(plan.variant)
    gemms = ", ".join(
        f"{mm}x{nn}x{kk}x{batch}" for mm, nn, kk, batch in plan.gemm_shapes()
    )
    header = "\n".join(
        [
            f"# lowered from plan: variant={plan.variant}",
            f"# gemm schedule: {gemms or 'none'}",
            f"# temp footprint: {plan.temp_footprint_bytes} bytes",
        ]
    )
    n = plan.spec.order
    return generate_module_source(family, n, pde, header=header)
