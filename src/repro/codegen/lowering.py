"""Lower kernel plans to compiled-backend source (the native-kernel view).

:mod:`repro.codegen.render` shows a recorded :class:`~repro.codegen.plan.
KernelPlan` as a *C-like listing* for inspection; this module goes one
step further and emits **executable** kernel source for the same
operation stream: plain Python functions over contiguous ``float64``
arrays, written so that ``numba.njit`` compiles every loop nest to
native code (the Loop-over-GEMM contractions, the PDE user functions,
the Rusanov face sweep and the corrector's surface lifting).

Two properties make the generated source the conformance anchor of the
compiled backend:

* it is **valid Python** -- the test-suite executes it *without* Numba
  on tiny problems and checks round-off-level agreement against the
  NumPy executor, so the generated numerics are verified even on
  machines where Numba is absent;
* it is **deterministic** -- equal ``(family, spec, PDE)`` inputs yield
  byte-identical source (enforced by a regression test), so the
  process-wide plan registry can key compiled artifacts structurally.

Only PDEs with a registered flux template can be lowered
(:func:`supports_pde`); everything else falls back to the NumPy
executor at run time.  Non-conservative products are not lowered --
the NCP systems stay on the NumPy path.
"""

from __future__ import annotations

import time

from repro.pde.base import LinearPDE
from repro.pde.elastic import _NORMAL, _SHEAR, _SHEAR_V, VX

__all__ = [
    "FAMILY_OF_VARIANT",
    "variant_family",
    "supports_pde",
    "unsupported_reason",
    "pde_token",
    "reflect_column",
    "fused_arg_names",
    "generate_module_source",
    "compile_module",
    "lower_plan",
]

#: kernel-loop family of each STP variant: the SplitCK single-time-level
#: recurrence (Sec. IV) or the full space-time storage loop (Fig. 1 /
#: Sec. III).  The compiled backend lowers one loop nest per family on
#: the canonical ``(b, N, N, N, m)`` layout -- layout games (AoS
#: padding, AoSoA) are a NumPy-executor concern; compiled loops are
#: already vectorized by the compiler.
FAMILY_OF_VARIANT = {
    "splitck": "splitck",
    "transpose_uf": "splitck",
    "aosoa": "splitck",
    "log": "spacetime",
    "generic": "spacetime",
}


def variant_family(variant: str) -> str:
    """Loop family of ``variant``; raises ``ValueError`` when unknown."""
    try:
        return FAMILY_OF_VARIANT[variant]
    except KeyError:
        raise ValueError(
            f"unknown variant {variant!r}; available: {sorted(FAMILY_OF_VARIANT)}"
        ) from None


# ---------------------------------------------------------------------------
# per-PDE user-function templates
# ---------------------------------------------------------------------------


def _advection_flux(pde, d: int) -> list[str]:
    v = repr(float(pde.velocity[d]))
    return [
        "for s in range(M):",
        f"    f[k, s] = {v} * q[k, s]",
    ]


def _advection_wave(pde) -> list[str]:
    import numpy as np

    speed = repr(float(np.max(np.abs(pde.velocity))))
    return [f"ws = {speed}"]


def _acoustic_flux(pde, d: int) -> list[str]:
    del pde
    return [
        "rho = q[k, 4]",
        "c = q[k, 5]",
        "for s in range(M):",
        "    f[k, s] = 0.0",
        f"f[k, 0] = rho * c * c * q[k, {1 + d}]",
        f"f[k, {1 + d}] = q[k, 0] / rho",
    ]


def _acoustic_wave(pde) -> list[str]:
    del pde
    return ["ws = abs(q[k, 5])"]


def _elastic_material_lines(nvar: int) -> list[str]:
    return [
        f"rho = q[k, {nvar + 0}]",
        f"cp = q[k, {nvar + 1}]",
        f"cs = q[k, {nvar + 2}]",
        "mu = rho * cs * cs",
        "lam = rho * (cp * cp - 2.0 * cs * cs)",
        "inv_rho = 1.0 / rho",
    ]


def _cartesian_elastic_components(b: int) -> dict[int, str]:
    """Nonzero Cartesian elastic flux components of direction ``b``.

    Expression strings in terms of ``q[k, j]`` and the material locals
    of :func:`_elastic_material_lines`; mirrors
    :meth:`repro.pde.elastic.ElasticPDE.flux` statement by statement.
    """
    comp: dict[int, str] = {}
    comp[VX + b] = f"-q[k, {_NORMAL[b]}] * inv_rho"
    for shear_idx, v_idx in zip(_SHEAR[b], _SHEAR_V[b]):
        comp[v_idx] = f"-q[k, {shear_idx}] * inv_rho"
    for a, idx in enumerate(_NORMAL):
        coeff = "(lam + 2.0 * mu)" if a == b else "lam"
        comp[idx] = f"-{coeff} * q[k, {VX + b}]"
    for shear_idx, v_idx in zip(_SHEAR[b], _SHEAR_V[b]):
        comp[shear_idx] = f"-mu * q[k, {v_idx}]"
    return comp


def _elastic_flux(pde, d: int) -> list[str]:
    del pde
    lines = _elastic_material_lines(9)
    lines += ["for s in range(M):", "    f[k, s] = 0.0"]
    for j, expr in sorted(_cartesian_elastic_components(d).items()):
        lines.append(f"f[k, {j}] = {expr}")
    return lines


def _elastic_wave(pde) -> list[str]:
    del pde
    return ["ws = abs(q[k, 10])"]


def _curvilinear_flux(pde, d: int) -> list[str]:
    del pde
    lines = _elastic_material_lines(9)
    for b in range(3):
        lines.append(f"g{b} = q[k, {12 + 3 * d + b}]")
    lines += ["for s in range(M):", "    f[k, s] = 0.0"]
    comps = [_cartesian_elastic_components(b) for b in range(3)]
    for j in range(9):
        terms = [
            f"g{b} * ({comps[b][j]})" for b in range(3) if j in comps[b]
        ]
        lines.append(f"f[k, {j}] = " + " + ".join(terms))
    return lines


def _curvilinear_wave(pde) -> list[str]:
    del pde
    lines = []
    for row in range(3):
        g = [f"q[k, {12 + 3 * row + col}]" for col in range(3)]
        lines.append(
            f"rn{row} = np.sqrt({g[0]} * {g[0]} + {g[1]} * {g[1]} + "
            f"{g[2]} * {g[2]})"
        )
    lines.append("ws = abs(q[k, 10]) * max(max(rn0, rn1), rn2)")
    return lines


#: PDE name -> (flux template, wave-speed template).  Flux templates
#: emit statements assigning every quantity slot of ``f[k, :]`` from
#: ``q[k, :]`` for a generation-time direction ``d``; wave templates
#: set the local ``ws``.
_PDE_TEMPLATES = {
    "advection": (_advection_flux, _advection_wave),
    "acoustic": (_acoustic_flux, _acoustic_wave),
    "elastic": (_elastic_flux, _elastic_wave),
    "curvilinear_elastic": (_curvilinear_flux, _curvilinear_wave),
}


def unsupported_reason(pde: LinearPDE) -> str | None:
    """Why ``pde`` cannot be lowered (``None`` when it can)."""
    if getattr(pde, "has_ncp", False):
        return f"{pde.name}: non-conservative products are not lowered"
    if not getattr(pde, "is_linear", True):
        return f"{pde.name}: only linear systems are lowered"
    if pde.name not in _PDE_TEMPLATES:
        return (
            f"no flux template registered for PDE {pde.name!r}; "
            f"available: {sorted(_PDE_TEMPLATES)}"
        )
    return None


def supports_pde(pde: LinearPDE) -> bool:
    """Whether the compiled backend can lower this PDE's user functions."""
    return unsupported_reason(pde) is None


def pde_token(pde: LinearPDE) -> tuple:
    """Hashable generation key of a PDE (name, sizes, flux constants)."""
    extra: tuple = ()
    if pde.name == "advection":
        extra = tuple(float(v) for v in pde.velocity)
    return (pde.name, pde.nvar, pde.nparam, extra)


#: first sign-flipped quantity column of each PDE's ``reflect()``; PDEs
#: whose reflection is a plain copy (advection) have no entry
_REFLECT_BASE = {"acoustic": 1, "elastic": 0, "curvilinear_elastic": 0}


def reflect_column(pde: LinearPDE, boundary: str, d: int) -> int:
    """Quantity column a reflective wall flips in direction ``d``.

    The generated ``face_ghost`` kernel copies the interior trace and
    then negates exactly one column; ``-1`` is its plain-copy sentinel,
    returned for absorbing boundaries and for PDEs whose
    :meth:`~repro.pde.base.LinearPDE.reflect` is a copy.
    """
    if boundary != "reflective":
        return -1
    base = _REFLECT_BASE.get(pde.name)
    return -1 if base is None else base + d


# ---------------------------------------------------------------------------
# source emission
# ---------------------------------------------------------------------------


def _emit_def(out: list[str], header: str, body: list[str]) -> None:
    out.append(f"def {header}:")
    for line in body:
        out.append("    " + line)
    out.append("")
    out.append("")


def _flux_fn(pde: LinearPDE, d: int) -> list[str]:
    flux_tpl, _ = _PDE_TEMPLATES[pde.name]
    body = [
        f'"""Generated {pde.name} flux, direction {d}, on (K, M) nodes."""',
        "for k in range(q.shape[0]):",
    ]
    body += ["    " + line for line in flux_tpl(pde, d)]
    return body


def _wave_fn(pde: LinearPDE) -> list[str]:
    _, wave_tpl = _PDE_TEMPLATES[pde.name]
    body = [
        f'"""Generated {pde.name} max wave speed on (K, M) nodes."""',
        "for k in range(q.shape[0]):",
    ]
    body += ["    " + line for line in wave_tpl(pde)]
    body += ["    out[k] = ws"]
    return body


_HELPERS = """\
def _fill(a, v):
    \"\"\"Set every entry of the flat array ``a`` to ``v``.\"\"\"
    for i in range(a.shape[0]):
        a[i] = v


def _copy(dst, src):
    \"\"\"Copy the flat array ``src`` into ``dst``.\"\"\"
    for i in range(dst.shape[0]):
        dst[i] = src[i]


def _axpy(dst, c, src):
    \"\"\"Accumulate ``dst += c * src`` over flat arrays.\"\"\"
    for i in range(dst.shape[0]):
        dst[i] += c * src[i]


def _set_params(dst, src):
    \"\"\"Copy the static parameter slots of ``src`` into ``dst`` (K, M).\"\"\"
    for k in range(dst.shape[0]):
        for s in range(NVAR, M):
            dst[k, s] = src[k, s]


def _scale_params(dst, src, c):
    \"\"\"Write ``c`` times the parameter slots of ``src`` into ``dst``.\"\"\"
    for k in range(dst.shape[0]):
        for s in range(NVAR, M):
            dst[k, s] = c * src[k, s]
"""

#: per-direction contraction loop nests: the canonical-axis twin of
#: :func:`repro.tensor.contraction.block_contract_axis` (d -> axis map
#: is AXIS_OF_DIM shifted by the block axis; always accumulating).
_CONTRACT = """\
def contract_d0(mat, src, dst):
    \"\"\"dst[e,z,y,l,s] += mat[l,j] src[e,z,y,j,s] (x-derivative LoG).\"\"\"
    for e in range(src.shape[0]):
        for z in range(N):
            for y in range(N):
                for l in range(N):
                    for j in range(N):
                        w = mat[l, j]
                        for s in range(M):
                            dst[e, z, y, l, s] += w * src[e, z, y, j, s]


def contract_d1(mat, src, dst):
    \"\"\"dst[e,z,l,x,s] += mat[l,j] src[e,z,j,x,s] (y-derivative LoG).\"\"\"
    for e in range(src.shape[0]):
        for z in range(N):
            for l in range(N):
                for j in range(N):
                    w = mat[l, j]
                    for x in range(N):
                        for s in range(M):
                            dst[e, z, l, x, s] += w * src[e, z, j, x, s]


def contract_d2(mat, src, dst):
    \"\"\"dst[e,l,y,x,s] += mat[l,j] src[e,j,y,x,s] (z-derivative LoG).\"\"\"
    for e in range(src.shape[0]):
        for l in range(N):
            for j in range(N):
                w = mat[l, j]
                for y in range(N):
                    for x in range(N):
                        for s in range(M):
                            dst[e, l, y, x, s] += w * src[e, j, y, x, s]
"""

_STP_SPLITCK = """\
def stp_splitck(q, dt, coef, nderiv, src, src_mask, p, pnext, flx, qavg, favg0, favg1, favg2, savg):
    \"\"\"SplitCK recurrence (Sec. IV) on a canonical (b, N, N, N, M) block.

    Mirrors ``BatchedSTP._block_splitck`` statement by statement on the
    unpadded layout: Taylor accumulation, three flux + LoG-derivative
    stages per degree, source injection, parameter refresh, then the
    ``favg_d = V_d qavg`` recomputation.  All outputs are written in
    place; ``src``/``src_mask`` carry the per-element point-source
    terms (``src`` is only read where the mask is set).
    \"\"\"
    b = q.shape[0]
    _copy(p.reshape(-1), q.reshape(-1))
    _fill(qavg.reshape(-1), 0.0)
    _fill(savg.reshape(-1), 0.0)
    for o in range(N):
        c = coef[o]
        _axpy(qavg.reshape(-1), c, p.reshape(-1))
        _fill(pnext.reshape(-1), 0.0)
        flux_d0(p.reshape(-1, M), flx.reshape(-1, M))
        contract_d0(nderiv, flx, pnext)
        flux_d1(p.reshape(-1, M), flx.reshape(-1, M))
        contract_d1(nderiv, flx, pnext)
        flux_d2(p.reshape(-1, M), flx.reshape(-1, M))
        contract_d2(nderiv, flx, pnext)
        for e in range(b):
            if src_mask[e]:
                _axpy(pnext[e].reshape(-1), 1.0, src[e, o].reshape(-1))
                _axpy(savg[e].reshape(-1), c, src[e, o].reshape(-1))
        _set_params(pnext.reshape(-1, M), q.reshape(-1, M))
        swap = p
        p = pnext
        pnext = swap
    _set_params(qavg.reshape(-1, M), q.reshape(-1, M))
    _fill(favg0.reshape(-1), 0.0)
    _fill(favg1.reshape(-1), 0.0)
    _fill(favg2.reshape(-1), 0.0)
    flux_d0(qavg.reshape(-1, M), flx.reshape(-1, M))
    contract_d0(nderiv, flx, favg0)
    flux_d1(qavg.reshape(-1, M), flx.reshape(-1, M))
    contract_d1(nderiv, flx, favg1)
    flux_d2(qavg.reshape(-1, M), flx.reshape(-1, M))
    contract_d2(nderiv, flx, favg2)
    _scale_params(qavg.reshape(-1, M), q.reshape(-1, M), dt)
"""

_STP_SPACETIME = """\
def stp_spacetime(q, dt, coef, nderiv, src, src_mask, pst, dfst, flx, qavg, favg0, favg1, favg2, savg):
    \"\"\"Full space-time-storage CK loop (Fig. 1) on a canonical block.

    Mirrors ``BatchedSTP._block_spacetime``: every Taylor degree keeps
    its own ``p`` level (``pst``, ``(N+1, b, N, N, N, M)``) and
    directional derivative (``dfst``, ``(N, 3, b, N, N, N, M)``); the
    time-averaged outputs are Taylor-weighted sums over the stored
    levels.
    \"\"\"
    b = q.shape[0]
    _fill(pst.reshape(-1), 0.0)
    _copy(pst[0].reshape(-1), q.reshape(-1))
    for o in range(N):
        flux_d0(pst[o].reshape(-1, M), flx.reshape(-1, M))
        _fill(dfst[o, 0].reshape(-1), 0.0)
        contract_d0(nderiv, flx, dfst[o, 0])
        flux_d1(pst[o].reshape(-1, M), flx.reshape(-1, M))
        _fill(dfst[o, 1].reshape(-1), 0.0)
        contract_d1(nderiv, flx, dfst[o, 1])
        flux_d2(pst[o].reshape(-1, M), flx.reshape(-1, M))
        _fill(dfst[o, 2].reshape(-1), 0.0)
        contract_d2(nderiv, flx, dfst[o, 2])
        nxt = pst[o + 1]
        _axpy(nxt.reshape(-1), 1.0, dfst[o, 0].reshape(-1))
        _axpy(nxt.reshape(-1), 1.0, dfst[o, 1].reshape(-1))
        _axpy(nxt.reshape(-1), 1.0, dfst[o, 2].reshape(-1))
        for e in range(b):
            if src_mask[e]:
                _axpy(nxt[e].reshape(-1), 1.0, src[e, o].reshape(-1))
        _set_params(nxt.reshape(-1, M), q.reshape(-1, M))
    _fill(qavg.reshape(-1), 0.0)
    _fill(savg.reshape(-1), 0.0)
    for o in range(N):
        _axpy(qavg.reshape(-1), coef[o], pst[o].reshape(-1))
    _fill(favg0.reshape(-1), 0.0)
    _fill(favg1.reshape(-1), 0.0)
    _fill(favg2.reshape(-1), 0.0)
    for o in range(N):
        _axpy(favg0.reshape(-1), coef[o], dfst[o, 0].reshape(-1))
    for o in range(N):
        _axpy(favg1.reshape(-1), coef[o], dfst[o, 1].reshape(-1))
    for o in range(N):
        _axpy(favg2.reshape(-1), coef[o], dfst[o, 2].reshape(-1))
    for e in range(b):
        if src_mask[e]:
            for o in range(N):
                _axpy(savg[e].reshape(-1), coef[o], src[e, o].reshape(-1))
    _scale_params(qavg.reshape(-1, M), q.reshape(-1, M), dt)
"""


def _riemann_fn(d: int) -> list[str]:
    return [
        f'"""Rusanov flux over flattened face nodes, direction {d}.',
        "",
        "``ql`` / ``qr`` are parameter-embedded (K, M) face states;",
        "scratch ``fl``/``fr``/``sl``/``sr`` and the output are caller",
        "buffers.  Mirrors :func:`repro.engine.riemann.rusanov_flux`.",
        '"""',
        f"flux_d{d}(ql, fl)",
        f"flux_d{d}(qr, fr)",
        "wave_speed(ql, sl)",
        "wave_speed(qr, sr)",
        "for k in range(ql.shape[0]):",
        "    smax = sl[k] if sl[k] > sr[k] else sr[k]",
        "    for s in range(M):",
        "        out[k, s] = 0.5 * (fl[k, s] + fr[k, s])",
        "    for s in range(NVAR):",
        "        out[k, s] -= 0.5 * smax * (qr[k, s] - ql[k, s])",
    ]


_CORRECTOR = """\
def corrector_apply(q, vavg, sterm, jumps, lift_l, lift_r, inv_h, out):
    \"\"\"Corrector volume update + six surface lifts (paper eq. 5).

    ``jumps`` holds the precomputed ``F* - F(qface)`` per element face,
    ``(b, 3, 2, N, N, M)``; ``sterm`` the dense time-integrated source
    block (zero where no source).  Mirrors
    :func:`repro.core.corrector.corrector_all` in update order.
    \"\"\"
    b = q.shape[0]
    qf = q.reshape(-1)
    vf = vavg.reshape(-1)
    sf = sterm.reshape(-1)
    of = out.reshape(-1)
    for i in range(qf.shape[0]):
        of[i] = qf[i] + vf[i] + sf[i]
    for e in range(b):
        for z in range(N):
            for y in range(N):
                for x in range(N):
                    for s in range(M):
                        out[e, z, y, x, s] += inv_h * lift_l[x] * jumps[e, 0, 0, z, y, s]
        for z in range(N):
            for y in range(N):
                for x in range(N):
                    for s in range(M):
                        out[e, z, y, x, s] -= inv_h * lift_r[x] * jumps[e, 0, 1, z, y, s]
        for z in range(N):
            for y in range(N):
                for x in range(N):
                    for s in range(M):
                        out[e, z, y, x, s] += inv_h * lift_l[y] * jumps[e, 1, 0, z, x, s]
        for z in range(N):
            for y in range(N):
                for x in range(N):
                    for s in range(M):
                        out[e, z, y, x, s] -= inv_h * lift_r[y] * jumps[e, 1, 1, z, x, s]
        for z in range(N):
            for y in range(N):
                for x in range(N):
                    for s in range(M):
                        out[e, z, y, x, s] += inv_h * lift_l[z] * jumps[e, 2, 0, y, x, s]
        for z in range(N):
            for y in range(N):
                for x in range(N):
                    for s in range(M):
                        out[e, z, y, x, s] -= inv_h * lift_r[z] * jumps[e, 2, 1, y, x, s]
"""


# ---------------------------------------------------------------------------
# fused face-exchange and fused-step families
# ---------------------------------------------------------------------------

_FACE_EXCHANGE = """\
def face_gather(qface, left, right, il, ir, dd, ql, qr):
    \"\"\"Gather interior face traces of direction ``dd`` into the planes.

    Mirrors ``FaceSweep.sweep``'s interior gather: a face row's left
    plane is its left element's high trace, its right plane the right
    element's low trace (``il``/``ir`` list the rows with a real
    element on that side).
    \"\"\"
    for i in range(il.shape[0]):
        r = il[i]
        e = left[r]
        for a in range(N):
            for c in range(N):
                for s in range(M):
                    ql[r, a, c, s] = qface[e, dd, 1, a, c, s]
    for i in range(ir.shape[0]):
        r = ir[i]
        e = right[r]
        for a in range(N):
            for c in range(N):
                for s in range(M):
                    qr[r, a, c, s] = qface[e, dd, 0, a, c, s]


def face_ghost(qsrc, qdst, rows, refl):
    \"\"\"Fill boundary ghost rows of ``qdst`` from the interior ``qsrc``.

    ``refl`` is the quantity column a reflective wall sign-flips, or
    ``-1`` for a plain copy (absorbing outflow / copy reflections);
    mirrors :func:`repro.engine.boundary.ghost_state`.
    \"\"\"
    for i in range(rows.shape[0]):
        r = rows[i]
        for a in range(N):
            for c in range(N):
                for s in range(M):
                    qdst[r, a, c, s] = qsrc[r, a, c, s]
    if refl >= 0:
        for i in range(rows.shape[0]):
            r = rows[i]
            for a in range(N):
                for c in range(N):
                    qdst[r, a, c, refl] = -qdst[r, a, c, refl]


def face_embed(qs, ps, k1, emb):
    \"\"\"Embed traces + static parameters into (K, M) rows of ``emb``.

    Covers the solve prefix ``[0, k1)`` of a face plane; the parameter
    loop is empty for parameter-free systems (``ps`` is never read).
    \"\"\"
    for r in range(k1):
        for a in range(N):
            for c in range(N):
                k = (r * N + a) * N + c
                for s in range(NVAR):
                    emb[k, s] = qs[r, a, c, s]
                for s in range(NVAR, M):
                    emb[k, s] = ps[r, a, c, s - NVAR]


def face_project(qavg, fvl, fvr, elements, e0, b, qface):
    \"\"\"Project a block's time-averages onto its six faces (``qface``).

    The loop-nest twin of ``BatchedSTP._project_faces_block``'s
    tensordots: block row ``i`` maps to element ``elements[e0 + i]``;
    ``fvl``/``fvr`` are the 1-D left/right face evaluation vectors.
    \"\"\"
    for i in range(b):
        e = elements[e0 + i]
        for a in range(N):
            for c in range(N):
                for s in range(M):
                    accl = 0.0
                    accr = 0.0
                    for j in range(N):
                        accl += fvl[j] * qavg[i, a, c, j, s]
                        accr += fvr[j] * qavg[i, a, c, j, s]
                    qface[e, 0, 0, a, c, s] = accl
                    qface[e, 0, 1, a, c, s] = accr
        for a in range(N):
            for c in range(N):
                for s in range(M):
                    accl = 0.0
                    accr = 0.0
                    for j in range(N):
                        accl += fvl[j] * qavg[i, a, j, c, s]
                        accr += fvr[j] * qavg[i, a, j, c, s]
                    qface[e, 1, 0, a, c, s] = accl
                    qface[e, 1, 1, a, c, s] = accr
        for a in range(N):
            for c in range(N):
                for s in range(M):
                    accl = 0.0
                    accr = 0.0
                    for j in range(N):
                        accl += fvl[j] * qavg[i, j, a, c, s]
                        accr += fvr[j] * qavg[i, j, a, c, s]
                    qface[e, 2, 0, a, c, s] = accl
                    qface[e, 2, 1, a, c, s] = accr


def mailbox_export(flux, rows, slots, mailbox):
    \"\"\"Publish owned cut-face fluxes into their shared mailbox slots.

    Mirrors ``FaceSweep.export_fluxes`` for one direction's plane.
    \"\"\"
    for i in range(rows.shape[0]):
        r = rows[i]
        t = slots[i]
        for a in range(N):
            for c in range(N):
                for s in range(M):
                    mailbox[t, a, c, s] = flux[r, a, c, s]


def mailbox_import(flux, slots, mailbox, k1):
    \"\"\"Fill a flux plane's import suffix ``[k1, ...)`` from the mailbox.

    Mirrors ``FaceSweep.import_fluxes`` for one direction's plane.
    \"\"\"
    for i in range(slots.shape[0]):
        t = slots[i]
        for a in range(N):
            for c in range(N):
                for s in range(M):
                    flux[k1 + i, a, c, s] = mailbox[t, a, c, s]
"""


def _riemann_dir_fn(d: int) -> list[str]:
    return [
        f'"""Fused direction-{d} face stage: gather, ghosts, embed, solve.',
        "",
        "Chains the face-exchange primitives with the Rusanov kernel on",
        "one direction's packed plane; only the solve prefix ``[0, k1)``",
        "is computed (the suffix belongs to a neighbor shard's mailbox",
        'export in async mode, and is empty in serial mode)."""',
        f"face_gather(qface, left, right, il, ir, {d}, ql, qr)",
        "face_ghost(ql, qr, gr, refl)",
        "face_ghost(qr, ql, gl, refl)",
        "face_embed(ql, pl, k1, eml)",
        "face_embed(qr, pr, k1, emr)",
        "kk = k1 * N * N",
        f"riemann_rusanov_d{d}(eml[:kk], emr[:kk], fl[:kk], fr[:kk], "
        "sl[:kk], sr[:kk], flux[:k1].reshape(kk, M))",
    ]


def _fused_predict_fn(family: str) -> list[str]:
    body = [
        '"""Fused predictor over all element blocks (qface/vavg/sterm out).',
        "",
        "Runs the family STP per ``bsz`` block of the traversal order",
        "``elements`` (tail blocks are padded by repeating the last",
        "element; padded rows are computed and discarded), then projects",
        "the six face traces and accumulates the volume average and the",
        "dense position-indexed source term -- the fused twin of",
        '``BatchedSTP.predictor_sweep``."""',
        "for e0 in range(0, nel, bsz):",
        "    b = min(bsz, nel - e0)",
        "    for i in range(bsz):",
        "        t = e0 + i",
        "        real = t < nel",
        "        if t >= nel:",
        "            t = nel - 1",
        "        e = elements[t]",
        "        _copy(qblk[i].reshape(-1), q[qidx[t]].reshape(-1))",
        "        r = src_of[e]",
        "        if real and r >= 0:",
        "            smask[i] = True",
        "            _copy(srcblk[i].reshape(-1), src[r].reshape(-1))",
        "        else:",
        "            smask[i] = False",
        f"    stp_{family}(qblk, dt, coef, nderiv, srcblk, smask, "
        "stp_a, stp_b, flx, qavg, favg0, favg1, favg2, savg)",
        "    for i in range(b):",
        "        t = e0 + i",
        "        vf = vavg[t].reshape(-1)",
        "        f0 = favg0[i].reshape(-1)",
        "        f1 = favg1[i].reshape(-1)",
        "        f2 = favg2[i].reshape(-1)",
        "        for j in range(vf.shape[0]):",
        "            vf[j] = f0[j] + f1[j] + f2[j]",
        "        if smask[i]:",
        "            _copy(sterm[t].reshape(-1), savg[i].reshape(-1))",
        "        else:",
        "            _fill(sterm[t].reshape(-1), 0.0)",
        "    face_project(qavg, fvl, fvr, elements, e0, b, qface)",
    ]
    return body


def _fused_correct_fn() -> list[str]:
    body = [
        '"""Fused corrector: F* gather, face jumps, volume + lifting.',
        "",
        "Per block: gather states/volume terms and the six ``F*`` face",
        "planes, rebuild the element-side face fluxes, form the jumps",
        "and apply the corrector -- the fused twin of",
        "``CompiledExecutor.corrector_block`` plus the solver's",
        "``gather_fstar`` scatter.  ``qin``/``qout`` may alias (serial",
        'resident stepping) or be the two shm buffers (workers)."""',
        "for e0 in range(0, nel, bsz):",
        "    b = min(bsz, nel - e0)",
        "    for i in range(bsz):",
        "        t = e0 + i",
        "        if t >= nel:",
        "            t = nel - 1",
        "        e = elements[t]",
        "        eblk[i] = e",
        "        _copy(qblk[i].reshape(-1), qin[qidx_in[t]].reshape(-1))",
        "        _copy(vblk[i].reshape(-1), vavg[t].reshape(-1))",
        "        _copy(sblk[i].reshape(-1), sterm[t].reshape(-1))",
    ]
    for d in range(3):
        for side, face in ((0, f"lo{d}"), (1, f"hi{d}")):
            body += [
                f"        r = {face}[e]",
                "        for a in range(N):",
                "            for c in range(N):",
                "                for s in range(M):",
                f"                    fstar[i, {d}, {side}, a, c, s] = "
                f"flux{d}[r, a, c, s]",
            ]
    for d in range(3):
        for side in (0, 1):
            body += [
                "    for i in range(bsz):",
                "        e = eblk[i]",
                "        for a in range(N):",
                "            for c in range(N):",
                "                k = (i * N + a) * N + c",
                "                for s in range(NVAR):",
                f"                    emb[k, s] = qface[e, {d}, {side}, a, c, s]",
                "                for s in range(NVAR, M):",
                f"                    emb[k, s] = "
                f"efp[e, {d}, {side}, a, c, s - NVAR]",
                f"    flux_d{d}(emb, fbuf)",
                "    for i in range(bsz):",
                "        for a in range(N):",
                "            for c in range(N):",
                "                k = (i * N + a) * N + c",
                "                for s in range(M):",
                f"                    jumps[i, {d}, {side}, a, c, s] = "
                f"fstar[i, {d}, {side}, a, c, s] - fbuf[k, s]",
            ]
    body += [
        "    corrector_apply(qblk, vblk, sblk, jumps, lift_l, lift_r, "
        "inv_h, oblk)",
        "    for i in range(b):",
        "        _copy(qout[qidx_out[e0 + i]].reshape(-1), "
        "oblk[i].reshape(-1))",
    ]
    return body


def _riemann_dir_args(d: int) -> list[str]:
    """Per-direction argument group of the fused Riemann drivers."""
    return [
        f"left{d}", f"right{d}", f"il{d}", f"ir{d}", f"gl{d}", f"gr{d}",
        f"refl{d}", f"nsolve{d}", f"ql{d}", f"qr{d}", f"pl{d}", f"pr{d}",
        f"flux{d}",
    ]


#: canonical parameter list of ``riemann_dir_d{d}`` (shared scratch last)
_RIEMANN_DIR_PARAMS = (
    "qface", "left", "right", "il", "ir", "gl", "gr", "refl", "k1",
    "ql", "qr", "pl", "pr", "eml", "emr", "fl", "fr", "sl", "sr", "flux",
)

#: shared (K, M) embed/flux/wave scratch of the fused Riemann stages
_RIEMANN_SCRATCH = ["eml", "emr", "fl", "fr", "sl", "sr"]

#: predictor argument group of the fused drivers (``stp_a``/``stp_b``
#: are the family's two big scratch tensors: p/pnext or pst/dfst)
_FUSED_PREDICT_ARGS = [
    "q", "qidx", "elements", "nel", "bsz", "dt", "coef", "nderiv",
    "src", "src_of", "fvl", "fvr", "qface", "vavg", "sterm",
    "qblk", "srcblk", "smask", "stp_a", "stp_b", "flx", "qavg",
    "favg0", "favg1", "favg2", "savg",
]

#: corrector argument group of the fused drivers
_FUSED_CORRECT_ARGS = [
    "qin", "qout", "qidx_in", "qidx_out", "elements", "nel", "bsz",
    "vavg", "sterm", "qface", "efp", "flux0", "flux1", "flux2",
    "lo0", "hi0", "lo1", "hi1", "lo2", "hi2",
    "lift_l", "lift_r", "inv_h",
    "eblk", "qblk", "vblk", "sblk", "fstar", "emb", "fbuf", "jumps",
    "oblk",
]


def fused_arg_names(name: str) -> list[str]:
    """Ordered argument names of one generated fused driver.

    The Python callers (:mod:`repro.codegen.fusedstep`) assemble their
    argument tuples from these exact lists, so signature and call site
    cannot drift apart.
    """
    if name == "fused_predict":
        return list(_FUSED_PREDICT_ARGS)
    if name == "fused_correct":
        return list(_FUSED_CORRECT_ARGS)
    if name == "riemann_dir":
        return list(_RIEMANN_DIR_PARAMS)
    if name == "fused_step":
        args = list(_FUSED_PREDICT_ARGS)
        for d in range(3):
            args += _riemann_dir_args(d)
        args += _RIEMANN_SCRATCH
        args += [
            a for a in _FUSED_CORRECT_ARGS
            if a not in args
            and a not in ("qin", "qout", "qidx_in", "qidx_out",
                          "flux0", "flux1", "flux2")
        ]
        return args
    if name == "fused_riemann_export":
        args = ["qface"]
        for d in range(3):
            args += _riemann_dir_args(d)
        args += _RIEMANN_SCRATCH
        for d in range(3):
            args += [f"exr{d}", f"exs{d}"]
        args.append("mailbox")
        return args
    raise ValueError(f"unknown fused driver {name!r}")


def _riemann_dir_call(d: int) -> str:
    # canonical order: qface, per-dir indexes/planes, shared scratch, flux
    args = (
        ["qface"]
        + _riemann_dir_args(d)[:12]
        + _RIEMANN_SCRATCH
        + [f"flux{d}"]
    )
    return f"riemann_dir_d{d}(" + ", ".join(args) + ")"


def _fused_step_fn() -> list[str]:
    body = [
        '"""One whole fused step: predict -> Riemann x3 -> correct.',
        "",
        "Chains the fused phase drivers inside one compiled program so",
        "``qface``/``flux``/``vavg`` never surface to NumPy between",
        "phases; the state stack ``q`` is updated in place (the",
        'corrector reads only its own element rows)."""',
        "fused_predict(" + ", ".join(_FUSED_PREDICT_ARGS) + ")",
        _riemann_dir_call(0),
        _riemann_dir_call(1),
        _riemann_dir_call(2),
    ]
    correct_args = [
        {"qin": "q", "qout": "q", "qidx_in": "qidx", "qidx_out": "qidx"}
        .get(a, a)
        for a in _FUSED_CORRECT_ARGS
    ]
    body.append("fused_correct(" + ", ".join(correct_args) + ")")
    return body


def _fused_riemann_export_fn() -> list[str]:
    body = [
        '"""Async Riemann phase: solve owned faces, export cut fluxes.',
        "",
        "Runs all three fused direction stages and publishes the owned",
        "cut-face fluxes into the shared mailbox from inside the same",
        'compiled program (barrier-free stepping, docs/stepping.md)."""',
        _riemann_dir_call(0),
        "mailbox_export(flux0, exr0, exs0, mailbox)",
        _riemann_dir_call(1),
        "mailbox_export(flux1, exr1, exs1, mailbox)",
        _riemann_dir_call(2),
        "mailbox_export(flux2, exr2, exs2, mailbox)",
    ]
    return body


def _fused_section(family: str) -> list[str]:
    """Source lines of the face-exchange + fused-step kernel families."""
    out: list[str] = []
    out.extend(_FACE_EXCHANGE.splitlines())
    out += ["", ""]
    for d in range(3):
        _emit_def(
            out,
            f"riemann_dir_d{d}(" + ", ".join(_RIEMANN_DIR_PARAMS) + ")",
            _riemann_dir_fn(d),
        )
    _emit_def(
        out,
        "fused_predict(" + ", ".join(_FUSED_PREDICT_ARGS) + ")",
        _fused_predict_fn(family),
    )
    _emit_def(
        out,
        "fused_correct(" + ", ".join(_FUSED_CORRECT_ARGS) + ")",
        _fused_correct_fn(),
    )
    _emit_def(
        out,
        "fused_step(" + ", ".join(fused_arg_names("fused_step")) + ")",
        _fused_step_fn(),
    )
    _emit_def(
        out,
        "fused_riemann_export("
        + ", ".join(fused_arg_names("fused_riemann_export")) + ")",
        _fused_riemann_export_fn(),
    )
    return out


def generate_module_source(
    family: str, n: int, pde: LinearPDE, header: str = "", fused: bool = False
) -> str:
    """Emit the kernel-module source of one ``(family, order, PDE)`` triple.

    The module contains the family's STP loop, the three per-direction
    flux sweeps, the wave-speed sweep, the per-direction Rusanov face
    kernels and the block corrector -- everything a whole solver step
    needs.  ``header`` is an optional comment block (the plan summary
    :func:`lower_plan` prepends).  With ``fused=True`` the module is a
    superset: it additionally carries the face-exchange family
    (``face_gather``/``face_ghost``/``face_embed``/``face_project``/
    ``mailbox_export``/``mailbox_import``, chained per direction by
    ``riemann_dir_d{d}``) and the fused-step family
    (``fused_predict``/``fused_correct``/``fused_step``/
    ``fused_riemann_export``) that runs whole steps without
    materializing ``qface``/``fstar``/``vavg`` in NumPy.
    """
    if family not in ("splitck", "spacetime"):
        raise ValueError(f"unknown kernel family {family!r}")
    reason = unsupported_reason(pde)
    if reason is not None:
        raise ValueError(f"cannot lower {pde.name}: {reason}")
    m, nvar = pde.nquantities, pde.nvar
    out: list[str] = []
    out.append(
        f'"""Generated kernels: family={family}, pde={pde.name}, '
        f'N={n}, M={m}' + (', fused=step."""' if fused else '."""')
    )
    if header:
        out.extend(header.rstrip().splitlines())
    out += [
        "import numpy as np",
        "",
        f"N = {n}",
        f"M = {m}",
        f"NVAR = {nvar}",
        "",
        "",
    ]
    out.extend(_HELPERS.splitlines())
    out += ["", ""]
    for d in range(3):
        _emit_def(out, f"flux_d{d}(q, f)", _flux_fn(pde, d))
    _emit_def(out, "wave_speed(q, out)", _wave_fn(pde))
    out.extend(_CONTRACT.splitlines())
    out += ["", ""]
    if family == "splitck":
        out.extend(_STP_SPLITCK.splitlines())
    else:
        out.extend(_STP_SPACETIME.splitlines())
    out += ["", ""]
    for d in range(3):
        _emit_def(
            out,
            f"riemann_rusanov_d{d}(ql, qr, fl, fr, sl, sr, out)",
            _riemann_fn(d),
        )
    out.extend(_CORRECTOR.splitlines())
    if fused:
        out += ["", ""]
        out.extend(_fused_section(family))
    return "\n".join(out).rstrip() + "\n"


#: names of the generated functions that get jit-wrapped, in dependency
#: order (callees first, so callers resolve the wrapped versions).
KERNEL_NAMES = (
    "_fill",
    "_copy",
    "_axpy",
    "_set_params",
    "_scale_params",
    "flux_d0",
    "flux_d1",
    "flux_d2",
    "wave_speed",
    "contract_d0",
    "contract_d1",
    "contract_d2",
    "stp_splitck",
    "stp_spacetime",
    "riemann_rusanov_d0",
    "riemann_rusanov_d1",
    "riemann_rusanov_d2",
    "corrector_apply",
    # face-exchange family (present in fused modules only)
    "face_gather",
    "face_ghost",
    "face_embed",
    "face_project",
    "mailbox_export",
    "mailbox_import",
    "riemann_dir_d0",
    "riemann_dir_d1",
    "riemann_dir_d2",
    # fused-step family (present in fused modules only)
    "fused_predict",
    "fused_correct",
    "fused_step",
    "fused_riemann_export",
)


def compile_module(source: str, jit=None, tag: str = "generated") -> tuple[dict, float]:
    """Execute generated source, optionally jit-wrapping every kernel.

    ``jit`` is a decorator (e.g. ``numba.njit``) applied to each
    generated function; ``None`` leaves them as plain Python (the
    conformance-test mode).  Returns ``(namespace, seconds)`` where
    ``seconds`` is the wall time of the exec + wrap step (actual native
    compilation is lazy and surfaces in the first-call timing).
    """
    started = time.perf_counter()
    namespace: dict = {}
    code = compile(source, f"<{tag}>", "exec")
    exec(code, namespace)
    if jit is not None:
        for name in KERNEL_NAMES:
            if name in namespace:
                namespace[name] = jit(namespace[name])
    return namespace, time.perf_counter() - started


def lower_plan(plan, pde: LinearPDE, fused: bool = False) -> str:
    """Lower a recorded :class:`~repro.codegen.plan.KernelPlan` to source.

    The plan contributes the variant (hence loop family) and a summary
    header -- its GEMM schedule and temporary footprint -- embedded as
    comments, so the generated module documents the operation stream it
    replaces.  The plan's op kinds are validated: a plan containing an
    unknown operation type cannot be lowered.  With ``fused=True`` the
    emitted module carries the fused-step family and its header repeats
    the constituent phase plan's GEMM schedule and footprint (checked
    against the plan by the kernel auditor's ``KA007`` rule).
    """
    from repro.codegen.plan import GemmOp, PointwiseOp, TransposeOp

    for op in plan.ops:
        if not isinstance(op, (GemmOp, PointwiseOp, TransposeOp)):
            raise ValueError(f"plan contains un-lowerable op {op!r}")
    family = variant_family(plan.variant)
    gemms = ", ".join(
        f"{mm}x{nn}x{kk}x{batch}" for mm, nn, kk, batch in plan.gemm_shapes()
    )
    lines = [
        f"# lowered from plan: variant={plan.variant}",
        f"# gemm schedule: {gemms or 'none'}",
        f"# temp footprint: {plan.temp_footprint_bytes} bytes",
    ]
    if fused:
        lines += [
            "# fused phases: predict+riemann+correct",
            f"# fused phase gemm schedule: {gemms or 'none'}",
            f"# fused phase temp footprint: {plan.temp_footprint_bytes} bytes",
        ]
    header = "\n".join(lines)
    n = plan.spec.order
    return generate_module_source(family, n, pde, header=header, fused=fused)
