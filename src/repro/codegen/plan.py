"""Kernel plans: the recorded operation stream of one kernel execution.

A plan is the machine model's view of a kernel: an ordered list of
operations, each knowing

* its FLOPs attributed to instruction packing widths (Fig. 9's metric),
* the byte volumes it moves per buffer (feeding the cache models), and
* which named buffers it touches in which order.

Plans are *recorded* while the numeric kernels run (see
:class:`PlanRecorder`), so shapes, padding and operation order are by
construction those of the executed code.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gemm.smallgemm import SmallGemm
from repro.machine.isa import FlopCounts, TrafficCounts

__all__ = [
    "Buffer",
    "BufferAccess",
    "GemmOp",
    "PointwiseOp",
    "TransposeOp",
    "KernelPlan",
    "PlanRecorder",
    "NULL_RECORDER",
]

_SCOPES = ("input", "output", "temp", "const")


@dataclass(frozen=True)
class Buffer:
    """A named array the kernel works on."""

    name: str
    nbytes: int
    scope: str  # input | output | temp | const

    def __post_init__(self) -> None:
        if self.scope not in _SCOPES:
            raise ValueError(f"scope must be one of {_SCOPES}")
        if self.nbytes < 0:
            raise ValueError("nbytes must be non-negative")


@dataclass(frozen=True)
class BufferAccess:
    """Bytes one operation reads from / writes to one buffer."""

    buffer: str
    read_bytes: float = 0.0
    write_bytes: float = 0.0


@dataclass(frozen=True)
class GemmOp:
    """A Loop-over-GEMM batch: ``batch`` calls of one microkernel."""

    gemm: SmallGemm
    batch: int
    a: str
    b: str
    c: str
    phase: str = ""

    @property
    def name(self) -> str:
        """Display label: microkernel shape times batch count."""
        return f"gemm[{self.gemm.m}x{self.gemm.n}x{self.gemm.k}]x{self.batch}"

    def flops(self) -> FlopCounts:
        """FLOPs of the whole batch, attributed to packing widths."""
        return self.gemm.flop_counts().scaled(self.batch)

    def traffic(self) -> TrafficCounts:
        """Bytes the batch moves (microkernel traffic times batch)."""
        t = self.gemm.traffic()
        return TrafficCounts(t.read_bytes * self.batch, t.write_bytes * self.batch)

    def accesses(self) -> tuple[BufferAccess, ...]:
        """Per-buffer byte volumes of A, B and C for the cache models."""
        g = self.gemm
        a_bytes = 8.0 * g.m * g.k * self.batch
        b_bytes = 8.0 * g.k * g.n_vectors * g.vector_doubles * self.batch
        c_bytes = 8.0 * g.m * g.n_vectors * g.vector_doubles * self.batch
        return (
            BufferAccess(self.a, read_bytes=a_bytes),
            BufferAccess(self.b, read_bytes=b_bytes),
            BufferAccess(
                self.c,
                read_bytes=c_bytes if g.accumulate else 0.0,
                write_bytes=c_bytes,
            ),
        )


@dataclass(frozen=True)
class PointwiseOp:
    """An elementwise sweep: user functions, axpy updates, source terms.

    ``eff_class`` hints the performance model about the code quality of
    the sweep: ``"default"`` for generated/inlined loops, ``"heavy"``
    for the generic kernels' virtual-call-riddled triple loops with
    runtime strides (no IPO inlining, paper Sec. III-C).
    """

    name: str
    flop_counts: FlopCounts
    buffer_accesses: tuple[BufferAccess, ...]
    phase: str = ""
    eff_class: str = "default"

    def flops(self) -> FlopCounts:
        """FLOPs of the sweep as recorded."""
        return self.flop_counts

    def traffic(self) -> TrafficCounts:
        """Total bytes moved, summed over the recorded buffer accesses."""
        return TrafficCounts(
            sum(a.read_bytes for a in self.buffer_accesses),
            sum(a.write_bytes for a in self.buffer_accesses),
        )

    def accesses(self) -> tuple[BufferAccess, ...]:
        """The recorded per-buffer accesses, unchanged."""
        return self.buffer_accesses


@dataclass(frozen=True)
class TransposeOp:
    """A data layout change (AoS <-> AoSoA): pure data movement."""

    name: str
    src: str
    dst: str
    nbytes: float
    phase: str = ""

    def flops(self) -> FlopCounts:
        """Zero -- a transpose computes nothing."""
        return FlopCounts()

    def traffic(self) -> TrafficCounts:
        """Every byte is read from ``src`` and written to ``dst`` once."""
        return TrafficCounts(read_bytes=self.nbytes, write_bytes=self.nbytes)

    def accesses(self) -> tuple[BufferAccess, ...]:
        """A full read of ``src`` and a full write of ``dst``."""
        return (
            BufferAccess(self.src, read_bytes=self.nbytes),
            BufferAccess(self.dst, write_bytes=self.nbytes),
        )


@dataclass
class KernelPlan:
    """The recorded operation stream of one kernel invocation."""

    variant: str
    spec: object  # KernelSpec; kept loose to avoid an import cycle
    buffers: dict[str, Buffer] = field(default_factory=dict)
    ops: list = field(default_factory=list)

    # -- aggregates ------------------------------------------------------

    def flop_counts(self) -> FlopCounts:
        """FLOPs of the whole plan, summed over all operations."""
        total = FlopCounts()
        for op in self.ops:
            total = total + op.flops()
        return total

    def traffic(self) -> TrafficCounts:
        """Bytes moved by the whole plan, summed over all operations."""
        total = TrafficCounts()
        for op in self.ops:
            total = total + op.traffic()
        return total

    def bytes_in_scope(self, scope: str) -> int:
        """Total bytes of buffers in one scope (input/output/temp/const)."""
        return sum(b.nbytes for b in self.buffers.values() if b.scope == scope)

    @property
    def temp_footprint_bytes(self) -> int:
        """Bytes of kernel-local temporaries -- the Sec. IV-A footprint."""
        return self.bytes_in_scope("temp")

    @property
    def total_footprint_bytes(self) -> int:
        """Bytes across all buffer scopes, temporaries and I/O alike."""
        return sum(b.nbytes for b in self.buffers.values())

    def gemm_shapes(self) -> list[tuple]:
        """Sequence of (m, n, k, batch) for every GEMM op, in order."""
        return [
            (op.gemm.m, op.gemm.n, op.gemm.k, op.batch)
            for op in self.ops
            if isinstance(op, GemmOp)
        ]

    def phases(self) -> list[str]:
        """Phase labels in execution order, consecutive repeats collapsed."""
        seen: list[str] = []
        for op in self.ops:
            if op.phase and (not seen or seen[-1] != op.phase):
                seen.append(op.phase)
        return seen

    def ops_of(self, kind) -> list:
        """All operations of one type (e.g. :class:`GemmOp`), in order."""
        return [op for op in self.ops if isinstance(op, kind)]


class PlanRecorder:
    """Collects buffers and operations while a kernel executes."""

    def __init__(self, variant: str, spec) -> None:
        self.plan = KernelPlan(variant=variant, spec=spec)
        self._phase = ""

    # -- structure -------------------------------------------------------

    def phase(self, name: str) -> None:
        """Label all subsequently recorded operations with ``name``."""
        self._phase = name

    def buffer(self, name: str, nbytes: int, scope: str) -> None:
        """Register a named buffer; re-registration must be identical."""
        existing = self.plan.buffers.get(name)
        buf = Buffer(name, int(nbytes), scope)
        if existing is not None and existing != buf:
            raise ValueError(f"buffer {name!r} re-registered with different metadata")
        self.plan.buffers[name] = buf

    def _check_buffers(self, *names: str) -> None:
        for n in names:
            if n not in self.plan.buffers:
                raise ValueError(f"operation references unregistered buffer {n!r}")

    # -- operations --------------------------------------------------------

    def gemm(self, gemm: SmallGemm, batch: int, a: str, b: str, c: str) -> None:
        """Record a Loop-over-GEMM batch over registered buffers."""
        self._check_buffers(a, b, c)
        self.plan.ops.append(GemmOp(gemm, batch, a, b, c, phase=self._phase))

    def pointwise(
        self,
        name: str,
        flops: FlopCounts,
        accesses: tuple[BufferAccess, ...],
        eff_class: str = "default",
    ) -> None:
        """Record an elementwise sweep with explicit FLOPs and accesses."""
        self._check_buffers(*(a.buffer for a in accesses))
        self.plan.ops.append(
            PointwiseOp(name, flops, tuple(accesses), phase=self._phase,
                        eff_class=eff_class)
        )

    def transpose(self, name: str, src: str, dst: str, nbytes: float) -> None:
        """Record a layout change moving ``nbytes`` from src to dst."""
        self._check_buffers(src, dst)
        self.plan.ops.append(TransposeOp(name, src, dst, nbytes, phase=self._phase))

    def finish(self) -> KernelPlan:
        """Return the completed plan."""
        return self.plan


class _NullRecorder:
    """Do-nothing recorder used by pure numeric kernel runs."""

    def phase(self, name: str) -> None:
        pass

    def buffer(self, name: str, nbytes: int, scope: str) -> None:
        pass

    def gemm(self, gemm, batch, a, b, c) -> None:
        pass

    def pointwise(self, name, flops, accesses, eff_class="default") -> None:
        pass

    def transpose(self, name, src, dst, nbytes) -> None:
        pass


NULL_RECORDER = _NullRecorder()
