"""Fused whole-step execution: one compiled program per solver step.

The three-phase compiled backend (:mod:`repro.codegen.compiled`) still
surfaces every intermediate tensor to NumPy between phases: the
predictor's ``qface`` traces, the packed face planes, the swept fluxes
and the ``gather_fstar`` scatter all round-trip through Python once per
step.  This module holds the Python-side driver of the *fused-step*
loop families (:func:`repro.codegen.lowering.fused_arg_names`): a
:class:`FusedPipeline` binds every index array, scratch tensor and
static operator a generated ``fused_step`` / ``fused_riemann_export``
kernel needs, so a whole predict -> Riemann -> correct step runs inside
compiled code and only the state stack crosses the boundary.

The pipeline is *stage-addressable* to serve every stepping mode:

``"step"``
    The whole fused step in one kernel call (serial resident path).
``"predict"``
    The fused predictor alone (parallel barrier mode runs a global
    barrier between trace publication and the Riemann phase).
``"riemann_correct"``
    Per-direction Riemann stages plus the fused corrector (barrier
    mode's second phase).
``"riemann_export"``
    Async mode: solve owned faces and publish cut-face fluxes into the
    shared mailbox from inside the compiled program.
``"finish"``
    Async mode: import neighbor fluxes into the plane suffixes and run
    the fused corrector.

Index arrays come straight from the bound
:class:`~repro.engine.facesweep.FaceSweep` (including the async
exchange partitions), so fused and phase-wise execution agree on face
enumeration by construction; argument tuples are assembled from
:func:`~repro.codegen.lowering.fused_arg_names`, so the Python call
sites cannot drift from the generated signatures.
"""

from __future__ import annotations

import time

import numpy as np

from repro.codegen.lowering import (
    fused_arg_names,
    reflect_column,
    variant_family,
)

__all__ = ["FusedPipeline"]

#: placeholder arrays passed for parameter-free PDEs (the generated
#: parameter loops are empty: ``range(NVAR, M)`` with ``NVAR == M``)
_DUMMY_P4 = np.zeros((1, 1, 1, 1))
_DUMMY_P6 = np.zeros((1, 1, 1, 1, 1, 1))
#: placeholder source block when no element carries a source (the
#: kernels never read it: every ``src_of`` entry is ``-1``)
_DUMMY_SRC = np.zeros((1, 1, 1, 1, 1, 1))


class FusedPipeline:
    """Persistent bindings of the fused-step kernels for one solver slice.

    Parameters
    ----------
    executor:
        The owning :class:`~repro.codegen.compiled.CompiledExecutor`
        (used only for its scratch conventions; calls go through the
        executor handed to :meth:`run`).
    sweep:
        The bound :class:`~repro.engine.facesweep.FaceSweep` -- its
        per-direction connectivity, exchange partitions and static
        face-parameter cache are the single source of face truth.
    variant, spec, pde:
        Kernel variant, :class:`~repro.core.spec.KernelSpec` and PDE
        system, exactly as on the solver.
    h, boundary:
        Element size and boundary-condition name.
    elements:
        ``(nel,)`` traversal-ordered global element ids of this slice
        (the whole grid serially, one shard per worker).
    qface:
        The global ``(E, 3, 2, N, N, m)`` trace array (shared memory in
        parallel mode) the fused predictor writes and the Riemann
        stages read.
    block_size:
        Element block width ``bsz`` of the fused loops.
    n_elements:
        Global element count (sizes the element-indexed maps).
    mailbox:
        Shared ``(slots, N, N, m)`` flux mailbox (async workers only).
    """

    def __init__(self, *, executor, sweep, variant, spec, pde, h,
                 boundary, elements, qface, block_size, n_elements,
                 mailbox=None):
        self.executor = executor
        self.sweep = sweep
        self.variant = variant
        self.family = variant_family(variant)
        self.spec = spec
        self.pde = pde
        self.h = float(h)
        self.boundary = boundary
        self.solver_name = sweep.riemann_name
        n, m = spec.order, pde.nquantities
        self.n, self.m = n, m
        self.elements = np.ascontiguousarray(elements, dtype=np.int64)
        self.nel = int(self.elements.size)
        self.bsz = int(block_size)
        self.n_elements = int(n_elements)
        self.qface = qface
        self.mailbox = mailbox
        bsz = self.bsz
        #: position-indexed volume average / source term of the last
        #: fused predict (row ``t`` belongs to ``elements[t]``)
        self.vavg = np.zeros((self.nel, n, n, n, m))
        self.sterm = np.zeros((self.nel, n, n, n, m))
        # -- static operator bindings ----------------------------------
        from repro.core.variants.batched import operator_set

        oset = operator_set(variant, spec, pde)
        ops = oset.ops
        self._binding = binding = {
            "qface": qface,
            "elements": self.elements,
            "nel": self.nel,
            "bsz": bsz,
            "coef": np.empty(n),
            "nderiv": np.ascontiguousarray(oset.scaled(self.h)[0]),
            "fvl": np.ascontiguousarray(ops.face_left),
            "fvr": np.ascontiguousarray(ops.face_right),
            "vavg": self.vavg,
            "sterm": self.sterm,
            "lift_l": np.ascontiguousarray(ops.lifting_left()),
            "lift_r": np.ascontiguousarray(ops.lifting_right()),
            "inv_h": 1.0 / self.h,
            "dt": 0.0,
            "src": _DUMMY_SRC,
            "src_of": np.full(self.n_elements, -1, dtype=np.int64),
        }
        # -- predictor block scratch -----------------------------------
        binding["qblk"] = np.zeros((bsz, n, n, n, m))
        binding["srcblk"] = np.zeros((bsz, n, n, n, n, m))
        binding["smask"] = np.zeros(bsz, dtype=np.bool_)
        binding["flx"] = np.zeros((bsz, n, n, n, m))
        binding["qavg"] = np.zeros((bsz, n, n, n, m))
        binding["savg"] = np.zeros((bsz, n, n, n, m))
        for d in range(3):
            binding[f"favg{d}"] = np.zeros((bsz, n, n, n, m))
        if self.family == "splitck":
            binding["stp_a"] = np.zeros((bsz, n, n, n, m))
            binding["stp_b"] = np.zeros((bsz, n, n, n, m))
        else:  # spacetime: the full space-time polynomial + derivatives
            binding["stp_a"] = np.zeros((n + 1, bsz, n, n, n, m))
            binding["stp_b"] = np.zeros((n, 3, bsz, n, n, n, m))
        # -- per-direction face bindings -------------------------------
        kmax = 1
        for d, df in enumerate(sweep.faces):
            nf = df.n_faces
            kmax = max(kmax, nf * n * n)
            binding[f"left{d}"] = df.left
            binding[f"right{d}"] = df.right
            binding[f"il{d}"] = df.interior_left
            binding[f"ir{d}"] = df.interior_right
            binding[f"gl{d}"] = df.ghost_left
            binding[f"gr{d}"] = df.ghost_right
            binding[f"refl{d}"] = reflect_column(pde, boundary, d)
            binding[f"lo{d}"] = df.lo_face
            binding[f"hi{d}"] = df.hi_face
            binding[f"ql{d}"] = np.zeros((nf, n, n, m))
            binding[f"qr{d}"] = np.zeros((nf, n, n, m))
            if sweep.exchange is not None:
                binding[f"nsolve{d}"] = int(sweep._n_solve[d])
                binding[f"flux{d}"] = sweep._flux_buf[d]
                binding[f"exr{d}"] = sweep._export_rows[d]
                binding[f"exs{d}"] = sweep._export_slots[d]
            else:
                binding[f"nsolve{d}"] = nf
                binding[f"flux{d}"] = np.zeros((nf, n, n, m))
        for name in ("eml", "emr", "fl", "fr"):
            binding[name] = np.zeros((kmax, m))
        binding["sl"] = np.zeros(kmax)
        binding["sr"] = np.zeros(kmax)
        binding["mailbox"] = mailbox
        # -- corrector block scratch -----------------------------------
        binding["eblk"] = np.zeros(bsz, dtype=np.int64)
        binding["vblk"] = np.zeros((bsz, n, n, n, m))
        binding["sblk"] = np.zeros((bsz, n, n, n, m))
        binding["oblk"] = np.zeros((bsz, n, n, n, m))
        binding["fstar"] = np.zeros((bsz, 3, 2, n, n, m))
        binding["jumps"] = np.zeros((bsz, 3, 2, n, n, m))
        binding["emb"] = np.zeros((bsz * n * n, m))
        binding["fbuf"] = np.zeros((bsz * n * n, m))
        # face parameters bind lazily from the sweep's static cache
        binding["pl0"] = binding["pr0"] = _DUMMY_P4
        binding["pl1"] = binding["pr1"] = _DUMMY_P4
        binding["pl2"] = binding["pr2"] = _DUMMY_P4
        binding["efp"] = _DUMMY_P6
        self._params_bound_id = None
        #: ``(key-tuple, rows)`` cache of the dense source table
        self._source_keys: tuple | None = None

    # -- lazy per-run bindings ---------------------------------------------

    def _ensure_params(self, states) -> None:
        """Bind the sweep's static face parameters (once per binding).

        Re-gathers after :meth:`~repro.engine.facesweep.FaceSweep.
        invalidate_parameters` -- the cached array identity tells us
        when the sweep rebound.
        """
        sweep = self.sweep
        if sweep._face_params is None:
            sweep.bind_parameters(np.asarray(states))
        current = id(sweep._face_params)
        if current == self._params_bound_id:
            return
        self._params_bound_id = current
        binding = self._binding
        for d, (pl, pr) in enumerate(sweep._face_params):
            binding[f"pl{d}"] = _DUMMY_P4 if pl is None else pl
            binding[f"pr{d}"] = _DUMMY_P4 if pr is None else pr
        efp = sweep.element_face_params
        binding["efp"] = _DUMMY_P6 if efp is None else efp

    def set_sources(self, source_map: dict) -> None:
        """Refresh the dense source table from ``{element: ElementSource}``.

        The element set is static across a run (registered point
        sources never move), so ``src_of`` rebuilds only when the key
        set changes; the per-order term blocks are re-evaluated every
        step (wavelet derivatives depend on the step's start time).
        ``None`` values zero their row (a source whose combined terms
        vanish contributes exactly nothing).
        """
        keys = tuple(sorted(int(e) for e in source_map))
        binding = self._binding
        n, m = self.n, self.m
        if keys != self._source_keys:
            self._source_keys = keys
            src_of = np.full(self.n_elements, -1, dtype=np.int64)
            for row, e in enumerate(keys):
                src_of[e] = row
            binding["src_of"] = src_of
            binding["src"] = (
                np.zeros((len(keys), n, n, n, n, m)) if keys else _DUMMY_SRC
            )
        src = binding["src"]
        for row, e in enumerate(keys):
            source = source_map[e]
            if source is None:
                src[row] = 0.0
                continue
            for o in range(n):
                src[row, o] = source.term(o)

    # -- execution ---------------------------------------------------------

    def _args(self, names, overrides) -> list:
        """Argument tuple of one generated kernel, by signature name.

        Raises ``KeyError`` on an unbound name -- a silent ``None``
        would surface as an opaque ``TypeError`` deep inside the
        generated module.
        """
        binding = self._binding
        return [
            overrides[name] if name in overrides else binding[name]
            for name in names
        ]

    def _dir_args(self, d: int) -> list:
        """Arguments of the standalone ``riemann_dir_d{d}`` kernel."""
        binding = self._binding
        values = {
            "qface": binding["qface"],
            "left": binding[f"left{d}"], "right": binding[f"right{d}"],
            "il": binding[f"il{d}"], "ir": binding[f"ir{d}"],
            "gl": binding[f"gl{d}"], "gr": binding[f"gr{d}"],
            "refl": binding[f"refl{d}"], "k1": binding[f"nsolve{d}"],
            "ql": binding[f"ql{d}"], "qr": binding[f"qr{d}"],
            "pl": binding[f"pl{d}"], "pr": binding[f"pr{d}"],
            "eml": binding["eml"], "emr": binding["emr"],
            "fl": binding["fl"], "fr": binding["fr"],
            "sl": binding["sl"], "sr": binding["sr"],
            "flux": binding[f"flux{d}"],
        }
        return [values[name] for name in fused_arg_names("riemann_dir")]

    def _publish_fluxes(self) -> None:
        """Register the pipeline's flux planes on the sweep.

        Keeps :meth:`~repro.engine.facesweep.FaceSweep.gather_fstar`
        (and any diagnostic reading ``sweep.fluxes``) consistent with
        whichever path -- fused or phase-wise -- ran last.
        """
        for d in range(3):
            self.sweep.fluxes[d] = self._binding[f"flux{d}"]

    def run(self, executor, program, stage: str, *, q=None, qidx=None,
            qin=None, qout=None, qidx_in=None, qidx_out=None,
            dt=None, sources=None, states=None):
        """Execute one fused stage; returns its sub-phase seconds dict.

        ``q``/``qidx`` bind the state stack and its row map for the
        predict-carrying stages (``qidx[t]`` is the row of traversal
        position ``t``: ``arange`` on the resident stack, the element
        ids on a canonical array).  ``qin``/``qout`` (with their row
        maps) bind the corrector's input and output for the split
        stages; ``states`` feeds the lazy parameter gather.  Kernel
        invocations go through ``executor._call`` so first-call JIT
        time lands in compile attribution like every other kernel.
        """
        binding = self._binding
        if stage in ("step", "riemann_correct", "riemann_export"):
            self._ensure_params(states if states is not None else q)
        if dt is not None:
            from repro.core.variants.base import taylor_coefficients

            binding["dt"] = float(dt)
            binding["coef"][:] = taylor_coefficients(self.n, float(dt))
        if sources is not None:
            self.set_sources(sources)
        t0 = time.perf_counter()
        if stage == "step":
            over = {"q": q, "qidx": qidx}
            executor._call(
                program, "fused_step", "fused",
                *self._args(fused_arg_names("fused_step"), over),
            )
            self._publish_fluxes()
            return {"fused": time.perf_counter() - t0}
        if stage == "predict":
            over = {"q": q, "qidx": qidx}
            executor._call(
                program, "fused_predict", "fused",
                *self._args(fused_arg_names("fused_predict"), over),
            )
            return {"predict": time.perf_counter() - t0}
        if stage == "riemann_correct":
            for d in range(3):
                executor._call(
                    program, f"riemann_dir_d{d}", "fused", *self._dir_args(d)
                )
            self._publish_fluxes()
            t1 = time.perf_counter()
            over = {"qin": qin, "qout": qout,
                    "qidx_in": qidx_in, "qidx_out": qidx_out}
            executor._call(
                program, "fused_correct", "fused",
                *self._args(fused_arg_names("fused_correct"), over),
            )
            return {"riemann": t1 - t0, "correct": time.perf_counter() - t1}
        if stage == "riemann_export":
            executor._call(
                program, "fused_riemann_export", "fused",
                *self._args(fused_arg_names("fused_riemann_export"), {}),
            )
            self._publish_fluxes()
            return {"riemann": time.perf_counter() - t0, "publish": 0.0}
        if stage == "finish":
            for d in range(3):
                executor._call(
                    program, "mailbox_import", "fused",
                    binding[f"flux{d}"], self.sweep._import_slots[d],
                    binding["mailbox"], binding[f"nsolve{d}"],
                )
            t1 = time.perf_counter()
            over = {"qin": qin, "qout": qout,
                    "qidx_in": qidx_in, "qidx_out": qidx_out}
            executor._call(
                program, "fused_correct", "fused",
                *self._args(fused_arg_names("fused_correct"), over),
            )
            return {"import": t1 - t0, "correct": time.perf_counter() - t1}
        raise ValueError(f"unknown fused stage {stage!r}")
