"""Kernel Generator analog (paper Sec. II-D).

ExaHyPE's Kernel Generator renders C++ kernels from Jinja2 templates,
specialized by order, PDE size and architecture.  Here the same role is
played by **kernel plans**: running a kernel variant once with a
:class:`~repro.codegen.plan.PlanRecorder` attached yields the explicit
sequence of GEMM / pointwise / transpose operations the kernel
executes, with concrete shapes, strides, padding and buffer sizes.
Because the plan is recorded from the *same code path* that computes
the numbers, the machine model can never drift from the numerics.

* :mod:`repro.codegen.plan` -- buffers, operation records, kernel plans
  and the recorder.
* :mod:`repro.codegen.controller` -- the "template variables"
  (padding, alignment, array sizes) derived from a specification,
  mirroring the Kernel Generator's MVC controller.
* :mod:`repro.codegen.generator` -- the user-facing facade: build the
  plan for a (spec, variant, PDE) triple.
* :mod:`repro.codegen.render` -- renders a plan as C-like source for
  inspection, the analog of the generated kernel files.
* :mod:`repro.codegen.lowering` -- lowers a plan to executable Python
  kernel source (the compiled backend's input).
* :mod:`repro.codegen.executor` -- the pluggable ``Executor`` protocol
  (NumPy reference backend, backend resolution and fallback).
* :mod:`repro.codegen.compiled` -- the compiled executor and the
  process-wide plan registry caching lowered programs.
"""

from repro.codegen.plan import Buffer, BufferAccess, GemmOp, KernelPlan, PlanRecorder, PointwiseOp, TransposeOp
from repro.codegen.controller import template_variables
from repro.codegen.executor import (
    BACKEND_NAMES,
    Executor,
    ExecutorStats,
    ExecutorUnavailable,
    NumpyExecutor,
    available_backends,
    numba_available,
    resolve_backend_name,
    resolve_executor,
)
from repro.codegen.compiled import (
    CompiledExecutor,
    NumbaExecutor,
    PlanRegistry,
    RegistryStats,
    clear_plan_registry,
    plan_registry,
)
from repro.codegen.generator import KernelGenerator

__all__ = [
    "Buffer",
    "BufferAccess",
    "GemmOp",
    "PointwiseOp",
    "TransposeOp",
    "KernelPlan",
    "PlanRecorder",
    "KernelGenerator",
    "template_variables",
    "BACKEND_NAMES",
    "Executor",
    "ExecutorStats",
    "ExecutorUnavailable",
    "NumpyExecutor",
    "CompiledExecutor",
    "NumbaExecutor",
    "PlanRegistry",
    "RegistryStats",
    "plan_registry",
    "clear_plan_registry",
    "available_backends",
    "numba_available",
    "resolve_backend_name",
    "resolve_executor",
]
