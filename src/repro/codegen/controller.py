"""Kernel Generator controller: computes the template variables.

ExaHyPE's Kernel Generator follows an MVC split (paper Sec. II-D): a
Controller derives all size/padding/alignment constants from the
specification, and Jinja2 templates (the Views) consume them.  This
module reproduces the Controller: :func:`template_variables` returns
the dictionary a template would render with, using ExaHyPE's naming
(``nVar``, ``nVarPad``, ``nDof``, ...), including the ``VECTLENGTH`` /
``VECTSTRIDE`` / ``ALIGNMENT`` constants of the vectorized user
function API (Fig. 8).
"""

from __future__ import annotations

from repro.core.spec import KernelSpec

__all__ = ["template_variables"]


def template_variables(spec: KernelSpec) -> dict:
    """Derive the code-generation constants for a kernel specification."""
    arch = spec.architecture
    n = spec.order
    m = spec.nquantities
    return {
        # problem sizes
        "nDim": spec.dim,
        "nDof": n,
        "nDof3D": n if spec.dim == 3 else 1,
        "nDofPad": arch.pad_doubles(n),
        "nVar": spec.nvar,
        "nPar": spec.nparam,
        "nData": m,  # variables + parameters stored per node
        "nDataPad": arch.pad_doubles(m),
        # architecture
        "architecture": arch.name,
        "alignmentSize": arch.alignment_bytes,
        "simdWidth": arch.vector_doubles,
        # vectorized user-function API constants (paper Fig. 8)
        "VECTLENGTH": n,
        "VECTSTRIDE": arch.pad_doubles(n),
        "ALIGNMENT": arch.alignment_bytes,
        # useful precomputed strides
        "aosNodeStride": arch.pad_doubles(m),
        "aosoaLineStride": arch.pad_doubles(n),
        "quadratureType": spec.quadrature,
    }
