"""Pluggable execution backends for the solver's hot phases.

The repo's kernels have two faces: the *recorded* one (a
:class:`~repro.codegen.plan.KernelPlan` feeding the machine model) and
the *executed* one (NumPy array programs).  This module makes the
executed face pluggable: an :class:`Executor` carries the three hot
phases of a solver step -- the batched space-time predictor, the
face-sweep Riemann solve and the block corrector -- and a solver (or
worker process) holds exactly one executor instance.

Backends
--------
``numpy``
    :class:`NumpyExecutor` -- the seed path, verbatim.  Every call
    delegates to the existing NumPy implementations, so results are
    *bitwise identical* to a solver without any executor plumbing.
``numba``
    :class:`~repro.codegen.compiled.NumbaExecutor` -- generated
    fixed-shape kernels (see :mod:`repro.codegen.lowering`) jitted with
    Numba and cached in a process-wide plan registry.
``auto``
    ``numba`` when importable, else ``numpy``.

Selection goes through :func:`resolve_executor`, which never raises on
a missing accelerator: requesting ``"numba"`` on a machine without
Numba returns a :class:`NumpyExecutor` whose ``fallback_reason``
records why (the conformance suite runs either way).  Only unknown
backend *names* are an error.
"""

from __future__ import annotations

import importlib.util
import os
import time
import warnings
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "Executor",
    "ExecutorStats",
    "ExecutorUnavailable",
    "NumpyExecutor",
    "BACKEND_NAMES",
    "numba_available",
    "available_backends",
    "resolve_backend_name",
    "resolve_executor",
]

#: backend names accepted by ``ADERDGSolver(backend=...)``
BACKEND_NAMES = ("auto", "numpy", "numba")


class ExecutorUnavailable(RuntimeError):
    """A compiled backend cannot run here (missing JIT, bad toolchain)."""


@dataclass
class ExecutorStats:
    """Wall-clock bookkeeping of one executor instance.

    ``compile_s``/``execute_s`` map phase names (``"predict"``,
    ``"riemann"``, ``"correct"``) to accumulated seconds; compiled
    executors attribute each kernel's first call (where lazy native
    compilation happens) to ``compile_s``.  ``fallbacks`` records why a
    phase ran on NumPy instead of compiled code, keyed by a short
    context string -- one entry per distinct reason, not per call.
    """

    compile_s: dict[str, float] = field(default_factory=dict)
    execute_s: dict[str, float] = field(default_factory=dict)
    fallbacks: dict[str, str] = field(default_factory=dict)
    #: steps dispatched through the fused whole-step program
    fused_steps: int = 0
    #: steps dispatched through the three-phase (per-kernel) path
    phase_steps: int = 0
    #: layout pack/unpack calls actually executed (ingest/egress only
    #: on the resident path; twice per block per step without it)
    pack_calls: int = 0
    unpack_calls: int = 0
    pack_bytes: int = 0
    unpack_bytes: int = 0
    #: bytes of pack/unpack traffic the resident state skipped because
    #: the block stack stayed valid across steps
    pack_bytes_avoided: int = 0

    def add_compile(self, phase: str, seconds: float) -> None:
        """Accumulate compile seconds against ``phase``."""
        self.compile_s[phase] = self.compile_s.get(phase, 0.0) + seconds

    def add_execute(self, phase: str, seconds: float) -> None:
        """Accumulate execute seconds against ``phase``."""
        self.execute_s[phase] = self.execute_s.get(phase, 0.0) + seconds

    def note_fallback(self, context: str, reason: str) -> None:
        """Record (once) that ``context`` fell back to NumPy."""
        self.fallbacks.setdefault(context, reason)

    def note_fused_step(self) -> None:
        """Count one step dispatched through the fused program."""
        self.fused_steps += 1

    def note_phase_step(self) -> None:
        """Count one step dispatched through the three-phase path."""
        self.phase_steps += 1

    def note_resident_traffic(self, state) -> None:
        """Fold a :class:`~repro.core.layouts.ResidentBlockState`'s
        pack/unpack counters into these stats.

        Counters are *snapshots* of the state's lifetime totals (the
        call is idempotent, safe once per step).  ``pack_bytes_avoided``
        is the steady-state traffic the resident stack made unnecessary
        (two full-state copies per fused step, minus the ingest/egress
        copies that actually ran).
        """
        self.pack_calls = state.pack_calls
        self.unpack_calls = state.unpack_calls
        self.pack_bytes = state.pack_bytes
        self.unpack_bytes = state.unpack_bytes
        avoided = (self.fused_steps * state.step_traffic_bytes()
                   - state.pack_bytes - state.unpack_bytes)
        self.pack_bytes_avoided = max(0, avoided)

    @property
    def total_compile_s(self) -> float:
        """Compile seconds summed over all phases."""
        return sum(self.compile_s.values())

    def drain_compile_s(self) -> float:
        """Return and reset the accumulated compile seconds.

        The solver calls this once per step to report *new* compilation
        work in ``last_step_timings`` without double-counting.
        """
        total = self.total_compile_s
        self.compile_s.clear()
        return total


class Executor:
    """Execution backend interface (and NumPy reference implementation).

    The three phase methods mirror the call sites they replace; the
    base class implements each by delegating to the seed NumPy code, so
    a subclass overrides only what it accelerates and inherits a
    correct fallback for the rest.  Imports inside the methods keep
    :mod:`repro.codegen` free of import cycles with the engine layer.
    """

    #: backend name reported in telemetry
    name = "base"
    #: whether this executor runs generated (compiled) kernels
    is_compiled = False

    def __init__(self) -> None:
        self.stats = ExecutorStats()
        #: why a requested compiled backend resolved to this executor
        #: (set by :func:`resolve_executor` on fallback), else ``None``
        self.fallback_reason: str | None = None

    # -- phases ----------------------------------------------------------

    def predict_block(self, driver, q, dt: float, h: float, sources: list):
        """Run the STP on one canonical element block.

        ``driver`` is the owning
        :class:`~repro.core.variants.batched.BatchedSTP`; returns the
        raw block outputs ``(qavg_c, vavg_c, savg_c, faces)`` exactly
        like ``BatchedSTP._predict_raw``.
        """
        started = time.perf_counter()
        result = driver._run_numpy(q, dt, h, sources)
        self.stats.add_execute("predict", time.perf_counter() - started)
        return result

    def riemann_sweep(self, pde, solver_name: str, q_left, q_right,
                      params_left, params_right, d: int):
        """Solve the Riemann problems of one packed face plane.

        Arguments match the :data:`repro.engine.riemann.SWEEP_SOLVERS`
        signature; returns the ``(n_faces, N, N, m)`` numerical fluxes.
        """
        from repro.engine.riemann import SWEEP_SOLVERS

        started = time.perf_counter()
        result = SWEEP_SOLVERS[solver_name](
            pde, q_left, q_right, params_left, params_right, d
        )
        self.stats.add_execute("riemann", time.perf_counter() - started)
        return result

    def corrector_block(self, q, vavg, savg, qface, fstar, face_params,
                        h: float, pde, ops, out=None, arena=None):
        """Apply the corrector to a whole element block.

        Arguments match :func:`repro.core.corrector.corrector_all`;
        ``arena`` optionally supplies the block's scratch temporaries.
        """
        from repro.core.corrector import corrector_all

        started = time.perf_counter()
        result = corrector_all(
            q, vavg, savg, qface, fstar, face_params, h, pde, ops, out=out,
            arena=arena,
        )
        self.stats.add_execute("correct", time.perf_counter() - started)
        return result

    # -- fused whole-step entry point ------------------------------------

    def step_block(self, pipeline, stage: str = "step", **kwargs):
        """Run one fused-pipeline stage entirely inside compiled code.

        ``pipeline`` is a :class:`~repro.codegen.fusedstep.FusedPipeline`
        bound to this executor; ``stage`` selects which slice of the
        step to run (``"step"`` for predict+riemann+correct, or the
        async worker stages ``"riemann_export"`` / ``"finish"``).
        Returns ``None`` when this backend has no fused program for the
        pipeline's plan -- callers must then fall back to the
        three-phase path.  The base (NumPy) executor never fuses.
        """
        return None

    # -- introspection ---------------------------------------------------

    def describe(self) -> dict:
        """Telemetry summary: name, compiled flag, fallbacks seen."""
        return {
            "backend": self.name,
            "compiled": self.is_compiled,
            "fallback_reason": self.fallback_reason,
            "fallbacks": dict(self.stats.fallbacks),
        }

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class NumpyExecutor(Executor):
    """The seed NumPy path, unchanged -- the conformance reference.

    Every phase delegates to the exact code the solver ran before
    executors existed, so a ``backend="numpy"`` solver is bitwise
    identical to the seed across serial/parallel and face-sweep modes.
    """

    name = "numpy"
    is_compiled = False


def numba_available() -> bool:
    """Whether the ``numba`` package is importable in this process."""
    return importlib.util.find_spec("numba") is not None


def available_backends() -> dict[str, bool]:
    """Availability of each concrete backend name on this machine."""
    return {"numpy": True, "numba": numba_available()}


def _apply_env_override(backend: str) -> str:
    """Resolve an ``"auto"`` request against the ``REPRO_BACKEND`` env var.

    This is the **only** place the environment is consulted, and every
    caller goes through :func:`resolve_backend_name` /
    :func:`resolve_executor` exactly once per solver (or per service
    job spec) -- a mid-process env change therefore never silently
    flips the backend of work that was already admitted.
    """
    if backend != "auto":
        return backend
    # environment override: pin the default backend fleet-wide
    # (the test-suite sets REPRO_BACKEND=numpy so bitwise-identity
    # tests stay deterministic on machines with Numba installed)
    env = os.environ.get("REPRO_BACKEND", "auto") or "auto"
    if env != "generated" and env not in BACKEND_NAMES:
        # reject typos up front with the source named: a bad env
        # value silently resolving to some default would make every
        # conformance run lie about what it measured
        raise ValueError(
            f"unknown backend {env!r} set via the REPRO_BACKEND "
            "environment variable; available: "
            f"{sorted(BACKEND_NAMES + ('generated',))}"
        )
    return env


def resolve_backend_name(backend="auto") -> str:
    """Resolve a backend request to a **concrete** backend name.

    Reads the ``REPRO_BACKEND`` environment override (and Numba
    availability) exactly once, returning ``"numpy"``, ``"numba"`` or
    ``"generated"`` -- never ``"auto"``.  Callers that must pin a
    job's backend at admission time (:class:`repro.service.JobSpec`)
    resolve through this function and pass the concrete name on, so a
    later env change cannot silently override an already-validated
    job.  Accepts an :class:`Executor` instance (its name) and raises
    ``ValueError`` on unknown names, exactly like
    :func:`resolve_executor`.
    """
    if isinstance(backend, Executor):
        return backend.name
    backend = _apply_env_override(backend)
    if backend == "generated":
        return "generated"
    if backend not in BACKEND_NAMES:
        raise ValueError(
            f"unknown backend {backend!r}; available: {sorted(BACKEND_NAMES)}"
        )
    if backend == "auto":
        return "numba" if numba_available() else "numpy"
    return backend


def resolve_executor(backend="auto") -> Executor:
    """Resolve a backend request into an :class:`Executor` instance.

    ``backend`` may be a name from :data:`BACKEND_NAMES` or an already
    constructed :class:`Executor` (returned as-is).  ``"auto"`` picks
    the compiled backend when Numba is importable and NumPy otherwise,
    unless the ``REPRO_BACKEND`` environment variable pins a concrete
    name; an explicit ``"numba"`` on a machine without Numba *warns and
    falls back* rather than raising, so scripts stay portable.  Unknown
    names raise ``ValueError``.
    """
    if isinstance(backend, Executor):
        return backend
    backend = _apply_env_override(backend)
    if backend == "generated":
        # undocumented testing backend: the generated kernels executed
        # as plain Python (no JIT), used by the conformance suite to
        # exercise the compiled code path on machines without Numba
        from repro.codegen.compiled import CompiledExecutor

        return CompiledExecutor()
    if backend not in BACKEND_NAMES:
        raise ValueError(
            f"unknown backend {backend!r}; available: {sorted(BACKEND_NAMES)}"
        )
    if backend == "numpy":
        return NumpyExecutor()
    if backend == "auto" and not numba_available():
        return NumpyExecutor()
    # backend == "numba", or "auto" with numba importable
    from repro.codegen.compiled import NumbaExecutor

    try:
        return NumbaExecutor()
    except ExecutorUnavailable as exc:
        if backend == "numba":
            warnings.warn(
                f"backend 'numba' unavailable ({exc}); falling back to numpy",
                RuntimeWarning,
                stacklevel=2,
            )
        fallback = NumpyExecutor()
        fallback.fallback_reason = str(exc)
        return fallback


def _as_float_array(x) -> np.ndarray:
    """Contiguous float64 view/copy of ``x`` (compiled-kernel input)."""
    return np.ascontiguousarray(np.asarray(x, dtype=np.float64))
