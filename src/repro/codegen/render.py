"""Render a kernel plan as C-like source (the generated-kernel view).

The Kernel Generator's Jinja2 templates emit C++ with hard-coded
constants, aligned buffer declarations and LIBXSMM calls (paper
Secs. II-D, III).  This renderer produces the equivalent listing from a
recorded plan -- useful for inspecting what a variant does at a given
order, and exercised by the test-suite as a stable textual artifact.
"""

from __future__ import annotations

from repro.codegen.controller import template_variables
from repro.codegen.plan import GemmOp, KernelPlan, PointwiseOp, TransposeOp
from repro.core.spec import KernelSpec

__all__ = ["render_plan"]


def _buffer_decl(buf) -> str:
    doubles = buf.nbytes // 8
    qualifier = {
        "const": "static const",
        "input": "/* in  */ const",
        "output": "/* out */",
        "temp": "",
    }[buf.scope]
    return f"  {qualifier} double {buf.name}[{doubles}] __attribute__((aligned(ALIGNMENT)));"


def _gemm_line(op: GemmOp) -> str:
    g = op.gemm
    fn = f"gemm_{g.m}_{g.n}_{g.k}" + ("_acc" if g.accumulate else "")
    call = f"{fn}({op.a}, {op.b}, {op.c}); /* ld=({g.lda},{g.ldb},{g.ldc}) */"
    if op.batch > 1:
        return f"  for (int s = 0; s < {op.batch}; s++) {call}"
    return f"  {call}"


def _pointwise_line(op: PointwiseOp) -> str:
    width = max(
        (w for w, f in op.flop_counts.by_width().items() if f > 0), default=64
    )
    pragma = "#pragma omp simd aligned(...)\n  " if width > 64 else ""
    bufs = ", ".join(a.buffer for a in op.buffer_accesses)
    return f"  {pragma}{op.name}({bufs}); /* {op.flop_counts.total:.0f} flops @ {width}-bit */"


def _transpose_line(op: TransposeOp) -> str:
    return f"  transpose_{op.name.replace('->', '_to_')}({op.src}, {op.dst}); /* {op.nbytes:.0f} B */"


def render_plan(plan: KernelPlan, spec: KernelSpec) -> str:
    """Render ``plan`` as a C-like kernel listing."""
    tvars = template_variables(spec)
    lines = [
        f"// Generated STP kernel: variant={plan.variant}, "
        f"order={spec.order}, nData={tvars['nData']} (pad {tvars['nDataPad']}), "
        f"arch={spec.arch}",
        f"// temp footprint: {plan.temp_footprint_bytes} bytes",
        f"void stp_{plan.variant}_{spec.order}(/* ... */) {{",
    ]
    for buf in plan.buffers.values():
        lines.append(_buffer_decl(buf))
    lines.append("")
    phase = None
    for op in plan.ops:
        if op.phase != phase:
            phase = op.phase
            lines.append(f"  /* --- {phase or 'main'} --- */")
        if isinstance(op, GemmOp):
            lines.append(_gemm_line(op))
        elif isinstance(op, TransposeOp):
            lines.append(_transpose_line(op))
        elif isinstance(op, PointwiseOp):
            lines.append(_pointwise_line(op))
        else:  # pragma: no cover - defensive
            lines.append(f"  /* unknown op {op!r} */")
    lines.append("}")
    return "\n".join(lines)
