"""Plane-wave scenarios with exact solutions.

Periodic boxes carrying a single plane wave; the analytic solution at
any time allows measuring the discretization error and verifying the
scheme's convergence order (``N`` nodes per dimension give ``N``-th
order convergence, paper Sec. II-A).
"""

from __future__ import annotations

import numpy as np

from repro.engine.solver import ADERDGSolver
from repro.mesh.grid import UniformGrid
from repro.pde import AcousticPDE, ElasticPDE

__all__ = ["acoustic_plane_wave_setup", "elastic_plane_wave_setup", "solution_error"]


def acoustic_plane_wave_setup(
    elements: int = 2,
    order: int = 4,
    variant: str = "splitck",
    rho: float = 1.0,
    c: float = 1.0,
    k=(2 * np.pi, 0.0, 0.0),
    cfl: float = 0.4,
    **solver_kwargs,
):
    """Periodic acoustic plane wave; returns ``(solver, exact_solution)``.

    Extra keyword arguments (``backend=``, ``batch_size=``, ...) are
    forwarded to :class:`~repro.engine.solver.ADERDGSolver`.
    """
    pde = AcousticPDE()
    wave = AcousticPDE.plane_wave(np.asarray(k, dtype=float), rho, c)
    grid = UniformGrid((elements,) * 3)
    solver = ADERDGSolver(
        grid, pde, order=order, variant=variant, riemann="upwind", cfl=cfl,
        **solver_kwargs,
    )

    def init(points):
        params = np.broadcast_to([rho, c], points.shape[:-1] + (2,))
        return pde.embed(wave(points, 0.0), params)

    solver.set_initial_condition(init)
    return solver, wave


def elastic_plane_wave_setup(
    elements: int = 2,
    order: int = 4,
    variant: str = "splitck",
    rho: float = 2.7,
    cp: float = 6.0,
    cs: float = 3.464,
    mode: str = "p",
    k=(2 * np.pi, 0.0, 0.0),
    cfl: float = 0.4,
    **solver_kwargs,
):
    """Periodic elastic P- or S-wave; returns ``(solver, exact_solution)``.

    Extra keyword arguments (``backend=``, ``batch_size=``, ...) are
    forwarded to :class:`~repro.engine.solver.ADERDGSolver`.
    """
    pde = ElasticPDE()
    wave = ElasticPDE.plane_wave(np.asarray(k, dtype=float), rho, cp, cs, mode=mode)
    grid = UniformGrid((elements,) * 3)
    solver = ADERDGSolver(
        grid, pde, order=order, variant=variant, riemann="upwind", cfl=cfl,
        **solver_kwargs,
    )

    def init(points):
        params = np.broadcast_to([rho, cp, cs], points.shape[:-1] + (3,))
        return pde.embed(wave(points, 0.0), params)

    solver.set_initial_condition(init)
    return solver, wave


def solution_error(solver: ADERDGSolver, exact, norm: str = "max") -> float:
    """Error of the current solver state against ``exact(points, t)``."""
    nvar = solver.pde.nvar
    errs = []
    for e in range(solver.grid.n_elements):
        pts = solver.grid.node_coordinates(e, solver.ops)
        diff = solver.states[e][..., :nvar] - exact(pts, solver.t)
        errs.append(np.abs(diff).max() if norm == "max" else np.sqrt((diff**2).mean()))
    return float(max(errs) if norm == "max" else np.sqrt(np.mean(np.square(errs))))
