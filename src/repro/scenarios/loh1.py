"""LOH1: Layer Over a Halfspace (paper Sec. VI's benchmark scenario).

The established seismic benchmark [Day & Bradley]: a 1 km soft
sediment layer over a hard-rock halfspace, excited by a double-couple
point source below the interface; receivers on the free surface record
seismograms.  The paper runs it with a curvilinear boundary-fitted
mesh, storing 9 transformation entries per node -- the m = 21 workload
all performance figures use.

This reproduction keeps the material contrast, the m = 21 curvilinear
quantity layout, the double-couple source and the surface receivers,
but shrinks the domain so the NumPy engine finishes in seconds.  The
*performance* experiments never need the large run: like the paper's
per-core analysis, they operate on the per-element kernels.

Material (original LOH1 values, in km, km/s, g/cm^3):

========== ===== ===== =====
region      rho   cp    cs
========== ===== ===== =====
layer       2.6   4.0   2.0
halfspace   2.7   6.0   3.464
========== ===== ===== =====
"""

from __future__ import annotations

import numpy as np

from repro.engine.receivers import Receiver
from repro.engine.solver import ADERDGSolver
from repro.engine.source import PointSource, RickerWavelet
from repro.mesh.curvilinear import IdentityTransform, SinusoidalTransform
from repro.mesh.grid import UniformGrid
from repro.pde import CurvilinearElasticPDE
from repro.pde.elastic import SXY

__all__ = ["LOH1Scenario"]

LAYER = dict(rho=2.6, cp=4.0, cs=2.0)
HALFSPACE = dict(rho=2.7, cp=6.0, cs=3.464)


class LOH1Scenario:
    """A shrunk LOH1 setup on the curvilinear m = 21 elastic system.

    Parameters
    ----------
    elements:
        Elements per dimension (cubic domain).
    order:
        ADER-DG order ``N``.
    domain_km:
        Edge length of the cubic domain; the sediment layer occupies
        the top ``layer_km`` of it (z is depth-up: the free surface is
        the z = domain top).
    curvilinear_amplitude:
        Amplitude of the sinusoidal boundary-fitted mesh perturbation;
        0 selects the identity transform.
    batch_size, num_workers:
        Execution knobs forwarded to
        :class:`~repro.engine.solver.ADERDGSolver`: element-block
        batching and multi-core sharded execution.  With
        ``num_workers``, close the scenario (context manager or
        :meth:`close`) to release the worker pool.
    face_sweep:
        Forwarded to the solver: vectorized Riemann/corrector sweeps
        (default) vs. the legacy per-element loops.
    backend:
        Kernel executor backend forwarded to the solver
        (``"auto"`` / ``"numpy"`` / ``"numba"``; see
        ``docs/backends.md``).
    stepping:
        Parallel step protocol forwarded to the solver
        (``"barrier"`` / ``"async"``; see ``docs/stepping.md``).
    fuse:
        Fused whole-step execution mode forwarded to the solver
        (``"auto"`` / ``True`` / ``False``; see ``docs/backends.md``).
    on_worker_failure:
        Crash-recovery policy forwarded to the solver
        (``"raise"`` / ``"respawn"`` / ``"serial"``; see
        ``docs/parallel.md``).
    """

    def __init__(
        self,
        elements: int = 3,
        order: int = 4,
        variant: str = "splitck",
        domain_km: float = 3.0,
        layer_km: float = 1.0,
        source_depth_km: float = 2.0,
        curvilinear_amplitude: float = 0.05,
        cfl: float = 0.4,
        batch_size: int | None = None,
        num_workers: int | None = None,
        face_sweep: bool = True,
        backend: str = "auto",
        stepping: str = "barrier",
        fuse="auto",
        on_worker_failure: str = "raise",
    ):
        self.pde = CurvilinearElasticPDE()
        self.domain_km = domain_km
        self.layer_km = layer_km
        self.grid = UniformGrid(
            (elements,) * 3,
            extent=(domain_km,) * 3,
            periodic=(False, False, False),
        )
        self.transform = (
            SinusoidalTransform(curvilinear_amplitude)
            if curvilinear_amplitude > 0
            else IdentityTransform()
        )
        self.solver = ADERDGSolver(
            self.grid,
            self.pde,
            order=order,
            variant=variant,
            riemann="rusanov",
            boundary="reflective",  # free-surface-like walls
            cfl=cfl,
            batch_size=batch_size,
            num_workers=num_workers,
            face_sweep=face_sweep,
            backend=backend,
            stepping=stepping,
            fuse=fuse,
            on_worker_failure=on_worker_failure,
        )
        self.solver.set_initial_condition(self._initial_condition)
        surface_z = domain_km
        self.source = PointSource(
            position=np.array([domain_km / 2, domain_km / 2, surface_z - source_depth_km]),
            amplitude=self._double_couple_amplitude(),
            wavelet=RickerWavelet(t0=0.1, f0=5.0),
        )
        self.solver.add_point_source(self.source)
        self.receivers = []
        for offset in (0.25, 0.5, 0.75):
            recv = Receiver(
                position=np.array(
                    [offset * domain_km, domain_km / 2, surface_z - 1e-6]
                ),
                label=f"surface_{offset:.2f}",
            )
            self.solver.add_receiver(recv)
            self.receivers.append(recv)

    # -- setup helpers ----------------------------------------------------

    def material(self, depth_from_surface: np.ndarray) -> dict[str, np.ndarray]:
        """Material parameters as a function of depth below the surface."""
        in_layer = depth_from_surface <= self.layer_km
        return {
            key: np.where(in_layer, LAYER[key], HALFSPACE[key])
            for key in ("rho", "cp", "cs")
        }

    def _double_couple_amplitude(self) -> np.ndarray:
        """Seismic double couple: a moment-rate glut on sigma_xy."""
        amp = np.zeros(9)
        amp[SXY] = 1.0
        return amp

    def _initial_condition(self, points: np.ndarray) -> np.ndarray:
        depth = self.domain_km - points[..., 2]
        mat = self.material(depth)
        params = np.zeros(points.shape[:-1] + (12,))
        params[..., 0] = mat["rho"]
        params[..., 1] = mat["cp"]
        params[..., 2] = mat["cs"]
        # metric of the boundary-fitted transform at each node
        ref = points / self.domain_km
        params[..., 3:12] = self.transform.metric_parameters(ref)
        variables = np.zeros(points.shape[:-1] + (9,))
        return self.pde.embed(variables, params)

    # -- running ----------------------------------------------------------------

    def run(self, t_end: float = 0.5, max_steps: int = 10000) -> None:
        """Advance the scenario to ``t_end`` with CFL-stable steps."""
        self.solver.run(t_end, max_steps=max_steps)

    def close(self) -> None:
        """Release the solver's worker pool / shared memory (if any)."""
        self.solver.close()

    def __enter__(self) -> "LOH1Scenario":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def seismograms(self) -> dict[str, tuple[np.ndarray, np.ndarray]]:
        """Receiver label -> (times, samples) for every surface receiver."""
        return {r.label: r.seismogram() for r in self.receivers}

    def peak_surface_velocity(self) -> float:
        """Largest |v| recorded by any surface receiver so far."""
        peak = 0.0
        for r in self.receivers:
            _, samples = r.seismogram()
            if samples.size:
                peak = max(peak, float(np.abs(samples[:, :3]).max()))
        return peak
