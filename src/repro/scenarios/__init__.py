"""Ready-made simulation scenarios.

* :mod:`repro.scenarios.planarwave` -- periodic plane waves with exact
  solutions (convergence studies).
* :mod:`repro.scenarios.gaussian` -- an acoustic Gaussian pressure
  pulse (quickstart example).
* :mod:`repro.scenarios.loh1` -- the LOH1 layer-over-halfspace seismic
  benchmark (paper Sec. VI), scaled to laptop size: curvilinear m = 21
  elastic workload, double-couple point source, surface receivers.
"""

from repro.scenarios.planarwave import acoustic_plane_wave_setup, elastic_plane_wave_setup
from repro.scenarios.gaussian import gaussian_pulse_setup
from repro.scenarios.loh1 import LOH1Scenario

__all__ = [
    "acoustic_plane_wave_setup",
    "elastic_plane_wave_setup",
    "gaussian_pulse_setup",
    "LOH1Scenario",
]
