"""Acoustic Gaussian pressure pulse: the quickstart scenario.

A smooth pressure bump in a periodic box expands as a spherical
acoustic wave -- small, fast and visually obvious, so it serves as the
"hello world" of the engine.
"""

from __future__ import annotations

import numpy as np

from repro.engine.solver import ADERDGSolver
from repro.mesh.grid import UniformGrid
from repro.pde import AcousticPDE

__all__ = ["gaussian_pulse_setup"]


def gaussian_pulse_setup(
    elements: int = 3,
    order: int = 4,
    variant: str = "splitck",
    rho: float = 1.0,
    c: float = 1.0,
    width: float = 0.1,
    center=(0.5, 0.5, 0.5),
    cfl: float = 0.4,
    **solver_kwargs,
) -> ADERDGSolver:
    """Periodic box with a Gaussian pressure perturbation at ``center``.

    Extra keyword arguments (``batch_size=``, ``num_workers=``, ...)
    are forwarded to :class:`~repro.engine.solver.ADERDGSolver`.
    """
    pde = AcousticPDE()
    grid = UniformGrid((elements,) * 3)
    solver = ADERDGSolver(
        grid, pde, order=order, variant=variant, cfl=cfl, **solver_kwargs
    )
    center_arr = np.asarray(center, dtype=float)

    def init(points):
        r2 = ((points - center_arr) ** 2).sum(axis=-1)
        variables = np.zeros(points.shape[:-1] + (4,))
        variables[..., 0] = np.exp(-r2 / (2.0 * width**2))
        params = np.broadcast_to([rho, c], points.shape[:-1] + (2,))
        return pde.embed(variables, params)

    solver.set_initial_condition(init)
    return solver
