"""Loop-over-GEMM tensor contractions (paper Sec. III-B).

Both helpers operate on *padded* C-ordered tensors in place, dispatch
shape-specialized :class:`~repro.gemm.smallgemm.SmallGemm` microkernels
through a registry (the LIBXSMM dispatch analog) and optionally record
the batch on a plan recorder.

* :func:`contract_axis` -- ``dst[..., l, ...] (+)= sum_j M[l, j]
  src[..., j, ...]`` along a non-unit-stride axis, fusing all faster
  axes into the GEMM columns (Fig. 7).
* :func:`contract_last_axis_transposed` -- the same contraction along
  the unit-stride axis, executed in transposed form ``C^T = A^T M^T``
  with a precomputed ``M^T`` (Sec. V-B, first case; used by the AoSoA
  x-derivative).

The ``block_*`` twins perform the identical contractions on tensors
carrying one (or more) extra leading element-block axes: instead of a
Python loop over per-element matrix slices they issue a *single*
broadcast matmul through :class:`~repro.gemm.blockgemm.BlockGemm`, so
the GEMM dispatch and call overhead amortize over the whole block.
"""

from __future__ import annotations

from math import prod

import numpy as np

from repro.codegen.plan import NULL_RECORDER
from repro.gemm.registry import GemmRegistry
from repro.tensor.slicing import fused_slice_batch, tail_slice_batch

__all__ = [
    "contract_axis",
    "contract_last_axis_transposed",
    "block_contract_axis",
    "block_contract_last_axis_transposed",
]


def contract_axis(
    matrix: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
    axis: int,
    registry: GemmRegistry,
    *,
    accumulate: bool = False,
    recorder=NULL_RECORDER,
    matrix_name: str = "D",
    src_name: str = "src",
    dst_name: str = "dst",
) -> None:
    """Contract ``axis`` of ``src`` with ``matrix`` into ``dst`` via LoG.

    ``matrix`` must be square ``(n_axis, n_axis)``; ``src`` and ``dst``
    must share their (padded) shape.  The operation is the discrete
    derivative of Sec. II-A when ``matrix`` is the (scaled) derivative
    operator.
    """
    if src.shape != dst.shape:
        raise ValueError("src and dst must have the same shape")
    n_axis = src.shape[axis]
    if matrix.shape != (n_axis, n_axis):
        raise ValueError(
            f"matrix must be ({n_axis}, {n_axis}) for axis {axis}, got {matrix.shape}"
        )
    batch = fused_slice_batch(src.shape, axis)
    gemm = registry.get(
        m=n_axis,
        n=batch.cols,
        k=n_axis,
        lda=n_axis,
        ldb=batch.row_stride,
        ldc=batch.row_stride,
        accumulate=accumulate,
    )
    for b_view, c_view in zip(batch.views(src), batch.views(dst)):
        gemm(matrix, b_view, c_view)
    recorder.gemm(gemm, batch.batch, matrix_name, src_name, dst_name)


def contract_last_axis_transposed(
    matrix_t: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
    logical_cols: int,
    registry: GemmRegistry,
    *,
    accumulate: bool = False,
    recorder=NULL_RECORDER,
    matrix_name: str = "DT",
    src_name: str = "src",
    dst_name: str = "dst",
) -> None:
    """Contract the padded unit-stride axis using the transposed GEMM trick.

    Computes ``dst[..., s, i] (+)= sum_l src[..., s, l] * matrix_t[l, i]``
    for ``i, l < logical_cols``; padding lanes beyond ``logical_cols``
    are left untouched (they stay zero by the layout contract, and the
    microkernel cost model still charges the padded vector lanes).
    """
    if src.shape != dst.shape:
        raise ValueError("src and dst must have the same shape")
    n = logical_cols
    if matrix_t.shape != (n, n):
        raise ValueError(f"matrix_t must be ({n}, {n}), got {matrix_t.shape}")
    if n > src.shape[-1]:
        raise ValueError("logical_cols exceeds the padded axis length")
    batch = tail_slice_batch(src.shape)
    gemm = registry.get(
        m=batch.rows,
        n=n,
        k=n,
        lda=batch.row_stride,
        ldb=n,
        ldc=batch.row_stride,
        accumulate=accumulate,
    )
    for a_view, c_view in zip(batch.views(src), batch.views(dst)):
        gemm(a_view[:, :n], matrix_t, c_view[:, :n])
    recorder.gemm(gemm, batch.batch, src_name, matrix_name, dst_name)


def _require_contiguous(name: str, arr: np.ndarray) -> None:
    if not arr.flags.c_contiguous:
        raise ValueError(f"{name} must be C-contiguous for block contraction")


def block_contract_axis(
    matrix: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
    axis: int,
    registry: GemmRegistry,
    *,
    accumulate: bool = False,
    tmp: np.ndarray | None = None,
    recorder=NULL_RECORDER,
    matrix_name: str = "D",
    src_name: str = "src",
    dst_name: str = "dst",
) -> None:
    """Block form of :func:`contract_axis`: one matmul for the whole batch.

    ``src``/``dst`` may carry any number of leading block axes before
    ``axis``; all axes slower than ``axis`` (including the element
    block) enumerate the stacked slices, all faster axes fuse into the
    GEMM columns -- the same slicing as :func:`fused_slice_batch`, but
    executed as a single broadcast ``A @ B[i]`` matmul.  ``tmp`` backs
    the accumulate form; pass an arena buffer of at least ``src.size``
    doubles to avoid a per-call allocation.
    """
    if src.shape != dst.shape:
        raise ValueError("src and dst must have the same shape")
    _require_contiguous("src", src)
    _require_contiguous("dst", dst)
    axis %= src.ndim
    n_axis = src.shape[axis]
    if matrix.shape != (n_axis, n_axis):
        raise ValueError(
            f"matrix must be ({n_axis}, {n_axis}) for axis {axis}, got {matrix.shape}"
        )
    pre = prod(src.shape[:axis]) if axis > 0 else 1
    post = prod(src.shape[axis + 1 :]) if axis + 1 < src.ndim else 1
    a3 = src.reshape(pre, n_axis, post)
    c3 = dst.reshape(pre, n_axis, post)
    block = registry.get_block(
        m=n_axis,
        n=post,
        k=n_axis,
        ldb=post,
        ldc=post,
        accumulate=accumulate,
        blocks=pre,
    )
    block(matrix, a3, c3, tmp=tmp)
    recorder.gemm(block.gemm, pre, matrix_name, src_name, dst_name)


def block_contract_last_axis_transposed(
    matrix_t: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
    logical_cols: int,
    registry: GemmRegistry,
    *,
    accumulate: bool = False,
    tmp: np.ndarray | None = None,
    recorder=NULL_RECORDER,
    matrix_name: str = "DT",
    src_name: str = "src",
    dst_name: str = "dst",
) -> None:
    """Block form of :func:`contract_last_axis_transposed`.

    Computes ``dst[..., s, i] (+)= sum_l src[..., s, l] matrix_t[l, i]``
    for ``i, l < logical_cols`` over any leading block axes, as a single
    stacked ``A[i] @ B`` matmul.  Padding lanes beyond ``logical_cols``
    are left untouched, matching the per-element helper.
    """
    if src.shape != dst.shape:
        raise ValueError("src and dst must have the same shape")
    _require_contiguous("src", src)
    _require_contiguous("dst", dst)
    n = logical_cols
    if matrix_t.shape != (n, n):
        raise ValueError(f"matrix_t must be ({n}, {n}), got {matrix_t.shape}")
    if n > src.shape[-1]:
        raise ValueError("logical_cols exceeds the padded axis length")
    rows = src.shape[-2]
    pre = prod(src.shape[:-2]) if src.ndim > 2 else 1
    a_stack = src.reshape(pre, rows, src.shape[-1])[:, :, :n]
    c_stack = dst.reshape(pre, rows, dst.shape[-1])[:, :, :n]
    block = registry.get_block(
        m=rows,
        n=n,
        k=n,
        lda=src.shape[-1],
        ldb=n,
        ldc=dst.shape[-1],
        accumulate=accumulate,
        blocks=pre,
    )
    block.stacked_a(a_stack, matrix_t, c_stack, tmp=tmp)
    recorder.gemm(block.gemm, pre, src_name, matrix_name, dst_name)
