"""Loop-over-GEMM tensor contractions (paper Sec. III-B).

Both helpers operate on *padded* C-ordered tensors in place, dispatch
shape-specialized :class:`~repro.gemm.smallgemm.SmallGemm` microkernels
through a registry (the LIBXSMM dispatch analog) and optionally record
the batch on a plan recorder.

* :func:`contract_axis` -- ``dst[..., l, ...] (+)= sum_j M[l, j]
  src[..., j, ...]`` along a non-unit-stride axis, fusing all faster
  axes into the GEMM columns (Fig. 7).
* :func:`contract_last_axis_transposed` -- the same contraction along
  the unit-stride axis, executed in transposed form ``C^T = A^T M^T``
  with a precomputed ``M^T`` (Sec. V-B, first case; used by the AoSoA
  x-derivative).
"""

from __future__ import annotations

import numpy as np

from repro.codegen.plan import NULL_RECORDER
from repro.gemm.registry import GemmRegistry
from repro.tensor.slicing import fused_slice_batch, tail_slice_batch

__all__ = ["contract_axis", "contract_last_axis_transposed"]


def contract_axis(
    matrix: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
    axis: int,
    registry: GemmRegistry,
    *,
    accumulate: bool = False,
    recorder=NULL_RECORDER,
    matrix_name: str = "D",
    src_name: str = "src",
    dst_name: str = "dst",
) -> None:
    """Contract ``axis`` of ``src`` with ``matrix`` into ``dst`` via LoG.

    ``matrix`` must be square ``(n_axis, n_axis)``; ``src`` and ``dst``
    must share their (padded) shape.  The operation is the discrete
    derivative of Sec. II-A when ``matrix`` is the (scaled) derivative
    operator.
    """
    if src.shape != dst.shape:
        raise ValueError("src and dst must have the same shape")
    n_axis = src.shape[axis]
    if matrix.shape != (n_axis, n_axis):
        raise ValueError(
            f"matrix must be ({n_axis}, {n_axis}) for axis {axis}, got {matrix.shape}"
        )
    batch = fused_slice_batch(src.shape, axis)
    gemm = registry.get(
        m=n_axis,
        n=batch.cols,
        k=n_axis,
        lda=n_axis,
        ldb=batch.row_stride,
        ldc=batch.row_stride,
        accumulate=accumulate,
    )
    for b_view, c_view in zip(batch.views(src), batch.views(dst)):
        gemm(matrix, b_view, c_view)
    recorder.gemm(gemm, batch.batch, matrix_name, src_name, dst_name)


def contract_last_axis_transposed(
    matrix_t: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
    logical_cols: int,
    registry: GemmRegistry,
    *,
    accumulate: bool = False,
    recorder=NULL_RECORDER,
    matrix_name: str = "DT",
    src_name: str = "src",
    dst_name: str = "dst",
) -> None:
    """Contract the padded unit-stride axis using the transposed GEMM trick.

    Computes ``dst[..., s, i] (+)= sum_l src[..., s, l] * matrix_t[l, i]``
    for ``i, l < logical_cols``; padding lanes beyond ``logical_cols``
    are left untouched (they stay zero by the layout contract, and the
    microkernel cost model still charges the padded vector lanes).
    """
    if src.shape != dst.shape:
        raise ValueError("src and dst must have the same shape")
    n = logical_cols
    if matrix_t.shape != (n, n):
        raise ValueError(f"matrix_t must be ({n}, {n}), got {matrix_t.shape}")
    if n > src.shape[-1]:
        raise ValueError("logical_cols exceeds the padded axis length")
    batch = tail_slice_batch(src.shape)
    gemm = registry.get(
        m=batch.rows,
        n=n,
        k=n,
        lda=batch.row_stride,
        ldb=n,
        ldc=batch.row_stride,
        accumulate=accumulate,
    )
    for a_view, c_view in zip(batch.views(src), batch.views(dst)):
        gemm(a_view[:, :n], matrix_t, c_view[:, :n])
    recorder.gemm(gemm, batch.batch, src_name, matrix_name, dst_name)
