"""Tensor-contraction machinery: slicing, Loop-over-GEMM, transposes.

Implements the paper's Sec. III-B / Fig. 3 technique: tensor
contractions are reformulated as batches of matrix multiplications on
*matrix slices* of the tensors, addressed by an offset and a slice
stride, so no data is copied.  Dimension fusing (Fig. 7) turns slices
on slow axes into wide contiguous matrices.
"""

from repro.tensor.slicing import SliceBatch, fused_slice_batch, tail_slice_batch
from repro.tensor.contraction import contract_axis, contract_last_axis_transposed

__all__ = [
    "SliceBatch",
    "fused_slice_batch",
    "tail_slice_batch",
    "contract_axis",
    "contract_last_axis_transposed",
]
