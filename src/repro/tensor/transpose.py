"""Layout transposes between padded AoS and AoSoA tensors (Sec. V-B).

The AoSoA kernel receives and returns AoS data ("the rest of the engine
still expects an AoS data layout"), so it transposes its inputs to
AoSoA on entry and its outputs back on exit.  The paper measures this
cost as "minimal compared to the cost of the kernel itself"; the
recorded :class:`~repro.codegen.plan.TransposeOp` lets the machine
model charge exactly that data movement.
"""

from __future__ import annotations

import numpy as np

from repro.codegen.plan import NULL_RECORDER
from repro.core.layouts import Layout, TensorLayout

__all__ = ["aos_to_aosoa", "aosoa_to_aos"]


def _check(aos: TensorLayout, aosoa: TensorLayout) -> None:
    if aos.kind is not Layout.AOS or aosoa.kind is not Layout.AOSOA:
        raise ValueError("expected an (AoS, AoSoA) layout pair")
    if aos.space_shape != aosoa.space_shape or aos.nquantities != aosoa.nquantities:
        raise ValueError("layouts must describe the same logical tensor")


def aos_to_aosoa(
    src: np.ndarray,
    dst: np.ndarray,
    aos: TensorLayout,
    aosoa: TensorLayout,
    *,
    recorder=NULL_RECORDER,
    src_name: str = "aos",
    dst_name: str = "aosoa",
) -> None:
    """Transpose a padded AoS tensor into a padded AoSoA tensor in place."""
    _check(aos, aosoa)
    m, nx = aos.nquantities, aos.space_shape[-1]
    dst[..., :nx] = np.swapaxes(src[..., :m], -1, -2)
    dst[..., nx:] = 0.0
    recorder.transpose("aos->aosoa", src_name, dst_name, 8.0 * aos.logical_doubles)


def aosoa_to_aos(
    src: np.ndarray,
    dst: np.ndarray,
    aosoa: TensorLayout,
    aos: TensorLayout,
    *,
    recorder=NULL_RECORDER,
    src_name: str = "aosoa",
    dst_name: str = "aos",
) -> None:
    """Transpose a padded AoSoA tensor back into a padded AoS tensor."""
    _check(aos, aosoa)
    m, nx = aos.nquantities, aos.space_shape[-1]
    dst[..., :m] = np.swapaxes(src[..., :nx], -1, -2)
    dst[..., m:] = 0.0
    recorder.transpose("aosoa->aos", src_name, dst_name, 8.0 * aos.logical_doubles)
