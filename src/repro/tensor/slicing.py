"""Extracting matrix slices from tensors (paper Fig. 3).

A matrix slice of a C-ordered tensor is described by an *offset*, a
row/column count and a *slice stride* -- the distance between the rows
that are stored unit-stride.  LIBXSMM accepts the slice stride as the
padded leading dimension of the matrix, which is how the kernels run
GEMMs directly on tensor slices "without requiring extra memory
transfers".

Three batch shapes cover everything the STP kernels need:

* :func:`fused_slice_batch` -- contract axis ``a``; all axes faster
  than ``a`` are fused into the matrix columns (Fig. 7's trick), all
  axes slower than ``a`` enumerate the batch.  Slices are contiguous.
* :func:`strided_slice_batch` -- rows taken along axis ``a``, columns
  along the unit-stride axis, remaining axes enumerate the batch; rows
  are *not* adjacent in memory (Fig. 3, bottom) and the slice stride
  becomes the GEMM leading dimension.
* :func:`tail_slice_batch` -- the matrix is the last two axes (used by
  the AoSoA x-derivative, where the contracted axis is unit-stride and
  the GEMM is transposed, Sec. V-B case 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from math import prod

import numpy as np

__all__ = [
    "SliceBatch",
    "fused_slice_batch",
    "strided_slice_batch",
    "tail_slice_batch",
]


@dataclass(frozen=True)
class SliceBatch:
    """A batch of equally-shaped matrix slices of one tensor.

    Attributes
    ----------
    tensor_shape:
        Padded shape of the underlying C-ordered tensor.
    rows, cols:
        Shape of each matrix slice.
    row_stride:
        Distance (in elements) between consecutive rows of a slice --
        the LIBXSMM leading dimension ("slice stride", Fig. 3).
    slice_offsets:
        Flat element offset of each slice in the batch.
    """

    tensor_shape: tuple[int, ...]
    rows: int
    cols: int
    row_stride: int
    slice_offsets: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError("slice must have positive shape")
        if self.row_stride < self.cols:
            raise ValueError("row stride must cover the columns")
        tensor_size = prod(self.tensor_shape)
        span = (self.rows - 1) * self.row_stride + self.cols
        if self.slice_offsets.size and int(self.slice_offsets.max()) + span > tensor_size:
            raise ValueError("slice extends beyond the tensor")

    @property
    def batch(self) -> int:
        """Number of slices."""
        return int(self.slice_offsets.size)

    def offsets(self) -> np.ndarray:
        """Byte offsets of the slices (alias of ``slice_offsets``)."""
        return self.slice_offsets

    @property
    def contiguous_rows(self) -> bool:
        """True when each slice is a contiguous subarray (Fig. 3, top)."""
        return self.row_stride == self.cols

    def views(self, arr: np.ndarray):
        """Yield each slice of ``arr`` as a zero-copy ``(rows, cols)`` view."""
        if arr.shape != self.tensor_shape:
            raise ValueError(f"expected tensor shape {self.tensor_shape}, got {arr.shape}")
        flat = arr.reshape(-1)
        for off in self.slice_offsets:
            yield np.lib.stride_tricks.as_strided(
                flat[off:],
                shape=(self.rows, self.cols),
                strides=(self.row_stride * arr.itemsize, arr.itemsize),
                writeable=arr.flags.writeable,
            )


def fused_slice_batch(shape: tuple[int, ...], axis: int) -> SliceBatch:
    """Slices for contracting ``axis``, fusing all faster axes into columns.

    For a tensor ``A[s0, ..., axis, ..., s_last]`` the matrix slice at a
    fixed combination of the slow indices is
    ``(shape[axis], prod(shape[axis+1:]))`` and contiguous, so the
    row stride equals the column count.
    """
    ndim = len(shape)
    if not -ndim <= axis < ndim:
        raise ValueError(f"axis {axis} out of range for shape {shape}")
    axis %= ndim
    cols = prod(shape[axis + 1 :]) if axis + 1 < ndim else 1
    rows = shape[axis]
    batch = prod(shape[:axis]) if axis > 0 else 1
    offsets = rows * cols * np.arange(batch)
    return SliceBatch(
        tensor_shape=tuple(shape),
        rows=rows,
        cols=cols,
        row_stride=cols,
        slice_offsets=offsets,
    )


def strided_slice_batch(shape: tuple[int, ...], axis: int) -> SliceBatch:
    """Non-contiguous slices: rows along ``axis``, columns unit-stride.

    This is Fig. 3's bottom case (``A(:, 1, :)``): the rows of the
    matrix slice are separated by the product of all dimensions faster
    than ``axis``, which becomes the slice stride / leading dimension.
    The batch enumerates every other non-column axis.
    """
    ndim = len(shape)
    if ndim < 2:
        raise ValueError("need at least two axes")
    if not -ndim <= axis < ndim:
        raise ValueError(f"axis {axis} out of range for shape {shape}")
    axis %= ndim
    if axis == ndim - 1:
        raise ValueError("rows cannot be the unit-stride axis; use tail_slice_batch")
    rows = shape[axis]
    cols = shape[-1]
    row_stride = prod(shape[axis + 1 :])
    # Batch indices: all axes except `axis` and the last one.
    batch_axes = [a for a in range(ndim - 1) if a != axis]
    strides = []
    s = 1
    for a in reversed(range(ndim)):
        strides.insert(0, s)
        s *= shape[a]
    combos = product(*(range(shape[a]) for a in batch_axes)) if batch_axes else [()]
    offsets = np.array(
        [sum(idx * strides[a] for idx, a in zip(combo, batch_axes)) for combo in combos],
        dtype=np.int64,
    )
    return SliceBatch(
        tensor_shape=tuple(shape),
        rows=rows,
        cols=cols,
        row_stride=row_stride,
        slice_offsets=offsets,
    )


def tail_slice_batch(shape: tuple[int, ...]) -> SliceBatch:
    """Slices over the last two axes, one per leading-index combination.

    Used when the contracted dimension is the unit-stride axis (AoSoA
    x-derivative): the slice is ``(shape[-2], shape[-1])`` and the GEMM
    runs in transposed form ``C^T = B^T A^T`` (Sec. V-B).
    """
    if len(shape) < 2:
        raise ValueError("need at least two axes for tail slices")
    rows, cols = shape[-2], shape[-1]
    batch = prod(shape[:-2]) if len(shape) > 2 else 1
    offsets = rows * cols * np.arange(batch)
    return SliceBatch(
        tensor_shape=tuple(shape),
        rows=rows,
        cols=cols,
        row_stride=cols,
        slice_offsets=offsets,
    )
