"""repro: reproduction of "Vectorization and Minimization of Memory
Footprint for Linear High-Order Discontinuous Galerkin Schemes"
(Gallard, Rannabauer, Reinarz, Bader; 2020, arXiv:2003.12787).

Public API overview
-------------------

Kernels (the paper's contribution):

>>> from repro import KernelSpec, make_kernel, CurvilinearElasticPDE
>>> pde = CurvilinearElasticPDE()                       # m = 21 workload
>>> spec = KernelSpec(order=8, nvar=9, nparam=12, arch="skx")
>>> kernel = make_kernel("aosoa", spec, pde)
>>> result = kernel.predictor(pde.example_state((8, 8, 8)), dt=1e-3, h=0.5)

Machine model (the VTune substitute):

>>> from repro import Profiler
>>> perf = Profiler().profile(kernel.build_plan())
>>> perf.percent_available, perf.memory_stall_pct      # doctest: +SKIP

Engine:

>>> from repro import ADERDGSolver, UniformGrid

Experiments: ``python -m repro.harness all`` regenerates every figure.
"""

from repro.codegen.generator import KernelGenerator
from repro.core.spec import VARIANTS, KernelSpec
from repro.core.variants import (
    ElementSource,
    STPKernel,
    STPResult,
    make_kernel,
)
from repro.engine.solver import ADERDGSolver
from repro.machine.profiler import Profiler
from repro.mesh.grid import UniformGrid
from repro.pde import (
    AcousticPDE,
    AdvectionPDE,
    CurvilinearElasticPDE,
    ElasticNCPPDE,
    ElasticPDE,
    LinearPDE,
    NCPWrapperPDE,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "KernelSpec",
    "VARIANTS",
    "make_kernel",
    "STPKernel",
    "STPResult",
    "ElementSource",
    "KernelGenerator",
    "Profiler",
    "ADERDGSolver",
    "UniformGrid",
    "LinearPDE",
    "AdvectionPDE",
    "AcousticPDE",
    "ElasticPDE",
    "ElasticNCPPDE",
    "NCPWrapperPDE",
    "CurvilinearElasticPDE",
]
