"""Quadrature rules on the reference interval ``[0, 1]``.

ExaHyPE uses a nodal DG basis collocated on either Gauss-Legendre or
Gauss-Lobatto points (paper Sec. II-A).  ``N`` nodes per dimension give
``N``-th order convergence; Gauss-Legendre integrates polynomials up to
degree ``2N - 1`` exactly, Gauss-Lobatto up to ``2N - 3``.

The nodes are computed with a Newton iteration on the (derivatives of
the) Legendre polynomials rather than taken from NumPy so that the
implementation is self-contained; the test-suite cross-checks against
``numpy.polynomial.legendre.leggauss``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["QuadratureRule", "gauss_legendre", "gauss_lobatto", "get_rule"]

_NEWTON_TOL = 1e-15
_NEWTON_MAXIT = 100


@dataclass(frozen=True)
class QuadratureRule:
    """A one-dimensional quadrature rule on ``[0, 1]``.

    Attributes
    ----------
    name:
        Identifier, e.g. ``"gauss_legendre"``.
    nodes:
        Quadrature nodes in ``(0, 1)`` (Legendre) or ``[0, 1]``
        (Lobatto), ascending.
    weights:
        Positive quadrature weights summing to one (the measure of the
        unit interval).
    """

    name: str
    nodes: np.ndarray = field(repr=False)
    weights: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        if self.nodes.ndim != 1 or self.weights.shape != self.nodes.shape:
            raise ValueError("nodes and weights must be 1-D arrays of equal length")
        if self.npoints == 0:
            raise ValueError("quadrature rule needs at least one point")

    @property
    def npoints(self) -> int:
        """Number of quadrature nodes."""
        return int(self.nodes.size)

    @property
    def degree(self) -> int:
        """Highest polynomial degree integrated exactly."""
        n = self.npoints
        return 2 * n - 1 if self.name == "gauss_legendre" else 2 * n - 3

    def integrate(self, values: np.ndarray, axis: int = -1) -> np.ndarray:
        """Integrate nodal ``values`` sampled at :attr:`nodes` along ``axis``."""
        values = np.asarray(values)
        if values.shape[axis] != self.npoints:
            raise ValueError(
                f"axis {axis} has length {values.shape[axis]}, expected {self.npoints}"
            )
        return np.tensordot(values, self.weights, axes=([axis], [0]))


def _legendre_and_derivative(n: int, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Evaluate Legendre ``P_n`` and ``P_n'`` on ``[-1, 1]`` via the recurrence."""
    p_prev = np.ones_like(x)
    if n == 0:
        return p_prev, np.zeros_like(x)
    p = x.copy()
    for k in range(2, n + 1):
        p_prev, p = p, ((2 * k - 1) * x * p - (k - 1) * p_prev) / k
    # derivative from the standard identity (guard endpoints separately)
    dp = n * (x * p - p_prev) / (x * x - 1.0 + np.finfo(float).tiny)
    return p, dp


def gauss_legendre(n: int) -> QuadratureRule:
    """``n``-point Gauss-Legendre rule mapped to ``[0, 1]``."""
    if n < 1:
        raise ValueError("need n >= 1 quadrature points")
    # Chebyshev-based initial guess, then Newton on P_n.
    k = np.arange(1, n + 1)
    x = np.cos(np.pi * (4 * k - 1) / (4 * n + 2))
    for _ in range(_NEWTON_MAXIT):
        p, dp = _legendre_and_derivative(n, x)
        dx = p / dp
        x -= dx
        if np.max(np.abs(dx)) < _NEWTON_TOL:
            break
    _, dp = _legendre_and_derivative(n, x)
    w = 2.0 / ((1.0 - x * x) * dp * dp)
    order = np.argsort(x)
    x, w = x[order], w[order]
    # Map [-1, 1] -> [0, 1]: xi = (x + 1) / 2, weights scale by 1/2.
    return QuadratureRule("gauss_legendre", (x + 1.0) / 2.0, w / 2.0)


def gauss_lobatto(n: int) -> QuadratureRule:
    """``n``-point Gauss-Lobatto rule mapped to ``[0, 1]`` (endpoints included)."""
    if n < 2:
        raise ValueError("Gauss-Lobatto needs n >= 2 points")
    m = n - 1
    # Interior nodes are the roots of P'_{n-1}; start from Chebyshev-Lobatto.
    x = np.cos(np.pi * np.arange(n) / m)[::-1].copy()
    for _ in range(_NEWTON_MAXIT):
        p, dp = _legendre_and_derivative(m, x)
        # Newton on q(x) = (1 - x^2) P'_m(x); q' = -2x P'_m + (1-x^2) P''_m
        # Use the ODE (1-x^2) P''_m = 2x P'_m - m(m+1) P_m to avoid P''.
        q = (1.0 - x * x) * dp
        dq = -m * (m + 1) * p
        with np.errstate(divide="ignore", invalid="ignore"):
            dx = np.where(dq != 0.0, q / dq, 0.0)
        dx[0] = dx[-1] = 0.0  # endpoints are exact
        x -= dx
        if np.max(np.abs(dx)) < _NEWTON_TOL:
            break
    p, _ = _legendre_and_derivative(m, x)
    w = 2.0 / (m * (m + 1) * p * p)
    return QuadratureRule("gauss_lobatto", (x + 1.0) / 2.0, w / 2.0)


_FACTORIES = {"gauss_legendre": gauss_legendre, "gauss_lobatto": gauss_lobatto}


def get_rule(name: str, n: int) -> QuadratureRule:
    """Look up a quadrature rule factory by name and build an ``n``-point rule."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown quadrature {name!r}; available: {sorted(_FACTORIES)}"
        ) from None
    return factory(n)
