"""Lagrange interpolation on quadrature nodes (barycentric form).

The nodal DG basis consists of the Lagrange polynomials
``phi_j`` with ``phi_j(x_i) = delta_ij`` on the quadrature nodes.  The
tensor-product 3-D basis of the paper is
``Phi_k(x, y, z) = phi_{k1}(x) phi_{k2}(y) phi_{k3}(z)``; everything in
this module is one-dimensional and combined per-dimension by the
kernels.

All evaluations use barycentric weights, which are numerically stable
up to very high order (the paper benchmarks orders 4-11).
"""

from __future__ import annotations

import numpy as np

from repro.basis.quadrature import QuadratureRule

__all__ = ["LagrangeBasis"]


class LagrangeBasis:
    """Lagrange basis on a set of interpolation nodes in ``[0, 1]``."""

    def __init__(self, rule: QuadratureRule):
        self.rule = rule
        self.nodes = rule.nodes
        self.n = rule.npoints
        self.barycentric_weights = self._barycentric_weights(self.nodes)

    @staticmethod
    def _barycentric_weights(nodes: np.ndarray) -> np.ndarray:
        diff = nodes[:, None] - nodes[None, :]
        np.fill_diagonal(diff, 1.0)
        return 1.0 / diff.prod(axis=1)

    def evaluate(self, x: float | np.ndarray) -> np.ndarray:
        """Evaluate all basis polynomials at point(s) ``x``.

        Returns an array of shape ``(*x.shape, n)`` with entry ``phi_j(x)``.
        """
        x = np.atleast_1d(np.asarray(x, dtype=float))
        out = np.zeros(x.shape + (self.n,))
        for i, xi in np.ndenumerate(x):
            hit = np.isclose(xi, self.nodes, rtol=0.0, atol=1e-14)
            if hit.any():
                out[i][hit] = 1.0
                continue
            t = self.barycentric_weights / (xi - self.nodes)
            out[i] = t / t.sum()
        return out

    def interpolate(self, nodal_values: np.ndarray, x: float | np.ndarray) -> np.ndarray:
        """Interpolate ``nodal_values`` (last axis = node index) at ``x``."""
        phi = self.evaluate(x)
        return np.tensordot(phi, np.asarray(nodal_values), axes=([-1], [-1]))

    def derivative_matrix(self) -> np.ndarray:
        """Differentiation matrix ``D[i, j] = phi_j'(x_i)``.

        Applying ``D @ f`` to nodal values ``f`` yields the derivative of
        the interpolant at the nodes -- this is the paper's discrete
        derivative operator ``D`` (Sec. II-A).
        """
        w, x = self.barycentric_weights, self.nodes
        dx = x[:, None] - x[None, :]
        np.fill_diagonal(dx, 1.0)
        d = (w[None, :] / w[:, None]) / dx
        np.fill_diagonal(d, 0.0)
        np.fill_diagonal(d, -d.sum(axis=1))
        return d

    def boundary_values(self) -> tuple[np.ndarray, np.ndarray]:
        """``(phi(0), phi(1))`` -- interpolation vectors to the element faces."""
        left = self.evaluate(0.0)[0]
        right = self.evaluate(1.0)[0]
        return left, right

    def vandermonde(self, x: np.ndarray) -> np.ndarray:
        """Matrix ``V[i, j] = phi_j(x_i)`` for a set of evaluation points."""
        return self.evaluate(np.asarray(x, dtype=float))
