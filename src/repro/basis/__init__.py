"""Nodal basis infrastructure for the ADER-DG scheme.

This package provides the one-dimensional building blocks that the
tensor-product DG discretization is assembled from:

* :mod:`repro.basis.quadrature` -- Gauss-Legendre and Gauss-Lobatto
  quadrature rules on the unit interval ``[0, 1]`` (ExaHyPE projects
  every element onto the reference unit cube).
* :mod:`repro.basis.lagrange` -- Lagrange interpolation on the
  quadrature nodes, evaluated with the numerically stable barycentric
  formulation.
* :mod:`repro.basis.operators` -- the discrete DG operators of the
  paper's Sec. II-A: diagonal mass matrix ``M``, derivative operator
  ``D``, boundary interpolation vectors and the point-source projection
  operator ``P``.
"""

from repro.basis.lagrange import LagrangeBasis
from repro.basis.operators import DGOperators
from repro.basis.quadrature import QuadratureRule, gauss_legendre, gauss_lobatto, get_rule

__all__ = [
    "QuadratureRule",
    "gauss_legendre",
    "gauss_lobatto",
    "get_rule",
    "LagrangeBasis",
    "DGOperators",
]
