"""Discrete DG operators for one element (paper Sec. II-A).

For each element ExaHyPE precomputes, per dimension:

* the diagonal **mass matrix** ``M`` (quadrature weights -- diagonal
  because the basis is collocated on the quadrature nodes, which saves
  inverting the mass matrix),
* the **derivative operator** ``D`` with ``D[i, j] = phi_j'(x_i)``,
* the boundary **interpolation vectors** ``phi(0)``, ``phi(1)`` used to
  project the predictor onto element faces, and
* the **point-source projection** ``P`` that projects a Dirac source at
  ``x0`` onto the nodal basis.

The Kernel Generator (``repro.codegen``) hard-codes these matrices into
the generated kernel plans, mirroring the paper's "frequently used
matrices ... can be precomputed by the Kernel Generator" (Sec. III-C).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.basis.lagrange import LagrangeBasis
from repro.basis.quadrature import QuadratureRule, get_rule

__all__ = ["DGOperators"]


class DGOperators:
    """All 1-D operators for a nodal DG element of a given order.

    Parameters
    ----------
    order:
        Number of nodes per dimension, ``N``; the scheme converges at
        order ``N`` (polynomial degree ``N - 1``).  The paper benchmarks
        ``N = 4 .. 11``.
    quadrature:
        ``"gauss_legendre"`` (default, nodes interior) or
        ``"gauss_lobatto"`` (nodes include the element faces).
    """

    def __init__(self, order: int, quadrature: str = "gauss_legendre"):
        if order < 1:
            raise ValueError("order must be >= 1")
        self.order = order
        self.rule: QuadratureRule = get_rule(quadrature, order)
        self.basis = LagrangeBasis(self.rule)
        self.nodes = self.rule.nodes
        self.weights = self.rule.weights
        # Discrete derivative operator D[i, j] = phi_j'(x_i).
        self.derivative = self.basis.derivative_matrix()
        # Its transpose, precomputed for the AoSoA variant's transposed
        # GEMMs (paper Sec. V-B, first case).
        self.derivative_T = np.ascontiguousarray(self.derivative.T)
        left, right = self.basis.boundary_values()
        self.face_left = left
        self.face_right = right
        self.inv_weights = 1.0 / self.weights

    # -- mass matrix ---------------------------------------------------

    @property
    def mass_diagonal(self) -> np.ndarray:
        """Diagonal of the 1-D mass matrix (the quadrature weights)."""
        return self.weights

    def mass_matrix(self) -> np.ndarray:
        """Full (diagonal) 1-D mass matrix as a dense array."""
        return np.diag(self.weights)

    # -- stiffness / lifting -------------------------------------------

    def stiffness_matrix(self) -> np.ndarray:
        """``K[i, j] = w_i * phi_j'(x_i)`` (mass-weighted derivative)."""
        return self.weights[:, None] * self.derivative

    def lifting_left(self) -> np.ndarray:
        """``M^{-1} phi(0)``: lifts a left-face flux jump into the element."""
        return self.face_left / self.weights

    def lifting_right(self) -> np.ndarray:
        """``M^{-1} phi(1)``: lifts a right-face flux jump into the element."""
        return self.face_right / self.weights

    # -- point-source projection ---------------------------------------

    def source_projection_1d(self, xi: float) -> np.ndarray:
        """1-D factor of the projection operator ``P`` for a Dirac at ``xi``.

        The 3-D projection is the tensor product of the per-dimension
        factors: ``P_k = prod_d phi_{k_d}(xi_d) / w_{k_d}``.
        """
        if not 0.0 <= xi <= 1.0:
            raise ValueError("source position must lie in the reference element [0, 1]")
        return self.basis.evaluate(xi)[0] / self.weights

    def source_projection(self, point: np.ndarray) -> np.ndarray:
        """Nodal projection of a Dirac at reference coordinates ``point``.

        Returns an array of shape ``(N,) * d`` (``z, y, x`` index order,
        matching the kernels' tensor layout).
        """
        point = np.asarray(point, dtype=float)
        factors = [self.source_projection_1d(float(c)) for c in point]
        out = factors[-1]
        for f in reversed(factors[:-1]):
            out = np.multiply.outer(f, out)
        return out


@lru_cache(maxsize=64)
def cached_operators(order: int, quadrature: str = "gauss_legendre") -> DGOperators:
    """Memoized :class:`DGOperators` factory (operators are immutable in use)."""
    return DGOperators(order, quadrature)
