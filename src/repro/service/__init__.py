"""Solver-as-a-service: a concurrent job runtime over the DG engine.

The engine's solve path is a library call: build an
:class:`~repro.engine.solver.ADERDGSolver`, step it, read the arrays.
This package wraps that path in a **long-lived service**
(:class:`SolverService`): clients submit scenario specs as plain
dicts, many simulations multiplex over a bounded pool of solver slots,
and each job streams its per-step telemetry and receiver traces to
subscribers while it runs.  The pieces (see ``docs/service.md``):

* :mod:`repro.service.protocol` -- :class:`JobSpec` validation, the
  job lifecycle states and the streamed event dicts,
* :mod:`repro.service.queue` -- the bounded priority queue and its
  reject-with-reason admission control (:class:`AdmissionError`),
* :mod:`repro.service.plancache` -- :class:`SharedPlanCache`, the
  service-wide compiled-plan cache all jobs share (identical jobs pay
  kernel compilation once per process),
* :mod:`repro.service.session` -- one job's solver lifecycle: build,
  step, stream, degrade gracefully, summarize,
* :mod:`repro.service.service` -- :class:`SolverService` and the
  client-facing :class:`JobHandle`.

Quickstart::

    from repro.service import SolverService

    with SolverService(slots=2) as svc:
        job = svc.submit({"scenario": "gaussian", "order": 3, "steps": 4})
        for event in job.events(timeout=60):
            ...            # "state" / "step" / "receiver" / "result" dicts
        print(job.result()["state_sha256"])
"""

from repro.service.plancache import SharedPlanCache
from repro.service.protocol import (
    SCENARIOS,
    TERMINAL_STATES,
    JobSpec,
    JobState,
    SpecError,
    job_event,
)
from repro.service.queue import AdmissionError, JobQueue
from repro.service.service import JobHandle, SolverService
from repro.service.session import build_solver, run_job, scenario_pde

__all__ = [
    "SolverService",
    "JobHandle",
    "JobSpec",
    "JobState",
    "JobQueue",
    "SpecError",
    "AdmissionError",
    "SharedPlanCache",
    "TERMINAL_STATES",
    "SCENARIOS",
    "job_event",
    "build_solver",
    "run_job",
    "scenario_pde",
]
