"""One job's execution session: build a solver, step, stream, summarize.

The session owns the whole solver lifecycle of a single admitted job
on a service slot.  It builds the scenario's
:class:`~repro.engine.solver.ADERDGSolver`, hooks the job's
:class:`~repro.parallel.telemetry.EventStream` into the solver's step
listener (per-step :class:`~repro.parallel.telemetry.StepRecord`
telemetry streams out *while* the job runs), publishes the fresh
receiver samples after every step, honours cancellation between steps,
and always closes the solver -- a crashed or cancelled job never leaks
a worker pool.

Degradation is observed here, not handled here: the solver's own
``on_worker_failure`` policy decides what a worker crash means, the
session just reports ``degraded=True`` in the result summary when the
job finished on the fallback path.
"""

from __future__ import annotations

import hashlib
import time

from repro.service.protocol import JobSpec, JobState, job_event

__all__ = ["scenario_pde", "build_solver", "run_job"]


def scenario_pde(scenario: str):
    """The PDE instance a scenario's solver will be built on.

    Used by :meth:`~repro.service.plancache.SharedPlanCache.warm` to
    derive the plan-cache key (``pde_token``, quantity counts) without
    building a full solver.
    """
    if scenario == "gaussian":
        from repro.pde import AcousticPDE

        return AcousticPDE()
    if scenario == "loh1":
        from repro.pde import CurvilinearElasticPDE

        return CurvilinearElasticPDE()
    raise ValueError(f"unknown scenario {scenario!r}")


def build_solver(spec: JobSpec):
    """A ready-to-step solver for ``spec`` (initial condition set).

    ``"gaussian"`` builds the acoustic pulse box with one receiver at
    the pulse center (so every scenario streams a receiver trace);
    ``"loh1"`` builds the layered elastic benchmark with its three
    surface receivers.  Tests monkeypatch this hook to inject faults
    (e.g. killing a worker mid-job) without touching the service.
    """
    if spec.scenario == "gaussian":
        import numpy as np

        from repro.engine.receivers import Receiver
        from repro.scenarios.gaussian import gaussian_pulse_setup

        solver = gaussian_pulse_setup(
            elements=spec.elements,
            order=spec.order,
            variant=spec.variant,
            **spec.solver_kwargs(),
        )
        solver.add_receiver(
            Receiver(position=np.array([0.5, 0.5, 0.5]), label="center")
        )
        return solver
    if spec.scenario == "loh1":
        from repro.scenarios.loh1 import LOH1Scenario

        scenario = LOH1Scenario(
            elements=spec.elements,
            order=spec.order,
            variant=spec.variant,
            **spec.solver_kwargs(),
        )
        return scenario.solver
    raise ValueError(f"unknown scenario {spec.scenario!r}")


def state_digest(solver) -> str:
    """SHA-256 over the solver's canonical state bytes.

    Fused solvers egress their block-resident stack first
    (:attr:`~repro.engine.solver.ADERDGSolver.states` is the canonical
    view), so the digest is comparable across execution modes -- two
    runs are bitwise identical iff their digests match.
    """
    states = solver.states
    return hashlib.sha256(states.tobytes()).hexdigest()


def run_job(spec: JobSpec, job_id: str, stream, cancelled, next_seq) -> dict:
    """Run one admitted job to completion, streaming events; the summary.

    Parameters
    ----------
    spec:
        The validated :class:`~repro.service.protocol.JobSpec`.
    job_id:
        Service-assigned identifier echoed in every event.
    stream:
        The job's :class:`~repro.parallel.telemetry.EventStream`;
        ``"step"``, ``"receiver"`` and ``"result"`` events are
        published here (lifecycle ``"state"`` events are the
        service's business).
    cancelled:
        ``threading.Event``; checked between steps -- a running job
        cancels at the next step boundary, partial results stand.
    next_seq:
        Callable yielding the job's monotonically increasing event
        sequence numbers.

    Returns the result summary dict (also published as the ``"result"``
    event): terminal state, steps run, simulated time, total wall and
    compile seconds, resolved backend, ``degraded`` flag and the
    bitwise :func:`state_digest` of the final solution.
    """
    wall_start = time.perf_counter()
    solver = build_solver(spec)
    try:
        solver.add_step_listener(
            lambda record: stream.publish(
                job_event(
                    "step", job_id, next_seq(), record=record.to_dict()
                )
            )
        )
        state = JobState.DONE
        for _ in range(spec.steps):
            if cancelled.is_set():
                state = JobState.CANCELLED
                break
            solver.step(spec.dt)
            for receiver in solver.receivers:
                if not receiver.times:
                    continue
                stream.publish(
                    job_event(
                        "receiver",
                        job_id,
                        next_seq(),
                        label=receiver.label,
                        t=receiver.times[-1],
                        values=[float(v) for v in receiver.samples[-1]],
                    )
                )
        summary = {
            "job_id": job_id,
            "label": spec.label,
            "scenario": spec.scenario,
            "state": state,
            "steps": solver.step_count,
            "t": solver.t,
            "backend": solver.backend,
            "degraded": solver.last_failure is not None,
            "compile_s": float(
                sum(r.compile_s for r in solver.step_records)
            ),
            "wall_s": time.perf_counter() - wall_start,
            "state_sha256": state_digest(solver),
            "receivers": {r.label: len(r.times) for r in solver.receivers},
        }
    finally:
        solver.close()
    stream.publish(job_event("result", job_id, next_seq(), result=summary))
    return summary
