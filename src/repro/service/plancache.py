"""The service-wide compiled-plan cache (shared across concurrent jobs).

The per-process :class:`~repro.codegen.compiled.PlanRegistry` already
caches compiled programs keyed ``(jit, variant, spec, pde_token,
fused)``; this module *promotes* it to an explicitly shared,
service-level layer: one :class:`SharedPlanCache` per
:class:`~repro.service.service.SolverService`, wrapping the (now
thread-safe, single-flighted) registry with service-facing
observability and warm-up.

The sharing contract (see ``docs/service.md``):

* two jobs whose specs resolve to the same registry key pay kernel
  compilation **once per process** -- whichever job triggers the build
  reports the compile seconds in its telemetry, every other job
  reports ~zero ``compile_s`` (the registry's claim-once attribution);
* a job that crashes or degrades never poisons the cache: programs are
  immutable after construction and the registry never stores partial
  builds (a failed build leaves no entry behind);
* ``numpy`` jobs bypass the cache entirely (nothing to compile).
"""

from __future__ import annotations

from repro.codegen.compiled import plan_registry
from repro.codegen.executor import resolve_executor

__all__ = ["SharedPlanCache"]


class SharedPlanCache:
    """Service façade over the shared compiled-plan registry.

    Exposes the registry's traffic counters
    (hits/misses/builds/single-flight waits) as a JSON-ready snapshot
    for the service's stats endpoint, and :meth:`warm` to pre-compile
    a job spec's kernels before the job holds a solver slot.
    """

    def __init__(self, registry=None):
        self._registry = registry if registry is not None else plan_registry()

    @property
    def registry(self):
        """The underlying :class:`~repro.codegen.compiled.PlanRegistry`."""
        return self._registry

    def snapshot(self) -> dict:
        """Traffic counters + cache size, JSON-ready.

        ``programs`` is the number of cached program wrappers; the
        remaining keys mirror
        :meth:`~repro.codegen.compiled.RegistryStats.snapshot`.
        """
        data = self._registry.stats.snapshot()
        data["programs"] = len(self._registry)
        return data

    def warm(self, spec) -> bool:
        """Pre-compile the kernels a :class:`~repro.service.protocol.
        JobSpec` will request; ``True`` when a compiled program is now
        cached.

        Builds a throwaway executor for the spec's (pre-resolved)
        backend and asks it to fetch/build the phase program -- the
        expensive module exec + JIT lands in the shared registry, so
        the job itself (and every identical one) starts warm.  Returns
        ``False`` for non-compiled backends and for PDEs the lowering
        cannot handle; never raises on lowering limitations.
        """
        from repro.core.spec import KernelSpec
        from repro.service.session import scenario_pde

        executor = resolve_executor(spec.backend)
        if not executor.is_compiled:
            return False
        pde = scenario_pde(spec.scenario)
        kernel_spec = KernelSpec(
            order=spec.order, nvar=pde.nvar, nparam=pde.nparam
        )
        fused = spec.fuse is not False and spec.face_sweep
        return executor.warm(spec.variant, kernel_spec, pde, fused=fused)
