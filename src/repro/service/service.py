"""The solver service: many concurrent simulations, bounded solver slots.

:class:`SolverService` is the long-lived front door of the engine: a
client hands :meth:`~SolverService.submit` a plain scenario spec dict
and gets a :class:`JobHandle` back immediately -- the job runs on one
of a bounded pool of **solver slots** (worker threads, each driving a
full :class:`~repro.engine.solver.ADERDGSolver` via
:func:`~repro.service.session.run_job`) while the client streams the
job's per-step telemetry and receiver samples off the handle, or just
blocks on :meth:`~JobHandle.result`.

Load shedding happens at the front door: when every slot is busy and
the pending queue is full, :meth:`~SolverService.submit` raises a
reasoned :class:`~repro.service.queue.AdmissionError` instead of
queueing without bound.  All jobs in one process share one compiled
plan cache (:class:`~repro.service.plancache.SharedPlanCache`): N
identical jobs pay kernel compilation once.

>>> from repro.service import SolverService
>>> with SolverService(slots=2) as svc:
...     handle = svc.submit({"scenario": "gaussian", "steps": 2})
...     result = handle.result(timeout=60)
>>> result["state"]
'done'
"""

from __future__ import annotations

import itertools
import threading

from repro.parallel.telemetry import EventStream
from repro.service.plancache import SharedPlanCache
from repro.service.protocol import (
    TERMINAL_STATES,
    JobSpec,
    JobState,
    job_event,
)
from repro.service.queue import JobQueue
from repro.service.session import run_job

__all__ = ["JobHandle", "SolverService"]


class JobHandle:
    """A client's view of one submitted job (thread-safe).

    Returned by :meth:`SolverService.submit`; never constructed by
    clients.  Exposes the job's lifecycle :attr:`state`, its streamed
    :meth:`events`, blocking :meth:`result` retrieval and
    :meth:`cancel`.
    """

    def __init__(self, job_id: str, spec: JobSpec):
        #: service-assigned identifier (echoed in every event)
        self.job_id = job_id
        #: the validated, immutable job spec
        self.spec = spec
        #: the job's event stream (``state``/``step``/``receiver``/``result``)
        self.stream = EventStream()
        self._lock = threading.Lock()
        self._state = JobState.PENDING
        self._result: dict | None = None
        self._error: BaseException | None = None
        self._cancel = threading.Event()
        self._done = threading.Event()
        self._seq = itertools.count()
        self._on_cancel = None  # set by the service: drop-if-pending hook

    # -- client API -------------------------------------------------------------

    @property
    def state(self) -> str:
        """Current lifecycle state (a :class:`~repro.service.protocol.
        JobState` constant)."""
        with self._lock:
            return self._state

    @property
    def priority(self) -> int:
        """Scheduling priority (read by the service's job queue)."""
        return self.spec.priority

    def events(self, timeout: float | None = None):
        """Iterate the job's event dicts live, until the job ends.

        Replays recent history for late subscribers; ``timeout``
        bounds the wait per event (see
        :meth:`~repro.parallel.telemetry.EventStream.events`).
        """
        return self.stream.events(timeout=timeout)

    def result(self, timeout: float | None = None) -> dict:
        """Block for the job's result summary dict.

        Raises the job's error for FAILED jobs, ``TimeoutError`` if the
        job is still running after ``timeout`` seconds.  Cancelled jobs
        return their partial summary (pending-cancelled jobs a minimal
        one).
        """
        if not self._done.wait(timeout=timeout):
            raise TimeoutError(
                f"job {self.job_id} not finished within {timeout}s "
                f"(state={self.state})"
            )
        with self._lock:
            if self._error is not None:
                raise self._error
            return self._result

    def cancel(self) -> bool:
        """Request cancellation; ``True`` unless already terminal.

        A pending job is dropped before it ever takes a slot; a running
        job stops at its next step boundary (its partial results
        stand).
        """
        with self._lock:
            if self._state in TERMINAL_STATES:
                return False
        self._cancel.set()
        if self._on_cancel is not None:
            self._on_cancel(self)
        return True

    def done(self) -> bool:
        """Whether the job reached a terminal state."""
        return self._done.is_set()

    # -- service-side hooks -----------------------------------------------------

    def _next_seq(self) -> int:
        return next(self._seq)

    def _set_state(self, state: str) -> None:
        with self._lock:
            self._state = state
        self.stream.publish(
            job_event("state", self.job_id, self._next_seq(), state=state)
        )

    def _finish(self, state: str, result, error=None) -> None:
        with self._lock:
            self._state = state
            self._result = result
            self._error = error
        self.stream.publish(
            job_event("state", self.job_id, self._next_seq(), state=state)
        )
        self.stream.close()
        self._done.set()


class SolverService:
    """Concurrent job runtime over a bounded pool of solver slots.

    Parameters
    ----------
    slots:
        Number of solver slots == jobs simulating concurrently (each
        slot thread drives one full solver; a job may additionally use
        worker *processes* via its spec's ``num_workers``).
    max_pending:
        Bound on the admitted-but-waiting backlog; submissions beyond
        it are rejected with
        :class:`~repro.service.queue.AdmissionError`.
    plan_cache:
        The shared compiled-plan cache; defaults to a
        :class:`~repro.service.plancache.SharedPlanCache` over the
        process-wide registry.

    Use as a context manager (or call :meth:`close`): shutdown refuses
    new work, lets running jobs finish and joins the slot threads.
    """

    def __init__(
        self,
        slots: int = 2,
        max_pending: int = 8,
        plan_cache: SharedPlanCache | None = None,
    ):
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        self.slots = slots
        #: the shared compiled-plan cache (see ``docs/service.md``)
        self.plan_cache = plan_cache if plan_cache is not None else SharedPlanCache()
        self._queue = JobQueue(max_pending=max_pending)
        self._jobs: list[JobHandle] = []
        self._jobs_lock = threading.Lock()
        self._ids = itertools.count()
        self._closed = False
        self._threads = [
            threading.Thread(
                target=self._slot_loop, name=f"repro-slot-{i}", daemon=True
            )
            for i in range(slots)
        ]
        for thread in self._threads:
            thread.start()

    # -- client API -------------------------------------------------------------

    def submit(self, spec) -> JobHandle:
        """Validate + admit a scenario spec; the job's :class:`JobHandle`.

        ``spec`` is a plain dict (or a pre-built
        :class:`~repro.service.protocol.JobSpec`).  Raises
        :class:`~repro.service.protocol.SpecError` on invalid specs and
        :class:`~repro.service.queue.AdmissionError` (with a
        machine-readable ``reason``) when the service is saturated or
        closed -- a rejected job holds no slot and emits no events.
        """
        job_spec = JobSpec.from_dict(spec)
        handle = JobHandle(f"job-{next(self._ids):04d}", job_spec)
        handle._on_cancel = self._cancel_pending
        self._queue.submit(handle)  # may raise AdmissionError
        with self._jobs_lock:
            self._jobs.append(handle)
        handle.stream.publish(
            job_event(
                "state",
                handle.job_id,
                handle._next_seq(),
                state=JobState.PENDING,
            )
        )
        return handle

    def warm(self, spec) -> bool:
        """Pre-compile a spec's kernels into the shared plan cache.

        ``True`` when a compiled program is now cached (always
        ``False`` for non-compiled backends); see
        :meth:`~repro.service.plancache.SharedPlanCache.warm`.
        """
        return self.plan_cache.warm(JobSpec.from_dict(spec))

    def stats(self) -> dict:
        """Service observability snapshot (JSON-ready).

        Slot count, pending backlog, per-state job counts and the
        shared plan cache's hit/miss/build counters.
        """
        with self._jobs_lock:
            states = [job.state for job in self._jobs]
        return {
            "slots": self.slots,
            "pending": len(self._queue),
            "jobs": {
                state: states.count(state)
                for state in sorted(set(states))
            },
            "plan_cache": self.plan_cache.snapshot(),
        }

    def close(self, timeout: float | None = None) -> None:
        """Graceful shutdown: refuse new jobs, drain, join slot threads.

        Already-admitted jobs (pending and running) complete normally;
        ``timeout`` bounds the join on *each* slot thread.  Idempotent.
        """
        self._closed = True
        self._queue.close()
        for thread in self._threads:
            thread.join(timeout=timeout)

    def __enter__(self) -> "SolverService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- slot loop --------------------------------------------------------------

    def _cancel_pending(self, handle: JobHandle) -> None:
        """Drop a still-pending cancelled job so it never takes a slot.

        Holding the queue's lock makes this race-free against the slot
        loop: either the drop wins (the entry is skipped at pop time
        and finished here) or a slot already popped the job (the slot's
        own cancel check finishes it between steps).
        """
        if self._queue.drop(handle):
            handle._finish(
                JobState.CANCELLED,
                {
                    "job_id": handle.job_id,
                    "label": handle.spec.label,
                    "state": JobState.CANCELLED,
                    "steps": 0,
                },
            )

    def _slot_loop(self) -> None:
        while True:
            handle = self._queue.pop()
            if handle is None:
                return  # service closed and queue drained
            if handle._cancel.is_set():
                # cancelled while pending: never takes the slot
                handle._finish(
                    JobState.CANCELLED,
                    {
                        "job_id": handle.job_id,
                        "label": handle.spec.label,
                        "state": JobState.CANCELLED,
                        "steps": 0,
                    },
                )
                continue
            handle._set_state(JobState.RUNNING)
            try:
                summary = run_job(
                    handle.spec,
                    handle.job_id,
                    handle.stream,
                    handle._cancel,
                    handle._next_seq,
                )
            except BaseException as exc:  # pragma: allow(HP002): job isolation -- one job's failure must not take down the slot thread
                handle._finish(JobState.FAILED, None, error=exc)
            else:
                handle._finish(summary["state"], summary)
