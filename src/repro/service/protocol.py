"""Job specs, lifecycle states and streamed events of the solver service.

A client talks to :class:`~repro.service.service.SolverService` in
plain data: a **scenario spec dict** goes in, validated here into an
immutable :class:`JobSpec`; **event dicts** (built by
:func:`job_event`) come back out on the job's stream.  Nothing in this
module imports the engine -- validation is pure bookkeeping, so
rejecting garbage is cheap and never touches a solver slot.

Lifecycle (see ``docs/service.md`` for the full state machine)::

    submit() --admission--> PENDING --slot--> RUNNING --+--> DONE
        |                      |                        +--> FAILED
        +--> AdmissionError    +--> CANCELLED <---------+

A saturated queue rejects at ``submit()`` with a reasoned
:class:`~repro.service.queue.AdmissionError` -- a rejected job never
becomes a tracked state.  A worker-process crash inside a RUNNING job
does *not* fail it: the solver degrades to the in-process path
(``on_worker_failure="serial"``) and the job finishes with
``degraded=True`` in its result summary.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codegen.executor import resolve_backend_name

__all__ = [
    "JobSpec",
    "SpecError",
    "JobState",
    "TERMINAL_STATES",
    "job_event",
]


class SpecError(ValueError):
    """A scenario spec dict failed validation (reason in the message)."""


class JobState:
    """String constants of the job lifecycle states."""

    #: admitted, waiting for a solver slot
    PENDING = "pending"
    #: executing on a solver slot
    RUNNING = "running"
    #: finished successfully (result available)
    DONE = "done"
    #: raised during execution (error recorded on the handle)
    FAILED = "failed"
    #: cancelled while pending or between steps while running
    CANCELLED = "cancelled"


#: states a job never leaves once reached
TERMINAL_STATES = (JobState.DONE, JobState.FAILED, JobState.CANCELLED)

#: scenario names :func:`repro.service.session.build_solver` understands
SCENARIOS = ("gaussian", "loh1")

#: spec keys accepted by :meth:`JobSpec.from_dict`, with defaults
_SPEC_DEFAULTS = {
    "scenario": "gaussian",
    "elements": 2,
    "order": 3,
    "variant": "splitck",
    "steps": 2,
    "dt": None,
    "batch_size": None,
    "num_workers": None,
    "face_sweep": True,
    "stepping": "barrier",
    "fuse": "auto",
    "backend": "auto",
    "on_worker_failure": "serial",
    "priority": 0,
    "label": "",
}


@dataclass(frozen=True)
class JobSpec:
    """One validated simulation job (immutable, hashable).

    Built from a plain dict via :meth:`from_dict`; every field is
    checked there so scheduler and session code never re-validate.
    ``backend`` is always a **concrete** name -- the ``"auto"`` request
    and the ``REPRO_BACKEND`` environment override are resolved once at
    validation time (:func:`~repro.codegen.executor.
    resolve_backend_name`), so an env change after admission cannot
    silently flip the backend a job runs (and reports in its
    ``StepRecord.backend`` telemetry).

    Attributes
    ----------
    scenario:
        ``"gaussian"`` (acoustic pulse, periodic box) or ``"loh1"``
        (layered elastic benchmark with source + surface receivers).
    elements, order, variant:
        Grid edge length (elements per dimension), scheme order and
        STP kernel variant.
    steps, dt:
        Number of time steps to run; ``dt=None`` uses the CFL-stable
        step each step.
    batch_size, num_workers, face_sweep, stepping, fuse, backend:
        Execution knobs forwarded to
        :class:`~repro.engine.solver.ADERDGSolver` unchanged (see its
        docstring); ``backend`` is pre-resolved as described above.
    on_worker_failure:
        Degradation policy of parallel jobs; the service default is
        ``"serial"`` so a worker crash downgrades the job in place
        instead of failing it (``"respawn"`` and ``"raise"`` are
        accepted for callers that want those semantics).
    priority:
        Scheduling priority (higher runs first among pending jobs).
    label:
        Free-form client tag echoed in events and results.
    """

    scenario: str = "gaussian"
    elements: int = 2
    order: int = 3
    variant: str = "splitck"
    steps: int = 2
    dt: float | None = None
    batch_size: int | None = None
    num_workers: int | None = None
    face_sweep: bool = True
    stepping: str = "barrier"
    fuse: object = "auto"
    backend: str = "numpy"
    on_worker_failure: str = "serial"
    priority: int = 0
    label: str = ""

    @classmethod
    def from_dict(cls, raw: dict) -> "JobSpec":
        """Validate a plain spec dict into a :class:`JobSpec`.

        Raises :class:`SpecError` naming the offending key for unknown
        keys, wrong types and out-of-range values -- the admission
        path turns these into client-visible rejections without ever
        touching a solver slot.
        """
        if isinstance(raw, JobSpec):
            return raw
        if not isinstance(raw, dict):
            raise SpecError(
                f"scenario spec must be a dict or JobSpec, got {type(raw).__name__}"
            )
        unknown = sorted(set(raw) - set(_SPEC_DEFAULTS))
        if unknown:
            raise SpecError(
                f"unknown spec key(s) {unknown}; accepted: "
                f"{sorted(_SPEC_DEFAULTS)}"
            )
        merged = dict(_SPEC_DEFAULTS, **raw)
        scenario = merged["scenario"]
        if scenario not in SCENARIOS:
            raise SpecError(
                f"unknown scenario {scenario!r}; available: {list(SCENARIOS)}"
            )
        for key in ("elements", "order", "steps"):
            value = merged[key]
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise SpecError(f"{key} must be a positive int, got {value!r}")
        if merged["order"] > 9:
            raise SpecError(f"order must be <= 9, got {merged['order']}")
        dt = merged["dt"]
        if dt is not None:
            dt = float(dt)
            if not dt > 0.0:
                raise SpecError(f"dt must be positive, got {dt}")
            merged["dt"] = dt
        for key in ("batch_size", "num_workers"):
            value = merged[key]
            if value is not None and (
                not isinstance(value, int) or isinstance(value, bool) or value < 1
            ):
                raise SpecError(f"{key} must be None or a positive int, got {value!r}")
        if merged["stepping"] not in ("barrier", "async"):
            raise SpecError(
                f"stepping must be 'barrier' or 'async', got {merged['stepping']!r}"
            )
        if merged["fuse"] not in ("auto", True, False):
            raise SpecError(
                f"fuse must be 'auto', True or False, got {merged['fuse']!r}"
            )
        if merged["on_worker_failure"] not in ("raise", "respawn", "serial"):
            raise SpecError(
                "on_worker_failure must be 'raise', 'respawn' or 'serial', "
                f"got {merged['on_worker_failure']!r}"
            )
        if not isinstance(merged["face_sweep"], bool):
            raise SpecError(
                f"face_sweep must be a bool, got {merged['face_sweep']!r}"
            )
        if not isinstance(merged["priority"], int) or isinstance(
            merged["priority"], bool
        ):
            raise SpecError(f"priority must be an int, got {merged['priority']!r}")
        merged["label"] = str(merged["label"])
        try:
            # pin the backend NOW: one env read per admitted job
            merged["backend"] = resolve_backend_name(merged["backend"])
        except ValueError as exc:
            raise SpecError(str(exc)) from exc
        return cls(**merged)

    def solver_kwargs(self) -> dict:
        """Execution knobs forwarded to the scenario's solver constructor."""
        return {
            "batch_size": self.batch_size,
            "num_workers": self.num_workers,
            "face_sweep": self.face_sweep,
            "stepping": self.stepping,
            "fuse": self.fuse,
            "backend": self.backend,
            "on_worker_failure": self.on_worker_failure,
        }

    def identity(self) -> tuple:
        """The plan-cache identity of this job's compiled kernels.

        Jobs sharing this tuple request the same compiled programs
        from the shared :class:`~repro.codegen.compiled.PlanRegistry`
        (the registry key additionally carries the exact
        ``KernelSpec`` and ``pde_token``, both functions of these
        fields) -- identical jobs pay compilation once per process.
        """
        return (self.backend, self.variant, self.order, self.scenario, self.fuse)


def job_event(kind: str, job_id: str, seq: int, **data) -> dict:
    """Build one streamed job event (a JSON-ready plain dict).

    Kinds: ``"state"`` (lifecycle transition), ``"step"`` (one
    :class:`~repro.parallel.telemetry.StepRecord` as a dict),
    ``"receiver"`` (one receiver sample) and ``"result"`` (the final
    summary).  ``seq`` orders events within one job's stream.
    """
    event = {"kind": kind, "job_id": job_id, "seq": seq}
    event.update(data)
    return event
