"""Priority job queue with admission control for the solver service.

A bounded, thread-safe priority queue: higher-priority jobs pop first,
equal priorities pop in submission order (FIFO).  Admission control is
*reject, not block*: a submit against a full queue raises
:class:`AdmissionError` carrying a machine-readable ``reason`` -- the
"millions of users" posture is to shed load at the front door with an
explanation, never to let a backlog grow without bound or to stall the
submitting client.

Cancellation of *pending* jobs happens here (the entry is marked and
skipped at pop time); cancelling a *running* job is the session's
business -- it checks the job's cancel event between steps.
"""

from __future__ import annotations

import heapq
import itertools
import threading

__all__ = ["AdmissionError", "JobQueue"]


class AdmissionError(RuntimeError):
    """A job was rejected at submission; ``reason`` says why.

    Raised synchronously by :meth:`JobQueue.submit` (and therefore by
    :meth:`~repro.service.service.SolverService.submit`): the job was
    never admitted, holds no slot and produces no events.
    """

    def __init__(self, reason: str):
        super().__init__(reason)
        #: short machine-readable rejection reason
        self.reason = reason


class JobQueue:
    """Bounded thread-safe priority queue of admitted jobs.

    ``max_pending`` bounds the *waiting* backlog (jobs already handed
    to a solver slot no longer count).  Items are arbitrary objects
    with a ``priority`` attribute; ties pop FIFO via a monotonic
    sequence number.
    """

    def __init__(self, max_pending: int = 8):
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.max_pending = max_pending
        self._heap: list[tuple] = []
        self._dropped: set[int] = set()
        self._cond = threading.Condition()
        self._seq = itertools.count()
        self._closed = False

    def __len__(self) -> int:
        with self._cond:
            return len(self._heap) - len(self._dropped)

    def submit(self, job) -> None:
        """Admit ``job`` or raise :class:`AdmissionError` with the reason.

        Rejection reasons: ``queue saturated`` (the pending backlog is
        at ``max_pending``) and ``service closed`` (shutdown began).
        """
        with self._cond:
            if self._closed:
                raise AdmissionError("service closed: no longer accepting jobs")
            pending = len(self._heap) - len(self._dropped)
            if pending >= self.max_pending:
                raise AdmissionError(
                    f"queue saturated: {pending} job(s) pending >= "
                    f"max_pending={self.max_pending}; retry later or raise "
                    "the service's max_pending"
                )
            seq = next(self._seq)
            heapq.heappush(self._heap, (-int(job.priority), seq, job))
            self._cond.notify()

    def pop(self, timeout: float | None = None):
        """The next job (highest priority, then FIFO), or ``None``.

        Blocks up to ``timeout`` seconds (forever when ``None``) for a
        job to arrive; returns ``None`` on timeout or once the queue is
        closed *and* drained.  Entries cancelled while pending are
        skipped silently.
        """
        with self._cond:
            while True:
                while self._heap:
                    _, seq, job = self._heap[0]
                    if seq in self._dropped:
                        heapq.heappop(self._heap)
                        self._dropped.discard(seq)
                        continue
                    heapq.heappop(self._heap)
                    return job
                if self._closed:
                    return None
                if not self._cond.wait(timeout=timeout):
                    return None

    def drop(self, job) -> bool:
        """Remove a still-pending ``job``; ``True`` if it was found.

        Used by cancellation: a pending entry is lazily dropped (the
        heap is not rebuilt; the entry is skipped at pop time).
        """
        with self._cond:
            for entry in self._heap:
                if entry[2] is job and entry[1] not in self._dropped:
                    self._dropped.add(entry[1])
                    return True
            return False

    def close(self) -> None:
        """Refuse new submissions; wake blocked poppers to drain + exit."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
