"""VTK output: ExaHyPE's "plotters for various file formats" box (Fig. 2).

Writes the DG solution as legacy-ASCII VTK structured-points files --
one scalar/vector field per evolved quantity, sampled on a uniform
sub-grid per element (the usual way high-order DG data is exported for
ParaView-class tools).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

__all__ = ["write_vtk", "sample_solution"]


def sample_solution(solver, points_per_element: int = 2) -> tuple[np.ndarray, np.ndarray]:
    """Resample the DG solution on a uniform grid.

    Returns ``(coordinates, values)`` with shapes ``(nz, ny, nx, 3)``
    and ``(nz, ny, nx, m)``; each element contributes
    ``points_per_element`` samples per dimension, evaluated with the
    tensor-product Lagrange basis (not just copied nodal values).
    """
    if points_per_element < 1:
        raise ValueError("need at least one sample point per element")
    grid = solver.grid
    basis = solver.ops.basis
    # sample at element-local positions strictly inside the element
    local = (np.arange(points_per_element) + 0.5) / points_per_element
    phi = basis.evaluate(local)  # (ppe, N)

    ex, ey, ez = grid.shape
    p = points_per_element
    m = solver.pde.nquantities
    values = np.zeros((ez * p, ey * p, ex * p, m))
    coords = np.zeros((ez * p, ey * p, ex * p, 3))
    for e in range(grid.n_elements):
        ix, iy, iz = grid.coordinates(e)
        # interpolate: state (z, y, x, m) contracted with phi per dim
        block = np.einsum(
            "ak,bj,ci,kjim->abcm",
            phi, phi, phi, solver.states[e],
            optimize=True,
        )
        values[iz * p:(iz + 1) * p, iy * p:(iy + 1) * p, ix * p:(ix + 1) * p] = block
        org = grid.origin(e)
        h = grid.h
        zs = org[2] + h * local
        ys = org[1] + h * local
        xs = org[0] + h * local
        sub = coords[iz * p:(iz + 1) * p, iy * p:(iy + 1) * p, ix * p:(ix + 1) * p]
        sub[..., 0] = xs[None, None, :]
        sub[..., 1] = ys[None, :, None]
        sub[..., 2] = zs[:, None, None]
    return coords, values


def write_vtk(
    solver,
    path: str | Path,
    field_names: list[str] | None = None,
    points_per_element: int = 2,
) -> Path:
    """Write the (resampled) solution as a legacy VTK structured-points file."""
    path = Path(path)
    coords, values = sample_solution(solver, points_per_element)
    nz, ny, nx, m = values.shape
    nvar = solver.pde.nvar
    if field_names is None:
        field_names = [f"q{i}" for i in range(nvar)]
    if len(field_names) > nvar:
        raise ValueError("more field names than evolved quantities")

    spacing = solver.grid.h / points_per_element
    origin = coords[0, 0, 0]
    lines = [
        "# vtk DataFile Version 3.0",
        f"repro ADER-DG solution at t = {solver.t:.6e}",
        "ASCII",
        "DATASET STRUCTURED_POINTS",
        f"DIMENSIONS {nx} {ny} {nz}",
        f"ORIGIN {origin[0]:.6e} {origin[1]:.6e} {origin[2]:.6e}",
        f"SPACING {spacing:.6e} {spacing:.6e} {spacing:.6e}",
        f"POINT_DATA {nx * ny * nz}",
    ]
    for i, name in enumerate(field_names):
        lines.append(f"SCALARS {name} double 1")
        lines.append("LOOKUP_TABLE default")
        # VTK structured points iterate x fastest, then y, then z
        flat = values[..., i].reshape(-1)
        lines.extend(f"{v:.9e}" for v in flat)
    path.write_text("\n".join(lines) + "\n")
    return path
