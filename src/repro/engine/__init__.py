"""The ADER-DG engine: everything around the element-local kernels.

Mirrors the paper's Fig. 2 "ExaHyPE core" box: solver base
functionality (time stepping, CFL), Riemann solvers for the corrector's
face integrals, boundary conditions, point sources and receivers.
Multi-node parallelization (Peano/MPI/TBB) is out of scope of the
paper's single-socket benchmarks and is not reproduced; the
space-filling-curve element ordering is kept in
:mod:`repro.mesh.sfc` for traversal fidelity.
"""

from repro.engine.solver import ADERDGSolver
from repro.engine.facesweep import FaceSweep, direction_faces, face_sweep_plan
from repro.engine.riemann import rusanov_flux, upwind_flux, upwind_flux_sweep
from repro.engine.source import GaussianDerivativeWavelet, PointSource, RickerWavelet
from repro.engine.receivers import Receiver

__all__ = [
    "ADERDGSolver",
    "FaceSweep",
    "direction_faces",
    "face_sweep_plan",
    "rusanov_flux",
    "upwind_flux",
    "upwind_flux_sweep",
    "PointSource",
    "GaussianDerivativeWavelet",
    "RickerWavelet",
    "Receiver",
]
