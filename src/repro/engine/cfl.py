"""Time-step control for explicit ADER-DG.

The high-order DG stability bound (cf. Dumbser et al.): the admissible
time step shrinks with the polynomial degree as ``1 / (2N - 1)`` and
with the spatial dimension,

.. math::

    \\Delta t \\le C \\; \\frac{h}{d \\, (2 N - 1) \\, |\\lambda_{max}|}.
"""

from __future__ import annotations

import numpy as np

__all__ = ["stable_timestep", "global_timestep", "STABILITY_FACTOR"]

#: Order-dependent stability coefficients (PNPM-style, cf. Dumbser &
#: Munz): the admissible CFL number shrinks faster than 1/(2N-1) at
#: high order.  Determined empirically for this implementation with
#: long plane-wave runs (see tests/engine/test_solver.py).
STABILITY_FACTOR = {
    2: 1.0, 3: 0.9, 4: 0.75, 5: 0.65, 6: 0.55, 7: 0.5,
    8: 0.45, 9: 0.42, 10: 0.38, 11: 0.35,
}
_FACTOR_FLOOR = 0.3


def stable_timestep(
    h: float,
    order: int,
    max_speed: float,
    cfl: float = 0.9,
    dim: int = 3,
) -> float:
    """Largest stable time step for an element of size ``h``."""
    if max_speed <= 0:
        raise ValueError("maximum wave speed must be positive")
    if not 0 < cfl <= 1:
        raise ValueError("cfl must be in (0, 1]")
    factor = STABILITY_FACTOR.get(order, _FACTOR_FLOOR)
    return cfl * factor * h / (dim * (2 * order - 1) * max_speed)


def global_timestep(
    states: np.ndarray, pde, h: float, order: int, cfl: float = 0.9, dim: int = 3
) -> float:
    """Stable time step over all elements' states ``(nelem, N, N, N, m)``."""
    speed = float(np.max(pde.max_wave_speed(states)))
    return stable_timestep(h, order, speed, cfl, dim)
