"""The ADER-DG solver: one-step predictor-corrector time stepping.

Orchestrates, per time step (paper Sec. II-A):

1. the element-local **Space-Time Predictor** (any of the four kernel
   variants -- the choice is a constructor flag, exactly like the
   opt-in specification-file flags of the paper),
2. the **Riemann solves** on all faces, using the time-integrated face
   states both sides projected in step 1, and
3. the element-local **corrector** (eq. 5).

Elements are traversed in Peano space-filling-curve order, mirroring
the Peano framework underneath ExaHyPE.

Execution modes (orthogonal, freely composable):

* ``batch_size=B`` fuses the predictor over element blocks
  (:class:`~repro.core.variants.BatchedSTP`);
* ``num_workers=K`` shards the grid into ``K`` contiguous SFC blocks
  and runs the whole predictor/corrector step in a persistent
  multi-core worker pool over shared-memory state
  (:mod:`repro.parallel`; see ``docs/parallel.md``).
"""

from __future__ import annotations

import time

import numpy as np

from repro.basis.operators import cached_operators
from repro.codegen.executor import BACKEND_NAMES, Executor, resolve_executor
from repro.core.corrector import _face_params, corrector_update
from repro.core.spec import KernelSpec
from repro.core.variants import BatchedSTP, ElementSource, combine_sources, make_kernel
from repro.core.variants.batched import ScratchArena
from repro.engine.boundary import ghost_state
from repro.engine.cfl import global_timestep, stable_timestep
from repro.engine.facesweep import FaceSweep
from repro.engine.riemann import SOLVERS
from repro.engine.source import PointSource
from repro.mesh.grid import BOUNDARY, UniformGrid
from repro.mesh.sfc import peano_order
from repro.parallel.telemetry import StepRecord
from repro.pde.base import LinearPDE

__all__ = ["ADERDGSolver"]


class ADERDGSolver:
    """Linear ADER-DG solver on a uniform hexahedral grid.

    Parameters
    ----------
    grid, pde, order:
        Mesh, PDE system and scheme order ``N``.
    variant:
        STP kernel variant (``generic`` / ``log`` / ``splitck`` /
        ``aosoa``).
    batch_size:
        Fuse the predictor over element blocks of this size; ``None``
        keeps the per-element loop.
    num_workers:
        Run every step over ``K`` SFC shards in a persistent
        multi-core worker pool (``None``/``1`` = serial; clamped to the
        element count).  Composes with ``batch_size``: each worker uses
        a batched driver on its own shard.  Call :meth:`close` (or use
        the solver as a context manager) when done.
    start_method:
        ``multiprocessing`` start method for the pool; default
        ``fork`` where available, else ``spawn``.
    on_worker_failure:
        Policy when a worker process dies mid-step (``num_workers >
        1``; see ``docs/parallel.md``): ``"raise"`` (default)
        propagates a
        :class:`~repro.parallel.pool.WorkerCrashError`, ``"respawn"``
        restarts the dead worker and replays the phase (bounded retry
        budget, exponential backoff), ``"serial"`` tears the pool down
        and finishes the run -- including the interrupted step -- on
        the in-process path.  Both recovery modes produce states
        bitwise identical to an undisturbed run.
    stepping:
        Parallel step protocol (``num_workers > 1``; see
        ``docs/stepping.md``): ``"barrier"`` (default) runs the
        two-barrier protocol, bitwise identical to serial;
        ``"async"`` runs the barrier-free neighbor-dependency protocol
        with mailbox flux exchange and, inside :meth:`run`, pipelines
        the next step's predictor behind the current corrector.
        Requires ``face_sweep=True`` and is incompatible with
        ``on_worker_failure="respawn"``.
    face_sweep:
        Run the Riemann + corrector phases as vectorized sweeps over
        packed face planes and element blocks
        (:mod:`repro.engine.facesweep`); ``False`` keeps the legacy
        per-face / per-element loop (bitwise-identical results -- the
        escape hatch exists for the conformance tests).
    backend:
        Execution backend for the hot phases (see ``docs/backends.md``):
        ``"numpy"`` (the seed path, bitwise identical), ``"numba"``
        (generated compiled kernels, NumPy fallback when Numba is
        missing) or ``"auto"`` (the default: numba when importable).
        An :class:`~repro.codegen.executor.Executor` instance is also
        accepted.  A compiled backend implies block execution: when
        ``batch_size`` is ``None`` the predictor runs batched with a
        default block of 8 (the legacy per-element loop has no compiled
        form).  Parallel workers resolve their own backend per process.
    fuse:
        Fused whole-step execution (see ``docs/backends.md``):
        ``"auto"`` (default) runs predict -> Riemann -> correct inside
        one compiled program whenever the backend is compiled and
        ``face_sweep`` is on; ``True`` forces the attempt (still
        degrading per-step to the three-phase path when the PDE cannot
        be lowered); ``False`` always runs phase-wise.  Serially the
        fused path keeps the states in a persistent
        :class:`~repro.core.layouts.ResidentBlockState` -- reading
        :attr:`states` transparently unpacks it, and in-place writers
        must call :meth:`invalidate_state_caches` exactly as before.
        Parallel workers fuse their own shards when their per-process
        backend is compiled.
    """

    def __init__(
        self,
        grid: UniformGrid,
        pde: LinearPDE,
        order: int,
        variant: str = "splitck",
        arch: str = "skx",
        riemann: str = "rusanov",
        boundary: str = "absorbing",
        cfl: float = 0.5,
        quadrature: str = "gauss_legendre",
        batch_size: int | None = None,
        num_workers: int | None = None,
        start_method: str | None = None,
        face_sweep: bool = True,
        on_worker_failure: str = "raise",
        backend="auto",
        stepping: str = "barrier",
        fuse="auto",
    ):
        self.grid = grid
        self.pde = pde
        self.spec = KernelSpec(
            order=order,
            nvar=pde.nvar,
            nparam=pde.nparam,
            arch=arch,
            quadrature=quadrature,
        )
        self.variant = variant
        self.kernel = make_kernel(variant, self.spec, pde)
        #: the backend request as given (a name or an Executor instance)
        self.backend_requested = backend
        #: the resolved per-process :class:`~repro.codegen.executor.Executor`
        self.executor = resolve_executor(backend)
        #: resolved backend name ("numpy" / "numba" / a custom executor's)
        self.backend = self.executor.name
        # Optional batched execution: fuse the predictor over element
        # blocks of this size.  None keeps the per-element loop on the
        # NumPy backend; compiled backends have no per-element form, so
        # they default to blocks of 8.
        if batch_size is None and self.executor.is_compiled:
            batch_size = 8
        self.batch_size = batch_size
        self.batched = (
            None
            if batch_size is None
            else BatchedSTP(
                variant, self.spec, pde, batch_size=batch_size,
                backend=self.executor,
            )
        )
        self.ops = cached_operators(order, quadrature)
        self.riemann_name = riemann
        self.riemann = SOLVERS[riemann]
        self.boundary = boundary
        self.cfl = cfl
        n, m = order, pde.nquantities
        self.traversal = peano_order(grid.shape)
        if num_workers is not None and num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = min(num_workers or 1, grid.n_elements)
        self._start_method = start_method
        if on_worker_failure not in ("raise", "respawn", "serial"):
            raise ValueError(
                "on_worker_failure must be one of ('raise', 'respawn', "
                f"'serial'), got {on_worker_failure!r}"
            )
        self.on_worker_failure = on_worker_failure
        if stepping not in ("barrier", "async"):
            raise ValueError(
                f"stepping must be one of ('barrier', 'async'), "
                f"got {stepping!r}"
            )
        if stepping == "async":
            if not face_sweep:
                raise ValueError(
                    "stepping='async' requires face_sweep=True (the mailbox "
                    "flux exchange is built on the packed face planes)"
                )
            if on_worker_failure == "respawn":
                raise ValueError(
                    "stepping='async' is incompatible with "
                    "on_worker_failure='respawn'; use 'raise' or 'serial' "
                    "(see docs/stepping.md)"
                )
        self.stepping = stepping
        if fuse not in ("auto", True, False):
            raise ValueError(
                f"fuse must be one of ('auto', True, False), got {fuse!r}"
            )
        if fuse is True and not face_sweep:
            raise ValueError(
                "fuse=True requires face_sweep=True (the fused step is "
                "built on the packed face planes)"
            )
        self.fuse = fuse
        #: serial fused-step machinery (built lazily on first fused step)
        self._resident = None
        self._fused = None
        self._qidx = None
        self._fuse_failed = False
        self._pack_seen = (0, 0)
        self._dependency_graph = None
        #: optional ``(dt_next, sources_next)`` speculation forwarded to
        #: the async pool; set by :meth:`run`, consumed by :meth:`step`
        self._next_hint = None
        self._pool = None
        self._shared = None
        self._shard_plan = None
        self._closed = False
        #: one :class:`~repro.parallel.telemetry.StepRecord` per step
        self.step_records = []
        #: callables invoked with each fresh ``StepRecord``
        #: (:meth:`add_step_listener`)
        self._step_listeners = []
        #: the :class:`~repro.parallel.pool.WorkerCrashError` that
        #: triggered the serial degradation (``None`` while healthy)
        self.last_failure = None
        self.face_sweep = face_sweep
        self._sweep = None
        self._qface_all = None
        self._vavg_all = None
        self._arena = None
        #: cached global wave speed (static-parameter PDEs only)
        self._wave_speed = None
        #: per-phase timings of the last step: a ``{"predict", "riemann",
        #: "correct"}`` seconds dict when serial, the pool's
        #: :class:`~repro.parallel.pool.StepTimings` when parallel
        self.last_step_timings = None
        if self.num_workers > 1:
            from repro.parallel.shm import SharedArrayBundle

            field = (grid.n_elements, n, n, n, m)
            shapes = {
                "states0": field,
                "states1": field,
                "qface": (grid.n_elements, 3, 2, n, n, m),
            }
            if stepping == "async":
                from repro.parallel.stepping import build_dependency_graph

                # built eagerly: the mailbox segment must exist before
                # any worker process maps the bundle
                self._dependency_graph = build_dependency_graph(self.shard_plan)
                shapes["mailbox"] = (
                    max(1, self._dependency_graph.n_slots), n, n, m
                )
            self._shared = SharedArrayBundle.create(shapes)
            self._buffers = (self._shared["states0"], self._shared["states1"])
            self._cur = 0
            self._states = self._buffers[0]
        else:
            self._buffers = None
            self._cur = 0
            self._states = np.zeros((grid.n_elements, n, n, n, m))
        self.t = 0.0
        self.step_count = 0
        self.sources: list[tuple[int, np.ndarray, np.ndarray, PointSource]] = []
        self.receivers = []

    # -- state access ---------------------------------------------------------

    @property
    def states(self) -> np.ndarray:
        """The canonical ``(E, N, N, N, m)`` state array.

        Under fused serial stepping the truth lives in the persistent
        resident stack between steps; reading this property egresses it
        back into the canonical array first (a no-op on the phase-wise
        and parallel paths, and whenever nothing stepped since the last
        read).  In-place writers must call
        :meth:`invalidate_state_caches` afterwards, exactly as before.
        """
        if self._resident is not None:
            self._resident.sync_canonical(self._states)
            self.executor.stats.note_resident_traffic(self._resident)
        return self._states

    @states.setter
    def states(self, value: np.ndarray) -> None:
        """Rebind the canonical array (the new array is the truth)."""
        self._states = value
        if self._resident is not None:
            self._resident.invalidate_resident()

    # -- setup ----------------------------------------------------------------

    def set_initial_condition(self, fn) -> None:
        """``fn(points) -> (..., m)`` evaluated at all node coordinates."""
        for e in range(self.grid.n_elements):
            pts = self.grid.node_coordinates(e, self.ops)
            self.states[e] = fn(pts)
        # new states mean new material parameters and wave speeds
        self.invalidate_state_caches()

    def invalidate_state_caches(self) -> None:
        """Drop every cache derived from ``states``; call after mutating it.

        The solver caches state-derived data between steps: the global
        wave speed of :meth:`stable_dt` (static-parameter PDEs), the
        face sweep's material face parameters, and -- when parallel --
        the per-worker copies of both.  Those caches only reset
        automatically in :meth:`set_initial_condition`; code that
        writes ``solver.states`` *in place* (restarts, perturbation
        studies, checkpoint loads) must call this afterwards or keep
        stepping against stale material data (see ``docs/parallel.md``).
        Under fused stepping this is also the resident-stack
        invalidation point: the canonical array is egressed first (so
        the caller's in-place edit composed with the stepped state, not
        a stale snapshot) and the stack re-ingests on the next step.
        """
        if self._resident is not None:
            self._resident.sync_canonical(self._states)
            self._resident.invalidate_resident()
        self._wave_speed = None
        if self._sweep is not None:
            self._sweep.invalidate_parameters()
        if self._pool is not None:
            self._pool.invalidate_caches()

    def add_point_source(self, source: PointSource) -> None:
        """Register a point source (element-located, projection precomputed)."""
        element, ref = self.grid.locate(source.position)
        # Physical Dirac: the reference projection scales with 1/h^3.
        projection = self.ops.source_projection(ref[::-1]) / self.grid.h**3
        amplitude = source.element_amplitude(self.pde.nquantities)
        self.sources.append((element, projection, amplitude, source))

    def add_receiver(self, receiver) -> None:
        """Bind a receiver to the grid and record it every step."""
        receiver.bind(self.grid, self.ops)
        self.receivers.append(receiver)

    def add_step_listener(self, listener) -> None:
        """Stream telemetry: call ``listener(record)`` after every step.

        Listeners fire synchronously at the end of :meth:`step` with
        the step's fresh :class:`~repro.parallel.telemetry.StepRecord`
        (the same object appended to :attr:`step_records`), *before*
        receivers sample -- the service layer plugs an
        :class:`~repro.parallel.telemetry.EventStream` in here to
        stream per-step telemetry to subscribers while a job runs.
        Listener exceptions propagate to the :meth:`step` caller.
        """
        self._step_listeners.append(listener)

    # -- stepping ---------------------------------------------------------------

    def stable_dt(self) -> float:
        """CFL-stable global time step for the current state.

        For PDEs whose wave speed depends only on the static parameters
        (``pde.wave_speed_is_static``) the full mesh scan runs once and
        the maximum is cached until :meth:`set_initial_condition`;
        nonlinear systems (Burgers) rescan every call.
        """
        if not getattr(self.pde, "wave_speed_is_static", False):
            return global_timestep(
                self.states, self.pde, self.grid.h, self.spec.order, self.cfl
            )
        if self._wave_speed is None:
            self._wave_speed = float(np.max(self.pde.max_wave_speed(self.states)))
        return stable_timestep(
            self.grid.h, self.spec.order, self._wave_speed, self.cfl
        )

    def _element_source(self, e: int, dt: float):
        """Combined source term of element ``e`` at the current time.

        All point sources registered in the element contribute -- the
        scheme is linear in the source term, so co-located sources sum
        exactly (:func:`~repro.core.variants.combine_sources`).
        """
        del dt
        parts = [
            ElementSource(
                projection,
                amplitude,
                source.wavelet.derivatives(self.t, self.spec.order),
            )
            for element, projection, amplitude, source in self.sources
            if element == e
        ]
        return combine_sources(parts)

    # -- parallel execution ------------------------------------------------

    @property
    def shard_plan(self):
        """The SFC shard plan of the worker pool (``None`` when serial)."""
        if self.num_workers <= 1:
            return None
        if self._shard_plan is None:
            from repro.parallel.sharding import make_shard_plan

            self._shard_plan = make_shard_plan(
                self.grid, self.num_workers, traversal=self.traversal
            )
        return self._shard_plan

    @property
    def dependency_graph(self):
        """The async-stepping dependency graph (``None`` unless async).

        Built eagerly in the constructor for ``stepping="async"``
        (the mailbox shared segment is sized from it); always ``None``
        for serial and barrier-mode solvers.
        """
        return self._dependency_graph

    def _resolve_riemann_name(self) -> str:
        """Registry name of the *current* ``self.riemann`` function.

        Honors a post-construction ``solver.riemann = ...`` override
        (the stability tests swap the flux function directly) -- but
        only for functions registered in
        :data:`~repro.engine.riemann.SOLVERS`: the face-sweep and
        parallel paths dispatch by name, so an unknown function would
        silently compute with the stale flux.  Raise instead.
        """
        for key, fn in SOLVERS.items():
            if fn is self.riemann:
                return key
        raise ValueError(
            f"solver.riemann was replaced with {self.riemann!r}, which is "
            "not a registered Riemann solver; the face-sweep and parallel "
            "paths dispatch by SOLVERS name -- register the function in "
            "repro.engine.riemann.SOLVERS or run with face_sweep=False, "
            "num_workers=1"
        )

    def _worker_backend(self) -> str:
        """Backend *name* forwarded to worker processes.

        Executor instances hold process-local state (compiled programs,
        scratch arenas) and cannot be shipped across processes, so
        workers re-resolve the backend by name; a custom executor whose
        name is not a registered backend degrades to ``"numpy"``.

        Always a **concrete** name (never ``"auto"``): the solver
        resolved its own backend -- including the ``REPRO_BACKEND``
        environment override -- exactly once at construction, and the
        workers inherit that decision.  Shipping the raw request
        instead would make each worker re-read the environment at
        spawn time, silently overriding the solver's recorded
        :attr:`backend` when the env changed mid-process (e.g. between
        service jobs).
        """
        resolvable = BACKEND_NAMES + ("generated",)
        request = self.backend_requested
        if isinstance(request, Executor):
            return request.name if request.name in resolvable else "numpy"
        return self.backend if self.backend in resolvable else "numpy"

    def _ensure_pool(self):
        """Spawn the persistent worker pool on first use."""
        if self._pool is None:
            from repro.parallel.pool import ShardWorkerPool

            self.riemann_name = self._resolve_riemann_name()
            self._pool = ShardWorkerPool(
                self.shard_plan,
                self._shared,
                pde=self.pde,
                order=self.spec.order,
                variant=self.variant,
                arch=self.spec.arch,
                quadrature=self.spec.quadrature,
                riemann=self.riemann_name,
                boundary=self.boundary,
                batch_size=self.batch_size,
                start_method=self._start_method,
                face_sweep=self.face_sweep,
                on_worker_failure=self.on_worker_failure,
                backend=self._worker_backend(),
                stepping=self.stepping,
                graph=self._dependency_graph,
                fuse=self.fuse,
            )
        return self._pool

    def _source_payload(self, t: float | None = None) -> dict:
        """Per-element point-source data for a step starting at ``t``.

        Mirrors :meth:`_element_source` exactly: *every* source
        registered in an element contributes one ``(projection,
        amplitude, derivatives)`` triple (the worker sums co-located
        triples just like the serial path); derivatives are evaluated
        at ``t`` (default: the current time -- the pipelined async
        hint evaluates them at the *next* step's start time).
        """
        t = self.t if t is None else t
        payload: dict[int, list[tuple]] = {}
        for element, projection, amplitude, source in self.sources:
            derivs = source.wavelet.derivatives(t, self.spec.order)
            payload.setdefault(element, []).append(
                (projection, amplitude, derivs)
            )
        return payload

    def _step_parallel(self, dt: float, next_hint=None) -> float:
        """One predictor/corrector step through the worker pool."""
        pool = self._ensure_pool()
        self.last_step_timings = pool.step(
            self._cur, dt, self._source_payload(), next_hint=next_hint
        )
        self._cur = 1 - self._cur
        self.states = self._buffers[self._cur]
        return dt

    def _degrade_to_serial(self, crash) -> None:
        """Tear down the failed pool and continue in-process.

        The ``on_worker_failure="serial"`` recovery: the input state
        buffer is intact (the crashed step never committed -- the
        output buffer swap happens only after a successful barrier), so
        the solver detaches a private copy of it, releases the pool and
        shared memory, and reruns the interrupted step serially.
        """
        self.last_failure = crash
        self._fallback_events = (
            dict(self._pool.last_step_events) if self._pool is not None else {}
        )
        self._teardown_parallel()

    def _teardown_parallel(self) -> None:
        """Release the pool and shared memory, detaching the states."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        if self._shared is not None:
            self.states = np.array(self.states)  # detach from shm
            self._shared.close()
            self._shared = None
            self._buffers = None
            self._cur = 0
            self.num_workers = 1

    def close(self) -> None:
        """Shut down the worker pool and release shared memory (idempotent).

        After closing, the solver still holds a private copy of the
        final states, so diagnostics keep working; :meth:`step` raises
        a clear error instead of touching released buffers.
        """
        self._teardown_parallel()
        self._closed = True

    def __enter__(self) -> "ADERDGSolver":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def step(self, dt: float | None = None) -> float:
        """Advance the full mesh by one time step; returns the dt used.

        Appends one :class:`~repro.parallel.telemetry.StepRecord` to
        :attr:`step_records` (phase walls, per-worker busy times and
        the pool's retry/respawn/crash counters).
        """
        if self._closed:
            raise RuntimeError(
                "solver is closed; its buffers are released -- build a new "
                "solver to continue stepping"
            )
        dt = self.stable_dt() if dt is None else float(dt)
        wall_start = time.perf_counter()
        mode = "serial"
        if self.num_workers > 1:
            from repro.parallel.pool import WorkerCrashError

            mode = "parallel"
            next_hint, self._next_hint = self._next_hint, None
            try:
                self._step_parallel(dt, next_hint)
            except WorkerCrashError as crash:
                if self.on_worker_failure != "serial":
                    raise
                mode = "serial-fallback"
                self._degrade_to_serial(crash)
                if self.face_sweep:
                    self._step_serial_sweep(dt)
                else:
                    self._step_serial_legacy(dt)
        elif self.face_sweep and self._fuse_enabled():
            self._step_serial_fused(dt)
        elif self.face_sweep:
            self._step_serial_sweep(dt)
        else:
            self._step_serial_legacy(dt)
        wall = time.perf_counter() - wall_start
        self.t += dt
        self.step_count += 1
        record = StepRecord(
            step=self.step_count - 1,
            t=self.t,
            dt=dt,
            mode=mode,
            wall=wall,
            phase_walls=self._phase_walls(),
            worker_busy=self._worker_busy(),
            backend=self.backend,
            stepping=self.stepping if mode == "parallel" else "serial",
            worker_wait=self._worker_wait(),
            worker_publish=self._worker_publish(),
        )
        record.compile_s = record.phase_walls.get("compile", 0.0)
        record.fused = "fused" in record.phase_walls
        stats = self.executor.stats
        packs = (stats.pack_calls, stats.unpack_calls)
        record.pack_calls = packs[0] - self._pack_seen[0]
        record.unpack_calls = packs[1] - self._pack_seen[1]
        self._pack_seen = packs
        record.pack_bytes_avoided = stats.pack_bytes_avoided
        events = None
        if mode == "parallel" and self._pool is not None:
            events = self._pool.last_step_events
        elif mode == "serial-fallback":
            events = self._fallback_events
        if events:
            record.retries = events.get("retries", 0)
            record.respawns = events.get("respawns", 0)
            record.crashes = list(events.get("crashes", []))
            record.queue_depth = events.get("queue_depth", 0)
        self.step_records.append(record)
        for listener in self._step_listeners:
            listener(record)
        for receiver in self.receivers:
            receiver.record(self.t, self._receiver_state(receiver.element))
        return dt

    def _receiver_state(self, element: int) -> np.ndarray:
        """Post-step state of one element for receiver sampling.

        With a resident stack this is row-level egress
        (:meth:`~repro.core.layouts.ResidentBlockState.peek_element`):
        one row unpacks instead of the whole stack, so receivers do not
        re-introduce per-step full pack/unpack traffic.
        """
        if self._resident is not None and not self._resident.canonical_valid:
            return self._resident.peek_element(element)
        return self._states[element]

    def _phase_walls(self) -> dict:
        """Per-phase seconds of the last step as a plain dict."""
        timings = self.last_step_timings
        if timings is None:
            return {}
        if isinstance(timings, dict):
            return dict(timings)
        return timings.phase_walls()

    def _worker_busy(self) -> dict:
        """Per-worker busy seconds of the last step ({} when serial)."""
        timings = self.last_step_timings
        if timings is None or isinstance(timings, dict):
            return {}
        return timings.busy()

    def _worker_wait(self) -> dict:
        """Per-worker synchronization-wait seconds ({} when serial)."""
        timings = self.last_step_timings
        if timings is None or isinstance(timings, dict) or not timings.wait:
            return {}
        return dict(timings.wait)

    def _worker_publish(self) -> dict:
        """Per-worker mailbox-publish seconds ({} unless async)."""
        timings = self.last_step_timings
        if timings is None or isinstance(timings, dict) or not timings.publish:
            return {}
        return dict(timings.publish)

    def _ensure_sweep(self) -> FaceSweep:
        """Build the face-sweep engine and its buffers on first use."""
        if self._sweep is None:
            grid, n, m = self.grid, self.spec.order, self.pde.nquantities
            # honor a post-construction `solver.riemann = ...` override
            # (the stability tests swap the flux function directly);
            # an unregistered function raises rather than silently
            # sweeping with the stale riemann_name
            self.riemann_name = self._resolve_riemann_name()
            self._sweep = FaceSweep(
                grid,
                self.pde,
                n,
                riemann=self.riemann_name,
                boundary=self.boundary,
                executor=self.executor,
            )
            self._qface_all = np.zeros((grid.n_elements, 3, 2, n, n, m))
            self._vavg_all = np.zeros((grid.n_elements, n, n, n, m))
            self._arena = (
                self.batched.arena if self.batched is not None else ScratchArena()
            )
        return self._sweep

    def _fuse_enabled(self) -> bool:
        """Whether serial steps should try the fused whole-step path."""
        if self.fuse is False or self._fuse_failed or not self.face_sweep:
            return False
        if self.fuse == "auto":
            return self.executor.is_compiled
        return True

    def _ensure_fused(self):
        """Build the fused pipeline + resident state on first use.

        The resident stack uses the canonical-blocked AoS layout
        (``vector_doubles=1``): the generated kernels index canonical
        ``(N, N, N, m)`` rows directly, so with zero lane padding the
        stack row *is* the kernel input and ingest is a single ordered
        copy (see :class:`~repro.core.layouts.ResidentBlockState`).
        """
        if self._fused is None:
            from repro.codegen.fusedstep import FusedPipeline
            from repro.core.layouts import Layout, ResidentBlockState, TensorLayout

            sweep = self._ensure_sweep()
            n, m = self.spec.order, self.pde.nquantities
            bsz = self.batch_size or 8
            elements = np.ascontiguousarray(self.traversal, dtype=np.int64)
            layout = TensorLayout(Layout.AOS, (n, n, n), m, vector_doubles=1)
            self._resident = ResidentBlockState(layout, elements, bsz)
            self._qidx = np.arange(elements.size, dtype=np.int64)
            self._fused = FusedPipeline(
                executor=self.executor,
                sweep=sweep,
                variant=self.variant,
                spec=self.spec,
                pde=self.pde,
                h=self.grid.h,
                boundary=self.boundary,
                elements=elements,
                qface=self._qface_all,
                block_size=bsz,
                n_elements=self.grid.n_elements,
            )
        return self._fused

    def _step_serial_fused(self, dt: float) -> None:
        """One whole step inside the fused compiled program.

        Ingests the canonical states into the resident stack (a no-op
        on the steady path), runs the generated ``fused_step`` kernel
        and leaves the result block-resident -- ``qface``, the face
        planes, the fluxes and ``vavg`` never surface to NumPy.  When
        the backend has no fused program for this PDE the step degrades
        to the three-phase sweep path once and stays there.
        """
        pipeline = self._ensure_fused()
        sources = {
            int(element): self._element_source(int(element), dt)
            for element, _, _, _ in self.sources
        }
        self._resident.sync_resident(self._states)
        detail = self.executor.step_block(
            pipeline, "step",
            q=self._resident.stack, qidx=self._qidx,
            dt=dt, sources=sources, states=self._states,
        )
        if detail is None:
            # no fused program (unsupported PDE / compile failure):
            # the canonical array is still the truth -- drop the
            # speculative ingest and run phase-wise from now on
            self._fuse_failed = True
            self.executor.stats.note_phase_step()
            self._resident.invalidate_resident()
            self._step_serial_sweep(dt)
            return
        self._resident.mark_stepped()
        stats = self.executor.stats
        stats.note_fused_step()
        stats.note_resident_traffic(self._resident)
        self.last_step_timings = dict(detail)
        compile_s = stats.drain_compile_s()
        if compile_s > 0.0:
            self.last_step_timings["compile"] = compile_s

    def _step_serial_sweep(self, dt: float) -> None:
        """One step through the vectorized face-sweep engine."""
        grid, pde, h = self.grid, self.pde, self.grid.h
        n, m = self.spec.order, pde.nquantities
        sweep = self._ensure_sweep()

        # 1. predictor, writing straight into the sweep buffers
        t0 = time.perf_counter()
        if self.batched is not None:
            savg_map = self.batched.predictor_sweep(
                self.states, dt, h,
                self.traversal,
                qface_out=self._qface_all,
                vavg_out=self._vavg_all,
                source_fn=lambda e: self._element_source(e, dt),
            )
        else:
            savg_map = {}
            for pos, e in enumerate(self.traversal):
                result = self.kernel.predictor(
                    self.states[e], dt, h, source=self._element_source(e, dt)
                )
                for d in range(3):
                    for side in (0, 1):
                        self._qface_all[e, d, side] = result.qface[(d, side)]
                self._vavg_all[pos] = result.vavg_total
                if result.savg is not None:
                    savg_map[int(e)] = result.savg

        # 2. one Riemann sweep per direction over the packed face planes
        t1 = time.perf_counter()
        sweep.sweep(self.states, self._qface_all)

        # 3. corrector over whole element blocks
        t2 = time.perf_counter()
        block = self.batch_size or grid.n_elements
        fstar = self._arena.get("fstar_block", (block, 3, 2, n, n, m))
        qnew = self._arena.get("corrector_out", (block, n, n, n, m))
        efp = sweep.element_face_params
        traversal = self.traversal
        for start in range(0, len(traversal), block):
            chunk = np.asarray(traversal[start : start + block], dtype=np.int64)
            b = chunk.size
            sweep.gather_fstar(chunk, fstar[:b])
            savg_rows = {
                i: savg_map[int(e)]
                for i, e in enumerate(chunk)
                if int(e) in savg_map
            }
            self.executor.corrector_block(
                self.states[chunk],
                self._vavg_all[start : start + b],
                savg_rows,
                self._qface_all[chunk],
                fstar[:b],
                None if efp is None else efp[chunk],
                h,
                pde,
                self.ops,
                out=qnew[:b],
                arena=self._arena,
            )
            self.states[chunk] = qnew[:b]
        t3 = time.perf_counter()
        self.last_step_timings = {
            "predict": t1 - t0,
            "riemann": t2 - t1,
            "correct": t3 - t2,
        }
        # surface *new* compilation work (first step of a compiled
        # backend); the numpy executor never accrues compile time, so
        # the timing dict keeps its three-key shape on the seed path
        compile_s = self.executor.stats.drain_compile_s()
        if compile_s > 0.0:
            self.last_step_timings["compile"] = compile_s

    def _step_serial_legacy(self, dt: float) -> None:
        """One step through the per-face / per-element reference loops."""
        grid, pde, h = self.grid, self.pde, self.grid.h

        # 1. predictor on every element (Peano traversal order)
        t0 = time.perf_counter()
        if self.batched is not None:
            results = self.batched.predictor_all(
                self.states, dt, h,
                order=self.traversal,
                source_fn=lambda e: self._element_source(e, dt),
            )
        else:
            results = [None] * grid.n_elements
            for e in self.traversal:
                results[e] = self.kernel.predictor(
                    self.states[e], dt, h, source=self._element_source(e, dt)
                )

        # 2. Riemann solve per face (shared between the two sides)
        t1 = time.perf_counter()
        fluxes: dict[tuple[int, int, int], np.ndarray] = {}
        for e in range(grid.n_elements):
            for d in range(3):
                neighbor = grid.neighbor(e, d, 1)
                q_left = results[e].qface[(d, 1)]
                params_left = _face_params(self.states[e], d, 1, pde)
                if neighbor == BOUNDARY:
                    q_right = ghost_state(self.boundary, pde, q_left, d, 1)
                    params_right = params_left
                else:
                    q_right = results[neighbor].qface[(d, 0)]
                    params_right = _face_params(self.states[neighbor], d, 0, pde)
                fluxes[(e, d, 1)] = self.riemann(
                    pde, q_left, q_right, params_left, params_right, d
                )
                if neighbor != BOUNDARY:
                    fluxes[(neighbor, d, 0)] = fluxes[(e, d, 1)]
            for d in range(3):
                if (e, d, 0) in fluxes:
                    continue
                neighbor = grid.neighbor(e, d, 0)
                q_right = results[e].qface[(d, 0)]
                params_right = _face_params(self.states[e], d, 0, pde)
                if neighbor == BOUNDARY:
                    q_left = ghost_state(self.boundary, pde, q_right, d, 0)
                    params_left = params_right
                    fluxes[(e, d, 0)] = self.riemann(
                        pde, q_left, q_right, params_left, params_right, d
                    )
                # periodic/interior faces are filled when their left
                # element is visited; with periodic wrap every face has
                # a left element, so nothing else to do here.

        # 3. corrector on every element
        t2 = time.perf_counter()
        for e in self.traversal:
            numerical = {
                (d, side): fluxes[(e, d, side)] for d in range(3) for side in (0, 1)
            }
            self.states[e] = corrector_update(
                self.states[e], results[e], numerical, h, pde, self.ops
            )
        t3 = time.perf_counter()
        self.last_step_timings = {
            "predict": t1 - t0,
            "riemann": t2 - t1,
            "correct": t3 - t2,
        }

    def run(self, t_end: float, max_steps: int = 100000) -> None:
        """Advance until ``t_end`` (last step clipped to land exactly).

        Under ``stepping="async"`` each step also forwards a
        speculation hint -- the next step's ``(dt, sources)``,
        recomputed here exactly as the next loop iteration will --
        so the pool pipelines step ``k+1``'s predictor behind step
        ``k``'s corrector (:meth:`_pipeline_hint`).
        """
        while self.t < t_end - 1e-14 and self.step_count < max_steps:
            dt = min(self.stable_dt(), t_end - self.t)
            self._next_hint = self._pipeline_hint(dt, t_end, max_steps)
            self.step(dt)
        self._next_hint = None

    def _pipeline_hint(self, dt: float, t_end: float, max_steps: int):
        """The next step's ``(dt, sources)`` -- or ``None`` if unsafe.

        Only produced when the prediction is *exact*: async parallel
        mode, a static wave speed (so ``stable_dt`` is a cached
        constant and the next dt is bitwise reproducible), and a next
        step that actually happens.  The pool discards a hint whose
        arguments end up differing, so a ``None`` here costs only the
        lost overlap, never correctness.
        """
        if (
            self.num_workers <= 1
            or self.stepping != "async"
            or not getattr(self.pde, "wave_speed_is_static", False)
        ):
            return None
        t_next = self.t + dt
        if self.step_count + 1 >= max_steps or t_next >= t_end - 1e-14:
            return None
        dt_next = min(self.stable_dt(), t_end - t_next)
        return (dt_next, self._source_payload(t_next))

    # -- diagnostics ---------------------------------------------------------------

    def integrate(self) -> np.ndarray:
        """Discrete integral of every quantity over the domain, ``(m,)``."""
        w = self.ops.weights
        w3 = np.einsum("k,j,i->kji", w, w, w) * self.grid.h**3
        return np.einsum("kji,ekjis->s", w3, self.states)

    def max_abs(self) -> float:
        """Largest absolute evolved-variable value (stability monitor)."""
        return float(np.abs(self.states[..., : self.pde.nvar]).max())
