"""The ADER-DG solver: one-step predictor-corrector time stepping.

Orchestrates, per time step (paper Sec. II-A):

1. the element-local **Space-Time Predictor** (any of the four kernel
   variants -- the choice is a constructor flag, exactly like the
   opt-in specification-file flags of the paper),
2. the **Riemann solves** on all faces, using the time-integrated face
   states both sides projected in step 1, and
3. the element-local **corrector** (eq. 5).

Elements are traversed in Peano space-filling-curve order, mirroring
the Peano framework underneath ExaHyPE.
"""

from __future__ import annotations

import numpy as np

from repro.basis.operators import cached_operators
from repro.core.corrector import _face_params, corrector_update
from repro.core.spec import KernelSpec
from repro.core.variants import BatchedSTP, ElementSource, make_kernel
from repro.engine.boundary import ghost_state
from repro.engine.cfl import global_timestep
from repro.engine.riemann import SOLVERS
from repro.engine.source import PointSource
from repro.mesh.grid import BOUNDARY, UniformGrid
from repro.mesh.sfc import peano_order
from repro.pde.base import LinearPDE

__all__ = ["ADERDGSolver"]


class ADERDGSolver:
    """Linear ADER-DG solver on a uniform hexahedral grid."""

    def __init__(
        self,
        grid: UniformGrid,
        pde: LinearPDE,
        order: int,
        variant: str = "splitck",
        arch: str = "skx",
        riemann: str = "rusanov",
        boundary: str = "absorbing",
        cfl: float = 0.5,
        quadrature: str = "gauss_legendre",
        batch_size: int | None = None,
    ):
        self.grid = grid
        self.pde = pde
        self.spec = KernelSpec(
            order=order,
            nvar=pde.nvar,
            nparam=pde.nparam,
            arch=arch,
            quadrature=quadrature,
        )
        self.kernel = make_kernel(variant, self.spec, pde)
        # Optional batched execution: fuse the predictor over element
        # blocks of this size (None keeps the per-element loop).
        self.batched = (
            None
            if batch_size is None
            else BatchedSTP(variant, self.spec, pde, batch_size=batch_size)
        )
        self.ops = cached_operators(order, quadrature)
        self.riemann = SOLVERS[riemann]
        self.boundary = boundary
        self.cfl = cfl
        n, m = order, pde.nquantities
        self.states = np.zeros((grid.n_elements, n, n, n, m))
        self.traversal = peano_order(grid.shape)
        self.t = 0.0
        self.step_count = 0
        self.sources: list[tuple[int, np.ndarray, np.ndarray, PointSource]] = []
        self.receivers = []

    # -- setup ----------------------------------------------------------------

    def set_initial_condition(self, fn) -> None:
        """``fn(points) -> (..., m)`` evaluated at all node coordinates."""
        for e in range(self.grid.n_elements):
            pts = self.grid.node_coordinates(e, self.ops)
            self.states[e] = fn(pts)

    def add_point_source(self, source: PointSource) -> None:
        """Register a point source (element-located, projection precomputed)."""
        element, ref = self.grid.locate(source.position)
        # Physical Dirac: the reference projection scales with 1/h^3.
        projection = self.ops.source_projection(ref[::-1]) / self.grid.h**3
        amplitude = source.element_amplitude(self.pde.nquantities)
        self.sources.append((element, projection, amplitude, source))

    def add_receiver(self, receiver) -> None:
        receiver.bind(self.grid, self.ops)
        self.receivers.append(receiver)

    # -- stepping ---------------------------------------------------------------

    def stable_dt(self) -> float:
        return global_timestep(
            self.states, self.pde, self.grid.h, self.spec.order, self.cfl
        )

    def _element_source(self, e: int, dt: float) -> ElementSource | None:
        del dt
        for element, projection, amplitude, source in self.sources:
            if element == e:
                derivs = source.wavelet.derivatives(self.t, self.spec.order)
                return ElementSource(projection, amplitude, derivs)
        return None

    def step(self, dt: float | None = None) -> float:
        """Advance the full mesh by one time step; returns the dt used."""
        dt = self.stable_dt() if dt is None else float(dt)
        grid, pde, h = self.grid, self.pde, self.grid.h
        nvar = pde.nvar

        # 1. predictor on every element (Peano traversal order)
        if self.batched is not None:
            results = self.batched.predictor_all(
                self.states, dt, h,
                order=self.traversal,
                source_fn=lambda e: self._element_source(e, dt),
            )
        else:
            results = [None] * grid.n_elements
            for e in self.traversal:
                results[e] = self.kernel.predictor(
                    self.states[e], dt, h, source=self._element_source(e, dt)
                )

        # 2. Riemann solve per face (shared between the two sides)
        fluxes: dict[tuple[int, int, int], np.ndarray] = {}
        for e in range(grid.n_elements):
            for d in range(3):
                neighbor = grid.neighbor(e, d, 1)
                q_left = results[e].qface[(d, 1)]
                params_left = _face_params(self.states[e], d, 1, pde)
                if neighbor == BOUNDARY:
                    q_right = ghost_state(self.boundary, pde, q_left, d, 1)
                    params_right = params_left
                else:
                    q_right = results[neighbor].qface[(d, 0)]
                    params_right = _face_params(self.states[neighbor], d, 0, pde)
                fluxes[(e, d, 1)] = self.riemann(
                    pde, q_left, q_right, params_left, params_right, d
                )
                if neighbor != BOUNDARY:
                    fluxes[(neighbor, d, 0)] = fluxes[(e, d, 1)]
            for d in range(3):
                if (e, d, 0) in fluxes:
                    continue
                neighbor = grid.neighbor(e, d, 0)
                q_right = results[e].qface[(d, 0)]
                params_right = _face_params(self.states[e], d, 0, pde)
                if neighbor == BOUNDARY:
                    q_left = ghost_state(self.boundary, pde, q_right, d, 0)
                    params_left = params_right
                    fluxes[(e, d, 0)] = self.riemann(
                        pde, q_left, q_right, params_left, params_right, d
                    )
                # periodic/interior faces are filled when their left
                # element is visited; with periodic wrap every face has
                # a left element, so nothing else to do here.

        # 3. corrector on every element
        for e in self.traversal:
            numerical = {
                (d, side): fluxes[(e, d, side)] for d in range(3) for side in (0, 1)
            }
            self.states[e] = corrector_update(
                self.states[e], results[e], numerical, h, pde, self.ops
            )

        self.t += dt
        self.step_count += 1
        for receiver in self.receivers:
            receiver.record(self.t, self.states[receiver.element])
        return dt

    def run(self, t_end: float, max_steps: int = 100000) -> None:
        """Advance until ``t_end`` (last step clipped to land exactly)."""
        while self.t < t_end - 1e-14 and self.step_count < max_steps:
            dt = min(self.stable_dt(), t_end - self.t)
            self.step(dt)

    # -- diagnostics ---------------------------------------------------------------

    def integrate(self) -> np.ndarray:
        """Discrete integral of every quantity over the domain, ``(m,)``."""
        w = self.ops.weights
        w3 = np.einsum("k,j,i->kji", w, w, w) * self.grid.h**3
        return np.einsum("kji,ekjis->s", w3, self.states)

    def max_abs(self) -> float:
        """Largest absolute evolved-variable value (stability monitor)."""
        return float(np.abs(self.states[..., : self.pde.nvar]).max())
