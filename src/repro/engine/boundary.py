"""Boundary conditions for non-periodic faces.

A boundary condition supplies the *ghost state* the Riemann solver sees
on the outside of a physical boundary face:

* ``absorbing`` -- copy the interior state (first-order outflow: the
  upwind flux then transports everything outward).
* ``reflective`` -- the PDE's mirror state (rigid wall / free surface,
  via :meth:`repro.pde.base.LinearPDE.reflect`).
"""

from __future__ import annotations

import numpy as np

from repro.pde.base import LinearPDE

__all__ = ["ghost_state", "BOUNDARY_CONDITIONS"]


def _absorbing(pde: LinearPDE, qface: np.ndarray, d: int, side: int) -> np.ndarray:
    del pde, d, side
    return qface.copy()


def _reflective(pde: LinearPDE, qface: np.ndarray, d: int, side: int) -> np.ndarray:
    del side
    return pde.reflect(qface, d)


BOUNDARY_CONDITIONS = {
    "absorbing": _absorbing,
    "reflective": _reflective,
}


def ghost_state(
    kind: str, pde: LinearPDE, qface: np.ndarray, d: int, side: int
) -> np.ndarray:
    """Ghost face state for boundary condition ``kind``."""
    try:
        bc = BOUNDARY_CONDITIONS[kind]
    except KeyError:
        raise ValueError(
            f"unknown boundary condition {kind!r}; "
            f"available: {sorted(BOUNDARY_CONDITIONS)}"
        ) from None
    return bc(pde, qface, d, side)
