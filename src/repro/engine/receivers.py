"""Receivers: record time series of the solution at fixed points.

The LOH1 benchmark's deliverable is seismograms -- velocity time
series at surface receivers.  A :class:`Receiver` interpolates the
nodal DG solution at an arbitrary point with the tensor-product
Lagrange basis each time it is sampled.
"""

from __future__ import annotations

import numpy as np

from repro.basis.operators import DGOperators

__all__ = ["Receiver"]


class Receiver:
    """Samples the solution at one physical point over time."""

    def __init__(self, position, label: str = ""):
        self.position = np.asarray(position, dtype=float)
        self.label = label or f"recv@{self.position}"
        self.times: list[float] = []
        self.samples: list[np.ndarray] = []
        self._element: int | None = None
        self._weights: np.ndarray | None = None

    def bind(self, grid, ops: DGOperators) -> None:
        """Locate the receiver in the grid and precompute basis weights."""
        self._element, ref = grid.locate(self.position)
        phi = [ops.basis.evaluate(float(ref[d]))[0] for d in range(3)]
        # weights over (z, y, x) nodes: w[k3, k2, k1] = phi_z phi_y phi_x
        self._weights = np.einsum("k,j,i->kji", phi[2], phi[1], phi[0])

    @property
    def element(self) -> int:
        """Index of the grid element containing this receiver."""
        if self._element is None:
            raise RuntimeError("receiver not bound to a grid yet")
        return self._element

    def record(self, t: float, element_state: np.ndarray) -> None:
        """Sample from the owning element's canonical ``(N, N, N, m)`` state."""
        if self._weights is None:
            raise RuntimeError("receiver not bound to a grid yet")
        value = np.tensordot(self._weights, element_state, axes=([0, 1, 2], [0, 1, 2]))
        self.times.append(float(t))
        self.samples.append(value)

    def seismogram(self) -> tuple[np.ndarray, np.ndarray]:
        """``(times, samples)`` arrays; samples shape ``(nt, m)``."""
        return np.asarray(self.times), np.asarray(self.samples)
