"""Vectorized face-sweep execution of the Riemann phase.

The legacy solver walks a Python ``dict[(element, d, side)]`` and
calls the Riemann solver once per face -- thousands of tiny NumPy
invocations per step.  This module applies the paper's batching idea
(Sec. III-V: turn per-entity loops into wide array sweeps) to the face
phase, the way whole-field DG codes (hedge, dolfin_dg) assemble their
face terms:

* **connectivity once** -- :func:`direction_faces` enumerates, per PDE
  direction, every face as a row of contiguous index arrays (left
  element, right element, ghost masks, per-element face ids), handling
  periodic wrap, physical boundaries and shard subsets;
* **face planes** -- :class:`FaceSweep` gathers all ``qface`` traces of
  one direction into packed ``(n_faces, N, N, m)`` buffers, fills the
  ghost sides through the boundary condition, and issues **one**
  Riemann call per direction (the flux kernels broadcast over the
  leading face axis bitwise-identically to per-face calls);
* **static parameters cached** -- material face parameters never change
  during a run, so they are gathered once
  (:meth:`FaceSweep.bind_parameters`) instead of re-sliced per face per
  step.

Interior faces are owned by their *left* (low-coordinate) element;
with periodic wrap every interior face has a unique left element, so
each face is enumerated and solved exactly once.  Shard subsets keep
cross-shard faces in the plane (solved redundantly on both owning
shards from identical shared inputs), preserving the parallel solver's
bitwise-identical-to-serial guarantee.

Under the async stepping mode a sweep instead *exchanges* cross-shard
fluxes: constructed with a :class:`~repro.parallel.stepping.
FaceExchangeSpec`, the face planes are reordered so the rows this
shard must solve form a contiguous prefix, the Riemann call runs on
that prefix only, and the cut-face fluxes travel through a shared
mailbox array (:meth:`FaceSweep.export_fluxes` on the canonical owner,
:meth:`FaceSweep.import_fluxes` on the neighbor) instead of being
re-solved redundantly.  See ``docs/stepping.md``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.corrector import element_face_params
from repro.engine.boundary import ghost_state
from repro.engine.riemann import SWEEP_SOLVERS
from repro.mesh.grid import BOUNDARY, UniformGrid
from repro.pde.base import LinearPDE

__all__ = [
    "DirectionFaces",
    "direction_faces",
    "FaceSweep",
    "record_face_sweep_ops",
    "face_sweep_plan",
]


@dataclass(frozen=True)
class DirectionFaces:
    """Face connectivity of one PDE direction as flat index arrays.

    Every face is one row of the packed face plane.  ``left`` /
    ``right`` hold the adjacent element ids (``-1`` marks a ghost side
    at a physical boundary -- never both sides at once).  ``lo_face`` /
    ``hi_face`` map an element id to the plane row of its low / high
    face (``-1`` for elements outside the enumerated subset).  The
    remaining arrays are the precomputed gather/scatter index lists the
    sweep uses every step.
    """

    d: int
    left: np.ndarray  # (F,) element left of each face, -1 = ghost
    right: np.ndarray  # (F,) element right of each face, -1 = ghost
    lo_face: np.ndarray  # (E,) plane row of each element's low face
    hi_face: np.ndarray  # (E,) plane row of each element's high face
    interior_left: np.ndarray  # rows with a real left element
    interior_right: np.ndarray  # rows with a real right element
    ghost_left: np.ndarray  # rows whose left side is a boundary ghost
    ghost_right: np.ndarray  # rows whose right side is a boundary ghost

    @property
    def n_faces(self) -> int:
        """Number of faces in the plane."""
        return int(self.left.shape[0])


def direction_faces(
    grid: UniformGrid, d: int, elements=None
) -> DirectionFaces:
    """Enumerate the faces of direction ``d`` touching ``elements``.

    ``elements`` defaults to the whole grid.  Interior faces are keyed
    by their left element, so a face shared by two listed elements
    appears exactly once; a periodic 1-element direction degenerates to
    ``lo_face[e] == hi_face[e]``, matching the legacy loop's shared
    flux.  For shard subsets the plane also contains the cross-shard
    faces of the listed elements (their outside neighbor is recorded
    even when it is not in ``elements``).
    """
    if elements is None:
        elements = range(grid.n_elements)
    face_of: dict[tuple, int] = {}
    left_list: list[int] = []
    right_list: list[int] = []
    lo_face = np.full(grid.n_elements, -1, dtype=np.int64)
    hi_face = np.full(grid.n_elements, -1, dtype=np.int64)

    def add(key: tuple, left: int, right: int) -> int:
        row = face_of.get(key)
        if row is None:
            row = len(left_list)
            face_of[key] = row
            left_list.append(left)
            right_list.append(right)
        return row

    for e in elements:
        e = int(e)
        neighbor = grid.neighbor(e, d, 1)
        if neighbor == BOUNDARY:
            hi_face[e] = add(("hi", e), e, -1)
        else:
            hi_face[e] = add(("in", e), e, neighbor)
        neighbor = grid.neighbor(e, d, 0)
        if neighbor == BOUNDARY:
            lo_face[e] = add(("lo", e), -1, e)
        else:
            # the low neighbor is this face's left element
            lo_face[e] = add(("in", neighbor), neighbor, e)

    left = np.asarray(left_list, dtype=np.int64)
    right = np.asarray(right_list, dtype=np.int64)
    return DirectionFaces(
        d=d,
        left=left,
        right=right,
        lo_face=lo_face,
        hi_face=hi_face,
        interior_left=np.nonzero(left >= 0)[0],
        interior_right=np.nonzero(right >= 0)[0],
        ghost_left=np.nonzero(left < 0)[0],
        ghost_right=np.nonzero(right < 0)[0],
    )


def _reorder_faces(df: DirectionFaces, perm: np.ndarray) -> DirectionFaces:
    """Permute the rows of a face plane (``perm[new_row] = old_row``).

    Every row-valued index array (``lo_face`` / ``hi_face`` and the
    interior/ghost row lists) is remapped through the inverse
    permutation so the reordered plane is self-consistent.
    """
    inverse = np.empty_like(perm)
    inverse[perm] = np.arange(perm.size, dtype=np.int64)

    def remap_rows(rows: np.ndarray) -> np.ndarray:
        return np.sort(inverse[rows])

    lo_face = df.lo_face.copy()
    mask = lo_face >= 0
    lo_face[mask] = inverse[lo_face[mask]]
    hi_face = df.hi_face.copy()
    mask = hi_face >= 0
    hi_face[mask] = inverse[hi_face[mask]]
    return DirectionFaces(
        d=df.d,
        left=df.left[perm],
        right=df.right[perm],
        lo_face=lo_face,
        hi_face=hi_face,
        interior_left=remap_rows(df.interior_left),
        interior_right=remap_rows(df.interior_right),
        ghost_left=remap_rows(df.ghost_left),
        ghost_right=remap_rows(df.ghost_right),
    )


def _partition_for_exchange(df: DirectionFaces, exchange):
    """Split one face plane into solve-prefix and import-suffix rows.

    A row is *imported* when its face is cut (both sides real, owners
    differ) and the canonical owner -- the shard of the left element --
    is not this shard; every other row (own faces, exported cut faces,
    ghost faces) is solved locally.  Returns the reordered plane plus
    the exchange index arrays::

        (faces, n_solve, export_rows, export_slots, import_slots)

    where ``export_rows`` are new-order row ids inside the solve
    prefix, and ``import_slots[i]`` is the mailbox slot feeding solve
    row ``n_solve + i``.
    """
    owner, shard, slot_of = exchange.owner, exchange.shard, exchange.slot_of
    n_faces = df.n_faces
    cut = np.zeros(n_faces, dtype=bool)
    both = np.nonzero((df.left >= 0) & (df.right >= 0))[0]
    cut[both] = owner[df.left[both]] != owner[df.right[both]]
    imported = np.zeros(n_faces, dtype=bool)
    imported[both] = cut[both] & (owner[df.left[both]] != shard)
    exported_old = np.nonzero(cut & ~imported)[0]
    perm = np.concatenate(
        [np.nonzero(~imported)[0], np.nonzero(imported)[0]]
    ).astype(np.int64)
    n_solve = int((~imported).sum())
    inverse = np.empty_like(perm)
    inverse[perm] = np.arange(perm.size, dtype=np.int64)
    export_rows = np.sort(inverse[exported_old])
    reordered = _reorder_faces(df, perm)
    export_slots = slot_of[df.d, reordered.left[export_rows]]
    import_slots = slot_of[df.d, reordered.left[n_solve:]]
    return reordered, n_solve, export_rows, export_slots, import_slots


class FaceSweep:
    """Vectorized Riemann phase over packed per-direction face planes.

    Parameters
    ----------
    grid, pde, order:
        Mesh, PDE system and scheme order ``N``.
    riemann, boundary:
        Numerical flux (:data:`~repro.engine.riemann.SWEEP_SOLVERS`)
        and boundary-condition names, as on the solver.
    elements:
        Optional element subset (a parallel shard); defaults to the
        whole grid.  The plane then contains all faces touching the
        subset, cross-shard ones included.
    executor:
        Optional :class:`~repro.codegen.executor.Executor` running the
        per-direction Riemann calls (default: the NumPy executor).
    exchange:
        Optional :class:`~repro.parallel.stepping.FaceExchangeSpec`.
        When given, cut faces whose canonical owner is another shard
        are not solved here: the planes are reordered so locally
        solved rows form a contiguous prefix, and the missing fluxes
        arrive through :meth:`import_fluxes` from the shared mailbox
        (the async stepping mode's trace exchange).
    """

    def __init__(
        self,
        grid: UniformGrid,
        pde: LinearPDE,
        order: int,
        riemann: str = "rusanov",
        boundary: str = "absorbing",
        elements=None,
        executor=None,
        exchange=None,
    ):
        self.grid = grid
        self.pde = pde
        self.order = order
        self.riemann_name = riemann
        self.riemann = SWEEP_SOLVERS[riemann]
        self.boundary = boundary
        if executor is None:
            from repro.codegen.executor import NumpyExecutor

            executor = NumpyExecutor()
        self.executor = executor
        self.faces = tuple(direction_faces(grid, d, elements) for d in range(3))
        n, m = order, pde.nquantities
        self.exchange = exchange
        self._n_solve = None
        if exchange is not None:
            faces, self._n_solve = [], []
            self._export_rows, self._export_slots = [], []
            self._import_slots = []
            self._flux_buf = []
            for df in self.faces:
                df, n_solve, rows, slots, imports = _partition_for_exchange(
                    df, exchange
                )
                faces.append(df)
                self._n_solve.append(n_solve)
                self._export_rows.append(rows)
                self._export_slots.append(slots)
                self._import_slots.append(imports)
                self._flux_buf.append(np.zeros((df.n_faces, n, n, m)))
            self.faces = tuple(faces)
        self._q_left = [np.zeros((df.n_faces, n, n, m)) for df in self.faces]
        self._q_right = [np.zeros((df.n_faces, n, n, m)) for df in self.faces]
        #: per-direction ``(n_faces, N, N, m)`` numerical fluxes of the
        #: last :meth:`sweep` call
        self.fluxes: list[np.ndarray | None] = [None, None, None]
        #: cached ``(E, 3, 2, N, N, nparam)`` face-node material
        #: parameters (``None`` until bound / for parameter-free PDEs)
        self.element_face_params: np.ndarray | None = None
        self._face_params: list | None = None

    @property
    def n_faces(self) -> int:
        """Total face count over all three directions."""
        return sum(df.n_faces for df in self.faces)

    # -- static parameter cache -------------------------------------------

    def bind_parameters(self, states: np.ndarray) -> None:
        """Gather the static material face parameters from ``states``.

        Called lazily on the first :meth:`sweep`; parameters carry no
        flux, so they stay bitwise constant over the run and the gather
        never needs repeating (until :meth:`invalidate_parameters`).
        Ghost sides copy the interior side, exactly like the legacy
        per-face path.
        """
        if self.pde.nparam == 0:
            self.element_face_params = None
            self._face_params = [(None, None)] * 3
            return
        efp = element_face_params(states, self.pde)
        self.element_face_params = efp
        n, npar = self.order, self.pde.nparam
        params = []
        for df in self.faces:
            pl = np.empty((df.n_faces, n, n, npar))
            pr = np.empty((df.n_faces, n, n, npar))
            pl[df.interior_left] = efp[df.left[df.interior_left], df.d, 1]
            pr[df.interior_right] = efp[df.right[df.interior_right], df.d, 0]
            pr[df.ghost_right] = pl[df.ghost_right]
            pl[df.ghost_left] = pr[df.ghost_left]
            params.append((pl, pr))
        self._face_params = params

    def invalidate_parameters(self) -> None:
        """Drop the parameter cache (after a new initial condition)."""
        self.element_face_params = None
        self._face_params = None

    # -- the sweep ---------------------------------------------------------

    def sweep(self, states: np.ndarray, qface_all: np.ndarray) -> None:
        """Solve every face's Riemann problem, one call per direction.

        ``qface_all`` is the global ``(E, 3, 2, N, N, m)`` trace array
        the predictor filled; ``states`` supplies the material
        parameters on first use.  Results land in :attr:`fluxes`.
        """
        if self._face_params is None:
            self.bind_parameters(states)
        pde, boundary = self.pde, self.boundary
        for df, q_left, q_right, (pl, pr) in zip(
            self.faces, self._q_left, self._q_right, self._face_params
        ):
            d = df.d
            q_left[df.interior_left] = qface_all[df.left[df.interior_left], d, 1]
            q_right[df.interior_right] = qface_all[
                df.right[df.interior_right], d, 0
            ]
            if df.ghost_right.size:
                q_right[df.ghost_right] = ghost_state(
                    boundary, pde, q_left[df.ghost_right], d, 1
                )
            if df.ghost_left.size:
                q_left[df.ghost_left] = ghost_state(
                    boundary, pde, q_right[df.ghost_left], d, 0
                )
            if self._n_solve is None:
                self.fluxes[d] = self.executor.riemann_sweep(
                    pde, self.riemann_name, q_left, q_right, pl, pr, d
                )
            else:
                # exchange mode: solve only the local prefix; the
                # import suffix is filled from the mailbox later
                k = self._n_solve[d]
                flux = self._flux_buf[d]
                flux[:k] = self.executor.riemann_sweep(
                    pde, self.riemann_name,
                    q_left[:k], q_right[:k], pl[:k], pr[:k], d,
                )
                self.fluxes[d] = flux

    def export_fluxes(self, mailbox: np.ndarray) -> None:
        """Publish this shard's cut-face fluxes into the shared mailbox.

        Writes exactly the slots whose canonical owner this shard is
        (single writer per slot); requires construction with an
        ``exchange`` spec.
        """
        if self._n_solve is None:
            raise RuntimeError("FaceSweep was built without an exchange spec")
        for d in range(3):
            rows = self._export_rows[d]
            if rows.size:
                mailbox[self._export_slots[d]] = self.fluxes[d][rows]

    def import_fluxes(self, mailbox: np.ndarray) -> None:
        """Fill the import suffix of every plane from the mailbox.

        Reads the slots exported by neighboring shards; after this the
        planes are complete and :meth:`gather_fstar` works exactly as
        in the redundant-solve mode.
        """
        if self._n_solve is None:
            raise RuntimeError("FaceSweep was built without an exchange spec")
        for d in range(3):
            k = self._n_solve[d]
            if self._import_slots[d].size:
                self.fluxes[d][k:] = mailbox[self._import_slots[d]]

    def gather_fstar(self, elements: np.ndarray, out: np.ndarray) -> None:
        """Scatter the swept fluxes back to per-element face order.

        Fills ``out`` (``(len(elements), 3, 2, N, N, m)``) with the six
        numerical fluxes of each listed element -- the corrector's
        ``F*`` input.
        """
        for d, df in enumerate(self.faces):
            flux = self.fluxes[d]
            out[:, d, 0] = flux[df.lo_face[elements]]
            out[:, d, 1] = flux[df.hi_face[elements]]


# ---------------------------------------------------------------------------
# machine-model recording
# ---------------------------------------------------------------------------


def record_face_sweep_ops(
    recorder, n: int, pde: LinearPDE, n_faces: int, n_elements: int
) -> None:
    """Record the face-sweep + block-corrector cost at grid scale.

    Mirrors :func:`repro.core.corrector.record_corrector_ops` but over
    the whole grid's packed face planes: one gather, one wide Riemann
    sweep, one scatter, then the block corrector's volume and lifting
    updates.
    """
    from repro.codegen.plan import BufferAccess
    from repro.machine.isa import FlopCounts

    m = pde.nquantities
    plane_bytes = 8.0 * n_faces * n**2 * m
    param_bytes = 8.0 * 2 * n_faces * n**2 * pde.nparam
    el_bytes = 8.0 * n_elements * n**3 * m
    recorder.phase("riemann")
    recorder.transpose("face_gather", "qface", "face_planes", 2 * plane_bytes)
    # two flux evaluations plus the penalty per face node, as in the
    # per-element corrector recording -- only the sweep width changed.
    riemann_per_node = 2 * pde.flux_flops_per_node(0) + 4 * m
    recorder.pointwise(
        "riemann_sweep",
        FlopCounts.at_width(float(n_faces) * n**2 * riemann_per_node, 64),
        (
            BufferAccess("face_planes", read_bytes=2 * plane_bytes),
            BufferAccess("face_params", read_bytes=param_bytes),
            BufferAccess("fstar_planes", write_bytes=plane_bytes),
        ),
    )
    recorder.phase("correct")
    recorder.transpose(
        "fstar_scatter", "fstar_planes", "fstar_elements", 2 * plane_bytes
    )
    recorder.pointwise(
        "corrector_volume",
        FlopCounts.at_width(2.0 * n_elements * n**3 * m, 64),
        (
            BufferAccess("Q", read_bytes=el_bytes, write_bytes=el_bytes),
            BufferAccess("vavg", read_bytes=el_bytes),
        ),
    )
    recorder.pointwise(
        "surface_lift",
        FlopCounts.at_width(6.0 * 2 * n_elements * n**3 * m, 64),
        (
            BufferAccess("fstar_elements", read_bytes=2 * plane_bytes),
            BufferAccess("Q", read_bytes=el_bytes, write_bytes=el_bytes),
        ),
    )


def face_sweep_plan(spec, pde: LinearPDE, grid: UniformGrid):
    """Recorded grid-level plan of the face-sweep Riemann + corrector."""
    from repro.codegen.plan import PlanRecorder

    rec = PlanRecorder("face_sweep", spec)
    n, m = spec.order, spec.nquantities
    n_faces = sum(direction_faces(grid, d).n_faces for d in range(3))
    n_elements = grid.n_elements
    plane_bytes = 8 * n_faces * n**2 * m
    el_bytes = 8 * n_elements * n**3 * m
    rec.buffer("qface", 8 * n_elements * 6 * n**2 * m, "input")
    rec.buffer("face_planes", 2 * plane_bytes, "temp")
    rec.buffer("face_params", 2 * 8 * n_faces * n**2 * pde.nparam, "const")
    rec.buffer("fstar_planes", plane_bytes, "temp")
    rec.buffer("fstar_elements", 8 * n_elements * 6 * n**2 * m, "temp")
    rec.buffer("vavg", el_bytes, "input")
    rec.buffer("Q", el_bytes, "output")
    record_face_sweep_ops(rec, n, pde, n_faces, n_elements)
    return rec.finish()
