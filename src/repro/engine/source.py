"""Point sources (the ``delta_x0`` term of eq. 1).

A :class:`PointSource` combines a position, a per-quantity amplitude
and a smooth wavelet.  The Cauchy-Kowalewsky predictor needs the
wavelet's *time derivatives* up to the scheme order at every step
(Fig. 1's ``derive(pointSource, dim=time, order=o)``), so wavelets
provide them analytically via the Hermite-function identity

.. math::

    \\frac{d^n}{dt^n} e^{-u^2/2}
        = (-1)^n \\sigma^{-n} He_n(u) \\, e^{-u^2/2},
    \\qquad u = (t - t_0) / \\sigma .
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.polynomial.hermite_e import hermeval

__all__ = ["GaussianDerivativeWavelet", "RickerWavelet", "PointSource"]


class GaussianDerivativeWavelet:
    """The ``k``-th time derivative of a Gaussian pulse.

    ``k = 0`` is the Gaussian itself; ``k = 2`` (negated, normalized)
    is the Ricker wavelet customary in seismology.
    """

    def __init__(self, k: int = 0, t0: float = 0.1, sigma: float = 0.025,
                 amplitude: float = 1.0):
        if k < 0:
            raise ValueError("derivative order must be non-negative")
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        self.k = k
        self.t0 = t0
        self.sigma = sigma
        self.amplitude = amplitude

    def derivatives(self, t: float, count: int) -> np.ndarray:
        """``s^(o)(t)`` for ``o = 0 .. count-1`` (including the base value)."""
        u = (t - self.t0) / self.sigma
        gauss = np.exp(-0.5 * u * u)
        out = np.empty(count)
        for o in range(count):
            n = self.k + o
            coeffs = np.zeros(n + 1)
            coeffs[n] = 1.0
            he_n = hermeval(u, coeffs)
            out[o] = self.amplitude * (-1.0 / self.sigma) ** n * he_n * gauss
        return out

    def __call__(self, t: float) -> float:
        return float(self.derivatives(t, 1)[0])


class RickerWavelet(GaussianDerivativeWavelet):
    """Ricker (Mexican-hat) wavelet: normalized negative 2nd Gaussian derivative."""

    def __init__(self, t0: float = 0.1, f0: float = 10.0, amplitude: float = 1.0):
        # peak frequency f0 relates to the Gaussian width
        sigma = 1.0 / (np.pi * f0 * np.sqrt(2.0))
        super().__init__(k=2, t0=t0, sigma=sigma, amplitude=-amplitude * sigma**2)
        self.f0 = f0


@dataclass(frozen=True)
class PointSource:
    """A Dirac point source with a smooth time signal.

    Attributes
    ----------
    position:
        Physical coordinates of the source.
    amplitude:
        Amplitude per *evolved* quantity, ``(nvar,)`` -- e.g. a stress
        glut for a seismic double-couple.
    wavelet:
        Time signal with a ``derivatives(t, count)`` method.
    """

    position: np.ndarray
    amplitude: np.ndarray
    wavelet: GaussianDerivativeWavelet

    def element_amplitude(self, nquantities: int) -> np.ndarray:
        """Amplitude embedded into the full m-vector (zero parameters)."""
        amp = np.asarray(self.amplitude, dtype=float)
        out = np.zeros(nquantities)
        out[: amp.size] = amp
        return out
