"""Linear Riemann solvers for the corrector's face integrals.

The semi-discrete scheme introduces a numerical flux ``F*`` at element
faces (paper Sec. II-A), assumed *linear* in the states -- which is
what lets the corrector work directly on time-averaged quantities
(eq. 5).  Two classical choices:

* :func:`rusanov_flux` -- local Lax-Friedrichs: cheap, slightly
  dissipative, robust across material discontinuities (used for the
  LOH1-style scenarios).
* :func:`upwind_flux` -- exact characteristic splitting
  ``F* = A+ qL + A- qR`` built from the eigendecomposition of the
  normal flux matrix; exact for constant-coefficient systems (used for
  convergence studies).

All functions operate on face arrays ``(..., m)``; parameter slots of
the returned flux are zero (parameters carry no flux).

The face-sweep engine (:mod:`repro.engine.facesweep`) calls the same
solvers over *packed face planes* ``(n_faces, N, N, m)``.  Rusanov is
purely elementwise and broadcasts as-is; the upwind solver needs one
eigendecomposition per face material, so :func:`upwind_flux_sweep`
groups the plane's faces by their (face-constant) parameter rows and
issues one stacked matmul per material group.
"""

from __future__ import annotations

import numpy as np

from repro.pde.base import LinearPDE

__all__ = [
    "rusanov_flux",
    "upwind_flux",
    "upwind_flux_sweep",
    "SOLVERS",
    "SWEEP_SOLVERS",
]


def rusanov_flux(
    pde: LinearPDE,
    q_left: np.ndarray,
    q_right: np.ndarray,
    params_left: np.ndarray,
    params_right: np.ndarray,
    d: int,
) -> np.ndarray:
    """Local Lax-Friedrichs flux in direction ``d`` (left -> right).

    ``q_left`` / ``q_right`` are time-integrated face states; the
    penalty term uses only the evolved variables -- parameters may jump
    across material interfaces but are not evolved.
    """
    nvar = pde.nvar
    ql = pde.embed(q_left[..., :nvar], params_left if pde.nparam else None)
    qr = pde.embed(q_right[..., :nvar], params_right if pde.nparam else None)
    fl = pde.flux(ql, d)
    fr = pde.flux(qr, d)
    smax = np.maximum(pde.max_wave_speed(ql), pde.max_wave_speed(qr))[..., None]
    out = 0.5 * (fl + fr)
    out[..., :nvar] -= 0.5 * smax[..., 0:1] * (
        q_right[..., :nvar] - q_left[..., :nvar]
    )
    return out


def _characteristic_matrices(
    pde: LinearPDE, params_row: np.ndarray, d: int
) -> tuple[np.ndarray, np.ndarray]:
    """``(A+, A-)`` of the normal flux matrix for one material row."""
    nvar = pde.nvar
    a = pde.flux_matrix(params_row, d)[:nvar, :nvar]
    eigvals, r = np.linalg.eig(a)
    eigvals = np.real(eigvals)
    r = np.real(r)
    r_inv = np.linalg.inv(r)
    a_plus = r @ np.diag(np.maximum(eigvals, 0.0)) @ r_inv
    a_minus = r @ np.diag(np.minimum(eigvals, 0.0)) @ r_inv
    return a_plus, a_minus


def upwind_flux(
    pde: LinearPDE,
    q_left: np.ndarray,
    q_right: np.ndarray,
    params_left: np.ndarray,
    params_right: np.ndarray,
    d: int,
) -> np.ndarray:
    """Godunov flux ``F* = A+ qL + A- qR`` from the Roe-averaged matrix.

    Exact for constant coefficients; across material jumps it uses the
    parameter average (adequate for smooth media, use Rusanov at sharp
    interfaces).
    """
    nvar = pde.nvar
    params = 0.5 * (np.asarray(params_left) + np.asarray(params_right))
    # One matrix per face (constant-per-face material).
    flat_params = params.reshape(-1, params.shape[-1]) if pde.nparam else [None]
    first = flat_params[0] if pde.nparam else np.zeros(0)
    if pde.nparam and not np.allclose(flat_params, flat_params[0]):
        raise ValueError("upwind_flux expects face-constant parameters")
    a_plus, a_minus = _characteristic_matrices(pde, first, d)
    out = np.zeros_like(q_left)
    out[..., :nvar] = (
        q_left[..., :nvar] @ a_plus.T + q_right[..., :nvar] @ a_minus.T
    )
    return out


def upwind_flux_sweep(
    pde: LinearPDE,
    q_left: np.ndarray,
    q_right: np.ndarray,
    params_left: np.ndarray | None,
    params_right: np.ndarray | None,
    d: int,
) -> np.ndarray:
    """:func:`upwind_flux` over a packed face plane, grouped by material.

    The leading axis of ``q_left`` / ``q_right`` enumerates faces; each
    face must carry node-constant parameters (same requirement as the
    per-face solver).  Faces sharing a material row share one
    eigendecomposition and one stacked matmul, so the result is
    bitwise identical to calling :func:`upwind_flux` per face.
    """
    nvar = pde.nvar
    out = np.zeros_like(q_left)
    if pde.nparam == 0:
        a_plus, a_minus = _characteristic_matrices(pde, np.zeros(0), d)
        out[..., :nvar] = (
            q_left[..., :nvar] @ a_plus.T + q_right[..., :nvar] @ a_minus.T
        )
        return out
    params = 0.5 * (np.asarray(params_left) + np.asarray(params_right))
    rows = params.reshape(params.shape[0], -1, params.shape[-1])
    if not np.allclose(rows, rows[:, :1]):
        raise ValueError("upwind_flux expects face-constant parameters")
    unique, inverse = np.unique(rows[:, 0], axis=0, return_inverse=True)
    for g in range(unique.shape[0]):
        a_plus, a_minus = _characteristic_matrices(pde, unique[g], d)
        mask = inverse == g
        out[mask, ..., :nvar] = (
            q_left[mask, ..., :nvar] @ a_plus.T
            + q_right[mask, ..., :nvar] @ a_minus.T
        )
    return out


SOLVERS = {"rusanov": rusanov_flux, "upwind": upwind_flux}

#: face-plane variants used by the sweep engine: same numerics, one
#: call per direction (rusanov broadcasts unchanged)
SWEEP_SOLVERS = {"rusanov": rusanov_flux, "upwind": upwind_flux_sweep}
