"""Linear acoustics in first-order form.

Quantities ``Q = (p, v_x, v_y, v_z)`` with

.. math::

    p_t + \\rho c^2 \\, \\nabla \\cdot v = 0, \\qquad
    v_t + \\frac{1}{\\rho} \\nabla p = 0.

Plane-wave solutions ``p = cos(k.x - c|k| t)`` make this the workhorse
for convergence studies of the full ADER-DG engine.  Material
parameters (density, sound speed) are carried per node, exercising the
parameter plumbing with a small system.
"""

from __future__ import annotations

import numpy as np

from repro.pde.base import LinearPDE

__all__ = ["AcousticPDE"]


class AcousticPDE(LinearPDE):
    """3-D linear acoustics: 4 evolved quantities + 2 material parameters."""

    name = "acoustic"
    nvar = 4
    nparam = 2  # (rho, c)

    # quantity indices
    P, VX, VY, VZ = 0, 1, 2, 3
    RHO, C = 4, 5

    def flux(self, q: np.ndarray, d: int) -> np.ndarray:
        rho = q[..., self.RHO]
        c = q[..., self.C]
        out = np.zeros_like(q)
        out[..., self.P] = rho * c * c * q[..., self.VX + d]
        out[..., self.VX + d] = q[..., self.P] / rho
        return out

    def max_wave_speed(self, q: np.ndarray) -> np.ndarray:
        return np.abs(q[..., self.C])

    def reflect(self, q: np.ndarray, d: int) -> np.ndarray:
        """Rigid wall: normal velocity flips sign, pressure even."""
        ghost = q.copy()
        ghost[..., self.VX + d] *= -1.0
        return ghost

    def flux_flops_per_node(self, d: int) -> int:
        del d
        return 4  # two multiplies for p-flux, one divide+use for v-flux

    def example_parameters(self, shape: tuple[int, ...]) -> np.ndarray:
        params = np.zeros(shape + (2,))
        params[..., self.RHO - self.nvar] = 1.0
        params[..., self.C - self.nvar] = 2.0
        return params

    @staticmethod
    def plane_wave(k: np.ndarray, rho: float, c: float):
        """Return an exact right-going plane-wave solution ``Q(x, t)``.

        ``p = cos(k.x - omega t)``, ``v = (k/|k|) p / (rho c)`` with
        ``omega = c |k|`` solves the system for homogeneous material.
        """
        k = np.asarray(k, dtype=float)
        knorm = float(np.linalg.norm(k))
        if knorm == 0.0:
            raise ValueError("wave vector must be nonzero")
        omega = c * knorm
        direction = k / knorm

        def solution(points: np.ndarray, t: float) -> np.ndarray:
            phase = points @ k - omega * t
            p = np.cos(phase)
            out = np.zeros(points.shape[:-1] + (4,))
            out[..., 0] = p
            for d in range(3):
                out[..., 1 + d] = direction[d] * p / (rho * c)
            return out

        return solution
