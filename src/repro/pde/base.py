"""Abstract interface for linear hyperbolic PDE systems.

The systems have the form (paper eq. 1)

.. math::

    Q_t + \\sum_d \\partial_d F_d(Q) + \\sum_d B_d \\, \\partial_d Q = S,

with ``F_d`` and ``B_d`` *linear* in the evolved quantities but
possibly depending on static per-node parameters (material properties,
geometry).  Each node carries ``m = nvar + nparam`` doubles: the
``nvar`` evolved quantities first, then the ``nparam`` parameters --
exactly the "m = 21 quantities at each integration point" bookkeeping
of the paper's Sec. VI.

All user functions operate on arrays whose *last* axis is the quantity
axis (canonical order), on arbitrary batch shapes.  Fluxes return
full-width ``(..., m)`` arrays with zeros in the parameter slots, so
the kernels never special-case parameters: deriving a zero flux keeps
them constant in time automatically.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["LinearPDE"]


class LinearPDE(ABC):
    """A linear hyperbolic PDE system with static per-node parameters."""

    #: number of evolved quantities
    nvar: int
    #: number of static per-node parameters stored alongside them
    nparam: int = 0
    #: whether the system has a non-conservative product term B . grad Q
    has_ncp: bool = False
    #: the Cauchy-Kowalewsky kernels require linearity in the variables;
    #: nonlinear systems (e.g. Burgers) override this and are only
    #: accepted by the Picard predictor.
    is_linear: bool = True
    #: the largest wave speed depends only on the static parameters, so
    #: a solver may scan the mesh once and cache the result; nonlinear
    #: systems whose speed depends on the evolved state override this.
    wave_speed_is_static: bool = True
    #: short identifier used in reports
    name: str = "pde"

    # -- sizes ------------------------------------------------------------

    @property
    def nquantities(self) -> int:
        """``m``: evolved quantities plus parameters per node."""
        return self.nvar + self.nparam

    def split(self, q: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Split a ``(..., m)`` array into (variables, parameters) views."""
        return q[..., : self.nvar], q[..., self.nvar :]

    def embed(self, variables: np.ndarray, parameters: np.ndarray | None = None) -> np.ndarray:
        """Assemble a full ``(..., m)`` node vector from parts."""
        variables = np.asarray(variables, dtype=float)
        out = np.zeros(variables.shape[:-1] + (self.nquantities,))
        out[..., : self.nvar] = variables
        if self.nparam:
            if parameters is None:
                raise ValueError(f"{self.name} needs {self.nparam} parameters per node")
            out[..., self.nvar :] = parameters
        return out

    # -- user functions -----------------------------------------------------

    @abstractmethod
    def flux(self, q: np.ndarray, d: int) -> np.ndarray:
        """Conservative flux ``F_d(Q)`` for direction ``d``.

        ``q`` is ``(..., m)``; the result is ``(..., m)`` with zeros in
        the parameter slots.
        """

    def ncp(self, grad_d: np.ndarray, q: np.ndarray, d: int) -> np.ndarray:
        """Non-conservative product ``B_d(params) . grad_d`` (``(..., m)``).

        ``grad_d`` holds the spatial gradient of all quantities along
        ``d``; ``q`` supplies the parameters.  Default: no NCP term.
        """
        del q, d
        return np.zeros_like(grad_d)

    @abstractmethod
    def max_wave_speed(self, q: np.ndarray) -> np.ndarray:
        """Largest absolute characteristic speed at each node, ``(...,)``."""

    def flux_matrix(self, params: np.ndarray, d: int) -> np.ndarray:
        """Dense ``(m, m)`` matrix ``A_d`` with ``F_d(Q) = A_d Q``.

        ``params`` is the parameter vector at a single node.  The
        default builds the matrix column-by-column from :meth:`flux`
        (correct for any linear flux, used by the reference operator
        and the upwind Riemann solver).
        """
        m = self.nquantities
        mat = np.zeros((m, m))
        basis = np.zeros(m)
        for j in range(self.nvar):
            basis[:] = 0.0
            basis[j] = 1.0
            if self.nparam:
                basis[self.nvar :] = params
            col = self.flux(basis, d)
            if self.nparam:
                # Subtract the affine offset contributed by the parameters
                # so the matrix acts on the variable part only.
                zero = np.zeros(m)
                zero[self.nvar :] = params
                col = col - self.flux(zero, d)
            mat[:, j] = col
            basis[j] = 0.0
        return mat

    def ncp_matrix(self, params: np.ndarray, d: int) -> np.ndarray:
        """Dense ``(m, m)`` matrix ``B_d`` with ``ncp(g) = B_d g``."""
        m = self.nquantities
        mat = np.zeros((m, m))
        node = np.zeros(m)
        if self.nparam:
            node[self.nvar :] = params
        g = np.zeros(m)
        for j in range(m):
            g[:] = 0.0
            g[j] = 1.0
            mat[:, j] = self.ncp(g, node, d)
        return mat

    # -- boundary handling ----------------------------------------------------

    def reflect(self, q: np.ndarray, d: int) -> np.ndarray:
        """Ghost state for a reflecting wall with normal along ``d``.

        Default: copy the state (a do-nothing wall); wave systems
        override this with the proper sign flips.
        """
        del d
        return q.copy()

    # -- cost model (feeds the machine simulation) ----------------------------

    def flux_flops_per_node(self, d: int) -> int:
        """Scalar FLOPs one ``flux`` evaluation costs at a single node.

        Subclasses count the operations of their scalar formulation
        (cf. the paper's Fig. 8 user function).
        """
        del d
        return 2 * self.nvar  # safe lower bound: one multiply-add per output

    def ncp_flops_per_node(self, d: int) -> int:
        """FLOPs of one non-conservative-product evaluation per node."""
        del d
        return 2 * self.nvar if self.has_ncp else 0

    # -- example data (plan recording, tests, benchmarks) -----------------------

    def example_parameters(self, shape: tuple[int, ...]) -> np.ndarray:
        """Physically valid parameter block of the given batch shape.

        Subclasses with parameters must override; used wherever a
        kernel needs representative data (e.g. recording a plan).
        """
        if self.nparam:
            raise NotImplementedError(f"{self.name} must provide example parameters")
        return np.zeros(shape + (0,))

    def example_state(self, shape: tuple[int, ...], rng=None) -> np.ndarray:
        """Full ``(*shape, m)`` state with random variables, valid parameters."""
        rng = np.random.default_rng(0) if rng is None else rng
        variables = rng.standard_normal(shape + (self.nvar,))
        if self.nparam:
            return self.embed(variables, self.example_parameters(shape))
        return self.embed(variables)

    # -- misc -------------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(nvar={self.nvar}, nparam={self.nparam}, "
            f"ncp={self.has_ncp})"
        )
