"""Non-conservative-product formulations (the ``B . grad Q`` term of eq. 1).

The paper's system class includes a non-conservative flux
``B . grad Q`` next to the conservative ``div F(Q)``.  For linear
constant-coefficient systems the two formulations are mathematically
equivalent (``div(A Q) = A . grad Q``), which gives a sharp test: a
system written with fluxes and the same system written with NCP terms
must produce identical predictor output.

:class:`NCPWrapperPDE` re-expresses any linear PDE in pure NCP form;
:class:`ElasticNCPPDE` is the convenience wrapper for the elastic wave
equations (velocity-stress elastodynamics is commonly written this way
in the seismic literature).
"""

from __future__ import annotations

import numpy as np

from repro.pde.base import LinearPDE
from repro.pde.elastic import ElasticPDE

__all__ = ["NCPWrapperPDE", "ElasticNCPPDE"]


class NCPWrapperPDE(LinearPDE):
    """Any linear PDE, rewritten with ``B_d = A_d`` and zero flux.

    ``Q_t + div F(Q) = 0`` becomes ``Q_t + sum_d A_d(params) dQ/dx_d = 0``
    -- valid wherever the coefficient matrices are spatially constant
    (element-wise constant material in our scenarios).
    """

    has_ncp = True

    def __init__(self, inner: LinearPDE):
        self.inner = inner
        self.nvar = inner.nvar
        self.nparam = inner.nparam
        self.name = f"{inner.name}_ncp"

    def flux(self, q: np.ndarray, d: int) -> np.ndarray:
        del d
        return np.zeros_like(q)

    def ncp(self, grad_d: np.ndarray, q: np.ndarray, d: int) -> np.ndarray:
        """``B_d . grad_d`` with ``B_d`` the inner PDE's flux matrix.

        Evaluated matrix-free: the inner flux is linear in the
        variables, so ``A_d g = flux(g-with-q's-parameters, d)``.
        """
        g_full = q.copy()
        g_full[..., : self.nvar] = grad_d[..., : self.nvar]
        return self.inner.flux(g_full, d)

    def max_wave_speed(self, q: np.ndarray) -> np.ndarray:
        return self.inner.max_wave_speed(q)

    def flux_matrix(self, params: np.ndarray, d: int) -> np.ndarray:
        return np.zeros((self.nquantities, self.nquantities))

    def ncp_matrix(self, params: np.ndarray, d: int) -> np.ndarray:
        return self.inner.flux_matrix(params, d)

    def reflect(self, q: np.ndarray, d: int) -> np.ndarray:
        return self.inner.reflect(q, d)

    def flux_flops_per_node(self, d: int) -> int:
        del d
        return 0

    def ncp_flops_per_node(self, d: int) -> int:
        """The wrapped flux cost: B(q) grad q replaces div F."""
        return self.inner.flux_flops_per_node(d)

    def example_parameters(self, shape: tuple[int, ...]) -> np.ndarray:
        return self.inner.example_parameters(shape)


class ElasticNCPPDE(NCPWrapperPDE):
    """Elastic waves in non-conservative (quasi-linear) form."""

    def __init__(self):
        super().__init__(ElasticPDE())
        self.name = "elastic_ncp"
