"""3-D isotropic elastic waves in first-order velocity-stress form.

This is the paper's benchmark system (Sec. VI): "three quantities for
particle velocity and six variables for the stress tensor.  Three
material parameters define density and the velocity of P- and S-waves."

Quantities ``Q = (v_x, v_y, v_z, s_xx, s_yy, s_zz, s_xy, s_xz, s_yz)``
with Lame parameters ``lambda = rho (cp^2 - 2 cs^2)``, ``mu = rho cs^2``:

.. math::

    \\rho \\, v_t = \\nabla \\cdot \\sigma, \\qquad
    \\sigma_t = \\lambda (\\nabla \\cdot v) I
              + \\mu (\\nabla v + \\nabla v^T).

Written as ``Q_t + sum_d \\partial_d F_d(Q) = 0`` the fluxes are linear
in ``Q`` with coefficients from the per-node material parameters --
compare the paper's Fig. 8 ``flux_x`` user function, which is this
system with unit coefficients.
"""

from __future__ import annotations

import numpy as np

from repro.pde.base import LinearPDE

__all__ = ["ElasticPDE"]

# quantity indices
VX, VY, VZ = 0, 1, 2
SXX, SYY, SZZ, SXY, SXZ, SYZ = 3, 4, 5, 6, 7, 8
# parameter indices (offset by nvar)
RHO, CP, CS = 0, 1, 2

#: normal and shear stress index per direction: sigma[d] row/col layout
_NORMAL = (SXX, SYY, SZZ)
#: sigma_{d, other}: for d=x -> (sxy, sxz); d=y -> (sxy, syz); d=z -> (sxz, syz)
_SHEAR = ((SXY, SXZ), (SXY, SYZ), (SXZ, SYZ))
#: which velocity the two shear entries couple to, per direction
_SHEAR_V = ((VY, VZ), (VX, VZ), (VX, VY))


class ElasticPDE(LinearPDE):
    """Isotropic elastodynamics: 9 evolved quantities + 3 material parameters."""

    name = "elastic"
    nvar = 9
    nparam = 3

    def _material(self, q: np.ndarray):
        rho = q[..., self.nvar + RHO]
        cp = q[..., self.nvar + CP]
        cs = q[..., self.nvar + CS]
        mu = rho * cs * cs
        lam = rho * (cp * cp - 2.0 * cs * cs)
        return rho, lam, mu

    def flux(self, q: np.ndarray, d: int) -> np.ndarray:
        """``F_d(Q)``: stress feeds velocity, velocity feeds stress."""
        rho, lam, mu = self._material(q)
        inv_rho = 1.0 / rho
        out = np.zeros_like(q)
        vd = q[..., VX + d]
        # velocity rows: v_t = (1/rho) div sigma  ->  F_d[v_a] = -sigma_{a d}/rho
        out[..., VX + d] = -q[..., _NORMAL[d]] * inv_rho
        for shear_idx, v_idx in zip(_SHEAR[d], _SHEAR_V[d]):
            out[..., v_idx] = -q[..., shear_idx] * inv_rho
        # normal stresses: sigma_aa_t = lam div v + 2 mu dv_a/dx_a
        for a, idx in enumerate(_NORMAL):
            coeff = lam + 2.0 * mu if a == d else lam
            out[..., idx] = -coeff * vd
        # shear stresses: sigma_ab_t = mu (dv_a/dx_b + dv_b/dx_a)
        for shear_idx, v_idx in zip(_SHEAR[d], _SHEAR_V[d]):
            out[..., shear_idx] = -mu * q[..., v_idx]
        return out

    def max_wave_speed(self, q: np.ndarray) -> np.ndarray:
        return np.abs(q[..., self.nvar + CP])

    def reflect(self, q: np.ndarray, d: int) -> np.ndarray:
        """Free-surface-like mirror: flip normal velocity, keep stresses.

        Mirroring the normal velocity while copying the stress tensor
        yields a rigid wall; combined with the upwind flux this absorbs
        no energy.
        """
        ghost = q.copy()
        ghost[..., VX + d] *= -1.0
        return ghost

    def flux_flops_per_node(self, d: int) -> int:
        """Scalar FLOPs of one flux evaluation (matching the code above).

        1 divide, 3 velocity rows (1 mul each), lam+2mu (2 ops), 3
        normal-stress rows (1 mul each), 2 shear rows (1 mul each),
        plus the lam/mu recovery from (rho, cp, cs): ~8 ops.
        """
        del d
        return 19

    def example_parameters(self, shape: tuple[int, ...]) -> np.ndarray:
        """LOH1-like hard-rock material: rho=2.7, cp=6.0, cs=3.464 (km, s)."""
        params = np.zeros(shape + (3,))
        params[..., RHO] = 2.7
        params[..., CP] = 6.0
        params[..., CS] = 3.464
        return params

    # -- analytic solutions -------------------------------------------------

    @staticmethod
    def plane_wave(k: np.ndarray, rho: float, cp: float, cs: float, mode: str = "p"):
        """Exact plane wave: P mode (longitudinal) or S mode (transverse).

        Returns ``solution(points, t) -> (..., 9)`` for homogeneous
        material; used for engine convergence tests.
        """
        k = np.asarray(k, dtype=float)
        knorm = float(np.linalg.norm(k))
        if knorm == 0.0:
            raise ValueError("wave vector must be nonzero")
        n = k / knorm
        mu = rho * cs * cs
        lam = rho * (cp * cp - 2.0 * cs * cs)
        if mode == "p":
            a = n  # polarization parallel to propagation
            c = cp
        elif mode == "s":
            # any unit vector orthogonal to n
            trial = np.array([1.0, 0.0, 0.0])
            if abs(n @ trial) > 0.9:
                trial = np.array([0.0, 1.0, 0.0])
            a = np.cross(n, trial)
            a /= np.linalg.norm(a)
            c = cs
        else:
            raise ValueError("mode must be 'p' or 's'")
        omega = c * knorm

        # Stress amplitude: sigma = -(1/omega)(lam (k.a) I + mu (k a^T + a k^T)) *
        # d/dt cos == consistent with v = a cos(k.x - omega t).
        ka = float(k @ a)
        stress_amp = (lam * ka * np.eye(3) + mu * (np.outer(k, a) + np.outer(a, k))) / omega

        def solution(points: np.ndarray, t: float) -> np.ndarray:
            phase = points @ k - omega * t
            wave = np.cos(phase)
            out = np.zeros(points.shape[:-1] + (9,))
            for d in range(3):
                out[..., VX + d] = a[d] * wave
            out[..., SXX] = -stress_amp[0, 0] * wave
            out[..., SYY] = -stress_amp[1, 1] * wave
            out[..., SZZ] = -stress_amp[2, 2] * wave
            out[..., SXY] = -stress_amp[0, 1] * wave
            out[..., SXZ] = -stress_amp[0, 2] * wave
            out[..., SYZ] = -stress_amp[1, 2] * wave
            return out

        return solution
