"""A genuinely nonlinear system: multidimensional scalar Burgers.

``u_t + div(a u^2 / 2) = 0`` with direction weights ``a``.  Used to
exercise the nonlinear (Picard) space-time predictor -- the kernel
family the paper's linear Cauchy-Kowalewsky variants sit next to in
ExaHyPE (Sec. II: "choosing between a scheme for a linear or a
non-linear PDE system").

For smooth short times the exact solution follows characteristics:
``u(x, t) = u0(x - a u t)`` (an implicit equation solvable by fixed
point iteration before shocks form).
"""

from __future__ import annotations

import numpy as np

from repro.pde.base import LinearPDE

__all__ = ["BurgersPDE"]


class BurgersPDE(LinearPDE):
    """Scalar Burgers in 3-D.

    Inherits the :class:`LinearPDE` interface for interoperability (the
    kernels only call ``flux``/``ncp``/``max_wave_speed``), but the
    flux is *quadratic*: only the Picard predictor handles it
    correctly; the linear CK kernels must reject it.
    """

    name = "burgers"
    nvar = 1
    nparam = 0
    is_linear = False  # checked by the linear kernels
    wave_speed_is_static = False  # |q| enters the speed, so no dt caching

    def __init__(self, direction=(1.0, 0.5, 0.25)):
        self.direction = np.asarray(direction, dtype=float)

    def flux(self, q: np.ndarray, d: int) -> np.ndarray:
        return 0.5 * self.direction[d] * q * q

    def max_wave_speed(self, q: np.ndarray) -> np.ndarray:
        return np.abs(self.direction).max() * np.abs(q[..., 0])

    def flux_matrix(self, params: np.ndarray, d: int) -> np.ndarray:
        raise TypeError("Burgers flux is nonlinear; no flux matrix exists")

    def flux_flops_per_node(self, d: int) -> int:
        del d
        return 2

    def exact_smooth_solution(self, initial, points: np.ndarray, t: float,
                              iterations: int = 50) -> np.ndarray:
        """Characteristics solution ``u = u0(x - a u t)`` (pre-shock)."""
        u = np.asarray(initial(points), dtype=float)
        for _ in range(iterations):
            shifted = points - self.direction * (u * t)[..., None]
            u_new = np.asarray(initial(shifted), dtype=float)
            if np.abs(u_new - u).max() < 1e-14:
                u = u_new
                break
            u = u_new
        return u
