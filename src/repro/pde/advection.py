"""Linear advection: the simplest validation system.

``Q_t + a . grad Q = 0`` for a constant velocity ``a`` -- every
component is transported rigidly, so exact solutions are available for
any initial condition and the engine's convergence order can be
verified against them.
"""

from __future__ import annotations

import numpy as np

from repro.pde.base import LinearPDE

__all__ = ["AdvectionPDE"]


class AdvectionPDE(LinearPDE):
    """System of ``nvar`` independently advected quantities."""

    name = "advection"
    nparam = 0

    def __init__(self, velocity=(1.0, 0.5, 0.25), nvar: int = 1):
        if nvar < 1:
            raise ValueError("nvar must be >= 1")
        self.nvar = nvar
        self.velocity = np.asarray(velocity, dtype=float)
        if self.velocity.ndim != 1 or self.velocity.size < 1:
            raise ValueError("velocity must be a 1-D vector")

    @property
    def dim(self) -> int:
        """Spatial dimension, taken from the advection velocity."""
        return self.velocity.size

    def flux(self, q: np.ndarray, d: int) -> np.ndarray:
        return self.velocity[d] * q

    def max_wave_speed(self, q: np.ndarray) -> np.ndarray:
        speed = float(np.max(np.abs(self.velocity)))
        return np.full(q.shape[:-1], speed)

    def flux_matrix(self, params: np.ndarray, d: int) -> np.ndarray:
        return self.velocity[d] * np.eye(self.nvar)

    def flux_flops_per_node(self, d: int) -> int:
        del d
        return self.nvar  # one multiply per quantity

    def exact_solution(self, initial, points: np.ndarray, t: float) -> np.ndarray:
        """Exact solution: ``Q(x, t) = Q0(x - a t)`` for callable ``initial``."""
        shifted = points - self.velocity[: points.shape[-1]] * t
        return initial(shifted)
