"""Linear hyperbolic PDE systems (the application layer / user functions).

ExaHyPE applications provide PDE-specific *user functions* -- fluxes,
non-conservative products, eigenvalues, boundary treatment -- which the
generated kernels call back into (paper Sec. II-C).  This package
implements the systems used throughout the reproduction:

* :mod:`repro.pde.advection` -- scalar/system linear advection (the
  simplest validation workload).
* :mod:`repro.pde.acoustic` -- linear acoustics (4 quantities).
* :mod:`repro.pde.elastic` -- 3-D isotropic elastic waves in
  first-order velocity-stress form: 9 evolved quantities + 3 material
  parameters, the paper's benchmark system (Sec. VI).
* :mod:`repro.pde.curvilinear` -- the curvilinear wrapper that adds the
  9 per-node geometry entries, giving the paper's ``m = 21`` workload.
"""

from repro.pde.base import LinearPDE
from repro.pde.advection import AdvectionPDE
from repro.pde.acoustic import AcousticPDE
from repro.pde.elastic import ElasticPDE
from repro.pde.curvilinear import CurvilinearElasticPDE
from repro.pde.ncp import ElasticNCPPDE, NCPWrapperPDE
from repro.pde.burgers import BurgersPDE

__all__ = [
    "BurgersPDE",
    "LinearPDE",
    "AdvectionPDE",
    "AcousticPDE",
    "ElasticPDE",
    "CurvilinearElasticPDE",
    "NCPWrapperPDE",
    "ElasticNCPPDE",
]
