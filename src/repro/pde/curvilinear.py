"""Curvilinear elastic waves: the paper's full m = 21 workload.

"To incorporate the geometry we store the transformation and its
Jacobian in each vertex, adding a further nine parameters.  Hence, we
store m = 21 quantities at each integration point." (Sec. VI)

Each node carries the 9 elastic quantities, 3 material parameters and
the 9 entries of the metric matrix ``G`` (the scaled inverse Jacobian
of the boundary-fitted mesh transform).  Fluxes in reference
coordinates are metric-weighted combinations of the Cartesian fluxes:

.. math::

    \\tilde F_a(Q) = \\sum_b G_{ab} \\, F_b(Q),

which stays linear in ``Q``, so the Cauchy-Kowalewsky machinery applies
unchanged.  With ``G = I`` the system reduces exactly to
:class:`~repro.pde.elastic.ElasticPDE` -- the identity the test-suite
checks.
"""

from __future__ import annotations

import numpy as np

from repro.pde.base import LinearPDE
from repro.pde.elastic import ElasticPDE

__all__ = ["CurvilinearElasticPDE"]


class CurvilinearElasticPDE(LinearPDE):
    """Elastic waves on a curvilinear boundary-fitted mesh (m = 21)."""

    name = "curvilinear_elastic"
    nvar = 9
    nparam = 12  # (rho, cp, cs) + 9 metric entries, row-major

    #: parameter offset of the metric block
    METRIC = 3

    def __init__(self):
        self._cartesian = ElasticPDE()

    def metric(self, q: np.ndarray) -> np.ndarray:
        """Per-node metric matrix ``G``, shape ``(..., 3, 3)``."""
        g = q[..., self.nvar + self.METRIC : self.nvar + self.METRIC + 9]
        return g.reshape(q.shape[:-1] + (3, 3))

    def _cartesian_view(self, q: np.ndarray) -> np.ndarray:
        """Rebuild a 12-quantity Cartesian-elastic node vector (zero-copy slice)."""
        return q[..., : self.nvar + 3]

    def flux(self, q: np.ndarray, d: int) -> np.ndarray:
        """Reference-direction flux: metric-weighted Cartesian fluxes."""
        g = self.metric(q)
        cart = self._cartesian_view(q)
        out = np.zeros_like(q)
        for b in range(3):
            fb = self._cartesian.flux(cart, b)
            out[..., : self.nvar] += g[..., d, b, None] * fb[..., : self.nvar]
        return out

    def max_wave_speed(self, q: np.ndarray) -> np.ndarray:
        """cp scaled by the largest metric row norm (reference-space speed)."""
        g = self.metric(q)
        row_norm = np.linalg.norm(g, axis=-1).max(axis=-1)
        return np.abs(q[..., self.nvar + 1]) * row_norm

    def reflect(self, q: np.ndarray, d: int) -> np.ndarray:
        ghost = q.copy()
        ghost[..., d] *= -1.0  # flip normal velocity (VX + d with VX == 0)
        return ghost

    def flux_flops_per_node(self, d: int) -> int:
        """Cost of the *generated* reference-coordinate flux.

        The seismic application's user function works directly in
        reference coordinates: the metric row is folded into the
        material coefficients (``g[d,b] * lam`` etc. are common
        subexpressions the compiler hoists), so one evaluation costs
        roughly the Cartesian flux (19 ops) plus one metric-weighted
        combination per evolved quantity (~2 * 9 ops) and the
        coefficient setup (~8 ops) -- not the three full Cartesian
        fluxes our NumPy convenience path composes.
        """
        del d
        return 45

    def example_parameters(self, shape: tuple[int, ...]) -> np.ndarray:
        return self.identity_parameters(shape, rho=2.7, cp=6.0, cs=3.464)

    @staticmethod
    def identity_parameters(shape: tuple[int, ...], rho: float, cp: float, cs: float) -> np.ndarray:
        """Convenience: parameter block with ``G = I`` (Cartesian mesh)."""
        params = np.zeros(shape + (12,))
        params[..., 0] = rho
        params[..., 1] = cp
        params[..., 2] = cs
        params[..., 3] = 1.0  # G[0,0]
        params[..., 7] = 1.0  # G[1,1]
        params[..., 11] = 1.0  # G[2,2]
        return params
