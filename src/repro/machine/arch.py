"""Target architecture descriptors.

The constants for ``skx`` mirror the paper's benchmark platform
(Sec. VI): SuperMUC-NG nodes with Intel Xeon Platinum 8174 CPUs.

* two AVX-512 FMA units per core,
* 1.9 GHz sustained frequency under AVX-512 (reduced from the 2.7 GHz
  scalar base frequency -- the ~30 % derating the paper highlights),
* available performance per core: ``1.9 GHz * 2 units * 2 flops * 8
  doubles = 60.8 DP GFlop/s``,
* 32 KiB 8-way L1D, **1 MiB** 16-way L2 per core (the bottleneck of
  Sec. IV-A), and a non-inclusive shared L3 of which each core
  effectively sees ~4 MiB in the paper's 8-cores-per-socket run
  configuration.

``hsw`` is the AVX2 code path the paper uses for its "LoG (AVX2)"
series -- the same physical Skylake core executing 256-bit code at the
higher AVX2 frequency.  ``noarch`` models the generic kernels: plain
scalar code at the base frequency.

Latency and overlap constants are *calibration* constants in the sense
of DESIGN.md Sec. 5: they are set once from public Skylake
characterization (Fog's tables / Intel SoftDevGuide ranges) and the
paper's generic-kernel plateau, then held fixed for every variant,
order and figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CacheLevel", "Architecture", "get_architecture", "ARCHITECTURES", "SKX_PEAK_GFLOPS"]


@dataclass(frozen=True)
class CacheLevel:
    """Geometry and timing of one level of the data-cache hierarchy."""

    name: str
    capacity_bytes: int
    ways: int
    latency_cycles: float
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if self.capacity_bytes % (self.ways * self.line_bytes):
            raise ValueError(f"{self.name}: capacity must be a multiple of ways*line")

    @property
    def sets(self) -> int:
        """Number of associativity sets."""
        return self.capacity_bytes // (self.ways * self.line_bytes)

    @property
    def lines(self) -> int:
        """Total cache lines in this level."""
        return self.capacity_bytes // self.line_bytes


@dataclass(frozen=True)
class Architecture:
    """A SIMD target architecture, ExaHyPE-Kernel-Generator style.

    ExaHyPE's Kernel Generator selects padding and alignment from an
    architecture name (``noarch``, ``wsm``, ``snb``, ``hsw``, ``knl``,
    ``skx``); this class carries the same information plus the machine
    model constants.
    """

    name: str
    vector_bytes: int  # SIMD register width (8 = scalar)
    fma_units: int
    simd_freq_ghz: float  # sustained frequency executing this ISA
    scalar_freq_ghz: float  # base frequency for scalar-dominated code
    caches: tuple[CacheLevel, ...] = field(default=())
    #: DRAM latency is frequency-independent, so it is specified in ns
    #: (cache latencies scale with the core clock and stay in cycles).
    dram_latency_ns: float = 100.0
    line_bytes: int = 64

    @property
    def dram_latency_cycles(self) -> float:
        """DRAM latency in cycles at the SIMD-sustained frequency."""
        return self.dram_latency_ns * self.simd_freq_ghz

    def __post_init__(self) -> None:
        if self.vector_bytes % 8:
            raise ValueError("vector_bytes must be a multiple of 8 (a double)")

    # -- SIMD geometry ---------------------------------------------------

    @property
    def vector_doubles(self) -> int:
        """Number of float64 lanes in one SIMD register."""
        return self.vector_bytes // 8

    @property
    def alignment_bytes(self) -> int:
        """Required alignment for vector loads/stores."""
        return max(self.vector_bytes, 16)

    def pad_doubles(self, n: int) -> int:
        """Zero-pad a leading dimension of ``n`` doubles to the SIMD width.

        This is the Kernel Generator's padding rule (Sec. III-A): the
        fastest-running dimension of every tensor is rounded up to the
        next multiple of the vector length.
        """
        v = self.vector_doubles
        return ((n + v - 1) // v) * v

    # -- peak throughput ---------------------------------------------------

    def flops_per_cycle(self, width_bits: int) -> float:
        """Peak FMA DP-FLOPs per cycle for instructions of ``width_bits``."""
        lanes = min(width_bits // 64, self.vector_doubles)
        return 2.0 * self.fma_units * lanes  # 2 flops per lane per FMA

    @property
    def peak_flops_per_cycle(self) -> float:
        """Peak double-precision FLOPs per cycle at full vector width."""
        return self.flops_per_cycle(self.vector_bytes * 8)

    @property
    def peak_gflops(self) -> float:
        """Peak DP GFlop/s per core at the SIMD-sustained frequency."""
        return self.peak_flops_per_cycle * self.simd_freq_ghz

    # -- cache hierarchy ---------------------------------------------------

    @property
    def l2(self) -> CacheLevel:
        """The L2 cache level (the paper's per-core bottleneck)."""
        for lvl in self.caches:
            if lvl.name == "L2":
                return lvl
        raise LookupError(f"{self.name} has no L2 cache level")


def _skylake_caches() -> tuple[CacheLevel, ...]:
    return (
        CacheLevel("L1", 32 * 1024, ways=8, latency_cycles=4.0),
        CacheLevel("L2", 1024 * 1024, ways=16, latency_cycles=14.0),
        # 33 MiB shared non-inclusive L3; ~4 MiB effective per core in the
        # paper's 8-core-per-socket benchmark layout.
        CacheLevel("L3", 4 * 1024 * 1024, ways=16, latency_cycles=68.0),
    )


ARCHITECTURES: dict[str, Architecture] = {
    # Generic scalar compilation target (paper's "generic" baseline): the
    # same Skylake core, running mostly-scalar code at base frequency.
    "noarch": Architecture(
        name="noarch",
        vector_bytes=8,
        fma_units=2,
        simd_freq_ghz=2.7,
        scalar_freq_ghz=2.7,
        caches=_skylake_caches(),
    ),
    # Westmere-era SSE target kept for Kernel-Generator parity.
    "wsm": Architecture(
        name="wsm",
        vector_bytes=16,
        fma_units=1,
        simd_freq_ghz=2.7,
        scalar_freq_ghz=2.7,
        caches=_skylake_caches(),
    ),
    # Sandy Bridge AVX target.
    "snb": Architecture(
        name="snb",
        vector_bytes=32,
        fma_units=1,
        simd_freq_ghz=2.5,
        scalar_freq_ghz=2.7,
        caches=_skylake_caches(),
    ),
    # Haswell AVX2 target -- the paper's "LoG (AVX2)" series runs this
    # code path on the Skylake machine at the AVX2 turbo frequency.
    "hsw": Architecture(
        name="hsw",
        vector_bytes=32,
        fma_units=2,
        simd_freq_ghz=2.3,
        scalar_freq_ghz=2.7,
        caches=_skylake_caches(),
    ),
    # Knights Landing AVX-512 target (smaller caches).
    "knl": Architecture(
        name="knl",
        vector_bytes=64,
        fma_units=2,
        simd_freq_ghz=1.3,
        scalar_freq_ghz=1.4,
        caches=(
            CacheLevel("L1", 32 * 1024, ways=8, latency_cycles=4.0),
            CacheLevel("L2", 512 * 1024, ways=16, latency_cycles=17.0),
        ),
        dram_latency_ns=150.0,
    ),
    # Skylake AVX-512 -- the paper's primary platform.
    "skx": Architecture(
        name="skx",
        vector_bytes=64,
        fma_units=2,
        simd_freq_ghz=1.9,
        scalar_freq_ghz=2.7,
        caches=_skylake_caches(),
    ),
}

#: The paper's fixed "available performance" denominator (Sec. VI):
#: 60.8 DP GFlop/s per Skylake core under AVX-512.
SKX_PEAK_GFLOPS: float = ARCHITECTURES["skx"].peak_gflops


def get_architecture(name: str) -> Architecture:
    """Look up an architecture descriptor by Kernel-Generator name."""
    try:
        return ARCHITECTURES[name]
    except KeyError:
        raise ValueError(
            f"unknown architecture {name!r}; available: {sorted(ARCHITECTURES)}"
        ) from None
