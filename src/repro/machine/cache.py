"""Reference set-associative LRU cache simulator (line granularity).

This is the ground-truth model: true LRU within each set, one entry per
64-byte line, simulated access by access.  It is too slow for the
full benchmark sweeps (those use the segment-granular model in
:mod:`repro.machine.segcache`, which the test-suite cross-validates
against this one) but exact for unit tests and small kernels.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.machine.arch import Architecture, CacheLevel

__all__ = ["LRUCache", "CacheHierarchy", "AccessStats"]


@dataclass
class AccessStats:
    """Hit/miss counters of one cache level."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        """Total accesses (hits plus misses)."""
        return self.hits + self.misses

    @property
    def miss_ratio(self) -> float:
        """Misses over accesses; 0 before any access."""
        return 0.0 if self.accesses == 0 else self.misses / self.accesses


class LRUCache:
    """One set-associative cache level with true LRU replacement."""

    def __init__(self, level: CacheLevel):
        self.level = level
        self.sets = level.sets
        self.ways = level.ways
        self._storage: list[OrderedDict] = [OrderedDict() for _ in range(self.sets)]
        self.stats = AccessStats()

    def access(self, line: int) -> bool:
        """Touch one line address; returns ``True`` on hit."""
        s = self._storage[line % self.sets]
        if line in s:
            s.move_to_end(line)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        s[line] = None
        if len(s) > self.ways:
            s.popitem(last=False)
        return False

    def flush(self) -> None:
        """Evict every line; statistics are kept."""
        for s in self._storage:
            s.clear()

    @property
    def resident_lines(self) -> int:
        """Lines currently cached across all sets."""
        return sum(len(s) for s in self._storage)


@dataclass
class CacheHierarchy:
    """An inclusive multi-level hierarchy fed by a line-address stream.

    A miss at level ``k`` propagates to level ``k+1``; a final miss
    counts as a DRAM access.  (The real Skylake L3 is non-inclusive;
    at our granularity the distinction is immaterial and inclusive
    book-keeping is simpler to validate.)
    """

    arch: Architecture
    levels: list[LRUCache] = field(init=False)
    dram_accesses: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self.levels = [LRUCache(lvl) for lvl in self.arch.caches]

    def access(self, line: int) -> str:
        """Touch a line; returns the name of the level that served it."""
        for cache in self.levels:
            if cache.access(line):
                return cache.level.name
        self.dram_accesses += 1
        return "DRAM"

    def access_stream(self, lines: np.ndarray) -> None:
        """Run a sequence of line addresses through the hierarchy."""
        for line in lines:
            self.access(int(line))

    def miss_summary(self) -> dict[str, int]:
        """Misses per level that had to go further down, plus DRAM hits."""
        out = {c.level.name: c.stats.misses for c in self.levels}
        out["DRAM"] = self.dram_accesses
        return out

    def flush(self) -> None:
        """Evict all levels (models a context switch; stats are kept)."""
        for c in self.levels:
            c.flush()
        # keep stats: flush models a context switch, not a new experiment
