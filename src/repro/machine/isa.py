"""Instruction-mix and traffic accounting.

The paper's Fig. 9 plots the distribution of floating point operations
by the packing width of the instruction that produced them (scalar /
128 / 256 / 512-bit).  :class:`FlopCounts` carries exactly that
attribution; every operation in a kernel plan reports one, and the
profiler sums them.

:class:`TrafficCounts` carries the byte volumes an operation moves,
split into reads and writes, which the cache models consume.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FlopCounts", "TrafficCounts", "PACKING_WIDTHS"]

#: Packing widths in bits, in ascending order (64 = scalar double).
PACKING_WIDTHS: tuple[int, ...] = (64, 128, 256, 512)


@dataclass(frozen=True)
class FlopCounts:
    """DP floating point operations attributed to instruction widths.

    Attributes hold *FLOPs* (not instruction counts): one AVX-512 FMA
    contributes 16 to :attr:`v512`.  Padding FLOPs are included, exactly
    as a hardware counter would see them (Sec. III-A: padding work is
    executed, it just rides along in otherwise-idle lanes).
    """

    scalar: float = 0.0
    v128: float = 0.0
    v256: float = 0.0
    v512: float = 0.0

    def __add__(self, other: "FlopCounts") -> "FlopCounts":
        return FlopCounts(
            self.scalar + other.scalar,
            self.v128 + other.v128,
            self.v256 + other.v256,
            self.v512 + other.v512,
        )

    def scaled(self, factor: float) -> "FlopCounts":
        """All widths multiplied by ``factor`` (e.g. a batch count)."""
        return FlopCounts(
            self.scalar * factor,
            self.v128 * factor,
            self.v256 * factor,
            self.v512 * factor,
        )

    @property
    def total(self) -> float:
        """FLOPs summed over all packing widths."""
        return self.scalar + self.v128 + self.v256 + self.v512

    def by_width(self) -> dict[int, float]:
        """Map packing width in bits -> FLOPs."""
        return {64: self.scalar, 128: self.v128, 256: self.v256, 512: self.v512}

    def fractions(self) -> dict[int, float]:
        """Map packing width in bits -> fraction of total FLOPs (Fig. 9)."""
        t = self.total
        if t == 0.0:
            return {w: 0.0 for w in PACKING_WIDTHS}
        return {w: f / t for w, f in self.by_width().items()}

    @property
    def scalar_fraction(self) -> float:
        """Share of FLOPs executed scalar (Fig. 9's headline metric)."""
        return 0.0 if self.total == 0.0 else self.scalar / self.total

    @property
    def vectorized_fraction(self) -> float:
        """Share of FLOPs executed in any SIMD width."""
        return 1.0 - self.scalar_fraction

    @staticmethod
    def at_width(flops: float, width_bits: int) -> "FlopCounts":
        """Attribute ``flops`` FLOPs to a single packing width."""
        if width_bits == 64:
            return FlopCounts(scalar=flops)
        if width_bits == 128:
            return FlopCounts(v128=flops)
        if width_bits == 256:
            return FlopCounts(v256=flops)
        if width_bits == 512:
            return FlopCounts(v512=flops)
        raise ValueError(f"unsupported packing width {width_bits} bits")

    def instructions(self) -> float:
        """Approximate FP instruction count (FLOPs / lanes, FMA-normalized).

        Used by the performance model to convert FLOPs into issue slots:
        one FMA instruction retires 2 FLOPs per lane.
        """
        return (
            self.scalar / 2.0
            + self.v128 / 4.0
            + self.v256 / 8.0
            + self.v512 / 16.0
        )


@dataclass(frozen=True)
class TrafficCounts:
    """Bytes an operation reads and writes (before any cache filtering)."""

    read_bytes: float = 0.0
    write_bytes: float = 0.0

    def __add__(self, other: "TrafficCounts") -> "TrafficCounts":
        return TrafficCounts(
            self.read_bytes + other.read_bytes,
            self.write_bytes + other.write_bytes,
        )

    @property
    def total_bytes(self) -> float:
        """Read plus write bytes."""
        return self.read_bytes + self.write_bytes
