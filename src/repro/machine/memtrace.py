"""Line-granular memory trace generation from kernel plans.

Used to drive the exact LRU simulator of :mod:`repro.machine.cache`
when validating the fast segment model.  Buffers are placed at disjoint
aligned virtual base addresses; each operation emits the cache-line
addresses it touches, in the streaming order of the generated code:

* ``GemmOp`` -- per batch slice: the B slice, the (usually tiny,
  resident) A operand, then the C slice.  Fused slices are contiguous
  and consecutive, exactly like in the kernels.
* ``PointwiseOp`` -- one sequential sweep per buffer access, capped at
  the buffer size (re-reads of small constants revisit the same lines).
* ``TransposeOp`` -- source sweep, then destination sweep.
"""

from __future__ import annotations

import numpy as np

from repro.codegen.plan import GemmOp, KernelPlan, PointwiseOp, TransposeOp

__all__ = ["assign_addresses", "op_trace", "plan_trace"]

_LINE = 64


def assign_addresses(plan: KernelPlan, alignment: int = 4096) -> dict[str, int]:
    """Place every buffer at a disjoint aligned base address."""
    bases: dict[str, int] = {}
    cursor = alignment
    for name, buf in plan.buffers.items():
        bases[name] = cursor
        size = max(buf.nbytes, 1)
        cursor += ((size + alignment - 1) // alignment) * alignment
    return bases


def _range_lines(base: int, offset_bytes: float, nbytes: float) -> np.ndarray:
    start = int(base + offset_bytes)
    end = int(base + offset_bytes + max(nbytes, 0))
    first = start // _LINE
    last = (max(end - 1, start)) // _LINE
    return np.arange(first, last + 1, dtype=np.int64)


def op_trace(op, bases: dict[str, int], buffers) -> np.ndarray:
    """Cache-line address stream of one operation."""
    chunks: list[np.ndarray] = []
    if isinstance(op, GemmOp):
        g = op.gemm
        a_bytes = 8 * g.m * g.k
        b_bytes = 8 * g.k * g.n_vectors * g.vector_doubles
        c_bytes = 8 * g.m * g.n_vectors * g.vector_doubles
        a_size = buffers[op.a].nbytes
        b_size = buffers[op.b].nbytes
        c_size = buffers[op.c].nbytes
        for i in range(op.batch):
            b_off = (i * b_bytes) % max(b_size, 1)
            c_off = (i * c_bytes) % max(c_size, 1)
            a_off = (i * a_bytes) % max(a_size, 1) if a_bytes * op.batch > a_size else 0
            chunks.append(_range_lines(bases[op.b], b_off, min(b_bytes, b_size)))
            chunks.append(_range_lines(bases[op.a], a_off, min(a_bytes, a_size)))
            chunks.append(_range_lines(bases[op.c], c_off, min(c_bytes, c_size)))
    elif isinstance(op, (PointwiseOp, TransposeOp)):
        for acc in op.accesses():
            total = acc.read_bytes + acc.write_bytes
            size = buffers[acc.buffer].nbytes
            chunks.append(_range_lines(bases[acc.buffer], 0, min(total, size)))
    else:  # pragma: no cover - defensive
        raise TypeError(f"unknown op type {type(op)!r}")
    if not chunks:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(chunks)


def plan_trace(plan: KernelPlan, bases: dict[str, int] | None = None) -> np.ndarray:
    """Full line-address stream of one kernel invocation."""
    bases = assign_addresses(plan) if bases is None else bases
    parts = [op_trace(op, bases, plan.buffers) for op in plan.ops]
    if not parts:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(parts)
