"""Simulated target machine: ISA, caches, and performance model.

The paper measures its kernels on Intel Skylake (Xeon Platinum 8174)
with Intel VTune.  Python cannot issue SIMD instructions or observe
hardware counters, so this package substitutes a *model* of the target
machine (see DESIGN.md, substitution 3):

* :mod:`repro.machine.arch` -- architecture descriptors (vector width,
  FMA units, AVX frequency derating, cache geometry) with the Skylake
  constants from the paper's Sec. VI.
* :mod:`repro.machine.isa` -- instruction-mix accounting
  (scalar/128/256/512-bit FLOP attribution, Fig. 9's metric).
* :mod:`repro.machine.cache` -- reference set-associative LRU cache
  simulator at cache-line granularity.
* :mod:`repro.machine.segcache` -- fast segment-granular LRU cache
  model used by the benchmark harness, cross-validated against the
  line-level simulator in the test-suite.
* :mod:`repro.machine.memtrace` -- turns kernel plans into memory
  access streams for the cache models.
* :mod:`repro.machine.perfmodel` -- top-down pipeline-slot model
  producing the paper's two headline metrics: % of available
  performance and % of pipeline slots affected by memory stalls.
* :mod:`repro.machine.profiler` -- VTune-like facade bundling all of
  the above.
"""

from repro.machine.arch import Architecture, CacheLevel, get_architecture
from repro.machine.isa import FlopCounts, TrafficCounts

__all__ = [
    "Architecture",
    "CacheLevel",
    "get_architecture",
    "FlopCounts",
    "TrafficCounts",
]
