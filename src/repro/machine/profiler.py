"""VTune-like profiler facade.

Bundles the segment cache model and the performance model into the
one-call interface the experiment harness uses, and provides the plan
composition needed to model the *full application* the paper measures
("end-to-end performance, with all kernels and engine overhead
included -- though performance stays dominated by the STP kernel",
Sec. VI): per element and time step, one STP invocation plus the
corrector/engine work.
"""

from __future__ import annotations

from dataclasses import replace

from repro.codegen.plan import Buffer, BufferAccess, KernelPlan, PointwiseOp
from repro.machine.isa import FlopCounts
from repro.machine.perfmodel import KernelPerformance, PerfModel, PerfModelConfig
from repro.machine.segcache import SegmentCacheModel

__all__ = ["Profiler", "merge_plans", "engine_overhead_plan"]


def merge_plans(*plans: KernelPlan) -> KernelPlan:
    """Concatenate plans into one application plan.

    Buffer names are prefixed per source plan so different kernels'
    temporaries occupy distinct addresses (as they do in the engine).
    """
    if not plans:
        raise ValueError("need at least one plan")
    merged = KernelPlan(variant=plans[0].variant, spec=plans[0].spec)
    for idx, plan in enumerate(plans):
        prefix = f"p{idx}."
        for name, buf in plan.buffers.items():
            merged.buffers[prefix + name] = replace(buf, name=prefix + name)
        for op in plan.ops:
            merged.ops.append(_remap(op, prefix))
    return merged


def _remap(op, prefix: str):
    if hasattr(op, "buffer_accesses"):  # PointwiseOp
        return replace(
            op,
            buffer_accesses=tuple(
                replace(a, buffer=prefix + a.buffer) for a in op.buffer_accesses
            ),
        )
    if hasattr(op, "gemm"):  # GemmOp
        return replace(op, a=prefix + op.a, b=prefix + op.b, c=prefix + op.c)
    return replace(op, src=prefix + op.src, dst=prefix + op.dst)  # TransposeOp


def engine_overhead_plan(spec, flops_per_node: float = 40.0) -> KernelPlan:
    """Per-element engine work outside the optimized kernels.

    Mesh traversal, heap bookkeeping, plotting hooks and the
    (unvectorized) glue code contribute a scalar-FLOP tail proportional
    to the element size.  This is the part of the application that
    keeps even the AoSoA setup at 2-4 % scalar FLOPs in Fig. 9.
    """
    n, m = spec.order, spec.nquantities
    plan = KernelPlan(variant="engine", spec=spec)
    nbytes = 8 * n**3 * m
    plan.buffers["element"] = Buffer("element", nbytes, "input")
    plan.ops.append(
        PointwiseOp(
            "engine_overhead",
            FlopCounts.at_width(flops_per_node * n**3, 64),
            (BufferAccess("element", read_bytes=nbytes, write_bytes=nbytes),),
        )
    )
    return plan


class Profiler:
    """Profile kernel plans on the simulated machine."""

    def __init__(self, config: PerfModelConfig | None = None, repetitions: int = 4):
        self.config = config or PerfModelConfig()
        self.repetitions = repetitions

    def profile(self, plan: KernelPlan) -> KernelPerformance:
        """Model one plan executed repeatedly over mesh elements."""
        arch = plan.spec.architecture
        cache = SegmentCacheModel(arch)
        misses = cache.run_plan(plan, repetitions=self.repetitions)
        return PerfModel(arch, self.config).evaluate(plan, misses)

    def profile_application(self, *plans: KernelPlan) -> KernelPerformance:
        """Model an application step: STP + corrector + engine overhead."""
        return self.profile(merge_plans(*plans))
