"""Top-down performance model: the VTune metrics of the paper.

Converts a kernel plan plus cache-model miss counts into the two
quantities the paper plots for every variant and order:

* **% of available performance** -- achieved GFlop/s over the fixed
  60.8 DP GFlop/s one Skylake core offers under AVX-512 (Sec. VI), and
* **% of pipeline slots affected by memory stalls** -- modeled as the
  exposed miss-latency cycles over total cycles.

Model: ``total_cycles = compute_cycles + exposed_stall_cycles`` where

* compute cycles come from the instruction mix: FLOPs at width ``w``
  retire at ``peak(w) * efficiency(op kind)`` FLOPs/cycle -- the
  efficiency constants encode non-FMA mixes, loop overhead and
  dependency chains per operation class;
* each line miss served by level ``k`` exposes
  ``latency(k) * exposure(k)`` cycles -- the exposure constants encode
  how much latency out-of-order execution and prefetching hide.

All constants live in :class:`PerfModelConfig` and are **calibrated
once** against the paper's generic-kernel plateau and public Skylake
characteristics, then held fixed across variants, orders and figures
(DESIGN.md Sec. 5).  Everything that differentiates the variants --
instruction mixes, traffic, working sets, padding, transposes -- is
computed from the recorded plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.codegen.plan import GemmOp, KernelPlan, PointwiseOp, TransposeOp
from repro.machine.arch import SKX_PEAK_GFLOPS, Architecture
from repro.machine.isa import FlopCounts
from repro.machine.segcache import LevelMisses

__all__ = ["PerfModelConfig", "KernelPerformance", "PerfModel"]


@dataclass(frozen=True)
class PerfModelConfig:
    """Calibration constants of the machine model (fixed for all figures)."""

    #: LIBXSMM-style small GEMMs at the paper's shapes (K = N <= 11,
    #: only 1-3 column registers): well below peak FMA throughput.
    gemm_efficiency: float = 0.28
    #: vectorized element-wise sweeps: load/store bound, ~1 vector FMA
    #: every 4 cycles.
    pointwise_vector_efficiency: float = 0.25
    #: inlined scalar user functions (IPO inlining, Sec. III-C): close
    #: to the 2-FMA-port scalar peak -- the paper's joint Fig. 4/9
    #: numbers imply near-peak scalar throughput (see EXPERIMENTS.md).
    scalar_efficiency: float = 0.95
    #: the generic kernels' triple loops: virtual calls, runtime
    #: strides, no inlining -- calibrated against the generic plateau
    #: of ~3.8 % of 60.8 GF/s at 2.7 GHz.
    heavy_efficiency: float = 0.232
    #: layout transposes: shuffle-based, near L1 bandwidth.
    transpose_bytes_per_cycle: float = 24.0
    #: fraction of the miss latency that remains exposed, per serving
    #: level (hardware prefetchers stream L2/L3-resident data nearly
    #: for free; out-of-order execution hides part of the rest).
    exposure_l2: float = 0.121
    exposure_l3: float = 0.03
    exposure_dram: float = 0.104
    #: write-allocate misses drain through the store buffers.
    write_stall_factor: float = 0.05


@dataclass
class KernelPerformance:
    """Modeled per-core performance of one kernel/application run."""

    variant: str
    order: int
    arch: str
    flops: FlopCounts
    compute_cycles: float
    stall_cycles: float
    freq_ghz: float
    reference_peak_gflops: float = SKX_PEAK_GFLOPS
    misses: dict = field(default_factory=dict)

    @property
    def total_cycles(self) -> float:
        """Compute plus memory-stall cycles."""
        return self.compute_cycles + self.stall_cycles

    @property
    def time_seconds(self) -> float:
        """Modelled wall time at the effective frequency."""
        return self.total_cycles / (self.freq_ghz * 1e9)

    @property
    def gflops(self) -> float:
        """Modelled double-precision GFLOP/s rate."""
        return self.flops.total / 1e9 / self.time_seconds

    @property
    def percent_available(self) -> float:
        """Fig. 4/6/10 top panels: achieved over the 60.8 GF/s peak."""
        return 100.0 * self.gflops / self.reference_peak_gflops

    @property
    def memory_stall_pct(self) -> float:
        """Fig. 4/6/10 bottom panels: exposed stall slots over all slots."""
        return 100.0 * self.stall_cycles / self.total_cycles

    def mix_percentages(self) -> dict[int, float]:
        """Fig. 9: % of FLOPs per packing width."""
        return {w: 100.0 * f for w, f in self.flops.fractions().items()}


class PerfModel:
    """Evaluates plans against an architecture."""

    def __init__(self, arch: Architecture, config: PerfModelConfig | None = None):
        self.arch = arch
        self.config = config or PerfModelConfig()

    # -- compute side ------------------------------------------------------

    def _op_cycles(self, op) -> float:
        cfg = self.config
        if isinstance(op, TransposeOp):
            return op.traffic().total_bytes / cfg.transpose_bytes_per_cycle
        if isinstance(op, GemmOp):
            eff = cfg.gemm_efficiency
        elif isinstance(op, PointwiseOp) and op.eff_class == "heavy":
            eff = cfg.heavy_efficiency
        else:
            eff = None  # per-width below
        cycles = 0.0
        for width, flops in op.flops().by_width().items():
            if flops == 0.0:
                continue
            if eff is not None:
                e = eff
            else:
                e = cfg.scalar_efficiency if width == 64 else cfg.pointwise_vector_efficiency
            cycles += flops / (self.arch.flops_per_cycle(width) * e)
        return cycles

    def compute_cycles(self, plan: KernelPlan) -> float:
        """Issue-limited cycles of the plan, summed over operations."""
        return sum(self._op_cycles(op) for op in plan.ops)

    # -- memory side ---------------------------------------------------------

    def _pool_stall_cycles(self, get, freq_ghz: float) -> float:
        cfg = self.config
        by_level = {lvl.name: lvl for lvl in self.arch.caches}
        served_l2 = get("L1") - get("L2")
        served_l3 = get("L2") - get("DRAM")
        served_dram = get("DRAM")
        cycles = 0.0
        if "L2" in by_level:
            cycles += max(served_l2, 0.0) * by_level["L2"].latency_cycles * cfg.exposure_l2
        if "L3" in by_level:
            cycles += max(served_l3, 0.0) * by_level["L3"].latency_cycles * cfg.exposure_l3
        else:
            served_dram += max(served_l3, 0.0)
        # DRAM latency is fixed in ns: higher clocks burn more cycles on it.
        dram_cycles = self.arch.dram_latency_ns * freq_ghz
        cycles += max(served_dram, 0.0) * dram_cycles * cfg.exposure_dram
        return cycles

    def stall_cycles(self, misses: LevelMisses, freq_ghz: float | None = None) -> float:
        """Cycles lost to cache/DRAM latency for the given miss counts."""
        freq = self.arch.simd_freq_ghz if freq_ghz is None else freq_ghz
        reads = self._pool_stall_cycles(misses.get, freq)
        writes = self._pool_stall_cycles(misses.get_writes, freq)
        return reads + self.config.write_stall_factor * writes

    # -- frequency license --------------------------------------------------------

    def frequency_ghz(self, flops: FlopCounts) -> float:
        """AVX frequency derating: wide-vector-heavy code clocks lower."""
        fractions = flops.fractions()
        native = 64 * self.arch.vector_doubles
        if native > 64 and fractions.get(native, 0.0) > 0.10:
            return self.arch.simd_freq_ghz
        return self.arch.scalar_freq_ghz

    # -- top level -----------------------------------------------------------------

    def evaluate(self, plan: KernelPlan, misses: LevelMisses) -> KernelPerformance:
        """Combine compute and stall cycles into a performance record."""
        flops = plan.flop_counts()
        freq = self.frequency_ghz(flops)
        return KernelPerformance(
            variant=plan.variant,
            order=getattr(plan.spec, "order", 0),
            arch=self.arch.name,
            flops=flops,
            compute_cycles=self.compute_cycles(plan),
            stall_cycles=self.stall_cycles(misses, freq),
            freq_ghz=freq,
            misses=dict(misses.lines),
        )
