"""Fast segment-granular LRU cache model.

The benchmark sweeps need cache behavior for kernels executing tens of
millions of FLOPs; simulating every line access in Python is
impractical.  This model exploits the structure of the STP kernels:
every operation *streams* through contiguous regions of a handful of
named buffers, so residency can be tracked at the granularity of
fixed-size buffer **segments** (default 4 KiB = 64 lines).

Semantics: each operation touches, in order, the segments covered by
each of its buffer accesses.  A segment found in a level is a hit
(zero line misses -- the stream re-reads lines it just brought in); a
segment fault charges one line miss per line in the segment at every
level it missed in.  LRU is maintained per level in segments.

The test-suite cross-validates this model against the exact line-level
simulator of :mod:`repro.machine.cache` on small kernels: miss counts
agree to within a small factor, and -- what the experiments rest on --
the *ordering* of variants and the L2-overflow crossover agree.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.machine.arch import Architecture

__all__ = ["SegmentCacheModel", "LevelMisses"]

#: default segment size: 64 cache lines
DEFAULT_SEGMENT_BYTES = 4096


@dataclass
class LevelMisses:
    """Line misses accumulated per level (+ DRAM), split by access type.

    ``lines`` counts *demand read* misses (they expose latency);
    ``write_lines`` counts write-allocate misses (largely absorbed by
    the store buffers / write-combining, so the performance model
    charges them a small fraction of the latency).
    """

    lines: dict[str, float] = field(default_factory=dict)
    write_lines: dict[str, float] = field(default_factory=dict)

    def add(self, level: str, count: float, write: bool = False) -> None:
        """Accumulate missed lines at one level (reads or writes)."""
        pool = self.write_lines if write else self.lines
        pool[level] = pool.get(level, 0.0) + count

    def get(self, level: str) -> float:
        """Read-miss lines accumulated at one level."""
        return self.lines.get(level, 0.0)

    def get_writes(self, level: str) -> float:
        """Write-miss lines accumulated at one level."""
        return self.write_lines.get(level, 0.0)


class _SegmentLRU:
    def __init__(self, capacity_segments: int):
        self.capacity = max(1, capacity_segments)
        self._segments: OrderedDict = OrderedDict()

    def touch(self, seg: tuple) -> bool:
        if seg in self._segments:
            self._segments.move_to_end(seg)
            return True
        self._segments[seg] = None
        if len(self._segments) > self.capacity:
            self._segments.popitem(last=False)
        return False


class SegmentCacheModel:
    """Segment-granular cache hierarchy driven by plan operations."""

    def __init__(self, arch: Architecture, segment_bytes: int = DEFAULT_SEGMENT_BYTES):
        if segment_bytes % arch.line_bytes:
            raise ValueError("segment size must be a multiple of the line size")
        self.arch = arch
        self.segment_bytes = segment_bytes
        self.lines_per_segment = segment_bytes // arch.line_bytes
        self.levels = [
            (lvl, _SegmentLRU(lvl.capacity_bytes // segment_bytes))
            for lvl in arch.caches
        ]
        self.misses = LevelMisses()
        self.accessed_lines = 0.0

    # -- core ------------------------------------------------------------

    def touch_segment(self, seg: tuple, write: bool = False) -> None:
        """Touch one segment through the hierarchy, charging line misses."""
        self.accessed_lines += self.lines_per_segment
        for lvl, lru in self.levels:
            if lru.touch(seg):
                return
            self.misses.add(lvl.name, self.lines_per_segment, write=write)
        self.misses.add("DRAM", self.lines_per_segment, write=write)

    def touch_buffer(
        self,
        buffer: str,
        nbytes: float,
        buffer_size: int,
        epoch=0,
        write: bool = False,
    ) -> None:
        """Stream through ``nbytes`` of ``buffer`` (capped to its size).

        Repeated passes over a buffer smaller than the requested volume
        (e.g. a GEMM's constant operand) touch the same segments --
        residency makes the repeats hits automatically.
        """
        if nbytes <= 0 or buffer_size <= 0:
            return
        distinct = min(nbytes, buffer_size)
        nsegs = int(-(-distinct // self.segment_bytes))  # ceil
        for i in range(nsegs):
            self.touch_segment((buffer, epoch, i), write=write)

    def run_plan(self, plan, repetitions: int = 3) -> LevelMisses:
        """Simulate ``repetitions`` back-to-back kernel invocations.

        Temporaries and constants keep their addresses across
        invocations (the generated kernels use static buffers), while
        the input/output arrays belong to a different mesh element each
        time -- the streaming component of the real traversal.  The
        returned miss counts are those of the *last* repetition
        (steady state).
        """
        warm = LevelMisses()
        for rep in range(repetitions):
            if rep == repetitions - 1:
                warm = LevelMisses(dict(self.misses.lines), dict(self.misses.write_lines))
            for op in plan.ops:
                for acc in op.accesses():
                    buf = plan.buffers[acc.buffer]
                    epoch = rep if buf.scope in ("input", "output") else 0
                    total = acc.read_bytes + acc.write_bytes
                    # Accesses that write (including read-modify-write
                    # accumulations) drain through the store buffers;
                    # only pure demand reads sit on the critical path.
                    self.touch_buffer(
                        acc.buffer, total, buf.nbytes, epoch=epoch,
                        write=acc.write_bytes > 0.0,
                    )
        return LevelMisses(
            {
                k: self.misses.lines.get(k, 0.0) - warm.lines.get(k, 0.0)
                for k in self.misses.lines
            },
            {
                k: self.misses.write_lines.get(k, 0.0) - warm.write_lines.get(k, 0.0)
                for k in self.misses.write_lines
            },
        )
