"""Roofline analysis of the kernel variants.

The paper's narrative is a roofline story: ADER-DG's "high arithmetic
intensity" should make the kernels compute-bound, but the generic/LoG
variants' memory footprint pushes them under the bandwidth roof; the
SplitCK reformulation restores the intensity by keeping the working set
in cache.  This module quantifies that: operational intensity is
measured against *DRAM* traffic from the cache model (the standard
roofline convention), and the attainable ceiling is
``min(peak, intensity * bandwidth)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codegen.plan import KernelPlan
from repro.machine.arch import Architecture
from repro.machine.segcache import LevelMisses, SegmentCacheModel

__all__ = ["RooflinePoint", "roofline_point", "SKX_DRAM_BW_GBS"]

#: per-core sustainable DRAM bandwidth on the benchmark platform
#: (6-channel DDR4-2666 socket shared by 8 active cores).
SKX_DRAM_BW_GBS = 14.0


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel's position in the roofline plot."""

    variant: str
    order: int
    flops: float
    dram_bytes: float
    peak_gflops: float
    bandwidth_gbs: float

    @property
    def intensity(self) -> float:
        """Operational intensity in FLOP/byte (DRAM traffic)."""
        if self.dram_bytes == 0.0:
            return float("inf")
        return self.flops / self.dram_bytes

    @property
    def ridge_intensity(self) -> float:
        """Intensity at which the two roofs intersect."""
        return self.peak_gflops / self.bandwidth_gbs

    @property
    def ceiling_gflops(self) -> float:
        """Attainable performance under the roofline."""
        return min(self.peak_gflops, self.intensity * self.bandwidth_gbs)

    @property
    def memory_bound(self) -> bool:
        """True left of the ridge: bandwidth, not compute, limits."""
        return self.intensity < self.ridge_intensity


def roofline_point(
    plan: KernelPlan,
    arch: Architecture | None = None,
    bandwidth_gbs: float = SKX_DRAM_BW_GBS,
    repetitions: int = 4,
    misses: LevelMisses | None = None,
) -> RooflinePoint:
    """Place one kernel plan on the roofline.

    DRAM traffic is taken from the segment cache model's steady state
    (reads + write-allocates), so the intensity reflects cache reuse --
    not just the algorithmic byte count.
    """
    arch = plan.spec.architecture if arch is None else arch
    if misses is None:
        model = SegmentCacheModel(arch)
        misses = model.run_plan(plan, repetitions=repetitions)
    dram_lines = misses.get("DRAM") + misses.get_writes("DRAM")
    return RooflinePoint(
        variant=plan.variant,
        order=getattr(plan.spec, "order", 0),
        flops=plan.flop_counts().total,
        dram_bytes=dram_lines * arch.line_bytes,
        peak_gflops=arch.peak_gflops,
        bandwidth_gbs=bandwidth_gbs,
    )
