"""Peano space-filling-curve element ordering.

The Peano framework underlying ExaHyPE traverses its tree-structured
Cartesian meshes along the Peano curve (3-way refinement per
dimension).  We reproduce the curve for grids of ``3^k`` elements per
dimension; other sizes fall back to row-major order.

Construction (recursive): a block of ``3^k`` cells per dimension is
split into 27 sub-blocks visited in x-fastest serpentine order; each
sub-block's curve is mirrored per dimension depending on the parity of
the *other* dimensions' local digits, which makes consecutive cells
face-adjacent -- the locality property the test-suite asserts.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "peano_coordinates",
    "peano_order",
    "peano_segments",
    "is_power_of_three",
]


def is_power_of_three(n: int) -> bool:
    """True if ``n`` is ``3^k`` for some integer ``k >= 0``."""
    if n < 1:
        return False
    while n % 3 == 0:
        n //= 3
    return n == 1


def _serpentine27():
    """The 27 local digits ``(lx, ly, lz)`` in x-fastest serpentine order."""
    for lz in range(3):
        ys = range(3) if lz % 2 == 0 else range(2, -1, -1)
        for ly in ys:
            xs = range(3) if (ly + lz) % 2 == 0 else range(2, -1, -1)
            for lx in xs:
                yield lx, ly, lz


def _generate(level: int, flips: tuple[bool, bool, bool]):
    """Yield cell coordinates of a ``3^level`` block along the Peano curve."""
    if level == 0:
        yield (0, 0, 0)
        return
    s = 3 ** (level - 1)
    for lx, ly, lz in _serpentine27():
        bx = 2 - lx if flips[0] else lx
        by = 2 - ly if flips[1] else ly
        bz = 2 - lz if flips[2] else lz
        child = (
            flips[0] ^ ((ly + lz) % 2 == 1),
            flips[1] ^ ((lx + lz) % 2 == 1),
            flips[2] ^ ((lx + ly) % 2 == 1),
        )
        for x, y, z in _generate(level - 1, child):
            yield (bx * s + x, by * s + y, bz * s + z)


def peano_coordinates(levels: int) -> list[tuple[int, int, int]]:
    """All cells of a ``3^levels`` cube in Peano-curve order."""
    return list(_generate(levels, (False, False, False)))


def peano_order(shape: tuple[int, int, int]) -> np.ndarray:
    """Element ids of a :class:`~repro.mesh.grid.UniformGrid`, SFC-ordered.

    For non-``3^k`` or anisotropic grids the row-major identity order
    is returned (Peano meshes are always 3-refined).
    """
    nx, ny, nz = shape
    n_elem = nx * ny * nz
    if not (nx == ny == nz and is_power_of_three(nx)):
        return np.arange(n_elem, dtype=np.int64)
    levels = 0
    n = nx
    while n > 1:
        n //= 3
        levels += 1
    order = [
        (z * ny + y) * nx + x for x, y, z in peano_coordinates(levels)
    ]
    return np.array(order, dtype=np.int64)


def peano_segments(shape: tuple[int, int, int], num_segments: int) -> list[np.ndarray]:
    """Split the SFC traversal into ``num_segments`` contiguous runs.

    Because consecutive elements along the Peano curve are
    face-adjacent, each returned segment is a connected, compact chunk
    of the mesh -- the property that makes SFC segments good shards for
    parallel sweeps (small cross-segment face count).  Segment sizes
    differ by at most one element; every element appears in exactly one
    segment.  On non-``3^k`` grids the row-major fallback order of
    :func:`peano_order` is split the same way.
    """
    if num_segments < 1:
        raise ValueError("num_segments must be >= 1")
    traversal = peano_order(shape)
    if num_segments > traversal.size:
        raise ValueError(
            f"cannot cut {traversal.size} elements into {num_segments} segments"
        )
    return np.array_split(traversal, num_segments)
