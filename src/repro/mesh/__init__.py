"""Hexahedral mesh infrastructure (the Peano-framework substitute).

* :mod:`repro.mesh.grid` -- uniform Cartesian hexahedral grid with
  periodic/boundary connectivity and per-element node coordinates.
* :mod:`repro.mesh.sfc` -- Peano space-filling-curve element ordering
  (the traversal order of the Peano framework underlying ExaHyPE).
* :mod:`repro.mesh.curvilinear` -- smooth boundary-fitted mesh
  transforms and their per-node metric tensors, providing the 9
  geometry parameters of the paper's m = 21 workload.
"""

from repro.mesh.grid import UniformGrid
from repro.mesh.sfc import peano_order
from repro.mesh.curvilinear import CurvilinearTransform, SinusoidalTransform, IdentityTransform

__all__ = [
    "UniformGrid",
    "peano_order",
    "CurvilinearTransform",
    "SinusoidalTransform",
    "IdentityTransform",
]
