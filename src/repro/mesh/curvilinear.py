"""Curvilinear boundary-fitted mesh transforms.

The paper's seismic benchmark runs on "curvilinear boundary-fitted
meshes ... we store the transformation and its Jacobian in each
vertex" (Sec. VI).  A transform maps reference coordinates ``r`` (the
Cartesian box the solver works on) to physical coordinates ``x``; the
per-node **metric** ``G = dr/dx`` (inverse Jacobian) enters the fluxes
of :class:`~repro.pde.curvilinear.CurvilinearElasticPDE` as the 9
geometry parameters.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["CurvilinearTransform", "IdentityTransform", "SinusoidalTransform"]


class CurvilinearTransform(ABC):
    """A smooth diffeomorphism of the unit box with analytic Jacobian."""

    @abstractmethod
    def physical(self, r: np.ndarray) -> np.ndarray:
        """Map reference points ``(..., 3)`` to physical coordinates."""

    @abstractmethod
    def jacobian(self, r: np.ndarray) -> np.ndarray:
        """``J[a, b] = d x_a / d r_b`` at reference points, ``(..., 3, 3)``."""

    def metric(self, r: np.ndarray) -> np.ndarray:
        """``G = J^{-1}`` -- the 9 per-node geometry parameters."""
        return np.linalg.inv(self.jacobian(r))

    def metric_parameters(self, r: np.ndarray) -> np.ndarray:
        """Metric flattened row-major to the parameter block ``(..., 9)``."""
        g = self.metric(r)
        return g.reshape(g.shape[:-2] + (9,))


class IdentityTransform(CurvilinearTransform):
    """Cartesian mesh: ``x = r``, ``G = I``."""

    def physical(self, r: np.ndarray) -> np.ndarray:
        return np.asarray(r, dtype=float).copy()

    def jacobian(self, r: np.ndarray) -> np.ndarray:
        r = np.asarray(r)
        out = np.zeros(r.shape[:-1] + (3, 3))
        out[...] = np.eye(3)
        return out


class SinusoidalTransform(CurvilinearTransform):
    """Smooth sinusoidal mesh perturbation (a gentle "hill" topography).

    ``x_a = r_a + amplitude * sin(pi r_x) sin(pi r_y) sin(pi r_z)``
    applied to the z coordinate only -- the classic curved-free-surface
    test geometry.  ``amplitude < 1/pi`` keeps the map a diffeomorphism.
    """

    def __init__(self, amplitude: float = 0.1):
        if not 0 <= amplitude < 1.0 / np.pi:
            raise ValueError("amplitude must be in [0, 1/pi) for invertibility")
        self.amplitude = amplitude

    def physical(self, r: np.ndarray) -> np.ndarray:
        r = np.asarray(r, dtype=float)
        out = r.copy()
        out[..., 2] += self.amplitude * (
            np.sin(np.pi * r[..., 0]) * np.sin(np.pi * r[..., 1]) * np.sin(np.pi * r[..., 2])
        )
        return out

    def jacobian(self, r: np.ndarray) -> np.ndarray:
        r = np.asarray(r, dtype=float)
        sx, sy, sz = (np.sin(np.pi * r[..., d]) for d in range(3))
        cx, cy, cz = (np.cos(np.pi * r[..., d]) for d in range(3))
        out = np.zeros(r.shape[:-1] + (3, 3))
        out[...] = np.eye(3)
        a_pi = self.amplitude * np.pi
        out[..., 2, 0] = a_pi * cx * sy * sz
        out[..., 2, 1] = a_pi * sx * cy * sz
        out[..., 2, 2] = 1.0 + a_pi * sx * sy * cz
        return out
