"""Uniform Cartesian hexahedral grid.

ExaHyPE runs on tree-structured Cartesian meshes managed by Peano; the
paper's benchmarks use regular grids, which is what this class
provides: ``nx x ny x nz`` cubic elements over a box, with neighbor
connectivity, periodic or physical boundaries, and per-element node
coordinates for a given quadrature rule.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.basis.operators import DGOperators

__all__ = ["UniformGrid", "BOUNDARY"]

#: neighbor index returned for a physical (non-periodic) boundary face
BOUNDARY = -1


@dataclass(frozen=True)
class UniformGrid:
    """A regular grid of cubic elements.

    Parameters
    ----------
    shape:
        Elements per dimension ``(nx, ny, nz)``.
    extent:
        Physical box size per dimension; elements must come out cubic
        (the kernels assume a single edge length ``h``).
    periodic:
        Periodicity per dimension.
    """

    shape: tuple[int, int, int]
    extent: tuple[float, float, float] = (1.0, 1.0, 1.0)
    periodic: tuple[bool, bool, bool] = (True, True, True)

    def __post_init__(self) -> None:
        if any(n < 1 for n in self.shape):
            raise ValueError("grid needs at least one element per dimension")
        hs = {self.extent[d] / self.shape[d] for d in range(3)}
        if max(hs) - min(hs) > 1e-12 * max(hs):
            raise ValueError("elements must be cubic (equal h in all dimensions)")

    @property
    def n_elements(self) -> int:
        """Total elements in the grid."""
        nx, ny, nz = self.shape
        return nx * ny * nz

    @property
    def h(self) -> float:
        """Physical element edge length."""
        return self.extent[0] / self.shape[0]

    # -- indexing -----------------------------------------------------------

    def index(self, ex: int, ey: int, ez: int) -> int:
        """Flat element id from per-dimension indices."""
        nx, ny, _ = self.shape
        return (ez * ny + ey) * nx + ex

    def coordinates(self, e: int) -> tuple[int, int, int]:
        """Per-dimension indices from flat element id."""
        nx, ny, _ = self.shape
        ex = e % nx
        ey = (e // nx) % ny
        ez = e // (nx * ny)
        return ex, ey, ez

    def neighbor(self, e: int, d: int, side: int) -> int:
        """Neighbor element across face (``d``, ``side``); BOUNDARY if none.

        ``side = 0`` is the low-coordinate face, ``side = 1`` the high
        one.
        """
        idx = list(self.coordinates(e))
        idx[d] += 1 if side == 1 else -1
        if 0 <= idx[d] < self.shape[d]:
            return self.index(*idx)
        if self.periodic[d]:
            idx[d] %= self.shape[d]
            return self.index(*idx)
        return BOUNDARY

    # -- geometry ----------------------------------------------------------------

    def origin(self, e: int) -> np.ndarray:
        """Physical coordinates of the element's low corner."""
        idx = self.coordinates(e)
        return np.array([idx[d] * self.extent[d] / self.shape[d] for d in range(3)])

    def node_coordinates(self, e: int, ops: DGOperators) -> np.ndarray:
        """Physical coordinates of all quadrature nodes, ``(N, N, N, 3)``.

        Array index order is ``(z, y, x)``, matching the kernels'
        canonical tensor layout.
        """
        h = self.h
        org = self.origin(e)
        nodes = ops.nodes
        z = org[2] + h * nodes
        y = org[1] + h * nodes
        x = org[0] + h * nodes
        out = np.zeros((len(nodes),) * 3 + (3,))
        out[..., 0] = x[None, None, :]
        out[..., 1] = y[None, :, None]
        out[..., 2] = z[:, None, None]
        return out

    def locate(self, point: np.ndarray) -> tuple[int, np.ndarray]:
        """Element containing ``point`` and the reference coordinates in it."""
        point = np.asarray(point, dtype=float)
        idx = []
        ref = np.zeros(3)
        for d in range(3):
            h_d = self.extent[d] / self.shape[d]
            i = int(np.clip(point[d] / h_d, 0, self.shape[d] - 1e-9))
            i = min(i, self.shape[d] - 1)
            idx.append(i)
            ref[d] = point[d] / h_d - i
        if np.any(ref < -1e-12) or np.any(ref > 1 + 1e-12):
            raise ValueError(f"point {point} outside the grid")
        return self.index(*idx), np.clip(ref, 0.0, 1.0)
