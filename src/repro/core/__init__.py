"""The paper's primary contribution: the linear ADER-DG STP kernels.

* :mod:`repro.core.spec` -- the kernel specification (order, number of
  quantities, dimension, target architecture), the analog of ExaHyPE's
  specification file entries that the Toolkit feeds the Kernel
  Generator.
* :mod:`repro.core.layouts` -- AoS / SoA / AoSoA tensor layouts with
  SIMD zero-padding (Secs. III-A and V).
* :mod:`repro.core.variants` -- the four Space-Time-Predictor kernel
  variants: ``generic``, ``log``, ``splitck``, ``aosoa``.
* :mod:`repro.core.reference` -- dense-operator Cauchy-Kowalewsky
  oracle used to validate every variant.
* :mod:`repro.core.corrector` / :mod:`repro.core.face` -- the corrector
  step and face projections completing the ADER-DG update (eq. 5).
"""

from repro.core.layouts import Layout, TensorLayout
from repro.core.spec import KernelSpec

__all__ = ["KernelSpec", "Layout", "TensorLayout"]
