"""Tensor data layouts: AoS, SoA and the hybrid AoSoA (paper Secs. III-A, V).

ExaHyPE stores the per-element degrees of freedom as a 4-D tensor over
``(z, y, x, quantity)``.  The layout decides which index runs fastest
in memory:

* **AoS** ``A[k, j, i, s]`` -- quantity fastest.  Matches the GEMM
  kernels (the quantity dimension takes part in every contraction) and
  ExaHyPE's default point-wise user-function API.
* **SoA** ``A[s, k, j, i]`` -- space fastest.  What vectorized user
  functions want.
* **AoSoA** ``A[k, j, s, i]`` -- the paper's hybrid: the quantity
  dimension sits *between* the spatial dimensions, so GEMMs still see a
  pseudo-AoS layout while any ``(k, j)`` line is a ready-made SoA
  subarray for a vectorized user function (Sec. V-C).

In every layout the fastest-running dimension is zero-padded to the
SIMD vector length so that each slice stays aligned (Sec. III-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

__all__ = ["Layout", "TensorLayout", "ResidentBlockState"]


class Layout(str, Enum):
    """The three data layouts of paper Sec. V: AoS, SoA and AoSoA."""

    AOS = "aos"
    SOA = "soa"
    AOSOA = "aosoa"


def _pad_to(n: int, width: int) -> int:
    return ((n + width - 1) // width) * width


@dataclass(frozen=True)
class TensorLayout:
    """Describes the padded in-memory layout of one space-quantity tensor.

    Parameters
    ----------
    kind:
        One of :class:`Layout`.
    space_shape:
        Spatial extents, slowest first -- e.g. ``(N, N, N)`` for
        ``(z, y, x)``.
    nquantities:
        ``m``, the number of quantities per node.
    vector_doubles:
        SIMD width in doubles used for padding (8 for AVX-512, 4 for
        AVX2, 1 for scalar code).
    """

    kind: Layout
    space_shape: tuple[int, ...]
    nquantities: int
    vector_doubles: int = 1

    def __post_init__(self) -> None:
        if len(self.space_shape) < 1:
            raise ValueError("need at least one spatial dimension")
        if any(n < 1 for n in self.space_shape):
            raise ValueError("spatial extents must be positive")
        if self.nquantities < 1:
            raise ValueError("nquantities must be positive")
        if self.vector_doubles < 1:
            raise ValueError("vector_doubles must be positive")

    # -- shapes ----------------------------------------------------------

    @property
    def logical_shape(self) -> tuple[int, ...]:
        """Canonical unpadded shape ``(*space, m)`` (z, y, x, q order)."""
        return (*self.space_shape, self.nquantities)

    @property
    def mpad(self) -> int:
        """Quantity count padded to the vector width (AoS leading dim)."""
        return _pad_to(self.nquantities, self.vector_doubles)

    @property
    def xpad(self) -> int:
        """Innermost spatial extent padded to the vector width (AoSoA)."""
        return _pad_to(self.space_shape[-1], self.vector_doubles)

    @property
    def padded_shape(self) -> tuple[int, ...]:
        """In-memory array shape (C order, fastest dimension last)."""
        if self.kind is Layout.AOS:
            return (*self.space_shape, self.mpad)
        if self.kind is Layout.SOA:
            return (self.nquantities, *self.space_shape[:-1], self.xpad)
        # AoSoA: quantity dimension between y and x.
        return (*self.space_shape[:-1], self.nquantities, self.xpad)

    @property
    def nbytes(self) -> int:
        """Padded size in bytes (float64)."""
        return 8 * int(np.prod(self.padded_shape))

    @property
    def logical_doubles(self) -> int:
        """Doubles in the unpadded (logical) tensor."""
        return int(np.prod(self.logical_shape))

    @property
    def padding_overhead(self) -> float:
        """Fraction of storage wasted on zero-padding."""
        return self.nbytes / (8 * self.logical_doubles) - 1.0

    # -- array construction / conversion ----------------------------------

    def empty(self, dtype=np.float64) -> np.ndarray:
        """Allocate a zero-initialized padded tensor."""
        return np.zeros(self.padded_shape, dtype=dtype)

    def pack(self, canonical: np.ndarray) -> np.ndarray:
        """Pack a canonical ``(*space, m)`` array into this layout.

        Padding lanes are zero-filled, matching the Kernel Generator's
        zero-padding contract (padded lanes must hold zeros so the extra
        FLOPs they absorb are harmless).
        """
        canonical = np.asarray(canonical, dtype=np.float64)
        if canonical.shape != self.logical_shape:
            raise ValueError(
                f"expected canonical shape {self.logical_shape}, got {canonical.shape}"
            )
        out = self.empty()
        if self.kind is Layout.AOS:
            out[..., : self.nquantities] = canonical
        elif self.kind is Layout.SOA:
            moved = np.moveaxis(canonical, -1, 0)  # (m, z, y, x)
            out[..., : self.space_shape[-1]] = moved
        else:  # AOSOA: (z, y, x, m) -> (z, y, m, x)
            swapped = np.swapaxes(canonical, -1, -2)
            out[..., : self.space_shape[-1]] = swapped
        return out

    def unpack(self, padded: np.ndarray) -> np.ndarray:
        """Extract the canonical ``(*space, m)`` array from this layout."""
        padded = np.asarray(padded)
        if padded.shape != self.padded_shape:
            raise ValueError(
                f"expected padded shape {self.padded_shape}, got {padded.shape}"
            )
        if self.kind is Layout.AOS:
            return padded[..., : self.nquantities].copy()
        if self.kind is Layout.SOA:
            trimmed = padded[..., : self.space_shape[-1]]
            return np.moveaxis(trimmed, 0, -1).copy()
        trimmed = padded[..., : self.space_shape[-1]]
        return np.swapaxes(trimmed, -1, -2).copy()

    # -- element-block conversion (batched STP driver) --------------------

    def pack_block(self, stack: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Pack a ``(B, *space, m)`` element block into ``(B, *padded)``.

        The block form of :meth:`pack`: one leading element axis, the
        per-element layout unchanged.  ``out`` may be a preallocated
        (scratch-arena) array; padding lanes are zero-filled either way,
        honoring the zero-padding contract.
        """
        stack = np.asarray(stack, dtype=np.float64)
        if stack.ndim != len(self.logical_shape) + 1 or stack.shape[1:] != self.logical_shape:
            raise ValueError(
                f"expected block shape (B, {', '.join(map(str, self.logical_shape))}), "
                f"got {stack.shape}"
            )
        b = stack.shape[0]
        if out is None:
            out = np.zeros((b,) + self.padded_shape)
        elif out.shape != (b,) + self.padded_shape:
            raise ValueError(
                f"out must be {(b,) + self.padded_shape}, got {out.shape}"
            )
        if self.kind is Layout.AOS:
            out[..., : self.nquantities] = stack
            out[..., self.nquantities :] = 0.0
        elif self.kind is Layout.SOA:
            out[..., : self.space_shape[-1]] = np.moveaxis(stack, -1, 1)
            out[..., self.space_shape[-1] :] = 0.0
        else:  # AOSOA: (B, z, y, x, m) -> (B, z, y, m, x)
            out[..., : self.space_shape[-1]] = np.swapaxes(stack, -1, -2)
            out[..., self.space_shape[-1] :] = 0.0
        return out

    def unpack_block(
        self, padded: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Extract the canonical ``(B, *space, m)`` block from this layout.

        ``out`` may be a preallocated ``(B, *space, m)`` destination
        (the resident-state egress path writes straight into the
        canonical state array instead of allocating).
        """
        padded = np.asarray(padded)
        if padded.ndim != len(self.padded_shape) + 1 or padded.shape[1:] != self.padded_shape:
            raise ValueError(
                f"expected block shape (B, {', '.join(map(str, self.padded_shape))}), "
                f"got {padded.shape}"
            )
        if self.kind is Layout.AOS:
            canonical = padded[..., : self.nquantities]
        elif self.kind is Layout.SOA:
            trimmed = padded[..., : self.space_shape[-1]]
            canonical = np.moveaxis(trimmed, 1, -1)
        else:
            trimmed = padded[..., : self.space_shape[-1]]
            canonical = np.swapaxes(trimmed, -1, -2)
        if out is None:
            return canonical.copy()
        out[...] = canonical
        return out

    # -- SoA line extraction (the AoSoA selling point, Sec. V-C) ----------

    def soa_line(self, padded: np.ndarray, index: tuple[int, ...]) -> np.ndarray:
        """Return the ``(m, xpad)`` SoA subarray at spatial line ``index``.

        ``index`` addresses the slow spatial dimensions (e.g. ``(k, j)``
        in 3-D).  Only valid for the AoSoA layout, where this is a
        zero-copy view -- exactly the property that lets the user
        functions vectorize without transposes.
        """
        if self.kind is not Layout.AOSOA:
            raise ValueError("soa_line is only defined for the AoSoA layout")
        if len(index) != len(self.space_shape) - 1:
            raise ValueError(
                f"index must address {len(self.space_shape) - 1} slow dimensions"
            )
        view = padded[index]
        assert view.shape == (self.nquantities, self.xpad)
        return view

    @staticmethod
    def for_spec(kind: Layout, spec) -> "TensorLayout":
        """Build the layout for a :class:`~repro.core.spec.KernelSpec`."""
        return TensorLayout(
            kind=kind,
            space_shape=(spec.order,) * spec.dim,
            nquantities=spec.nquantities,
            vector_doubles=spec.architecture.vector_doubles,
        )


class ResidentBlockState:
    """A persistent, traversal-ordered padded state stack (paper Sec. IV).

    The fused compiled step keeps the element states *block-resident*
    for the whole run: one padded stack whose row ``t`` holds the state
    of element ``order[t]`` in the configured :class:`TensorLayout`.
    ``pack_block``/``unpack_block`` then run only on **ingest** (a new
    initial condition, an external state rewrite) and **egress** (a
    receiver read, output, cache invalidation) instead of twice per
    block per step -- the dirty-tracking below decides which side holds
    the truth.

    Two validity flags express the lifecycle:

    * ``resident_valid`` -- the stack reflects the latest step.
    * ``canonical_valid`` -- the element-indexed canonical array does.

    After a fused step only the stack is valid; after an ingest only the
    canonical array is; ``sync_*`` re-establishes the other side on
    demand and counts the traffic (``pack_calls``/``pack_bytes`` and
    the ``unpack_*`` twins) so :class:`~repro.codegen.executor.
    ExecutorStats` can report zero per-step traffic on the steady path.
    """

    def __init__(self, layout: TensorLayout, order: np.ndarray,
                 block_size: int):
        if block_size < 1:
            raise ValueError("block_size must be positive")
        self.layout = layout
        self.order = np.asarray(order, dtype=np.int64).copy()
        self.block_size = int(block_size)
        nel = self.order.size
        self.n_blocks = (nel + self.block_size - 1) // self.block_size
        #: padded stack rows (incl. zero tail rows of the last block)
        self.n_rows = self.n_blocks * self.block_size
        self.stack = np.zeros((self.n_rows,) + layout.padded_shape)
        self.resident_valid = False
        self.canonical_valid = True
        self.pack_calls = 0
        self.unpack_calls = 0
        self.pack_bytes = 0
        self.unpack_bytes = 0
        self.peek_rows = 0
        self.peek_bytes = 0
        #: lazily built element id -> stack row (traversal position)
        self._row_of: dict[int, int] | None = None

    # -- traffic accounting -----------------------------------------------

    @property
    def row_nbytes(self) -> int:
        """Padded bytes of one element row."""
        return self.layout.nbytes

    def step_traffic_bytes(self) -> int:
        """Bytes one pack + one unpack of the whole stack would move.

        The per-step traffic the resident stack *avoids* relative to the
        phase-wise path (which packs and unpacks every block each step).
        """
        return 2 * self.order.size * self.row_nbytes

    # -- lifecycle ---------------------------------------------------------

    def mark_stepped(self) -> None:
        """A fused step updated the stack: canonical is now stale."""
        self.resident_valid = True
        self.canonical_valid = False

    def invalidate_resident(self) -> None:
        """The canonical array was rewritten externally: stack is stale."""
        self.resident_valid = False
        self.canonical_valid = True

    def sync_resident(self, canonical: np.ndarray) -> bool:
        """Ingest: pack ``canonical[order]`` into the stack if stale.

        Returns whether a pack actually ran (``False`` on the steady
        path, where the stack already holds the truth).
        """
        if self.resident_valid:
            return False
        nel = self.order.size
        self.layout.pack_block(canonical[self.order],
                               out=self.stack[:nel])
        if self.n_rows > nel:
            self.stack[nel:] = 0.0
        self.resident_valid = True
        self.pack_calls += 1
        self.pack_bytes += nel * self.row_nbytes
        return True

    def sync_canonical(self, canonical: np.ndarray) -> bool:
        """Egress: unpack the stack back into ``canonical`` if stale.

        Returns whether an unpack actually ran.
        """
        if self.canonical_valid:
            return False
        nel = self.order.size
        canonical[self.order] = self.layout.unpack_block(self.stack[:nel])
        self.canonical_valid = True
        self.unpack_calls += 1
        self.unpack_bytes += nel * self.row_nbytes
        return True

    def peek_element(self, element: int) -> np.ndarray:
        """Row-level egress: the current state of one element.

        Unpacks a *single* stack row (a receiver sample, a probe)
        instead of syncing the whole canonical array, so per-step
        observers do not re-introduce the full pack/unpack round-trip
        the resident stack exists to avoid.  Counted separately
        (``peek_rows``/``peek_bytes``); the full-stack
        ``pack_calls``/``unpack_calls`` stay zero on the steady path.

        Only meaningful while ``resident_valid`` -- callers should read
        the canonical array directly when it holds the truth.
        """
        if not self.resident_valid:
            raise ValueError(
                "peek_element on a stale stack: the canonical array "
                "holds the truth -- read it directly"
            )
        if self._row_of is None:
            self._row_of = {
                int(e): row for row, e in enumerate(self.order)
            }
        row = self._row_of[int(element)]
        out = self.layout.unpack_block(self.stack[row:row + 1])[0]
        self.peek_rows += 1
        self.peek_bytes += self.row_nbytes
        return out
