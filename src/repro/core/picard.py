"""Nonlinear space-time predictor via Picard iteration.

ExaHyPE's non-linear solver class computes its Space-Time Predictor as
a space-time DG solution obtained by fixed-point (Picard) iteration
(paper Sec. I: users choose "between a scheme for a linear or a
non-linear PDE system"; the Cauchy-Kowalewsky kernels of this
reproduction are the *linear* path).  This module implements the
non-linear path as an extension:

With time collocation nodes ``tau_j`` (the same Gauss points as in
space) the integral form of the element-local ODE
``q_t = R(q) := -(1/h) sum_d d/dx_d F_d(q) (+ NCP, + source)`` is

.. math::

    p_j = q_0 + \\int_0^{tau_j dt} R(p(t)) dt
        = q_0 + dt \\sum_l K_{jl} R(p_l),

where ``K`` integrates the time-interpolant exactly.  Iterating this
map converges geometrically for CFL-bounded ``dt``; for a *linear* PDE
the fixed point coincides with the Cauchy-Kowalewsky solution up to
the shared truncation order -- the cross-check the test-suite runs.
"""

from __future__ import annotations

from math import factorial

import numpy as np

from repro.basis.operators import cached_operators
from repro.core.spec import KernelSpec
from repro.core.variants.base import AXIS_OF_DIM, ElementSource, STPResult
from repro.core.variants.common import derive_canonical
from repro.pde.base import LinearPDE

__all__ = ["PicardSTP", "time_integration_matrix"]


def time_integration_matrix(nodes: np.ndarray) -> np.ndarray:
    """``K[j, l] = integral_0^{x_j} phi_l(x) dx`` on the unit interval.

    Built from the monomial representation of the Lagrange basis
    (adequately conditioned for the orders the paper sweeps).
    """
    n = len(nodes)
    vandermonde = np.vander(nodes, n, increasing=True)  # V[i, p] = x_i^p
    coeffs = np.linalg.inv(vandermonde)  # coeffs[p, l]: phi_l = sum_p c x^p
    powers = np.arange(1, n + 1)
    anti = coeffs / powers[:, None]  # antiderivative coefficients
    # K[j, l] = sum_p anti[p, l] * x_j^{p+1}
    xj_pow = nodes[:, None] ** powers[None, :]  # (n, n): x_j^{p+1}
    return xj_pow @ anti


class PicardSTP:
    """Space-time predictor for (possibly) nonlinear systems.

    Mirrors the :class:`~repro.core.variants.base.STPKernel` interface:
    ``predictor(q, dt, h, source)`` returns an
    :class:`~repro.core.variants.base.STPResult`.
    """

    variant = "picard"

    def __init__(self, spec: KernelSpec, pde: LinearPDE,
                 max_iterations: int | None = None, tolerance: float = 1e-13):
        if spec.dim != 3:
            raise ValueError("the Picard predictor is implemented for d = 3")
        if pde.nquantities != spec.nquantities:
            raise ValueError("PDE and spec disagree on the number of quantities")
        self.spec = spec
        self.pde = pde
        self.ops = cached_operators(spec.order, spec.quadrature)
        self.kmat = time_integration_matrix(self.ops.nodes)
        # ExaHyPE iterates order+1 times; we allow early exit on tolerance.
        self.max_iterations = (spec.order + 1) if max_iterations is None else max_iterations
        self.tolerance = tolerance
        self.last_iterations = 0
        self.last_residual = np.inf

    # -- right-hand side -----------------------------------------------------

    def _rhs(self, state: np.ndarray, h: float) -> np.ndarray:
        """``R(q) = -(1/h) sum_d D_d F_d(q) (+ NCP)`` for one time slice."""
        deriv = self.ops.derivative / h
        out = np.zeros_like(state)
        for d in range(3):
            out -= derive_canonical(self.pde.flux(state, d), deriv, d)
            if self.pde.has_ncp:
                grad = derive_canonical(state, deriv, d)
                out[..., : self.pde.nvar] -= self.pde.ncp(grad, state, d)[
                    ..., : self.pde.nvar
                ]
        return out

    # -- the predictor -----------------------------------------------------------

    def predictor(
        self,
        q: np.ndarray,
        dt: float,
        h: float,
        source: ElementSource | None = None,
        recorder=None,
    ) -> STPResult:
        """Fixed-point (Picard) space-time predictor for one element."""
        del recorder  # the Picard kernel is outside the paper's plan study
        n, m = self.spec.order, self.spec.nquantities
        if q.shape != (n, n, n, m):
            raise ValueError(f"expected element state {(n, n, n, m)}, got {q.shape}")
        nvar = self.pde.nvar
        params = q[..., nvar:]

        # space-time unknowns p[j] at time nodes tau_j * dt
        p = np.broadcast_to(q, (n,) + q.shape).copy()
        source_slices = None
        if source is not None:
            # s(t) interpolated at the time nodes via its Taylor series;
            # co-located sources (MultiElementSource) superpose linearly
            taus = self.ops.nodes * dt
            source_slices = 0.0
            for part in source.parts:
                derivs = part.derivatives
                svals = np.zeros(n)
                for j, tau in enumerate(taus):
                    svals[j] = sum(
                        derivs[o] * tau**o / factorial(o)
                        for o in range(len(derivs))
                    )
                source_slices = source_slices + (
                    part.projection[..., None] * part.amplitude
                )[None, ...] * svals[:, None, None, None, None]

        rhs = np.empty_like(p)
        for iteration in range(self.max_iterations):
            for j in range(n):
                rhs[j] = self._rhs(p[j], h)
                if source_slices is not None:
                    rhs[j] += source_slices[j]
            p_new = q[None, ...] + dt * np.tensordot(self.kmat, rhs, axes=([1], [0]))
            p_new[..., nvar:] = params
            self.last_residual = float(np.abs(p_new - p).max())
            p = p_new
            self.last_iterations = iteration + 1
            if self.last_residual < self.tolerance:
                break

        # time-integrated outputs (quadrature in time)
        w = self.ops.weights
        qavg = dt * np.tensordot(w, p, axes=([0], [0]))
        qavg[..., nvar:] = dt * params
        vavg = np.zeros((3,) + q.shape)
        deriv = self.ops.derivative / h
        for d in range(3):
            for j in range(n):
                contrib = -derive_canonical(self.pde.flux(p[j], d), deriv, d)
                if self.pde.has_ncp:
                    grad = derive_canonical(p[j], deriv, d)
                    contrib[..., :nvar] -= self.pde.ncp(grad, p[j], d)[..., :nvar]
                vavg[d] += dt * w[j] * contrib
        savg = None
        if source_slices is not None:
            savg = dt * np.tensordot(w, source_slices, axes=([0], [0]))

        result = STPResult(qavg=qavg, vavg=vavg, savg=savg)
        left, right = self.ops.face_left, self.ops.face_right
        for d in range(3):
            axis = AXIS_OF_DIM[d]
            result.qface[(d, 0)] = np.tensordot(left, qavg, axes=([0], [axis]))
            result.qface[(d, 1)] = np.tensordot(right, qavg, axes=([0], [axis]))
        return result
