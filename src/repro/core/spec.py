"""Kernel specification.

A :class:`KernelSpec` bundles everything the Kernel Generator needs to
tailor a kernel toward application and architecture (paper Sec. II-D):
the polynomial order, the number of PDE quantities, the spatial
dimension and the SIMD target.  It is shared by the numeric kernels,
the plan generator and the machine model, so all three agree on shapes
and padding.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.machine.arch import Architecture, get_architecture

__all__ = ["KernelSpec"]

#: Names of the four STP kernel variants, in the paper's order.
VARIANTS: tuple[str, ...] = ("generic", "log", "splitck", "aosoa")


@dataclass(frozen=True)
class KernelSpec:
    """Specification of one generated STP kernel.

    Parameters
    ----------
    order:
        ``N``, the number of quadrature nodes per dimension; the ADER-DG
        scheme then converges at order ``N`` (paper Sec. II-A).  The
        benchmarks sweep ``N = 4 .. 11``.
    nvar:
        Number of evolved PDE quantities (9 for the elastic wave
        equations in first-order form).
    nparam:
        Number of static material/geometry parameters stored alongside
        the evolved quantities at every node (12 for the paper's
        curvilinear elastic setup: 3 material + 9 transformation
        entries), giving ``m = nvar + nparam = 21``.
    dim:
        Spatial dimension ``d`` (2 or 3).
    arch:
        Kernel-Generator architecture name (``noarch``, ``hsw``,
        ``skx``, ...).
    quadrature:
        Nodal basis family, ``gauss_legendre`` or ``gauss_lobatto``.
    """

    order: int
    nvar: int
    nparam: int = 0
    dim: int = 3
    arch: str = "skx"
    quadrature: str = "gauss_legendre"

    def __post_init__(self) -> None:
        if self.order < 2:
            raise ValueError("order must be >= 2")
        if self.nvar < 1:
            raise ValueError("nvar must be >= 1")
        if self.nparam < 0:
            raise ValueError("nparam must be >= 0")
        if self.dim not in (2, 3):
            raise ValueError("dim must be 2 or 3")
        get_architecture(self.arch)  # validate eagerly

    # -- sizes -----------------------------------------------------------

    @property
    def n(self) -> int:
        """Nodes per dimension (alias of :attr:`order`)."""
        return self.order

    @property
    def nquantities(self) -> int:
        """``m``: evolved quantities plus static parameters per node."""
        return self.nvar + self.nparam

    @property
    def nodes_per_element(self) -> int:
        """Quadrature nodes per element, ``N^d``."""
        return self.order**self.dim

    @property
    def architecture(self) -> Architecture:
        """The resolved :class:`~repro.machine.arch.Architecture`."""
        return get_architecture(self.arch)

    @property
    def mpad(self) -> int:
        """Quantity count padded to the SIMD width (AoS leading dim)."""
        return self.architecture.pad_doubles(self.nquantities)

    @property
    def npad(self) -> int:
        """Nodes-per-dim padded to the SIMD width (AoSoA leading dim)."""
        return self.architecture.pad_doubles(self.order)

    @property
    def aos_padding_overhead(self) -> float:
        """Fraction of extra lanes introduced by AoS quantity padding."""
        return self.mpad / self.nquantities - 1.0

    @property
    def aosoa_padding_overhead(self) -> float:
        """Fraction of extra lanes introduced by AoSoA x-padding.

        The paper notes (Sec. V-A) that on AVX-512 order 8 is a sweet
        spot (no padding) while order 9 pays a particularly large
        overhead (9 -> 16 lanes).
        """
        return self.npad / self.order - 1.0

    def with_arch(self, arch: str) -> "KernelSpec":
        """Same kernel retargeted to another architecture."""
        return replace(self, arch=arch)

    def with_order(self, order: int) -> "KernelSpec":
        """A copy of this spec at a different polynomial order."""
        return replace(self, order=order)
