"""The corrector step of the ADER-DG scheme (paper eq. 5).

Completes one time step of an element from the predictor outputs:

.. math::

    q^{n+1} = q^n + \\sum_d \\overline{V_d q} + \\bar S
        - \\frac{1}{h} \\sum_{faces} \\operatorname{lift}_f
          \\left( \\bar F^*_f - F_n(\\bar q_f) \\right)

All face quantities are time-integrated, which is valid because the
numerical flux is linear (the transformation from eq. 2 to eq. 5).
The lifting uses the boundary interpolation vectors over the diagonal
mass matrix -- the strong-form DG-SEM surface term.

The corrector is a generic (non-generated) kernel in ExaHyPE; its
recorded plan therefore attributes scalar FLOPs, which is what keeps
even the AoSoA application at a few percent scalar in Fig. 9.
"""

from __future__ import annotations

import numpy as np

from repro.basis.operators import cached_operators
from repro.codegen.plan import BufferAccess
from repro.core.spec import KernelSpec
from repro.core.variants.base import AXIS_OF_DIM, STPResult
from repro.machine.isa import FlopCounts
from repro.pde.base import LinearPDE

__all__ = [
    "corrector_update",
    "corrector_all",
    "element_face_params",
    "record_corrector_plan",
]


def corrector_update(
    q: np.ndarray,
    result: STPResult,
    numerical_fluxes: dict,
    h: float,
    pde: LinearPDE,
    ops=None,
) -> np.ndarray:
    """Apply the corrector to one element.

    Parameters
    ----------
    q:
        Element state at ``t_n``, canonical ``(N, N, N, m)``.
    result:
        The element's predictor outputs.
    numerical_fluxes:
        ``(d, side) -> (N, N, m)`` time-integrated numerical fluxes
        ``F*`` on the six faces (computed by the solver from both
        sides' ``qface``).
    h:
        Physical element edge length.
    """
    n = q.shape[0]
    if ops is None:
        ops = cached_operators(n)
    nvar = pde.nvar
    qnew = q + result.vavg_total
    if result.savg is not None:
        qnew += result.savg
    lift = {0: ops.lifting_left(), 1: ops.lifting_right()}

    for d in range(3):
        axis = AXIS_OF_DIM[d]
        for side in (0, 1):
            fstar = numerical_fluxes[(d, side)]
            fself = pde.flux(
                pde.embed(
                    result.qface[(d, side)][..., :nvar],
                    _face_params(q, d, side, pde),
                ),
                d,
            )
            jump = fstar - fself  # (N, N, m)
            sign = 1.0 if side == 1 else -1.0
            # lift into the element along `axis`
            shape = [1, 1, 1, 1]
            shape[axis] = n
            lifted = lift[side].reshape(shape) * np.expand_dims(jump, axis)
            qnew -= (sign / h) * lifted
    return qnew


def corrector_all(
    q: np.ndarray,
    vavg: np.ndarray,
    savg: dict,
    qface: np.ndarray,
    fstar: np.ndarray,
    face_params: np.ndarray | None,
    h: float,
    pde: LinearPDE,
    ops,
    out: np.ndarray | None = None,
    arena=None,
) -> np.ndarray:
    """Apply the corrector to a whole element block at once (eq. 5).

    The block twin of :func:`corrector_update`: the same operations in
    the same order with a leading block axis, so results are bitwise
    identical to the per-element loop.

    Parameters
    ----------
    q:
        Element states at ``t_n``, ``(b, N, N, N, m)``.
    vavg:
        Summed time-integrated volume contributions ``V qbar`` per
        element, ``(b, N, N, N, m)``.
    savg:
        Sparse ``{block row: (N, N, N, m)}`` time-integrated source
        terms -- only rows that actually carry a source (matching the
        legacy path, which skips the add for sourceless elements).
    qface:
        Predictor face traces, ``(b, 3, 2, N, N, m)``.
    fstar:
        Numerical fluxes ``F*``, ``(b, 3, 2, N, N, m)`` (gathered from
        the face sweep).
    face_params:
        Static face-node parameters ``(b, 3, 2, N, N, nparam)`` from
        :func:`element_face_params`, or ``None`` for parameter-free
        PDEs.
    out:
        Optional preallocated ``(b, N, N, N, m)`` output (a scratch
        arena block); a new array is allocated when omitted.
    arena:
        Optional :class:`~repro.core.variants.batched.ScratchArena`
        supplying the ``jump``/``lifted`` temporaries, so the six-face
        loop allocates nothing in steady state.  Results are bitwise
        independent of whether an arena is passed (same operations,
        same order, only the buffer ownership changes).
    """
    n = q.shape[1]
    nvar = pde.nvar
    b, m = q.shape[0], q.shape[-1]
    # pragma: allow(HP001): documented fallback when no out/arena given
    qnew = out if out is not None else np.empty_like(q)
    np.add(q, vavg, out=qnew)
    for row, savg_row in savg.items():
        qnew[row] += savg_row
    lift = {0: ops.lifting_left(), 1: ops.lifting_right()}
    if arena is not None:
        jump = arena.take("corrector_jump", (b, n, n, m))
        lifted = arena.take("corrector_lifted", (b, n, n, n, m))
    else:
        # pragma: allow(HP001): documented fallback when no arena given
        jump = np.empty((b, n, n, m))
        # pragma: allow(HP001): documented fallback when no arena given
        lifted = np.empty((b, n, n, n, m))

    for d in range(3):
        axis = 1 + AXIS_OF_DIM[d]  # leading block axis shifts by one
        for side in (0, 1):
            params = None if face_params is None else face_params[:, d, side]
            fself = pde.flux(
                pde.embed(qface[:, d, side, ..., :nvar], params), d
            )
            np.subtract(fstar[:, d, side], fself, out=jump)  # (b, N, N, m)
            sign = 1.0 if side == 1 else -1.0
            shape = [1, 1, 1, 1, 1]
            shape[axis] = n
            np.multiply(
                lift[side].reshape(shape), np.expand_dims(jump, axis),
                out=lifted,
            )
            # scalar multiplication commutes bitwise, so scaling the
            # lifted term in place matches `qnew -= (sign/h) * lifted`
            np.multiply(lifted, sign / h, out=lifted)
            np.subtract(qnew, lifted, out=qnew)
    return qnew


def element_face_params(states: np.ndarray, pde: LinearPDE) -> np.ndarray | None:
    """Face-node parameters of every element, ``(E, 3, 2, N, N, nparam)``.

    The vectorized form of :func:`_face_params` over the whole mesh:
    six layer slices instead of ``6 E`` per-face slices.  Parameters
    are static, so callers cache the result for the run.
    """
    if pde.nparam == 0:
        return None
    n_elements, n = states.shape[0], states.shape[1]
    out = np.empty((n_elements, 3, 2, n, n, pde.nparam))
    for d in range(3):
        axis = 1 + AXIS_OF_DIM[d]
        index = [slice(None)] * 5
        index[axis] = 0
        out[:, d, 0] = states[tuple(index)][..., pde.nvar :]
        index[axis] = -1
        out[:, d, 1] = states[tuple(index)][..., pde.nvar :]
    return out


def _face_params(q: np.ndarray, d: int, side: int, pde: LinearPDE) -> np.ndarray | None:
    """Parameters at the face nodes (taken from the adjacent node layer).

    Parameters are cell-wise smooth in our scenarios; using the closest
    node layer avoids interpolating (possibly discontinuous) material
    data.
    """
    if pde.nparam == 0:
        return None
    axis = AXIS_OF_DIM[d]
    index = [slice(None)] * 4
    index[axis] = -1 if side == 1 else 0
    return q[tuple(index)][..., pde.nvar :]


def record_corrector_ops(recorder, n: int, pde: LinearPDE) -> None:
    """Record the corrector's cost (volume update + face terms)."""
    m = pde.nquantities
    el_bytes = 8.0 * n**3 * m
    face_bytes = 8.0 * 6 * n**2 * m
    # volume update: q + vavg (+savg): ~2 flops per dof
    recorder.pointwise(
        "corrector_volume",
        FlopCounts.at_width(2.0 * n**3 * m, 64),
        (
            BufferAccess("Q", read_bytes=el_bytes, write_bytes=el_bytes),
            BufferAccess("vavg", read_bytes=3 * el_bytes),
        ),
    )
    # Riemann solves per face node: two flux evaluations + the penalty.
    riemann_per_node = 2 * pde.flux_flops_per_node(0) + 4 * m
    recorder.pointwise(
        "riemann",
        FlopCounts.at_width(6.0 * n**2 * riemann_per_node, 64),
        (
            BufferAccess("qface_self", read_bytes=face_bytes),
            BufferAccess("qface_neigh", read_bytes=face_bytes),
            BufferAccess("fstar", write_bytes=face_bytes),
        ),
    )
    # surface lifting: one multiply-add per dof per face pair and dim
    recorder.pointwise(
        "surface_lift",
        FlopCounts.at_width(6.0 * 2 * n**3 * m, 64),
        (
            BufferAccess("fstar", read_bytes=face_bytes),
            BufferAccess("Q", read_bytes=el_bytes, write_bytes=el_bytes),
        ),
    )


def record_corrector_plan(spec: KernelSpec, pde: LinearPDE):
    """Standalone corrector plan for the application-level profiles."""
    from repro.codegen.plan import PlanRecorder

    rec = PlanRecorder("corrector", spec)
    n, m = spec.order, spec.nquantities
    rec.buffer("Q", 8 * n**3 * m, "input")
    rec.buffer("vavg", 3 * 8 * n**3 * m, "input")
    rec.buffer("qface_self", 8 * 6 * n**2 * m, "input")
    rec.buffer("qface_neigh", 8 * 6 * n**2 * m, "input")
    rec.buffer("fstar", 8 * 6 * n**2 * m, "temp")
    record_corrector_ops(rec, n, pde)
    return rec.finish()
