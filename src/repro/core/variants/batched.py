"""Batched element-block execution of the STP kernel variants.

The per-element kernels in this package re-derive their operator set
and re-allocate their whole scratch working set on *every* invocation
-- faithful to a single kernel call, but wasteful when a solver sweeps
thousands of elements per time step.  This module adds the standard
matrix-free-DG batching layer on top of them (cf. Kronbichler &
Kormann's element batches; the paper's Sec. IV buffer-reuse idea
extended from intra-element to inter-element):

* an **operator registry** caches the per-(variant, spec, pde)
  operator set -- derivative matrices, layouts, basis operators --
  exactly once per process;
* a **scratch arena** preallocates one block-sized working set and
  reuses it across all element blocks and all time steps;
* the contraction stages run over an extra element-block axis through
  :func:`~repro.tensor.contraction.block_contract_axis`, so every GEMM
  call (and every flux/NCP user-function sweep) amortizes over ``B``
  elements instead of one.

The numerics are the *same* operations in the same order as the
per-element variants -- only the element loop moves from Python into
the stacked matmuls -- so outputs agree with the scalar path to
round-off (the test-suite enforces <= 1e-12).

:class:`BatchedSTP` is an execution driver, not a fifth kernel
variant: plans, instruction mixes and the machine model still come from
the per-element kernels (:meth:`BatchedSTP.footprint_report` combines
both views).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.basis.operators import DGOperators, cached_operators
from repro.codegen.executor import resolve_executor
from repro.core.layouts import Layout, TensorLayout
from repro.core.spec import KernelSpec
from repro.core.variants.base import (
    AXIS_OF_DIM,
    ElementSource,
    STPResult,
    taylor_coefficients,
)
from repro.gemm.registry import GemmRegistry
from repro.pde.base import LinearPDE
from repro.tensor.contraction import (
    block_contract_axis,
    block_contract_last_axis_transposed,
)

__all__ = [
    "BatchedSTP",
    "OperatorSet",
    "ScratchArena",
    "operator_set",
    "clear_operator_registry",
]

#: AoSoA array axis carrying each PDE direction for a *block* tensor
#: ``(B, z, y, m, x)``; x (d = 0) is handled by the transposed GEMM.
_BLOCK_AOSOA_AXIS = {1: 2, 2: 1}

#: canonical block-tensor axis of each PDE direction ((B, z, y, x, m))
_BLOCK_AXIS_OF_DIM = {d: 1 + AXIS_OF_DIM[d] for d in range(3)}


# ---------------------------------------------------------------------------
# operator registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OperatorSet:
    """Everything shape-dependent a batched kernel needs, derived once.

    The per-element kernels rebuild these on every construction; the
    registry below hands out one shared, immutable instance per
    (variant, spec, pde) combination.
    """

    variant: str
    spec: KernelSpec
    ops: DGOperators
    #: padded working layout (AoS for log/splitck/transpose_uf, AoSoA
    #: for aosoa, unpadded canonical for generic -> None)
    layout: TensorLayout | None
    #: reference-element derivative operator (unscaled; kernels scale by 1/h)
    derivative: np.ndarray
    #: its contiguous transpose (AoSoA x-derivative, Sec. V-B case 1)
    derivative_t: np.ndarray

    @property
    def mpad(self) -> int:
        """Padded quantity count of the working layout (m if unpadded)."""
        return self.layout.mpad if self.layout is not None else self.spec.nquantities

    def scaled(self, h: float) -> tuple[np.ndarray, np.ndarray]:
        """``(-D/h, D/h)`` -- the flux and gradient operators at size ``h``."""
        deriv = self.derivative / h
        return -deriv, deriv


_LAYOUT_OF_VARIANT = {
    "generic": None,
    "log": Layout.AOS,
    "splitck": Layout.AOS,
    "transpose_uf": Layout.AOS,
    "aosoa": Layout.AOSOA,
}

_OPERATOR_SETS: dict[tuple, OperatorSet] = {}


def operator_set(variant: str, spec: KernelSpec, pde: LinearPDE) -> OperatorSet:
    """The cached operator set for one (variant, spec, pde) combination.

    All operator shapes follow from ``variant`` and ``spec`` alone; the
    PDE only contributes its name to the cache key (two PDEs sharing a
    spec share the arrays -- they are immutable).
    """
    if variant not in _LAYOUT_OF_VARIANT:
        raise ValueError(
            f"unknown variant {variant!r}; available: {sorted(_LAYOUT_OF_VARIANT)}"
        )
    key = (variant, spec, pde.name)
    cached = _OPERATOR_SETS.get(key)
    if cached is not None:
        return cached
    ops = cached_operators(spec.order, spec.quadrature)
    kind = _LAYOUT_OF_VARIANT[variant]
    layout = None if kind is None else TensorLayout.for_spec(kind, spec)
    derivative = ops.derivative
    oset = OperatorSet(
        variant=variant,
        spec=spec,
        ops=ops,
        layout=layout,
        derivative=derivative,
        derivative_t=np.ascontiguousarray(derivative.T),
    )
    return _OPERATOR_SETS.setdefault(key, oset)


def clear_operator_registry() -> int:
    """Drop all cached operator sets; returns how many were held."""
    count = len(_OPERATOR_SETS)
    _OPERATOR_SETS.clear()
    return count


# ---------------------------------------------------------------------------
# scratch arena
# ---------------------------------------------------------------------------


class ScratchArena:
    """A named pool of preallocated scratch arrays, reused across calls.

    Arrays are handed out *dirty* (no implicit zeroing) -- callers own
    initialization, exactly like the reused single-time-level tensors
    of the SplitCK kernel (Sec. IV-B).  Requesting a name with a new
    shape reallocates that entry; the batched driver always requests
    full-block shapes and slices views for partial blocks, so in steady
    state no allocation happens at all.
    """

    def __init__(self) -> None:
        self._arrays: dict[str, np.ndarray] = {}

    def get(self, name: str, shape: tuple[int, ...]) -> np.ndarray:
        """The named scratch array, (re)allocated on first use / reshape."""
        arr = self._arrays.get(name)
        if arr is None or arr.shape != tuple(shape):
            arr = np.zeros(shape)
            self._arrays[name] = arr
        return arr

    def take(self, name: str, shape: tuple[int, ...]) -> np.ndarray:
        """A ``shape``-d view of the named growable flat buffer.

        Unlike :meth:`get`, the backing storage only ever *grows*: a
        request smaller than the current capacity returns a reshaped
        view of the existing buffer, so callers alternating between a
        full block and a partial tail block (the corrector's chunk
        loop) never reallocate in steady state.
        """
        size = int(np.prod(shape))
        flat = self._arrays.get(name)
        if flat is None or flat.ndim != 1 or flat.size < size:
            flat = np.zeros(max(size, 1))
            self._arrays[name] = flat
        return flat[:size].reshape(shape)

    def __contains__(self, name: str) -> bool:
        return name in self._arrays

    def __len__(self) -> int:
        return len(self._arrays)

    @property
    def nbytes(self) -> int:
        """Total bytes held by the arena."""
        return sum(a.nbytes for a in self._arrays.values())

    def buffers(self) -> dict[str, int]:
        """Name -> bytes of every held array (for footprint reports)."""
        return {name: a.nbytes for name, a in self._arrays.items()}


# ---------------------------------------------------------------------------
# the batched driver
# ---------------------------------------------------------------------------


class BatchedSTP:
    """Run an STP kernel variant over element blocks of size ``batch_size``.

    Parameters
    ----------
    variant:
        Any name in :data:`repro.core.variants.KERNEL_CLASSES`
        (``transpose_uf`` shares the SplitCK numerics).
    spec, pde:
        As for :class:`~repro.core.variants.base.STPKernel`.
    batch_size:
        ``B``, the number of elements fused per block.  The scratch
        arena is sized for ``B`` at construction; meshes whose element
        count is not a multiple of ``B`` are handled with partial-block
        views (no reallocation).
    backend:
        Execution backend for the block predictor: a name accepted by
        :func:`repro.codegen.executor.resolve_executor` (``"numpy"``,
        ``"numba"``, ``"auto"``) or an
        :class:`~repro.codegen.executor.Executor` instance to share
        with other phases.  Defaults to the NumPy reference path.
    """

    def __init__(
        self,
        variant: str,
        spec: KernelSpec,
        pde: LinearPDE,
        batch_size: int = 8,
        backend="numpy",
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if spec.dim != 3:
            raise ValueError("the STP kernels are implemented for d = 3")
        if pde.nquantities != spec.nquantities:
            raise ValueError(
                f"PDE has m={pde.nquantities} quantities, spec expects "
                f"m={spec.nquantities}"
            )
        if not getattr(pde, "is_linear", True):
            raise TypeError(
                f"{pde.name} is nonlinear; the Cauchy-Kowalewsky kernels "
                "require a linear system"
            )
        self.variant = variant
        self.spec = spec
        self.pde = pde
        self.batch_size = int(batch_size)
        self.oset = operator_set(variant, spec, pde)
        self.registry = GemmRegistry(spec.architecture.vector_doubles)
        self.arena = ScratchArena()
        self.executor = resolve_executor(backend)
        self._impl = {
            "generic": self._block_generic,
            "log": self._block_log,
            "splitck": self._block_splitck,
            "transpose_uf": self._block_splitck,
            "aosoa": self._block_aosoa,
        }[variant]
        self._preallocate()

    # -- sizes -----------------------------------------------------------

    @property
    def n(self) -> int:
        """Nodes per dimension (the order ``N``)."""
        return self.spec.order

    @property
    def m(self) -> int:
        """Quantities per node, evolved variables plus parameters."""
        return self.spec.nquantities

    def _block_space(self) -> tuple[int, ...]:
        """Padded per-element tensor shape of the working layout."""
        n, oset = self.n, self.oset
        if oset.layout is None:
            return (n, n, n, self.m)
        return oset.layout.padded_shape

    def _preallocate(self) -> None:
        """Size the arena for a full block once, at construction.

        This is the whole point of the driver: allocation happens here
        and never again, no matter how many blocks or steps run.
        """
        n = self.n
        full = (self.batch_size,) + self._block_space()
        if self.variant in ("splitck", "transpose_uf", "aosoa"):
            for name in ("p", "pnext", "flux", "tmp", "qavg"):
                self.arena.get(name, full)
            self.arena.get("favg", (3,) + full)
            if self.pde.has_ncp:
                self.arena.get("gradQ", full)
        else:  # generic / log: full space-time storage, batched
            self.arena.get("p_st", (n + 1,) + full)
            self.arena.get("flux_st", (n, 3) + full)
            self.arena.get("dF_st", (n, 3) + full)
            self.arena.get("qavg", full)
            self.arena.get("favg", (3,) + full)
            if self.pde.has_ncp:
                self.arena.get("gradQ_st", (n, 3) + full)

    @property
    def scratch_bytes(self) -> int:
        """Bytes of the preallocated block arena."""
        return self.arena.nbytes

    @property
    def scratch_bytes_per_element(self) -> float:
        """Arena bytes amortized per element of the block."""
        return self.arena.nbytes / self.batch_size

    # -- driving ---------------------------------------------------------

    def predictor_all(
        self,
        states: np.ndarray,
        dt: float,
        h: float,
        order=None,
        source_fn=None,
    ) -> list:
        """Run the STP on every element of ``states``, block by block.

        Parameters
        ----------
        states:
            ``(E, N, N, N, m)`` canonical element states.
        order:
            Optional traversal order (e.g. the Peano SFC); blocks are
            formed along it.  Defaults to ``0 .. E-1``.
        source_fn:
            Optional ``element_id -> ElementSource | None`` callback.

        Returns
        -------
        A list of :class:`STPResult`, indexed by element id.
        """
        n_elements = states.shape[0]
        traversal = list(range(n_elements)) if order is None else list(order)
        results = [None] * n_elements
        for start in range(0, len(traversal), self.batch_size):
            chunk = traversal[start : start + self.batch_size]
            q_block = states[chunk]
            sources = [source_fn(e) if source_fn is not None else None for e in chunk]
            for element, result in zip(chunk, self.predictor_block(q_block, dt, h, sources)):
                results[element] = result
        return results

    def predictor_shard(
        self,
        states: np.ndarray,
        dt: float,
        h: float,
        elements,
        qface_out: np.ndarray | None = None,
        source_fn=None,
    ) -> dict:
        """Run the STP over an arbitrary subset of a global state array.

        The shard driver of the parallel solver: ``elements`` selects
        which rows of ``states`` (``(E, N, N, N, m)``, typically a
        shared-memory view) to process, in blocks of ``batch_size``
        along the given order.

        Parameters
        ----------
        states:
            Global ``(E, N, N, N, m)`` state array; only the selected
            rows are read.
        elements:
            Element ids to process (the shard), in traversal order.
        qface_out:
            Optional ``(E, 3, 2, N, N, m)`` array (typically shared
            memory); each processed element's six face traces are
            written to ``qface_out[e, d, side]``.
        source_fn:
            Optional ``element_id -> ElementSource | None`` callback.

        Returns
        -------
        ``{element id: STPResult}`` for exactly the shard's elements.
        """
        elements = np.asarray(elements, dtype=np.int64)
        results: dict[int, STPResult] = {}
        for start in range(0, elements.size, self.batch_size):
            chunk = elements[start : start + self.batch_size]
            q_block = states[chunk]
            sources = [source_fn(int(e)) if source_fn is not None else None for e in chunk]
            for e, result in zip(chunk, self.predictor_block(q_block, dt, h, sources)):
                e = int(e)
                results[e] = result
                if qface_out is not None:
                    for d in range(3):
                        for side in (0, 1):
                            qface_out[e, d, side] = result.qface[(d, side)]
        return results

    def predictor_sweep(
        self,
        states: np.ndarray,
        dt: float,
        h: float,
        elements,
        qface_out: np.ndarray,
        vavg_out: np.ndarray,
        source_fn=None,
    ) -> dict:
        """Run the STP over ``elements``, writing into sweep buffers.

        The face-sweep driver's predictor: instead of materializing
        per-element :class:`STPResult` objects it writes each block's
        face traces straight into the global ``qface_out``
        (``(E, 3, 2, N, N, m)``) and the summed volume contributions
        ``V qbar`` into ``vavg_out`` (``(len(elements), N, N, N, m)``,
        rows in traversal order).

        Returns
        -------
        ``{element id: (N, N, N, m) savg}`` for exactly the
        source-carrying elements.
        """
        elements = np.asarray(elements, dtype=np.int64)
        savg_map: dict[int, np.ndarray] = {}
        for start in range(0, elements.size, self.batch_size):
            chunk = elements[start : start + self.batch_size]
            sources = [
                source_fn(int(e)) if source_fn is not None else None for e in chunk
            ]
            _, vavg_c, savg_c, faces = self._predict_raw(
                states[chunk], dt, h, sources
            )
            vavg_out[start : start + chunk.size] = vavg_c.sum(axis=0)
            for d in range(3):
                for side in (0, 1):
                    qface_out[chunk, d, side] = faces[(d, side)]
            if savg_c is not None:
                for i, e in enumerate(chunk):
                    if sources[i] is not None:
                        savg_map[int(e)] = savg_c[i].copy()
        return savg_map

    def predictor_block(
        self,
        q: np.ndarray,
        dt: float,
        h: float,
        sources: list | None = None,
    ) -> list:
        """Run the STP on one ``(b, N, N, N, m)`` element block.

        ``sources`` is an optional per-element list of
        :class:`ElementSource` (or ``None``); ``b`` may be any size up
        to ``batch_size``.
        """
        if sources is None:
            sources = [None] * np.asarray(q).shape[0]
        qavg_c, vavg_c, savg_c, faces = self._predict_raw(q, dt, h, sources)
        return self._collect_results(qavg_c, vavg_c, savg_c, sources, faces)

    def _predict_raw(
        self, q: np.ndarray, dt: float, h: float, sources: list
    ) -> tuple:
        """Validate one block and run the variant implementation.

        Returns the raw canonical block outputs
        ``(qavg_c, vavg_c, savg_c, faces)`` with ``vavg_c`` shaped
        ``(3, b, N, N, N, m)`` and ``faces`` a ``(d, side) ->
        (b, N, N, m)`` dict.
        """
        q = np.asarray(q, dtype=np.float64)
        n, m = self.n, self.m
        if q.ndim != 5 or q.shape[1:] != (n, n, n, m):
            raise ValueError(
                f"expected element block (b, {n}, {n}, {n}, {m}), got {q.shape}"
            )
        b = q.shape[0]
        if b < 1 or b > self.batch_size:
            raise ValueError(f"block size must be in 1..{self.batch_size}, got {b}")
        if len(sources) != b:
            raise ValueError("sources must match the block size")
        return self.executor.predict_block(self, q, dt, h, sources)

    def _run_numpy(self, q: np.ndarray, dt: float, h: float, sources: list) -> tuple:
        """The variant's NumPy implementation (the executors' fallback)."""
        return self._impl(q, dt, h, sources)

    # -- shared pieces ----------------------------------------------------

    def _active_sources(self, sources: list) -> list[tuple[int, ElementSource]]:
        return [(i, s) for i, s in enumerate(sources) if s is not None]

    def _project_faces_block(self, qavg_c: np.ndarray) -> dict:
        """Batched face projection: one tensordot per face for the block."""
        left, right = self.oset.ops.face_left, self.oset.ops.face_right
        faces = {}
        for d in range(3):
            axis = _BLOCK_AXIS_OF_DIM[d]
            faces[(d, 0)] = np.tensordot(left, qavg_c, axes=([0], [axis]))
            faces[(d, 1)] = np.tensordot(right, qavg_c, axes=([0], [axis]))
        return faces

    def _collect_results(
        self,
        qavg_c: np.ndarray,
        vavg_c: np.ndarray,
        savg_c: np.ndarray | None,
        sources: list,
        faces: dict,
    ) -> list:
        results = []
        for i in range(qavg_c.shape[0]):
            qface = {key: face[i] for key, face in faces.items()}
            savg_i = savg_c[i] if (savg_c is not None and sources[i] is not None) else None
            results.append(
                STPResult(qavg=qavg_c[i], vavg=vavg_c[:, i], savg=savg_i, qface=qface)
            )
        return results

    def _savg_block(self, b: int, any_sources: bool) -> np.ndarray | None:
        if not any_sources:
            return None
        savg = self.arena.get("savg", (self.batch_size,) + self._block_space())[:b]
        savg[...] = 0.0
        return savg

    # -- variant implementations ------------------------------------------
    #
    # Each mirrors its per-element twin statement by statement; the only
    # change is the leading block axis and the arena-backed storage.

    def _block_splitck(self, q: np.ndarray, dt: float, h: float, sources: list) -> list:
        n, m, b = self.n, self.m, q.shape[0]
        nvar = self.pde.nvar
        layout = self.oset.layout
        full = (self.batch_size,) + self._block_space()
        p = self.arena.get("p", full)[:b]
        pnext = self.arena.get("pnext", full)[:b]
        flux = self.arena.get("flux", full)[:b]
        tmp = self.arena.get("tmp", full)
        qavg = self.arena.get("qavg", full)[:b]
        favg = self.arena.get("favg", (3,) + full)[:, :b]
        grad_q = self.arena.get("gradQ", full)[:b] if self.pde.has_ncp else None
        neg_deriv, deriv = self.oset.scaled(h)

        active = self._active_sources(sources)
        savg = self._savg_block(b, bool(active))

        layout.pack_block(q, out=p)
        params = q[..., nvar:]
        qavg[...] = 0.0

        coef = taylor_coefficients(n, dt)
        for o in range(n):
            qavg += coef[o] * p
            pnext[...] = 0.0
            for d in range(3):
                flux[..., :m] = self.pde.flux(p[..., :m], d)
                flux[..., m:] = 0.0
                block_contract_axis(
                    neg_deriv, flux, pnext, _BLOCK_AXIS_OF_DIM[d], self.registry,
                    accumulate=True, tmp=tmp,
                )
                if self.pde.has_ncp:
                    block_contract_axis(
                        deriv, p, grad_q, _BLOCK_AXIS_OF_DIM[d], self.registry,
                    )
                    pnext[..., :m] -= self.pde.ncp(grad_q[..., :m], p[..., :m], d)
            for i, source in active:
                term = source.term(o)
                pnext[i, ..., :m] += term
                savg[i, ..., :m] += coef[o] * term
            pnext[..., nvar:m] = params
            p, pnext = pnext, p

        # favg_d = V_d qavg by linearity (Sec. IV-B's recomputation).
        qavg[..., nvar:m] = params
        for d in range(3):
            flux[..., :m] = self.pde.flux(qavg[..., :m], d)
            flux[..., m:] = 0.0
            block_contract_axis(
                neg_deriv, flux, favg[d], _BLOCK_AXIS_OF_DIM[d], self.registry,
            )
            if self.pde.has_ncp:
                block_contract_axis(
                    deriv, qavg, grad_q, _BLOCK_AXIS_OF_DIM[d], self.registry,
                )
                favg[d, ..., :m] -= self.pde.ncp(grad_q[..., :m], qavg[..., :m], d)
        qavg[..., nvar:m] = dt * params

        qavg_c = layout.unpack_block(qavg)
        vavg_c = np.stack([layout.unpack_block(favg[d]) for d in range(3)])
        savg_c = None if savg is None else layout.unpack_block(savg)
        faces = self._project_faces_block(qavg_c)
        return qavg_c, vavg_c, savg_c, faces

    def _block_aosoa(self, q: np.ndarray, dt: float, h: float, sources: list) -> list:
        n, m, b = self.n, self.m, q.shape[0]
        nvar = self.pde.nvar
        layout = self.oset.layout
        full = (self.batch_size,) + self._block_space()
        p = self.arena.get("p", full)[:b]
        pnext = self.arena.get("pnext", full)[:b]
        flux = self.arena.get("flux", full)[:b]
        tmp = self.arena.get("tmp", full)
        qavg = self.arena.get("qavg", full)[:b]
        favg = self.arena.get("favg", (3,) + full)[:, :b]
        grad_q = self.arena.get("gradQ", full)[:b] if self.pde.has_ncp else None
        neg_deriv, deriv = self.oset.scaled(h)
        neg_deriv_t = np.ascontiguousarray(neg_deriv.T)
        deriv_t = np.ascontiguousarray(deriv.T)

        active = self._active_sources(sources)
        savg = self._savg_block(b, bool(active))

        def flux_lines(arr: np.ndarray, out: np.ndarray, d: int) -> None:
            # every (b, k, j) line is an SoA chunk; padding lanes excluded
            q_lines = np.swapaxes(arr[..., :n], -1, -2)
            out[..., :n] = np.swapaxes(self.pde.flux(q_lines, d), -1, -2)
            out[..., n:] = 0.0

        def derive_into(matrix, matrix_t, src, dst, d, accumulate):
            if d == 0:
                block_contract_last_axis_transposed(
                    matrix_t, src, dst, n, self.registry,
                    accumulate=accumulate, tmp=tmp,
                )
            else:
                block_contract_axis(
                    matrix, src, dst, _BLOCK_AOSOA_AXIS[d], self.registry,
                    accumulate=accumulate, tmp=tmp,
                )

        layout.pack_block(q, out=p)
        params_t = np.swapaxes(q[..., nvar:], -1, -2)  # (b, z, y, npar, x)

        qavg[...] = 0.0
        coef = taylor_coefficients(n, dt)
        for o in range(n):
            qavg += coef[o] * p
            pnext[...] = 0.0
            for d in range(3):
                flux_lines(p, flux, d)
                derive_into(neg_deriv, neg_deriv_t, flux, pnext, d, True)
                if self.pde.has_ncp:
                    derive_into(deriv, deriv_t, p, grad_q, d, False)
                    gq = np.swapaxes(grad_q[..., :n], -1, -2)
                    qq = np.swapaxes(p[..., :n], -1, -2)
                    pnext[..., :n] -= np.swapaxes(self.pde.ncp(gq, qq, d), -1, -2)
            for i, source in active:
                term = np.swapaxes(source.term(o), -1, -2)  # (z, y, m, n)
                pnext[i, ..., :n] += term
                savg[i, ..., :n] += coef[o] * term
            pnext[:, :, :, nvar:m, :n] = params_t
            p, pnext = pnext, p

        qavg[:, :, :, nvar:m, :n] = params_t
        for d in range(3):
            flux_lines(qavg, flux, d)
            derive_into(neg_deriv, neg_deriv_t, flux, favg[d], d, False)
            if self.pde.has_ncp:
                derive_into(deriv, deriv_t, qavg, grad_q, d, False)
                gq = np.swapaxes(grad_q[..., :n], -1, -2)
                qq = np.swapaxes(qavg[..., :n], -1, -2)
                favg[d, ..., :n] -= np.swapaxes(self.pde.ncp(gq, qq, d), -1, -2)
        qavg[:, :, :, nvar:m, :n] = dt * params_t

        qavg_c = layout.unpack_block(qavg)
        vavg_c = np.stack([layout.unpack_block(favg[d]) for d in range(3)])
        savg_c = None if savg is None else layout.unpack_block(savg)
        faces = self._project_faces_block(qavg_c)
        return qavg_c, vavg_c, savg_c, faces

    def _block_log(self, q: np.ndarray, dt: float, h: float, sources: list) -> list:
        return self._block_spacetime(q, dt, h, sources, padded=True)

    def _block_generic(self, q: np.ndarray, dt: float, h: float, sources: list) -> list:
        return self._block_spacetime(q, dt, h, sources, padded=False)

    def _block_spacetime(
        self, q: np.ndarray, dt: float, h: float, sources: list, padded: bool
    ) -> list:
        """Shared block path for the two full-space-time-storage variants.

        ``padded=True`` is the LoG kernel (AoS padding, Sec. III-A);
        ``padded=False`` the generic one.  Both keep the full
        ``O(N^{d+1} m d)`` storage -- now ``B`` elements wide.
        """
        n, m, b = self.n, self.m, q.shape[0]
        nvar = self.pde.nvar
        layout = self.oset.layout
        full = (self.batch_size,) + self._block_space()
        p = self.arena.get("p_st", (n + 1,) + full)[:, :b]
        flux = self.arena.get("flux_st", (n, 3) + full)[:, :, :b]
        d_f = self.arena.get("dF_st", (n, 3) + full)[:, :, :b]
        grad_q = (
            self.arena.get("gradQ_st", (n, 3) + full)[:, :, :b]
            if self.pde.has_ncp
            else None
        )
        qavg = self.arena.get("qavg", full)[:b]
        favg = self.arena.get("favg", (3,) + full)[:, :b]
        neg_deriv, deriv = self.oset.scaled(h)

        active = self._active_sources(sources)
        savg = self._savg_block(b, bool(active))

        if padded:
            layout.pack_block(q, out=p[0])
        else:
            p[0] = q
        p[1:] = 0.0
        params = q[..., nvar:]

        for o in range(n):
            for d in range(3):
                flux[o, d, ..., :m] = self.pde.flux(p[o, ..., :m], d)
                if padded:
                    flux[o, d, ..., m:] = 0.0
            for d in range(3):
                block_contract_axis(
                    neg_deriv, flux[o, d], d_f[o, d], _BLOCK_AXIS_OF_DIM[d],
                    self.registry,
                )
            if self.pde.has_ncp:
                for d in range(3):
                    block_contract_axis(
                        deriv, p[o], grad_q[o, d], _BLOCK_AXIS_OF_DIM[d],
                        self.registry,
                    )
                for d in range(3):
                    d_f[o, d, ..., :m] -= self.pde.ncp(
                        grad_q[o, d, ..., :m], p[o, ..., :m], d
                    )
            for d in range(3):
                p[o + 1] += d_f[o, d]
            for i, source in active:
                p[o + 1, i, ..., :m] += source.term(o)
            p[o + 1, ..., nvar:m] = params

        coef = taylor_coefficients(n, dt)
        qavg[...] = 0.0
        for o in range(n):
            qavg += coef[o] * p[o]
        favg[...] = 0.0
        for d in range(3):
            for o in range(n):
                favg[d] += coef[o] * d_f[o, d]
        for i, source in active:
            for o in range(n):
                savg[i, ..., :m] += coef[o] * source.term(o)

        qavg[..., nvar:m] = dt * params

        if padded:
            qavg_c = layout.unpack_block(qavg)
            vavg_c = np.stack([layout.unpack_block(favg[d]) for d in range(3)])
            savg_c = None if savg is None else layout.unpack_block(savg)
        else:
            qavg_c = qavg.copy()
            vavg_c = favg.copy()
            savg_c = None if savg is None else savg.copy()
        faces = self._project_faces_block(qavg_c)
        return qavg_c, vavg_c, savg_c, faces

    # -- footprint reporting (machine-model view) --------------------------

    def footprint_report(self) -> dict:
        """Scratch footprint of the batched driver vs the per-element kernel.

        The per-element numbers come from the recorded kernel plan --
        the same ``temp`` accounting the machine's cache models consume
        (Sec. IV-A) -- so both columns are in the machine model's
        currency.
        """
        from repro.core.variants import make_kernel

        plan = make_kernel(self.variant, self.spec, self.pde).build_plan(
            with_source=False
        )
        return {
            "variant": self.variant,
            "order": self.spec.order,
            "batch_size": self.batch_size,
            "arena_bytes": self.scratch_bytes,
            "arena_bytes_per_element": self.scratch_bytes_per_element,
            "scalar_temp_bytes": plan.temp_footprint_bytes,
            "amortization": (
                plan.temp_footprint_bytes / self.scratch_bytes_per_element
                if self.scratch_bytes
                else float("nan")
            ),
        }

    def __repr__(self) -> str:
        return (
            f"BatchedSTP(variant={self.variant!r}, order={self.n}, m={self.m}, "
            f"batch_size={self.batch_size}, arena={self.scratch_bytes / 2**20:.2f} MiB)"
        )
