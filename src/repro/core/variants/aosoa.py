"""The AoSoA SplitCK STP kernel (paper Sec. V).

Same dimension-split Cauchy-Kowalewsky algorithm as
:class:`~repro.core.variants.splitck.SplitCKSTP`, but all work tensors
use the hybrid **Array-of-Struct-of-Array** layout ``A[k, j, s, i]``:
the quantity dimension sits between the spatial dimensions, the x
dimension is unit-stride and zero-padded to the SIMD width.

This resolves the AoS-vs-SoA conflict:

* GEMMs still work on pseudo-AoS matrix slices -- the x-derivative runs
  in transposed form ``C^T = A^T D^T`` with a precomputed ``D^T``
  (Sec. V-B case 1), the y/z-derivatives fuse the quantity and x
  dimensions into the GEMM columns (case 2, Fig. 7);
* every ``(k, j)`` line is a ready-made SoA chunk, so the user
  functions vectorize over the x dimension (Sec. V-C, Fig. 8) instead
  of running scalar.

The engine API stays AoS: inputs are transposed to AoSoA on entry and
the outputs back on exit; the recorded :class:`TransposeOp` s charge
exactly that (small) cost, as measured in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.codegen.plan import NULL_RECORDER
from repro.core.layouts import Layout, TensorLayout
from repro.core.variants.base import ElementSource, STPKernel, STPResult, taylor_coefficients
from repro.core.variants.common import (
    record_axpy,
    record_clear,
    record_source,
    record_user_function,
)
from repro.tensor.contraction import contract_axis, contract_last_axis_transposed

__all__ = ["AoSoASTP"]

#: AoSoA array axis carrying each PDE direction ((z, y, m, x) order);
#: x is the unit-stride tail axis handled by the transposed contraction.
_AOSOA_AXIS = {1: 1, 2: 0}


class AoSoASTP(STPKernel):
    """SplitCK on the hybrid AoSoA layout with vectorized user functions."""

    variant = "aosoa"

    def _flux_lines(self, arr: np.ndarray, out: np.ndarray, d: int) -> None:
        """Apply the vectorized user function to every SoA x-line.

        The ``(z, y, :, :n)`` subarrays are SoA chunks; the user
        function sweeps them with SIMD instructions over x (Fig. 8).
        Padding lanes are excluded from the call, as the paper
        recommends for user functions where zero is not a valid input
        (here: division by the density parameter).
        """
        n = self.n
        q_lines = np.swapaxes(arr[..., :n], -1, -2)  # (z, y, n, m) view
        out[..., :n] = np.swapaxes(self.pde.flux(q_lines, d), -1, -2)
        out[..., n:] = 0.0

    def predictor(
        self,
        q: np.ndarray,
        dt: float,
        h: float,
        source: ElementSource | None = None,
        recorder=NULL_RECORDER,
    ) -> STPResult:
        self._check_input(q)
        n, m = self.n, self.m
        layout = TensorLayout.for_spec(Layout.AOSOA, self.spec)
        npad = layout.xpad
        width = 64 * self.vector_doubles
        space = layout.padded_shape  # (n, n, m, npad)
        doubles = n * n * m * npad
        neg_deriv = -self.ops.derivative / h
        neg_deriv_t = np.ascontiguousarray(neg_deriv.T)  # precomputed D^T
        deriv = self.ops.derivative / h
        deriv_t = np.ascontiguousarray(deriv.T)

        p = np.zeros(space)
        pnext = np.zeros(space)
        flux = np.zeros(space)
        grad_q = np.zeros(space) if self.pde.has_ncp else np.zeros((0,))
        qavg = np.zeros(space)
        favg = np.zeros((3,) + space)
        savg = np.zeros(space) if source is not None else None

        recorder.phase("transpose_in")
        recorder.buffer("q", q.nbytes, "input")
        recorder.buffer("D", self.ops.derivative.nbytes, "const")
        recorder.buffer("DT", neg_deriv_t.nbytes, "const")
        recorder.buffer("p", p.nbytes, "temp")
        recorder.buffer("pnext", pnext.nbytes, "temp")
        recorder.buffer("flux", flux.nbytes, "temp")
        if self.pde.has_ncp:
            recorder.buffer("gradQ", grad_q.nbytes, "temp")
        recorder.buffer("qavg", qavg.nbytes, "output")
        recorder.buffer("favg", favg.nbytes, "output")
        if source is not None:
            recorder.buffer("source_P", source.projection.nbytes, "const")
            recorder.buffer("savg", savg.nbytes, "output")

        # Engine hands us AoS data; transpose to AoSoA (Sec. V-B).
        p[:] = layout.pack(q)
        recorder.transpose("aos->aosoa", "q", "p", 8.0 * n**3 * m)

        # Static parameters in AoSoA orientation, restored into every
        # p^(o) (they are not time-differentiated; the vectorized flux
        # user functions need them on each SoA line).
        nvar = self.pde.nvar
        params_t = np.swapaxes(q[..., nvar:], -1, -2)  # (z, y, npar, x)

        def derive_into(matrix, matrix_t, src, dst, d, accumulate, src_name, dst_name):
            if d == 0:
                contract_last_axis_transposed(
                    matrix_t, src, dst, n, self.registry,
                    accumulate=accumulate, recorder=recorder,
                    matrix_name="DT", src_name=src_name, dst_name=dst_name,
                )
            else:
                contract_axis(
                    matrix, src, dst, _AOSOA_AXIS[d], self.registry,
                    accumulate=accumulate, recorder=recorder,
                    matrix_name="D", src_name=src_name, dst_name=dst_name,
                )

        recorder.phase("predictor")
        coef = taylor_coefficients(n, dt)
        for o in range(n):
            qavg += coef[o] * p
            record_axpy(recorder, "qavg_update", doubles, width,
                        reads=("p",), write="qavg")
            pnext[:] = 0.0
            record_clear(recorder, "clear_pnext", doubles, "pnext")
            for d in range(3):
                self._flux_lines(p, flux, d)
                record_user_function(
                    recorder, f"flux_{'xyz'[d]}_vect", self.spec, self.pde, "flux", d,
                    vectorized=True, src="p", dst="flux",
                )
                derive_into(neg_deriv, neg_deriv_t, flux, pnext, d, True,
                            "flux", "pnext")
                if self.pde.has_ncp:
                    derive_into(deriv, deriv_t, p, grad_q, d, False, "p", "gradQ")
                    gq = np.swapaxes(grad_q[..., :n], -1, -2)
                    qq = np.swapaxes(p[..., :n], -1, -2)
                    pnext[..., :n] -= np.swapaxes(self.pde.ncp(gq, qq, d), -1, -2)
                    record_user_function(
                        recorder, f"ncp_{'xyz'[d]}_vect", self.spec, self.pde,
                        "ncp", d, vectorized=True, src="gradQ", dst="pnext",
                        extra_read="p",
                    )
            if source is not None:
                term = np.swapaxes(source.term(o), -1, -2)  # (z, y, m, n)
                pnext[..., :n] += term
                savg[..., :n] += coef[o] * term
                record_source(recorder, self.spec, dst="pnext", width_bits=width)
            pnext[:, :, nvar:m, :n] = params_t
            p, pnext = pnext, p

        # favg_d = V_d qavg by linearity; the flux input needs the real
        # parameters, qavg's own slots get their exact integral after.
        recorder.phase("favg_recompute")
        qavg[:, :, nvar:m, :n] = params_t
        for d in range(3):
            self._flux_lines(qavg, flux, d)
            record_user_function(
                recorder, f"flux_avg_{'xyz'[d]}_vect", self.spec, self.pde, "flux",
                d, vectorized=True, src="qavg", dst="flux",
            )
            derive_into(neg_deriv, neg_deriv_t, flux, favg[d], d, False,
                        "flux", "favg")
            if self.pde.has_ncp:
                derive_into(deriv, deriv_t, qavg, grad_q, d, False, "qavg", "gradQ")
                gq = np.swapaxes(grad_q[..., :n], -1, -2)
                qq = np.swapaxes(qavg[..., :n], -1, -2)
                favg[d, ..., :n] -= np.swapaxes(self.pde.ncp(gq, qq, d), -1, -2)
                record_user_function(
                    recorder, f"ncp_avg_{'xyz'[d]}_vect", self.spec, self.pde,
                    "ncp", d, vectorized=True, src="gradQ", dst="favg",
                    extra_read="qavg",
                )

        # Exact time integral of the constant parameters.
        qavg[:, :, nvar:m, :n] = dt * params_t

        # Transpose the outputs back to the engine's AoS layout.
        recorder.phase("transpose_out")
        qavg_c = layout.unpack(qavg)
        recorder.transpose("aosoa->aos", "qavg", "qavg", 8.0 * n**3 * m)
        vavg = np.stack([layout.unpack(favg[d]) for d in range(3)])
        recorder.transpose("aosoa->aos", "favg", "favg", 3 * 8.0 * n**3 * m)
        savg_c = None
        if savg is not None:
            savg_c = layout.unpack(savg)
            recorder.transpose("aosoa->aos", "savg", "savg", 8.0 * n**3 * m)

        recorder.phase("face_projection")
        qface = self.project_faces(qavg_c, recorder)
        return STPResult(qavg=qavg_c, vavg=vavg, savg=savg_c, qface=qface)
