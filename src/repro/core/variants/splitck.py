"""The dimension-split Cauchy-Kowalewsky STP kernel (paper Sec. IV, Fig. 5).

The cache-aware reformulation: instead of storing the whole space-time
predictor and its fluxes, the kernel

* considers each spatial dimension separately and **reuses the same
  work tensors for all three dimensions**,
* performs the time integration **on the fly** (each Taylor term is
  folded into ``qavg`` as soon as it exists), and
* **recomputes** the time-averaged volume contributions from ``qavg``
  after the time loop, exploiting linearity -- the "almost one extra
  iteration" the paper accepts in exchange for the footprint drop.

Memory footprint: ``O(N^d m)`` instead of ``O(N^{d+1} m d)``, which
keeps the working set inside the 1 MiB L2 cache and removes the memory
stalls that throttled the LoG kernel.
"""

from __future__ import annotations

import numpy as np

from repro.codegen.plan import NULL_RECORDER
from repro.core.layouts import Layout, TensorLayout
from repro.core.variants.base import AXIS_OF_DIM, ElementSource, STPKernel, STPResult, taylor_coefficients
from repro.core.variants.common import (
    record_axpy,
    record_clear,
    record_copy,
    record_source,
    record_user_function,
)
from repro.tensor.contraction import contract_axis

__all__ = ["SplitCKSTP"]


class SplitCKSTP(STPKernel):
    """Cache-aware dimension-split Space-Time Predictor (AoS layout)."""

    variant = "splitck"

    def predictor(
        self,
        q: np.ndarray,
        dt: float,
        h: float,
        source: ElementSource | None = None,
        recorder=NULL_RECORDER,
    ) -> STPResult:
        self._check_input(q)
        n, m = self.n, self.m
        layout = TensorLayout.for_spec(Layout.AOS, self.spec)
        mpad = layout.mpad
        width = 64 * self.vector_doubles
        space = (n, n, n, mpad)
        neg_deriv = -self.ops.derivative / h
        deriv = self.ops.derivative / h
        nodes_pad = n**3 * mpad

        # Single-time-level working set (Fig. 5): this is the whole
        # footprint reduction.
        p = np.zeros(space)
        pnext = np.zeros(space)
        flux = np.zeros(space)
        grad_q = np.zeros(space) if self.pde.has_ncp else np.zeros((0,))
        qavg = np.zeros(space)
        favg = np.zeros((3,) + space)
        savg = np.zeros(space) if source is not None else None

        recorder.phase("predictor")
        recorder.buffer("q", q.nbytes, "input")
        recorder.buffer("D", self.ops.derivative.nbytes, "const")
        recorder.buffer("p", p.nbytes, "temp")
        recorder.buffer("pnext", pnext.nbytes, "temp")
        recorder.buffer("flux", flux.nbytes, "temp")
        if self.pde.has_ncp:
            recorder.buffer("gradQ", grad_q.nbytes, "temp")
        recorder.buffer("qavg", qavg.nbytes, "output")
        recorder.buffer("favg", favg.nbytes, "output")
        if source is not None:
            recorder.buffer("source_P", source.projection.nbytes, "const")
            recorder.buffer("savg", savg.nbytes, "output")

        p[:] = layout.pack(q)
        record_copy(recorder, "init_p", nodes_pad, "q", "p")

        # Static parameters are restored into every p^(o) (they are not
        # time-differentiated; the flux user functions need them).
        nvar = self.pde.nvar
        params = q[..., nvar:]

        coef = taylor_coefficients(n, dt)
        for o in range(n):
            # Time integration on the fly: fold p^(o) into qavg immediately.
            qavg += coef[o] * p
            record_axpy(recorder, "qavg_update", nodes_pad, width,
                        reads=("p",), write="qavg")
            pnext[:] = 0.0
            record_clear(recorder, "clear_pnext", nodes_pad, "pnext")
            for d in range(3):
                # The same flux/gradQ tensors serve all three dimensions.
                flux[..., :m] = self.pde.flux(p[..., :m], d)
                flux[..., m:] = 0.0
                record_user_function(
                    recorder, f"flux_{'xyz'[d]}", self.spec, self.pde, "flux", d,
                    vectorized=False, src="p", dst="flux",
                )
                contract_axis(
                    neg_deriv, flux, pnext, AXIS_OF_DIM[d], self.registry,
                    accumulate=True, recorder=recorder,
                    matrix_name="D", src_name="flux", dst_name="pnext",
                )
                if self.pde.has_ncp:
                    contract_axis(
                        deriv, p, grad_q, AXIS_OF_DIM[d], self.registry,
                        recorder=recorder, matrix_name="D", src_name="p",
                        dst_name="gradQ",
                    )
                    pnext[..., :m] -= self.pde.ncp(grad_q[..., :m], p[..., :m], d)
                    record_user_function(
                        recorder, f"ncp_{'xyz'[d]}", self.spec, self.pde, "ncp", d,
                        vectorized=False, src="gradQ", dst="pnext", extra_read="p",
                    )
            if source is not None:
                term = source.term(o)
                pnext[..., :m] += term
                savg[..., :m] += coef[o] * term
                record_source(recorder, self.spec, dst="pnext")
            pnext[..., nvar:m] = params
            p, pnext = pnext, p  # swap(p, ptemp) in Fig. 5

        # Recompute the time-averaged volume contributions from qavg
        # (linearity of the scheme: favg_d = V_d qavg).  The flux input
        # carries the real material parameters; qavg's own parameter
        # slots are set to their exact time integral afterwards.
        recorder.phase("favg_recompute")
        qavg[..., nvar:m] = params
        for d in range(3):
            flux[..., :m] = self.pde.flux(qavg[..., :m], d)
            flux[..., m:] = 0.0
            record_user_function(
                recorder, f"flux_avg_{'xyz'[d]}", self.spec, self.pde, "flux", d,
                vectorized=False, src="qavg", dst="flux",
            )
            contract_axis(
                neg_deriv, flux, favg[d], AXIS_OF_DIM[d], self.registry,
                recorder=recorder, matrix_name="D", src_name="flux",
                dst_name="favg",
            )
            if self.pde.has_ncp:
                contract_axis(
                    deriv, qavg, grad_q, AXIS_OF_DIM[d], self.registry,
                    recorder=recorder, matrix_name="D", src_name="qavg",
                    dst_name="gradQ",
                )
                favg[d, ..., :m] -= self.pde.ncp(grad_q[..., :m], qavg[..., :m], d)
                record_user_function(
                    recorder, f"ncp_avg_{'xyz'[d]}", self.spec, self.pde, "ncp", d,
                    vectorized=False, src="gradQ", dst="favg", extra_read="qavg",
                )

        # Exact time integral of the constant parameters.
        qavg[..., nvar:m] = dt * params

        recorder.phase("face_projection")
        qavg_c = layout.unpack(qavg)
        qface = self.project_faces(qavg_c, recorder)
        return STPResult(
            qavg=qavg_c,
            vavg=np.stack([layout.unpack(favg[d]) for d in range(3)]),
            savg=None if savg is None else layout.unpack(savg),
            qface=qface,
        )
