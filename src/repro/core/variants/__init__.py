"""The Space-Time-Predictor kernel variants of the paper.

============ ======================================================== =========
variant      description                                              paper
============ ======================================================== =========
generic      scalar reference implementation, full space-time storage Fig. 1
log          vectorized Loop-over-GEMM on padded AoS tensors          Sec. III
splitck      dimension-split CK with minimized memory footprint       Sec. IV
aosoa        SplitCK on the hybrid AoSoA layout, vectorized user fns  Sec. V
transpose_uf SplitCK numerics with transposed-input user functions    Sec. V-A
============ ======================================================== =========

All variants compute identical outputs (up to floating point rounding)
-- the test-suite enforces this against a dense-operator oracle.  The
table above is kept in sync with :data:`KERNEL_CLASSES` by a test.

On top of the per-element kernels,
:class:`~repro.core.variants.batched.BatchedSTP` executes any variant
over element blocks with cached operators and a preallocated scratch
arena (an execution driver, not a separate variant).
"""

from repro.core.variants.base import (
    ElementSource,
    MultiElementSource,
    STPKernel,
    STPResult,
    combine_sources,
)
from repro.core.variants.batched import BatchedSTP, OperatorSet, ScratchArena, operator_set
from repro.core.variants.generic import GenericSTP
from repro.core.variants.log_kernel import LoGSTP
from repro.core.variants.splitck import SplitCKSTP
from repro.core.variants.aosoa import AoSoASTP
from repro.core.variants.transposed import TransposedUFSTP

__all__ = [
    "STPKernel",
    "STPResult",
    "ElementSource",
    "MultiElementSource",
    "combine_sources",
    "GenericSTP",
    "LoGSTP",
    "SplitCKSTP",
    "AoSoASTP",
    "TransposedUFSTP",
    "BatchedSTP",
    "OperatorSet",
    "ScratchArena",
    "operator_set",
    "make_kernel",
    "KERNEL_CLASSES",
]

KERNEL_CLASSES = {
    "generic": GenericSTP,
    "log": LoGSTP,
    "splitck": SplitCKSTP,
    "aosoa": AoSoASTP,
    # The Sec. V-A design alternative the paper evaluated and rejected
    # for linear systems; kept for the ablation experiments.
    "transpose_uf": TransposedUFSTP,
}


def make_kernel(variant: str, spec, pde) -> STPKernel:
    """Instantiate an STP kernel variant by name."""
    try:
        cls = KERNEL_CLASSES[variant]
    except KeyError:
        raise ValueError(
            f"unknown variant {variant!r}; available: {sorted(KERNEL_CLASSES)}"
        ) from None
    return cls(spec, pde)
