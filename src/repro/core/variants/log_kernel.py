"""The Loop-over-GEMM STP kernel (paper Sec. III).

Same algorithm and storage as the generic kernel (the user API is
preserved), but

* all tensors use the padded, aligned AoS layout (quantity dimension
  zero-padded to the SIMD width, Sec. III-A),
* every discrete derivative is a Loop-over-GEMM: batches of small
  LIBXSMM-style matrix multiplications on tensor matrix slices, with
  faster dimensions fused into the GEMM columns (Sec. III-B, Fig. 3),
* the accumulation loops vectorize at the full architecture width
  (padded + aligned arrays), and
* the point-wise user functions remain scalar -- the AoS layout denies
  them SIMD (the conflict Sec. V resolves).

The memory footprint is unchanged at ``O(N^{d+1} m d)`` -- this variant
is the one that exposes the L2-cache bottleneck of Sec. IV-A.
"""

from __future__ import annotations

import numpy as np

from repro.codegen.plan import NULL_RECORDER
from repro.core.layouts import Layout, TensorLayout
from repro.core.variants.base import AXIS_OF_DIM, ElementSource, STPKernel, STPResult, taylor_coefficients
from repro.core.variants.common import (
    record_axpy,
    record_copy,
    record_source,
    record_user_function,
)
from repro.tensor.contraction import contract_axis

__all__ = ["LoGSTP"]


class LoGSTP(STPKernel):
    """Vectorized Loop-over-GEMM Space-Time Predictor (AoS layout)."""

    variant = "log"

    def predictor(
        self,
        q: np.ndarray,
        dt: float,
        h: float,
        source: ElementSource | None = None,
        recorder=NULL_RECORDER,
    ) -> STPResult:
        self._check_input(q)
        n, m = self.n, self.m
        layout = TensorLayout.for_spec(Layout.AOS, self.spec)
        mpad = layout.mpad
        width = 64 * self.vector_doubles
        space = (n, n, n, mpad)
        neg_deriv = -self.ops.derivative / h
        deriv = self.ops.derivative / h

        # Full space-time storage as in the generic variant, but padded.
        p = np.zeros((n + 1,) + space)
        flux = np.zeros((n, 3) + space)
        d_f = np.zeros((n, 3) + space)
        grad_q = np.zeros((n, 3) + space) if self.pde.has_ncp else np.zeros((0,))
        qavg = np.zeros(space)
        favg = np.zeros((3,) + space)
        savg = np.zeros(space) if source is not None else None

        recorder.phase("predictor")
        recorder.buffer("q", q.nbytes, "input")
        recorder.buffer("D", self.ops.derivative.nbytes, "const")
        # Slot-wise registration: the cache model must see the kernel
        # stream through the full O(N^{d+1} m d) space-time storage.
        slot = n**3 * mpad * 8
        for o in range(n + 1):
            recorder.buffer(f"p[{o}]", slot, "temp")
        for o in range(n):
            for d in range(3):
                recorder.buffer(f"flux[{o}][{d}]", slot, "temp")
                recorder.buffer(f"dF[{o}][{d}]", slot, "temp")
                if self.pde.has_ncp:
                    recorder.buffer(f"gradQ[{o}][{d}]", slot, "temp")
        recorder.buffer("qavg", qavg.nbytes, "output")
        recorder.buffer("favg", favg.nbytes, "output")
        if source is not None:
            recorder.buffer("source_P", source.projection.nbytes, "const")
            recorder.buffer("savg", savg.nbytes, "output")

        p[0] = layout.pack(q)
        record_copy(recorder, "init_p0", n**3 * mpad, "q", "p[0]")

        # Static parameters are restored into every p^(o) (they are not
        # time-differentiated; the flux user functions need them).
        nvar = self.pde.nvar
        params = q[..., nvar:]

        nodes_pad = n**3 * mpad
        for o in range(n):
            for d in range(3):
                flux[o, d, ..., :m] = self.pde.flux(p[o, ..., :m], d)
                record_user_function(
                    recorder, f"flux_{'xyz'[d]}", self.spec, self.pde, "flux", d,
                    vectorized=False, src=f"p[{o}]", dst=f"flux[{o}][{d}]",
                )
            for d in range(3):
                contract_axis(
                    neg_deriv, flux[o, d], d_f[o, d], AXIS_OF_DIM[d], self.registry,
                    recorder=recorder, matrix_name="D",
                    src_name=f"flux[{o}][{d}]", dst_name=f"dF[{o}][{d}]",
                )
            if self.pde.has_ncp:
                for d in range(3):
                    contract_axis(
                        deriv, p[o], grad_q[o, d], AXIS_OF_DIM[d], self.registry,
                        recorder=recorder, matrix_name="D", src_name=f"p[{o}]",
                        dst_name=f"gradQ[{o}][{d}]",
                    )
                for d in range(3):
                    d_f[o, d, ..., :m] -= self.pde.ncp(
                        grad_q[o, d, ..., :m], p[o, ..., :m], d
                    )
                    record_user_function(
                        recorder, f"ncp_{'xyz'[d]}", self.spec, self.pde, "ncp", d,
                        vectorized=False, src=f"gradQ[{o}][{d}]",
                        dst=f"dF[{o}][{d}]", extra_read=f"p[{o}]",
                    )
            for d in range(3):
                p[o + 1] += d_f[o, d]
                record_axpy(recorder, "assemble_p", nodes_pad, width,
                            reads=(f"dF[{o}][{d}]",), write=f"p[{o + 1}]",
                            flops_per_double=1.0)
            if source is not None:
                p[o + 1, ..., :m] += source.term(o)
                record_source(recorder, self.spec, dst=f"p[{o + 1}]")
            p[o + 1, ..., nvar:m] = params

        recorder.phase("time_average")
        coef = taylor_coefficients(n, dt)
        for o in range(n):
            qavg += coef[o] * p[o]
            record_axpy(recorder, "qavg_update", nodes_pad, width,
                        reads=(f"p[{o}]",), write="qavg")
        for d in range(3):
            for o in range(n):
                favg[d] += coef[o] * d_f[o, d]
                record_axpy(recorder, "favg_update", nodes_pad, width,
                            reads=(f"dF[{o}][{d}]",), write="favg")
        if source is not None:
            for o in range(n):
                savg[..., :m] += coef[o] * source.term(o)
            record_source(recorder, self.spec, dst="savg")

        # Exact time integral of the constant parameters.
        qavg[..., nvar:m] = dt * params

        recorder.phase("face_projection")
        qavg_c = layout.unpack(qavg)
        qface = self.project_faces(qavg_c, recorder)
        return STPResult(
            qavg=qavg_c,
            vavg=np.stack([layout.unpack(favg[d]) for d in range(3)]),
            savg=None if savg is None else layout.unpack(savg),
            qface=qface,
        )
