"""Shared numeric helpers and plan-recording primitives for the variants."""

from __future__ import annotations

import numpy as np

from repro.codegen.plan import BufferAccess
from repro.core.spec import KernelSpec
from repro.core.variants.base import AXIS_OF_DIM
from repro.machine.isa import FlopCounts
from repro.pde.base import LinearPDE

__all__ = [
    "derive_canonical",
    "record_user_function",
    "record_axpy",
    "record_copy",
    "record_derive_sweep",
    "record_face_projection",
    "record_source",
]


def derive_canonical(arr: np.ndarray, matrix: np.ndarray, d: int) -> np.ndarray:
    """Apply ``matrix`` along PDE direction ``d`` of a canonical tensor.

    ``out[.., l, ..] = sum_j matrix[l, j] arr[.., j, ..]`` along the
    spatial axis of direction ``d`` -- the einsum reference the generic
    kernel uses (its triple-loop C analog carries no GEMM structure).
    """
    axis = AXIS_OF_DIM[d]
    return np.moveaxis(np.tensordot(matrix, arr, axes=([1], [axis])), 0, axis)


# ---------------------------------------------------------------------------
# plan-recording helpers
#
# These encode the "compilation model" of each sweep: which packing width
# the compiler achieves for it.  Constants are documented at the call
# sites in the variant implementations.
# ---------------------------------------------------------------------------


def _vectorized_flops(flops_per_lane_group: float, logical: int, vec: int) -> float:
    """FLOPs executed when a loop of ``logical`` lanes runs in ``vec`` chunks."""
    groups = (logical + vec - 1) // vec
    return flops_per_lane_group * groups * vec / logical


def record_user_function(
    recorder,
    name: str,
    spec: KernelSpec,
    pde: LinearPDE,
    kind: str,
    d: int,
    *,
    vectorized: bool,
    src: str,
    dst: str,
    extra_read: str | None = None,
    heavy: bool = False,
) -> None:
    """Record one flux/NCP sweep over all element nodes.

    * ``vectorized=False``: the default point-wise API -- one scalar
      call per quadrature node (paper Sec. III-A: user functions stay
      scalar under the AoS layout).
    * ``vectorized=True``: the AoSoA API of Sec. V-C -- the function
      processes whole x-lines with SIMD instructions; the padded tail
      of each line executes real (masked) vector operations, so FLOPs
      are inflated by ``npad / n`` like every other padded loop.
    """
    n, m = spec.order, spec.nquantities
    nodes = n**3
    per_node = (
        pde.flux_flops_per_node(d) if kind == "flux" else pde.ncp_flops_per_node(d)
    )
    logical_flops = nodes * per_node
    if vectorized:
        vec = spec.architecture.vector_doubles
        flops = FlopCounts.at_width(
            _vectorized_flops(logical_flops, n, vec) if vec > 1 else logical_flops,
            64 * vec,
        )
    else:
        flops = FlopCounts.at_width(float(logical_flops), 64)
    nbytes = 8.0 * nodes * m
    accesses = [BufferAccess(src, read_bytes=nbytes), BufferAccess(dst, write_bytes=nbytes)]
    if extra_read is not None:
        accesses.insert(1, BufferAccess(extra_read, read_bytes=nbytes))
    recorder.pointwise(name, flops, tuple(accesses),
                       eff_class="heavy" if heavy else "default")


def record_axpy(
    recorder,
    name: str,
    doubles: int,
    width_bits: int,
    reads: tuple[str, ...],
    write: str,
    flops_per_double: float = 2.0,
) -> None:
    """Record an elementwise multiply-accumulate sweep over ``doubles`` lanes.

    ``doubles`` should be the *stored* (padded) length: padded lanes
    execute real FLOPs, exactly like in the GEMMs.  ``flops_per_double``
    is 2 for a multiply-add, 1 for a plain addition.
    """
    flops = FlopCounts.at_width(flops_per_double * doubles, width_bits)
    accesses = tuple(BufferAccess(r, read_bytes=8.0 * doubles) for r in reads) + (
        BufferAccess(write, read_bytes=8.0 * doubles, write_bytes=8.0 * doubles),
    )
    recorder.pointwise(name, flops, accesses)


def record_copy(recorder, name: str, doubles: int, src: str, dst: str) -> None:
    """Record a pure copy sweep (no FLOPs)."""
    recorder.pointwise(
        name,
        FlopCounts(),
        (
            BufferAccess(src, read_bytes=8.0 * doubles),
            BufferAccess(dst, write_bytes=8.0 * doubles),
        ),
    )


def record_clear(recorder, name: str, doubles: int, dst: str) -> None:
    """Record a memset sweep (write-only, no FLOPs)."""
    recorder.pointwise(
        name, FlopCounts(), (BufferAccess(dst, write_bytes=8.0 * doubles),)
    )


def record_derive_sweep(
    recorder,
    name: str,
    spec: KernelSpec,
    *,
    src: str,
    dst: str,
    accumulate: bool = False,
) -> None:
    """Record the generic kernel's scalar ``derive`` loop along one dimension.

    Each of the ``N^3 * m`` outputs contracts ``N`` entries -- ``2 N``
    scalar FLOPs per output.  The generic triple-loop with runtime
    strides and a virtual-call-riddled body does not auto-vectorize
    (paper Sec. VI-A: "only a fraction of the code can be
    auto-vectorized"), so the attribution is fully scalar.
    """
    n, m = spec.order, spec.nquantities
    flops = FlopCounts.at_width(2.0 * n * n**3 * m, 64)
    nbytes = 8.0 * n**3 * m
    recorder.pointwise(
        name,
        flops,
        (
            BufferAccess(src, read_bytes=nbytes),
            BufferAccess(
                dst,
                read_bytes=nbytes if accumulate else 0.0,
                write_bytes=nbytes,
            ),
        ),
        eff_class="heavy",
    )


def record_face_projection(recorder, spec: KernelSpec, width_bits: int) -> None:
    """Record the six face-projection matmuls (2 N^4 m FLOPs per face)."""
    n, m = spec.order, spec.nquantities
    flops = FlopCounts.at_width(6 * 2.0 * n * n**2 * m, width_bits)
    nbytes_in = 8.0 * n**3 * m
    nbytes_out = 6 * 8.0 * n**2 * m
    recorder.buffer("qface", int(nbytes_out), "output")
    recorder.pointwise(
        "face_projection",
        flops,
        (
            BufferAccess("qavg", read_bytes=6 * nbytes_in),
            BufferAccess("qface", write_bytes=nbytes_out),
        ),
    )


def record_source(recorder, spec: KernelSpec, dst: str, width_bits: int = 64) -> None:
    """Record one point-source injection sweep (``3 N^3 m`` scalar-ish FLOPs)."""
    n, m = spec.order, spec.nquantities
    flops = FlopCounts.at_width(3.0 * n**3 * m, width_bits)
    recorder.pointwise(
        "point_source",
        flops,
        (
            BufferAccess("source_P", read_bytes=8.0 * n**3),
            BufferAccess(dst, read_bytes=8.0 * n**3 * m, write_bytes=8.0 * n**3 * m),
        ),
    )
