"""The generic STP kernel (paper Fig. 1, Sec. II-B).

This is the scalar reference implementation: it follows the
mathematical formulation of eq. (4) directly, storing the *entire*
space-time predictor ``p[o]`` and its fluctuations ``dF[o, d]`` (plus
the ``flux`` and ``gradQ`` work tensors) before accumulating the time
averages -- the ``O(N^{d+1} m d)`` memory footprint that Sec. IV-A
identifies as the L2-cache bottleneck.

Compilation model recorded in the plan (cf. Fig. 9, "Generic" panel):
the flux/NCP user functions are virtual point-wise calls and the
``derive`` triple-loops have runtime strides, so neither vectorizes;
only the simple contiguous accumulation loops (predictor assembly and
time averaging) are auto-vectorized by the compiler, at 256-bit
(icc's default preference below aggressive zmm usage).

Note on the point source: Fig. 1's pseudocode adds ``pointSource(t_n)``
to ``p[0]``; we inject the ``o``-th source derivative into ``p[o+1]``
instead, which is the dimensionally consistent Cauchy-Kowalewsky
treatment (the ODE ``q_t = V q + P a s(t)`` Taylor-expanded in time).
All variants share this convention, so their outputs stay comparable.
"""

from __future__ import annotations

import numpy as np

from repro.codegen.plan import NULL_RECORDER
from repro.core.variants.base import ElementSource, STPKernel, STPResult, taylor_coefficients
from repro.core.variants.common import (
    derive_canonical,
    record_axpy,
    record_copy,
    record_derive_sweep,
    record_source,
    record_user_function,
)

__all__ = ["GenericSTP"]


class GenericSTP(STPKernel):
    """Scalar reference Space-Time Predictor with full space-time storage."""

    variant = "generic"

    @property
    def vector_doubles(self) -> int:
        return 1  # generic kernels are compiled without architecture tailoring

    def predictor(
        self,
        q: np.ndarray,
        dt: float,
        h: float,
        source: ElementSource | None = None,
        recorder=NULL_RECORDER,
    ) -> STPResult:
        self._check_input(q)
        n, m = self.n, self.m
        nodes = n**3
        neg_deriv = -self.ops.derivative / h  # hard-coded constant (Sec. III-C)
        deriv = self.ops.derivative / h

        # Full space-time storage, exactly as in Fig. 1.
        p = np.zeros((n + 1, n, n, n, m))
        flux = np.zeros((n, 3, n, n, n, m))
        d_f = np.zeros((n, 3, n, n, n, m))
        grad_q = np.zeros((n, 3, n, n, n, m))
        qavg = np.zeros((n, n, n, m))
        favg = np.zeros((3, n, n, n, m))
        savg = np.zeros((n, n, n, m)) if source is not None else None

        recorder.phase("predictor")
        recorder.buffer("q", q.nbytes, "input")
        # The space-time arrays are registered slot-wise so the cache
        # model sees the kernel stream through O(N^{d+1} m d) distinct
        # storage -- the footprint Sec. IV-A is about.
        slot = nodes * m * 8
        for o in range(n + 1):
            recorder.buffer(f"p[{o}]", slot, "temp")
        for o in range(n):
            for d in range(3):
                recorder.buffer(f"flux[{o}][{d}]", slot, "temp")
                recorder.buffer(f"dF[{o}][{d}]", slot, "temp")
                if self.pde.has_ncp:
                    recorder.buffer(f"gradQ[{o}][{d}]", slot, "temp")
        recorder.buffer("qavg", qavg.nbytes, "output")
        recorder.buffer("favg", favg.nbytes, "output")
        if source is not None:
            recorder.buffer("source_P", source.projection.nbytes, "const")
            recorder.buffer("savg", savg.nbytes, "output")

        p[0] = q
        record_copy(recorder, "init_p0", nodes * m, "q", "p[0]")

        # Static parameters: ExaHyPE stores them alongside the evolved
        # quantities but they are not time-differentiated.  We restore
        # them into every p^(o) so the (linear-in-variables) flux user
        # functions always see valid material data.
        nvar = self.pde.nvar
        params = q[..., nvar:]

        has_ncp = self.pde.has_ncp
        for o in range(n):
            for d in range(3):
                flux[o, d] = self.pde.flux(p[o], d)
                record_user_function(
                    recorder, f"flux_{'xyz'[d]}", self.spec, self.pde, "flux", d,
                    vectorized=False, src=f"p[{o}]", dst=f"flux[{o}][{d}]",
                    heavy=True,
                )
            for d in range(3):
                d_f[o, d] = derive_canonical(flux[o, d], neg_deriv, d)
                record_derive_sweep(recorder, f"derive_flux_{'xyz'[d]}", self.spec,
                                    src=f"flux[{o}][{d}]", dst=f"dF[{o}][{d}]")
            if has_ncp:
                for d in range(3):
                    grad_q[o, d] = derive_canonical(p[o], deriv, d)
                    record_derive_sweep(recorder, f"derive_grad_{'xyz'[d]}", self.spec,
                                        src=f"p[{o}]", dst=f"gradQ[{o}][{d}]")
                for d in range(3):
                    d_f[o, d] -= self.pde.ncp(grad_q[o, d], p[o], d)
                    record_user_function(
                        recorder, f"ncp_{'xyz'[d]}", self.spec, self.pde, "ncp", d,
                        vectorized=False, src=f"gradQ[{o}][{d}]",
                        dst=f"dF[{o}][{d}]", extra_read=f"p[{o}]", heavy=True,
                    )
            # Assemble the next time derivative p^(o+1) = sum_d dF[o, d] (+ source).
            for d in range(3):
                p[o + 1] += d_f[o, d]
                record_axpy(recorder, "assemble_p", nodes * m, 256,
                            reads=(f"dF[{o}][{d}]",), write=f"p[{o + 1}]",
                            flops_per_double=1.0)
            if source is not None:
                p[o + 1] += source.term(o)
                record_source(recorder, self.spec, dst=f"p[{o + 1}]")
            p[o + 1, ..., nvar:] = params

        recorder.phase("time_average")
        coef = taylor_coefficients(n, dt)
        for o in range(n):
            qavg += coef[o] * p[o]
            record_axpy(recorder, "qavg_update", nodes * m, 256,
                        reads=(f"p[{o}]",), write="qavg")
        for d in range(3):
            for o in range(n):
                favg[d] += coef[o] * d_f[o, d]
                record_axpy(recorder, "favg_update", nodes * m, 256,
                            reads=(f"dF[{o}][{d}]",), write="favg")
        if source is not None:
            for o in range(n):
                savg += coef[o] * source.term(o)
            record_source(recorder, self.spec, dst="savg")

        # Exact time integral of the constant parameters.
        qavg[..., nvar:] = dt * params

        recorder.phase("face_projection")
        qface = self.project_faces(qavg, recorder)
        return STPResult(qavg=qavg, vavg=favg, savg=savg, qface=qface)
