"""The on-the-fly-transpose variant the paper evaluated and rejected.

Sec. V-A: "One way to get around this issue is to transpose the tensors
on-the-fly to switch the data layout from AoS to SoA and back before
and after calling the user functions.  This was tested in both linear
and non-linear STP kernels ...  It proved effective for complex
non-linear scenarios ...  However, the linear PDE systems in the
targeted seismic applications have too simple (and inexpensive) user
functions for such a solution to be effective, despite achieving the
targeted high ratio of vectorized floating point operations."

This variant reproduces that design point: the SplitCK algorithm on
AoS tensors, but every user-function sweep is bracketed by a full
AoS -> SoA transpose and back, and the user function itself runs
vectorized.  The ablation benchmark
(``benchmarks/bench_ablation_transpose.py``) shows exactly the paper's
conclusion emerging from the machine model: near-full vectorization,
yet slower than both plain SplitCK and AoSoA for the cheap linear
fluxes -- while a hypothetical expensive user function flips the
verdict.
"""

from __future__ import annotations

import numpy as np

from repro.codegen.plan import NULL_RECORDER
from repro.core.layouts import Layout, TensorLayout
from repro.core.variants.base import ElementSource, STPResult
from repro.core.variants.common import record_user_function
from repro.core.variants.splitck import SplitCKSTP

__all__ = ["TransposedUFSTP"]


class TransposedUFSTP(SplitCKSTP):
    """SplitCK with on-the-fly SoA transposes around the user functions."""

    variant = "transpose_uf"

    def predictor(
        self,
        q: np.ndarray,
        dt: float,
        h: float,
        source: ElementSource | None = None,
        recorder=NULL_RECORDER,
    ) -> STPResult:
        # Wrap the recorder so that every scalar user-function record
        # emitted by the SplitCK base is replaced by the transpose /
        # vectorized-call / transpose-back triple this variant executes.
        soa = TensorLayout.for_spec(Layout.SOA, self.spec)
        wrapped = _TransposingRecorder(recorder, self.spec, self.pde, soa.nbytes)
        return super().predictor(q, dt, h, source=source, recorder=wrapped)


class _TransposingRecorder:
    """Recorder adapter: rewrites user-function ops into the SoA scheme.

    The numeric results are unchanged (the transposes are layout
    changes); only the recorded cost model differs, which is what the
    machine simulation consumes.
    """

    _USER_PREFIXES = ("flux_", "ncp_")

    def __init__(self, inner, spec, pde, soa_bytes: int):
        self.inner = inner
        self.spec = spec
        self.pde = pde
        self.soa_bytes = int(soa_bytes)
        self._registered = False

    # -- pass-through structure -----------------------------------------

    def phase(self, name: str) -> None:
        self.inner.phase(name)

    def buffer(self, name: str, nbytes: int, scope: str) -> None:
        self.inner.buffer(name, nbytes, scope)

    def gemm(self, gemm, batch, a, b, c) -> None:
        self.inner.gemm(gemm, batch, a, b, c)

    def transpose(self, name, src, dst, nbytes) -> None:
        self.inner.transpose(name, src, dst, nbytes)

    # -- the rewrite --------------------------------------------------------

    def pointwise(self, name, flops, accesses, eff_class="default") -> None:
        if not name.startswith(self._USER_PREFIXES):
            self.inner.pointwise(name, flops, accesses, eff_class)
            return
        if not self._registered:
            self.inner.buffer("soaQ", self.soa_bytes, "temp")
            self.inner.buffer("soaF", self.soa_bytes, "temp")
            self._registered = True
        src = accesses[0].buffer
        dst = accesses[-1].buffer
        nbytes = 8.0 * self.spec.order**3 * self.spec.nquantities
        d = {"x": 0, "y": 1, "z": 2}[name.split("_")[-1][0]]
        kind = "flux" if name.startswith("flux_") else "ncp"
        self.inner.transpose("aos->soa", src, "soaQ", nbytes)
        record_user_function(
            self.inner, f"{name}_soa_vect", self.spec, self.pde, kind, d,
            vectorized=True, src="soaQ", dst="soaF",
        )
        self.inner.transpose("soa->aos", "soaF", dst, nbytes)
