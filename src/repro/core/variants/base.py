"""Common machinery of the STP kernel variants.

Every variant consumes the element state at ``t_n`` and produces the
corrector inputs of eq. (5):

* ``qavg`` -- the time-integrated predictor
  :math:`\\bar q = \\sum_{o} \\frac{\\Delta t^{o+1}}{(o+1)!} V^o q(t_n)`,
* ``vavg[d]`` -- the per-dimension time-integrated volume contributions
  (the pseudocode's ``favg``), whose sum equals :math:`V \\bar q`,
* ``savg`` -- the time-integrated point-source contribution, and
* ``qface`` -- ``qavg`` projected onto the six element faces.

The kernels operate on the *canonical* interface layout: input and
output arrays are unpadded ``(N, N, N, m)`` tensors in ``(z, y, x,
quantity)`` order.  Whatever padded internal layout a variant uses is
its own business -- exactly the engine/kernel API boundary of the
paper.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.basis.operators import cached_operators
from repro.codegen.plan import NULL_RECORDER, KernelPlan, PlanRecorder
from repro.core.spec import KernelSpec
from repro.gemm.registry import GemmRegistry
from repro.pde.base import LinearPDE

__all__ = [
    "STPKernel",
    "STPResult",
    "ElementSource",
    "MultiElementSource",
    "combine_sources",
    "AXIS_OF_DIM",
]

#: canonical array axis of each PDE direction (arrays are (z, y, x, m))
AXIS_OF_DIM = {0: 2, 1: 1, 2: 0}


@dataclass(frozen=True)
class ElementSource:
    """Element-local view of a point source for the Cauchy-Kowalewsky loop.

    Attributes
    ----------
    projection:
        Nodal projection ``P`` of the Dirac, shape ``(N, N, N)``
        (``z, y, x``) -- see
        :meth:`repro.basis.operators.DGOperators.source_projection`.
    amplitude:
        Source amplitude per quantity, shape ``(m,)`` (zero in the
        parameter slots).
    derivatives:
        Time derivatives ``s^(o)(t_n)`` of the source signal for
        ``o = 0 .. N-1``.
    """

    projection: np.ndarray
    amplitude: np.ndarray
    derivatives: np.ndarray

    def term(self, o: int) -> np.ndarray:
        """Contribution to ``p^(o+1)``: ``P (x) a * s^(o)(t_n)``."""
        return (
            self.projection[..., None]
            * self.amplitude
            * float(self.derivatives[o])
        )

    @property
    def parts(self) -> tuple["ElementSource", ...]:
        """The rank-1 constituents; a single source is its own part."""
        return (self,)


@dataclass(frozen=True)
class MultiElementSource:
    """Several point sources located in the same element, summed.

    The scheme is linear in the source term, so co-located sources
    superpose exactly: every consumer only ever needs the summed
    per-degree contribution :meth:`term`, which is the sum of the
    parts' rank-1 terms.  Kernels that inspect the constituents (the
    Picard predictor, the plan recorder) iterate :attr:`parts`.
    """

    #: the co-located sources being summed (at least two)
    parts: tuple[ElementSource, ...]

    def __post_init__(self):
        if len(self.parts) < 2:
            raise ValueError("MultiElementSource needs at least two parts")

    def term(self, o: int) -> np.ndarray:
        """Summed contribution to ``p^(o+1)`` over all parts."""
        total = self.parts[0].term(o)
        for part in self.parts[1:]:
            total = total + part.term(o)
        return total

    @property
    def projection(self) -> np.ndarray:
        """Stacked nodal projections ``(k, N, N, N)`` of all parts.

        Exposed so the plan recorder's buffer accounting sees the
        combined footprint; the numerics go through :meth:`term`.
        """
        return np.stack([part.projection for part in self.parts])


def combine_sources(parts) -> "ElementSource | MultiElementSource | None":
    """Combine the point sources of one element into a single term.

    Returns ``None`` for an empty list, the source itself for one, and
    a :class:`MultiElementSource` summing the contributions otherwise
    (sound because the predictor is linear in the source term).
    """
    parts = list(parts)
    if not parts:
        return None
    if len(parts) == 1:
        return parts[0]
    return MultiElementSource(tuple(parts))


@dataclass
class STPResult:
    """Outputs of one Space-Time-Predictor invocation (canonical layout)."""

    qavg: np.ndarray  # (N, N, N, m)
    vavg: np.ndarray  # (3, N, N, N, m), per PDE direction
    savg: np.ndarray | None = None  # (N, N, N, m) or None
    qface: dict = field(default_factory=dict)  # (d, side) -> (N, N, m)

    @property
    def vavg_total(self) -> np.ndarray:
        """Summed volume contribution ``V qavg`` used by the corrector."""
        return self.vavg.sum(axis=0)


def taylor_coefficients(norder: int, dt: float) -> np.ndarray:
    """``dt^{o+1} / (o+1)!`` for ``o = 0 .. norder-1`` (eq. 4's weights)."""
    coef = np.empty(norder)
    value = dt
    for o in range(norder):
        value_next = value  # dt^{o+1}/(o+1)! at loop entry
        coef[o] = value_next
        value = value * dt / (o + 2)
    return coef


class STPKernel(ABC):
    """Base class of the four STP kernel variants."""

    #: variant name, set by subclasses
    variant: str = "base"

    def __init__(self, spec: KernelSpec, pde: LinearPDE):
        if spec.dim != 3:
            raise ValueError("the STP kernels are implemented for d = 3")
        if pde.nquantities != spec.nquantities:
            raise ValueError(
                f"PDE has m={pde.nquantities} quantities, spec expects "
                f"m={spec.nquantities}"
            )
        if not getattr(pde, "is_linear", True):
            raise TypeError(
                f"{pde.name} is nonlinear; the Cauchy-Kowalewsky kernels "
                "require a linear system -- use the Picard predictor "
                "(repro.core.picard.PicardSTP)"
            )
        self.spec = spec
        self.pde = pde
        self.ops = cached_operators(spec.order, spec.quadrature)
        self.registry = GemmRegistry(self.vector_doubles)

    # -- per-variant knobs -------------------------------------------------

    @property
    def vector_doubles(self) -> int:
        """SIMD width the variant's generated code uses (1 = scalar)."""
        return self.spec.architecture.vector_doubles

    @property
    def n(self) -> int:
        """Nodes per dimension (the order ``N``)."""
        return self.spec.order

    @property
    def m(self) -> int:
        """Quantities per node, evolved variables plus parameters."""
        return self.spec.nquantities

    # -- the kernel ----------------------------------------------------------

    @abstractmethod
    def predictor(
        self,
        q: np.ndarray,
        dt: float,
        h: float,
        source: ElementSource | None = None,
        recorder=NULL_RECORDER,
    ) -> STPResult:
        """Run the Space-Time Predictor on one element.

        Parameters
        ----------
        q:
            Element state at ``t_n``, canonical ``(N, N, N, m)``.
        dt:
            Time step.
        h:
            Physical element edge length (cubic elements).
        source:
            Optional point source active in this element.
        recorder:
            Plan recorder hook; ``NULL_RECORDER`` for pure numerics.
        """

    # -- face projection (shared; "a single matrix multiplication") ----------

    def project_faces(self, qavg: np.ndarray, recorder=NULL_RECORDER) -> dict:
        """Project ``qavg`` onto the six faces with the boundary vectors."""
        left, right = self.ops.face_left, self.ops.face_right
        faces = {}
        for d in range(3):
            axis = AXIS_OF_DIM[d]
            faces[(d, 0)] = np.tensordot(left, qavg, axes=([0], [axis]))
            faces[(d, 1)] = np.tensordot(right, qavg, axes=([0], [axis]))
        from repro.core.variants.common import record_face_projection

        record_face_projection(recorder, self.spec, self.face_width_bits)
        return faces

    @property
    def face_width_bits(self) -> int:
        """Instruction width of the face-projection matmuls."""
        return 64 * self.vector_doubles

    # -- plan generation -------------------------------------------------------

    def build_plan(self, with_source: bool = True, dt: float = 1e-3, h: float = 1.0) -> KernelPlan:
        """Record the kernel's operation plan by executing it once.

        Because the plan is recorded from the numeric code path, its
        GEMM shapes, buffer sizes and operation order are exactly those
        of the executed kernel.
        """
        n = self.n
        q = self.pde.example_state((n, n, n))
        source = None
        if with_source:
            amp = np.zeros(self.m)
            amp[: self.pde.nvar] = 1.0
            source = ElementSource(
                projection=self.ops.source_projection(np.full(3, 0.5)),
                amplitude=amp,
                derivatives=np.ones(n),
            )
        recorder = PlanRecorder(self.variant, self.spec)
        self.predictor(q, dt=dt, h=h, source=source, recorder=recorder)
        return recorder.finish()

    # -- misc ---------------------------------------------------------------------

    def _check_input(self, q: np.ndarray) -> None:
        n, m = self.n, self.m
        if q.shape != (n, n, n, m):
            raise ValueError(f"expected element state {(n, n, n, m)}, got {q.shape}")

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(order={self.n}, m={self.m}, "
            f"arch={self.spec.arch!r}, pde={self.pde.name!r})"
        )
