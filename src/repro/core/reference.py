"""Dense-operator Cauchy-Kowalewsky oracle.

Independent cross-check for the STP kernel variants: the discrete
volume operator ``V`` of Sec. II-A is assembled as an explicit dense
``(N^3 m) x (N^3 m)`` matrix -- per-dimension, from the PDE's flux and
NCP matrices at every node -- and the predictor is evaluated as the
matrix Taylor series of eq. (4).  No tensor machinery, no layouts, no
GEMM batching is shared with the kernels, so agreement is meaningful.

Only practical at small orders (the matrix has ``(N^3 m)^2`` entries);
the test-suite uses ``N = 3 .. 5``.
"""

from __future__ import annotations

from itertools import product

import numpy as np

from repro.basis.operators import cached_operators
from repro.core.spec import KernelSpec
from repro.core.variants.base import AXIS_OF_DIM, ElementSource, STPResult, taylor_coefficients
from repro.pde.base import LinearPDE

__all__ = ["ReferenceCK"]


class ReferenceCK:
    """Dense-matrix reference implementation of the linear STP."""

    def __init__(self, spec: KernelSpec, pde: LinearPDE):
        if pde.nquantities != spec.nquantities:
            raise ValueError("PDE and spec disagree on the number of quantities")
        self.spec = spec
        self.pde = pde
        self.ops = cached_operators(spec.order, spec.quadrature)

    def volume_operators(self, q: np.ndarray, h: float) -> np.ndarray:
        """Per-dimension dense operators ``V_d``, shape ``(3, NDOF, NDOF)``.

        ``(V_d)[(k, s), (l, r)] = -(1/h) D[k_d, l_d] delta(k_o = l_o)
        A_d(node l)[s, r]`` plus the NCP part
        ``-(1/h) B_d(node k)[s, r] D[k_d, l_d] delta(k_o = l_o)``.
        """
        n, m = self.spec.order, self.spec.nquantities
        ndof = n**3 * m
        deriv = self.ops.derivative / h
        out = np.zeros((3, ndof, ndof))

        def flat(node: tuple[int, int, int], s: int) -> int:
            z, y, x = node
            return ((z * n + y) * n + x) * m + s

        for d in range(3):
            axis = AXIS_OF_DIM[d]
            for node in product(range(n), repeat=3):
                # NCP matrix B_d is evaluated at the *output* node: it
                # multiplies the gradient collocated there.
                b_here = (
                    self.pde.ncp_matrix(q[node][self.pde.nvar :], d)
                    if self.pde.has_ncp
                    else None
                )
                for l_idx in range(n):
                    target = list(node)
                    target[axis] = l_idx
                    # Flux matrix A_d is evaluated at the *source* node:
                    # the flux is formed there before differentiation.
                    a_there = self.pde.flux_matrix(
                        q[tuple(target)][self.pde.nvar :], d
                    )
                    dval = deriv[node[axis], l_idx]
                    for s in range(m):
                        row = flat(node, s)
                        for r in range(m):
                            col = flat(tuple(target), r)
                            out[d, row, col] -= dval * a_there[s, r]
                            if b_here is not None:
                                out[d, row, col] -= dval * b_here[s, r]
        return out

    def predictor(
        self,
        q: np.ndarray,
        dt: float,
        h: float,
        source: ElementSource | None = None,
    ) -> STPResult:
        """Evaluate eq. (4) with dense matrix-vector products."""
        n, m = self.spec.order, self.spec.nquantities
        v_d = self.volume_operators(q, h)
        v_total = v_d.sum(axis=0)
        coef = taylor_coefficients(n, dt)

        p = q.reshape(-1).copy()
        qavg = np.zeros_like(p)
        vavg = np.zeros((3, p.size))
        savg = np.zeros_like(p) if source is not None else None
        for o in range(n):
            qavg += coef[o] * p
            for d in range(3):
                vavg[d] += coef[o] * (v_d[d] @ p)
            p_next = v_total @ p
            if source is not None:
                s_term = source.term(o).reshape(-1)
                p_next += s_term
                savg += coef[o] * s_term
            p = p_next

        shape = (n, n, n, m)
        qavg = qavg.reshape(shape)
        result = STPResult(
            qavg=qavg,
            vavg=vavg.reshape((3,) + shape),
            savg=None if savg is None else savg.reshape(shape),
        )
        left, right = self.ops.face_left, self.ops.face_right
        for d in range(3):
            axis = AXIS_OF_DIM[d]
            result.qface[(d, 0)] = np.tensordot(left, qavg, axes=([0], [axis]))
            result.qface[(d, 1)] = np.tensordot(right, qavg, axes=([0], [axis]))
        return result
