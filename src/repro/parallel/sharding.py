"""Grid sharding over contiguous space-filling-curve element blocks.

The predictor/corrector split of ADER-DG is embarrassingly parallel
per element with only face-data exchange (Charrier & Weinzierl,
arXiv:1801.08682), so the natural multi-core decomposition is a
partition of the element set.  We shard along the Peano traversal that
the solver already uses: consecutive SFC elements are face-adjacent,
so each contiguous run is a connected, compact chunk of the mesh and
the number of faces crossing shard boundaries -- the only data any two
workers ever exchange -- stays small.

:func:`make_shard_plan` builds the partition; :class:`ShardPlan`
exposes the ownership map and the communication-volume statistics the
``repro.harness parallel`` experiment reports (shard sizes, cut faces,
load balance).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mesh.grid import BOUNDARY, UniformGrid
from repro.mesh.sfc import peano_order

__all__ = ["ShardPlan", "make_shard_plan"]


@dataclass(frozen=True)
class ShardPlan:
    """A partition of a grid's elements into worker shards.

    Attributes
    ----------
    grid:
        The partitioned grid.
    shards:
        One integer array of element ids per shard; disjoint, covering
        every element, each contiguous along the traversal.
    owner:
        ``(n_elements,)`` array mapping element id -> shard index.
    """

    grid: UniformGrid
    shards: tuple[np.ndarray, ...]
    owner: np.ndarray = field(repr=False)

    @property
    def num_shards(self) -> int:
        """Number of shards in the plan."""
        return len(self.shards)

    def shard_sizes(self) -> np.ndarray:
        """Elements per shard, ``(num_shards,)``."""
        return np.array([s.size for s in self.shards])

    def load_balance(self) -> float:
        """Largest shard over the mean shard size (1.0 = perfect)."""
        sizes = self.shard_sizes()
        return float(sizes.max() / sizes.mean())

    def cut_faces(self) -> int:
        """Interior faces whose two elements live in different shards.

        This is the per-step communication volume of the sharded
        solver: exactly these faces need the neighbor's predictor
        trace from another worker's output.
        """
        cut = 0
        for e in range(self.grid.n_elements):
            for d in range(3):
                neighbor = self.grid.neighbor(e, d, 1)
                if neighbor != BOUNDARY and self.owner[e] != self.owner[neighbor]:
                    cut += 1
        return cut

    def interior_faces(self) -> int:
        """Total interior (element-element) faces of the grid.

        Each shared face is counted once; with periodic wrap the
        high-side sweep enumerates every interior face exactly once.
        """
        count = 0
        for e in range(self.grid.n_elements):
            for d in range(3):
                if self.grid.neighbor(e, d, 1) != BOUNDARY:
                    count += 1
        return count

    def cut_fraction(self) -> float:
        """Cut faces over all interior faces (0 = no communication)."""
        interior = self.interior_faces()
        return self.cut_faces() / interior if interior else 0.0

    def stats(self) -> dict:
        """Summary dict for reports: sizes, balance, cut faces."""
        sizes = self.shard_sizes()
        return {
            "num_shards": self.num_shards,
            "elements": int(sizes.sum()),
            "min_shard": int(sizes.min()),
            "max_shard": int(sizes.max()),
            "load_balance": self.load_balance(),
            "cut_faces": self.cut_faces(),
            "interior_faces": self.interior_faces(),
            "cut_fraction": self.cut_fraction(),
        }

    def __repr__(self) -> str:
        sizes = self.shard_sizes()
        return (
            f"ShardPlan(shards={self.num_shards}, "
            f"elements={int(sizes.sum())}, "
            f"sizes={sizes.min()}..{sizes.max()}, "
            f"cut_faces={self.cut_faces()})"
        )


def make_shard_plan(
    grid: UniformGrid,
    num_shards: int,
    traversal: np.ndarray | None = None,
) -> ShardPlan:
    """Partition ``grid`` into ``num_shards`` contiguous SFC runs.

    Parameters
    ----------
    grid:
        The grid to partition.
    num_shards:
        Worker count; clamped to the element count is the caller's
        business -- requesting more shards than elements raises.
    traversal:
        Optional explicit element order to cut (defaults to the grid's
        Peano traversal, matching the solver's sweep order).
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    if num_shards > grid.n_elements:
        raise ValueError(
            f"cannot shard {grid.n_elements} elements over {num_shards} workers"
        )
    if traversal is None:
        traversal = peano_order(grid.shape)
    traversal = np.asarray(traversal, dtype=np.int64)
    if np.sort(traversal).tolist() != list(range(grid.n_elements)):
        raise ValueError("traversal must be a permutation of all element ids")
    shards = tuple(np.array_split(traversal, num_shards))
    owner = np.empty(grid.n_elements, dtype=np.int64)
    for index, shard in enumerate(shards):
        owner[shard] = index
    return ShardPlan(grid=grid, shards=shards, owner=owner)
