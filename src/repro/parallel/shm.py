"""Shared-memory numpy arrays for the sharded solver.

The whole point of the persistent worker pool is that *no field data
is ever pickled*: element states and predictor face traces live in
``multiprocessing.shared_memory`` segments that the main process
creates once and every worker maps into its address space.  Per time
step only a tiny command tuple (dt, buffer index, point-source
payload) crosses a queue.

:class:`SharedArrayBundle` groups the named segments of one solver:
create in the parent with :meth:`SharedArrayBundle.create`, ship the
:meth:`handles` (names + shapes, plain picklable data) to workers, and
re-open there with :meth:`SharedArrayBundle.attach`.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

__all__ = ["SharedArraySpec", "SharedArrayBundle"]


@dataclass(frozen=True)
class SharedArraySpec:
    """Picklable handle of one shared array: segment name, shape, dtype."""

    shm_name: str
    shape: tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        """Size of the described array in bytes."""
        return int(np.prod(self.shape)) * np.dtype(self.dtype).itemsize


def _open_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without registering ownership.

    On Python < 3.13 merely *attaching* registers the segment with the
    resource tracker, so an exiting worker would unlink the parent's
    data (cpython #82300; fixed by ``track=False`` in 3.13).  On older
    interpreters we attach with registration suppressed -- unlike an
    after-the-fact ``unregister``, this leaves a fork-shared tracker's
    view untouched.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python <= 3.12
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class SharedArrayBundle:
    """A named set of float64 numpy arrays backed by shared memory.

    Exactly one process -- the creator -- owns the segments and must
    call :meth:`close` (which unlinks); attached processes call
    :meth:`close` to drop their mappings only.
    """

    def __init__(
        self,
        segments: dict[str, shared_memory.SharedMemory],
        specs: dict[str, SharedArraySpec],
        owner: bool,
    ):
        self._segments = segments
        self._specs = specs
        self._owner = owner
        self.arrays: dict[str, np.ndarray] = {
            name: np.ndarray(
                spec.shape, dtype=spec.dtype, buffer=segments[name].buf
            )
            for name, spec in specs.items()
        }

    # -- construction -----------------------------------------------------

    @classmethod
    def create(cls, shapes: dict[str, tuple[int, ...]], dtype=np.float64) -> "SharedArrayBundle":
        """Allocate one zero-initialized segment per named shape."""
        token = secrets.token_hex(4)
        segments: dict[str, shared_memory.SharedMemory] = {}
        specs: dict[str, SharedArraySpec] = {}
        try:
            for name, shape in shapes.items():
                shape = tuple(int(n) for n in shape)
                nbytes = int(np.prod(shape)) * np.dtype(dtype).itemsize
                segment = shared_memory.SharedMemory(
                    create=True, size=max(nbytes, 1), name=f"repro_{token}_{name}"
                )
                segments[name] = segment
                specs[name] = SharedArraySpec(
                    shm_name=segment.name, shape=shape, dtype=np.dtype(dtype).str
                )
        # cleanup-and-reraise: every partially created segment must be
        # unlinked whatever the failure was
        # pragma: allow(HP002): unlink partial segments, then re-raise
        except Exception:
            for segment in segments.values():
                segment.close()
                segment.unlink()
            raise
        bundle = cls(segments, specs, owner=True)
        for array in bundle.arrays.values():
            array[...] = 0.0
        return bundle

    @classmethod
    def attach(cls, handles: dict[str, SharedArraySpec]) -> "SharedArrayBundle":
        """Map an existing bundle from its pickled :meth:`handles`."""
        segments = {name: _open_segment(spec.shm_name) for name, spec in handles.items()}
        return cls(segments, dict(handles), owner=False)

    # -- access -----------------------------------------------------------

    def handles(self) -> dict[str, SharedArraySpec]:
        """Picklable description of every segment, for worker attach."""
        return dict(self._specs)

    def __getitem__(self, name: str) -> np.ndarray:
        return self.arrays[name]

    @property
    def nbytes(self) -> int:
        """Total bytes across all segments (as described, not rounded up)."""
        return sum(spec.nbytes for spec in self._specs.values())

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        """Drop mappings; the owning process also unlinks the segments."""
        self.arrays.clear()
        for segment in self._segments.values():
            try:
                segment.close()
            except (OSError, BufferError):
                # pragma: no cover - already closed / exported views alive
                pass
            if self._owner:
                try:
                    segment.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass
        self._segments.clear()

    def __enter__(self) -> "SharedArrayBundle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
