"""Persistent multi-core worker pool driving the sharded solver step.

:class:`ShardWorkerPool` spawns one process per shard **once** and
keeps it alive for the solver's lifetime -- operator sets, scratch
arenas and GEMM caches are built a single time per worker, exactly
like the per-process caches of the serial path.  Field data lives in
:class:`~repro.parallel.shm.SharedArrayBundle` segments; per step the
pool only exchanges command tuples.

A step is two globally-barriered phases (predict, then correct); the
barrier is what makes every neighbor's face trace visible before any
Riemann solve reads it.  The pool also collects per-worker phase
timings, which the harness turns into the load-balance report.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp

import numpy as np

from repro.parallel.sharding import ShardPlan
from repro.parallel.shm import SharedArrayBundle
from repro.parallel.worker import WorkerConfig, worker_main

__all__ = ["ShardWorkerPool", "StepTimings", "default_start_method"]


def default_start_method() -> str:
    """``fork`` where the platform offers it (fast start), else ``spawn``."""
    methods = mp.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


class StepTimings:
    """Per-worker phase timings of one parallel step.

    ``riemann`` / ``corrector`` split the correct phase per worker when
    the face-sweep path ran (``None`` on the legacy loop).
    """

    def __init__(
        self,
        predict: dict[int, float],
        correct: dict[int, float],
        riemann: dict[int, float] | None = None,
        corrector: dict[int, float] | None = None,
    ):
        self.predict = predict
        self.correct = correct
        self.riemann = riemann
        self.corrector = corrector

    @property
    def wall_predict(self) -> float:
        """Slowest worker's predictor time -- the phase's critical path."""
        return max(self.predict.values())

    @property
    def wall_correct(self) -> float:
        """Slowest worker's corrector time."""
        return max(self.correct.values())

    def imbalance(self) -> float:
        """max/mean of the summed per-worker busy time (1.0 = balanced)."""
        totals = np.array(
            [self.predict[w] + self.correct[w] for w in sorted(self.predict)]
        )
        return float(totals.max() / totals.mean()) if totals.size else 1.0

    def phase_walls(self) -> dict[str, float]:
        """Critical-path seconds per phase, keyed like the serial dict.

        Matches the serial solver's ``last_step_timings`` keys
        (``predict`` / ``riemann`` / ``correct``); without the
        face-sweep split the whole correct phase counts as ``correct``.
        """
        if self.riemann and self.corrector:
            return {
                "predict": self.wall_predict,
                "riemann": max(self.riemann.values()),
                "correct": max(self.corrector.values()),
            }
        return {
            "predict": self.wall_predict,
            "riemann": 0.0,
            "correct": self.wall_correct,
        }


class ShardWorkerPool:
    """One persistent process per shard, stepped in lockstep phases."""

    def __init__(
        self,
        plan: ShardPlan,
        shared: SharedArrayBundle,
        *,
        pde,
        order: int,
        variant: str,
        arch: str,
        quadrature: str,
        riemann: str,
        boundary: str,
        batch_size: int | None,
        start_method: str | None = None,
        start_timeout: float = 120.0,
        face_sweep: bool = True,
    ):
        self.plan = plan
        self.shared = shared
        self._timeout = start_timeout
        context = mp.get_context(start_method or default_start_method())
        self._out_queue = context.Queue()
        self._cmd_queues = []
        self._processes = []
        handles = shared.handles()
        for worker_id, shard in enumerate(plan.shards):
            config = WorkerConfig(
                worker_id=worker_id,
                grid=plan.grid,
                pde=pde,
                order=order,
                variant=variant,
                arch=arch,
                quadrature=quadrature,
                riemann=riemann,
                boundary=boundary,
                batch_size=batch_size,
                elements=np.asarray(shard, dtype=np.int64),
                handles=handles,
                face_sweep=face_sweep,
            )
            cmd_queue = context.Queue()
            process = context.Process(
                target=worker_main,
                args=(config, cmd_queue, self._out_queue),
                daemon=True,
                name=f"repro-shard-{worker_id}",
            )
            self._cmd_queues.append(cmd_queue)
            self._processes.append(process)
        for process in self._processes:
            process.start()
        self._closed = False
        self._atexit = atexit.register(self.close)
        self._collect("ready")

    @property
    def num_workers(self) -> int:
        """Number of worker processes (= shards)."""
        return len(self._processes)

    # -- stepping ---------------------------------------------------------

    def step(self, buf: int, dt: float, sources: dict) -> StepTimings:
        """Advance all shards one step: predict barrier, correct barrier.

        Parameters
        ----------
        buf:
            Index of the *input* state buffer (0 or 1); the corrected
            states land in buffer ``1 - buf``.
        dt:
            Time step.
        sources:
            ``element id -> (projection, amplitude, derivatives)``
            payload of the active point sources (already evaluated at
            the step's start time).
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        for worker_id, queue in enumerate(self._cmd_queues):
            shard_sources = {
                int(e): sources[int(e)]
                for e in self.plan.shards[worker_id]
                if int(e) in sources
            }
            queue.put(("predict", buf, dt, shard_sources))
        predict, _ = self._collect("predict")
        for queue in self._cmd_queues:
            queue.put(("correct", buf))
        correct, details = self._collect("correct")
        if details and all(isinstance(d, dict) for d in details.values()):
            return StepTimings(
                predict,
                correct,
                riemann={w: d["riemann"] for w, d in details.items()},
                corrector={w: d["correct"] for w, d in details.items()},
            )
        return StepTimings(predict, correct)

    def invalidate_caches(self) -> None:
        """Tell every worker to drop its static-parameter caches.

        Called after a new initial condition is written into the shared
        state buffers (the face sweep re-gathers material face
        parameters on the next step).
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        for queue in self._cmd_queues:
            queue.put(("invalidate",))
        self._collect("invalidate")

    def _collect(self, phase: str) -> tuple[dict[int, float], dict[int, object]]:
        """Barrier: wait for every worker's phase reply; raise on error.

        All replies are drained before raising so that one failing
        worker does not leave siblings' replies queued to poison the
        next phase.  Returns per-worker ``(seconds, detail)`` maps --
        ``detail`` is the phase's sub-timing payload (or ``None``).
        """
        timings: dict[int, float] = {}
        details: dict[int, object] = {}
        errors: list[str] = []
        while len(timings) + len(errors) < self.num_workers:
            kind, worker_id, info, *rest = self._out_queue.get(timeout=self._timeout)
            if kind == "error":
                errors.append(f"worker {worker_id} failed during {phase}:\n{info}")
                continue
            if info != phase and kind != "ready":
                errors.append(
                    f"worker {worker_id}: expected {phase!r} reply, got {info!r}"
                )
                continue
            timings[worker_id] = rest[0] if rest else 0.0
            details[worker_id] = rest[1] if len(rest) > 1 else None
        if errors:
            raise RuntimeError("\n".join(errors))
        return timings, details

    # -- lifecycle --------------------------------------------------------

    def close(self, join_timeout: float = 10.0) -> None:
        """Stop all workers and join them; safe to call twice."""
        if self._closed:
            return
        self._closed = True
        atexit.unregister(self.close)
        for queue in self._cmd_queues:
            try:
                queue.put(("stop",))
            except Exception:  # pragma: no cover - queue already broken
                pass
        for process in self._processes:
            process.join(timeout=join_timeout)
            if process.is_alive():  # pragma: no cover - hung worker
                process.terminate()
                process.join(timeout=join_timeout)
        for queue in self._cmd_queues:
            queue.close()
        self._out_queue.close()

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
