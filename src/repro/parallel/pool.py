"""Persistent multi-core worker pool driving the sharded solver step.

:class:`ShardWorkerPool` spawns one process per shard **once** and
keeps it alive for the solver's lifetime -- operator sets, scratch
arenas and GEMM caches are built a single time per worker, exactly
like the per-process caches of the serial path.  Field data lives in
:class:`~repro.parallel.shm.SharedArrayBundle` segments; per step the
pool only exchanges command tuples.

Two step protocols share the pool (``docs/stepping.md``):

* ``stepping="barrier"`` (default) -- two globally-barriered phases
  (predict, then correct); the barrier is what makes every neighbor's
  face trace visible before any Riemann solve reads it.  Cross-shard
  faces are solved redundantly on both sides, and the result is
  bitwise identical to the serial path.
* ``stepping="async"`` -- no global barriers.  A static
  :class:`~repro.parallel.stepping.ShardDependencyGraph` tells each
  shard which neighbors must have published before it may advance;
  the correct phase splits into *riemann* (sweep + export cut-face
  fluxes into a shared mailbox) and *finish* (import + corrector), so
  cut faces are solved once and exchanged instead of recomputed.
  When the caller supplies a ``next_hint``, step ``k+1``'s predictor
  is pipelined behind step ``k``: a shard starts predicting the next
  step as soon as its own finish and its neighbors' riemann phases
  are done, while slower shards are still correcting.

The pool also collects per-worker phase timings -- including the
per-shard *wait* (idle seconds attributable to synchronization) and
mailbox *publish* seconds -- which the harness turns into the
load-balance report.

Failure semantics (see ``docs/parallel.md``): the barrier polls worker
liveness instead of blocking on the reply queue, so a crashed or
OOM-killed worker surfaces within a poll interval as a
:class:`WorkerCrashError` carrying worker id, shard range, phase and
exit code.  The ``on_worker_failure`` policy then decides: ``"raise"``
propagates, ``"respawn"`` restarts the dead worker from its
:class:`~repro.parallel.worker.WorkerConfig` and replays the phase
(exactly reproducible because shared-memory state has one writer per
element and commits only at the barrier), and ``"serial"`` lets the
solver degrade the rest of the run to the in-process path.

Every worker replies on its *own* queue.  A single shared reply queue
would couple the workers' fates through its write lock: a worker
SIGKILLed while holding it (mid-heartbeat, say) leaves the lock
acquired forever and silences every surviving worker.  With per-worker
queues a kill can only ever wedge the dead worker's own channel, which
the watchdog abandons anyway.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing as mp
import queue as queue_module
import threading
import time
import weakref

import numpy as np

from repro.parallel.sharding import ShardPlan
from repro.parallel.shm import SharedArrayBundle
from repro.parallel.worker import WorkerConfig, worker_main

__all__ = [
    "ShardWorkerPool",
    "StepTimings",
    "WorkerCrashError",
    "default_start_method",
]

#: valid ``on_worker_failure`` policies
FAILURE_POLICIES = ("raise", "respawn", "serial")

#: valid ``stepping`` protocols
STEPPING_MODES = ("barrier", "async")


def _payload_equal(a: dict, b: dict) -> bool:
    """Whether two per-shard source payload lists are element-wise equal.

    Used to validate a speculative predict: the arrays are bitwise
    compared because the pipelined predictor is only kept when it ran
    with exactly the inputs the real step now requests.
    """
    if a.keys() != b.keys():
        return False
    for element, parts_a in a.items():
        parts_b = b[element]
        if len(parts_a) != len(parts_b):
            return False
        for part_a, part_b in zip(parts_a, parts_b):
            if len(part_a) != len(part_b) or not all(
                np.array_equal(x, y) for x, y in zip(part_a, part_b)
            ):
                return False
    return True


def default_start_method() -> str:
    """``fork`` where the platform offers it (fast start), else ``spawn``."""
    methods = mp.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


#: pools still open, reaped by the single interpreter-exit handler.
#: A ``WeakSet`` so an abandoned (garbage-collected) pool never pins
#: itself alive through the shutdown path.
_LIVE_POOLS: "weakref.WeakSet" = weakref.WeakSet()
_ATEXIT_LOCK = threading.Lock()
_ATEXIT_REGISTERED = False


def _close_live_pools() -> None:
    """Interpreter-exit sweep: close every pool still open.

    Registered with :mod:`atexit` **once per process**, however many
    pools the process creates -- a service spawning thousands of pools
    must not accumulate one stale handler per instance (each walked at
    shutdown, joining long-dead processes).  ``close()`` is idempotent,
    so pools the caller already closed cost nothing here.
    """
    for pool in list(_LIVE_POOLS):
        try:
            pool.close()
        except Exception:  # pragma: allow(HP002): interpreter teardown must not raise
            pass


def _track_pool(pool: "ShardWorkerPool") -> None:
    """Register a live pool with the (lazily installed) exit handler."""
    global _ATEXIT_REGISTERED
    with _ATEXIT_LOCK:
        if not _ATEXIT_REGISTERED:
            atexit.register(_close_live_pools)
            _ATEXIT_REGISTERED = True
        _LIVE_POOLS.add(pool)


class WorkerCrashError(RuntimeError):
    """A worker process died (or start-up failed) during a pool phase.

    Raised by the liveness watchdog of the barrier instead of the bare
    ``queue.Empty`` a blocking read would produce.  Attributes identify
    the failure precisely; with several simultaneous deaths the scalar
    attributes describe the first one and :attr:`crashes` lists all.

    Attributes
    ----------
    worker_id:
        Id of the (first) dead worker.
    shard:
        ``(lo, hi)`` element-id range of that worker's shard.
    phase:
        Pool phase whose barrier detected the death.
    exitcode:
        ``Process.exitcode`` (negative = killed by that signal).
    crashes:
        One diagnostic dict per dead worker
        (``worker_id`` / ``shard`` / ``phase`` / ``exitcode``).
    """

    def __init__(self, message: str, crashes: list[dict]):
        super().__init__(message)
        self.crashes = crashes
        first = crashes[0] if crashes else {}
        self.worker_id = first.get("worker_id")
        self.shard = first.get("shard")
        self.phase = first.get("phase")
        self.exitcode = first.get("exitcode")

    @property
    def worker_ids(self) -> list[int]:
        """Ids of every worker that died."""
        return [crash["worker_id"] for crash in self.crashes]


class StepTimings:
    """Per-worker phase timings of one parallel step.

    ``riemann`` / ``corrector`` split the correct phase per worker when
    the face-sweep path ran (``None`` on the legacy loop).  ``wait``
    holds the scheduler-observed per-worker synchronization idle
    seconds (barrier mode: time between a worker's phase reply and the
    barrier release; async mode: time between a worker's reply and its
    next command) and ``publish`` the async mailbox export seconds --
    both ``None`` when not measured.  All aggregates degrade
    gracefully on empty timing dicts (a step that never completed)
    instead of raising.
    """

    def __init__(
        self,
        predict: dict[int, float],
        correct: dict[int, float],
        riemann: dict[int, float] | None = None,
        corrector: dict[int, float] | None = None,
        wait: dict[int, float] | None = None,
        publish: dict[int, float] | None = None,
    ):
        self.predict = predict
        self.correct = correct
        self.riemann = riemann
        self.corrector = corrector
        self.wait = wait
        self.publish = publish

    def total_wait(self) -> float:
        """Summed per-worker synchronization wait seconds (0.0 unknown)."""
        return float(sum(self.wait.values())) if self.wait else 0.0

    @property
    def wall_predict(self) -> float:
        """Slowest worker's predictor time -- the phase's critical path."""
        return max(self.predict.values(), default=0.0)

    @property
    def wall_correct(self) -> float:
        """Slowest worker's corrector time."""
        return max(self.correct.values(), default=0.0)

    def busy(self) -> dict[int, float]:
        """Per-worker predict + correct seconds."""
        return {
            worker: self.predict.get(worker, 0.0) + self.correct.get(worker, 0.0)
            for worker in sorted(set(self.predict) | set(self.correct))
        }

    def imbalance(self) -> float:
        """max/mean of the summed per-worker busy time (1.0 = balanced)."""
        totals = np.array(list(self.busy().values()))
        if not totals.size or float(totals.mean()) == 0.0:
            return 1.0
        return float(totals.max() / totals.mean())

    def phase_walls(self) -> dict[str, float]:
        """Critical-path seconds per phase, keyed like the serial dict.

        Matches the serial solver's ``last_step_timings`` keys
        (``predict`` / ``riemann`` / ``correct``); without the
        face-sweep split the whole correct phase counts as ``correct``.
        """
        if self.riemann and self.corrector:
            return {
                "predict": self.wall_predict,
                "riemann": max(self.riemann.values(), default=0.0),
                "correct": max(self.corrector.values(), default=0.0),
            }
        return {
            "predict": self.wall_predict,
            "riemann": 0.0,
            "correct": self.wall_correct,
        }


class ShardWorkerPool:
    """One persistent process per shard, stepped in lockstep phases.

    Parameters (beyond the kernel configuration forwarded to
    :class:`~repro.parallel.worker.WorkerConfig`):

    ``stepping``
        ``"barrier"`` (default) runs the two-barrier protocol with
        redundant cross-shard Riemann solves, bitwise identical to
        serial; ``"async"`` runs the barrier-free neighbor-dependency
        protocol with mailbox flux exchange (requires
        ``face_sweep=True``; incompatible with
        ``on_worker_failure="respawn"`` -- the speculative pipeline
        has no phase-replay point).  See ``docs/stepping.md``.
    ``graph``
        Optional precomputed :class:`~repro.parallel.stepping.
        ShardDependencyGraph` for async mode (derived from ``plan``
        when omitted).
    ``on_worker_failure``
        ``"raise"`` (default) propagates a :class:`WorkerCrashError`;
        ``"respawn"`` restarts dead workers (retry budget
        ``max_respawns``, exponential backoff ``respawn_backoff``) and
        replays the interrupted phase; ``"serial"`` raises like
        ``"raise"`` and signals the solver to degrade in-process.
    ``fuse``
        Forwarded to :class:`~repro.parallel.worker.WorkerConfig`:
        ``False`` (default) steps phase-wise, ``True``/``"auto"`` lets
        workers run the fused whole-step compiled program when their
        backend provides it (see ``docs/backends.md``).
    ``poll_interval``
        Seconds between liveness checks while waiting at a barrier.
    ``start_timeout``
        Hard deadline for a barrier with all workers alive (hang
        protection; crash detection does not wait for it).
    """

    def __init__(
        self,
        plan: ShardPlan,
        shared: SharedArrayBundle,
        *,
        pde,
        order: int,
        variant: str,
        arch: str,
        quadrature: str,
        riemann: str,
        boundary: str,
        batch_size: int | None,
        backend: str = "numpy",
        start_method: str | None = None,
        start_timeout: float = 120.0,
        face_sweep: bool = True,
        on_worker_failure: str = "raise",
        max_respawns: int = 3,
        respawn_backoff: float = 0.25,
        poll_interval: float = 0.05,
        stepping: str = "barrier",
        graph=None,
        fuse=False,
    ):
        if on_worker_failure not in FAILURE_POLICIES:
            raise ValueError(
                f"on_worker_failure must be one of {FAILURE_POLICIES}, "
                f"got {on_worker_failure!r}"
            )
        if stepping not in STEPPING_MODES:
            raise ValueError(
                f"stepping must be one of {STEPPING_MODES}, got {stepping!r}"
            )
        if stepping == "async":
            if not face_sweep:
                raise ValueError(
                    "stepping='async' requires face_sweep=True: the mailbox "
                    "flux exchange is built on the packed face planes"
                )
            if on_worker_failure == "respawn":
                raise ValueError(
                    "stepping='async' is incompatible with "
                    "on_worker_failure='respawn': the barrier-free schedule "
                    "has no phase boundary to replay from -- use 'raise' or "
                    "'serial' (see docs/stepping.md)"
                )
            if graph is None:
                from repro.parallel.stepping import build_dependency_graph

                graph = build_dependency_graph(plan)
        self.stepping = stepping
        self.graph = graph
        self.plan = plan
        self.shared = shared
        self.on_worker_failure = on_worker_failure
        self.max_respawns = max_respawns
        self.respawn_backoff = respawn_backoff
        self._timeout = start_timeout
        self._poll = poll_interval
        self._context = mp.get_context(start_method or default_start_method())
        self._out_queues = []
        self._cmd_queues = []
        self._processes = []
        self._configs: list[WorkerConfig] = []
        self._last_heartbeat: dict[int, float] = {}
        self._total_respawns = 0
        #: in-flight speculative predict of the pipelined async mode
        self._speculation: dict | None = None
        # per-shard dependency sets of the async scheduler: riemann(w)
        # needs the predicts of w and its halo neighbors; finish(w)
        # needs w's own riemann plus its flux providers'; a speculative
        # next-step predict needs w's finish plus every neighbor's
        # riemann (they read the qface rows the predict overwrites)
        if stepping == "async":
            self._dep_riemann = [
                set(graph.neighbors[w]) | {w} for w in range(plan.num_shards)
            ]
            self._dep_finish = [
                set(graph.providers[w]) for w in range(plan.num_shards)
            ]
            self._dep_speculate = [
                set(graph.neighbors[w]) for w in range(plan.num_shards)
            ]
        #: failure/telemetry counters of the most recent :meth:`step`
        self.last_step_events: dict = self._fresh_events()
        handles = shared.handles()
        for worker_id, shard in enumerate(plan.shards):
            config = WorkerConfig(
                worker_id=worker_id,
                grid=plan.grid,
                pde=pde,
                order=order,
                variant=variant,
                arch=arch,
                quadrature=quadrature,
                riemann=riemann,
                boundary=boundary,
                batch_size=batch_size,
                elements=np.asarray(shard, dtype=np.int64),
                handles=handles,
                face_sweep=face_sweep,
                backend=backend,
                stepping=stepping,
                owner=None if graph is None else plan.owner,
                slot_of=None if graph is None else graph.slot_of,
                fuse=fuse,
            )
            self._configs.append(config)
            cmd_queue = self._context.Queue()
            out_queue = self._context.Queue()
            process = self._spawn_process(config, cmd_queue, out_queue)
            self._cmd_queues.append(cmd_queue)
            self._out_queues.append(out_queue)
            self._processes.append(process)
        for process in self._processes:
            process.start()
        self._closed = False
        self._close_lock = threading.Lock()
        _track_pool(self)
        self._collect("ready", set(range(self.num_workers)), {}, {})

    def _spawn_process(self, config: WorkerConfig, cmd_queue, out_queue):
        """Build (not start) one worker process for ``config``."""
        return self._context.Process(
            target=worker_main,
            args=(config, cmd_queue, out_queue),
            daemon=True,
            name=f"repro-shard-{config.worker_id}",
        )

    @staticmethod
    def _fresh_events() -> dict:
        return {"retries": 0, "respawns": 0, "crashes": [], "queue_depth": 0}

    @property
    def num_workers(self) -> int:
        """Number of worker processes (= shards)."""
        return len(self._processes)

    def _shard_range(self, worker_id: int) -> tuple[int, int]:
        """``(lo, hi)`` element-id range of a worker's shard."""
        shard = self.plan.shards[worker_id]
        return (int(shard.min()), int(shard.max()))

    # -- stepping ---------------------------------------------------------

    def step(
        self, buf: int, dt: float, sources: dict, next_hint=None
    ) -> StepTimings:
        """Advance all shards one step under the configured protocol.

        Parameters
        ----------
        buf:
            Index of the *input* state buffer (0 or 1); the corrected
            states land in buffer ``1 - buf``.
        dt:
            Time step.
        sources:
            ``element id -> [(projection, amplitude, derivatives), ...]``
            payload of the active point sources (already evaluated at
            the step's start time).
        next_hint:
            Async mode only: an optional ``(dt_next, sources_next)``
            prediction of the *next* step's arguments.  When given,
            workers start the next step's predictor speculatively as
            soon as their dependencies allow; the following
            :meth:`step` call keeps the speculation if its arguments
            match bitwise and transparently re-predicts otherwise.
            Callers must not mutate the shared state buffers while a
            hint is outstanding (the solver only hints inside
            :meth:`~repro.engine.solver.ADERDGSolver.run`).
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        if self.stepping == "async":
            return self._step_async(buf, dt, sources, next_hint)
        return self._step_barrier(buf, dt, sources)

    def _shard_sources(self, sources: dict) -> list:
        """Per-worker slice of the point-source payload dict."""
        return [
            {
                int(e): sources[int(e)]
                for e in self.plan.shards[worker_id]
                if int(e) in sources
            }
            for worker_id in range(self.num_workers)
        ]

    def _step_barrier(self, buf: int, dt: float, sources: dict) -> StepTimings:
        """The two-barrier protocol: predict barrier, correct barrier.

        Under ``on_worker_failure="respawn"`` a worker that dies during
        either phase is restarted from its config and the phase is
        replayed for exactly that shard: the input buffer and the other
        shards' face traces are untouched (single-writer arrays, output
        commits only at the barrier), so the recovered step is bitwise
        identical to an undisturbed one.  A worker respawned during the
        correct phase replays its predict first to rebuild the
        process-local volume contributions.
        """
        events = self._fresh_events()
        self.last_step_events = events
        all_workers = set(range(self.num_workers))
        shard_sources = self._shard_sources(sources)

        def send_predict(workers):
            for worker_id in sorted(workers):
                self._cmd_queues[worker_id].put(
                    ("predict", buf, dt, shard_sources[worker_id])
                )

        def send_correct(workers):
            for worker_id in sorted(workers):
                self._cmd_queues[worker_id].put(("correct", buf))

        predict: dict[int, float] = {}
        correct: dict[int, float] = {}
        details: dict[int, object] = {}
        wait = {worker_id: 0.0 for worker_id in all_workers}

        # phase 1: predict barrier (with crash recovery)
        pending = set(all_workers)
        arrivals: dict[int, float] = {}
        send_predict(pending)
        while pending:
            try:
                self._collect("predict", pending, predict, {}, arrivals)
            except WorkerCrashError as crash:
                respawned = self._handle_crash(crash, events)
                send_predict(respawned)
                pending |= respawned
        release = time.monotonic()
        for worker_id, arrived in arrivals.items():
            wait[worker_id] += release - arrived

        # phase 2: correct barrier; a respawned worker replays predict
        # first (its process-local predictor outputs died with it)
        pending = set(all_workers)
        need_predict: set[int] = set()
        need_correct: set[int] = set()
        workers: set[int] = set()
        arrivals = {}
        send_correct(pending)
        while pending or need_predict or need_correct:
            try:
                if need_correct:
                    resume, need_correct = need_correct, set()
                    send_correct(resume)
                    pending |= resume
                if need_predict:
                    workers, need_predict = need_predict, set()
                    send_predict(workers)
                    self._collect("predict", set(workers), predict, {})
                    need_correct |= workers
                    continue
                self._collect("correct", pending, correct, details, arrivals)
            except WorkerCrashError as crash:
                respawned = self._handle_crash(crash, events)
                if crash.phase == "predict":
                    # survivors of the replay barrier finished their
                    # predict before the crash was raised
                    need_correct |= workers - respawned
                need_predict |= respawned
        release = time.monotonic()
        for worker_id, arrived in arrivals.items():
            wait[worker_id] += release - arrived

        if details and all(isinstance(d, dict) for d in details.values()):
            return StepTimings(
                predict,
                correct,
                riemann={w: d["riemann"] for w, d in details.items()},
                corrector={w: d["correct"] for w, d in details.items()},
                wait=wait,
            )
        return StepTimings(predict, correct, wait=wait)

    def _step_async(
        self, buf: int, dt: float, sources: dict, next_hint=None
    ) -> StepTimings:
        """The barrier-free protocol: dependency-scheduled phases.

        Per shard the phases are ``predict -> riemann -> finish``; each
        is dispatched the moment its dependency set (derived from the
        :class:`~repro.parallel.stepping.ShardDependencyGraph`) is
        satisfied, so a slow shard only stalls its halo neighborhood
        instead of the whole pool.  With ``next_hint`` the next step's
        predict is dispatched speculatively behind a shard's finish
        (see :meth:`step`); a speculation left over from the previous
        call is kept when its arguments match bitwise and otherwise
        drained and transparently re-predicted (safe: a predict only
        rewrites ``qface`` rows that this step's riemann phases then
        re-read).
        """
        events = self._fresh_events()
        self.last_step_events = events
        num = self.num_workers
        all_workers = set(range(num))
        shard_sources = self._shard_sources(sources)

        predict_t: dict[int, float] = {}
        riemann_t: dict[int, float] = {}
        finish_t: dict[int, float] = {}
        correct: dict[int, float] = {}
        publish: dict[int, float] = {}
        wait = {w: 0.0 for w in all_workers}
        started = time.monotonic()
        last_reply = {w: started for w in all_workers}

        predict_done: set[int] = set()
        riemann_done: set[int] = set()
        finish_done: set[int] = set()
        riemann_sent: set[int] = set()
        finish_sent: set[int] = set()
        speculated: set[int] = set()

        # reconcile a speculative predict from the previous step
        spec = self._speculation
        self._speculation = None
        hit = (
            spec is not None
            and spec["buf"] == buf
            and spec["dt"] == dt
            and _payload_equal(spec["sources"], sources)
        )
        if hit:
            events["speculation"] = "hit"
            pending_predict = set(spec["pending"])
        else:
            if spec is not None:
                events["speculation"] = "miss"
                self._collect("predict", set(spec["pending"]), {}, {})
            for w in sorted(all_workers):
                self._cmd_queues[w].put(("predict", buf, dt, shard_sources[w]))
            pending_predict = set(all_workers)

        hint_dt = hint_sources = None
        if next_hint is not None:
            hint_dt, hint_payload = next_hint
            hint_sources = self._shard_sources(hint_payload)

        def dispatch() -> None:
            for w in sorted(all_workers - riemann_sent):
                if self._dep_riemann[w] <= predict_done:
                    self._note_wait(w, wait, last_reply)
                    self._cmd_queues[w].put(("riemann", buf))
                    riemann_sent.add(w)
            for w in sorted(all_workers - finish_sent):
                if w in riemann_done and self._dep_finish[w] <= riemann_done:
                    self._note_wait(w, wait, last_reply)
                    self._cmd_queues[w].put(("finish", buf))
                    finish_sent.add(w)
            if hint_sources is None:
                return
            for w in sorted(all_workers - speculated):
                # the speculative predict overwrites qface[own_w], so
                # every neighbor's riemann must have consumed it first
                if w in finish_done and self._dep_speculate[w] <= riemann_done:
                    self._note_wait(w, wait, last_reply)
                    self._cmd_queues[w].put(
                        ("predict", 1 - buf, hint_dt, hint_sources[w])
                    )
                    speculated.add(w)

        def awaited() -> dict[int, str]:
            waiting = {w: "predict" for w in pending_predict}
            waiting.update({w: "riemann" for w in riemann_sent - riemann_done})
            waiting.update({w: "finish" for w in finish_sent - finish_done})
            return waiting

        try:
            while len(finish_done) < num or pending_predict:
                dispatch()
                w, phase, secs, detail = self._collect_one(awaited())
                last_reply[w] = time.monotonic()
                if phase == "predict":
                    pending_predict.discard(w)
                    predict_done.add(w)
                    predict_t[w] = secs
                elif phase == "riemann":
                    riemann_done.add(w)
                    correct[w] = secs
                    riemann_t[w] = secs
                    if isinstance(detail, dict):
                        riemann_t[w] = detail["riemann"]
                        publish[w] = detail["publish"]
                else:
                    finish_done.add(w)
                    correct[w] = correct.get(w, 0.0) + secs
                    finish_t[w] = secs
                    if isinstance(detail, dict):
                        finish_t[w] = detail["correct"]
            # all dependencies are satisfied now: dispatch whatever
            # speculative predicts the loop had not released yet
            dispatch()
        except WorkerCrashError as crash:
            events["crashes"].extend(crash.crashes)
            raise

        if hint_sources is not None:
            self._speculation = {
                "buf": 1 - buf,
                "dt": hint_dt,
                "sources": hint_payload,
                "pending": set(speculated),
            }
        return StepTimings(
            predict_t,
            correct,
            riemann=riemann_t or None,
            corrector=finish_t or None,
            wait=wait,
            publish=publish,
        )

    @staticmethod
    def _note_wait(worker_id: int, wait: dict, last_reply: dict) -> None:
        """Accrue a worker's scheduler-observed idle gap before a dispatch."""
        now = time.monotonic()
        wait[worker_id] += now - last_reply[worker_id]
        last_reply[worker_id] = now

    def _collect_one(self, awaited: dict):
        """Wait for one phase reply from any awaited worker (async mode).

        ``awaited`` maps worker id -> the phase it owes a reply for;
        returns ``(worker_id, phase, seconds, detail)``.  Crash and
        hang detection mirror :meth:`_collect`, but recovery is the
        caller's business: async mode never respawns, so any death or
        protocol violation raises immediately.
        """
        deadline = time.monotonic() + self._timeout
        while True:
            reply = None
            for worker_id in sorted(awaited):
                try:
                    reply = self._out_queues[worker_id].get_nowait()
                    break
                except queue_module.Empty:
                    continue
            if reply is None:
                crashes = [
                    {
                        "worker_id": worker_id,
                        "shard": self._shard_range(worker_id),
                        "phase": awaited[worker_id],
                        "exitcode": self._processes[worker_id].exitcode,
                    }
                    for worker_id in sorted(awaited)
                    if not self._processes[worker_id].is_alive()
                ]
                if crashes:
                    raise WorkerCrashError(self._crash_summary(crashes), crashes)
                if time.monotonic() > deadline:
                    ages = {
                        worker: time.monotonic() - seen
                        for worker, seen in self._last_heartbeat.items()
                        if worker in awaited
                    }
                    raise RuntimeError(
                        f"workers {sorted(awaited)} sent no reply within "
                        f"{self._timeout:.0f}s (awaiting {awaited}; seconds "
                        f"since last heartbeat: {ages})"
                    )
                time.sleep(self._poll)
                continue
            kind, worker_id, info, *rest = reply
            self._note_queue_depth()
            if kind == "heartbeat":
                self._last_heartbeat[worker_id] = time.monotonic()
                continue
            if kind == "error":
                raise RuntimeError(
                    f"worker {worker_id} failed during "
                    f"{awaited.get(worker_id)}:\n{info}"
                )
            if kind != "done" or info != awaited.get(worker_id):
                raise RuntimeError(
                    f"worker {worker_id}: expected {awaited.get(worker_id)!r} "
                    f"reply, got ({kind!r}, {info!r})"
                )
            return (
                worker_id,
                info,
                rest[0] if rest else 0.0,
                rest[1] if len(rest) > 1 else None,
            )

    def flush_speculation(self) -> None:
        """Retire an in-flight speculative predict (await its replies).

        Called before anything that invalidates the speculated inputs
        -- cache invalidation after a state rewrite, mainly.  The stale
        prediction is simply discarded: the next :meth:`step` call
        re-predicts from the live state.
        """
        spec = self._speculation
        self._speculation = None
        if spec is not None:
            self._collect("predict", set(spec["pending"]), {}, {})

    def invalidate_caches(self) -> None:
        """Tell every worker to drop its static-parameter caches.

        Called after a new initial condition is written into the shared
        state buffers (the face sweep re-gathers material face
        parameters on the next step).
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        self.flush_speculation()
        for queue in self._cmd_queues:
            queue.put(("invalidate",))
        self._collect("invalidate", set(range(self.num_workers)), {}, {})

    # -- barrier ----------------------------------------------------------

    def _collect(
        self,
        phase: str,
        pending: set[int],
        timings: dict[int, float],
        details: dict[int, object],
        arrivals: dict[int, float] | None = None,
    ) -> None:
        """Barrier: wait for every pending worker's phase reply.

        Drains each pending worker's own reply queue without blocking
        and checks ``Process.is_alive()`` whenever no reply is
        available, so a dead worker surfaces as a
        :class:`WorkerCrashError` within ~``poll_interval`` rather than
        hanging until ``start_timeout``.  A crash is only declared once
        the worker's queue is empty *and* the process is gone -- a
        final reply sent just before death is still honored.  Replies
        are matched *exactly* against the expected ``(kind, phase)``
        pair: a stale reply from an earlier phase is recorded as a
        protocol error while the worker's real reply is still awaited,
        so one bad message cannot poison the next barrier.  ``pending``
        is mutated in place (workers are removed as they reply or die);
        ``timings`` and ``details`` accumulate the per-worker results.
        When an ``arrivals`` dict is supplied, each accepted reply also
        records its arrival wall-clock (``time.monotonic()``) so the
        caller can charge barrier-wait time per worker.
        """
        expected_kind = {"ready": "ready", "stop": "stopped"}.get(phase, "done")
        crashes: list[dict] = []
        errors: list[str] = []
        deadline = time.monotonic() + self._timeout
        while pending:
            reply = None
            for worker_id in sorted(pending):
                try:
                    reply = self._out_queues[worker_id].get_nowait()
                    break
                except queue_module.Empty:
                    continue
            if reply is None:
                for worker_id in sorted(pending):
                    process = self._processes[worker_id]
                    if not process.is_alive():
                        crashes.append(
                            {
                                "worker_id": worker_id,
                                "shard": self._shard_range(worker_id),
                                "phase": phase,
                                "exitcode": process.exitcode,
                            }
                        )
                        pending.discard(worker_id)
                if pending and time.monotonic() > deadline:
                    ages = {
                        worker: time.monotonic() - seen
                        for worker, seen in self._last_heartbeat.items()
                        if worker in pending
                    }
                    message = (
                        f"workers {sorted(pending)} sent no {phase!r} reply "
                        f"within {self._timeout:.0f}s (alive but unresponsive; "
                        f"seconds since last heartbeat: {ages})"
                    )
                    if crashes:
                        # don't swallow an already-detected death behind
                        # a hang report
                        raise WorkerCrashError(
                            message + "; additionally "
                            + self._crash_summary(crashes),
                            crashes,
                        )
                    raise RuntimeError(message)
                if pending:
                    time.sleep(self._poll)
                continue
            kind, worker_id, info, *rest = reply
            self._note_queue_depth()
            if kind == "heartbeat":
                self._last_heartbeat[worker_id] = time.monotonic()
                continue
            if kind == "error":
                errors.append(f"worker {worker_id} failed during {phase}:\n{info}")
                pending.discard(worker_id)
                continue
            if kind != expected_kind or info != phase:
                # stale reply from an earlier phase: record, but keep
                # waiting for this worker's *real* reply
                errors.append(
                    f"worker {worker_id}: expected {phase!r} reply, "
                    f"got ({kind!r}, {info!r})"
                )
                continue
            timings[worker_id] = rest[0] if rest else 0.0
            details[worker_id] = rest[1] if len(rest) > 1 else None
            if arrivals is not None:
                arrivals[worker_id] = time.monotonic()
            pending.discard(worker_id)
        if crashes:
            summary = self._crash_summary(crashes)
            if errors:
                summary += "; additionally: " + "; ".join(errors)
            raise WorkerCrashError(summary, crashes)
        if errors:
            raise RuntimeError("\n".join(errors))

    @staticmethod
    def _crash_summary(crashes: list[dict]) -> str:
        """One-line description of every detected worker death."""
        return "; ".join(
            f"worker {c['worker_id']} (elements {c['shard'][0]}.."
            f"{c['shard'][1]}) died during {c['phase']} "
            f"(exit code {c['exitcode']})"
            for c in crashes
        )

    def _note_queue_depth(self) -> None:
        """Track the largest observed reply-queue backlog (telemetry)."""
        try:
            depth = max(queue.qsize() for queue in self._out_queues)
        except NotImplementedError:  # pragma: no cover - macOS
            return
        if depth > self.last_step_events["queue_depth"]:
            self.last_step_events["queue_depth"] = depth

    # -- recovery ---------------------------------------------------------

    def _handle_crash(self, crash: WorkerCrashError, events: dict) -> set[int]:
        """Apply the failure policy to a detected crash.

        Returns the set of respawned worker ids (whose phase must be
        replayed) under ``"respawn"``; re-raises under ``"raise"`` and
        ``"serial"`` (the solver implements the serial degradation).
        """
        events["crashes"].extend(crash.crashes)
        if self.on_worker_failure != "respawn":
            raise crash
        events["retries"] += 1
        for worker_id in crash.worker_ids:
            self._respawn_worker(worker_id, events)
        return set(crash.worker_ids)

    def _respawn_worker(self, worker_id: int, events: dict) -> None:
        """Restart one dead worker from its config (budget + backoff).

        The retry budget is pool-global: once ``max_respawns`` restarts
        have been spent, further crashes raise.  Each attempt backs off
        exponentially (``respawn_backoff * 2**attempt`` seconds) to
        avoid hammering a host that is killing workers (e.g. the OOM
        killer).
        """
        for attempt in itertools.count():
            if self._total_respawns >= self.max_respawns:
                raise WorkerCrashError(
                    f"worker {worker_id} (elements "
                    f"{self._shard_range(worker_id)[0]}.."
                    f"{self._shard_range(worker_id)[1]}) is dead and the "
                    f"respawn budget ({self.max_respawns}) is exhausted",
                    [
                        {
                            "worker_id": worker_id,
                            "shard": self._shard_range(worker_id),
                            "phase": "respawn",
                            "exitcode": self._processes[worker_id].exitcode,
                        }
                    ],
                )
            self._total_respawns += 1
            events["respawns"] += 1
            time.sleep(self.respawn_backoff * (2**attempt))
            old = self._processes[worker_id]
            if old.is_alive():  # pragma: no cover - defensive
                old.terminate()
            old.join(timeout=5.0)
            # fresh queues: the dead worker may have left a
            # half-consumed command, stale replies, or -- killed
            # mid-write -- a permanently held queue lock behind; none
            # of that may leak into the replacement
            cmd_queue = self._context.Queue()
            out_queue = self._context.Queue()
            process = self._spawn_process(
                self._configs[worker_id], cmd_queue, out_queue
            )
            self._cmd_queues[worker_id] = cmd_queue
            self._out_queues[worker_id] = out_queue
            self._processes[worker_id] = process
            process.start()
            try:
                self._collect("ready", {worker_id}, {}, {})
                return
            except WorkerCrashError as crash:
                events["crashes"].extend(crash.crashes)
                continue

    # -- lifecycle --------------------------------------------------------

    def close(self, join_timeout: float = 10.0) -> None:
        """Stop all workers and join them; safe to call twice.

        Sends ``("stop",)`` to every worker and waits (briefly, best
        effort) for the clean ``stopped`` acknowledgements before
        joining, so an orderly shutdown is distinguishable from a
        worker that had to be terminated.  Idempotent **under
        concurrent callers**: exactly one caller performs the
        shutdown; every other call -- a second thread, the solver's
        ``__exit__``, the interpreter-exit sweep -- returns
        immediately instead of double-joining dead processes or
        closing already-closed queues.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        _LIVE_POOLS.discard(self)
        for queue in self._cmd_queues:
            try:
                queue.put(("stop",))
            except (OSError, ValueError, EOFError):
                # pragma: no cover - queue already broken
                pass
        self._drain_stop_acks(deadline=time.monotonic() + join_timeout)
        for process in self._processes:
            process.join(timeout=join_timeout)
            if process.is_alive():  # pragma: no cover - hung worker
                process.terminate()
                process.join(timeout=join_timeout)
        for queue in self._cmd_queues + self._out_queues:
            queue.close()

    def _drain_stop_acks(self, deadline: float) -> None:
        """Consume ``stopped`` acks (and stragglers) until the deadline.

        Lenient by design -- close() must succeed even with dead
        workers or junk left on the queues, so everything that is not
        an ack from a live worker is simply discarded.
        """
        waiting = {
            worker_id
            for worker_id in range(self.num_workers)
            if self._processes[worker_id].is_alive()
        }
        while waiting and time.monotonic() < deadline:
            progressed = False
            for worker_id in sorted(waiting):
                try:
                    reply = self._out_queues[worker_id].get_nowait()
                except queue_module.Empty:
                    continue
                except (OSError, ValueError, EOFError):
                    # pragma: no cover - queue torn down
                    return
                progressed = True
                if reply[0] == "stopped":
                    waiting.discard(worker_id)
            if not progressed:
                waiting = {
                    worker_id
                    for worker_id in waiting
                    if self._processes[worker_id].is_alive()
                }
                time.sleep(self._poll)

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
