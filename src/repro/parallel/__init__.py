"""Multi-core sharded execution of the ADER-DG solver.

The serial solver sweeps all elements on one core; this package shards
the grid into contiguous Peano-SFC element blocks and runs each shard
in a persistent worker process, with all field data in shared memory
(see ``docs/parallel.md`` for the full model).  Layers:

* :mod:`repro.parallel.sharding` -- the partition and its
  communication-volume statistics,
* :mod:`repro.parallel.shm` -- shared-memory numpy arrays,
* :mod:`repro.parallel.worker` -- the per-shard predictor/corrector
  worker,
* :mod:`repro.parallel.stepping` -- the static dependency graph and
  mailbox layout of the barrier-free ``stepping="async"`` protocol
  (see ``docs/stepping.md``),
* :mod:`repro.parallel.pool` -- the persistent process pool, its two
  step protocols (global barriers vs. neighbor dependencies), and the
  crash watchdog / recovery policies,
* :mod:`repro.parallel.telemetry` -- structured per-step records
  (phase walls, busy times, retry/respawn counters) and their
  ``steps.jsonl`` export.

Users normally never touch these directly: pass ``num_workers=K`` to
:class:`~repro.engine.solver.ADERDGSolver` (composes with
``batch_size=``) and the solver drives the pool.
"""

from repro.parallel.pool import (
    ShardWorkerPool,
    StepTimings,
    WorkerCrashError,
    default_start_method,
)
from repro.parallel.sharding import ShardPlan, make_shard_plan
from repro.parallel.shm import SharedArrayBundle, SharedArraySpec
from repro.parallel.stepping import (
    FaceExchangeSpec,
    ShardDependencyGraph,
    build_dependency_graph,
)
from repro.parallel.telemetry import EventStream, StepRecord, write_jsonl

__all__ = [
    "ShardPlan",
    "make_shard_plan",
    "SharedArrayBundle",
    "SharedArraySpec",
    "ShardWorkerPool",
    "ShardDependencyGraph",
    "FaceExchangeSpec",
    "build_dependency_graph",
    "StepTimings",
    "StepRecord",
    "EventStream",
    "WorkerCrashError",
    "write_jsonl",
    "default_start_method",
]
