"""Structured per-step telemetry of the solver's execution layer.

Every :meth:`~repro.engine.solver.ADERDGSolver.step` appends one
:class:`StepRecord` to ``solver.step_records`` -- serial, parallel and
degraded (serial-fallback) steps alike -- so the load-balance report,
the strong-scaling table and the failure counters of the fault-tolerant
pool all read from one data path.  :func:`write_jsonl` serializes a
record list as ``steps.jsonl`` (one JSON object per line), the format
``repro.harness --csv`` exports next to the CSV tables.

Records can also be **streamed while a run is in flight**:
:class:`EventStream` is a small thread-safe fan-out (publish /
subscribe with bounded replay) that
:meth:`~repro.engine.solver.ADERDGSolver.add_step_listener` feeds --
the solver-as-a-service layer (:mod:`repro.service`) uses it to
deliver per-step telemetry and receiver samples to clients
incrementally instead of only at job completion.
"""

from __future__ import annotations

import json
import queue as queue_module
import threading
from collections import deque
from dataclasses import asdict, dataclass, field
from pathlib import Path

__all__ = ["StepRecord", "EventStream", "write_jsonl"]


@dataclass
class StepRecord:
    """One time step's structured execution telemetry.

    Attributes
    ----------
    step:
        Zero-based step index.
    t:
        Simulation time *after* the step.
    dt:
        Time step taken.
    mode:
        ``"serial"``, ``"parallel"`` or ``"serial-fallback"`` (a
        parallel step that degraded to the in-process path after a
        worker crash under ``on_worker_failure="serial"``).
    wall:
        Wall-clock seconds of the whole step.
    phase_walls:
        Critical-path seconds per phase
        (``predict`` / ``riemann`` / ``correct``).
    worker_busy:
        Per-worker busy seconds (predict + correct); empty when serial.
    retries:
        Barrier retries of the step (one per crash-recovery round).
    respawns:
        Worker processes restarted during the step.
    crashes:
        One diagnostic dict per detected worker death
        (``worker_id`` / ``shard`` / ``phase`` / ``exitcode``).
    queue_depth:
        Largest reply-queue backlog observed while collecting the
        step's barriers (0 when serial or unsupported by the OS).
    stepping:
        Step protocol that ran: ``"serial"`` for in-process steps,
        else the pool's mode (``"barrier"`` or ``"async"``).
    worker_wait:
        Per-worker synchronization-idle seconds (barrier mode: reply
        arrival to barrier release; async mode: reply to next command
        dispatch).  Empty when serial.
    worker_publish:
        Per-worker mailbox flux-export seconds (async mode only).
    backend:
        Executor that ran the step's kernels (``"numpy"`` or
        ``"numba"``; a compiled backend that fell back reports the
        backend it actually ran with).
    compile_s:
        Seconds of kernel compilation attributed to this step (0.0
        after warm-up and always 0.0 on the NumPy backend).
    fused:
        Whether the step ran through the fused whole-step compiled
        program instead of the three-phase path.
    pack_calls / unpack_calls:
        Resident-state layout pack/unpack operations this step actually
        executed (ingest/egress only; 0 on the steady fused path and on
        solvers without a resident state).
    pack_bytes_avoided:
        Cumulative bytes of per-step pack/unpack traffic the resident
        stack has skipped so far (snapshot of the executor's counter).
    """

    step: int
    t: float
    dt: float
    mode: str
    wall: float
    phase_walls: dict = field(default_factory=dict)
    worker_busy: dict = field(default_factory=dict)
    retries: int = 0
    respawns: int = 0
    crashes: list = field(default_factory=list)
    queue_depth: int = 0
    backend: str = "numpy"
    compile_s: float = 0.0
    stepping: str = "serial"
    worker_wait: dict = field(default_factory=dict)
    worker_publish: dict = field(default_factory=dict)
    fused: bool = False
    pack_calls: int = 0
    unpack_calls: int = 0
    pack_bytes_avoided: int = 0

    def imbalance(self) -> float:
        """max/mean of the per-worker busy seconds (1.0 = balanced)."""
        busy = list(self.worker_busy.values())
        if not busy:
            return 1.0
        mean = sum(busy) / len(busy)
        return max(busy) / mean if mean > 0.0 else 1.0

    def to_dict(self) -> dict:
        """JSON-ready plain dict (worker ids become string keys).

        Adds the derived ``imbalance`` ratio and ``wait_total`` (summed
        ``worker_wait`` seconds -- the number the barrier-vs-async
        comparison in ``docs/stepping.md`` reads off ``steps.jsonl``).
        """
        data = asdict(self)
        for key in ("worker_busy", "worker_wait", "worker_publish"):
            data[key] = {
                str(worker): seconds for worker, seconds in data[key].items()
            }
        data["imbalance"] = self.imbalance()
        data["wait_total"] = float(sum(self.worker_wait.values()))
        return data


#: end-of-stream marker delivered to every subscriber queue on close
_SENTINEL = None


class EventStream:
    """Thread-safe publish/subscribe fan-out with bounded replay.

    One producer (a running job's session thread) publishes items; any
    number of consumers subscribe -- each gets its own queue, primed
    with a replay of the last ``replay`` published items, so a client
    that subscribes mid-run still sees recent history before the live
    tail.  :meth:`close` terminates every subscriber's iteration (a
    ``None`` sentinel); publishing after close is a silent no-op so a
    late-racing producer cannot crash a finished job.

    Items are whatever the producer publishes -- the service layer
    streams plain-dict job events; nothing here inspects them.
    """

    def __init__(self, replay: int = 1024):
        self._history: deque = deque(maxlen=int(replay))
        self._subscribers: list[queue_module.SimpleQueue] = []
        self._lock = threading.Lock()
        self._closed = False

    def publish(self, item) -> None:
        """Deliver ``item`` to every subscriber (and the replay buffer)."""
        with self._lock:
            if self._closed:
                return
            self._history.append(item)
            for sub in self._subscribers:
                sub.put(item)

    def close(self) -> None:
        """End the stream: every subscriber's iteration terminates."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for sub in self._subscribers:
                sub.put(_SENTINEL)

    @property
    def closed(self) -> bool:
        """Whether the stream has been closed."""
        with self._lock:
            return self._closed

    def subscribe(self) -> queue_module.SimpleQueue:
        """A fresh queue primed with the replay history (+ live tail).

        On a closed stream the queue holds the replayed history
        followed by the end sentinel -- late subscribers drain what
        happened and stop, they never block forever.
        """
        sub: queue_module.SimpleQueue = queue_module.SimpleQueue()
        with self._lock:
            for item in self._history:
                sub.put(item)
            if self._closed:
                sub.put(_SENTINEL)
            else:
                self._subscribers.append(sub)
        return sub

    def events(self, timeout: float | None = None):
        """Iterate the stream: replay, then live items, until closed.

        ``timeout`` bounds the wait for *each* item; expiry raises
        ``queue.Empty`` (a stalled producer is a caller-visible
        condition, not silent truncation).
        """
        sub = self.subscribe()
        while True:
            item = sub.get(timeout=timeout)
            if item is _SENTINEL:
                return
            yield item


def write_jsonl(records, path) -> Path:
    """Write records (:class:`StepRecord` or plain dicts) as JSON lines."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        for record in records:
            data = record.to_dict() if isinstance(record, StepRecord) else record
            fh.write(json.dumps(data) + "\n")
    return path
