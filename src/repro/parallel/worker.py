"""The per-shard worker process of the sharded solver.

Each worker owns one contiguous SFC shard of elements for the whole
solver lifetime.  Per time step it executes the same two phases as the
serial :class:`~repro.engine.solver.ADERDGSolver` -- predictor, then
Riemann + corrector -- on exactly its own elements, against the shared
double-buffered state arrays:

* **predict**: run the Space-Time Predictor (through the same
  :class:`~repro.core.variants.BatchedSTP` driver the serial batched
  path uses) on the shard's elements, write each element's six face
  traces into the shared ``qface`` array, keep the volume outputs
  (``qavg``/``vavg``/``savg``) process-local for phase two.
* **correct**: after the pool's barrier guarantees every neighbor
  trace is published, solve the Riemann problems of all six faces of
  every owned element and apply the corrector, writing the new state
  into the *output* buffer.

Determinism: faces crossing shard boundaries are solved *redundantly*
on both sides from bitwise-identical inputs (the communication-avoiding
scheme of Charrier & Weinzierl, arXiv:1801.08682), and every element
state is written by exactly one worker -- so the parallel step involves
no reduction whose order could perturb the result.  The remaining
difference against the serial path is only element-block composition
inside the batched GEMMs, which the test-suite bounds at 1e-12.
"""

from __future__ import annotations

import threading
import time
import traceback
from dataclasses import dataclass

import numpy as np

from repro.basis.operators import cached_operators
from repro.codegen.executor import resolve_executor
from repro.core.corrector import _face_params, corrector_update
from repro.core.spec import KernelSpec
from repro.core.variants import BatchedSTP, ElementSource, combine_sources, make_kernel
from repro.core.variants.batched import ScratchArena
from repro.engine.boundary import ghost_state
from repro.engine.facesweep import FaceSweep
from repro.engine.riemann import SOLVERS
from repro.mesh.grid import BOUNDARY, UniformGrid
from repro.parallel.shm import SharedArrayBundle, SharedArraySpec
from repro.pde.base import LinearPDE

__all__ = ["WorkerConfig", "worker_main", "HEARTBEAT_INTERVAL"]

#: seconds between liveness heartbeats a worker emits while serving
HEARTBEAT_INTERVAL = 0.5


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a worker needs to rebuild its solver slice.

    Shipped once at pool start-up (pickled under ``spawn``, inherited
    under ``fork``); field data never travels this way.
    """

    worker_id: int
    grid: UniformGrid
    pde: LinearPDE
    order: int
    variant: str
    arch: str
    quadrature: str
    riemann: str
    boundary: str
    batch_size: int | None
    elements: np.ndarray
    handles: dict[str, SharedArraySpec]
    #: vectorized face-sweep Riemann + block corrector (default); the
    #: legacy per-element loop stays for the conformance tests
    face_sweep: bool = True
    #: kernel executor backend name; each worker process resolves its
    #: own executor (executors hold process-local compiled state and
    #: never travel through the config pickle)
    backend: str = "numpy"
    #: step protocol: ``"barrier"`` (two global barriers, redundant
    #: cross-shard Riemann solves) or ``"async"`` (neighbor-dependency
    #: scheduling with mailbox flux exchange; see ``docs/stepping.md``)
    stepping: str = "barrier"
    #: ``(n_elements,)`` element -> shard owner map (async mode only)
    owner: np.ndarray | None = None
    #: ``(3, n_elements)`` cut-face -> mailbox slot map (async mode only)
    slot_of: np.ndarray | None = None
    #: fused whole-step request (``"auto"`` / ``True`` / ``False``);
    #: each worker fuses only when its own resolved executor is
    #: compiled (``"auto"``) or unconditionally tries (``True``)
    fuse: object = False


class _ShardWorker:
    """Process-local state of one worker: kernels, shard, shm views."""

    def __init__(self, config: WorkerConfig):
        self.config = config
        self.grid = config.grid
        self.pde = config.pde
        self.h = config.grid.h
        self.elements = np.asarray(config.elements, dtype=np.int64)
        self.spec = KernelSpec(
            order=config.order,
            nvar=config.pde.nvar,
            nparam=config.pde.nparam,
            arch=config.arch,
            quadrature=config.quadrature,
        )
        self.ops = cached_operators(config.order, config.quadrature)
        self.riemann = SOLVERS[config.riemann]
        self.boundary = config.boundary
        # resolved in-process: compiled executors keep per-process plan
        # registries and jitted namespaces that cannot be pickled
        self.executor = resolve_executor(config.backend)
        if config.batch_size is not None:
            self.driver = BatchedSTP(
                config.variant,
                self.spec,
                config.pde,
                batch_size=config.batch_size,
                backend=self.executor,
            )
            self.kernel = None
        else:
            self.driver = None
            self.kernel = make_kernel(config.variant, self.spec, config.pde)
        self.bundle = SharedArrayBundle.attach(config.handles)
        self.states = (self.bundle["states0"], self.bundle["states1"])
        self.qface = self.bundle["qface"]
        #: element id -> STPResult of the current step's predictor
        #: (legacy path only)
        self.results: dict[int, object] = {}
        self.sweep = None
        self._vavg = None
        #: element id -> time-integrated source of the current step
        self._savg: dict[int, np.ndarray] = {}
        self.mailbox = None
        if config.face_sweep:
            n, m = config.order, config.pde.nquantities
            exchange = None
            if config.stepping == "async":
                from repro.parallel.stepping import FaceExchangeSpec

                # async mode: cut faces are solved once by their
                # canonical owner and exchanged through the mailbox
                exchange = FaceExchangeSpec(
                    shard=config.worker_id,
                    owner=np.asarray(config.owner, dtype=np.int64),
                    slot_of=np.asarray(config.slot_of, dtype=np.int64),
                )
                self.mailbox = self.bundle["mailbox"]
            # the shard's face planes include cross-shard faces; in
            # barrier mode they are solved redundantly from the shared
            # traces (see module docstring)
            self.sweep = FaceSweep(
                config.grid,
                config.pde,
                config.order,
                riemann=config.riemann,
                boundary=config.boundary,
                elements=self.elements,
                executor=self.executor,
                exchange=exchange,
            )
            self._vavg = np.zeros((self.elements.size, n, n, n, m))
            self._arena = (
                self.driver.arena if self.driver is not None else ScratchArena()
            )
        #: fused whole-step pipeline (None = phase-wise execution);
        #: stage dispatch is decided once per step in predict() so a
        #: step never mixes fused and phase-wise sub-phases
        self._pipeline = None
        self._step_fused = False
        fuse = config.fuse
        if fuse == "auto":
            fuse = self.executor.is_compiled
        if fuse and self.sweep is not None:
            from repro.codegen.fusedstep import FusedPipeline

            self._pipeline = FusedPipeline(
                executor=self.executor,
                sweep=self.sweep,
                variant=config.variant,
                spec=self.spec,
                pde=config.pde,
                h=self.h,
                boundary=config.boundary,
                elements=self.elements,
                qface=self.qface,
                block_size=config.batch_size or 8,
                n_elements=config.grid.n_elements,
                mailbox=self.mailbox,
            )

    # -- phase 1 ----------------------------------------------------------

    def predict(self, buf: int, dt: float, sources: dict) -> None:
        """Run the STP on the shard; publish face traces to shm."""
        states_in = self.states[buf]

        def source_of(e: int) -> ElementSource | None:
            payload = sources.get(int(e))
            if payload is None:
                return None
            # one (projection, amplitude, derivatives) triple per
            # registered source; co-located sources are summed exactly
            # like the serial path's _element_source
            return combine_sources([ElementSource(*part) for part in payload])

        if self._pipeline is not None:
            # fused predict: gather, STP, face projection and the
            # volume-average accumulation all inside the compiled
            # program; sub-phase buffers stay pipeline-resident
            source_map = {int(e): source_of(int(e)) for e in sources}
            detail = self.executor.step_block(
                self._pipeline, "predict",
                q=states_in, qidx=self.elements,
                dt=dt, sources=source_map, states=states_in,
            )
            self._step_fused = detail is not None
            if self._step_fused:
                self.executor.stats.note_fused_step()
                return
            # no fused program for this PDE: stay phase-wise for good
            self._pipeline = None
            self.executor.stats.note_phase_step()
        if self.sweep is not None:
            if self.driver is not None:
                self._savg = self.driver.predictor_sweep(
                    states_in, dt, self.h, self.elements,
                    qface_out=self.qface, vavg_out=self._vavg,
                    source_fn=source_of,
                )
            else:
                self._savg = {}
                for pos, e in enumerate(self.elements):
                    e = int(e)
                    result = self.kernel.predictor(
                        states_in[e], dt, self.h, source=source_of(e)
                    )
                    for d in range(3):
                        for side in (0, 1):
                            self.qface[e, d, side] = result.qface[(d, side)]
                    self._vavg[pos] = result.vavg_total
                    if result.savg is not None:
                        self._savg[e] = result.savg
            return
        if self.driver is not None:
            self.results = self.driver.predictor_shard(
                states_in, dt, self.h, self.elements,
                qface_out=self.qface, source_fn=source_of,
            )
        else:
            self.results = {}
            for e in self.elements:
                e = int(e)
                result = self.kernel.predictor(
                    states_in[e], dt, self.h, source=source_of(e)
                )
                self.results[e] = result
                for d in range(3):
                    for side in (0, 1):
                        self.qface[e, d, side] = result.qface[(d, side)]

    # -- phase 2 ----------------------------------------------------------

    def correct(self, buf: int) -> dict | None:
        """Riemann-solve all own faces and write corrected states.

        Reads the *input* buffer ``buf`` (states at ``t_n``) and the
        shared face traces, writes the *output* buffer ``1 - buf``.
        Cross-shard faces are recomputed from the same inputs the
        neighbor's owner uses, so both sides obtain the identical flux.

        In face-sweep mode the return value splits the phase into its
        ``{"riemann", "correct"}`` second counts (``None`` on the
        legacy path).
        """
        if self.sweep is not None:
            return self._correct_sweep(buf)
        grid, pde = self.grid, self.pde
        states_in = self.states[buf]
        states_out = self.states[1 - buf]
        for e in self.elements:
            e = int(e)
            result = self.results[e]
            fluxes = {}
            for d in range(3):
                # high face: this element is the left side
                neighbor = grid.neighbor(e, d, 1)
                q_left = result.qface[(d, 1)]
                params_left = _face_params(states_in[e], d, 1, pde)
                if neighbor == BOUNDARY:
                    q_right = ghost_state(self.boundary, pde, q_left, d, 1)
                    params_right = params_left
                else:
                    q_right = self.qface[neighbor, d, 0]
                    params_right = _face_params(states_in[neighbor], d, 0, pde)
                fluxes[(d, 1)] = self.riemann(
                    pde, q_left, q_right, params_left, params_right, d
                )
                # low face: this element is the right side
                neighbor = grid.neighbor(e, d, 0)
                q_right = result.qface[(d, 0)]
                params_right = _face_params(states_in[e], d, 0, pde)
                if neighbor == BOUNDARY:
                    q_left = ghost_state(self.boundary, pde, q_right, d, 0)
                    params_left = params_right
                else:
                    q_left = self.qface[neighbor, d, 1]
                    params_left = _face_params(states_in[neighbor], d, 1, pde)
                fluxes[(d, 0)] = self.riemann(
                    pde, q_left, q_right, params_left, params_right, d
                )
            states_out[e] = corrector_update(
                states_in[e], result, fluxes, self.h, pde, self.ops
            )
        return None

    def _correct_sweep(self, buf: int) -> dict:
        """Face-sweep Riemann + block corrector over the shard."""
        if self._step_fused:
            return self._fused_stage(
                "riemann_correct",
                qin=self.states[buf], qout=self.states[1 - buf],
                qidx_in=self.elements, qidx_out=self.elements,
                states=self.states[buf],
            )
        t0 = time.perf_counter()
        self.sweep.sweep(self.states[buf], self.qface)
        t1 = time.perf_counter()
        self._apply_corrector(buf)
        t2 = time.perf_counter()
        return {"riemann": t1 - t0, "correct": t2 - t1}

    def _fused_stage(self, stage: str, **kwargs) -> dict:
        """Run one fused stage of a step whose predict already fused.

        The predict phase decided this step's dispatch; a later stage
        cannot fall back mid-step (the phase-wise path would read
        sub-phase buffers the fused predict never filled), so a missing
        program here is a hard protocol error rather than a silent
        wrong answer.
        """
        detail = self.executor.step_block(self._pipeline, stage, **kwargs)
        if detail is None:  # pragma: no cover - predict proved the program
            raise RuntimeError(
                f"fused stage {stage!r} lost the compiled program that "
                "served this step's predict phase"
            )
        return detail

    # -- async phases ------------------------------------------------------

    def riemann_phase(self, buf: int) -> dict:
        """Async mode: sweep the local face planes, publish cut fluxes.

        Runs once every halo neighbor's predict has landed (the pool's
        dependency scheduler guarantees it); solves only the faces this
        shard canonically owns and exports the cut-face fluxes into the
        shared mailbox for the importing neighbors.
        """
        if self._step_fused:
            # the mailbox export happens inside the same compiled
            # program as the Riemann solves (docs/stepping.md)
            return self._fused_stage("riemann_export", states=self.states[buf])
        t0 = time.perf_counter()
        self.sweep.sweep(self.states[buf], self.qface)
        t1 = time.perf_counter()
        self.sweep.export_fluxes(self.mailbox)
        t2 = time.perf_counter()
        return {"riemann": t1 - t0, "publish": t2 - t1}

    def finish_phase(self, buf: int) -> dict:
        """Async mode: import neighbor fluxes, apply the corrector.

        Runs once every provider shard's riemann phase has published;
        completes the face planes from the mailbox and writes the
        corrected states of exactly this shard's elements.
        """
        if self._step_fused:
            return self._fused_stage(
                "finish",
                qin=self.states[buf], qout=self.states[1 - buf],
                qidx_in=self.elements, qidx_out=self.elements,
            )
        t0 = time.perf_counter()
        self.sweep.import_fluxes(self.mailbox)
        t1 = time.perf_counter()
        self._apply_corrector(buf)
        t2 = time.perf_counter()
        return {"import": t1 - t0, "correct": t2 - t1}

    def _apply_corrector(self, buf: int) -> None:
        """Block corrector over the shard (planes must be complete)."""
        states_in = self.states[buf]
        states_out = self.states[1 - buf]
        n, m = self.config.order, self.pde.nquantities
        block = self.config.batch_size or self.elements.size
        fstar = self._arena.get("fstar_block", (block, 3, 2, n, n, m))
        qnew = self._arena.get("corrector_out", (block, n, n, n, m))
        efp = self.sweep.element_face_params
        for start in range(0, self.elements.size, block):
            chunk = self.elements[start : start + block]
            b = chunk.size
            self.sweep.gather_fstar(chunk, fstar[:b])
            savg_rows = {
                i: self._savg[int(e)]
                for i, e in enumerate(chunk)
                if int(e) in self._savg
            }
            self.executor.corrector_block(
                states_in[chunk],
                self._vavg[start : start + b],
                savg_rows,
                self.qface[chunk],
                fstar[:b],
                None if efp is None else efp[chunk],
                self.h,
                self.pde,
                self.ops,
                out=qnew[:b],
                arena=self._arena,
            )
            states_out[chunk] = qnew[:b]

    def invalidate(self) -> None:
        """Drop cached material parameters (new initial condition)."""
        if self.sweep is not None:
            self.sweep.invalidate_parameters()

    def close(self) -> None:
        """Drop the shared-memory mappings."""
        self.bundle.close()


def _start_heartbeat(worker_id: int, out_queue) -> threading.Event:
    """Emit ``("heartbeat", id, "", wall time)`` until the event is set.

    The pool uses the heartbeats as hang diagnostics only (liveness is
    detected via ``Process.is_alive()``): a barrier timeout reports how
    long each unresponsive worker has been silent.
    """
    stop = threading.Event()

    def beat() -> None:
        while not stop.wait(HEARTBEAT_INTERVAL):
            try:
                out_queue.put(("heartbeat", worker_id, "", time.time()))
            except (OSError, ValueError, EOFError):
                # pragma: no cover - queue torn down mid-shutdown
                return

    threading.Thread(target=beat, daemon=True, name="repro-heartbeat").start()
    return stop


def worker_main(config: WorkerConfig, cmd_queue, out_queue) -> None:
    """Entry point of one worker process: serve step commands until stop.

    Protocol (all small, picklable tuples):

    * in:  ``("predict", buf, dt, sources)`` / ``("correct", buf)`` /
      ``("riemann", buf)`` / ``("finish", buf)`` (the async split of
      the correct phase) / ``("invalidate",)`` / ``("stop",)``
    * out: ``("ready", worker_id, "ready", 0.0)`` once after start-up,
      ``("done", worker_id, phase, seconds, detail)`` per served
      command, ``("stopped", worker_id, "stop", 0.0)`` as the clean
      shutdown acknowledgement, ``("heartbeat", worker_id, "", wall)``
      periodically from a background thread, or
      ``("error", worker_id, traceback_text)``; ``detail`` is the
      phase's sub-timing dict (face-sweep correct) or ``None``.

    Every reply carries the phase it answers so the pool can match
    replies against the expected barrier exactly (a stale reply is a
    protocol error, not a silent success).  ``out_queue`` is private to
    this worker: the pool reads one reply queue per worker, so a worker
    killed while holding its queue's write lock cannot silence the
    survivors.
    """
    worker: _ShardWorker | None = None
    heartbeat: threading.Event | None = None
    try:
        worker = _ShardWorker(config)
        heartbeat = _start_heartbeat(config.worker_id, out_queue)
        out_queue.put(("ready", config.worker_id, "ready", 0.0))
        while True:
            message = cmd_queue.get()
            kind = message[0]
            if kind == "stop":
                out_queue.put(("stopped", config.worker_id, "stop", 0.0))
                break
            try:
                started = time.perf_counter()
                detail = None
                if kind == "predict":
                    _, buf, dt, sources = message
                    detail = worker.predict(buf, dt, sources)
                elif kind == "correct":
                    _, buf = message
                    detail = worker.correct(buf)
                elif kind == "riemann":
                    _, buf = message
                    detail = worker.riemann_phase(buf)
                elif kind == "finish":
                    _, buf = message
                    detail = worker.finish_phase(buf)
                elif kind == "invalidate":
                    worker.invalidate()
                else:
                    raise ValueError(f"unknown worker command {kind!r}")
                out_queue.put(
                    (
                        "done",
                        config.worker_id,
                        kind,
                        time.perf_counter() - started,
                        detail,
                    )
                )
            # any phase failure must reach the pool as an ("error", ...)
            # reply -- re-raising would kill the process before the
            # traceback crosses the process boundary
            # pragma: allow(HP002): traceback must cross the process gap
            except Exception:
                out_queue.put(("error", config.worker_id, traceback.format_exc()))
    # pragma: allow(HP002): ship start-up failures to the pool, not stderr
    except Exception:  # pragma: no cover - start-up failure
        out_queue.put(("error", config.worker_id, traceback.format_exc()))
    finally:
        if heartbeat is not None:
            heartbeat.set()
        if worker is not None:
            worker.close()
