"""Static dependency graph of the barrier-free (``stepping="async"``) mode.

The barrier pool synchronizes *globally* twice per step; the async pool
replaces both barriers with the per-shard dependencies this module
derives once at start-up (see ``docs/stepping.md``).  The derivation
uses exactly the connectivity the workers execute with
(:func:`~repro.engine.facesweep.direction_faces`), which is also what
the race prover's halo model is built from -- so the schedule the pool
runs is the schedule :func:`~repro.analysis.race_prover.
prove_async_schedule` proves race-free.

Two artifacts come out of one pass over the grid's interior faces:

* the **neighbor sets** -- shard ``w`` depends on shard ``v`` iff some
  face has one side owned by each (the face-plane halo relation, which
  is symmetric);
* the **mailbox layout** -- every *cut* face (its two elements owned by
  different shards) gets one slot in a small shared flux array.  The
  face's canonical owner (the shard owning its *left*, low-coordinate
  element -- the same convention :func:`direction_faces` keys interior
  faces by) Riemann-solves it once and exports the flux; the other
  shard imports the flux instead of redundantly re-solving.

``slot_of`` is indexed ``(direction, left element)`` because that pair
identifies an interior face uniquely; ``-1`` marks faces that are not
cut.  Slot ids are assigned in deterministic ``(direction, element)``
enumeration order, so every process derives the identical layout from
the same :class:`~repro.parallel.sharding.ShardPlan`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.facesweep import direction_faces

__all__ = [
    "FaceExchangeSpec",
    "ShardDependencyGraph",
    "build_dependency_graph",
]


@dataclass(frozen=True)
class FaceExchangeSpec:
    """One shard's view of the mailbox flux exchange.

    Handed to :class:`~repro.engine.facesweep.FaceSweep` so it can
    partition its face planes into *solve* rows (this shard is the
    canonical owner, or the face is not cut) and *import* rows (the
    neighbor solves and exports; this shard reads the mailbox slot).

    Attributes
    ----------
    shard:
        The shard id this spec belongs to.
    owner:
        ``(n_elements,)`` element id -> owning shard map.
    slot_of:
        ``(3, n_elements)`` map ``(direction, left element)`` ->
        mailbox slot (``-1`` for faces that do not cross shards).
    """

    shard: int
    owner: np.ndarray
    slot_of: np.ndarray


@dataclass(frozen=True)
class ShardDependencyGraph:
    """Neighbor dependencies and mailbox layout of one shard plan.

    Built once per plan by :func:`build_dependency_graph`; the async
    pool schedules phases from the per-shard sets, the workers carve
    their face-plane exchange out of ``slot_of``, and the race prover
    re-derives all of it independently to certify the schedule.

    Attributes
    ----------
    num_shards:
        Worker count of the underlying plan.
    neighbors:
        Per shard, the frozenset of shards sharing at least one face
        with it (symmetric: ``v in neighbors[w]`` iff ``w in
        neighbors[v]``).
    providers:
        Per shard ``w``, the shards whose exported mailbox fluxes ``w``
        imports (the cut faces whose canonical/left owner is the other
        shard).  Always a subset of ``neighbors[w]``.
    consumers:
        Per shard ``w``, the shards importing fluxes ``w`` exports (the
        transpose of ``providers``).
    slot_of:
        ``(3, n_elements)`` map ``(direction, left element)`` ->
        mailbox slot id, ``-1`` where the face is not cut.
    exporter:
        ``(n_slots,)`` shard that solves and publishes each slot.
    importer:
        ``(n_slots,)`` shard that imports each slot.
    """

    num_shards: int
    neighbors: tuple
    providers: tuple
    consumers: tuple
    slot_of: np.ndarray
    exporter: np.ndarray
    importer: np.ndarray

    @property
    def n_slots(self) -> int:
        """Number of mailbox slots (= cut faces of the plan)."""
        return int(self.exporter.shape[0])

    def edges(self) -> list:
        """Sorted unique ``(v, w)`` neighbor pairs with ``v < w``."""
        pairs = {
            (min(w, v), max(w, v))
            for w, nbrs in enumerate(self.neighbors)
            for v in nbrs
        }
        return sorted(pairs)

    def exchange_spec(self, shard: int, owner: np.ndarray) -> FaceExchangeSpec:
        """The :class:`FaceExchangeSpec` of one shard."""
        return FaceExchangeSpec(
            shard=int(shard),
            owner=np.asarray(owner, dtype=np.int64),
            slot_of=self.slot_of,
        )

    def stats(self) -> dict:
        """Telemetry summary: slots, edges and the maximum degree."""
        degrees = [len(nbrs) for nbrs in self.neighbors] or [0]
        return {
            "num_shards": self.num_shards,
            "exchanged_faces": self.n_slots,
            "edges": len(self.edges()),
            "max_degree": max(degrees),
        }


def build_dependency_graph(plan) -> ShardDependencyGraph:
    """Derive the async-stepping dependency graph of ``plan``.

    One pass over the grid's interior faces (per direction, via the
    same :func:`~repro.engine.facesweep.direction_faces` connectivity
    the workers sweep with): every face whose two elements have
    different owners becomes a mailbox slot exported by the owner of
    its left element, and contributes one symmetric neighbor edge.
    ``n_slots`` therefore equals ``plan.cut_faces()`` for well-formed
    plans -- exactly the faces the barrier pool solves redundantly.
    """
    grid = plan.grid
    owner = np.asarray(plan.owner, dtype=np.int64)
    num_shards = plan.num_shards
    slot_of = np.full((3, grid.n_elements), -1, dtype=np.int64)
    exporter: list[int] = []
    importer: list[int] = []
    neighbors = [set() for _ in range(num_shards)]
    providers = [set() for _ in range(num_shards)]
    consumers = [set() for _ in range(num_shards)]
    for d in range(3):
        df = direction_faces(grid, d)
        both = np.nonzero((df.left >= 0) & (df.right >= 0))[0]
        lefts, rights = df.left[both], df.right[both]
        cut = owner[lefts] != owner[rights]
        for left, right in zip(lefts[cut], rights[cut]):
            src, dst = int(owner[left]), int(owner[right])
            slot_of[d, left] = len(exporter)
            exporter.append(src)
            importer.append(dst)
            neighbors[src].add(dst)
            neighbors[dst].add(src)
            providers[dst].add(src)
            consumers[src].add(dst)
    return ShardDependencyGraph(
        num_shards=num_shards,
        neighbors=tuple(frozenset(s) for s in neighbors),
        providers=tuple(frozenset(s) for s in providers),
        consumers=tuple(frozenset(s) for s in consumers),
        slot_of=slot_of,
        exporter=np.asarray(exporter, dtype=np.int64),
        importer=np.asarray(importer, dtype=np.int64),
    )
