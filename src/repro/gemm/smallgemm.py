"""Shape-specialized small matrix multiplication (the LIBXSMM analog).

A :class:`SmallGemm` computes ``C (+)= A @ B`` for fixed shapes

* ``A``: ``(m, k)``,
* ``B``: ``(k, n)``,
* ``C``: ``(m, n)``,

where ``n`` -- the *columns* of ``B`` and ``C`` -- is the unit-stride
dimension (row-major convention).  Leading dimensions ``lda/ldb/ldc``
are row strides in doubles and may exceed the logical widths; this is
how the kernels restrict a GEMM to a matrix slice of a larger tensor
without copying, interpreting the slice stride as the padded leading
dimension (paper Fig. 3).

The cost model mirrors a LIBXSMM microkernel vectorized along the
unit-stride ``n`` dimension: each ``(row, k)`` pair issues
``ceil(n / vec)`` FMA instructions, so padded lanes execute real FLOPs
-- exactly the "padding comes for free" accounting of Sec. III-A.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.isa import FlopCounts, TrafficCounts

__all__ = ["SmallGemm"]


@dataclass(frozen=True)
class SmallGemm:
    """One generated small-GEMM microkernel.

    Parameters
    ----------
    m, n, k:
        Logical GEMM shape: ``C[m, n] (+)= A[m, k] @ B[k, n]``.
    lda, ldb, ldc:
        Row strides (in doubles) of the operands as laid out in the
        surrounding tensors; default to the logical widths.
    accumulate:
        ``True`` for ``beta = 1`` (accumulate into C), ``False`` for
        ``beta = 0`` (overwrite).
    vector_doubles:
        SIMD lanes of the target microkernel (1 = scalar code, e.g. the
        generic triple-loop fallback the Kernel Generator emits when
        LIBXSMM is unavailable).
    """

    m: int
    n: int
    k: int
    lda: int = -1
    ldb: int = -1
    ldc: int = -1
    accumulate: bool = False
    vector_doubles: int = 8

    def __post_init__(self) -> None:
        if min(self.m, self.n, self.k) < 1:
            raise ValueError("GEMM dimensions must be positive")
        if self.vector_doubles not in (1, 2, 4, 8):
            raise ValueError("vector_doubles must be 1, 2, 4 or 8")
        object.__setattr__(self, "lda", self.k if self.lda < 0 else self.lda)
        object.__setattr__(self, "ldb", self.n if self.ldb < 0 else self.ldb)
        object.__setattr__(self, "ldc", self.n if self.ldc < 0 else self.ldc)
        if self.lda < self.k or self.ldb < self.n or self.ldc < self.n:
            raise ValueError("leading dimensions must cover the logical widths")

    # -- geometry ---------------------------------------------------------

    @property
    def width_bits(self) -> int:
        """Packing width of the generated FP instructions."""
        return 64 * self.vector_doubles

    @property
    def n_vectors(self) -> int:
        """Vector registers per C row (``ceil(n / vec)``)."""
        v = self.vector_doubles
        return (self.n + v - 1) // v

    @property
    def shape_key(self) -> tuple:
        """Dispatch key, LIBXSMM-style: shape + strides + beta + ISA."""
        return (self.m, self.n, self.k, self.lda, self.ldb, self.ldc,
                self.accumulate, self.vector_doubles)

    # -- cost model -------------------------------------------------------

    def flop_counts(self) -> FlopCounts:
        """Executed FLOPs attributed to the microkernel's packing width.

        The microkernel runs full vectors over the (padded) unit-stride
        dimension: ``m * k`` FMA sweeps of ``n_vectors`` registers, i.e.
        ``2 * m * k * n_vectors * vec`` FLOPs, *including* the padding
        lanes a hardware counter would see.
        """
        flops = 2.0 * self.m * self.k * self.n_vectors * self.vector_doubles
        return FlopCounts.at_width(flops, self.width_bits)

    @property
    def useful_flops(self) -> float:
        """FLOPs excluding padding lanes (the numerically needed work)."""
        return 2.0 * self.m * self.k * self.n

    def traffic(self) -> TrafficCounts:
        """Bytes moved per call, assuming no intra-call cache hits.

        A touches ``m * k`` doubles, B ``k * n_vec`` vectors, C is read
        (when accumulating) and written once.
        """
        a = 8.0 * self.m * self.k
        b = 8.0 * self.k * self.n_vectors * self.vector_doubles
        c = 8.0 * self.m * self.n_vectors * self.vector_doubles
        reads = a + b + (c if self.accumulate else 0.0)
        return TrafficCounts(read_bytes=reads, write_bytes=c)

    # -- execution ----------------------------------------------------------

    def __call__(self, a: np.ndarray, b: np.ndarray, c: np.ndarray) -> None:
        """Execute on 2-D views ``a (m,k)``, ``b (k,n)``, ``c (m,n)``.

        The views are expected to be slices of padded tensors; strides
        are carried by NumPy, the ``ld*`` fields only feed the cost
        model.  Padding columns beyond ``n`` are not touched by the
        NumPy path (they stay zero by the layout contract).
        """
        if a.shape != (self.m, self.k):
            raise ValueError(f"A must be {(self.m, self.k)}, got {a.shape}")
        if b.shape != (self.k, self.n):
            raise ValueError(f"B must be {(self.k, self.n)}, got {b.shape}")
        if c.shape != (self.m, self.n):
            raise ValueError(f"C must be {(self.m, self.n)}, got {c.shape}")
        if self.accumulate:
            c += a @ b
        else:
            c[...] = a @ b

    def __repr__(self) -> str:  # compact, libxsmm-dispatch style
        beta = 1 if self.accumulate else 0
        return (
            f"SmallGemm({self.m}x{self.n}x{self.k}, ld=({self.lda},{self.ldb},"
            f"{self.ldc}), beta={beta}, vec={self.vector_doubles})"
        )
