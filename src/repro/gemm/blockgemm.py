"""Element-block GEMM execution: one call, many stacked slices.

The per-element Loop-over-GEMM path dispatches a :class:`SmallGemm`
and then walks its slice batch in a Python loop -- faithful to the
LIBXSMM call-per-slice structure, but the loop overhead dwarfs the
math for the small matrices of the STP.  When several elements are
processed as one block, every slice of every element shares the same
operand matrix, so the whole batch collapses into a single broadcast
``np.matmul`` over a stacked 3-D view -- the NumPy analog of calling a
batched/strided GEMM (``dgemm_batch``) instead of ``N`` small GEMMs.

A :class:`BlockGemm` wraps the :class:`SmallGemm` microkernel it
amortizes: the cost model (FLOPs, traffic) is exactly the microkernel's
scaled by the stacked-slice count, so plans and the machine model keep
seeing the same work, just issued from fewer call sites.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gemm.smallgemm import SmallGemm
from repro.machine.isa import FlopCounts, TrafficCounts

__all__ = ["BlockGemm"]


@dataclass(frozen=True)
class BlockGemm:
    """``blocks`` stacked executions of one :class:`SmallGemm` shape.

    Two stacking forms cover the STP contractions:

    * shared A (:meth:`__call__`): ``C[i] (+)= A @ B[i]`` -- the
      operator matrix multiplies every slice (all non-unit-stride
      derivative axes).
    * shared B (:meth:`stacked_a`): ``C[i] (+)= A[i] @ B`` -- every
      slice multiplies the (transposed) operator from the right (the
      AoSoA unit-stride x-derivative, Sec. V-B case 1).
    """

    gemm: SmallGemm
    blocks: int

    def __post_init__(self) -> None:
        if self.blocks < 1:
            raise ValueError("blocks must be >= 1")

    # -- cost model (the microkernel's, amortized) -----------------------

    @property
    def shape_key(self) -> tuple:
        """Hashable identity: microkernel shape plus block count."""
        return (*self.gemm.shape_key, self.blocks)

    def flop_counts(self) -> FlopCounts:
        """FLOPs of all blocks (microkernel counts times blocks)."""
        return self.gemm.flop_counts().scaled(self.blocks)

    def traffic(self) -> TrafficCounts:
        """Bytes moved by all blocks (microkernel traffic times blocks)."""
        t = self.gemm.traffic()
        return TrafficCounts(t.read_bytes * self.blocks, t.write_bytes * self.blocks)

    # -- execution ----------------------------------------------------------

    def _check(self, stack: np.ndarray, rows: int, cols: int, what: str) -> None:
        if stack.shape != (self.blocks, rows, cols):
            raise ValueError(
                f"{what} must be {(self.blocks, rows, cols)}, got {stack.shape}"
            )

    def _tmp_view(self, tmp: np.ndarray | None, shape: tuple) -> np.ndarray:
        """A contiguous scratch view for the accumulate form."""
        size = int(np.prod(shape))
        if tmp is None:
            return np.empty(shape)
        if not tmp.flags.c_contiguous or tmp.size < size:
            raise ValueError("tmp must be C-contiguous and large enough")
        return tmp.reshape(-1)[:size].reshape(shape)

    def __call__(
        self,
        a: np.ndarray,
        b_stack: np.ndarray,
        c_stack: np.ndarray,
        tmp: np.ndarray | None = None,
    ) -> None:
        """``C[i] (+)= A @ B[i]`` for all ``i`` in one broadcast matmul.

        ``tmp`` backs the accumulate form (``np.matmul`` cannot add into
        its output); pass a preallocated arena buffer to avoid a fresh
        allocation per call.
        """
        g = self.gemm
        if a.shape != (g.m, g.k):
            raise ValueError(f"A must be {(g.m, g.k)}, got {a.shape}")
        self._check(b_stack, g.k, g.n, "B stack")
        self._check(c_stack, g.m, g.n, "C stack")
        if g.accumulate:
            out = self._tmp_view(tmp, c_stack.shape)
            np.matmul(a, b_stack, out=out)
            c_stack += out
        else:
            np.matmul(a, b_stack, out=c_stack)

    def stacked_a(
        self,
        a_stack: np.ndarray,
        b: np.ndarray,
        c_stack: np.ndarray,
        tmp: np.ndarray | None = None,
    ) -> None:
        """``C[i] (+)= A[i] @ B`` for all ``i`` (transposed-GEMM form)."""
        g = self.gemm
        if b.shape != (g.k, g.n):
            raise ValueError(f"B must be {(g.k, g.n)}, got {b.shape}")
        self._check(a_stack, g.m, g.k, "A stack")
        self._check(c_stack, g.m, g.n, "C stack")
        out = self._tmp_view(tmp, c_stack.shape)
        np.matmul(a_stack, b, out=out)
        if g.accumulate:
            c_stack += out
        else:
            c_stack[...] = out

    def __repr__(self) -> str:
        return f"BlockGemm({self.gemm!r} x {self.blocks})"
