"""GEMM dispatch cache, mirroring LIBXSMM's kernel-handle reuse.

LIBXSMM JIT-compiles one microkernel per (shape, leading dimensions,
beta) combination and hands back a function pointer that callers cache.
:class:`GemmRegistry` plays that role here: kernel variants request
GEMMs through it, identical shapes share one :class:`SmallGemm`, and
the registry exposes how many distinct microkernels a variant needed --
a statistic the Kernel Generator uses when rendering code.
"""

from __future__ import annotations

from repro.gemm.blockgemm import BlockGemm
from repro.gemm.smallgemm import SmallGemm

__all__ = ["GemmRegistry"]


class GemmRegistry:
    """Cache of :class:`SmallGemm` microkernels keyed by dispatch shape."""

    def __init__(self, vector_doubles: int = 8):
        if vector_doubles not in (1, 2, 4, 8):
            raise ValueError("vector_doubles must be 1, 2, 4 or 8")
        self.vector_doubles = vector_doubles
        self._kernels: dict[tuple, SmallGemm] = {}
        self._block_kernels: dict[tuple, BlockGemm] = {}
        self.dispatch_count = 0

    def get(
        self,
        m: int,
        n: int,
        k: int,
        lda: int = -1,
        ldb: int = -1,
        ldc: int = -1,
        accumulate: bool = False,
    ) -> SmallGemm:
        """Return the microkernel for this shape, generating it on first use."""
        self.dispatch_count += 1
        probe = SmallGemm(
            m=m, n=n, k=k, lda=lda, ldb=ldb, ldc=ldc,
            accumulate=accumulate, vector_doubles=self.vector_doubles,
        )
        return self._kernels.setdefault(probe.shape_key, probe)

    def get_block(
        self,
        m: int,
        n: int,
        k: int,
        lda: int = -1,
        ldb: int = -1,
        ldc: int = -1,
        accumulate: bool = False,
        blocks: int = 1,
    ) -> BlockGemm:
        """Return a block-amortized kernel: one microkernel, ``blocks`` slices.

        The underlying :class:`SmallGemm` is dispatched through the
        regular cache (so kernel-count statistics stay meaningful); the
        :class:`BlockGemm` wrapper is cached per (shape, blocks) pair.
        """
        gemm = self.get(m, n, k, lda=lda, ldb=ldb, ldc=ldc, accumulate=accumulate)
        probe = BlockGemm(gemm, blocks)
        return self._block_kernels.setdefault(probe.shape_key, probe)

    @property
    def generated_kernels(self) -> list[SmallGemm]:
        """All distinct microkernels generated so far."""
        return list(self._kernels.values())

    def __len__(self) -> int:
        return len(self._kernels)

    @property
    def hit_rate(self) -> float:
        """Fraction of dispatches served from the cache."""
        if self.dispatch_count == 0:
            return 0.0
        return 1.0 - len(self._kernels) / self.dispatch_count
