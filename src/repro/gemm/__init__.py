"""LIBXSMM-like small-GEMM layer.

The paper's optimized kernels perform all tensor contractions as
batches of *small, fixed-shape* matrix multiplications dispatched to
LIBXSMM-generated assembly (Sec. III-B).  This package substitutes:

* :class:`repro.gemm.smallgemm.SmallGemm` -- a shape-specialized GEMM
  ``C (+)= A @ B`` with explicit leading dimensions (so tensor matrix
  slices can be multiplied in place, Fig. 3), a NumPy execution path,
  and an exact instruction/traffic cost model for the machine
  simulation.
* :class:`repro.gemm.registry.GemmRegistry` -- the dispatch cache that
  mirrors LIBXSMM's kernel-handle reuse; it also counts how many
  distinct microkernels a kernel variant needs.
* :class:`repro.gemm.blockgemm.BlockGemm` -- an element-block wrapper
  executing one microkernel shape over many stacked slices with a
  single broadcast matmul (the ``dgemm_batch`` analog used by the
  batched STP driver).
"""

from repro.gemm.blockgemm import BlockGemm
from repro.gemm.registry import GemmRegistry
from repro.gemm.smallgemm import SmallGemm

__all__ = ["SmallGemm", "GemmRegistry", "BlockGemm"]
