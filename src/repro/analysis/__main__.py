"""Command-line front end of the static-analysis layer.

Usage::

    PYTHONPATH=src python -m repro.analysis                  # all analyzers
    PYTHONPATH=src python -m repro.analysis --format json
    PYTHONPATH=src python -m repro.analysis --rules HP002,KA
    PYTHONPATH=src python -m repro.analysis --analyzers races
    PYTHONPATH=src python -m repro.analysis --no-baseline    # raw findings

Exit status is ``0`` when no *new* error findings remain after pragma
suppression and the checked-in baseline (``tools/analysis_baseline.json``
by default), ``1`` otherwise.  ``--rules help`` prints the catalog.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis import (
    ANALYZERS,
    ERROR,
    RULES,
    SOURCE_ROOT,
    apply_baseline,
    findings_to_json,
    format_findings,
    load_baseline,
    run_analysis,
)

#: default checked-in baseline location, relative to the repo root
DEFAULT_BASELINE = SOURCE_ROOT.parent.parent / "tools" / "analysis_baseline.json"


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for the test-suite)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument(
        "--analyzers",
        default=",".join(ANALYZERS),
        help=f"comma-separated subset of {', '.join(ANALYZERS)} (default: all)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="restrict to rule ids or prefixes (e.g. HP002,KA); "
        "'help' prints the catalog",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="report format (default: human)",
    )
    parser.add_argument(
        "--root",
        default=str(SOURCE_ROOT),
        help="tree the hot-path lint scans (default: src/repro)",
    )
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE),
        help="baseline JSON of accepted findings "
        "(default: tools/analysis_baseline.json)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline and report every finding",
    )
    return parser


def main(argv=None) -> int:
    """Run the CLI; returns the process exit status."""
    args = build_parser().parse_args(argv)
    if args.rules == "help":
        for rule in sorted(RULES):
            print(f"{rule}  {RULES[rule]}")
        return 0
    rules = None if args.rules is None else [
        r.strip() for r in args.rules.split(",") if r.strip()
    ]
    analyzers = tuple(
        a.strip() for a in args.analyzers.split(",") if a.strip()
    )
    findings, telemetry = run_analysis(
        analyzers=analyzers, rules=rules, root=args.root
    )
    stale: list[str] = []
    baseline_path = Path(args.baseline)
    if not args.no_baseline and baseline_path.exists():
        baseline = load_baseline(baseline_path)
        findings, stale = apply_baseline(findings, baseline)
    if args.format == "json":
        print(findings_to_json(findings, telemetry))
    else:
        print(format_findings(findings))
        for race in telemetry.get("races", []):
            print(
                f"telemetry: {race['plan']} redundant riemann faces = "
                f"{race['redundant_riemann_faces']}"
            )
        if stale:
            print(
                f"note: {len(stale)} stale baseline entr"
                f"{'y' if len(stale) == 1 else 'ies'} "
                "(re-run tools/check_analysis.py --write-baseline)"
            )
    errors = [f for f in findings if f.severity == ERROR]
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
