"""Static verification layer: prove invariants without running the solver.

The repo's correctness story so far is *dynamic* -- bitwise conformance
matrices, golden snapshots, fault-injection runs.  This package adds
the static half: three analyzers that check the structure those tests
exercise, sharing one rule/finding framework
(:mod:`repro.analysis.findings`):

* :mod:`repro.analysis.kernel_audit` -- parses every lowered kernel
  from :mod:`repro.codegen.lowering` and verifies the allocation-free,
  statically-bounded loop structure plus plan-header consistency
  (rules ``KA001-KA006``);
* :mod:`repro.analysis.race_prover` -- proves per-phase write
  disjointness of :class:`~repro.parallel.sharding.ShardPlan` access
  sets, certifies the async stepping mode's dependency graph and
  mailbox layout against an independent ground truth, and reports the
  redundant cross-shard Riemann set as telemetry (rules
  ``RP001-RP006``);
* :mod:`repro.analysis.hotpath` -- lints ``src/repro`` for per-step
  allocations, unjustified broad excepts and mutable defaults (rules
  ``HP001-HP003``).

Run it as ``python -m repro.analysis`` (see :mod:`repro.analysis.
__main__`) or through the CI gate ``tools/check_analysis.py``; the
rule catalog, pragma syntax and baseline workflow are documented in
``docs/analysis.md``.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.findings import (
    ERROR,
    RULES,
    WARNING,
    Finding,
    apply_baseline,
    findings_to_json,
    format_findings,
    load_baseline,
    write_baseline,
)
from repro.analysis.hotpath import HOT_PATTERNS, lint_source, lint_tree
from repro.analysis.kernel_audit import (
    audit_generated_kernels,
    audit_kernel_source,
    default_kernel_corpus,
)
from repro.analysis.race_prover import (
    PhaseAccess,
    RaceReport,
    async_phase_accesses,
    prove_async_schedule,
    prove_shard_plan,
    shard_plan_accesses,
)

__all__ = [
    "Finding",
    "RULES",
    "ERROR",
    "WARNING",
    "format_findings",
    "findings_to_json",
    "load_baseline",
    "apply_baseline",
    "write_baseline",
    "audit_kernel_source",
    "audit_generated_kernels",
    "default_kernel_corpus",
    "prove_shard_plan",
    "shard_plan_accesses",
    "prove_async_schedule",
    "async_phase_accesses",
    "PhaseAccess",
    "RaceReport",
    "lint_source",
    "lint_tree",
    "HOT_PATTERNS",
    "ANALYZERS",
    "default_shard_plans",
    "run_analysis",
]

#: analyzer names accepted by :func:`run_analysis` / the CLI
ANALYZERS = ("kernels", "races", "hotpaths")

#: default ``src/repro`` root the hot-path lint scans
SOURCE_ROOT = Path(__file__).resolve().parent.parent


def default_shard_plans() -> list:
    """The shard plans the repo-wide race proof covers.

    Mirrors every ``(grid shape, worker count)`` combination the
    ``tests/parallel/`` suite runs the sharded solver with, so a green
    analysis run certifies exactly the configurations the dynamic
    conformance tests exercise.
    """
    from repro.mesh.grid import UniformGrid
    from repro.parallel.sharding import make_shard_plan

    combos = [
        ((2, 1, 1), (2,)),
        ((3, 3, 3), (1, 2, 3, 4, 8)),
        ((9, 9, 9), (8, 28)),
    ]
    plans = []
    for shape, worker_counts in combos:
        grid = UniformGrid(shape, extent=tuple(float(n) for n in shape))
        for workers in worker_counts:
            plans.append(make_shard_plan(grid, workers))
    return plans


def run_analysis(
    analyzers=ANALYZERS,
    rules=None,
    root: str | Path = SOURCE_ROOT,
    orders=(2, 3),
) -> tuple[list[Finding], dict]:
    """Run the selected analyzers over the repo; returns (findings, telemetry).

    ``analyzers`` selects from :data:`ANALYZERS`; ``rules`` optionally
    restricts findings to the given rule ids (exact ids like
    ``"HP002"`` or family prefixes like ``"KA"``).  Baseline handling
    is the caller's business (:func:`apply_baseline`) -- this function
    reports everything it sees.
    """
    unknown = [a for a in analyzers if a not in ANALYZERS]
    if unknown:
        raise ValueError(
            f"unknown analyzers {unknown!r}; available: {sorted(ANALYZERS)}"
        )
    findings: list[Finding] = []
    telemetry: dict = {}
    if "kernels" in analyzers:
        kernel_findings = audit_generated_kernels(orders=orders)
        findings.extend(kernel_findings)
        telemetry["kernels"] = {
            "audited": len(default_kernel_corpus(orders)),
            "findings": len(kernel_findings),
        }
    if "races" in analyzers:
        race_telemetry = []
        for plan in default_shard_plans():
            shape = "x".join(str(n) for n in plan.grid.shape)
            label = f"shard_plan:{shape}/w{plan.num_shards}"
            report = prove_shard_plan(plan, location=label)
            findings.extend(report.findings)
            # also certify the async schedule the pool would run on
            # this plan (dependency graph + mailbox layout, RP005/6)
            areport = prove_async_schedule(
                plan, location=f"async_schedule:{shape}/w{plan.num_shards}"
            )
            findings.extend(areport.findings)
            race_telemetry.append(
                {"plan": label, **report.telemetry, "async": areport.telemetry}
            )
        telemetry["races"] = race_telemetry
    if "hotpaths" in analyzers:
        lint_findings = lint_tree(root)
        findings.extend(lint_findings)
        telemetry["hotpaths"] = {
            "root": str(root),
            "findings": len(lint_findings),
        }
    if rules:
        selected = tuple(rules)
        findings = [
            f
            for f in findings
            if f.rule in selected
            or any(f.rule.startswith(r) for r in selected)
        ]
    return findings, telemetry
