"""Shard-plan race prover (rules ``RP001-RP004``).

The sharded solver's determinism argument (``docs/parallel.md``) rests
on a *data-access* claim, not on locks: per phase, every shared-memory
element is written by exactly one worker, cross-worker reads only touch
data published before the phase barrier, and the two state buffers
alternate roles so a phase never reads the array it writes.  Until now
that claim was enforced empirically (bitwise-vs-serial conformance
runs); this module *proves* it per :class:`~repro.parallel.sharding.
ShardPlan`, the way Charrier & Weinzierl derive safety for their
communication-avoiding ADER-DG from per-cell access disjointness.

The model mirrors ``repro.parallel.worker`` exactly:

* **predict** -- worker ``w`` reads ``states_in[own_w]`` and writes
  ``qface[own_w]``; a barrier follows.
* **correct** -- ``w`` reads ``states_in`` and ``qface`` on
  ``own_w ∪ halo_w`` (the halo comes from the shard's face planes,
  built with the same :func:`~repro.engine.facesweep.direction_faces`
  connectivity the worker uses) and writes ``states_out[own_w]``;
  ``states_in``/``states_out`` are the double-buffered segment pair of
  :class:`~repro.parallel.shm.SharedArrayBundle`.

Checks:

* ``RP001`` -- per phase and array, worker write-sets are pairwise
  disjoint (a hard error: two owners of one element);
* ``RP002`` -- no worker reads an array that another worker writes in
  the same phase (the barrier discipline);
* ``RP003`` -- each phase's writes cover every element exactly once
  (with RP001, "exactly once" splits into disjointness + coverage);
* ``RP004`` -- every halo read of ``qface`` in the correct phase was
  published by some worker's predict phase.

The prover also reports the **redundant cross-shard Riemann set** --
the faces both adjacent shards solve from identical shared inputs --
as telemetry for the barrier-free stepping mode, where those
recomputations become exchanged face traces.

For that mode (``stepping="async"``, ``docs/stepping.md``) the module
additionally proves the *schedule* safe (rules ``RP005-RP006``): the
:class:`~repro.parallel.stepping.ShardDependencyGraph` the pool
dispatches from is checked against an independently recomputed ground
truth -- every owner-adjacent shard pair must be a dependency edge
(``RP005``: a missing edge lets a riemann phase read an unpublished
neighbor trace), and the mailbox layout must assign exactly one slot
per cut face with the correct exporter/importer (``RP006``: a wrong
slot means a flux lands in, or is read from, the wrong place).
:func:`async_phase_accesses` exposes the async three-phase access
model (predict / riemann / finish, mailbox included) in the same
:class:`PhaseAccess` form the barrier model uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.findings import ERROR, Finding

__all__ = [
    "PhaseAccess",
    "RaceReport",
    "shard_plan_accesses",
    "prove_shard_plan",
    "async_phase_accesses",
    "prove_async_schedule",
]


@dataclass(frozen=True)
class PhaseAccess:
    """The element sets one worker touches in one phase of one array."""

    phase: str
    worker: int
    array: str
    reads: np.ndarray
    writes: np.ndarray


@dataclass
class RaceReport:
    """Outcome of proving one shard plan: findings plus telemetry.

    ``telemetry`` carries the communication picture even when the proof
    succeeds: the redundant cross-shard Riemann face count (each such
    face is solved by both owning shards), the plan's cut-face count
    for cross-checking, and the per-phase arrays proven disjoint.
    """

    plan: object
    findings: list[Finding] = field(default_factory=list)
    telemetry: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether the plan is race-free (no error findings)."""
        return not any(f.severity == ERROR for f in self.findings)


def _sample(ids: np.ndarray, limit: int = 8) -> str:
    """Short printable sample of an element-id array."""
    shown = ", ".join(str(int(e)) for e in ids[:limit])
    more = "" if ids.size <= limit else f", ... ({ids.size} total)"
    return f"[{shown}{more}]"


def _halo_elements(grid, own: np.ndarray) -> np.ndarray:
    """Elements a shard's face planes read that it does not own.

    Built from the same :func:`~repro.engine.facesweep.direction_faces`
    connectivity the worker's :class:`~repro.engine.facesweep.FaceSweep`
    uses, so the modeled read set is the executed read set.
    """
    from repro.engine.facesweep import direction_faces

    touched: list[np.ndarray] = []
    for d in range(3):
        df = direction_faces(grid, d, own)
        touched.append(df.left[df.interior_left])
        touched.append(df.right[df.interior_right])
    all_touched = np.unique(np.concatenate(touched))
    return np.setdiff1d(all_touched, own, assume_unique=True)


def shard_plan_accesses(plan) -> list[PhaseAccess]:
    """The per-phase access model of every worker in ``plan``.

    Derived from ``plan.shards`` directly (not the ``owner`` map, which
    a malformed plan may contradict) plus the face-plane halo of each
    shard; see the module docstring for the phase structure.
    """
    accesses: list[PhaseAccess] = []
    empty = np.empty(0, dtype=np.int64)
    for w, shard in enumerate(plan.shards):
        own = np.unique(np.asarray(shard, dtype=np.int64))
        halo = _halo_elements(plan.grid, own)
        own_and_halo = np.union1d(own, halo)
        accesses.append(PhaseAccess("predict", w, "states_in", own, empty))
        accesses.append(PhaseAccess("predict", w, "qface", empty, own))
        accesses.append(
            PhaseAccess("correct", w, "states_in", own_and_halo, empty)
        )
        accesses.append(PhaseAccess("correct", w, "qface", own_and_halo, empty))
        accesses.append(PhaseAccess("correct", w, "states_out", empty, own))
    return accesses


def _redundant_riemann_faces(plan) -> int:
    """Faces solved by more than one shard (the cross-shard recompute set).

    Every interior face whose two elements live in different shards
    appears in both shards' face planes and is Riemann-solved twice
    from identical shared inputs -- the communication-avoiding trade.
    Equals ``plan.cut_faces()`` for well-formed plans, but is computed
    from the shards directly so it stays meaningful on synthetic plans.
    """
    owner = {}
    for w, shard in enumerate(plan.shards):
        for e in np.asarray(shard).ravel():
            owner.setdefault(int(e), w)
    from repro.mesh.grid import BOUNDARY

    redundant = 0
    grid = plan.grid
    for e in range(grid.n_elements):
        for d in range(3):
            neighbor = grid.neighbor(e, d, 1)
            if neighbor == BOUNDARY:
                continue
            if owner.get(e) is not None and owner.get(int(neighbor)) is not None \
                    and owner[e] != owner[int(neighbor)]:
                redundant += 1
    return redundant


def prove_shard_plan(plan, location: str = "shard_plan") -> RaceReport:
    """Prove (or refute) per-phase write disjointness of ``plan``.

    Returns a :class:`RaceReport`; ``report.ok`` is the proof verdict
    and ``report.findings`` name every violated rule with the offending
    workers and a sample of the contested element ids.  Overlapping
    writes (``RP001``) are hard errors -- the sharded solver must never
    run such a plan.
    """
    report = RaceReport(plan=plan)
    n_elements = plan.grid.n_elements
    accesses = shard_plan_accesses(plan)
    phases = sorted({a.phase for a in accesses})
    arrays = sorted({a.array for a in accesses})

    def flag(rule: str, message: str, context: str, hint: str) -> None:
        report.findings.append(
            Finding(rule, ERROR, location, 0, message, context, hint)
        )

    proven: list[str] = []
    for phase in phases:
        for array in arrays:
            group = [a for a in accesses if a.phase == phase and a.array == array]
            write_count = np.zeros(n_elements, dtype=np.int64)
            read_count = np.zeros(n_elements, dtype=np.int64)
            writers = np.full(n_elements, -1, dtype=np.int64)
            for a in group:
                if a.writes.size:
                    write_count[a.writes] += 1
                    writers[a.writes] = a.worker
                if a.reads.size:
                    read_count[a.reads] += 1
            total_writes = int(write_count.sum())
            if total_writes == 0:
                continue
            context = f"{phase}/{array}"
            overlap = np.nonzero(write_count > 1)[0]
            if overlap.size:
                flag(
                    "RP001",
                    f"{overlap.size} element(s) written by multiple workers "
                    f"in {context}: {_sample(overlap)}",
                    context,
                    "shards must partition the element set",
                )
            uncovered = np.nonzero(write_count == 0)[0]
            if uncovered.size:
                flag(
                    "RP003",
                    f"{uncovered.size} element(s) never written in "
                    f"{context}: {_sample(uncovered)}",
                    context,
                    "every element needs exactly one owner per phase",
                )
            # RP002: a read by worker A of an element worker B != A
            # writes in the same phase crosses the barrier discipline
            conflict_ids = []
            for a in group:
                if not a.reads.size:
                    continue
                hit = a.reads[
                    (writers[a.reads] >= 0) & (writers[a.reads] != a.worker)
                ]
                if hit.size:
                    conflict_ids.append(hit)
            if conflict_ids:
                conflicts = np.unique(np.concatenate(conflict_ids))
                flag(
                    "RP002",
                    f"cross-worker read/write overlap on {conflicts.size} "
                    f"element(s) in {context}: {_sample(conflicts)}",
                    context,
                    "reads of another worker's output belong after the "
                    "phase barrier (double-buffer discipline)",
                )
            if not overlap.size and not uncovered.size and not conflict_ids:
                proven.append(context)

    # RP004: halo qface reads in `correct` must be covered by predict
    # writes -- the traces a worker consumes were published before the
    # barrier it just crossed
    published = np.zeros(n_elements, dtype=bool)
    for a in accesses:
        if a.phase == "predict" and a.array == "qface" and a.writes.size:
            published[a.writes] = True
    for a in accesses:
        if a.phase == "correct" and a.array == "qface" and a.reads.size:
            missing = a.reads[~published[a.reads]]
            if missing.size:
                flag(
                    "RP004",
                    f"worker {a.worker} reads unpublished face traces of "
                    f"{missing.size} element(s): {_sample(missing)}",
                    "correct/qface",
                    "every halo element needs a predict-phase owner",
                )

    redundant = _redundant_riemann_faces(plan)
    report.telemetry = {
        "num_shards": plan.num_shards,
        "elements": int(n_elements),
        "redundant_riemann_faces": redundant,
        "redundant_riemann_solves": redundant,
        "phases_proven_disjoint": proven,
    }
    return report


# ---------------------------------------------------------------------------
# async (barrier-free) schedule proving -- RP005 / RP006
# ---------------------------------------------------------------------------


def async_phase_accesses(plan, graph) -> list[PhaseAccess]:
    """The three-phase access model of the async stepping mode.

    Mirrors the worker's ``predict -> riemann -> finish`` split
    (:mod:`repro.parallel.worker`): riemann reads the own+halo ``qface``
    traces and writes this shard's exported mailbox slots; finish reads
    the imported slots and writes the owned ``states_out`` elements.
    Mailbox slot ids play the role of element ids in the ``mailbox``
    array.  Per-slot write disjointness holds by construction (each
    slot has exactly one exporter), so the interesting proof is
    :func:`prove_async_schedule`'s graph-vs-ground-truth check.
    """
    accesses: list[PhaseAccess] = []
    empty = np.empty(0, dtype=np.int64)
    slots = np.arange(graph.n_slots, dtype=np.int64)
    for w, shard in enumerate(plan.shards):
        own = np.unique(np.asarray(shard, dtype=np.int64))
        halo = _halo_elements(plan.grid, own)
        own_and_halo = np.union1d(own, halo)
        accesses.append(PhaseAccess("predict", w, "states_in", own, empty))
        accesses.append(PhaseAccess("predict", w, "qface", empty, own))
        accesses.append(
            PhaseAccess("riemann", w, "states_in", own_and_halo, empty)
        )
        accesses.append(PhaseAccess("riemann", w, "qface", own_and_halo, empty))
        accesses.append(
            PhaseAccess("riemann", w, "mailbox", empty, slots[graph.exporter == w])
        )
        accesses.append(
            PhaseAccess("finish", w, "mailbox", slots[graph.importer == w], empty)
        )
        accesses.append(PhaseAccess("finish", w, "states_out", empty, own))
    return accesses


def prove_async_schedule(
    plan, graph=None, location: str = "async_schedule"
) -> RaceReport:
    """Prove (or refute) an async dependency graph against ``plan``.

    The ground truth is recomputed here independently of
    :func:`~repro.parallel.stepping.build_dependency_graph`: the owner
    map comes from ``plan.shards`` directly and the cut faces from a
    fresh :func:`~repro.engine.facesweep.direction_faces` enumeration.
    ``graph`` defaults to the graph the pool itself would build, so
    calling with one argument certifies the production schedule.

    * ``RP005`` -- a shard pair sharing a cut face is missing from
      ``neighbors`` (the riemann dispatch would not wait for that
      neighbor's predict), or the flux importer is missing its
      exporter in ``providers`` (the finish dispatch would not wait
      for the flux to be published).
    * ``RP006`` -- mailbox layout inconsistency: a cut face without a
      slot, a slot on a non-cut face, a wrong exporter/importer, or a
      slot assigned to several faces.
    """
    from repro.engine.facesweep import direction_faces

    if graph is None:
        from repro.parallel.stepping import build_dependency_graph

        graph = build_dependency_graph(plan)
    report = RaceReport(plan=plan)

    def flag(rule: str, message: str, context: str, hint: str) -> None:
        report.findings.append(
            Finding(rule, ERROR, location, 0, message, context, hint)
        )

    grid = plan.grid
    owner = np.full(grid.n_elements, -1, dtype=np.int64)
    for w, shard in enumerate(plan.shards):
        owner[np.asarray(shard, dtype=np.int64).ravel()] = w

    n_slots = graph.n_slots
    used = np.zeros(max(1, n_slots), dtype=np.int64)
    cut_faces = 0
    missing_edges: set[tuple[int, int]] = set()
    missing_providers: set[tuple[int, int]] = set()
    slotless: list[tuple[int, int]] = []
    wrong_ends: list[int] = []
    stray: list[tuple[int, int]] = []
    for d in range(3):
        df = direction_faces(grid, d)
        both = np.nonzero((df.left >= 0) & (df.right >= 0))[0]
        for row in both:
            left, right = int(df.left[row]), int(df.right[row])
            src, dst = int(owner[left]), int(owner[right])
            slot = int(graph.slot_of[d, left])
            if src < 0 or dst < 0 or src == dst:
                if slot >= 0:
                    stray.append((d, left))
                continue
            cut_faces += 1
            if dst not in graph.neighbors[src] or src not in graph.neighbors[dst]:
                missing_edges.add((min(src, dst), max(src, dst)))
            if src not in graph.providers[dst]:
                missing_providers.add((src, dst))
            if slot < 0 or slot >= n_slots:
                slotless.append((d, left))
            else:
                used[slot] += 1
                if (
                    int(graph.exporter[slot]) != src
                    or int(graph.importer[slot]) != dst
                ):
                    wrong_ends.append(slot)

    if missing_edges:
        pairs = sorted(missing_edges)
        flag(
            "RP005",
            f"{len(pairs)} owner-adjacent shard pair(s) missing from the "
            f"dependency graph: {pairs[:8]}",
            "neighbors",
            "a riemann phase would read a neighbor trace whose predict "
            "the scheduler never waited for",
        )
    if missing_providers:
        pairs = sorted(missing_providers)
        flag(
            "RP005",
            f"{len(pairs)} flux provider edge(s) missing: "
            f"{pairs[:8]} (exporter, importer)",
            "providers",
            "a finish phase would import a mailbox flux before its "
            "exporter published it",
        )
    if slotless:
        flag(
            "RP006",
            f"{len(slotless)} cut face(s) have no mailbox slot: "
            f"{slotless[:8]} (direction, left element)",
            "slot_of",
            "the importer would keep a stale flux for these faces",
        )
    if stray:
        flag(
            "RP006",
            f"{len(stray)} mailbox slot(s) assigned to non-cut faces: "
            f"{stray[:8]} (direction, left element)",
            "slot_of",
            "only faces crossing a shard boundary are exchanged",
        )
    if wrong_ends:
        flag(
            "RP006",
            f"{len(wrong_ends)} slot(s) with wrong exporter/importer: "
            f"{sorted(set(wrong_ends))[:8]}",
            "exporter/importer",
            "the slot's exporter must own the face's left element and "
            "the importer its right element",
        )
    duplicates = np.nonzero(used > 1)[0]
    if duplicates.size:
        flag(
            "RP006",
            f"{duplicates.size} mailbox slot(s) shared by several faces: "
            f"{_sample(duplicates)}",
            "slot_of",
            "two faces writing one slot lose one flux",
        )
    if n_slots != cut_faces:
        flag(
            "RP006",
            f"mailbox has {n_slots} slot(s) but the plan has "
            f"{cut_faces} cut face(s)",
            "slot_of",
            "slots and cut faces must correspond one-to-one",
        )

    report.telemetry = {
        **graph.stats(),
        "cut_faces": int(cut_faces),
        "schedule_proven": report.ok,
    }
    return report
