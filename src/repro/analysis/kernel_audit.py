"""Static auditor of the lowered kernel sources (rules ``KA001-KA007``).

:mod:`repro.codegen.lowering` emits executable Python whose whole value
is what it *doesn't* do: no allocation inside loop nests, no dynamic
attribute chasing, loop bounds fixed by the ``(N, M, NVAR)`` module
constants, and a comment header that restates the
:class:`~repro.codegen.plan.KernelPlan` it was lowered from.  Those
invariants are what lets Numba compile every function to allocation-free
native loops (paper Sec. IV-V) -- but nothing *checked* them until now:
a template edit that slipped an ``np.zeros`` into a loop body or drifted
the header away from the plan would only surface as a slow or subtly
wrong compiled backend.

This auditor parses each generated module with :mod:`ast` and verifies
the invariants directly on the source, with the plan (when provided) as
the ground truth for the header:

* ``KA001`` -- allocation calls (``np.zeros/empty/ones/full/
  concatenate/stack/array``) inside any loop body;
* ``KA002`` -- attribute access inside loop bodies beyond the
  whitelisted ``.reshape``/``.shape``/``np.sqrt`` trio;
* ``KA003`` -- a ``for`` loop not of the form ``for i in range(...)``
  with bounds built from integer constants, the module constants
  ``N/M/NVAR``, simple local names, or ``x.shape[k]``;
* ``KA004`` -- a constant quantity subscript ``q[k, c]``/``f[k, c]``
  outside ``[0, M)`` in the PDE user functions;
* ``KA005`` -- header/plan inconsistency: variant family, gemm
  schedule, temp footprint, the ``N/M/NVAR`` constants and the
  docstring's ``pde=`` field against :func:`repro.codegen.lowering.
  pde_token`;
* ``KA006`` -- a call outside the per-function whitelist (helpers call
  nothing, STP entry points call only helpers/flux/contract, the
  direction-``d`` Riemann kernel calls only ``flux_d{d}`` and
  ``wave_speed``; the face-exchange kernels are leaves, the fused-step
  drivers compose exactly their declared sub-phases);
* ``KA007`` -- fused-module header drift: a ``fused=step`` module must
  carry ``# fused phase gemm schedule`` / ``# fused phase temp
  footprint`` lines identical to the constituent phase plan's schedule
  and footprint (the fused program must not silently change the
  blocking the phase plans were audited against).
"""

from __future__ import annotations

import ast
import re

from repro.analysis.findings import ERROR, Finding, filter_pragmas

__all__ = [
    "audit_kernel_source",
    "audit_generated_kernels",
    "default_kernel_corpus",
]

#: call names that allocate (rule KA001) when seen inside a loop body
_ALLOCATORS = {
    "zeros", "empty", "ones", "full", "zeros_like", "empty_like",
    "ones_like", "full_like", "array", "concatenate", "stack", "copy",
}

#: attribute names a generated loop body may touch (rule KA002):
#: ``.reshape`` / ``.shape`` are free views, ``np.sqrt`` is the scalar
#: intrinsic the curvilinear wave-speed template emits
_ATTR_WHITELIST = {"reshape", "shape", "sqrt"}

#: names usable in loop bounds besides int constants and ``x.shape[k]``
#: (``bsz``/``nel``/``k1`` are the fused families' block size, element
#: count and Riemann solve-prefix length -- runtime-constant arguments)
_BOUND_NAMES = {"N", "M", "NVAR", "b", "o", "nderiv", "bsz", "nel", "k1"}

#: builtins / free view methods any generated function may call
#: (``.reshape`` is allocation-free on contiguous inputs; the attribute
#: rule KA002 already polices everything else)
_COMMON_CALLS = {"range", "abs", "max", "min", "reshape"}

#: regexes for the three plan-header comment lines ``lower_plan`` emits
_HDR_VARIANT = re.compile(r"^# lowered from plan: variant=(\S+)$")
_HDR_GEMM = re.compile(r"^# gemm schedule: (.+)$")
_HDR_TEMP = re.compile(r"^# temp footprint: (\d+) bytes$")
#: the three extra header lines of a ``fused=step`` module (rule KA007)
_HDR_FUSED_PHASES = re.compile(r"^# fused phases: (.+)$")
_HDR_FUSED_GEMM = re.compile(r"^# fused phase gemm schedule: (.+)$")
_HDR_FUSED_TEMP = re.compile(r"^# fused phase temp footprint: (\d+) bytes$")
_DOCSTRING = re.compile(
    r"family=(\w+), pde=(\w+), N=(\d+), M=(\d+)"
)


def _call_whitelists(family: str) -> dict[str, set[str]]:
    """Per-function callable whitelist of one loop family (rule KA006)."""
    helpers = {"_fill", "_copy", "_axpy", "_set_params", "_scale_params"}
    flux = {f"flux_d{d}" for d in range(3)}
    contract = {f"contract_d{d}" for d in range(3)}
    table: dict[str, set[str]] = {}
    for name in helpers:
        table[name] = set()
    for name in flux | {"wave_speed"}:
        table[name] = {"sqrt"}
    for name in contract:
        table[name] = set()
    table[f"stp_{family}"] = helpers | flux | contract
    for d in range(3):
        table[f"riemann_rusanov_d{d}"] = {f"flux_d{d}", "wave_speed"}
    table["corrector_apply"] = set()
    # face-exchange family: packing/scatter kernels are leaves; the
    # per-direction driver composes gather -> ghost fill -> material
    # embed -> pointwise Riemann
    for name in ("face_gather", "face_ghost", "face_embed",
                 "face_project", "mailbox_export", "mailbox_import"):
        table[name] = set()
    for d in range(3):
        table[f"riemann_dir_d{d}"] = {
            "face_gather", "face_ghost", "face_embed",
            f"riemann_rusanov_d{d}",
        }
    # fused-step family: each driver calls exactly its sub-phases
    riemann_dirs = {f"riemann_dir_d{d}" for d in range(3)}
    table["fused_predict"] = {
        "_copy", "_fill", f"stp_{family}", "face_project",
    }
    table["fused_correct"] = {"_copy", "corrector_apply"} | flux
    table["fused_step"] = {"fused_predict", "fused_correct"} | riemann_dirs
    table["fused_riemann_export"] = {"mailbox_export"} | riemann_dirs
    return table


def _called_name(call: ast.Call) -> str | None:
    """The bare / attribute name a call targets (``np.sqrt`` -> ``sqrt``)."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_valid_bound(node: ast.expr) -> bool:
    """Whether a ``range`` argument is statically shaped (rule KA003)."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, int)
    if isinstance(node, ast.Name):
        return node.id in _BOUND_NAMES
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.Add, ast.Sub, ast.Mult)
    ):
        return _is_valid_bound(node.left) and _is_valid_bound(node.right)
    if (
        isinstance(node, ast.Subscript)
        and isinstance(node.value, ast.Attribute)
        and node.value.attr == "shape"
        and isinstance(node.slice, ast.Constant)
    ):
        return True
    return False


def _parse_header(source: str) -> dict:
    """Extract the plan-header comments and docstring fields of a module."""
    info: dict = {}
    for line in source.splitlines()[:8]:
        for key, rx in (
            ("variant", _HDR_VARIANT),
            ("gemms", _HDR_GEMM),
            ("temp_bytes", _HDR_TEMP),
            ("fused_phases", _HDR_FUSED_PHASES),
            ("fused_gemms", _HDR_FUSED_GEMM),
            ("fused_temp_bytes", _HDR_FUSED_TEMP),
        ):
            match = rx.match(line)
            if match:
                info[key] = match.group(1)
    first = source.splitlines()[0]
    match = _DOCSTRING.search(first)
    if match:
        info["family"] = match.group(1)
        info["pde"] = match.group(2)
        info["doc_n"] = int(match.group(3))
        info["doc_m"] = int(match.group(4))
    info["fused"] = ", fused=step" in first
    return info


class _KernelVisitor(ast.NodeVisitor):
    """One pass over a generated module collecting KA001-KA004/KA006."""

    def __init__(self, location: str, module_m: int | None, family: str):
        self.location = location
        self.module_m = module_m
        self.whitelists = _call_whitelists(family)
        self.findings: list[Finding] = []
        self._func = ""
        self._loop_depth = 0

    def _flag(self, rule: str, node: ast.AST, message: str, hint: str) -> None:
        self.findings.append(
            Finding(
                rule=rule,
                severity=ERROR,
                location=self.location,
                line=getattr(node, "lineno", 0),
                message=message,
                context=self._func,
                fix_hint=hint,
            )
        )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        outer, self._func = self._func, node.name
        self.generic_visit(node)
        self._func = outer

    def visit_For(self, node: ast.For) -> None:
        iterator = node.iter
        ok = (
            isinstance(iterator, ast.Call)
            and isinstance(iterator.func, ast.Name)
            and iterator.func.id == "range"
            and all(_is_valid_bound(arg) for arg in iterator.args)
        )
        if not ok:
            self._flag(
                "KA003",
                node,
                f"loop in {self._func} not bounded by N/M/NVAR or a shape",
                "generated loops must be `for i in range(<static bound>)`",
            )
        # the range() call itself belongs to the loop header, not the
        # body -- visit bounds outside the loop-depth bump
        self.visit(node.target)
        self.visit(iterator)
        self._loop_depth += 1
        for stmt in node.body:
            self.visit(stmt)
        self._loop_depth -= 1
        for stmt in node.orelse:
            self.visit(stmt)

    def visit_Call(self, node: ast.Call) -> None:
        name = _called_name(node)
        if self._loop_depth > 0 and name in _ALLOCATORS:
            self._flag(
                "KA001",
                node,
                f"allocation `{name}` inside a loop body of {self._func}",
                "hoist the buffer to a caller-owned argument",
            )
        if (
            self._func
            and name is not None
            and name not in _COMMON_CALLS
            and self._func in self.whitelists
            and name not in self.whitelists[self._func]
        ):
            self._flag(
                "KA006",
                node,
                f"{self._func} calls `{name}`, outside its family whitelist",
                "generated kernels may only call their declared helpers",
            )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self._loop_depth > 0 and node.attr not in _ATTR_WHITELIST:
            self._flag(
                "KA002",
                node,
                f"attribute `.{node.attr}` inside a loop body of {self._func}",
                "only .reshape/.shape views and np.sqrt are loop-safe",
            )
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        # KA004: `q[k, c]` / `f[k, c]` constant quantity subscripts in
        # the PDE user functions must stay inside the declared [0, M)
        if (
            self.module_m is not None
            and (self._func.startswith("flux_d") or self._func == "wave_speed")
            and isinstance(node.value, ast.Name)
            and node.value.id in ("q", "f")
            and isinstance(node.slice, ast.Tuple)
            and len(node.slice.elts) == 2
            and isinstance(node.slice.elts[1], ast.Constant)
            and isinstance(node.slice.elts[1].value, int)
        ):
            index = node.slice.elts[1].value
            if not 0 <= index < self.module_m:
                self._flag(
                    "KA004",
                    node,
                    f"{self._func} subscripts quantity {index} but M="
                    f"{self.module_m}",
                    "the quantity axis has exactly M slots",
                )
        self.generic_visit(node)


def _audit_header(
    source: str, tree: ast.Module, location: str, plan=None, pde=None
) -> list[Finding]:
    """Check the plan header / module constants / docstring (KA005)."""
    from repro.codegen.lowering import FAMILY_OF_VARIANT, pde_token

    findings: list[Finding] = []

    def flag(message: str, hint: str) -> None:
        findings.append(
            Finding("KA005", ERROR, location, 1, message, "header", hint)
        )

    info = _parse_header(source)
    constants = {
        node.targets[0].id: node.value.value
        for node in tree.body
        if isinstance(node, ast.Assign)
        and len(node.targets) == 1
        and isinstance(node.targets[0], ast.Name)
        and isinstance(node.value, ast.Constant)
    }
    if "family" not in info:
        flag("module docstring lacks the family/pde/N/M summary",
             "regenerate via lower_plan")
        return findings
    for name in ("N", "M", "NVAR"):
        if name not in constants:
            flag(f"module constant {name} missing",
                 "regenerate via lower_plan")
            return findings
    if constants["N"] != info["doc_n"] or constants["M"] != info["doc_m"]:
        flag(
            f"constants N={constants['N']}, M={constants['M']} disagree with "
            f"docstring N={info['doc_n']}, M={info['doc_m']}",
            "docstring and constants are emitted from the same spec",
        )
    if info.get("variant") is not None:
        family = FAMILY_OF_VARIANT.get(info["variant"])
        if family != info["family"]:
            flag(
                f"header variant {info['variant']!r} lowers to family "
                f"{family!r}, docstring says {info['family']!r}",
                "variant and family must agree via FAMILY_OF_VARIANT",
            )
    stp_defs = {
        node.name
        for node in tree.body
        if isinstance(node, ast.FunctionDef) and node.name.startswith("stp_")
    }
    if stp_defs != {f"stp_{info['family']}"}:
        flag(
            f"family {info['family']} module defines STP entry points "
            f"{sorted(stp_defs)}",
            "exactly one family loop per module",
        )
    if plan is not None:
        gemms = ", ".join(
            f"{mm}x{nn}x{kk}x{batch}"
            for mm, nn, kk, batch in plan.gemm_shapes()
        ) or "none"
        if info.get("gemms") != gemms:
            flag(
                f"header gemm schedule {info.get('gemms')!r} != plan "
                f"schedule {gemms!r}",
                "re-lower the plan; the header is part of the contract",
            )
        if info.get("temp_bytes") is None or int(
            info["temp_bytes"]
        ) != plan.temp_footprint_bytes:
            flag(
                f"header temp footprint {info.get('temp_bytes')!r} != plan "
                f"footprint {plan.temp_footprint_bytes}",
                "re-lower the plan; the header is part of the contract",
            )
        if info.get("variant") != plan.variant:
            flag(
                f"header variant {info.get('variant')!r} != plan variant "
                f"{plan.variant!r}",
                "re-lower the plan; the header is part of the contract",
            )
        if constants["N"] != plan.spec.order:
            flag(
                f"module N={constants['N']} != plan order {plan.spec.order}",
                "the lowered loop bounds must match the recorded spec",
            )
    if info["fused"]:
        findings.extend(_audit_fused_header(info, location, plan))
    if pde is not None:
        token = pde_token(pde)
        if info["pde"] != token[0]:
            flag(
                f"docstring pde={info['pde']!r} != pde_token name {token[0]!r}",
                "the source must be generated from the same PDE",
            )
        if constants["M"] != pde.nquantities or constants["NVAR"] != token[1]:
            flag(
                f"constants M={constants['M']}, NVAR={constants['NVAR']} "
                f"disagree with PDE sizes m={pde.nquantities}, "
                f"nvar={token[1]}",
                "the source must be generated from the same PDE",
            )
    return findings


def _audit_fused_header(info: dict, location: str, plan=None) -> list[Finding]:
    """KA007: a fused module must restate its phase plans' contract.

    The fused program chains the same predict/riemann/correct loops the
    phase modules run, so its header must carry the *identical* gemm
    schedule and temp footprint -- fusing may remove NumPy surfacing,
    never silently change the audited blocking.
    """
    findings: list[Finding] = []

    def flag(message: str, hint: str) -> None:
        findings.append(
            Finding("KA007", ERROR, location, 1, message, "header", hint)
        )

    phases = info.get("fused_phases")
    if phases != "predict+riemann+correct":
        flag(
            f"fused module declares phases {phases!r}, expected "
            "'predict+riemann+correct'",
            "regenerate via lower_plan(..., fused=True)",
        )
    for key, phase_key, label in (
        ("fused_gemms", "gemms", "gemm schedule"),
        ("fused_temp_bytes", "temp_bytes", "temp footprint"),
    ):
        if info.get(key) is None:
            flag(
                f"fused module header lacks the fused phase {label} line",
                "regenerate via lower_plan(..., fused=True)",
            )
        elif info.get(key) != info.get(phase_key):
            flag(
                f"fused phase {label} {info.get(key)!r} != phase header "
                f"{label} {info.get(phase_key)!r}",
                "the fused program must embed the exact phase contract",
            )
    if plan is not None and info.get("fused_gemms") is not None:
        gemms = ", ".join(
            f"{mm}x{nn}x{kk}x{batch}"
            for mm, nn, kk, batch in plan.gemm_shapes()
        ) or "none"
        if info["fused_gemms"] != gemms:
            flag(
                f"fused phase gemm schedule {info['fused_gemms']!r} != plan "
                f"schedule {gemms!r}",
                "re-lower the plan; the fused header is part of the contract",
            )
        if info.get("fused_temp_bytes") is None or int(
            info["fused_temp_bytes"]
        ) != plan.temp_footprint_bytes:
            flag(
                f"fused phase temp footprint {info.get('fused_temp_bytes')!r}"
                f" != plan footprint {plan.temp_footprint_bytes}",
                "re-lower the plan; the fused header is part of the contract",
            )
    return findings


def audit_kernel_source(
    source: str, location: str, plan=None, pde=None
) -> list[Finding]:
    """Audit one lowered kernel module; returns its findings.

    ``plan`` and ``pde`` enable the KA005 cross-checks against the
    recorded :class:`~repro.codegen.plan.KernelPlan` and the PDE token;
    without them the header is only checked for internal consistency.
    Pragma comments in the source suppress findings as everywhere else
    (generated sources carry none, so every hit is real).
    """
    tree = ast.parse(source)
    info = _parse_header(source)
    family = info.get("family", "splitck")
    module_m = info.get("doc_m")
    visitor = _KernelVisitor(location, module_m, family)
    visitor.visit(tree)
    findings = visitor.findings + _audit_header(
        source, tree, location, plan=plan, pde=pde
    )
    return filter_pragmas(findings, source.splitlines())


def default_kernel_corpus(
    orders=(2, 3),
) -> list[tuple[str, object, object, bool]]:
    """The ``(location, plan, pde, fused)`` corpus the repo-wide audit lowers.

    One representative variant per loop family (``splitck`` and
    ``generic``/spacetime) crossed with every PDE the lowering supports,
    at small orders -- identical source structure to the production
    orders, a fraction of the generation cost.  Each combination
    appears twice: the phase module and its fused superset (the
    face-exchange and fused-step families ride only in the latter).
    """
    from repro.codegen.generator import KernelGenerator
    from repro.core.spec import KernelSpec
    from repro.pde.acoustic import AcousticPDE
    from repro.pde.advection import AdvectionPDE
    from repro.pde.curvilinear import CurvilinearElasticPDE
    from repro.pde.elastic import ElasticPDE

    pdes = [
        AdvectionPDE(velocity=(1.0, 0.5, 0.25), nvar=1),
        AcousticPDE(),
        ElasticPDE(),
        CurvilinearElasticPDE(),
    ]
    corpus = []
    for pde in pdes:
        for order in orders:
            spec = KernelSpec(order=order, nvar=pde.nvar, nparam=pde.nparam)
            gen = KernelGenerator(spec, pde)
            for variant in ("splitck", "generic"):
                plan = gen.plan(variant)
                for fused in (False, True):
                    suffix = "/fused" if fused else ""
                    location = f"kernel:{variant}/{pde.name}/N{order}{suffix}"
                    corpus.append((location, plan, pde, fused))
    return corpus


def audit_generated_kernels(orders=(2, 3)) -> list[Finding]:
    """Lower and audit the whole default kernel corpus.

    This is the entry point ``python -m repro.analysis`` and the CI
    gate run: every supported ``(family, PDE, order)`` combination is
    lowered exactly as the compiled backend would and pushed through
    :func:`audit_kernel_source` with its plan attached.
    """
    from repro.codegen.lowering import lower_plan

    findings: list[Finding] = []
    for location, plan, pde, fused in default_kernel_corpus(orders):
        source = lower_plan(plan, pde, fused=fused)
        findings.extend(
            audit_kernel_source(source, location, plan=plan, pde=pde)
        )
    return findings
