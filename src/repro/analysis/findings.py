"""The shared rule/finding framework of the static-analysis layer.

Every analyzer in :mod:`repro.analysis` reports through the same
currency: a :class:`Finding` carries a rule id (``KA*`` kernel audit,
``RP*`` race prover, ``HP*`` hot-path lint), a severity, a location and
a fix hint, so one reporter, one suppression mechanism and one baseline
workflow serve all three analyzers.

Suppression happens at two levels:

* **pragmas** -- a source comment ``# pragma: allow(RULE): reason`` on
  the offending line (or the line directly above it) acknowledges a
  finding where it happens; the justification text is mandatory.
* **baseline** -- a checked-in JSON file recording the accepted
  residue of findings (keyed by rule + location + enclosing context,
  *not* line numbers, so unrelated edits do not invalidate it).  CI
  fails only on findings beyond the baseline.
"""

from __future__ import annotations

import json
import re
from collections import Counter
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "Finding",
    "RULES",
    "ERROR",
    "WARNING",
    "pragma_allows",
    "filter_pragmas",
    "format_findings",
    "findings_to_json",
    "load_baseline",
    "apply_baseline",
    "write_baseline",
]

#: severity levels, in increasing order of badness
WARNING = "warning"
ERROR = "error"

#: rule id -> one-line description (the catalog ``docs/analysis.md``
#: documents in full; the CLI prints this for ``--rules help``)
RULES = {
    "KA001": "allocation call inside a generated kernel loop body",
    "KA002": "non-whitelisted attribute access inside a kernel loop body",
    "KA003": "kernel loop bound not derived from N/M/NVAR or an array shape",
    "KA004": "constant quantity subscript out of the declared [0, M) range",
    "KA005": "kernel header inconsistent with its KernelPlan / PDE token",
    "KA006": "call outside the loop family's whitelist",
    "RP001": "two workers write the same element in the same phase",
    "RP002": "a worker reads an array another worker writes in the same phase",
    "RP003": "phase write-set does not cover every element exactly once",
    "RP004": "halo read of a face trace no predict phase published",
    "RP005": "async schedule misses a halo dependency edge",
    "RP006": "mailbox slot assignment inconsistent with the cut faces",
    "HP001": "allocation inside a step-loop (hot-path) function",
    "HP002": "bare or over-broad except without a justifying pragma",
    "HP003": "mutable default argument",
}


@dataclass(frozen=True)
class Finding:
    """One rule violation (or accepted observation) at one location.

    Attributes
    ----------
    rule:
        Rule id from :data:`RULES` (e.g. ``"HP001"``).
    severity:
        :data:`ERROR` or :data:`WARNING`.
    location:
        File path (relative to the scanned root) or a virtual unit like
        ``"kernel:splitck/acoustic/N3"`` for generated sources.
    line:
        1-based source line, ``0`` when the finding has no line (e.g.
        a shard-plan-level race).
    message:
        Human-readable statement of the violation.
    context:
        Enclosing function / phase label -- part of the baseline key,
        so findings survive unrelated line drift.
    fix_hint:
        One-line suggestion of how to resolve the finding.
    """

    rule: str
    severity: str
    location: str
    line: int
    message: str
    context: str = ""
    fix_hint: str = ""

    def key(self) -> str:
        """Line-drift-robust identity used by the baseline file."""
        return f"{self.rule}|{self.location}|{self.context}"

    def to_dict(self) -> dict:
        """Plain-dict form for the JSON reporter."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "location": self.location,
            "line": self.line,
            "message": self.message,
            "context": self.context,
            "fix_hint": self.fix_hint,
        }


# ---------------------------------------------------------------------------
# pragma suppression
# ---------------------------------------------------------------------------

_PRAGMA = re.compile(r"#\s*pragma:\s*allow\(([A-Z]{2}\d{3})\)\s*:\s*(\S.*)")


def pragma_allows(source_lines: list[str], line: int, rule: str) -> bool:
    """Whether ``rule`` is pragma-suppressed at 1-based ``line``.

    A pragma counts when it sits on the flagged line itself or on the
    line directly above it, and carries a non-empty justification:
    ``# pragma: allow(HP002): traceback must cross the process gap``.
    """
    for idx in (line - 1, line - 2):
        if 0 <= idx < len(source_lines):
            match = _PRAGMA.search(source_lines[idx])
            if match and match.group(1) == rule:
                return True
    return False


def filter_pragmas(findings: list[Finding], source_lines: list[str]) -> list[Finding]:
    """Drop findings suppressed by a pragma in their source unit."""
    return [
        f
        for f in findings
        if not (f.line and pragma_allows(source_lines, f.line, f.rule))
    ]


# ---------------------------------------------------------------------------
# reporters
# ---------------------------------------------------------------------------


def format_findings(findings: list[Finding]) -> str:
    """Human reporter: one ``location:line rule severity message`` row each."""
    if not findings:
        return "no findings"
    rows = []
    for f in sorted(findings, key=lambda f: (f.location, f.line, f.rule)):
        where = f.location if not f.line else f"{f.location}:{f.line}"
        row = f"{where}  {f.rule} [{f.severity}] {f.message}"
        if f.fix_hint:
            row += f"\n{'':4}hint: {f.fix_hint}"
        rows.append(row)
    return "\n".join(rows)


def findings_to_json(findings: list[Finding], telemetry: dict | None = None) -> str:
    """JSON reporter: ``{"findings": [...], "telemetry": {...}}``."""
    payload = {
        "findings": [f.to_dict() for f in findings],
        "telemetry": telemetry or {},
    }
    return json.dumps(payload, indent=2, sort_keys=True)


# ---------------------------------------------------------------------------
# baseline workflow
# ---------------------------------------------------------------------------


def load_baseline(path: str | Path) -> dict[str, int]:
    """Read a baseline file into its ``key -> accepted count`` map."""
    data = json.loads(Path(path).read_text())
    if data.get("version") != 1:
        raise ValueError(f"unsupported baseline version in {path}")
    return {str(k): int(v) for k, v in data["entries"].items()}


def apply_baseline(
    findings: list[Finding], baseline: dict[str, int]
) -> tuple[list[Finding], list[str]]:
    """Split findings into (new beyond baseline, stale baseline keys).

    For each baseline key the first ``count`` matching findings are
    accepted; anything beyond surfaces as new.  Keys whose accepted
    count exceeds what the analyzers still report are *stale* -- the
    caller prints them as a nudge to re-run ``--write-baseline``.
    """
    remaining = Counter(baseline)
    new: list[Finding] = []
    for f in findings:
        if remaining.get(f.key(), 0) > 0:
            remaining[f.key()] -= 1
        else:
            new.append(f)
    stale = sorted(k for k, v in remaining.items() if v > 0)
    return new, stale


def write_baseline(findings: list[Finding], path: str | Path) -> None:
    """Write the accepted-residue baseline for ``findings`` to ``path``."""
    counts = Counter(f.key() for f in findings)
    payload = {
        "version": 1,
        "comment": (
            "Accepted static-analysis findings (repro.analysis). "
            "Regenerate with: PYTHONPATH=src python tools/check_analysis.py "
            "--write-baseline"
        ),
        "entries": {k: counts[k] for k in sorted(counts)},
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
