"""Hot-path allocation & hygiene lint over ``src/repro`` (``HP001-HP004``).

The paper's footprint argument (Sec. IV) is that the solver's steady
state should run out of *preallocated* buffers -- the scratch arena,
the face planes, the shm segments -- with no per-step allocation.  The
repo enforces that discipline by review only; this lint makes it a
rule:

* ``HP001`` -- an allocation call (``np.zeros/empty/ones/full/
  *_like/array/concatenate/stack``, or a ``.copy()``) inside a
  *step-loop function*: the per-step methods of
  :class:`~repro.engine.solver.ADERDGSolver`,
  :class:`~repro.core.variants.batched.BatchedSTP`,
  :class:`~repro.engine.facesweep.FaceSweep`, the block corrector and
  the worker's phase methods (:data:`HOT_PATTERNS`; one-time setup
  like ``__init__``/``bind_parameters`` is explicitly cold).
* ``HP002`` -- a bare ``except:`` or ``except Exception/BaseException``
  anywhere in the tree without a ``# pragma: allow(HP002): reason``
  justification.
* ``HP003`` -- a mutable default argument.
* ``HP004`` -- a ``pack_block``/``unpack_block`` call inside a
  step-loop function outside the layout-owned ingest/egress points
  (:data:`PACK_OWNERS`: the :class:`~repro.core.layouts.
  ResidentBlockState` sync/peek methods).  The resident stack exists so
  per-step layout traffic happens only on ingest and egress; a pack
  call creeping back into a step loop silently reintroduces the
  twice-per-block-per-step round-trip the fused path removed.

Accepted residue lives in the checked-in baseline
(``tools/analysis_baseline.json``) so the gate only fails on *new*
findings; see :mod:`repro.analysis.findings` for the workflow.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch
from pathlib import Path

from repro.analysis.findings import ERROR, Finding, filter_pragmas

__all__ = [
    "HOT_PATTERNS", "COLD_EXCEPTIONS", "PACK_OWNERS",
    "lint_source", "lint_tree",
]

#: qualname patterns of step-loop (per-step) functions; allocations
#: inside any match are HP001 findings
HOT_PATTERNS = (
    "ADERDGSolver.step",
    "ADERDGSolver._step_*",
    "BatchedSTP.*",
    "FaceSweep.*",
    "_ShardWorker.predict",
    "_ShardWorker.correct",
    "_ShardWorker._correct_sweep",
    "_ShardWorker.riemann_phase",
    "_ShardWorker.finish_phase",
    "_ShardWorker._apply_corrector",
    "_ShardWorker._fused_stage",
    "FusedPipeline.run",
    "FusedPipeline._args",
    "FusedPipeline._dir_args",
    "FusedPipeline._publish_fluxes",
    "ResidentBlockState.sync_resident",
    "ResidentBlockState.sync_canonical",
    "ResidentBlockState.peek_element",
    "corrector_all",
    "corrector_update",
    "rusanov_flux",
    "upwind_flux_sweep",
    "ghost_state",
)

#: qualnames matched by :data:`HOT_PATTERNS` that are *not* hot: they
#: run once per solver/run, not once per step
COLD_EXCEPTIONS = (
    "BatchedSTP.__init__",
    "BatchedSTP.build_plan",
    "BatchedSTP.footprint_report",
    "FaceSweep.__init__",
    "FaceSweep.bind_parameters",
    "FaceSweep.invalidate_parameters",
)

#: the only qualnames that may call ``pack_block``/``unpack_block`` on
#: a per-step basis: the resident stack's dirty-tracked ingest/egress
#: (rule HP004); everything else must go through them
PACK_OWNERS = (
    "ResidentBlockState.sync_resident",
    "ResidentBlockState.sync_canonical",
    "ResidentBlockState.peek_element",
    "TensorLayout.pack_block",
    "TensorLayout.unpack_block",
)

#: numpy constructors (and the ``.copy`` method) that allocate
_ALLOCATORS = {
    "zeros", "empty", "ones", "full", "zeros_like", "empty_like",
    "ones_like", "full_like", "array", "concatenate", "stack",
    "vstack", "hstack", "tile", "repeat", "copy",
}


def _is_hot(qualname: str) -> bool:
    """Whether ``qualname`` names a step-loop function."""
    if qualname in COLD_EXCEPTIONS:
        return False
    return any(fnmatch(qualname, pattern) for pattern in HOT_PATTERNS)


def _broad_handler(handler: ast.ExceptHandler) -> str | None:
    """The over-broad type an except handler catches, or ``None``."""
    node = handler.type
    if node is None:
        return "bare except"
    names = [node] if not isinstance(node, ast.Tuple) else list(node.elts)
    for name in names:
        if isinstance(name, ast.Name) and name.id in ("Exception", "BaseException"):
            return name.id
    return None


class _LintVisitor(ast.NodeVisitor):
    """AST pass collecting HP001-HP003 for one module."""

    def __init__(self, location: str):
        self.location = location
        self.findings: list[Finding] = []
        self._stack: list[str] = []

    def _qualname(self) -> str:
        return ".".join(self._stack)

    def _flag(self, rule: str, node: ast.AST, message: str, hint: str) -> None:
        self.findings.append(
            Finding(
                rule=rule,
                severity=ERROR,
                location=self.location,
                line=getattr(node, "lineno", 0),
                message=message,
                context=self._qualname(),
                fix_hint=hint,
            )
        )

    def _check_defaults(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in ("list", "dict", "set")
            )
            if mutable:
                self._flag(
                    "HP003",
                    default,
                    f"mutable default argument in {self._qualname()}",
                    "default to None and construct inside the body",
                )

    def _visit_scope(self, node, name: str) -> None:
        self._stack.append(name)
        self.generic_visit(node)
        self._stack.pop()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._visit_scope(node, node.name)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self._visit_scope(node, node.name)

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        name = None
        if isinstance(func, ast.Attribute):
            name = func.attr
        elif isinstance(func, ast.Name):
            name = func.id
        if name in _ALLOCATORS and _is_hot(self._qualname()):
            self._flag(
                "HP001",
                node,
                f"allocation `{name}` in step-loop function "
                f"{self._qualname()}",
                "hoist into the scratch arena or a preallocated buffer",
            )
        if (
            name in ("pack_block", "unpack_block")
            and _is_hot(self._qualname())
            and self._qualname() not in PACK_OWNERS
        ):
            self._flag(
                "HP004",
                node,
                f"layout `{name}` in step-loop function "
                f"{self._qualname()}, outside the resident stack's "
                "ingest/egress",
                "route per-step layout traffic through "
                "ResidentBlockState.sync_*/peek_element",
            )
        self.generic_visit(node)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        broad = _broad_handler(node)
        if broad is not None:
            self._flag(
                "HP002",
                node,
                f"{broad} caught without a justifying pragma"
                + (f" in {self._qualname()}" if self._stack else ""),
                "narrow the exception type or add "
                "`# pragma: allow(HP002): <why>`",
            )
        self.generic_visit(node)


def lint_source(source: str, location: str) -> list[Finding]:
    """Lint one module's source; pragma-suppressed findings are dropped."""
    tree = ast.parse(source)
    visitor = _LintVisitor(location)
    visitor.visit(tree)
    return filter_pragmas(visitor.findings, source.splitlines())


def lint_tree(root: str | Path) -> list[Finding]:
    """Lint every ``*.py`` file under ``root`` (paths become locations)."""
    root = Path(root)
    findings: list[Finding] = []
    for path in sorted(root.rglob("*.py")):
        findings.extend(
            lint_source(path.read_text(), path.relative_to(root).as_posix())
        )
    return findings
