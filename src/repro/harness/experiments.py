"""Shared experiment plumbing: plans, application profiles, caching.

All performance figures run the paper's workload: the curvilinear
elastic wave equations with m = 21 quantities (Sec. VI), benchmarked
per core as an *application* profile -- STP kernel + corrector + engine
overhead per element and time step ("end-to-end performance, with all
kernels and engine overhead included").
"""

from __future__ import annotations

from functools import lru_cache

from repro.codegen.plan import KernelPlan
from repro.core.corrector import record_corrector_plan
from repro.core.spec import KernelSpec
from repro.core.variants import make_kernel
from repro.machine.perfmodel import KernelPerformance, PerfModelConfig
from repro.machine.profiler import Profiler, engine_overhead_plan, merge_plans
from repro.pde import CurvilinearElasticPDE

__all__ = [
    "paper_spec",
    "stp_plan",
    "application_plan",
    "application_performance",
    "PAPER_ORDERS",
]

#: the order sweep of every figure
PAPER_ORDERS: tuple[int, ...] = (4, 5, 6, 7, 8, 9, 10, 11)

_PDE = CurvilinearElasticPDE()


def paper_spec(order: int, arch: str = "skx") -> KernelSpec:
    """The Sec. VI kernel specification: 9 + 12 quantities, 3-D."""
    return KernelSpec(order=order, nvar=9, nparam=12, dim=3, arch=arch)


@lru_cache(maxsize=256)
def stp_plan(variant: str, order: int, arch: str = "skx") -> KernelPlan:
    """Recorded STP plan of one variant on the paper workload (cached)."""
    spec = paper_spec(order, arch)
    return make_kernel(variant, spec, _PDE).build_plan()


@lru_cache(maxsize=256)
def application_plan(variant: str, order: int, arch: str = "skx") -> KernelPlan:
    """Per-element application step: STP + corrector + engine overhead."""
    spec = paper_spec(order, arch)
    return merge_plans(
        stp_plan(variant, order, arch),
        record_corrector_plan(spec, _PDE),
        engine_overhead_plan(spec),
    )


@lru_cache(maxsize=256)
def application_performance(
    variant: str, order: int, arch: str = "skx"
) -> KernelPerformance:
    """Machine-model metrics for one (variant, order, arch) point."""
    profiler = Profiler(PerfModelConfig())
    return profiler.profile(application_plan(variant, order, arch))
