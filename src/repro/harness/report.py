"""Text rendering of the experiment results."""

from __future__ import annotations

from repro.harness.figures import (
    backend_table,
    batched_footprint_table,
    figure10,
    figure4,
    figure6,
    figure9,
    footprint_table,
    headline_metrics,
    parallel_scaling_table,
    phase_breakdown_table,
    roofline_table,
    service_table,
    step_records_table,
)

__all__ = [
    "render_two_panel",
    "render_backend",
    "render_service",
    "render_fig4",
    "render_fig6",
    "render_fig9",
    "render_fig10",
    "render_batched",
    "render_facesweep",
    "render_footprint",
    "render_headlines",
    "render_parallel",
    "render_roofline",
    "render_steps",
]


def render_two_panel(series: dict[str, list[dict]], title: str) -> str:
    """Render a Fig. 4/6/10-style result: % perf and % stalls per order."""
    orders = [row["order"] for row in next(iter(series.values()))]
    lines = [title, "=" * len(title), ""]
    header = f"{'series':<14}" + "".join(f"{o:>7}" for o in orders)
    lines.append("Available performance reached (%)")
    lines.append(header)
    for name, rows in series.items():
        lines.append(
            f"{name:<14}" + "".join(f"{r['percent_available']:7.1f}" for r in rows)
        )
    lines.append("")
    lines.append("Pipeline slots affected by memory stalls (%)")
    lines.append(header)
    for name, rows in series.items():
        lines.append(
            f"{name:<14}" + "".join(f"{r['memory_stall_pct']:7.1f}" for r in rows)
        )
    return "\n".join(lines)


def render_fig4() -> str:
    """Render Fig. 4: generic vs LoG on AVX-512 and AVX2."""
    return render_two_panel(
        figure4(), "Fig. 4 -- generic vs LoG (AVX-512) vs LoG (AVX2)"
    )


def render_fig6() -> str:
    """Render Fig. 6: LoG vs SplitCK."""
    return render_two_panel(figure6(), "Fig. 6 -- LoG vs SplitCK")


def render_fig10() -> str:
    """Render Fig. 10: all four kernel variants."""
    return render_two_panel(figure10(), "Fig. 10 -- all four kernel variants")


def render_fig9() -> str:
    """Render Fig. 9: FLOP packing-width distribution per variant."""
    rows = figure9()
    title = "Fig. 9 -- FLOP packing-width distribution (%)"
    lines = [title, "=" * len(title), ""]
    lines.append(
        f"{'variant':<10}{'order':>6}{'scalar':>9}{'128-bit':>9}{'256-bit':>9}{'512-bit':>9}"
    )
    last = None
    for row in rows:
        if last is not None and row["variant"] != last:
            lines.append("")
        last = row["variant"]
        lines.append(
            f"{row['variant']:<10}{row['order']:>6}"
            f"{row['scalar']:9.1f}{row['bits128']:9.1f}"
            f"{row['bits256']:9.1f}{row['bits512']:9.1f}"
        )
    return "\n".join(lines)


def render_footprint() -> str:
    """Render the Sec. IV-A temporary-footprint table."""
    rows = footprint_table()
    title = "Sec. IV-A -- STP temporary-memory footprint vs the 1 MiB L2"
    lines = [title, "=" * len(title), ""]
    lines.append(f"{'variant':<10}{'order':>6}{'temp MiB':>10}  fits L2?")
    last = None
    for row in rows:
        if last is not None and row["variant"] != last:
            lines.append("")
        last = row["variant"]
        lines.append(
            f"{row['variant']:<10}{row['order']:>6}{row['temp_mib']:10.2f}  "
            + ("yes" if row["fits_l2"] else "NO")
        )
    return "\n".join(lines)


def render_batched() -> str:
    """Render the batched-execution arena footprint table."""
    rows = batched_footprint_table()
    title = "Batched STP execution -- arena vs per-element temp footprint"
    lines = [title, "=" * len(title), ""]
    lines.append(
        f"{'variant':<14}{'order':>6}{'B':>4}{'arena MiB':>11}"
        f"{'KiB/elem':>10}{'scalar KiB':>12}{'amortize x':>12}"
    )
    last = None
    for row in rows:
        if last is not None and row["variant"] != last:
            lines.append("")
        last = row["variant"]
        lines.append(
            f"{row['variant']:<14}{row['order']:>6}{row['batch_size']:>4}"
            f"{row['arena_mib']:11.2f}{row['arena_kib_per_element']:10.1f}"
            f"{row['scalar_temp_kib']:12.1f}{row['amortization']:12.2f}"
        )
    return "\n".join(lines)


def render_parallel() -> str:
    """Render the measured strong-scaling run of the sharded solver."""
    import os

    rows = parallel_scaling_table()
    title = "Sharded solver strong scaling (extension; measured on this host)"
    lines = [title, "=" * len(title), ""]
    lines.append(f"host cores: {os.cpu_count()}")
    lines.append("")
    lines.append(
        f"{'workers':>8}{'shard sz':>10}{'cut frac':>10}{'imbal':>8}"
        f"{'retry':>7}{'spawn':>7}{'s/step':>10}{'speedup':>9}{'eff':>7}"
    )
    for row in rows:
        shard = f"{row['shard_min']}-{row['shard_max']}"
        lines.append(
            f"{row['workers']:>8}{shard:>10}{row['cut_fraction']:10.3f}"
            f"{row['imbalance']:8.2f}{row['retries']:>7}{row['respawns']:>7}"
            f"{row['sec_per_step']:10.4f}"
            f"{row['speedup']:9.2f}{row['efficiency']:7.2f}"
        )
    return "\n".join(lines)


def render_steps() -> str:
    """Render the per-step telemetry records of a short parallel run."""
    rows = step_records_table()
    title = "Per-step execution telemetry (fault-tolerant pool; measured)"
    lines = [title, "=" * len(title), ""]
    lines.append(
        f"{'step':>5} {'mode':<16}{'wall s':>9}{'predict':>9}{'riemann':>9}"
        f"{'correct':>9}{'imbal':>7}{'retry':>7}{'spawn':>7}{'crash':>7}"
    )
    for row in rows:
        walls = row["phase_walls"]
        lines.append(
            f"{row['step']:>5} {row['mode']:<16}{row['wall']:9.4f}"
            f"{walls.get('predict', 0.0):9.4f}{walls.get('riemann', 0.0):9.4f}"
            f"{walls.get('correct', 0.0):9.4f}{row['imbalance']:7.2f}"
            f"{row['retries']:>7}{row['respawns']:>7}{len(row['crashes']):>7}"
        )
    return "\n".join(lines)


def render_facesweep() -> str:
    """Render the measured legacy vs face-sweep phase breakdown."""
    rows = phase_breakdown_table()
    title = "Step phase breakdown -- legacy loops vs face-sweep (measured)"
    lines = [title, "=" * len(title), ""]
    lines.append(
        f"{'path':<12}{'predict s':>11}{'riemann s':>11}{'correct s':>11}"
        f"{'total s':>10}{'riemann %':>11}{'correct %':>11}"
    )
    for row in rows:
        lines.append(
            f"{row['path']:<12}{row['predict']:11.4f}{row['riemann']:11.4f}"
            f"{row['correct']:11.4f}{row['total']:10.4f}"
            f"{row['riemann_pct']:11.1f}{row['correct_pct']:11.1f}"
        )
    return "\n".join(lines)


def render_backend() -> str:
    """Render the measured NumPy vs compiled-backend phase breakdown."""
    rows = backend_table()
    title = "Execution backend phase breakdown (measured; see docs/backends.md)"
    lines = [title, "=" * len(title), ""]
    lines.append(
        f"{'backend':<12}{'order':>6}{'predict s':>11}{'riemann s':>11}"
        f"{'correct s':>11}{'total s':>10}{'compile s':>11}"
    )
    for row in rows:
        lines.append(
            f"{row['backend']:<12}{row['order']:>6}{row['predict']:11.4f}"
            f"{row['riemann']:11.4f}{row['correct']:11.4f}"
            f"{row['total']:10.4f}{row['compile_s']:11.4f}"
        )
    return "\n".join(lines)


def render_service() -> str:
    """Render the service fleet's compile-once amortization table."""
    rows = service_table()
    title = "Solver service: compile-once across identical jobs (see docs/service.md)"
    lines = [title, "=" * len(title), ""]
    lines.append(
        f"{'job':<5}{'backend':<12}{'order':>6}{'compile s':>11}"
        f"{'of first':>10}{'wall s':>9}  digest"
    )
    for row in rows:
        lines.append(
            f"{row['job']:<5}{row['backend']:<12}{row['order']:>6}"
            f"{row['compile_s']:11.4f}{row['compile_frac_of_first']:10.2%}"
            f"{row['wall_s']:9.3f}  {row['digest']}"
        )
    cache = rows[0]
    lines.append("")
    lines.append(
        f"shared plan cache: {cache['cache_builds']} build(s), "
        f"{cache['cache_hits']} hit(s) -- every job after the first "
        "starts from the warm cache"
    )
    return "\n".join(lines)


def render_roofline() -> str:
    """Render the roofline-placement table."""
    rows = roofline_table()
    title = "Roofline placement (extension; DRAM-traffic operational intensity)"
    lines = [title, "=" * len(title), ""]
    lines.append(
        f"{'variant':<10}{'order':>6}{'flop/byte':>11}{'ceiling GF/s':>14}  bound"
    )
    last = None
    for row in rows:
        if last is not None and row["variant"] != last:
            lines.append("")
        last = row["variant"]
        lines.append(
            f"{row['variant']:<10}{row['order']:>6}{row['intensity']:11.1f}"
            f"{row['ceiling_gflops']:14.1f}  "
            + ("memory" if row["memory_bound"] else "compute")
        )
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, tuple):
        return f"{value[0]:.1f} .. {value[1]:.1f}"
    return f"{value:.1f}"


def render_headlines() -> str:
    """Render the Sec. VI headline paper-vs-model comparison."""
    metrics = headline_metrics()
    title = "Sec. VI headline numbers -- paper vs machine model"
    lines = [title, "=" * len(title), ""]
    lines.append(f"{'metric':<38}{'paper':>14}{'measured':>14}")
    for name, entry in metrics.items():
        lines.append(
            f"{name:<38}{_fmt(entry['paper']):>14}{_fmt(entry['measured']):>14}"
        )
    return "\n".join(lines)
