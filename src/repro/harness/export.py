"""CSV / JSONL export of the experiment data (for external plotting)."""

from __future__ import annotations

import csv
from pathlib import Path

from repro.harness.figures import (
    backend_table,
    batched_footprint_table,
    figure10,
    figure4,
    figure6,
    figure9,
    footprint_table,
    headline_metrics,
    parallel_scaling_table,
    phase_breakdown_table,
    roofline_table,
    service_table,
    step_records_table,
)
from repro.parallel.telemetry import write_jsonl

__all__ = ["export_all", "write_rows"]


def write_rows(path: Path, rows: list[dict]) -> Path:
    """Write a list of row dicts as a CSV file."""
    if not rows:
        raise ValueError("nothing to write")
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        writer.writerows(rows)
    return path


def _flatten_series(series: dict[str, list[dict]]) -> list[dict]:
    return [row for rows in series.values() for row in rows]


def export_all(directory: str | Path) -> list[Path]:
    """Write every figure's data as CSV (plus ``steps.jsonl``) into ``directory``."""
    directory = Path(directory)
    written = [
        write_rows(directory / "fig4.csv", _flatten_series(figure4())),
        write_rows(directory / "fig6.csv", _flatten_series(figure6())),
        write_rows(directory / "fig9.csv", figure9()),
        write_rows(directory / "fig10.csv", _flatten_series(figure10())),
        write_rows(directory / "footprint.csv", footprint_table()),
        write_rows(directory / "batched.csv", batched_footprint_table()),
        write_rows(directory / "roofline.csv", roofline_table()),
        write_rows(directory / "parallel.csv", parallel_scaling_table()),
        write_rows(directory / "facesweep.csv", phase_breakdown_table()),
        write_rows(directory / "backend.csv", backend_table()),
        write_rows(directory / "service.csv", service_table()),
    ]
    headline_rows = [
        {
            "metric": name,
            "paper": str(entry["paper"]),
            "measured": str(entry["measured"]),
            "description": entry["description"],
        }
        for name, entry in headline_metrics().items()
    ]
    written.append(write_rows(directory / "headlines.csv", headline_rows))
    written.append(write_jsonl(step_records_table(), directory / "steps.jsonl"))
    return written
