"""Command line entry point: ``python -m repro.harness <experiment>``."""

from __future__ import annotations

import argparse
import sys

from repro.harness import report

EXPERIMENTS = {
    "backend": report.render_backend,
    "fig4": report.render_fig4,
    "fig6": report.render_fig6,
    "fig9": report.render_fig9,
    "fig10": report.render_fig10,
    "batched": report.render_batched,
    "facesweep": report.render_facesweep,
    "footprint": report.render_footprint,
    "headlines": report.render_headlines,
    "parallel": report.render_parallel,
    "roofline": report.render_roofline,
    "service": report.render_service,
    "steps": report.render_steps,
}


def main(argv: list[str] | None = None) -> int:
    """Render the requested experiment(s); optionally export CSV data."""
    parser = argparse.ArgumentParser(
        prog="repro-harness",
        description="Regenerate the paper's evaluation figures on the "
        "simulated machine (see DESIGN.md).",
    )
    parser.add_argument(
        "experiment",
        nargs="+",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which figure(s) to regenerate",
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        help="additionally export every figure's data as CSV into DIR",
    )
    args = parser.parse_args(argv)
    names = sorted(EXPERIMENTS) if "all" in args.experiment else args.experiment
    for i, name in enumerate(names):
        if i:
            print("\n")
        print(EXPERIMENTS[name]())
    if args.csv:
        from repro.harness.export import export_all

        for path in export_all(args.csv):
            print(f"wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
