"""Experiment harness: regenerates every figure of the paper.

============ ==========================================================
entry point  reproduces
============ ==========================================================
``fig4``     Fig. 4 -- generic vs LoG (AVX-512) vs LoG (AVX2)
``fig6``     Fig. 6 -- LoG vs SplitCK
``fig9``     Fig. 9 -- instruction-mix distribution, all variants
``fig10``    Fig. 10 -- % available performance + % memory stalls
``footprint`` Sec. IV-A -- temporary-memory footprints vs the 1 MiB L2
``headlines`` Sec. VI -- the quoted headline numbers, paper vs model
============ ==========================================================

Run ``python -m repro.harness <experiment>`` or ``repro-harness``.
"""

from repro.harness.experiments import application_performance, stp_plan
from repro.harness.figures import (
    figure10,
    figure4,
    figure6,
    figure9,
    footprint_table,
    headline_metrics,
)

__all__ = [
    "application_performance",
    "stp_plan",
    "figure4",
    "figure6",
    "figure9",
    "figure10",
    "footprint_table",
    "headline_metrics",
]
