"""Per-figure experiment drivers.

Each function returns plain data structures (lists of row dicts) that
:mod:`repro.harness.report` renders as the text tables corresponding to
the paper's figures.
"""

from __future__ import annotations

from repro.core.spec import VARIANTS
from repro.harness.experiments import (
    PAPER_ORDERS,
    application_performance,
    stp_plan,
)

__all__ = [
    "figure4",
    "figure6",
    "figure9",
    "figure10",
    "backend_table",
    "batched_footprint_table",
    "footprint_table",
    "headline_metrics",
    "parallel_scaling_table",
    "phase_breakdown_table",
    "roofline_table",
    "step_records_table",
]

#: 1 MiB of L2 per core -- the Sec. IV-A bottleneck
L2_BYTES = 1024 * 1024


def _series(variant: str, arch: str, orders) -> list[dict]:
    rows = []
    for order in orders:
        perf = application_performance(variant, order, arch)
        rows.append(
            {
                "order": order,
                "variant": variant,
                "arch": arch,
                "percent_available": perf.percent_available,
                "memory_stall_pct": perf.memory_stall_pct,
                "gflops": perf.gflops,
            }
        )
    return rows


def figure4(orders=PAPER_ORDERS) -> dict[str, list[dict]]:
    """Fig. 4: generic vs LoG (AVX-512) vs LoG (AVX2)."""
    return {
        "generic": _series("generic", "skx", orders),
        "log_avx512": _series("log", "skx", orders),
        "log_avx2": _series("log", "hsw", orders),
    }


def figure6(orders=PAPER_ORDERS) -> dict[str, list[dict]]:
    """Fig. 6: LoG vs SplitCK (both AVX-512)."""
    return {
        "log": _series("log", "skx", orders),
        "splitck": _series("splitck", "skx", orders),
    }


def figure9(orders=PAPER_ORDERS) -> list[dict]:
    """Fig. 9: FLOP packing-width distribution for all four variants."""
    rows = []
    for variant in VARIANTS:
        for order in orders:
            perf = application_performance(variant, order, "skx")
            mix = perf.mix_percentages()
            rows.append(
                {
                    "variant": variant,
                    "order": order,
                    "scalar": mix[64],
                    "bits128": mix[128],
                    "bits256": mix[256],
                    "bits512": mix[512],
                }
            )
    return rows


def figure10(orders=PAPER_ORDERS) -> dict[str, list[dict]]:
    """Fig. 10: % available performance and % memory stalls, all variants."""
    return {variant: _series(variant, "skx", orders) for variant in VARIANTS}


def footprint_table(orders=PAPER_ORDERS) -> list[dict]:
    """Sec. IV-A: temporary-array footprint per variant vs the L2 size."""
    rows = []
    for variant in VARIANTS:
        for order in orders:
            plan = stp_plan(variant, order, "skx")
            temp = plan.temp_footprint_bytes
            rows.append(
                {
                    "variant": variant,
                    "order": order,
                    "temp_bytes": temp,
                    "temp_mib": temp / 2**20,
                    "fits_l2": temp <= L2_BYTES,
                }
            )
    return rows


def batched_footprint_table(orders=(4, 6, 8), batch_size: int = 16) -> list[dict]:
    """Batched-execution arena footprint vs the per-element temp footprint.

    Extension of the Sec. IV-A analysis to the :class:`BatchedSTP`
    driver: the per-element column is the recorded plan's temporary
    footprint (the machine model's currency), the arena columns show
    what one block of ``batch_size`` elements holds and how it
    amortizes per element.
    """
    from repro.core.variants import KERNEL_CLASSES, BatchedSTP
    from repro.harness.experiments import _PDE, paper_spec

    rows = []
    for variant in KERNEL_CLASSES:
        for order in orders:
            driver = BatchedSTP(variant, paper_spec(order), _PDE, batch_size)
            rep = driver.footprint_report()
            rows.append(
                {
                    "variant": variant,
                    "order": order,
                    "batch_size": batch_size,
                    "arena_mib": rep["arena_bytes"] / 2**20,
                    "arena_kib_per_element": rep["arena_bytes_per_element"] / 2**10,
                    "scalar_temp_kib": rep["scalar_temp_bytes"] / 2**10,
                    "amortization": rep["amortization"],
                }
            )
    return rows


def parallel_scaling_table(
    worker_counts=(1, 2, 4),
    elements: int = 3,
    order: int = 3,
    steps: int = 3,
    batch_size: int | None = 4,
) -> list[dict]:
    """Strong scaling of the sharded solver (extension, measured live).

    Unlike the modelled figures this one actually *runs* the solver:
    for each worker count it steps a Gaussian acoustic pulse on an
    ``elements^3`` periodic grid and reports the shard layout (size
    spread, cut-face fraction from the SFC split) plus measured wall
    time per step, speedup over one worker and parallel efficiency.
    The load-balance column ``imbalance`` (max busy time over mean,
    1.0 = perfect) and the failure counters come from the same
    :class:`~repro.parallel.telemetry.StepRecord` stream that
    ``steps.jsonl`` exports -- one data path for scaling, balance and
    fault telemetry.

    On a single-core container the speedup column is honest about the
    hardware: expect values at or below 1.
    """
    import time

    from repro.parallel.sharding import make_shard_plan
    from repro.scenarios import gaussian_pulse_setup

    rows = []
    base_time = None
    for workers in worker_counts:
        with gaussian_pulse_setup(
            elements=elements, order=order, num_workers=workers,
            batch_size=batch_size,
        ) as solver:
            actual_workers = solver.num_workers
            n_elements = solver.grid.n_elements
            plan = make_shard_plan(solver.grid, actual_workers)
            start = time.perf_counter()
            for _ in range(steps):
                solver.step()
            per_step = (time.perf_counter() - start) / steps
            records = solver.step_records
            imbalance = records[-1].imbalance() if records else 1.0
            retries = sum(record.retries for record in records)
            respawns = sum(record.respawns for record in records)
        if base_time is None:
            base_time = per_step
        speedup = base_time / per_step
        sizes = plan.shard_sizes()
        rows.append(
            {
                "workers": actual_workers,
                "elements": n_elements,
                "shard_min": int(min(sizes)),
                "shard_max": int(max(sizes)),
                "cut_fraction": plan.cut_fraction(),
                "imbalance": imbalance,
                "retries": retries,
                "respawns": respawns,
                "sec_per_step": per_step,
                "speedup": speedup,
                "efficiency": speedup / actual_workers,
            }
        )
    return rows


def step_records_table(
    elements: int = 3,
    order: int = 3,
    steps: int = 3,
    num_workers: int = 2,
    batch_size: int | None = 4,
) -> list[dict]:
    """Per-step execution telemetry of a short parallel run (measured).

    Steps a Gaussian acoustic pulse under the fault-tolerant pool and
    returns each step's :class:`~repro.parallel.telemetry.StepRecord`
    as a plain dict: mode, wall seconds, per-phase critical paths,
    per-worker busy seconds plus the retry / respawn / crash counters
    of the recovery machinery (all zero on an undisturbed run).  The
    same rows serialize to ``steps.jsonl`` under ``--csv``.
    """
    from repro.scenarios import gaussian_pulse_setup

    with gaussian_pulse_setup(
        elements=elements, order=order, num_workers=num_workers,
        batch_size=batch_size,
    ) as solver:
        for _ in range(steps):
            solver.step()
        return [record.to_dict() for record in solver.step_records]


def phase_breakdown_table(
    elements: int = 3,
    order: int = 4,
    steps: int = 3,
    batch_size: int | None = 4,
) -> list[dict]:
    """Per-phase step time of the legacy vs face-sweep paths (measured).

    Steps the LOH1 scenario with both Riemann/corrector execution paths
    and reports the ``predict`` / ``riemann`` / ``correct`` seconds
    from ``solver.last_step_timings``, the total, and each phase's
    share of the step -- the live twin of the benchmark's acceptance
    gate (the tested invariant: identical states, faster faces).
    """
    from repro.scenarios import LOH1Scenario

    rows = []
    for face_sweep in (False, True):
        scenario = LOH1Scenario(
            elements=elements, order=order,
            batch_size=batch_size, face_sweep=face_sweep,
        )
        solver = scenario.solver
        dt = solver.stable_dt()
        solver.step(dt)  # warm-up (connectivity + parameter binding)
        totals = {"predict": 0.0, "riemann": 0.0, "correct": 0.0}
        for _ in range(steps):
            solver.step(dt)
            for phase, seconds in solver.last_step_timings.items():
                if phase in totals:  # a compiled backend may add "compile"
                    totals[phase] += seconds
        total = sum(totals.values())
        rows.append(
            {
                "path": "face_sweep" if face_sweep else "legacy",
                "predict": totals["predict"] / steps,
                "riemann": totals["riemann"] / steps,
                "correct": totals["correct"] / steps,
                "total": total / steps,
                "riemann_pct": 100.0 * totals["riemann"] / total,
                "correct_pct": 100.0 * totals["correct"] / total,
            }
        )
    return rows


def backend_table(
    elements: int = 3,
    order: int = 4,
    steps: int = 3,
    batch_size: int | None = 4,
) -> list[dict]:
    """Per-phase step time of the NumPy vs compiled executor (measured).

    Steps the Gaussian acoustic pulse once per available backend (the
    plain-Python ``"generated"`` executor stands in for Numba when it
    is not installed) and reports the per-phase seconds from
    ``solver.last_step_timings`` plus the one-time compile seconds of
    the warm-up step -- the live twin of
    ``benchmarks/bench_backend.py`` (see ``docs/backends.md``).

    Fusion is pinned off: this table *is* the three-phase breakdown,
    and a fused step has no per-phase split to report
    (``benchmarks/bench_fused_step.py`` measures fused vs phase-wise).
    """
    from repro.codegen.executor import numba_available
    from repro.scenarios import gaussian_pulse_setup

    backends = ["numpy", "numba" if numba_available() else "generated"]
    rows = []
    for backend in backends:
        solver = gaussian_pulse_setup(
            elements=elements, order=order,
            batch_size=batch_size, backend=backend, fuse=False,
        )
        dt = solver.stable_dt()
        solver.step(dt)  # warm-up: compiles + binds parameters
        compile_s = solver.step_records[-1].compile_s
        totals = {"predict": 0.0, "riemann": 0.0, "correct": 0.0}
        for _ in range(steps):
            solver.step(dt)
            for phase in totals:
                totals[phase] += solver.last_step_timings.get(phase, 0.0)
        rows.append(
            {
                "backend": solver.backend,
                "order": order,
                "predict": totals["predict"] / steps,
                "riemann": totals["riemann"] / steps,
                "correct": totals["correct"] / steps,
                "total": sum(totals.values()) / steps,
                "compile_s": compile_s,
            }
        )
    return rows


def service_table(
    jobs: int = 4,
    elements: int = 2,
    order: int = 3,
    steps: int = 2,
    slots: int = 2,
) -> list[dict]:
    """Compile-once amortization through the solver service (measured).

    Submits ``jobs`` identical compiled-backend jobs to a
    :class:`~repro.service.SolverService` (the first awaited so the
    compile cost lands on job 0 deterministically, the rest run
    concurrently over ``slots`` slots) and reports each job's
    ``compile_s`` next to the shared plan cache's counters -- the live
    twin of ``benchmarks/bench_service.py`` (see ``docs/service.md``).
    """
    from repro.codegen.compiled import clear_plan_registry
    from repro.codegen.executor import numba_available
    from repro.service import SolverService

    clear_plan_registry()
    spec = {
        "scenario": "gaussian",
        "elements": elements,
        "order": order,
        "steps": steps,
        "backend": "numba" if numba_available() else "generated",
    }
    rows = []
    with SolverService(slots=slots, max_pending=jobs) as svc:
        results = [svc.submit(spec).result(timeout=600)]
        handles = [svc.submit(spec) for _ in range(jobs - 1)]
        results += [handle.result(timeout=600) for handle in handles]
        cache = svc.stats()["plan_cache"]
    first_compile = results[0]["compile_s"] or 1.0
    for i, result in enumerate(results):
        rows.append(
            {
                "job": i,
                "backend": result["backend"],
                "order": order,
                "steps": result["steps"],
                "compile_s": result["compile_s"],
                "compile_frac_of_first": result["compile_s"] / first_compile,
                "wall_s": result["wall_s"],
                "digest": result["state_sha256"][:12],
                "cache_builds": cache["module_builds"],
                "cache_hits": cache["hits"],
            }
        )
    return rows


def roofline_table(orders=(4, 6, 8, 11)) -> list[dict]:
    """Roofline placement of each STP variant (extension, not a paper figure).

    Quantifies the paper's arithmetic-intensity story: the SplitCK
    footprint reduction multiplies the *operational* intensity (flops
    per DRAM byte) by keeping the working set cached.
    """
    from repro.machine.roofline import roofline_point

    rows = []
    for variant in VARIANTS:
        for order in orders:
            point = roofline_point(stp_plan(variant, order, "skx"))
            rows.append(
                {
                    "variant": variant,
                    "order": order,
                    "intensity": point.intensity,
                    "ceiling_gflops": point.ceiling_gflops,
                    "memory_bound": point.memory_bound,
                }
            )
    return rows


def headline_metrics() -> dict[str, dict]:
    """Sec. VI headline numbers: paper value vs model value."""
    gen = {o: application_performance("generic", o) for o in PAPER_ORDERS}
    log512 = {o: application_performance("log", o) for o in PAPER_ORDERS}
    log256 = {o: application_performance("log", o, "hsw") for o in PAPER_ORDERS}
    split = {o: application_performance("splitck", o) for o in PAPER_ORDERS}
    aosoa = {o: application_performance("aosoa", o) for o in PAPER_ORDERS}

    high = [o for o in PAPER_ORDERS if o >= 8]
    generic_plateau = sum(gen[o].percent_available for o in high) / len(high)
    log_stall_min = min(log512[o].memory_stall_pct for o in PAPER_ORDERS if o >= 6)
    aosoa11 = aosoa[11].percent_available
    speedup11 = aosoa[11].gflops / gen[11].gflops
    avx_speedups = [
        log512[o].gflops / log256[o].gflops - 1.0 for o in PAPER_ORDERS if o >= 6
    ]
    log_scalar_high = log512[11].flops.scalar_fraction * 100
    aosoa_scalar = [aosoa[o].flops.scalar_fraction * 100 for o in PAPER_ORDERS]
    return {
        "generic_plateau_pct": {
            "paper": 3.8,
            "measured": generic_plateau,
            "description": "generic kernels plateau (% of available perf)",
        },
        "log_memory_stall_floor_pct": {
            "paper": 41.0,
            "measured": log_stall_min,
            "description": "LoG AVX-512 memory stalls never fall below (N >= 6)",
        },
        "aosoa_order11_pct": {
            "paper": 22.5,
            "measured": aosoa11,
            "description": "AoSoA SplitCK at order 11 (% of available perf)",
        },
        "aosoa_vs_generic_speedup": {
            "paper": 6.0,
            "measured": speedup11,
            "description": "AoSoA over generic at order 11 (x)",
        },
        "log_avx512_vs_avx2_speedup_pct": {
            "paper": (23.0, 30.0),
            "measured": (min(avx_speedups) * 100, max(avx_speedups) * 100),
            "description": "LoG speedup AVX2 -> AVX-512 (%)",
        },
        "scalar_fraction_log_pct": {
            "paper": 10.0,
            "measured": log_scalar_high,
            "description": "scalar FLOPs remaining in LoG/SplitCK (high order, %)",
        },
        "scalar_fraction_aosoa_pct": {
            "paper": (2.0, 4.0),
            "measured": (min(aosoa_scalar), max(aosoa_scalar)),
            "description": "scalar FLOPs remaining with AoSoA (%)",
        },
    }
