# Developer entry points.  `make verify` is the shared static gate CI
# and humans run identically: golden-fixture freshness, the
# repro.analysis static-analysis gate (kernel audit, race proof,
# hot-path lint vs the checked-in baseline) and the docs consistency
# gate (dead links, stale repro.* references, stale CLI flags).

PY := PYTHONPATH=src python

.PHONY: test verify docs baseline

test:
	$(PY) -m pytest -x -q

verify:
	$(PY) tools/regen_golden.py --check
	$(PY) tools/check_analysis.py --check
	$(PY) tools/check_docs.py --check

docs:
	$(PY) tools/gen_api_docs.py
	$(PY) tools/check_docstrings.py --fail-under 90

baseline:
	$(PY) tools/check_analysis.py --write-baseline
