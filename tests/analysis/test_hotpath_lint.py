"""Hot-path lint tests: seeded violations, pragmas, repo residue."""

import textwrap

from repro.analysis import lint_source, lint_tree
from repro.analysis import SOURCE_ROOT
from repro.analysis.hotpath import COLD_EXCEPTIONS, _is_hot


def rules_of(source):
    return [f.rule for f in lint_source(textwrap.dedent(source), "unit.py")]


def test_allocation_in_hot_function_flagged():
    src = """
    import numpy as np

    def corrector_all(q):
        tmp = np.zeros(q.shape)
        return tmp
    """
    assert rules_of(src) == ["HP001"]


def test_allocation_in_cold_function_ignored():
    src = """
    import numpy as np

    def assemble_operators(n):
        return np.zeros((n, n))
    """
    assert rules_of(src) == []


def test_hot_method_patterns_and_cold_exceptions():
    src = """
    import numpy as np

    class BatchedSTP:
        def __init__(self):
            self.buf = np.zeros(8)

        def predictor_sweep(self, q):
            return np.empty_like(q)
    """
    findings = lint_source(textwrap.dedent(src), "unit.py")
    assert [f.rule for f in findings] == ["HP001"]
    assert findings[0].context == "BatchedSTP.predictor_sweep"
    for qualname in COLD_EXCEPTIONS:
        assert not _is_hot(qualname)
    assert _is_hot("BatchedSTP.predictor_sweep")
    assert _is_hot("_ShardWorker._correct_sweep")


def test_broad_except_variants_flagged():
    src = """
    def f():
        try:
            g()
        except:
            pass
        try:
            g()
        except Exception:
            pass
        try:
            g()
        except (ValueError, BaseException):
            pass
        try:
            g()
        except (OSError, ValueError):
            pass
    """
    assert rules_of(src) == ["HP002", "HP002", "HP002"]


def test_pragma_suppresses_broad_except():
    src = """
    def f():
        try:
            g()
        # pragma: allow(HP002): traceback must cross the process gap
        except Exception:
            pass
    """
    assert rules_of(src) == []


def test_mutable_default_flagged():
    src = """
    def f(x, seen=[], cache=dict(), *, tags={}):
        return x
    """
    assert rules_of(src) == ["HP003", "HP003", "HP003"]


def test_none_default_not_flagged():
    src = """
    def f(x, seen=None, n=3, name="a"):
        return x
    """
    assert rules_of(src) == []


def test_repo_tree_residue_matches_baseline():
    # every finding left in src/repro must be an HP001/HP004 the
    # checked-in baseline accepts (the phase-wise batched path's
    # per-block pack/unpack); new broad excepts, mutable defaults or
    # stray layout traffic fail here
    findings = lint_tree(SOURCE_ROOT)
    assert {f.rule for f in findings} <= {"HP001", "HP004"}
    contexts = {f.context for f in findings}
    assert all(
        c.startswith("BatchedSTP.") or c == "upwind_flux_sweep"
        for c in contexts
    ), contexts


def test_pack_in_step_loop_flagged():
    src = """
    class BatchedSTP:
        def _block_custom(self, layout, q, out):
            layout.pack_block(q, out=out)
    """
    findings = lint_source(textwrap.dedent(src), "unit.py")
    assert [f.rule for f in findings] == ["HP004"]
    assert "pack_block" in findings[0].message


def test_pack_in_resident_state_owner_allowed():
    src = """
    class ResidentBlockState:
        def sync_resident(self, canonical):
            self.layout.pack_block(canonical, out=self.stack)

        def sync_canonical(self, canonical):
            canonical[:] = self.layout.unpack_block(self.stack)

        def peek_element(self, element):
            return self.layout.unpack_block(self.stack[:1])[0]
    """
    assert rules_of(src) == []


def test_pack_outside_step_loops_ignored():
    src = """
    def build_initial_stack(layout, states):
        return layout.pack_block(states)
    """
    assert rules_of(src) == []


def test_lint_tree_locations_are_relative(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "mod.py").write_text("def corrector_all(q):\n    return q.copy()\n")
    findings = lint_tree(tmp_path)
    assert [f.location for f in findings] == ["pkg/mod.py"]
