"""Unit tests for the shared finding/pragma/baseline framework."""

import json

from repro.analysis import (
    ERROR,
    RULES,
    WARNING,
    Finding,
    apply_baseline,
    findings_to_json,
    format_findings,
    load_baseline,
    write_baseline,
)
from repro.analysis.findings import filter_pragmas, pragma_allows


def make(rule="HP001", location="a.py", line=3, context="f"):
    return Finding(
        rule=rule,
        severity=ERROR,
        location=location,
        line=line,
        message=f"{rule} message",
        context=context,
        fix_hint="do the thing",
    )


def test_rule_catalog_covers_all_families():
    families = {rule[:2] for rule in RULES}
    assert families == {"KA", "RP", "HP"}
    assert all(RULES[rule] for rule in RULES)


def test_finding_key_and_dict_round_trip():
    f = make()
    assert f.key() == "HP001|a.py|f"
    d = f.to_dict()
    assert d["rule"] == "HP001"
    assert d["line"] == 3
    assert d["fix_hint"] == "do the thing"


def test_format_findings_sorted_with_hints():
    out = format_findings([make(line=9), make(line=2)])
    first, rest = out.split("\n", 1)
    assert first.startswith("a.py:2  HP001 [error]")
    assert "hint: do the thing" in rest
    assert format_findings([]) == "no findings"


def test_json_reporter_includes_telemetry():
    payload = json.loads(findings_to_json([make()], {"races": []}))
    assert payload["findings"][0]["rule"] == "HP001"
    assert payload["telemetry"] == {"races": []}


def test_pragma_on_flagged_line_and_line_above():
    lines = [
        "x = 1  # pragma: allow(HP001): same-line reason",
        "# pragma: allow(HP002): line-above reason",
        "y = 2",
        "z = 3",
    ]
    assert pragma_allows(lines, 1, "HP001")
    assert pragma_allows(lines, 3, "HP002")
    # wrong rule, too-distant pragma, and no pragma all fail
    assert not pragma_allows(lines, 1, "HP002")
    assert not pragma_allows(lines, 4, "HP002")
    assert not pragma_allows(lines, 4, "HP001")


def test_pragma_requires_justification_text():
    assert not pragma_allows(["# pragma: allow(HP002):"], 1, "HP002")
    assert not pragma_allows(["# pragma: allow(HP002)"], 1, "HP002")
    assert pragma_allows(["# pragma: allow(HP002): why"], 1, "HP002")


def test_filter_pragmas_drops_suppressed_only():
    lines = ["# pragma: allow(HP001): hoisting documented elsewhere", "x", "y"]
    kept = filter_pragmas([make(line=2), make(line=3)], lines)
    assert [f.line for f in kept] == [3]


def test_baseline_round_trip_and_stale_detection(tmp_path):
    path = tmp_path / "baseline.json"
    write_baseline([make(), make(), make(rule="HP003")], path)
    baseline = load_baseline(path)
    assert baseline == {"HP001|a.py|f": 2, "HP003|a.py|f": 1}

    # two HP001 accepted, a third is new; the HP003 entry goes stale
    new, stale = apply_baseline([make(), make(), make(line=30)], baseline)
    assert len(new) == 1 and new[0].rule == "HP001"
    assert stale == ["HP003|a.py|f"]

    # line drift alone does not invalidate the baseline
    new, stale = apply_baseline([make(line=99), make(line=100)], baseline)
    assert new == []


def test_baseline_version_check(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 2, "entries": {}}))
    try:
        load_baseline(path)
    except ValueError as exc:
        assert "version" in str(exc)
    else:  # pragma: no cover - the assertion above must fire
        raise AssertionError("unsupported version accepted")


def test_severity_constants():
    assert ERROR == "error" and WARNING == "warning"
