"""CLI (`python -m repro.analysis`) and check_analysis gate tests."""

import json
import sys
from pathlib import Path

import pytest

from repro.analysis import load_baseline, run_analysis
from repro.analysis.__main__ import DEFAULT_BASELINE, main

ROOT = Path(__file__).resolve().parent.parent.parent
TOOLS = ROOT / "tools"
sys.path.insert(0, str(TOOLS))

import check_analysis  # noqa: E402  (path bootstrap above)


@pytest.fixture
def bad_tree(tmp_path):
    """A source tree with one seeded hot-path allocation."""
    (tmp_path / "mod.py").write_text(
        "import numpy as np\n\n"
        "def corrector_all(q):\n"
        "    return np.zeros(q.shape)\n"
    )
    return tmp_path


def test_run_analysis_rejects_unknown_analyzer():
    with pytest.raises(ValueError, match="unknown analyzers"):
        run_analysis(analyzers=("kernels", "bogus"))


def test_run_analysis_rule_filter(bad_tree):
    findings, _ = run_analysis(analyzers=("hotpaths",), root=bad_tree)
    assert [f.rule for f in findings] == ["HP001"]
    filtered, _ = run_analysis(
        analyzers=("hotpaths",), rules=["KA"], root=bad_tree
    )
    assert filtered == []
    prefixed, _ = run_analysis(
        analyzers=("hotpaths",), rules=["HP"], root=bad_tree
    )
    assert [f.rule for f in prefixed] == ["HP001"]


def test_cli_rules_help_prints_catalog(capsys):
    assert main(["--rules", "help"]) == 0
    out = capsys.readouterr().out
    assert "KA001" in out and "RP001" in out and "HP003" in out


def test_cli_races_pass_with_telemetry(capsys):
    assert main(["--analyzers", "races"]) == 0
    out = capsys.readouterr().out
    assert "no findings" in out
    assert "telemetry: shard_plan:3x3x3/w2 redundant riemann faces" in out


def test_cli_json_format(capsys):
    assert main(["--analyzers", "races", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["findings"] == []
    plans = [race["plan"] for race in payload["telemetry"]["races"]]
    assert "shard_plan:9x9x9/w28" in plans


def test_cli_fails_on_seeded_finding(bad_tree, capsys):
    code = main(
        ["--analyzers", "hotpaths", "--root", str(bad_tree), "--no-baseline"]
    )
    assert code == 1
    assert "HP001" in capsys.readouterr().out


def test_default_baseline_points_at_tools():
    assert DEFAULT_BASELINE == ROOT / "tools" / "analysis_baseline.json"
    assert DEFAULT_BASELINE.exists()


def test_gate_passes_against_checked_in_baseline(capsys):
    assert check_analysis.main(["--check"]) == 0
    out = capsys.readouterr().out
    assert "0 new error(s)" in out
    assert "kernels audited" in out


def test_gate_write_baseline_round_trip(tmp_path, capsys):
    path = tmp_path / "baseline.json"
    assert check_analysis.main(["--write-baseline", "--baseline", str(path)]) == 0
    capsys.readouterr()
    written = load_baseline(path)
    committed = load_baseline(DEFAULT_BASELINE)
    assert written == committed  # the checked-in baseline is fresh
    assert check_analysis.main(["--check", "--baseline", str(path)]) == 0
