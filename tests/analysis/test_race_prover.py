"""Race-prover tests: real plans proven, synthetic bad plans refuted."""

import numpy as np
import pytest

from repro.analysis import (
    PhaseAccess,
    default_shard_plans,
    prove_shard_plan,
    shard_plan_accesses,
)
from repro.mesh.grid import UniformGrid
from repro.parallel.sharding import ShardPlan, make_shard_plan


def grid333():
    return UniformGrid((3, 3, 3), extent=(3.0, 3.0, 3.0))


def synthetic_plan(grid, shards):
    """A ShardPlan built from raw shard arrays (owner derived best-effort)."""
    owner = np.full(grid.n_elements, -1, dtype=np.int64)
    for w, shard in enumerate(shards):
        owner[np.asarray(shard, dtype=np.int64)] = w
    return ShardPlan(
        grid=grid,
        shards=tuple(np.asarray(s, dtype=np.int64) for s in shards),
        owner=owner,
    )


def test_all_default_plans_proven():
    plans = default_shard_plans()
    assert len(plans) == 8
    for plan in plans:
        report = prove_shard_plan(plan)
        assert report.ok, [f.message for f in report.findings]
        assert report.findings == []
        tele = report.telemetry
        assert tele["num_shards"] == plan.num_shards
        assert tele["elements"] == plan.grid.n_elements
        # both phases of both state buffers plus the face traces proven
        assert "predict/qface" in tele["phases_proven_disjoint"]
        assert "correct/states_out" in tele["phases_proven_disjoint"]


def test_redundant_riemann_telemetry_matches_cut_faces():
    for plan in default_shard_plans():
        tele = prove_shard_plan(plan).telemetry
        assert tele["redundant_riemann_faces"] == plan.cut_faces()
        assert tele["redundant_riemann_solves"] == plan.cut_faces()


def test_access_model_shape():
    plan = make_shard_plan(grid333(), 2)
    accesses = shard_plan_accesses(plan)
    assert len(accesses) == 5 * plan.num_shards
    assert all(isinstance(a, PhaseAccess) for a in accesses)
    predict_writes = [
        a for a in accesses if a.phase == "predict" and a.array == "qface"
    ]
    # predict publishes exactly the owned elements, nothing else
    published = np.sort(np.concatenate([a.writes for a in predict_writes]))
    assert np.array_equal(published, np.arange(plan.grid.n_elements))


def test_overlapping_plan_rejected():
    # element 0 owned by both shards, element 26 owned by nobody
    grid = grid333()
    s0 = np.arange(0, 14)
    s1 = np.concatenate([[0], np.arange(14, 26)])
    report = prove_shard_plan(synthetic_plan(grid, (s0, s1)), "bad_plan")
    assert not report.ok
    rules = {f.rule for f in report.findings}
    assert "RP001" in rules  # double-written element 0
    assert "RP003" in rules  # uncovered element 26
    overlap = [f for f in report.findings if f.rule == "RP001"][0]
    assert "[0" in overlap.message and overlap.location == "bad_plan"


def test_coverage_gap_alone_is_rp003_and_rp004():
    # disjoint shards, but element 26 has no owner: the write cover has
    # a hole and its face traces are consumed without being published
    grid = grid333()
    report = prove_shard_plan(
        synthetic_plan(grid, (np.arange(0, 14), np.arange(14, 26)))
    )
    rules = {f.rule for f in report.findings}
    assert rules == {"RP003", "RP004"}
    rp004 = [f for f in report.findings if f.rule == "RP004"]
    assert any("26" in f.message for f in rp004)


def test_single_shard_plan_trivially_race_free():
    plan = make_shard_plan(grid333(), 1)
    report = prove_shard_plan(plan)
    assert report.ok
    assert report.telemetry["redundant_riemann_faces"] == 0


def test_interleaved_shards_still_race_free_but_costly():
    # a deliberately terrible (but legal) partition: even/odd elements.
    # disjoint + covering, so the proof succeeds; nearly every interior
    # face crosses shards, so the telemetry exposes the cost
    grid = grid333()
    evens = np.arange(0, 27, 2)
    odds = np.arange(1, 27, 2)
    plan = synthetic_plan(grid, (evens, odds))
    report = prove_shard_plan(plan)
    assert report.ok
    good = make_shard_plan(grid, 2)
    assert (
        report.telemetry["redundant_riemann_faces"]
        > prove_shard_plan(good).telemetry["redundant_riemann_faces"]
    )


@pytest.mark.parametrize("workers", [2, 4])
def test_report_ok_matches_absence_of_errors(workers):
    plan = make_shard_plan(grid333(), workers)
    report = prove_shard_plan(plan)
    assert report.ok == (not report.findings)


# ---------------------------------------------------------------------------
# async schedule certification (RP005/RP006)
# ---------------------------------------------------------------------------


def test_default_async_schedules_proven():
    from repro.analysis import prove_async_schedule

    for plan in default_shard_plans():
        report = prove_async_schedule(plan)
        assert report.ok, [f.message for f in report.findings]
        tele = report.telemetry
        assert tele["schedule_proven"]
        # the exchange replaces exactly the redundant cut-face solves
        assert tele["exchanged_faces"] == tele["cut_faces"] == plan.cut_faces()


def test_missing_neighbor_edge_refuted_as_rp005():
    import dataclasses

    from repro.analysis import prove_async_schedule
    from repro.parallel import build_dependency_graph

    plan = make_shard_plan(grid333(), 3)
    graph = build_dependency_graph(plan)
    # deliberately broken schedule: shard 0 never waits on anybody
    broken = dataclasses.replace(
        graph,
        neighbors=(frozenset(),) + graph.neighbors[1:],
    )
    report = prove_async_schedule(plan, broken, "tampered")
    assert not report.ok
    findings = [f for f in report.findings if f.rule == "RP005"]
    assert findings and findings[0].location == "tampered"
    assert not report.telemetry["schedule_proven"]


def test_missing_provider_edge_refuted_as_rp005():
    import dataclasses

    from repro.analysis import prove_async_schedule
    from repro.parallel import build_dependency_graph

    plan = make_shard_plan(grid333(), 2)
    graph = build_dependency_graph(plan)
    # neighbors intact, but the finish phase would not wait for fluxes
    broken = dataclasses.replace(
        graph, providers=tuple(frozenset() for _ in graph.providers)
    )
    report = prove_async_schedule(plan, broken)
    contexts = {f.context for f in report.findings if f.rule == "RP005"}
    assert contexts == {"providers"}


def test_swapped_mailbox_ends_refuted_as_rp006():
    import dataclasses

    from repro.analysis import prove_async_schedule
    from repro.parallel import build_dependency_graph

    plan = make_shard_plan(grid333(), 2)
    graph = build_dependency_graph(plan)
    broken = dataclasses.replace(
        graph, exporter=graph.importer, importer=graph.exporter
    )
    report = prove_async_schedule(plan, broken)
    assert {f.rule for f in report.findings} == {"RP006"}
    assert any("exporter" in f.context for f in report.findings)


def test_slotless_and_duplicate_slots_refuted_as_rp006():
    import dataclasses

    from repro.analysis import prove_async_schedule
    from repro.parallel import build_dependency_graph

    plan = make_shard_plan(grid333(), 2)
    graph = build_dependency_graph(plan)
    slot_of = graph.slot_of.copy()
    cut = np.argwhere(slot_of >= 0)
    (d0, e0), (d1, e1), (d2, e2) = cut[0], cut[1], cut[2]
    slot_of[d2, e2] = slot_of[d0, e0]  # two faces share one slot ...
    slot_of[d1, e1] = -1  # ... and a cut face lost its slot
    broken = dataclasses.replace(graph, slot_of=slot_of)
    report = prove_async_schedule(plan, broken)
    messages = " ".join(f.message for f in report.findings)
    assert {f.rule for f in report.findings} == {"RP006"}
    assert "no mailbox slot" in messages
    assert "shared by several faces" in messages


def test_async_access_model_shape():
    from repro.analysis import async_phase_accesses
    from repro.parallel import build_dependency_graph

    plan = make_shard_plan(grid333(), 2)
    graph = build_dependency_graph(plan)
    accesses = async_phase_accesses(plan, graph)
    phases = {a.phase for a in accesses}
    assert phases == {"predict", "riemann", "finish"}
    # every mailbox slot is written by exactly one riemann phase
    writes = np.concatenate(
        [a.writes for a in accesses if a.phase == "riemann" and a.array == "mailbox"]
    )
    assert np.array_equal(np.sort(writes), np.arange(graph.n_slots))
