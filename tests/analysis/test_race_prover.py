"""Race-prover tests: real plans proven, synthetic bad plans refuted."""

import numpy as np
import pytest

from repro.analysis import (
    PhaseAccess,
    default_shard_plans,
    prove_shard_plan,
    shard_plan_accesses,
)
from repro.mesh.grid import UniformGrid
from repro.parallel.sharding import ShardPlan, make_shard_plan


def grid333():
    return UniformGrid((3, 3, 3), extent=(3.0, 3.0, 3.0))


def synthetic_plan(grid, shards):
    """A ShardPlan built from raw shard arrays (owner derived best-effort)."""
    owner = np.full(grid.n_elements, -1, dtype=np.int64)
    for w, shard in enumerate(shards):
        owner[np.asarray(shard, dtype=np.int64)] = w
    return ShardPlan(
        grid=grid,
        shards=tuple(np.asarray(s, dtype=np.int64) for s in shards),
        owner=owner,
    )


def test_all_default_plans_proven():
    plans = default_shard_plans()
    assert len(plans) == 8
    for plan in plans:
        report = prove_shard_plan(plan)
        assert report.ok, [f.message for f in report.findings]
        assert report.findings == []
        tele = report.telemetry
        assert tele["num_shards"] == plan.num_shards
        assert tele["elements"] == plan.grid.n_elements
        # both phases of both state buffers plus the face traces proven
        assert "predict/qface" in tele["phases_proven_disjoint"]
        assert "correct/states_out" in tele["phases_proven_disjoint"]


def test_redundant_riemann_telemetry_matches_cut_faces():
    for plan in default_shard_plans():
        tele = prove_shard_plan(plan).telemetry
        assert tele["redundant_riemann_faces"] == plan.cut_faces()
        assert tele["redundant_riemann_solves"] == plan.cut_faces()


def test_access_model_shape():
    plan = make_shard_plan(grid333(), 2)
    accesses = shard_plan_accesses(plan)
    assert len(accesses) == 5 * plan.num_shards
    assert all(isinstance(a, PhaseAccess) for a in accesses)
    predict_writes = [
        a for a in accesses if a.phase == "predict" and a.array == "qface"
    ]
    # predict publishes exactly the owned elements, nothing else
    published = np.sort(np.concatenate([a.writes for a in predict_writes]))
    assert np.array_equal(published, np.arange(plan.grid.n_elements))


def test_overlapping_plan_rejected():
    # element 0 owned by both shards, element 26 owned by nobody
    grid = grid333()
    s0 = np.arange(0, 14)
    s1 = np.concatenate([[0], np.arange(14, 26)])
    report = prove_shard_plan(synthetic_plan(grid, (s0, s1)), "bad_plan")
    assert not report.ok
    rules = {f.rule for f in report.findings}
    assert "RP001" in rules  # double-written element 0
    assert "RP003" in rules  # uncovered element 26
    overlap = [f for f in report.findings if f.rule == "RP001"][0]
    assert "[0" in overlap.message and overlap.location == "bad_plan"


def test_coverage_gap_alone_is_rp003_and_rp004():
    # disjoint shards, but element 26 has no owner: the write cover has
    # a hole and its face traces are consumed without being published
    grid = grid333()
    report = prove_shard_plan(
        synthetic_plan(grid, (np.arange(0, 14), np.arange(14, 26)))
    )
    rules = {f.rule for f in report.findings}
    assert rules == {"RP003", "RP004"}
    rp004 = [f for f in report.findings if f.rule == "RP004"]
    assert any("26" in f.message for f in rp004)


def test_single_shard_plan_trivially_race_free():
    plan = make_shard_plan(grid333(), 1)
    report = prove_shard_plan(plan)
    assert report.ok
    assert report.telemetry["redundant_riemann_faces"] == 0


def test_interleaved_shards_still_race_free_but_costly():
    # a deliberately terrible (but legal) partition: even/odd elements.
    # disjoint + covering, so the proof succeeds; nearly every interior
    # face crosses shards, so the telemetry exposes the cost
    grid = grid333()
    evens = np.arange(0, 27, 2)
    odds = np.arange(1, 27, 2)
    plan = synthetic_plan(grid, (evens, odds))
    report = prove_shard_plan(plan)
    assert report.ok
    good = make_shard_plan(grid, 2)
    assert (
        report.telemetry["redundant_riemann_faces"]
        > prove_shard_plan(good).telemetry["redundant_riemann_faces"]
    )


@pytest.mark.parametrize("workers", [2, 4])
def test_report_ok_matches_absence_of_errors(workers):
    plan = make_shard_plan(grid333(), workers)
    report = prove_shard_plan(plan)
    assert report.ok == (not report.findings)
