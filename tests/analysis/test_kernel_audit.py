"""Kernel-source auditor tests: clean corpus, seeded mutations flagged."""

import pytest

from repro.analysis import (
    audit_generated_kernels,
    audit_kernel_source,
    default_kernel_corpus,
)
from repro.codegen.lowering import lower_plan
from repro.pde.acoustic import AcousticPDE


@pytest.fixture(scope="module")
def corpus():
    return default_kernel_corpus(orders=(2,))


@pytest.fixture(scope="module")
def acoustic_unit(corpus):
    """(source, plan, pde) of the splitck/acoustic/N2 corpus entry."""
    for location, plan, pde, fused in corpus:
        if location == "kernel:splitck/acoustic/N2":
            return lower_plan(plan, pde), plan, pde
    raise AssertionError("acoustic corpus entry missing")


@pytest.fixture(scope="module")
def fused_unit(corpus):
    """(source, plan, pde) of the fused splitck/acoustic/N2 entry."""
    for location, plan, pde, fused in corpus:
        if location == "kernel:splitck/acoustic/N2/fused":
            assert fused
            return lower_plan(plan, pde, fused=True), plan, pde
    raise AssertionError("fused acoustic corpus entry missing")


def test_default_corpus_shape(corpus):
    locations = [loc for loc, _, _, _ in corpus]
    assert len(corpus) == 16  # 4 PDEs x 1 order x 2 variants x {phase, fused}
    assert "kernel:generic/curvilinear_elastic/N2" in locations
    assert "kernel:generic/curvilinear_elastic/N2/fused" in locations
    assert all(loc.startswith("kernel:") for loc in locations)
    fused_flags = [fused for _, _, _, fused in corpus]
    assert fused_flags.count(True) == fused_flags.count(False)


def test_generated_corpus_audits_clean():
    assert audit_generated_kernels(orders=(2, 3)) == []


def test_audit_without_plan_checks_internal_consistency(acoustic_unit):
    source, _, _ = acoustic_unit
    assert audit_kernel_source(source, "unit") == []


def test_mutated_loop_allocation_flagged(acoustic_unit):
    source, plan, pde = acoustic_unit
    # seed an allocation + foreign attribute into the STP loop body
    needle = "for k in range(q.shape[0]):"
    assert needle in source
    mutated = source.replace(
        needle, needle + "\n        tmp = np.zeros((N, M))", 1
    )
    rules = {
        f.rule
        for f in audit_kernel_source(mutated, "unit", plan=plan, pde=pde)
    }
    assert "KA001" in rules  # allocation in a loop body
    assert "KA006" in rules  # zeros is outside every call whitelist


def test_mutated_attribute_in_loop_flagged(acoustic_unit):
    source, plan, pde = acoustic_unit
    needle = "for k in range(q.shape[0]):"
    mutated = source.replace(
        needle, needle + "\n        tmp = q.astype(float)", 1
    )
    rules = {
        f.rule
        for f in audit_kernel_source(mutated, "unit", plan=plan, pde=pde)
    }
    assert "KA002" in rules


def test_dynamic_loop_bound_flagged(acoustic_unit):
    source, plan, pde = acoustic_unit
    needle = "for k in range(q.shape[0]):"
    mutated = source.replace(needle, "for k in range(len(q)):", 1)
    rules = {
        f.rule
        for f in audit_kernel_source(mutated, "unit", plan=plan, pde=pde)
    }
    assert "KA003" in rules


def test_out_of_range_quantity_subscript_flagged(acoustic_unit):
    source, plan, pde = acoustic_unit
    assert "q[k, 3]" in source  # acoustic quantities live in [0, M=6)
    mutated = source.replace("q[k, 3]", "q[k, 99]")
    findings = audit_kernel_source(mutated, "unit", plan=plan, pde=pde)
    ka004 = [f for f in findings if f.rule == "KA004"]
    assert ka004 and "99" in ka004[0].message


def test_tampered_header_flagged(acoustic_unit):
    source, plan, pde = acoustic_unit
    assert "# temp footprint:" in source
    mutated = "\n".join(
        "# temp footprint: 1 bytes" if line.startswith("# temp footprint:")
        else line
        for line in source.splitlines()
    )
    findings = audit_kernel_source(mutated, "unit", plan=plan, pde=pde)
    assert any(
        f.rule == "KA005" and "footprint" in f.message for f in findings
    )


def test_wrong_pde_token_flagged(acoustic_unit):
    source, plan, _ = acoustic_unit
    findings = audit_kernel_source(
        source, "unit", plan=plan, pde=AcousticPDE()
    )
    assert findings == []  # the right PDE: clean
    mutated = source.replace("pde=acoustic", "pde=elastic", 1)
    findings = audit_kernel_source(
        mutated, "unit", plan=plan, pde=AcousticPDE()
    )
    assert any(f.rule == "KA005" and "pde" in f.message for f in findings)


def test_extra_stp_entry_point_flagged(acoustic_unit):
    source, _, _ = acoustic_unit
    mutated = source + "\n\ndef stp_spacetime(q):\n    return q\n"
    findings = audit_kernel_source(mutated, "unit")
    assert any(f.rule == "KA005" and "entry points" in f.message
               for f in findings)


# ---------------------------------------------------------------------------
# fused modules (face-exchange + fused-step families, rule KA007)
# ---------------------------------------------------------------------------


def test_fused_module_audits_clean(fused_unit):
    source, plan, pde = fused_unit
    assert "def fused_step(" in source
    assert "def riemann_dir_d0(" in source
    assert audit_kernel_source(source, "unit", plan=plan, pde=pde) == []


def test_fused_gemm_schedule_drift_flagged(fused_unit):
    source, plan, pde = fused_unit
    assert "# fused phase gemm schedule:" in source
    mutated = "\n".join(
        "# fused phase gemm schedule: 9x9x9x9"
        if line.startswith("# fused phase gemm schedule:")
        else line
        for line in source.splitlines()
    )
    findings = audit_kernel_source(mutated, "unit", plan=plan, pde=pde)
    assert any(f.rule == "KA007" and "gemm" in f.message for f in findings)


def test_fused_temp_footprint_drift_flagged(fused_unit):
    source, plan, pde = fused_unit
    mutated = "\n".join(
        "# fused phase temp footprint: 1 bytes"
        if line.startswith("# fused phase temp footprint:")
        else line
        for line in source.splitlines()
    )
    findings = audit_kernel_source(mutated, "unit", plan=plan, pde=pde)
    assert any(
        f.rule == "KA007" and "footprint" in f.message for f in findings
    )


def test_fused_header_line_missing_flagged(fused_unit):
    source, _, _ = fused_unit
    mutated = "\n".join(
        line for line in source.splitlines()
        if not line.startswith("# fused phase temp footprint:")
    )
    findings = audit_kernel_source(mutated, "unit")
    assert any(
        f.rule == "KA007" and "lacks" in f.message for f in findings
    )


def test_fused_phase_list_drift_flagged(fused_unit):
    source, _, _ = fused_unit
    mutated = source.replace(
        "# fused phases: predict+riemann+correct",
        "# fused phases: predict+correct", 1,
    )
    findings = audit_kernel_source(mutated, "unit")
    assert any(
        f.rule == "KA007" and "phases" in f.message for f in findings
    )


def test_fused_kernel_call_outside_whitelist_flagged(fused_unit):
    source, plan, pde = fused_unit
    # fused_step may only compose its declared sub-phases
    needle = "    fused_predict("
    assert needle in source
    mutated = source.replace(
        needle, "    wave_speed(qblk[0], 0)\n" + needle, 1
    )
    findings = audit_kernel_source(mutated, "unit", plan=plan, pde=pde)
    assert any(
        f.rule == "KA006" and f.context == "fused_step" for f in findings
    )
