"""Unit tests for the linear PDE systems."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pde import AcousticPDE, AdvectionPDE, CurvilinearElasticPDE, ElasticPDE


def random_state(pde, shape=(7,), seed=0, rho=2.0, cp=3.0, cs=1.5):
    """Random full node vectors with physical parameters."""
    rng = np.random.default_rng(seed)
    variables = rng.standard_normal(shape + (pde.nvar,))
    if pde.nparam == 0:
        return pde.embed(variables)
    if isinstance(pde, AcousticPDE):
        params = np.broadcast_to([rho, cp], shape + (2,))
    elif isinstance(pde, CurvilinearElasticPDE):
        params = CurvilinearElasticPDE.identity_parameters(shape, rho, cp, cs)
    else:
        params = np.broadcast_to([rho, cp, cs], shape + (3,))
    return pde.embed(variables, params)


ALL_PDES = [AdvectionPDE(nvar=3), AcousticPDE(), ElasticPDE(), CurvilinearElasticPDE()]


@pytest.mark.parametrize("pde", ALL_PDES, ids=lambda p: p.name)
@pytest.mark.parametrize("d", [0, 1, 2])
def test_flux_is_linear_in_variables(pde, d):
    q1 = random_state(pde, seed=1)
    q2 = random_state(pde, seed=2)
    qsum = q1.copy()
    qsum[..., : pde.nvar] = 2.0 * q1[..., : pde.nvar] + 3.0 * q2[..., : pde.nvar]
    f = pde.flux(qsum, d)
    expected = 2.0 * pde.flux(q1, d) + 3.0 * pde.flux(q2, d)
    np.testing.assert_allclose(f, expected, atol=1e-12)


@pytest.mark.parametrize("pde", ALL_PDES, ids=lambda p: p.name)
@pytest.mark.parametrize("d", [0, 1, 2])
def test_flux_vanishes_on_parameter_slots(pde, d):
    q = random_state(pde)
    f = pde.flux(q, d)
    assert f.shape == q.shape
    if pde.nparam:
        np.testing.assert_array_equal(f[..., pde.nvar :], 0.0)


@pytest.mark.parametrize("pde", ALL_PDES, ids=lambda p: p.name)
@pytest.mark.parametrize("d", [0, 1, 2])
def test_flux_matrix_matches_flux(pde, d):
    q = random_state(pde, shape=())
    mat = pde.flux_matrix(q[pde.nvar :], d)
    np.testing.assert_allclose(mat @ q * 1.0, pde.flux(q, d), atol=1e-12)


@pytest.mark.parametrize("pde", ALL_PDES, ids=lambda p: p.name)
def test_flux_matrix_is_hyperbolic(pde):
    """Any normal combination of flux matrices has real eigenvalues."""
    q = random_state(pde, shape=())
    n = np.array([0.36, 0.48, 0.8])
    a = sum(n[d] * pde.flux_matrix(q[pde.nvar :], d) for d in range(3))
    eig = np.linalg.eigvals(a[: pde.nvar, : pde.nvar])
    np.testing.assert_allclose(eig.imag, 0.0, atol=1e-9)


def test_elastic_eigenvalues_are_wave_speeds():
    pde = ElasticPDE()
    rho, cp, cs = 2.6, 6.0, 3.464
    params = np.array([rho, cp, cs])
    a = pde.flux_matrix(params, 0)[:9, :9]
    eig = np.sort(np.real(np.linalg.eigvals(a)))
    # eigenvalues: {-cp, -cs, -cs, 0, 0, 0, cs, cs, cp}
    np.testing.assert_allclose(eig[0], -cp, atol=1e-9)
    np.testing.assert_allclose(eig[1:3], -cs, atol=1e-9)
    np.testing.assert_allclose(eig[3:6], 0.0, atol=1e-9)
    np.testing.assert_allclose(eig[8], cp, atol=1e-9)


def test_acoustic_eigenvalues():
    pde = AcousticPDE()
    params = np.array([1.2, 4.0])
    a = pde.flux_matrix(params, 2)[:4, :4]
    eig = np.sort(np.real(np.linalg.eigvals(a)))
    np.testing.assert_allclose(eig, [-4.0, 0.0, 0.0, 4.0], atol=1e-9)


def test_curvilinear_identity_metric_reduces_to_elastic():
    curv, ela = CurvilinearElasticPDE(), ElasticPDE()
    shape = (5,)
    rng = np.random.default_rng(3)
    variables = rng.standard_normal(shape + (9,))
    qc = curv.embed(variables, CurvilinearElasticPDE.identity_parameters(shape, 2.0, 3.0, 1.5))
    qe = ela.embed(variables, np.broadcast_to([2.0, 3.0, 1.5], shape + (3,)))
    for d in range(3):
        np.testing.assert_allclose(
            curv.flux(qc, d)[..., :9], ela.flux(qe, d)[..., :9], atol=1e-12
        )


def test_curvilinear_metric_mixes_directions():
    curv = CurvilinearElasticPDE()
    params = CurvilinearElasticPDE.identity_parameters((), 2.0, 3.0, 1.5)
    # Swap x and y rows of the metric.
    g = np.zeros(9)
    g[1] = 1.0  # G[0,1] = 1
    g[3] = 1.0  # G[1,0] = 1
    g[8] = 1.0  # G[2,2] = 1
    params[3:12] = g
    rng = np.random.default_rng(4)
    q = curv.embed(rng.standard_normal(9), params)
    ela = ElasticPDE()
    qe = ela.embed(q[:9], q[9:12])
    np.testing.assert_allclose(curv.flux(q, 0)[:9], ela.flux(qe, 1)[:9], atol=1e-12)


def test_advection_exact_solution_translates():
    pde = AdvectionPDE(velocity=(1.0, 2.0, 0.0), nvar=1)
    pts = np.random.default_rng(0).random((10, 3))

    def init(x):
        return np.sin(2 * np.pi * x[..., 0])[..., None]

    sol = pde.exact_solution(init, pts, t=0.25)
    np.testing.assert_allclose(sol, init(pts - np.array([0.25, 0.5, 0.0])))


def test_acoustic_plane_wave_satisfies_pde():
    """Finite-difference check that the analytic plane wave solves the system."""
    rho, c = 1.3, 2.0
    k = np.array([2 * np.pi, 0.0, 0.0])
    sol = AcousticPDE.plane_wave(k, rho, c)
    pde = AcousticPDE()
    x0 = np.array([0.3, 0.4, 0.5])
    t0, eps = 0.2, 1e-6
    qdot = (sol(x0, t0 + eps) - sol(x0, t0 - eps)) / (2 * eps)
    div = np.zeros(4)
    for d in range(3):
        dx = np.zeros(3)
        dx[d] = eps
        qp = pde.embed(sol(x0 + dx, t0), [rho, c])
        qm = pde.embed(sol(x0 - dx, t0), [rho, c])
        div += (pde.flux(qp, d)[:4] - pde.flux(qm, d)[:4]) / (2 * eps)
    np.testing.assert_allclose(qdot, -div, atol=1e-5)


@pytest.mark.parametrize("mode", ["p", "s"])
def test_elastic_plane_wave_satisfies_pde(mode):
    rho, cp, cs = 2.6, 6.0, 3.0
    k = np.array([2 * np.pi, 4 * np.pi, 0.0])
    sol = ElasticPDE.plane_wave(k, rho, cp, cs, mode=mode)
    pde = ElasticPDE()
    x0 = np.array([0.25, 0.125, 0.75])
    t0, eps = 0.1, 1e-6
    qdot = (sol(x0, t0 + eps) - sol(x0, t0 - eps)) / (2 * eps)
    div = np.zeros(9)
    for d in range(3):
        dx = np.zeros(3)
        dx[d] = eps
        qp = pde.embed(sol(x0 + dx, t0), [rho, cp, cs])
        qm = pde.embed(sol(x0 - dx, t0), [rho, cp, cs])
        div += (pde.flux(qp, d)[:9] - pde.flux(qm, d)[:9]) / (2 * eps)
    np.testing.assert_allclose(qdot, -div, atol=1e-4)


def test_reflect_flips_normal_velocity():
    pde = ElasticPDE()
    q = random_state(pde, shape=())
    for d in range(3):
        ghost = pde.reflect(q, d)
        assert ghost[d] == -q[d]
        np.testing.assert_array_equal(ghost[3:], q[3:])


def test_embed_split_roundtrip():
    pde = ElasticPDE()
    rng = np.random.default_rng(1)
    variables = rng.standard_normal((4, 9))
    params = rng.random((4, 3)) + 1.0
    q = pde.embed(variables, params)
    v, p = pde.split(q)
    np.testing.assert_array_equal(v, variables)
    np.testing.assert_array_equal(p, params)


def test_embed_requires_parameters():
    with pytest.raises(ValueError):
        ElasticPDE().embed(np.zeros(9))


def test_flux_flops_positive():
    for pde in ALL_PDES:
        assert pde.flux_flops_per_node(0) > 0
        assert pde.ncp_flops_per_node(0) == 0  # none of these use NCP terms


def test_max_wave_speed():
    pde = ElasticPDE()
    q = random_state(pde, shape=(3,), cp=5.5)
    np.testing.assert_allclose(pde.max_wave_speed(q), 5.5)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**31), d=st.integers(0, 2))
def test_elastic_flux_matrix_linearity_property(seed, d):
    pde = ElasticPDE()
    q = random_state(pde, shape=(), seed=seed)
    mat = pde.flux_matrix(q[9:], d)
    np.testing.assert_allclose(mat @ q, pde.flux(q, d), atol=1e-10)
