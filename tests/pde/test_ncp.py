"""Tests for the non-conservative-product formulation.

These exercise the kernels' ``computeNcp`` branches end-to-end: the
same physics written with fluxes and written with NCP terms must give
identical predictor output.
"""

import numpy as np
import pytest

from repro.core.reference import ReferenceCK
from repro.core.spec import KernelSpec
from repro.core.variants import KERNEL_CLASSES, make_kernel
from repro.pde import AcousticPDE, ElasticNCPPDE, ElasticPDE, NCPWrapperPDE


def test_ncp_matrix_equals_inner_flux_matrix():
    ncp = ElasticNCPPDE()
    params = np.array([2.7, 6.0, 3.464])
    for d in range(3):
        np.testing.assert_allclose(
            ncp.ncp_matrix(params, d), ElasticPDE().flux_matrix(params, d)
        )
        np.testing.assert_array_equal(ncp.flux_matrix(params, d), 0.0)


def test_ncp_is_linear_in_gradient():
    ncp = ElasticNCPPDE()
    q = ncp.example_state((5,))
    rng = np.random.default_rng(0)
    g1 = rng.standard_normal(q.shape)
    g2 = rng.standard_normal(q.shape)
    np.testing.assert_allclose(
        ncp.ncp(2 * g1 + g2, q, 1),
        2 * ncp.ncp(g1, q, 1) + ncp.ncp(g2, q, 1),
        atol=1e-12,
    )


def test_flux_is_zero_and_flops_shift_to_ncp():
    ncp = NCPWrapperPDE(AcousticPDE())
    q = ncp.example_state((4,))
    np.testing.assert_array_equal(ncp.flux(q, 0), 0.0)
    assert ncp.flux_flops_per_node(0) == 0
    assert ncp.ncp_flops_per_node(0) == AcousticPDE().flux_flops_per_node(0)
    assert ncp.has_ncp


@pytest.mark.parametrize("variant", list(KERNEL_CLASSES))
def test_ncp_predictor_matches_conservative_form(variant):
    """Flux form and NCP form of the same system agree to round-off."""
    order = 4
    flux_pde = AcousticPDE()
    ncp_pde = NCPWrapperPDE(AcousticPDE())
    spec = KernelSpec(order=order, nvar=4, nparam=2, arch="skx")
    q = flux_pde.example_state((order,) * 3, np.random.default_rng(7))
    res_flux = make_kernel(variant, spec, flux_pde).predictor(q, dt=0.01, h=0.5)
    res_ncp = make_kernel(variant, spec, ncp_pde).predictor(q, dt=0.01, h=0.5)
    np.testing.assert_allclose(res_ncp.qavg, res_flux.qavg, atol=1e-11)
    np.testing.assert_allclose(res_ncp.vavg, res_flux.vavg, atol=1e-11)


@pytest.mark.parametrize("variant", list(KERNEL_CLASSES))
def test_ncp_elastic_matches_dense_reference(variant):
    pde = ElasticNCPPDE()
    spec = KernelSpec(order=4, nvar=9, nparam=3, arch="skx")
    q = pde.example_state((4,) * 3, np.random.default_rng(3))
    result = make_kernel(variant, spec, pde).predictor(q, dt=0.005, h=0.25)
    ref = ReferenceCK(spec, pde).predictor(q, dt=0.005, h=0.25)
    np.testing.assert_allclose(result.qavg, ref.qavg, atol=1e-12)
    np.testing.assert_allclose(result.vavg, ref.vavg, atol=1e-12)


def test_ncp_plans_record_gradq_machinery():
    """With NCP terms the plans grow gradQ buffers and extra sweeps."""
    pde = ElasticNCPPDE()
    spec = KernelSpec(order=4, nvar=9, nparam=3, arch="skx")
    plan = make_kernel("splitck", spec, pde).build_plan()
    assert "gradQ" in plan.buffers
    assert any(op.name.startswith("ncp_") for op in plan.ops if hasattr(op, "name"))
    # flux-form plans have no gradQ at all
    flux_plan = make_kernel(
        "splitck", KernelSpec(order=4, nvar=9, nparam=3, arch="skx"), ElasticPDE()
    ).build_plan()
    assert "gradQ" not in flux_plan.buffers


def test_reflect_delegates():
    pde = ElasticNCPPDE()
    q = pde.example_state(())
    np.testing.assert_array_equal(pde.reflect(q, 0)[0], -q[0])
