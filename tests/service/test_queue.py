"""The bounded priority queue: ordering, admission, cancellation, close."""

import threading

import pytest

from repro.service.queue import AdmissionError, JobQueue


class FakeJob:
    def __init__(self, name, priority=0):
        self.name = name
        self.priority = priority

    def __repr__(self):
        return f"FakeJob({self.name})"


def test_fifo_within_priority():
    q = JobQueue(max_pending=8)
    jobs = [FakeJob(i) for i in range(4)]
    for job in jobs:
        q.submit(job)
    assert [q.pop(timeout=0) for _ in jobs] == jobs


def test_higher_priority_pops_first():
    q = JobQueue(max_pending=8)
    low = FakeJob("low", priority=0)
    high = FakeJob("high", priority=5)
    mid = FakeJob("mid", priority=2)
    for job in (low, high, mid):
        q.submit(job)
    assert [q.pop(timeout=0) for _ in range(3)] == [high, mid, low]


def test_saturation_rejects_with_reason():
    q = JobQueue(max_pending=2)
    q.submit(FakeJob(0))
    q.submit(FakeJob(1))
    with pytest.raises(AdmissionError) as excinfo:
        q.submit(FakeJob(2))
    assert "saturated" in excinfo.value.reason
    assert "max_pending=2" in excinfo.value.reason


def test_drop_frees_capacity_and_skips_entry():
    q = JobQueue(max_pending=2)
    a, b = FakeJob("a"), FakeJob("b")
    q.submit(a)
    q.submit(b)
    assert q.drop(a) is True
    assert q.drop(a) is False  # already dropped
    assert len(q) == 1
    q.submit(FakeJob("c"))  # capacity freed by the drop
    assert q.pop(timeout=0) is b


def test_pop_timeout_returns_none():
    q = JobQueue()
    assert q.pop(timeout=0.01) is None


def test_close_rejects_then_drains():
    q = JobQueue()
    job = FakeJob("last")
    q.submit(job)
    q.close()
    with pytest.raises(AdmissionError, match="closed"):
        q.submit(FakeJob("late"))
    # already-admitted work still drains ...
    assert q.pop(timeout=0) is job
    # ... then poppers get the shutdown signal
    assert q.pop() is None


def test_close_wakes_blocked_popper():
    q = JobQueue()
    results = []
    popper = threading.Thread(target=lambda: results.append(q.pop()))
    popper.start()
    q.close()
    popper.join(timeout=5)
    assert not popper.is_alive()
    assert results == [None]


def test_max_pending_must_be_positive():
    with pytest.raises(ValueError, match="max_pending"):
        JobQueue(max_pending=0)
