"""SolverService end-to-end: slots, streaming, cache sharing, degradation.

The acceptance contract of the service layer (``docs/service.md``):

* admission control rejects with a reason once slots + pending are
  saturated, while in-flight jobs keep streaming StepRecords;
* jobs finish bitwise identical to standalone solver runs of the same
  spec (the service adds orchestration, never numerics);
* N identical compiled-backend jobs pay kernel compilation once
  (later jobs report ~zero ``compile_s``);
* a worker crash degrades one job (``degraded=True``) without
  poisoning other jobs or the shared plan cache;
* one job's exception fails that job only -- the slot thread survives.
"""

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.codegen.compiled import clear_plan_registry
from repro.service import (
    AdmissionError,
    JobState,
    SolverService,
    SpecError,
)
from repro.service import session as session_module
from repro.service.protocol import JobSpec
from repro.service.session import build_solver, state_digest

QUICK = {"scenario": "gaussian", "elements": 2, "order": 2, "steps": 2}


def _wait_for(predicate, timeout=30.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.005)
    raise AssertionError(f"timed out waiting for {message}")


def _solo_digest(spec_dict, steps=None):
    """State digest of a standalone (service-free) run of the same spec."""
    spec = JobSpec.from_dict(spec_dict)
    solver = build_solver(spec)
    try:
        for _ in range(steps if steps is not None else spec.steps):
            solver.step(spec.dt)
        return state_digest(solver)
    finally:
        solver.close()


# ---------------------------------------------------------------------------
# basic lifecycle
# ---------------------------------------------------------------------------


def test_submit_runs_to_done_and_matches_standalone():
    with SolverService(slots=2) as svc:
        handle = svc.submit(QUICK)
        result = handle.result(timeout=120)
    assert result["state"] == JobState.DONE
    assert handle.state == JobState.DONE
    assert result["steps"] == QUICK["steps"]
    assert result["degraded"] is False
    # orchestration adds zero numerics: bitwise identical to a solo run
    assert result["state_sha256"] == _solo_digest(QUICK)


def test_event_stream_shape():
    with SolverService(slots=1) as svc:
        handle = svc.submit(dict(QUICK, label="streamed"))
        handle.result(timeout=120)
        events = list(handle.events(timeout=5))
    kinds = [e["kind"] for e in events]
    assert kinds[0] == "state"  # pending
    assert kinds[-1] == "state"  # terminal
    assert kinds.count("step") == QUICK["steps"]
    assert kinds.count("receiver") == QUICK["steps"]  # gaussian: 1 receiver
    assert kinds.count("result") == 1
    # per-job seq numbers are strictly increasing
    seqs = [e["seq"] for e in events]
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
    step_events = [e for e in events if e["kind"] == "step"]
    assert step_events[0]["record"]["backend"] == "numpy"
    assert step_events[0]["record"]["dt"] > 0.0
    assert all(e["job_id"] == handle.job_id for e in events)


def test_invalid_spec_rejected_before_admission():
    with SolverService(slots=1) as svc:
        with pytest.raises(SpecError, match="unknown scenario"):
            svc.submit({"scenario": "nope"})
        assert svc.stats()["jobs"] == {}


def test_failed_job_does_not_poison_the_slot(monkeypatch):
    real_build = session_module.build_solver

    def flaky_build(spec):
        if spec.label == "boom":
            raise RuntimeError("injected build failure")
        return real_build(spec)

    monkeypatch.setattr(session_module, "build_solver", flaky_build)
    with SolverService(slots=1) as svc:
        bad = svc.submit(dict(QUICK, label="boom"))
        good = svc.submit(QUICK)
        with pytest.raises(RuntimeError, match="injected build failure"):
            bad.result(timeout=120)
        assert bad.state == JobState.FAILED
        # the slot thread survived and ran the next job normally
        assert good.result(timeout=120)["state"] == JobState.DONE


# ---------------------------------------------------------------------------
# streaming while in flight + saturation
# ---------------------------------------------------------------------------


def test_saturation_rejects_while_inflight_job_streams(monkeypatch):
    """The headline scenario: full slots + full queue -> reasoned
    rejection, while the running job streams StepRecords and finishes
    bitwise identical to a standalone run."""
    gate = threading.Event()
    real_build = session_module.build_solver

    def gated_build(spec):
        solver = real_build(spec)
        if spec.label == "blocker":
            solver.add_step_listener(lambda record: gate.wait(timeout=60))
        return solver

    monkeypatch.setattr(session_module, "build_solver", gated_build)
    blocker_spec = dict(QUICK, steps=3, label="blocker")
    with SolverService(slots=1, max_pending=1) as svc:
        blocker = svc.submit(blocker_spec)
        sub = blocker.stream.subscribe()
        _wait_for(
            lambda: blocker.state == JobState.RUNNING,
            message="blocker to take the slot",
        )
        queued = svc.submit(QUICK)  # fills the pending queue
        with pytest.raises(AdmissionError) as excinfo:
            svc.submit(QUICK)
        assert "saturated" in excinfo.value.reason
        # telemetry streams while the job is mid-flight (not terminal)
        _wait_for(
            lambda: not sub.empty(), message="streamed events from blocker"
        )
        assert blocker.state == JobState.RUNNING
        stats = svc.stats()
        assert stats["pending"] == 1
        assert stats["jobs"][JobState.RUNNING] == 1
        gate.set()
        assert blocker.result(timeout=120)["state"] == JobState.DONE
        assert queued.result(timeout=120)["state"] == JobState.DONE
    assert blocker.result()["state_sha256"] == _solo_digest(blocker_spec)


def test_priorities_order_pending_jobs(monkeypatch):
    gate = threading.Event()
    real_build = session_module.build_solver

    def gated_build(spec):
        solver = real_build(spec)
        if spec.label == "blocker":
            solver.add_step_listener(lambda record: gate.wait(timeout=60))
        return solver

    started = []
    original_gated = gated_build

    def recording_build(spec):
        started.append(spec.label)
        return original_gated(spec)

    monkeypatch.setattr(session_module, "build_solver", recording_build)
    with SolverService(slots=1, max_pending=4) as svc:
        blocker = svc.submit(dict(QUICK, label="blocker"))
        _wait_for(lambda: blocker.state == JobState.RUNNING, message="blocker")
        handles = [
            svc.submit(dict(QUICK, label=label, priority=priority))
            for label, priority in [("low", 0), ("urgent", 9), ("mid", 3)]
        ]
        gate.set()
        for handle in handles:
            assert handle.result(timeout=120)["state"] == JobState.DONE
        blocker.result(timeout=120)
    # the single slot drained the backlog highest-priority-first
    assert started == ["blocker", "urgent", "mid", "low"]


def test_cancel_pending_job_never_runs(monkeypatch):
    gate = threading.Event()
    real_build = session_module.build_solver

    def gated_build(spec):
        solver = real_build(spec)
        if spec.label == "blocker":
            solver.add_step_listener(lambda record: gate.wait(timeout=60))
        return solver

    monkeypatch.setattr(session_module, "build_solver", gated_build)
    with SolverService(slots=1, max_pending=2) as svc:
        blocker = svc.submit(dict(QUICK, label="blocker"))
        _wait_for(lambda: blocker.state == JobState.RUNNING, message="blocker")
        pending = svc.submit(QUICK)
        assert pending.cancel() is True
        # cancellation is immediate: no slot needed
        result = pending.result(timeout=5)
        assert result["state"] == JobState.CANCELLED
        assert result["steps"] == 0
        assert pending.cancel() is False  # already terminal
        gate.set()
        blocker.result(timeout=120)


def test_cancel_running_job_stops_at_step_boundary(monkeypatch):
    gate = threading.Event()
    first_step_done = threading.Event()
    real_build = session_module.build_solver

    def gated_build(spec):
        solver = real_build(spec)

        def listener(record):
            first_step_done.set()
            gate.wait(timeout=60)

        solver.add_step_listener(listener)
        return solver

    monkeypatch.setattr(session_module, "build_solver", gated_build)
    with SolverService(slots=1) as svc:
        handle = svc.submit(dict(QUICK, steps=50))
        assert first_step_done.wait(timeout=60)
        assert handle.cancel() is True
        gate.set()
        result = handle.result(timeout=120)
    assert result["state"] == JobState.CANCELLED
    # partial results stand: it ran some steps, nowhere near all 50
    assert 1 <= result["steps"] < 50


# ---------------------------------------------------------------------------
# shared plan cache
# ---------------------------------------------------------------------------


def test_identical_jobs_pay_compilation_once():
    clear_plan_registry()
    spec = dict(QUICK, backend="generated")
    with SolverService(slots=2) as svc:
        first = svc.submit(spec).result(timeout=120)
        later = [svc.submit(spec).result(timeout=120) for _ in range(3)]
        cache = svc.stats()["plan_cache"]
    assert first["compile_s"] > 0.0
    for result in later:
        assert result["compile_s"] <= 0.05 * first["compile_s"]
    assert cache["module_builds"] == 1
    assert cache["hits"] > 0
    # and the compiled path is still bitwise vs itself run standalone
    assert first["state_sha256"] == _solo_digest(spec)
    assert later[0]["state_sha256"] == first["state_sha256"]


def test_warm_prebuilds_the_cache():
    clear_plan_registry()
    spec = dict(QUICK, backend="generated")
    with SolverService(slots=1) as svc:
        assert svc.warm(spec) is True
        assert svc.stats()["plan_cache"]["module_builds"] == 1
        result = svc.submit(spec).result(timeout=120)
        assert result["compile_s"] == 0.0  # paid by warm(), not the job
        assert svc.warm(dict(QUICK, backend="numpy")) is False


# ---------------------------------------------------------------------------
# graceful degradation
# ---------------------------------------------------------------------------


def test_worker_crash_degrades_one_job_only(monkeypatch):
    """SIGKILL a worker of one parallel job: that job finishes
    ``degraded=True``; a concurrent serial job and later cache users
    are untouched."""
    real_build = session_module.build_solver

    def sabotaged_build(spec):
        solver = real_build(spec)
        if spec.label == "victim":

            def kill_once(record, done=[]):
                if not done:
                    done.append(True)
                    os.kill(
                        solver._pool._processes[0].pid, signal.SIGKILL
                    )

            solver.add_step_listener(kill_once)
        return solver

    monkeypatch.setattr(session_module, "build_solver", sabotaged_build)
    victim_spec = dict(
        QUICK, elements=3, order=3, steps=3, num_workers=2,
        on_worker_failure="serial", label="victim",
    )
    bystander_spec = dict(QUICK, steps=3)
    with SolverService(slots=2) as svc:
        victim = svc.submit(victim_spec)
        bystander = svc.submit(bystander_spec)
        victim_result = victim.result(timeout=300)
        bystander_result = bystander.result(timeout=300)
    assert victim_result["state"] == JobState.DONE
    assert victim_result["degraded"] is True
    assert bystander_result["degraded"] is False
    # the degraded run still matches the standalone serial answer
    solo = dict(victim_spec)
    solo.pop("num_workers")
    solo["label"] = "solo"
    assert victim_result["state_sha256"] == _solo_digest(solo)
    assert bystander_result["state_sha256"] == _solo_digest(bystander_spec)
    # a crash event made it into the victim's stream
    records = [
        e["record"] for e in victim.events(timeout=5) if e["kind"] == "step"
    ]
    assert any(r["mode"] == "serial-fallback" for r in records)
    assert all(r["mode"] == "serial" for r in records[-1:])


# ---------------------------------------------------------------------------
# shutdown
# ---------------------------------------------------------------------------


def test_close_refuses_new_but_drains_admitted():
    svc = SolverService(slots=1)
    handle = svc.submit(QUICK)
    svc.close(timeout=120)
    with pytest.raises(AdmissionError, match="closed"):
        svc.submit(QUICK)
    assert handle.result(timeout=5)["state"] == JobState.DONE
    svc.close()  # idempotent
