"""JobSpec validation: every rejection is reasoned, every field pinned.

The admission path's first line of defense is
:meth:`repro.service.protocol.JobSpec.from_dict`: garbage specs must be
rejected with a :class:`~repro.service.protocol.SpecError` naming the
offending key *before* any solver slot is touched, and accepted specs
must come out fully pinned -- in particular the backend, which is
resolved from ``"auto"`` + ``REPRO_BACKEND`` exactly once at
validation time.
"""

import pytest

from repro.service.protocol import JobSpec, SpecError, job_event


def test_defaults_validate():
    spec = JobSpec.from_dict({})
    assert spec.scenario == "gaussian"
    assert spec.steps == 2
    assert spec.backend == "numpy"  # conftest pins REPRO_BACKEND=numpy


def test_jobspec_passthrough():
    spec = JobSpec.from_dict({"order": 2})
    assert JobSpec.from_dict(spec) is spec


def test_non_dict_rejected():
    with pytest.raises(SpecError, match="dict or JobSpec"):
        JobSpec.from_dict(["scenario", "gaussian"])


def test_unknown_key_named():
    with pytest.raises(SpecError, match="ordr"):
        JobSpec.from_dict({"ordr": 3})


def test_unknown_scenario_rejected():
    with pytest.raises(SpecError, match="unknown scenario"):
        JobSpec.from_dict({"scenario": "tpv5"})


@pytest.mark.parametrize("key", ["elements", "order", "steps"])
@pytest.mark.parametrize("bad", [0, -1, 1.5, "2", True])
def test_positive_int_fields(key, bad):
    with pytest.raises(SpecError, match=key):
        JobSpec.from_dict({key: bad})


def test_order_ceiling():
    with pytest.raises(SpecError, match="order must be <= 9"):
        JobSpec.from_dict({"order": 10})


@pytest.mark.parametrize("bad", [0.0, -1.0])
def test_dt_must_be_positive(bad):
    with pytest.raises(SpecError, match="dt"):
        JobSpec.from_dict({"dt": bad})


def test_dt_coerced_to_float():
    assert JobSpec.from_dict({"dt": 1}).dt == 1.0


@pytest.mark.parametrize("key", ["batch_size", "num_workers"])
def test_optional_int_fields(key):
    assert getattr(JobSpec.from_dict({key: None}), key) is None
    assert getattr(JobSpec.from_dict({key: 2}), key) == 2
    with pytest.raises(SpecError, match=key):
        JobSpec.from_dict({key: 0})


@pytest.mark.parametrize(
    "key, bad",
    [
        ("stepping", "lockstep"),
        ("fuse", "yes"),
        ("on_worker_failure", "retry"),
        ("face_sweep", 1),
        ("priority", 1.5),
    ],
)
def test_enum_and_type_fields(key, bad):
    with pytest.raises(SpecError, match=key):
        JobSpec.from_dict({key: bad})


def test_backend_pinned_at_validation(monkeypatch):
    """``"auto"`` + env override resolve to a concrete name, once."""
    monkeypatch.setenv("REPRO_BACKEND", "generated")
    spec = JobSpec.from_dict({"backend": "auto"})
    assert spec.backend == "generated"
    # a later env change cannot re-route the admitted job
    monkeypatch.setenv("REPRO_BACKEND", "numpy")
    assert spec.backend == "generated"


def test_bad_backend_is_spec_error(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    with pytest.raises(SpecError, match="unknown backend"):
        JobSpec.from_dict({"backend": "fortran"})


def test_identity_groups_cache_sharers():
    a = JobSpec.from_dict({"backend": "generated", "order": 3})
    b = JobSpec.from_dict({"backend": "generated", "order": 3, "steps": 9})
    c = JobSpec.from_dict({"backend": "generated", "order": 4})
    assert a.identity() == b.identity()
    assert a.identity() != c.identity()


def test_solver_kwargs_round_trip():
    spec = JobSpec.from_dict({"num_workers": 2, "stepping": "async"})
    kwargs = spec.solver_kwargs()
    assert kwargs["num_workers"] == 2
    assert kwargs["stepping"] == "async"
    assert set(kwargs) == {
        "batch_size", "num_workers", "face_sweep", "stepping", "fuse",
        "backend", "on_worker_failure",
    }


def test_job_event_shape():
    event = job_event("step", "job-0001", 7, record={"dt": 0.1})
    assert event == {
        "kind": "step", "job_id": "job-0001", "seq": 7, "record": {"dt": 0.1},
    }
