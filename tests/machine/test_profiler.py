"""Tests for the VTune-like profiler facade and plan composition."""

import pytest

from repro.codegen.plan import GemmOp, PointwiseOp, TransposeOp
from repro.harness.experiments import paper_spec, stp_plan
from repro.machine.profiler import Profiler, engine_overhead_plan, merge_plans


def test_merge_plans_prefixes_buffers():
    a = stp_plan("splitck", 4)
    b = engine_overhead_plan(paper_spec(4))
    merged = merge_plans(a, b)
    assert len(merged.ops) == len(a.ops) + len(b.ops)
    assert "p0.qavg" in merged.buffers
    assert "p1.element" in merged.buffers
    # every op references only merged buffer names
    for op in merged.ops:
        for acc in op.accesses():
            assert acc.buffer in merged.buffers


def test_merge_remaps_all_op_kinds():
    plan = stp_plan("aosoa", 4)
    merged = merge_plans(plan)
    kinds = {type(op) for op in merged.ops}
    assert GemmOp in kinds and PointwiseOp in kinds and TransposeOp in kinds


def test_merge_requires_plans():
    with pytest.raises(ValueError):
        merge_plans()


def test_engine_overhead_is_scalar():
    plan = engine_overhead_plan(paper_spec(6))
    counts = plan.flop_counts()
    assert counts.scalar == counts.total > 0


def test_profile_produces_paper_metrics():
    profiler = Profiler()
    perf = profiler.profile(stp_plan("splitck", 5))
    assert 0 < perf.percent_available < 100
    assert 0 < perf.memory_stall_pct < 100
    assert perf.freq_ghz == pytest.approx(1.9)  # AVX-512-heavy kernel


def test_profile_application_includes_overhead():
    profiler = Profiler()
    stp = stp_plan("aosoa", 5)
    app = profiler.profile_application(stp, engine_overhead_plan(paper_spec(5)))
    kernel_only = profiler.profile(stp)
    # overhead adds scalar FLOPs -> scalar fraction rises
    assert app.flops.scalar_fraction > kernel_only.flops.scalar_fraction


def test_footprint_reduction_improves_stalls():
    """The paper's core claim, end to end through the model."""
    profiler = Profiler()
    log = profiler.profile(stp_plan("log", 9))
    split = profiler.profile(stp_plan("splitck", 9))
    assert split.memory_stall_pct < log.memory_stall_pct
    assert split.percent_available > log.percent_available
