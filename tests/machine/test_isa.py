"""Unit tests for instruction-mix accounting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.machine.isa import PACKING_WIDTHS, FlopCounts, TrafficCounts


def test_total_and_add():
    a = FlopCounts(scalar=1, v128=2, v256=3, v512=4)
    b = FlopCounts(scalar=10)
    assert (a + b).total == 20
    assert (a + b).scalar == 11


def test_fractions_sum_to_one():
    c = FlopCounts(scalar=5, v256=10, v512=35)
    fr = c.fractions()
    assert sum(fr.values()) == pytest.approx(1.0)
    assert fr[64] == pytest.approx(0.1)
    assert fr[512] == pytest.approx(0.7)


def test_fractions_of_zero():
    assert all(v == 0.0 for v in FlopCounts().fractions().values())
    assert FlopCounts().scalar_fraction == 0.0


def test_at_width():
    assert FlopCounts.at_width(8.0, 512).v512 == 8.0
    assert FlopCounts.at_width(8.0, 64).scalar == 8.0
    assert FlopCounts.at_width(8.0, 128).v128 == 8.0
    assert FlopCounts.at_width(8.0, 256).v256 == 8.0
    with pytest.raises(ValueError):
        FlopCounts.at_width(1.0, 1024)


def test_scaled():
    c = FlopCounts(scalar=2, v512=4).scaled(0.5)
    assert c.scalar == 1 and c.v512 == 2


def test_vectorized_fraction():
    c = FlopCounts(scalar=10, v512=90)
    assert c.vectorized_fraction == pytest.approx(0.9)


def test_instruction_count_fma_normalized():
    # 16 FLOPs in one AVX-512 FMA; 2 FLOPs in one scalar FMA.
    assert FlopCounts(v512=16.0).instructions() == 1.0
    assert FlopCounts(scalar=2.0).instructions() == 1.0
    assert FlopCounts(v256=8.0).instructions() == 1.0


def test_traffic_counts():
    t = TrafficCounts(read_bytes=100, write_bytes=50) + TrafficCounts(read_bytes=10)
    assert t.read_bytes == 110
    assert t.total_bytes == 160


def test_packing_widths_constant():
    assert PACKING_WIDTHS == (64, 128, 256, 512)


@given(
    s=st.floats(0, 1e9),
    a=st.floats(0, 1e9),
    b=st.floats(0, 1e9),
    c=st.floats(0, 1e9),
)
def test_total_is_sum_property(s, a, b, c):
    fc = FlopCounts(s, a, b, c)
    assert fc.total == pytest.approx(s + a + b + c, rel=1e-12)
