"""Tests for memory-trace generation."""

import numpy as np
import pytest

from repro.codegen.plan import Buffer, BufferAccess, GemmOp, KernelPlan, PointwiseOp, TransposeOp
from repro.gemm.smallgemm import SmallGemm
from repro.harness.experiments import stp_plan
from repro.machine.isa import FlopCounts
from repro.machine.memtrace import assign_addresses, op_trace, plan_trace


def small_plan():
    plan = KernelPlan(variant="t", spec=None)
    plan.buffers["A"] = Buffer("A", 4096, "temp")
    plan.buffers["B"] = Buffer("B", 8192, "temp")
    plan.buffers["C"] = Buffer("C", 8192, "temp")
    return plan


def test_assign_addresses_disjoint_and_aligned():
    plan = stp_plan("log", 4)
    bases = assign_addresses(plan)
    ranges = sorted(
        (bases[name], bases[name] + buf.nbytes) for name, buf in plan.buffers.items()
    )
    for (s1, e1), (s2, _) in zip(ranges, ranges[1:]):
        assert e1 <= s2, "buffer ranges overlap"
    assert all(b % 4096 == 0 for b in bases.values())


def test_pointwise_trace_covers_accessed_bytes():
    plan = small_plan()
    op = PointwiseOp(
        "sweep",
        FlopCounts(scalar=1.0),
        (BufferAccess("A", read_bytes=4096), BufferAccess("B", write_bytes=8192)),
    )
    bases = {"A": 0, "B": 4096, "C": 16384}
    trace = op_trace(op, bases, plan.buffers)
    assert len(trace) == 4096 // 64 + 8192 // 64
    assert trace.min() == 0
    assert trace.max() == (4096 + 8192) // 64 - 1


def test_transpose_trace():
    plan = small_plan()
    op = TransposeOp("t", "A", "B", nbytes=4096)
    bases = {"A": 0, "B": 4096, "C": 16384}
    trace = op_trace(op, bases, plan.buffers)
    assert len(trace) == 2 * 4096 // 64


def test_gemm_trace_slices_advance():
    plan = small_plan()
    gemm = SmallGemm(m=4, n=8, k=4, vector_doubles=8)
    op = GemmOp(gemm, batch=4, a="A", b="B", c="C")
    bases = assign_addresses(plan)
    trace = op_trace(op, bases, plan.buffers)
    # every batch touches distinct B/C slices: trace grows with batch
    single = op_trace(GemmOp(gemm, 1, "A", "B", "C"), bases, plan.buffers)
    assert len(trace) > 2 * len(single)


def test_plan_trace_concatenates_all_ops():
    plan = stp_plan("splitck", 4)
    trace = plan_trace(plan)
    assert trace.dtype == np.int64
    assert len(trace) > 1000
    # all addresses fall inside assigned buffer ranges
    bases = assign_addresses(plan)
    top = max(bases[n] + b.nbytes for n, b in plan.buffers.items())
    assert trace.max() * 64 < top + 4096


def test_unknown_op_type_rejected():
    plan = small_plan()
    with pytest.raises(TypeError):
        op_trace(object(), {}, plan.buffers)
