"""Tests for the top-down performance model."""

import pytest

from repro.codegen.plan import Buffer, BufferAccess, GemmOp, KernelPlan, PointwiseOp, TransposeOp
from repro.core.spec import KernelSpec
from repro.gemm.smallgemm import SmallGemm
from repro.machine.arch import SKX_PEAK_GFLOPS, get_architecture
from repro.machine.isa import FlopCounts
from repro.machine.perfmodel import KernelPerformance, PerfModel, PerfModelConfig
from repro.machine.segcache import LevelMisses


def gemm_only_plan(spec, flops_512=1.0e6):
    plan = KernelPlan(variant="x", spec=spec)
    plan.buffers["A"] = Buffer("A", 1024, "const")
    plan.buffers["B"] = Buffer("B", 65536, "temp")
    plan.buffers["C"] = Buffer("C", 65536, "temp")
    gemm = SmallGemm(m=8, n=8, k=8, vector_doubles=8)
    batch = int(flops_512 / gemm.flop_counts().total)
    plan.ops.append(GemmOp(gemm, batch, "A", "B", "C"))
    return plan


def test_compute_cycles_gemm_efficiency():
    spec = KernelSpec(order=4, nvar=4, nparam=2, arch="skx")
    arch = spec.architecture
    cfg = PerfModelConfig()
    plan = gemm_only_plan(spec)
    model = PerfModel(arch, cfg)
    flops = plan.flop_counts().total
    expected = flops / (32 * cfg.gemm_efficiency)
    assert model.compute_cycles(plan) == pytest.approx(expected)


def test_heavy_pointwise_slower_than_default():
    spec = KernelSpec(order=4, nvar=4, nparam=2, arch="skx")
    arch = spec.architecture
    model = PerfModel(arch)
    acc = (BufferAccess("A", read_bytes=100),)
    flops = FlopCounts(scalar=1e6)
    heavy = PointwiseOp("h", flops, acc, eff_class="heavy")
    normal = PointwiseOp("n", flops, acc)
    assert model._op_cycles(heavy) > model._op_cycles(normal)


def test_transpose_cycles_from_bandwidth():
    spec = KernelSpec(order=4, nvar=4, nparam=2, arch="skx")
    model = PerfModel(spec.architecture)
    op = TransposeOp("t", "A", "B", nbytes=2400)
    assert model._op_cycles(op) == pytest.approx(
        2 * 2400 / model.config.transpose_bytes_per_cycle
    )


def test_stall_cycles_attribution():
    arch = get_architecture("skx")
    cfg = PerfModelConfig()
    model = PerfModel(arch, cfg)
    # 100 lines served by L2 (missed L1 only)
    misses = LevelMisses({"L1": 100.0})
    expected = 100 * arch.caches[1].latency_cycles * cfg.exposure_l2
    assert model.stall_cycles(misses) == pytest.approx(expected)
    # DRAM-served lines cost ns * frequency
    misses = LevelMisses({"L1": 100.0, "L2": 100.0, "L3": 100.0, "DRAM": 100.0})
    dram_part = 100 * arch.dram_latency_ns * arch.simd_freq_ghz * cfg.exposure_dram
    assert model.stall_cycles(misses) == pytest.approx(dram_part, rel=0.2)


def test_write_misses_discounted():
    arch = get_architecture("skx")
    model = PerfModel(arch)
    reads = LevelMisses({"L1": 1000.0})
    writes = LevelMisses({}, {"L1": 1000.0})
    assert model.stall_cycles(writes) == pytest.approx(
        model.config.write_stall_factor * model.stall_cycles(reads)
    )


def test_frequency_license():
    arch = get_architecture("skx")
    model = PerfModel(arch)
    assert model.frequency_ghz(FlopCounts(v512=100.0)) == arch.simd_freq_ghz
    assert model.frequency_ghz(FlopCounts(scalar=100.0)) == arch.scalar_freq_ghz
    # 5% 512-bit does not trigger the AVX license derating
    assert (
        model.frequency_ghz(FlopCounts(scalar=95.0, v512=5.0))
        == arch.scalar_freq_ghz
    )


def test_dram_latency_scales_with_frequency():
    arch = get_architecture("skx")
    model = PerfModel(arch)
    misses = LevelMisses({"L1": 100.0, "L2": 100.0, "L3": 100.0, "DRAM": 100.0})
    slow = model.stall_cycles(misses, freq_ghz=1.9)
    fast = model.stall_cycles(misses, freq_ghz=2.7)
    assert fast > slow  # same ns, more cycles at higher clock


def test_kernel_performance_metrics():
    perf = KernelPerformance(
        variant="x",
        order=6,
        arch="skx",
        flops=FlopCounts(v512=60.8e9),
        compute_cycles=0.95e9,
        stall_cycles=0.95e9,
        freq_ghz=1.9,
    )
    assert perf.time_seconds == pytest.approx(1.0)
    assert perf.gflops == pytest.approx(60.8)
    assert perf.percent_available == pytest.approx(100.0)
    assert perf.memory_stall_pct == pytest.approx(50.0)
    assert perf.mix_percentages()[512] == pytest.approx(100.0)


def test_skx_peak_constant():
    assert SKX_PEAK_GFLOPS == pytest.approx(60.8)
