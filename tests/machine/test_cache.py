"""Unit tests for the reference line-level LRU cache simulator."""

import numpy as np
import pytest

from repro.machine.arch import CacheLevel, get_architecture
from repro.machine.cache import CacheHierarchy, LRUCache


def tiny_level(capacity_lines=8, ways=2):
    return CacheLevel(
        "T", capacity_bytes=capacity_lines * 64, ways=ways, latency_cycles=1.0
    )


def test_cold_miss_then_hit():
    cache = LRUCache(tiny_level())
    assert not cache.access(0)
    assert cache.access(0)
    assert cache.stats.hits == 1 and cache.stats.misses == 1


def test_lru_eviction_within_set():
    # 8 lines, 2 ways -> 4 sets; lines 0, 4, 8 all map to set 0.
    cache = LRUCache(tiny_level())
    cache.access(0)
    cache.access(4)
    cache.access(8)  # evicts 0 (LRU)
    assert not cache.access(0)
    assert cache.access(8) or True  # 8 may have been evicted by the re-access of 0


def test_lru_order_updated_on_hit():
    cache = LRUCache(tiny_level())
    cache.access(0)
    cache.access(4)
    cache.access(0)  # 0 becomes MRU
    cache.access(8)  # evicts 4, not 0
    assert cache.access(0)


def test_set_mapping():
    cache = LRUCache(tiny_level())
    # lines in different sets never evict each other
    for line in range(4):
        cache.access(line)
    for line in range(4):
        assert cache.access(line)


def test_resident_lines_bounded():
    cache = LRUCache(tiny_level())
    for line in range(100):
        cache.access(line)
    assert cache.resident_lines <= cache.sets * cache.ways


def test_flush():
    cache = LRUCache(tiny_level())
    cache.access(0)
    cache.flush()
    assert not cache.access(0)


def test_hierarchy_promotion():
    arch = get_architecture("skx")
    hier = CacheHierarchy(arch)
    assert hier.access(0) == "DRAM"
    assert hier.access(0) == "L1"
    hier.levels[0].flush()
    assert hier.access(0) == "L2"


def test_hierarchy_stream_and_summary():
    arch = get_architecture("skx")
    hier = CacheHierarchy(arch)
    lines = np.arange(100)
    hier.access_stream(lines)
    summary = hier.miss_summary()
    assert summary["L1"] == 100
    assert summary["DRAM"] == 100
    hier.access_stream(lines)  # all fit in L1 now
    assert hier.miss_summary()["L1"] == 100


def test_capacity_miss_on_oversized_working_set():
    arch = get_architecture("skx")
    hier = CacheHierarchy(arch)
    l1_lines = arch.caches[0].lines
    working_set = np.arange(2 * l1_lines)
    hier.access_stream(working_set)
    before = hier.levels[0].stats.misses
    hier.access_stream(working_set)  # still misses L1 (2x capacity), hits L2
    assert hier.levels[0].stats.misses == before + len(working_set)
    assert hier.miss_summary()["DRAM"] == len(working_set)


def test_miss_ratio():
    cache = LRUCache(tiny_level())
    assert cache.stats.miss_ratio == 0.0
    cache.access(1)
    cache.access(1)
    assert cache.stats.miss_ratio == pytest.approx(0.5)
