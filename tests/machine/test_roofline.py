"""Tests for the roofline analysis extension."""

import pytest

from repro.harness.experiments import stp_plan
from repro.machine.roofline import RooflinePoint, roofline_point
from repro.machine.segcache import LevelMisses


def test_point_geometry():
    p = RooflinePoint(
        variant="x", order=6, flops=1e9, dram_bytes=1e8,
        peak_gflops=60.8, bandwidth_gbs=14.0,
    )
    assert p.intensity == pytest.approx(10.0)
    assert p.ridge_intensity == pytest.approx(60.8 / 14.0)
    assert not p.memory_bound
    assert p.ceiling_gflops == pytest.approx(60.8)


def test_memory_bound_below_ridge():
    p = RooflinePoint("x", 6, flops=1e9, dram_bytes=1e9,
                      peak_gflops=60.8, bandwidth_gbs=14.0)
    assert p.memory_bound
    assert p.ceiling_gflops == pytest.approx(14.0)


def test_zero_traffic_is_compute_bound():
    p = RooflinePoint("x", 6, flops=1e9, dram_bytes=0.0,
                      peak_gflops=60.8, bandwidth_gbs=14.0)
    assert p.intensity == float("inf")
    assert not p.memory_bound


def test_precomputed_misses_respected():
    plan = stp_plan("splitck", 4)
    misses = LevelMisses({"DRAM": 1000.0}, {"DRAM": 500.0})
    point = roofline_point(plan, misses=misses)
    assert point.dram_bytes == 1500 * 64


def test_splitck_restores_arithmetic_intensity():
    """The paper's story as a roofline: the footprint reduction keeps
    SplitCK compute-bound at high order while LoG collapses under the
    bandwidth roof."""
    log = roofline_point(stp_plan("log", 11))
    split = roofline_point(stp_plan("splitck", 11))
    assert log.memory_bound
    assert not split.memory_bound
    assert split.intensity > 10 * log.intensity


def test_intensity_grows_with_order_for_splitck():
    i6 = roofline_point(stp_plan("splitck", 6)).intensity
    i11 = roofline_point(stp_plan("splitck", 11)).intensity
    assert i11 > 2 * i6
