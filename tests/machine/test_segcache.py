"""Tests for the fast segment-granular cache model.

Includes the cross-validation the DESIGN mandates: on small kernels the
segment model must agree with the exact line-level simulator on the
phenomena the experiments rest on -- variant ordering of miss volumes
and the L2-overflow crossover.
"""

import numpy as np
import pytest

from repro.harness.experiments import stp_plan
from repro.machine.arch import get_architecture
from repro.machine.cache import CacheHierarchy
from repro.machine.memtrace import plan_trace
from repro.machine.segcache import LevelMisses, SegmentCacheModel


def test_level_misses_pools():
    m = LevelMisses()
    m.add("L1", 10)
    m.add("L1", 5, write=True)
    assert m.get("L1") == 10
    assert m.get_writes("L1") == 5
    assert m.get("L2") == 0.0


def test_touch_small_buffer_stays_resident():
    model = SegmentCacheModel(get_architecture("skx"))
    model.touch_buffer("D", nbytes=1000, buffer_size=1000)
    model.touch_buffer("D", nbytes=1000, buffer_size=1000)
    # second pass hits L1: only the first touch missed
    assert model.misses.get("L1") == model.lines_per_segment


def test_repeated_reads_capped_at_buffer_size():
    model = SegmentCacheModel(get_architecture("skx"))
    # op claims to read 1 MB from a 4 KB constant: only one segment distinct
    model.touch_buffer("D", nbytes=2**20, buffer_size=4096)
    assert model.misses.get("L1") == model.lines_per_segment


def test_oversized_working_set_misses_l2():
    arch = get_architecture("skx")
    model = SegmentCacheModel(arch)
    big = 3 * arch.l2.capacity_bytes
    for _ in range(3):
        model.touch_buffer("big", nbytes=big, buffer_size=big)
    # streaming 3 MB repeatedly cannot be held by the 1 MB L2
    assert model.misses.get("L2") > 0


def test_l2_resident_working_set_stops_missing():
    arch = get_architecture("skx")
    model = SegmentCacheModel(arch)
    small = arch.l2.capacity_bytes // 4
    for _ in range(5):
        model.touch_buffer("small", nbytes=small, buffer_size=small)
    # first pass misses, later passes served from L1/L2
    assert model.misses.get("L2") == pytest.approx(small / 64, rel=0.01)


def test_epoch_distinguishes_elements():
    model = SegmentCacheModel(get_architecture("skx"))
    model.touch_buffer("q", 4096, 4096, epoch=0)
    model.touch_buffer("q", 4096, 4096, epoch=1)
    assert model.misses.get("L1") == 2 * model.lines_per_segment


def test_segment_size_validation():
    with pytest.raises(ValueError):
        SegmentCacheModel(get_architecture("skx"), segment_bytes=100)


def test_run_plan_returns_steady_state():
    plan = stp_plan("splitck", 4)
    model = SegmentCacheModel(plan.spec.architecture)
    misses = model.run_plan(plan, repetitions=3)
    # steady state: temporaries resident, only fresh input/output traffic
    assert misses.get("L1") > 0
    assert misses.get("L1") < model.misses.get("L1")  # less than cumulative


@pytest.mark.parametrize("order", [4, 5])
def test_cross_validation_against_line_simulator(order):
    """Segment model vs exact LRU: same variant ordering of miss volume."""
    seg_l2, line_l2 = {}, {}
    for variant in ("log", "splitck"):
        plan = stp_plan(variant, order)
        arch = plan.spec.architecture
        model = SegmentCacheModel(arch)
        model.run_plan(plan, repetitions=2)
        seg_l2[variant] = model.misses.get("L2") + model.misses.get_writes("L2")

        hier = CacheHierarchy(arch)
        trace = plan_trace(plan)
        hier.access_stream(trace)
        hier.access_stream(trace)  # second invocation, warm temporaries
        line_l2[variant] = hier.levels[1].stats.misses
    # Both models agree: the LoG working set misses L2 far more.
    assert seg_l2["log"] > 2 * seg_l2["splitck"]
    assert line_l2["log"] > 2 * line_l2["splitck"]


def test_cross_validation_l2_crossover():
    """Both models place the LoG L2 overflow between orders 5 and 6."""
    def line_l2_misses(order):
        plan = stp_plan("log", order)
        hier = CacheHierarchy(plan.spec.architecture)
        trace = plan_trace(plan)
        hier.access_stream(trace)
        base = hier.levels[1].stats.misses
        hier.access_stream(trace)
        return hier.levels[1].stats.misses - base  # warm second pass

    # Second pass at order 4 (0.34 MiB) mostly hits L2; order 6
    # (1.7 MiB) cannot be held and keeps missing.
    warm4 = line_l2_misses(4)
    warm6 = line_l2_misses(6)
    trace6 = len(plan_trace(stp_plan("log", 6)))
    trace4 = len(plan_trace(stp_plan("log", 4)))
    assert warm4 / trace4 < 0.05
    assert warm6 / trace6 > 0.15
