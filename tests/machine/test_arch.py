"""Unit tests for architecture descriptors."""

import pytest

from repro.machine.arch import (
    ARCHITECTURES,
    SKX_PEAK_GFLOPS,
    Architecture,
    CacheLevel,
    get_architecture,
)


def test_skx_peak_matches_paper():
    """Paper Sec. VI: 1.9 GHz * 2 FMA units * 2 flops * 8 lanes = 60.8 GF/s."""
    assert SKX_PEAK_GFLOPS == pytest.approx(60.8)


def test_skx_vector_geometry():
    skx = get_architecture("skx")
    assert skx.vector_doubles == 8
    assert skx.alignment_bytes == 64
    assert skx.peak_flops_per_cycle == 32


def test_hsw_is_avx2():
    hsw = get_architecture("hsw")
    assert hsw.vector_doubles == 4
    assert hsw.flops_per_cycle(256) == 16
    # 512-bit requests are capped at the architecture's native width.
    assert hsw.flops_per_cycle(512) == 16


def test_frequency_derating():
    """AVX-512 frequency is ~30% below base frequency (paper Sec. VI)."""
    skx = get_architecture("skx")
    assert skx.simd_freq_ghz == pytest.approx(1.9)
    assert skx.scalar_freq_ghz == pytest.approx(2.7)
    assert 1.0 - skx.simd_freq_ghz / skx.scalar_freq_ghz == pytest.approx(0.296, abs=0.01)


def test_l2_is_one_mebibyte():
    """The Sec. IV-A bottleneck: 1 MB of L2 per core."""
    assert get_architecture("skx").l2.capacity_bytes == 1024 * 1024


@pytest.mark.parametrize("name", sorted(ARCHITECTURES))
def test_all_architectures_consistent(name):
    arch = get_architecture(name)
    assert arch.vector_bytes % 8 == 0
    assert arch.pad_doubles(1) == arch.vector_doubles
    assert arch.pad_doubles(arch.vector_doubles) == arch.vector_doubles
    for lvl in arch.caches:
        assert lvl.sets * lvl.ways * lvl.line_bytes == lvl.capacity_bytes


def test_padding_rule():
    skx = get_architecture("skx")
    assert skx.pad_doubles(21) == 24  # m=21 elastic quantities -> 24
    assert skx.pad_doubles(8) == 8  # order 8: the no-padding sweet spot
    assert skx.pad_doubles(9) == 16  # order 9: the pathological case
    hsw = get_architecture("hsw")
    assert hsw.pad_doubles(21) == 24
    assert hsw.pad_doubles(9) == 12


def test_scalar_arch():
    noarch = get_architecture("noarch")
    assert noarch.vector_doubles == 1
    assert noarch.simd_freq_ghz == noarch.scalar_freq_ghz


def test_unknown_architecture():
    with pytest.raises(ValueError, match="unknown architecture"):
        get_architecture("m1max")


def test_cache_level_validation():
    with pytest.raises(ValueError):
        CacheLevel("L1", capacity_bytes=1000, ways=8, latency_cycles=4.0)


def test_architecture_validation():
    with pytest.raises(ValueError):
        Architecture("bad", vector_bytes=12, fma_units=1, simd_freq_ghz=1, scalar_freq_ghz=1)


def test_missing_l2_lookup():
    arch = Architecture("tiny", 8, 1, 1.0, 1.0, caches=())
    with pytest.raises(LookupError):
        _ = arch.l2
