"""Tests for the linear Riemann solvers."""

import numpy as np
import pytest

from repro.engine.riemann import rusanov_flux, upwind_flux
from repro.pde import AcousticPDE, AdvectionPDE, ElasticPDE


def face_states(pde, shape=(3, 3), seed=0, params=None):
    rng = np.random.default_rng(seed)
    if params is None and pde.nparam:
        params = pde.example_parameters(shape)
    ql = pde.embed(rng.standard_normal(shape + (pde.nvar,)), params)
    qr = pde.embed(rng.standard_normal(shape + (pde.nvar,)), params)
    return ql, qr, params


@pytest.mark.parametrize("solver", [rusanov_flux, upwind_flux])
@pytest.mark.parametrize("pde", [AcousticPDE(), ElasticPDE()], ids=lambda p: p.name)
@pytest.mark.parametrize("d", [0, 1, 2])
def test_consistency(solver, pde, d):
    """F*(q, q) = F(q): the numerical flux is consistent."""
    ql, _, params = face_states(pde)
    fstar = solver(pde, ql, ql, params, params, d)
    np.testing.assert_allclose(fstar, pde.flux(ql, d), atol=1e-12)


@pytest.mark.parametrize("solver", [rusanov_flux, upwind_flux])
def test_parameter_slots_stay_zero(solver):
    pde = ElasticPDE()
    ql, qr, params = face_states(pde)
    fstar = solver(pde, ql, qr, params, params, 1)
    np.testing.assert_array_equal(fstar[..., 9:], 0.0)


@pytest.mark.parametrize("solver", [rusanov_flux, upwind_flux])
def test_linearity_in_states(solver):
    pde = AcousticPDE()
    ql, qr, params = face_states(pde)
    ql2, qr2, _ = face_states(pde, seed=1)
    f12 = solver(pde, ql + ql2, qr + qr2, params, params, 0)
    f1 = solver(pde, ql, qr, params, params, 0)
    f2 = solver(pde, ql2, qr2, params, params, 0)
    np.testing.assert_allclose(
        f12[..., :4], (f1 + f2)[..., :4], atol=1e-11
    )


def test_upwind_advection_takes_left_state():
    """For positive advection speed the upwind flux uses the left state."""
    pde = AdvectionPDE(velocity=(2.0, 0.0, 0.0), nvar=2)
    ql = np.array([[1.0, 3.0]])
    qr = np.array([[5.0, 7.0]])
    fstar = upwind_flux(pde, ql, qr, np.zeros((1, 0)), np.zeros((1, 0)), 0)
    np.testing.assert_allclose(fstar, 2.0 * ql)


def test_upwind_splits_characteristics():
    """Acoustic contact: out-going and in-going waves separate."""
    pde = AcousticPDE()
    params = np.array([1.0, 2.0])
    m = 6
    ql = np.zeros((1, m))
    qr = np.zeros((1, m))
    ql[0, 0] = 1.0  # pressure jump
    fstar = upwind_flux(pde, ql, qr, params, params, 0)
    # flux must lie between the one-sided fluxes and be nonzero
    assert fstar[0, 1] != 0.0


def test_rusanov_dissipation_scales_with_wave_speed():
    pde = AcousticPDE()
    jump = 2.0
    out = {}
    for c in (1.0, 4.0):
        params = np.array([1.0, c])
        ql = pde.embed(np.array([0.0, 0.0, 0.0, 0.0]), params)
        qr = pde.embed(np.array([jump, 0.0, 0.0, 0.0]), params)
        fstar = rusanov_flux(pde, ql, qr, params, params, 0)
        central = 0.5 * (pde.flux(ql, 0) + pde.flux(qr, 0))
        out[c] = fstar[0] - central[0]
    assert abs(out[4.0]) == pytest.approx(4 * abs(out[1.0]))


def test_upwind_rejects_varying_face_parameters():
    pde = AcousticPDE()
    ql, qr, _ = face_states(pde)
    params = pde.example_parameters((3, 3))
    params[0, 0, 1] = 9.0  # one node differs
    with pytest.raises(ValueError):
        upwind_flux(pde, ql, qr, params, params, 0)
