"""Golden regression: every backend must reproduce committed snapshots.

The fixtures in ``tests/data/golden/`` are final-state snapshots of
three small deterministic runs, produced by the NumPy reference path
(see ``tools/regen_golden.py``).  Replaying them here on every
available backend pins the whole solver stack -- predictor, Riemann
phase, corrector, sources, boundaries -- against an absolute baseline:
a conformance test can only say backends agree *with each other*; the
golden files catch the case where all of them drift together.
"""

import sys
from pathlib import Path

import numpy as np
import pytest

from repro.codegen.executor import numba_available

ROOT = Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(ROOT / "tools"))

import regen_golden  # noqa: E402

#: golden comparison tolerance: loose enough for cross-machine BLAS
#: differences and generated-kernel reassociation, tight enough that
#: any real numerics change trips it
RTOL, ATOL = 1e-9, 1e-12

BACKENDS = ["numpy", "generated", "numba"]


def _fixture(name: str) -> dict:
    path = regen_golden.golden_dir() / f"{name}.npz"
    if not path.exists():
        pytest.fail(
            f"missing golden fixture {path}; regenerate with "
            f"PYTHONPATH=src python tools/regen_golden.py"
        )
    with np.load(path) as data:
        return {key: data[key] for key in data.files}


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", sorted(regen_golden.SCENARIOS))
def test_backend_reproduces_golden(name, backend):
    if backend == "numba" and not numba_available():
        pytest.skip("numba not installed")
    snapshot = _fixture(name)
    fresh = regen_golden.run_scenario(name, backend=backend)
    assert fresh["steps"] == snapshot["steps"]
    assert fresh["dt"] == snapshot["dt"]
    np.testing.assert_allclose(fresh["t"], snapshot["t"], rtol=1e-12)
    scale = float(np.max(np.abs(snapshot["states"]))) or 1.0
    np.testing.assert_allclose(
        fresh["states"], snapshot["states"], rtol=RTOL, atol=ATOL * scale,
        err_msg=(
            f"backend {backend!r} drifted from golden scenario {name!r}; "
            f"if the numerics change is intended, regenerate with "
            f"PYTHONPATH=src python tools/regen_golden.py"
        ),
    )


def test_fixtures_carry_schema_version():
    for name in regen_golden.SCENARIOS:
        assert _fixture(name)["version"] == regen_golden.GOLDEN_VERSION


def test_regen_check_mode_passes_on_fresh_fixtures():
    """`--check` agrees with the committed fixtures (CI smoke)."""
    assert regen_golden.main(["--check", "gaussian_acoustic_o3"]) == 0


def test_regen_rejects_unknown_scenario():
    assert regen_golden.main(["--check", "no_such_scenario"]) == 2
