"""Conformance tests for the vectorized face-sweep engine.

The face-sweep path replaces the legacy per-face Riemann loop and the
per-element corrector with packed-plane sweeps; every test here pins
the replacement down to *bitwise* identity against the legacy loop
(``face_sweep=False``), across flux solvers, boundary kinds and
execution modes.
"""

import numpy as np
import pytest

from repro.core.spec import KernelSpec
from repro.engine.cfl import global_timestep
from repro.engine.facesweep import FaceSweep, direction_faces, face_sweep_plan
from repro.engine.solver import ADERDGSolver
from repro.mesh.grid import BOUNDARY, UniformGrid
from repro.pde import AcousticPDE
from repro.pde.burgers import BurgersPDE
from repro.scenarios.gaussian import gaussian_pulse_setup
from repro.scenarios.loh1 import LOH1Scenario

NON_PERIODIC = (False, False, False)


def _two_layer_ic(pde):
    """Acoustic IC with a sharp sound-speed jump at z = 0.5."""

    def init(points):
        r2 = ((points - 0.5) ** 2).sum(axis=-1)
        variables = np.zeros(points.shape[:-1] + (4,))
        variables[..., 0] = np.exp(-r2 / 0.02)
        params = np.empty(points.shape[:-1] + (2,))
        params[..., 0] = 1.0
        params[..., 1] = np.where(points[..., 2] > 0.5, 2.0, 1.0)
        return pde.embed(variables, params)

    return init


def _pair(riemann, periodic, steps=3, **kwargs):
    """Step a legacy and a face-sweep solver in lockstep; return both."""
    solvers = []
    for face_sweep in (False, True):
        if periodic:
            solver = gaussian_pulse_setup(
                elements=3, order=3, riemann=riemann,
                face_sweep=face_sweep, **kwargs,
            )
        else:
            pde = AcousticPDE()
            grid = UniformGrid((3, 3, 3), periodic=NON_PERIODIC)
            solver = ADERDGSolver(
                grid, pde, order=3, riemann=riemann, boundary="absorbing",
                face_sweep=face_sweep, **kwargs,
            )
            solver.set_initial_condition(_two_layer_ic(pde))
        for _ in range(steps):
            solver.step()
        solvers.append(solver)
    return solvers


# ---------------------------------------------------------------------------
# serial conformance: {rusanov, upwind} x {periodic, absorbing}
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("riemann", ["rusanov", "upwind"])
@pytest.mark.parametrize("periodic", [True, False])
def test_face_sweep_matches_legacy_serial(riemann, periodic):
    if riemann == "upwind" and not periodic:
        pytest.skip("upwind requires face-constant parameters")
    legacy, sweep = _pair(riemann, periodic)
    np.testing.assert_array_equal(sweep.states, legacy.states)
    assert set(sweep.last_step_timings) == {"predict", "riemann", "correct"}
    assert set(legacy.last_step_timings) == {"predict", "riemann", "correct"}


def test_face_sweep_matches_legacy_batched():
    legacy, sweep = _pair("rusanov", True, batch_size=4)
    np.testing.assert_array_equal(sweep.states, legacy.states)


def test_upwind_sweep_groups_materials():
    """Two-layer medium: multiple eigendecomposition groups per plane."""
    pde = AcousticPDE()
    solvers = []
    for face_sweep in (False, True):
        grid = UniformGrid((2, 2, 2), periodic=NON_PERIODIC)
        solver = ADERDGSolver(
            grid, pde, order=3, riemann="upwind", boundary="absorbing",
            face_sweep=face_sweep,
        )
        solver.set_initial_condition(_two_layer_ic(pde))
        for _ in range(3):
            solver.step()
        solvers.append(solver)
    np.testing.assert_array_equal(solvers[1].states, solvers[0].states)


def test_loh1_sweep_matches_legacy():
    """Heterogeneous material, reflective walls, point source, receivers."""
    legacy = LOH1Scenario(elements=2, order=3, face_sweep=False)
    sweep = LOH1Scenario(elements=2, order=3, face_sweep=True)
    legacy.run(0.06)
    sweep.run(0.06)
    np.testing.assert_array_equal(sweep.solver.states, legacy.solver.states)
    for label, (_, samples) in legacy.seismograms().items():
        np.testing.assert_array_equal(sweep.seismograms()[label][1], samples)


# ---------------------------------------------------------------------------
# parallel conformance
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("batch_size", [None, 4])
def test_face_sweep_matches_legacy_parallel(batch_size):
    kwargs = dict(elements=3, order=3, num_workers=2, batch_size=batch_size)
    with gaussian_pulse_setup(face_sweep=False, **kwargs) as legacy:
        with gaussian_pulse_setup(face_sweep=True, **kwargs) as sweep:
            for _ in range(3):
                legacy.step()
                sweep.step()
            np.testing.assert_array_equal(sweep.states, legacy.states)
            walls = sweep.last_step_timings.phase_walls()
            assert set(walls) == {"predict", "riemann", "correct"}
            assert walls["riemann"] > 0.0


def test_parallel_reset_invalidates_parameter_cache():
    """A new initial condition mid-run must re-gather face parameters."""
    kwargs = dict(elements=2, order=3, num_workers=2)
    with gaussian_pulse_setup(c=1.0, face_sweep=True, **kwargs) as sweep:
        with gaussian_pulse_setup(c=1.0, face_sweep=False, **kwargs) as legacy:
            sweep.step()
            legacy.step()
            pde = sweep.pde

            def faster(points):
                variables = np.zeros(points.shape[:-1] + (4,))
                variables[..., 0] = points[..., 0]
                params = np.broadcast_to([1.0, 2.0], points.shape[:-1] + (2,))
                return pde.embed(variables, params)

            sweep.set_initial_condition(faster)
            legacy.set_initial_condition(faster)
            for _ in range(2):
                sweep.step()
                legacy.step()
            np.testing.assert_array_equal(sweep.states, legacy.states)


def test_serial_reset_invalidates_parameter_cache():
    sweep = gaussian_pulse_setup(elements=2, order=3, c=1.0, face_sweep=True)
    legacy = gaussian_pulse_setup(elements=2, order=3, c=1.0, face_sweep=False)
    sweep.step()
    legacy.step()
    pde = sweep.pde

    def faster(points):
        variables = np.zeros(points.shape[:-1] + (4,))
        variables[..., 0] = points[..., 1]
        params = np.broadcast_to([1.0, 3.0], points.shape[:-1] + (2,))
        return pde.embed(variables, params)

    sweep.set_initial_condition(faster)
    legacy.set_initial_condition(faster)
    for _ in range(2):
        sweep.step()
        legacy.step()
    np.testing.assert_array_equal(sweep.states, legacy.states)


# ---------------------------------------------------------------------------
# connectivity
# ---------------------------------------------------------------------------


def test_direction_faces_counts_periodic_and_walled():
    periodic = UniformGrid((3, 3, 3))
    walled = UniformGrid((3, 3, 3), periodic=NON_PERIODIC)
    for d in range(3):
        # periodic: every element owns exactly one face per direction
        assert direction_faces(periodic, d).n_faces == 27
        # walled: nd+1 face layers of 3x3 faces each
        assert direction_faces(walled, d).n_faces == 4 * 9


def test_direction_faces_matches_grid_neighbors():
    grid = UniformGrid((3, 2, 2), extent=(3.0, 2.0, 2.0))
    for d in range(3):
        df = direction_faces(grid, d)
        for e in range(grid.n_elements):
            hi = df.hi_face[e]
            assert df.left[hi] == e
            assert df.right[hi] == grid.neighbor(e, d, 1)
            lo = df.lo_face[e]
            assert df.right[lo] == e
            assert df.left[lo] == grid.neighbor(e, d, 0)


def test_direction_faces_self_periodic_degenerates():
    """A periodic 1-element direction shares one face for both sides."""
    grid = UniformGrid((1, 2, 2), extent=(1.0, 2.0, 2.0))
    df = direction_faces(grid, 0)
    assert df.n_faces == grid.n_elements
    np.testing.assert_array_equal(df.lo_face, df.hi_face)


def test_direction_faces_shard_subset_keeps_cross_faces():
    """A shard's plane covers all six faces of every owned element."""
    grid = UniformGrid((3, 3, 3))
    shard = [0, 1, 2, 9]
    for d in range(3):
        df = direction_faces(grid, d, elements=shard)
        for e in shard:
            assert df.lo_face[e] >= 0 and df.hi_face[e] >= 0
            assert df.right[df.hi_face[e]] == grid.neighbor(e, d, 1)
            assert df.left[df.lo_face[e]] == grid.neighbor(e, d, 0)


def test_boundary_faces_never_ghost_on_both_sides():
    grid = UniformGrid((2, 2, 2), periodic=NON_PERIODIC)
    for d in range(3):
        df = direction_faces(grid, d)
        assert not np.intersect1d(df.ghost_left, df.ghost_right).size
        assert np.all((df.left >= 0) | (df.right >= 0))
        assert df.left[df.ghost_left].tolist() == [BOUNDARY] * df.ghost_left.size


# ---------------------------------------------------------------------------
# stable_dt caching
# ---------------------------------------------------------------------------


def test_stable_dt_cache_matches_full_scan_on_loh1():
    """LOH1's per-element material variation still sees the true max."""
    scenario = LOH1Scenario(elements=2, order=3)
    solver = scenario.solver
    assert solver.pde.wave_speed_is_static
    assert solver.stable_dt() == global_timestep(
        solver.states, solver.pde, solver.grid.h, solver.spec.order, solver.cfl
    )


def test_stable_dt_cached_until_new_initial_condition():
    solver = gaussian_pulse_setup(elements=2, order=3, c=1.0)
    dt0 = solver.stable_dt()
    # mutating states does NOT rescan (parameters are static by contract)
    solver.states[..., 5] *= 2.0
    assert solver.stable_dt() == dt0
    # a new initial condition does
    pde = solver.pde

    def doubled(points):
        variables = np.zeros(points.shape[:-1] + (4,))
        params = np.broadcast_to([1.0, 2.0], points.shape[:-1] + (2,))
        return pde.embed(variables, params)

    solver.set_initial_condition(doubled)
    assert solver.stable_dt() == pytest.approx(dt0 / 2.0)


def test_burgers_wave_speed_is_not_static():
    assert BurgersPDE.wave_speed_is_static is False


# ---------------------------------------------------------------------------
# machine-model recording
# ---------------------------------------------------------------------------


def test_face_sweep_plan_records_grid_level_ops():
    pde = AcousticPDE()
    grid = UniformGrid((2, 2, 2))
    spec = KernelSpec(order=3, nvar=pde.nvar, nparam=pde.nparam)
    plan = face_sweep_plan(spec, pde, grid)
    names = [op.name for op in plan.ops]
    for expected in (
        "face_gather", "riemann_sweep", "fstar_scatter",
        "corrector_volume", "surface_lift",
    ):
        assert expected in names
    assert plan.flop_counts().total > 0
    assert plan.phases() == ["riemann", "correct"]
    assert {"qface", "face_planes", "face_params", "fstar_planes"} <= set(
        plan.buffers
    )


def test_face_sweep_static_parameters_bound_once():
    solver = gaussian_pulse_setup(elements=2, order=3, face_sweep=True)
    solver.step()
    sweep = solver._sweep
    assert isinstance(sweep, FaceSweep)
    bound = sweep._face_params
    solver.step()
    assert solver._sweep._face_params is bound  # no re-gather per step
