"""Integration tests for the full ADER-DG engine."""

import numpy as np
import pytest

from repro.engine.boundary import ghost_state
from repro.engine.cfl import global_timestep, stable_timestep
from repro.engine.solver import ADERDGSolver
from repro.mesh.grid import UniformGrid
from repro.pde import AcousticPDE, ElasticPDE
from repro.scenarios.planarwave import (
    acoustic_plane_wave_setup,
    elastic_plane_wave_setup,
    solution_error,
)


def test_stable_timestep_formula():
    from repro.engine.cfl import STABILITY_FACTOR

    assert stable_timestep(0.5, 4, 2.0, cfl=0.7) == pytest.approx(
        0.7 * STABILITY_FACTOR[4] * 0.5 / (3 * 7 * 2.0)
    )
    with pytest.raises(ValueError):
        stable_timestep(0.5, 4, 0.0)
    with pytest.raises(ValueError):
        stable_timestep(0.5, 4, 1.0, cfl=2.0)


def test_stability_factor_decreases_with_order():
    from repro.engine.cfl import STABILITY_FACTOR

    factors = [STABILITY_FACTOR[o] for o in sorted(STABILITY_FACTOR)]
    assert all(a >= b for a, b in zip(factors, factors[1:]))


def test_global_timestep_uses_max_speed():
    from repro.engine.cfl import STABILITY_FACTOR

    pde = AcousticPDE()
    states = pde.example_state((2, 3, 3, 3))
    states[..., 5] = 2.0  # sound speed
    states[1, 0, 0, 0, 5] = 8.0
    dt = global_timestep(states, pde, h=1.0, order=4, cfl=0.9)
    assert dt == pytest.approx(0.9 * STABILITY_FACTOR[4] * 1.0 / (3 * 7 * 8.0))


def test_ghost_states():
    pde = AcousticPDE()
    q = pde.example_state((3, 3))
    absorbed = ghost_state("absorbing", pde, q, 0, 1)
    np.testing.assert_array_equal(absorbed, q)
    reflected = ghost_state("reflective", pde, q, 1, 0)
    np.testing.assert_array_equal(reflected[..., 2], -q[..., 2])
    with pytest.raises(ValueError):
        ghost_state("teleport", pde, q, 0, 0)


@pytest.mark.parametrize("variant", ["generic", "log", "splitck", "aosoa"])
def test_all_variants_advance_identically(variant):
    """Engine-level equivalence: one step is variant-independent."""
    solver, _ = acoustic_plane_wave_setup(elements=2, order=3, variant=variant)
    solver.step(0.01)
    ref_solver, _ = acoustic_plane_wave_setup(elements=2, order=3, variant="generic")
    ref_solver.step(0.01)
    np.testing.assert_allclose(solver.states, ref_solver.states, atol=1e-11)


def test_acoustic_convergence_order():
    """N nodes per dimension yield ~N-th order convergence (Sec. II-A)."""
    for order, expected in ((3, 2.5), (4, 3.4)):
        errs = []
        for elements in (2, 4):
            solver, wave = acoustic_plane_wave_setup(elements=elements, order=order)
            solver.run(0.2)
            errs.append(solution_error(solver, wave))
        rate = np.log2(errs[0] / errs[1])
        assert rate > expected, f"order {order}: rate {rate:.2f}, errors {errs}"


@pytest.mark.parametrize("mode", ["p", "s"])
def test_elastic_wave_converges_with_resolution(mode):
    """Refining the mesh shrinks the elastic plane-wave error at ~order N.

    Order 3 with 2 -> 4 elements sits in the asymptotic regime (an
    N = 4 run needs >= 8 elements per dimension to get there, too slow
    for the suite; the asymptotic rate was confirmed offline).
    """
    errs = []
    for elements in (2, 4):
        solver, wave = elastic_plane_wave_setup(elements=elements, order=3, mode=mode)
        solver.run(0.02)
        errs.append(solution_error(solver, wave))
    rate = np.log2(errs[0] / errs[1])
    assert rate > 2.5, f"rate {rate:.2f}, errors {errs}"


def test_conservation_on_periodic_mesh():
    """Conservative system + periodic BCs: cell averages are conserved."""
    solver, _ = acoustic_plane_wave_setup(elements=3, order=4)
    before = solver.integrate()
    for _ in range(5):
        solver.step()
    after = solver.integrate()
    np.testing.assert_allclose(after[:4], before[:4], atol=1e-12)


def test_stability_over_many_steps():
    solver, _ = acoustic_plane_wave_setup(elements=2, order=4, cfl=0.5)
    for _ in range(50):
        solver.step()
    assert solver.max_abs() < 5.0  # no blow-up


def test_reflective_box_keeps_wave_inside():
    pde = AcousticPDE()
    grid = UniformGrid((2, 2, 2), periodic=(False, False, False))
    solver = ADERDGSolver(grid, pde, order=4, boundary="reflective", cfl=0.4)

    def init(points):
        r2 = ((points - 0.5) ** 2).sum(axis=-1)
        v = np.zeros(points.shape[:-1] + (4,))
        v[..., 0] = np.exp(-r2 / 0.02)
        return pde.embed(v, np.broadcast_to([1.0, 1.0], points.shape[:-1] + (2,)))

    solver.set_initial_condition(init)
    for _ in range(20):
        solver.step()
    assert solver.max_abs() < 5.0
    # energy-ish: pressure not identically zero (wave still inside)
    assert solver.max_abs() > 1e-4


def test_run_until_exact_time():
    solver, _ = acoustic_plane_wave_setup(elements=2, order=3)
    solver.run(0.0333)
    assert solver.t == pytest.approx(0.0333, abs=1e-12)


def test_point_source_excites_field():
    from repro.engine.source import GaussianDerivativeWavelet, PointSource

    pde = AcousticPDE()
    grid = UniformGrid((2, 2, 2), periodic=(False, False, False))
    solver = ADERDGSolver(grid, pde, order=4, cfl=0.4)

    def init(points):
        v = np.zeros(points.shape[:-1] + (4,))
        return pde.embed(v, np.broadcast_to([1.0, 1.0], points.shape[:-1] + (2,)))

    solver.set_initial_condition(init)
    solver.add_point_source(
        PointSource(
            position=np.array([0.5, 0.5, 0.5]),
            amplitude=np.array([1.0, 0.0, 0.0, 0.0]),
            wavelet=GaussianDerivativeWavelet(k=0, t0=0.05, sigma=0.02),
        )
    )
    assert solver.max_abs() == 0.0
    solver.run(0.1)
    assert solver.max_abs() > 1e-4


def test_receiver_records_each_step():
    from repro.engine.receivers import Receiver

    solver, _ = acoustic_plane_wave_setup(elements=2, order=3)
    recv = Receiver([0.25, 0.25, 0.25])
    solver.add_receiver(recv)
    for _ in range(3):
        solver.step()
    times, samples = recv.seismogram()
    assert len(times) == 3
    assert samples.shape[1] == 6


def test_riemann_override_must_be_registered():
    from repro.engine.riemann import SOLVERS

    solver, _ = acoustic_plane_wave_setup(elements=2, order=2)
    # swapping in a registered function (by identity) keeps working
    solver.riemann = SOLVERS["rusanov"]
    solver.step()
    # an unknown function must raise, not silently keep the stale flux
    solver.riemann = lambda pde, ql, qr, pl, pr, d: 0.0
    solver._sweep = None  # force re-resolution like a fresh sweep build
    with pytest.raises(ValueError, match="not a registered Riemann solver"):
        solver.step()


def test_invalidate_state_caches_refreshes_wave_speed():
    solver, _ = acoustic_plane_wave_setup(elements=2, order=3)
    pde = solver.pde
    dt0 = solver.stable_dt()
    # writing states in place does not reset the cache by itself ...
    solver.states[..., pde.C] *= 2.0
    assert solver.stable_dt() == dt0
    # ... invalidate_state_caches() does
    solver.invalidate_state_caches()
    assert solver.stable_dt() == pytest.approx(dt0 / 2.0)
    solver.step()
    assert np.isfinite(solver.states).all()
