"""Tests for the VTK plotter."""

import numpy as np
import pytest

from repro.engine.output import sample_solution, write_vtk
from repro.scenarios import gaussian_pulse_setup
from repro.scenarios.planarwave import acoustic_plane_wave_setup


def test_sample_solution_shapes():
    solver = gaussian_pulse_setup(elements=2, order=3)
    coords, values = sample_solution(solver, points_per_element=3)
    assert coords.shape == (6, 6, 6, 3)
    assert values.shape == (6, 6, 6, 6)  # m = 4 + 2 parameters


def test_sampling_interpolates_not_copies():
    """Samples come from the Lagrange interpolant, exact for polynomials."""
    solver, _ = acoustic_plane_wave_setup(elements=2, order=4)

    def linear_field(points):
        v = np.zeros(points.shape[:-1] + (4,))
        v[..., 0] = 1.0 + 2.0 * points[..., 0] - points[..., 2]
        params = np.broadcast_to([1.0, 1.0], points.shape[:-1] + (2,))
        return solver.pde.embed(v, params)

    solver.set_initial_condition(linear_field)
    coords, values = sample_solution(solver, points_per_element=3)
    expected = 1.0 + 2.0 * coords[..., 0] - coords[..., 2]
    np.testing.assert_allclose(values[..., 0], expected, atol=1e-10)


def test_sample_validation():
    solver = gaussian_pulse_setup(elements=2, order=3)
    with pytest.raises(ValueError):
        sample_solution(solver, points_per_element=0)


def test_write_vtk_roundtrip(tmp_path):
    solver = gaussian_pulse_setup(elements=2, order=3)
    out = write_vtk(solver, tmp_path / "state.vtk", field_names=["p", "vx"])
    text = out.read_text()
    assert text.startswith("# vtk DataFile Version 3.0")
    assert "DIMENSIONS 4 4 4" in text
    assert "SCALARS p double 1" in text
    assert "SCALARS vx double 1" in text
    # value count: 2 fields x 64 points + headers
    data_lines = [l for l in text.splitlines() if l and l[0] in "-0123456789"]
    assert len(data_lines) == 2 * 64


def test_write_vtk_default_names_and_validation(tmp_path):
    solver = gaussian_pulse_setup(elements=2, order=3)
    out = write_vtk(solver, tmp_path / "d.vtk")
    assert "SCALARS q0 double 1" in out.read_text()
    with pytest.raises(ValueError):
        write_vtk(solver, tmp_path / "bad.vtk", field_names=["a"] * 9)


def test_vtk_x_fastest_ordering(tmp_path):
    """VTK structured points iterate x fastest."""
    solver, _ = acoustic_plane_wave_setup(elements=2, order=3)

    def x_field(points):
        v = np.zeros(points.shape[:-1] + (4,))
        v[..., 0] = points[..., 0]
        params = np.broadcast_to([1.0, 1.0], points.shape[:-1] + (2,))
        return solver.pde.embed(v, params)

    solver.set_initial_condition(x_field)
    out = write_vtk(solver, tmp_path / "x.vtk", field_names=["p"], points_per_element=2)
    lines = out.read_text().splitlines()
    start = lines.index("LOOKUP_TABLE default") + 1
    first_row = [float(v) for v in lines[start : start + 4]]
    assert first_row == sorted(first_row)  # x increases along the row
    assert first_row[0] != first_row[-1]
