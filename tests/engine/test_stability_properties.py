"""Physical-property tests of the scheme: energy stability, dt-convergence."""

import numpy as np
import pytest

from repro.scenarios.planarwave import acoustic_plane_wave_setup, solution_error


def acoustic_energy(solver) -> float:
    """Discrete acoustic energy: E = sum w (p^2 / (rho c^2) + rho |v|^2)."""
    w = solver.ops.weights
    w3 = np.einsum("k,j,i->kji", w, w, w) * solver.grid.h**3
    states = solver.states
    p = states[..., 0]
    v2 = (states[..., 1:4] ** 2).sum(axis=-1)
    rho = states[..., 4]
    c = states[..., 5]
    density = p * p / (rho * c * c) + rho * v2
    return float(np.einsum("kji,ekji->", w3, density))


def test_upwind_flux_dissipates_energy_monotonically():
    """The upwind scheme is energy-stable: E never increases."""
    solver, _ = acoustic_plane_wave_setup(elements=2, order=4, cfl=0.5)
    energies = [acoustic_energy(solver)]
    for _ in range(30):
        solver.step()
        energies.append(acoustic_energy(solver))
    diffs = np.diff(energies)
    assert np.all(diffs <= 1e-12 * energies[0]), "energy must not grow"
    # a resolved smooth wave loses very little energy
    assert energies[-1] > 0.95 * energies[0]


def test_rusanov_dissipates_more_than_upwind():
    """Rusanov penalizes the zero-speed characteristics too.

    For an axis-aligned acoustic wave the two fluxes coincide (no jump
    in the transverse modes), so an *oblique* wave is used: its face
    jumps have components along the lambda = 0 eigenvectors, which only
    Rusanov damps.
    """
    k = (2 * np.pi, 2 * np.pi, 0.0)
    losses = {}
    for riemann in ("upwind", "rusanov"):
        solver, _ = acoustic_plane_wave_setup(elements=2, order=3, cfl=0.5, k=k)
        solver.riemann = __import__(
            "repro.engine.riemann", fromlist=["SOLVERS"]
        ).SOLVERS[riemann]
        e0 = acoustic_energy(solver)
        for _ in range(20):
            solver.step()
        losses[riemann] = e0 - acoustic_energy(solver)
    assert losses["rusanov"] > losses["upwind"] > 0


def test_time_integration_converges_with_dt():
    """At fixed mesh, halving dt converges to the dt->0 limit at high order.

    The Cauchy-Kowalewsky predictor is an N-term Taylor series: its
    one-step error is O(dt^{N+1}), so even the coarsest dt here is
    already at round-off of the dt->0 limit -- we assert the errors are
    tiny and decreasing-or-flat.
    """
    def run(dt_scale):
        solver, wave = acoustic_plane_wave_setup(elements=2, order=5, cfl=0.4)
        base_dt = solver.stable_dt() * dt_scale
        nsteps = int(round(0.02 / base_dt))
        dt = 0.02 / nsteps
        for _ in range(nsteps):
            solver.step(dt)
        return solution_error(solver, wave)

    err_coarse = run(1.0)
    err_fine = run(0.5)
    assert err_fine <= err_coarse * 1.05
    assert err_coarse < 5e-3
