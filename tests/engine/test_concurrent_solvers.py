"""Multiple live solvers in one process must not observe each other.

The service layer multiplexes many solvers over one process, so
cross-instance isolation is a correctness contract, not a nicety:
interleaving the steps of two solvers (different orders *and* PDEs)
must be bitwise identical to running each alone -- serial, parallel
(barrier pools side by side) and fused (each solver owns its
ResidentBlockState; invalidating one must not disturb the other).
"""

import numpy as np

from repro.scenarios import gaussian_pulse_setup
from repro.scenarios.loh1 import LOH1Scenario

STEPS = 3


def _gaussian(**kwargs):
    return gaussian_pulse_setup(elements=2, order=3, **kwargs)


def _loh1(**kwargs):
    return LOH1Scenario(elements=2, order=2, **kwargs).solver


def _solo(build, steps=STEPS):
    """Reference run: dt sequence + final states of an isolated solver."""
    solver = build()
    try:
        dts = [solver.step() for _ in range(steps)]
        return dts, np.array(solver.states)
    finally:
        solver.close()


def test_interleaved_serial_solvers_bitwise_identical():
    """A (acoustic, order 3) and B (elastic, order 2) step turn by turn."""
    dts_a, solo_a = _solo(_gaussian)
    dts_b, solo_b = _solo(_loh1)
    a, b = _gaussian(), _loh1()
    try:
        for step in range(STEPS):
            assert a.step() == dts_a[step]
            assert b.step() == dts_b[step]
        np.testing.assert_array_equal(a.states, solo_a)
        np.testing.assert_array_equal(b.states, solo_b)
    finally:
        a.close()
        b.close()


def test_interleaved_barrier_pools_bitwise_identical():
    """Two worker pools side by side in one process, interleaved steps."""
    dts_a, solo_a = _solo(_gaussian)
    dts_b, solo_b = _solo(_loh1)
    a = _gaussian(num_workers=2, stepping="barrier")
    b = _loh1(num_workers=2, stepping="barrier")
    try:
        for step in range(STEPS):
            assert a.step() == dts_a[step]
            assert b.step() == dts_b[step]
        np.testing.assert_array_equal(a.states, solo_a)
        np.testing.assert_array_equal(b.states, solo_b)
    finally:
        a.close()
        b.close()


def test_invalidate_state_caches_is_per_instance():
    """Invalidating solver A's caches must not touch B's resident state."""
    kwargs = dict(backend="generated", fuse=True)
    _, solo_b = _solo(lambda: _gaussian(**kwargs))
    a, b = _gaussian(**kwargs), _gaussian(**kwargs)
    try:
        a.step()
        b.step()
        # both solvers are resident after a fused step
        assert a._resident is not None and b._resident is not None
        assert not a._resident.canonical_valid
        assert not b._resident.canonical_valid
        a.invalidate_state_caches()
        # A egressed + invalidated; B's resident stack is untouched
        assert a._resident.canonical_valid
        assert not b._resident.canonical_valid
        for _ in range(STEPS - 1):
            a.step()
            b.step()
        np.testing.assert_array_equal(b.states, solo_b)
        np.testing.assert_array_equal(a.states, solo_b)  # same setup: A == B
    finally:
        a.close()
        b.close()


def test_invalidate_under_parallel_pools_is_per_instance():
    """Pool-backed cache invalidation on A leaves B's caches warm."""
    _, solo_b = _solo(_loh1)
    a = _gaussian(num_workers=2)
    b = _loh1(num_workers=2)
    try:
        a.step()
        b.step()
        a.invalidate_state_caches()
        for _ in range(STEPS - 1):
            a.step()
            b.step()
        np.testing.assert_array_equal(b.states, solo_b)
    finally:
        a.close()
        b.close()
