"""Tests for the corrector step (eq. 5)."""

import numpy as np
import pytest

from repro.basis.operators import cached_operators
from repro.core.corrector import corrector_update, record_corrector_plan
from repro.core.spec import KernelSpec
from repro.core.variants import make_kernel
from repro.pde import AcousticPDE


def setup(order=4):
    pde = AcousticPDE()
    spec = KernelSpec(order=order, nvar=4, nparam=2, arch="skx")
    q = pde.example_state((order,) * 3, np.random.default_rng(0))
    kernel = make_kernel("splitck", spec, pde)
    return pde, spec, q, kernel


def exact_fluxes(pde, result, q, d_range=range(3)):
    """Numerical fluxes equal to the element's own face fluxes (no jumps)."""
    from repro.core.corrector import _face_params

    fluxes = {}
    for d in d_range:
        for side in (0, 1):
            face = result.qface[(d, side)]
            params = _face_params(q, d, side, pde)
            fluxes[(d, side)] = pde.flux(
                pde.embed(face[..., : pde.nvar], params), d
            )
    return fluxes


def test_zero_jump_reduces_to_volume_update():
    """With F* = F(own face) the face terms vanish: q_new = q + V qavg."""
    pde, spec, q, kernel = setup()
    result = kernel.predictor(q, dt=0.01, h=0.5)
    fluxes = exact_fluxes(pde, result, q)
    qnew = corrector_update(q, result, fluxes, h=0.5, pde=pde)
    np.testing.assert_allclose(qnew, q + result.vavg_total, atol=1e-12)


def test_face_jump_changes_only_through_lifting():
    pde, spec, q, kernel = setup()
    result = kernel.predictor(q, dt=0.01, h=0.5)
    fluxes = exact_fluxes(pde, result, q)
    # perturb the numerical flux on the +x face
    delta = np.zeros_like(fluxes[(0, 1)])
    delta[..., 0] = 1.0
    fluxes[(0, 1)] = fluxes[(0, 1)] + delta
    qnew = corrector_update(q, result, fluxes, h=0.5, pde=pde)
    base = q + result.vavg_total
    diff = qnew - base
    # lifting acts along x with the right-face lifting vector
    ops = cached_operators(spec.order)
    expected = -(1.0 / 0.5) * ops.lifting_right()[None, None, :, None] * delta[:, :, None, :]
    np.testing.assert_allclose(diff, expected, atol=1e-12)


def test_source_contribution_added():
    pde, spec, q, kernel = setup()
    from repro.basis.operators import cached_operators as co
    from repro.core.variants import ElementSource

    ops = co(spec.order)
    amp = np.zeros(spec.nquantities)
    amp[0] = 1.0
    source = ElementSource(
        projection=ops.source_projection(np.full(3, 0.5)),
        amplitude=amp,
        derivatives=np.ones(spec.order),
    )
    result = kernel.predictor(q, dt=0.01, h=0.5, source=source)
    fluxes = exact_fluxes(pde, result, q)
    qnew = corrector_update(q, result, fluxes, h=0.5, pde=pde)
    np.testing.assert_allclose(
        qnew, q + result.vavg_total + result.savg, atol=1e-12
    )


def test_corrector_plan_is_scalar_and_complete():
    pde = AcousticPDE()
    spec = KernelSpec(order=5, nvar=4, nparam=2, arch="skx")
    plan = record_corrector_plan(spec, pde)
    counts = plan.flop_counts()
    assert counts.scalar == counts.total > 0
    names = [op.name for op in plan.ops]
    assert names == ["corrector_volume", "riemann", "surface_lift"]
    assert "qface_neigh" in plan.buffers
