"""Tests for point sources, wavelets and receivers."""

import numpy as np
import pytest

from repro.basis.operators import cached_operators
from repro.engine.receivers import Receiver
from repro.engine.source import GaussianDerivativeWavelet, PointSource, RickerWavelet
from repro.mesh.grid import UniformGrid


def test_gaussian_wavelet_value():
    w = GaussianDerivativeWavelet(k=0, t0=0.5, sigma=0.1)
    assert w(0.5) == pytest.approx(1.0)
    assert w(0.5 + 0.1) == pytest.approx(np.exp(-0.5))


@pytest.mark.parametrize("k", [0, 1, 2])
def test_wavelet_derivatives_match_finite_differences(k):
    w = GaussianDerivativeWavelet(k=k, t0=0.3, sigma=0.05)
    t, eps = 0.33, 1e-6
    derivs = w.derivatives(t, 3)
    fd1 = (w(t + eps) - w(t - eps)) / (2 * eps)
    fd2 = (w(t + eps) - 2 * w(t) + w(t - eps)) / eps**2
    assert derivs[0] == pytest.approx(w(t))
    assert derivs[1] == pytest.approx(fd1, rel=1e-5)
    assert derivs[2] == pytest.approx(fd2, rel=1e-3)


def test_derivative_chain_consistency():
    """The o-th derivative of the k-wavelet is the (o+k)-th of the base."""
    base = GaussianDerivativeWavelet(k=0, t0=0.2, sigma=0.04)
    second = GaussianDerivativeWavelet(k=2, t0=0.2, sigma=0.04)
    t = 0.21
    np.testing.assert_allclose(
        second.derivatives(t, 2), base.derivatives(t, 4)[2:], rtol=1e-12
    )


def test_ricker_peak_at_t0():
    w = RickerWavelet(t0=0.4, f0=8.0)
    ts = np.linspace(0.3, 0.5, 401)
    vals = np.array([w(t) for t in ts])
    assert ts[np.argmax(np.abs(vals))] == pytest.approx(0.4, abs=1e-3)


def test_wavelet_validation():
    with pytest.raises(ValueError):
        GaussianDerivativeWavelet(k=-1)
    with pytest.raises(ValueError):
        GaussianDerivativeWavelet(sigma=0.0)


def test_point_source_amplitude_embedding():
    src = PointSource(
        position=np.zeros(3),
        amplitude=np.array([1.0, 2.0]),
        wavelet=GaussianDerivativeWavelet(),
    )
    amp = src.element_amplitude(6)
    np.testing.assert_array_equal(amp, [1, 2, 0, 0, 0, 0])


def test_receiver_binds_and_interpolates():
    grid = UniformGrid((2, 2, 2))
    ops = cached_operators(4)
    recv = Receiver([0.3, 0.6, 0.7])
    recv.bind(grid, ops)
    assert recv.element == grid.locate(np.array([0.3, 0.6, 0.7]))[0]

    # a linear field is interpolated exactly
    pts = grid.node_coordinates(recv.element, ops)
    state = (2.0 * pts[..., 0] + pts[..., 2])[..., None]  # (N,N,N,1)
    recv.record(0.1, state)
    times, samples = recv.seismogram()
    assert times[0] == 0.1
    assert samples[0, 0] == pytest.approx(2.0 * 0.3 + 0.7, abs=1e-12)


def test_receiver_requires_binding():
    recv = Receiver([0.5, 0.5, 0.5])
    with pytest.raises(RuntimeError):
        recv.record(0.0, np.zeros((4, 4, 4, 1)))
    with pytest.raises(RuntimeError):
        _ = recv.element


def _silent_acoustic_solver(order: int = 3):
    from repro.engine.solver import ADERDGSolver
    from repro.pde import AcousticPDE

    pde = AcousticPDE()
    grid = UniformGrid((2, 2, 2), periodic=(False, False, False))
    solver = ADERDGSolver(grid, pde, order=order, cfl=0.4)

    def init(points):
        v = np.zeros(points.shape[:-1] + (4,))
        return pde.embed(
            v, np.broadcast_to([1.0, 1.0], points.shape[:-1] + (2,))
        )

    solver.set_initial_condition(init)
    return solver


def _pressure_source(scale: float) -> PointSource:
    return PointSource(
        position=np.array([0.5, 0.5, 0.5]),
        amplitude=np.array([scale, 0.0, 0.0, 0.0]),
        wavelet=GaussianDerivativeWavelet(k=0, t0=0.05, sigma=0.02),
    )


def test_two_sources_in_one_element_sum():
    """Co-located sources sum exactly -- the second is not dropped."""
    double = _silent_acoustic_solver()
    double.add_point_source(_pressure_source(1.0))
    double.add_point_source(_pressure_source(1.0))
    single = _silent_acoustic_solver()
    single.add_point_source(_pressure_source(2.0))
    dt = single.stable_dt()
    for _ in range(3):
        double.step(dt)
        single.step(dt)
    assert double.max_abs() > 0.0
    # linearity: src + src == 2 * src, bitwise
    np.testing.assert_array_equal(double.states, single.states)


def test_element_source_combines_all_registered_sources():
    solver = _silent_acoustic_solver()
    solver.add_point_source(_pressure_source(1.0))
    solver.add_point_source(_pressure_source(0.5))
    element = solver.sources[0][0]
    combined = solver._element_source(element, 0.01)
    assert len(combined.parts) == 2
    payload = solver._source_payload()
    assert len(payload[element]) == 2
