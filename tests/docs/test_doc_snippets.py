"""Runnable documentation snippets must actually run.

Code fences in ``docs/*.md`` / ``README.md`` tagged ``python run``
are executable documentation: this suite extracts each one and runs
it in a subprocess with ``REPRO_QUICK=1`` (the same switch the
examples smoke suite uses), so docs cannot drift away from the code
they demonstrate.  Untagged ``python`` fences stay illustrative
fragments and are not collected.
"""

import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent.parent
FENCE_RE = re.compile(r"```python run\n(.*?)```", re.DOTALL)


def _snippets():
    """Every ``python run`` fence as (doc name, index, source)."""
    docs = sorted((ROOT / "docs").glob("*.md")) + [ROOT / "README.md"]
    found = []
    for path in docs:
        for idx, match in enumerate(FENCE_RE.finditer(path.read_text())):
            found.append((f"{path.name}#{idx}", match.group(1)))
    return found

SNIPPETS = _snippets()


def test_snippets_are_discovered():
    """The docs must keep a floor of runnable snippets (guards the tag)."""
    names = {name.split("#")[0] for name, _ in SNIPPETS}
    assert "stepping.md" in names
    assert "parallel.md" in names
    assert "README.md" in names
    assert len(SNIPPETS) >= 3


@pytest.mark.parametrize(
    "name,source", SNIPPETS, ids=[name for name, _ in SNIPPETS]
)
def test_snippet_runs(name, source):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    env["REPRO_QUICK"] = "1"
    result = subprocess.run(
        [sys.executable, "-c", source],
        capture_output=True,
        text=True,
        cwd=ROOT,
        env=env,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"doc snippet {name} failed:\n--- stdout ---\n{result.stdout}"
        f"\n--- stderr ---\n{result.stderr}"
    )
    assert result.stdout.strip(), f"doc snippet {name} printed nothing"
