"""Suite-wide defaults.

Pin ``backend="auto"`` to the NumPy reference executor for every test
that doesn't choose a backend explicitly: large parts of the suite
assert *bitwise* identity between execution paths (legacy vs
face-sweep, serial vs parallel), which must not silently float to a
compiled backend on machines where Numba happens to be installed.
Backend-aware suites (``tests/codegen/test_backend_conformance.py``,
``tests/engine/test_golden.py``) request their backends by name and
are unaffected.
"""

import os

os.environ.setdefault("REPRO_BACKEND", "numpy")
