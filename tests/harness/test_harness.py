"""Tests for the experiment harness: the paper's shapes must hold.

These are the reproduction's acceptance tests: every qualitative claim
of the evaluation section is asserted against the machine model, at
reduced order sweeps to keep the suite fast.
"""

import pytest

from repro.harness.cli import main
from repro.harness.experiments import application_performance, stp_plan
from repro.harness.figures import figure4, figure6, figure9, footprint_table
from repro.harness import report

ORDERS = (4, 6, 9, 11)


@pytest.fixture(scope="module")
def perf():
    """Performance of every variant at the test orders (cached)."""
    out = {}
    for variant in ("generic", "log", "splitck", "aosoa"):
        for order in ORDERS:
            out[(variant, order)] = application_performance(variant, order)
    for order in ORDERS:
        out[("log_avx2", order)] = application_performance("log", order, "hsw")
    return out


def test_variant_ordering_at_high_order(perf):
    """Fig. 10: aosoa > splitck > log > generic at order 11."""
    p = {v: perf[(v, 11)].percent_available for v in ("generic", "log", "splitck", "aosoa")}
    assert p["aosoa"] > p["splitck"] > p["log"] > p["generic"]


def test_generic_plateau(perf):
    """Generic kernels stay in the 3-5% band at every order."""
    for order in ORDERS:
        assert 2.5 < perf[("generic", order)].percent_available < 5.5


def test_aosoa_reaches_paper_band(perf):
    """AoSoA at order 11: ~22.5% of available performance (+-25%)."""
    assert 17.0 < perf[("aosoa", 11)].percent_available < 28.0


def test_aosoa_speedup_over_generic(perf):
    """Paper: factor ~6 at order 11."""
    speedup = perf[("aosoa", 11)].gflops / perf[("generic", 11)].gflops
    assert 4.5 < speedup < 7.5


def test_log_memory_stalls_stay_high(perf):
    """Fig. 4/6: LoG stalls never fall below ~40% for N >= 6."""
    for order in (6, 9, 11):
        assert perf[("log", order)].memory_stall_pct > 38.0


def test_splitck_stalls_decrease_with_order(perf):
    """Fig. 6: the footprint reduction removes the stall plateau."""
    stalls = [perf[("splitck", o)].memory_stall_pct for o in ORDERS]
    assert stalls == sorted(stalls, reverse=True)
    assert stalls[-1] < 25.0


def test_splitck_beats_log_from_moderate_order(perf):
    for order in (6, 9, 11):
        assert (
            perf[("splitck", order)].percent_available
            > perf[("log", order)].percent_available
        )


def test_avx512_faster_than_avx2(perf):
    """Fig. 4: AVX-512 beats AVX2, but far below the 2x vector width."""
    for order in (9, 11):
        ratio = perf[("log", order)].gflops / perf[("log_avx2", order)].gflops
        assert 1.0 < ratio < 1.5


def test_avx2_stalls_lower_than_avx512(perf):
    """Fig. 4: the slower AVX2 code is less memory-stalled (41% vs 34%)."""
    assert (
        perf[("log_avx2", 11)].memory_stall_pct
        < perf[("log", 11)].memory_stall_pct
    )


def test_frequency_licenses(perf):
    assert perf[("generic", 9)].freq_ghz == pytest.approx(2.7)
    assert perf[("log", 9)].freq_ghz == pytest.approx(1.9)
    assert perf[("log_avx2", 9)].freq_ghz == pytest.approx(2.3)


def test_instruction_mix_shapes():
    """Fig. 9: scalar share generic >> log/splitck >> aosoa."""
    rows = {(r["variant"], r["order"]): r for r in figure9(orders=(6, 11))}
    assert rows[("generic", 11)]["scalar"] > 75.0
    assert 5.0 < rows[("log", 11)]["scalar"] < 20.0
    assert rows[("aosoa", 11)]["scalar"] < 5.0  # paper: 2-4%
    assert rows[("log", 11)]["bits512"] > 75.0
    # scalar share shrinks with order (arithmetic intensity grows)
    assert rows[("log", 11)]["scalar"] < rows[("log", 6)]["scalar"]


def test_footprint_crossover_at_order_six():
    """Sec. IV-A: generic/LoG exceed 1 MiB L2 at N = 6; SplitCK never."""
    rows = {(r["variant"], r["order"]): r for r in footprint_table(orders=(5, 6, 11))}
    assert rows[("log", 5)]["fits_l2"]
    assert not rows[("log", 6)]["fits_l2"]
    assert not rows[("generic", 6)]["fits_l2"]
    assert rows[("splitck", 11)]["fits_l2"]
    assert rows[("aosoa", 11)]["fits_l2"]


def test_footprint_scaling_laws():
    """O(N^{d+1} m d) vs O(N^d m): the ratio grows linearly in N."""
    r6 = {
        r["variant"]: r["temp_bytes"] for r in footprint_table(orders=(6,))
    }
    r11 = {
        r["variant"]: r["temp_bytes"] for r in footprint_table(orders=(11,))
    }
    ratio6 = r6["log"] / r6["splitck"]
    ratio11 = r11["log"] / r11["splitck"]
    assert ratio11 / ratio6 == pytest.approx(11 / 6, rel=0.15)


def test_figure_series_structures():
    f4 = figure4(orders=(4, 6))
    assert set(f4) == {"generic", "log_avx512", "log_avx2"}
    f6 = figure6(orders=(4, 6))
    assert set(f6) == {"log", "splitck"}
    for series in f6.values():
        assert [r["order"] for r in series] == [4, 6]
        assert all(0 < r["percent_available"] < 100 for r in series)


def test_reports_render(capsys):
    text = report.render_footprint()
    assert "fits L2?" in text
    assert main(["footprint"]) == 0
    out = capsys.readouterr().out
    assert "Sec. IV-A" in out


def test_cli_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_stp_plan_cached():
    assert stp_plan("splitck", 6) is stp_plan("splitck", 6)
