"""Tests for the CSV export and the extended CLI."""

import csv
import json

import pytest

from repro.harness.cli import main
from repro.harness.export import export_all, write_rows


def test_write_rows(tmp_path):
    path = write_rows(tmp_path / "t.csv", [{"a": 1, "b": 2}, {"a": 3, "b": 4}])
    with path.open() as fh:
        rows = list(csv.DictReader(fh))
    assert rows == [{"a": "1", "b": "2"}, {"a": "3", "b": "4"}]


def test_write_rows_rejects_empty(tmp_path):
    with pytest.raises(ValueError):
        write_rows(tmp_path / "x.csv", [])


def test_export_all(tmp_path):
    files = export_all(tmp_path)
    names = {p.name for p in files}
    assert names == {
        "fig4.csv", "fig6.csv", "fig9.csv", "fig10.csv",
        "footprint.csv", "batched.csv", "roofline.csv", "headlines.csv",
        "parallel.csv", "facesweep.csv", "backend.csv", "steps.jsonl",
        "service.csv",
    }
    with (tmp_path / "service.csv").open() as fh:
        service_rows = list(csv.DictReader(fh))
    assert len(service_rows) >= 2
    assert float(service_rows[0]["compile_s"]) > 0
    assert all(r["digest"] == service_rows[0]["digest"] for r in service_rows)
    with (tmp_path / "backend.csv").open() as fh:
        backend_rows = list(csv.DictReader(fh))
    assert backend_rows[0]["backend"] == "numpy"
    assert backend_rows[1]["backend"] in {"generated", "numba"}
    assert all(float(r["total"]) > 0 for r in backend_rows)
    with (tmp_path / "facesweep.csv").open() as fh:
        facesweep_rows = list(csv.DictReader(fh))
    assert [r["path"] for r in facesweep_rows] == ["legacy", "face_sweep"]
    assert all(float(r["total"]) > 0 for r in facesweep_rows)
    with (tmp_path / "parallel.csv").open() as fh:
        parallel_rows = list(csv.DictReader(fh))
    assert [int(r["workers"]) for r in parallel_rows] == [1, 2, 4]
    assert all(float(r["sec_per_step"]) > 0 for r in parallel_rows)
    assert all(int(r["retries"]) == 0 for r in parallel_rows)
    assert all(int(r["respawns"]) == 0 for r in parallel_rows)
    with (tmp_path / "steps.jsonl").open() as fh:
        records = [json.loads(line) for line in fh]
    assert records
    for record in records:
        assert set(record["phase_walls"]) == {"predict", "riemann", "correct"}
        assert record["worker_busy"]
        assert record["retries"] == 0 and record["respawns"] == 0
    with (tmp_path / "fig10.csv").open() as fh:
        rows = list(csv.DictReader(fh))
    variants = {r["variant"] for r in rows}
    assert variants == {"generic", "log", "splitck", "aosoa"}
    orders = sorted({int(r["order"]) for r in rows})
    assert orders == list(range(4, 12))


def test_cli_csv_flag(tmp_path, capsys):
    assert main(["footprint", "--csv", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "wrote" in out
    assert (tmp_path / "headlines.csv").exists()


def test_cli_roofline(capsys):
    assert main(["roofline"]) == 0
    out = capsys.readouterr().out
    assert "flop/byte" in out
