"""Unit tests for KernelSpec."""

import pytest

from repro.core.spec import VARIANTS, KernelSpec


def elastic_spec(order=6, arch="skx"):
    """The paper's benchmark workload: 9 wave quantities + 12 parameters."""
    return KernelSpec(order=order, nvar=9, nparam=12, dim=3, arch=arch)


def test_paper_workload_quantities():
    spec = elastic_spec()
    assert spec.nquantities == 21
    assert spec.mpad == 24  # padded to 3 AVX-512 registers


def test_nodes_per_element():
    assert elastic_spec(order=6).nodes_per_element == 216
    assert KernelSpec(order=4, nvar=5, dim=2).nodes_per_element == 16


def test_order8_sweet_spot_order9_pathological():
    """Paper Sec. V-A: AVX-512 padding sweet spot at N=8, worst at N=9."""
    assert elastic_spec(order=8).aosoa_padding_overhead == 0.0
    assert elastic_spec(order=9).aosoa_padding_overhead == pytest.approx(7 / 9)


def test_padding_depends_on_architecture():
    assert elastic_spec(arch="hsw").mpad == 24
    assert elastic_spec(arch="noarch").mpad == 21
    assert elastic_spec(order=9, arch="hsw").npad == 12


def test_aos_padding_overhead():
    spec = elastic_spec()
    assert spec.aos_padding_overhead == pytest.approx(3 / 21)


def test_with_arch_and_order():
    spec = elastic_spec()
    assert spec.with_arch("hsw").arch == "hsw"
    assert spec.with_order(11).order == 11
    # original untouched (frozen dataclass)
    assert spec.arch == "skx" and spec.order == 6


def test_variant_names():
    assert VARIANTS == ("generic", "log", "splitck", "aosoa")


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(order=1, nvar=3),
        dict(order=4, nvar=0),
        dict(order=4, nvar=3, nparam=-1),
        dict(order=4, nvar=3, dim=4),
        dict(order=4, nvar=3, arch="nope"),
    ],
)
def test_validation(kwargs):
    with pytest.raises(ValueError):
        KernelSpec(**kwargs)
