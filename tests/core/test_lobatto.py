"""End-to-end tests with the Gauss-Lobatto basis (paper Sec. II-A:
"either Gauss-Legendre or Gauss-Lobatto interpolation points")."""

import numpy as np
import pytest

from repro.core.reference import ReferenceCK
from repro.core.spec import KernelSpec
from repro.core.variants import KERNEL_CLASSES, make_kernel
from repro.pde import AcousticPDE
from repro.scenarios.planarwave import acoustic_plane_wave_setup, solution_error


@pytest.mark.parametrize("variant", list(KERNEL_CLASSES))
def test_variants_match_reference_on_lobatto(variant):
    pde = AcousticPDE()
    spec = KernelSpec(order=4, nvar=4, nparam=2, arch="skx",
                      quadrature="gauss_lobatto")
    q = pde.example_state((4,) * 3, np.random.default_rng(11))
    result = make_kernel(variant, spec, pde).predictor(q, dt=0.01, h=0.5)
    ref = ReferenceCK(spec, pde).predictor(q, dt=0.01, h=0.5)
    np.testing.assert_allclose(result.qavg, ref.qavg, atol=1e-12)
    np.testing.assert_allclose(result.vavg, ref.vavg, atol=1e-12)


def test_lobatto_face_projection_is_node_extraction():
    """Lobatto nodes include the faces: projection = picking the layer."""
    pde = AcousticPDE()
    spec = KernelSpec(order=5, nvar=4, nparam=2, arch="skx",
                      quadrature="gauss_lobatto")
    q = pde.example_state((5,) * 3, np.random.default_rng(1))
    result = make_kernel("splitck", spec, pde).predictor(q, dt=0.01, h=0.5)
    np.testing.assert_allclose(
        result.qface[(0, 1)], result.qavg[:, :, -1, :], atol=1e-12
    )
    np.testing.assert_allclose(
        result.qface[(2, 0)], result.qavg[0, :, :, :], atol=1e-12
    )


def test_lobatto_engine_converges():
    """Order 5 Lobatto converges at rate ~4.4 (2 -> 4 elements).

    (Order 4 shows the classic Lobatto mass-lumping order reduction at
    coarse resolution; order 5+ is clean.)
    """
    errs = []
    for elements in (2, 4):
        pde = AcousticPDE()
        solver, wave = acoustic_plane_wave_setup(elements=elements, order=5)
        # rebuild with Lobatto quadrature
        from repro.engine.solver import ADERDGSolver
        from repro.mesh.grid import UniformGrid

        grid = UniformGrid((elements,) * 3)
        solver = ADERDGSolver(grid, pde, order=5, riemann="upwind",
                              quadrature="gauss_lobatto", cfl=0.4)

        def init(points):
            params = np.broadcast_to([1.0, 1.0], points.shape[:-1] + (2,))
            return pde.embed(wave(points, 0.0), params)

        solver.set_initial_condition(init)
        solver.run(0.1)
        errs.append(solution_error(solver, wave))
    rate = np.log2(errs[0] / errs[1])
    assert rate > 3.5, f"rate {rate}, errors {errs}"


def test_lobatto_and_legendre_agree_on_resolved_solution():
    """Both bases converge to the same (exact) solution."""
    pde = AcousticPDE()
    results = {}
    for quad in ("gauss_legendre", "gauss_lobatto"):
        from repro.engine.solver import ADERDGSolver
        from repro.mesh.grid import UniformGrid

        k = np.array([2 * np.pi, 0.0, 0.0])
        wave = AcousticPDE.plane_wave(k, 1.0, 1.0)
        grid = UniformGrid((2, 2, 2))
        solver = ADERDGSolver(grid, pde, order=6, riemann="upwind",
                              quadrature=quad, cfl=0.4)

        def init(points):
            params = np.broadcast_to([1.0, 1.0], points.shape[:-1] + (2,))
            return pde.embed(wave(points, 0.0), params)

        solver.set_initial_condition(init)
        solver.run(0.05)
        results[quad] = solution_error(solver, wave)
    assert results["gauss_legendre"] < 5e-4
    assert results["gauss_lobatto"] < 5e-3  # lower quadrature exactness degree
