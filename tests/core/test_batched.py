"""Batched element-block STP driver: equivalence, arena reuse, solver path.

The batched driver must be an *execution* optimization only: for every
variant, block size and mesh it has to reproduce the per-element kernels
to <= 1e-12 (in practice bit-exact, since the broadcast matmuls perform
the same per-slice contractions), including partial trailing blocks,
per-element point sources and the full LOH1-style solver loop.
"""

import numpy as np
import pytest

from repro.core.spec import KernelSpec
from repro.core.variants import KERNEL_CLASSES, BatchedSTP, make_kernel
from repro.core.variants.base import ElementSource
from repro.core.variants.batched import ScratchArena, operator_set
from repro.basis.operators import cached_operators
from repro.pde import AcousticPDE, CurvilinearElasticPDE, ElasticNCPPDE
from repro.scenarios.loh1 import LOH1Scenario

PAPER_VARIANTS = ["generic", "log", "splitck", "aosoa"]


def _spec(pde, order, arch="skx"):
    return KernelSpec(order=order, nvar=pde.nvar, nparam=pde.nparam, arch=arch)


def _states(pde, order, elements, seed=3):
    rng = np.random.default_rng(seed)
    states = np.empty((elements, order, order, order, pde.nquantities))
    for e in range(elements):
        states[e] = pde.example_state((order,) * 3, rng)
        states[e, ..., : pde.nvar] += 0.2 * rng.standard_normal(
            (order,) * 3 + (pde.nvar,)
        )
    return states


def _source(pde, order, seed=5):
    ops = cached_operators(order)
    amp = np.zeros(pde.nquantities)
    amp[: pde.nvar] = 1.0
    rng = np.random.default_rng(seed)
    return ElementSource(
        projection=ops.source_projection(np.array([0.3, 0.6, 0.2])),
        amplitude=amp,
        derivatives=rng.standard_normal(order),
    )


def _assert_equal(batched_results, kernel, states, sources, dt, h, tol=1e-12):
    for e in range(states.shape[0]):
        ref = kernel.predictor(states[e], dt, h, source=sources.get(e))
        got = batched_results[e]
        assert np.max(np.abs(got.qavg - ref.qavg)) <= tol
        assert np.max(np.abs(got.vavg - ref.vavg)) <= tol
        for key, face in ref.qface.items():
            assert np.max(np.abs(got.qface[key] - face)) <= tol
        if ref.savg is None:
            assert got.savg is None
        else:
            assert np.max(np.abs(got.savg - ref.savg)) <= tol


# -- kernel-level equivalence ------------------------------------------------


@pytest.mark.parametrize("batch_size", [1, 3, 8], ids=lambda b: f"B{b}")
@pytest.mark.parametrize("variant", sorted(KERNEL_CLASSES))
def test_block_matches_per_element(variant, batch_size):
    """All variants, block sizes dividing and not dividing E = 7."""
    pde = AcousticPDE()
    order = 4
    spec = _spec(pde, order)
    states = _states(pde, order, elements=7)
    sources = {2: _source(pde, order)}
    dt, h = 1e-3, 0.5
    driver = BatchedSTP(variant, spec, pde, batch_size=batch_size)
    results = driver.predictor_all(states, dt, h, source_fn=sources.get)
    kernel = make_kernel(variant, spec, pde)
    _assert_equal(results, kernel, states, sources, dt, h)


@pytest.mark.parametrize("variant", ["splitck", "aosoa"])
def test_block_matches_per_element_with_ncp(variant):
    pde = ElasticNCPPDE()
    spec = _spec(pde, 3)
    states = _states(pde, 3, elements=5)
    dt, h = 2e-3, 0.8
    driver = BatchedSTP(variant, spec, pde, batch_size=2)
    results = driver.predictor_all(states, dt, h)
    _assert_equal(results, make_kernel(variant, spec, pde), states, {}, dt, h)


def test_traversal_order_respected():
    """predictor_all must return results indexed by element id, whatever
    the traversal order that formed the blocks."""
    pde = AcousticPDE()
    spec = _spec(pde, 3)
    states = _states(pde, 3, elements=6)
    driver = BatchedSTP("splitck", spec, pde, batch_size=4)
    shuffled = [5, 0, 3, 1, 4, 2]
    res_shuffled = driver.predictor_all(states, 1e-3, 0.5, order=shuffled)
    res_plain = driver.predictor_all(states, 1e-3, 0.5)
    for e in range(6):
        assert np.array_equal(res_shuffled[e].qavg, res_plain[e].qavg)


# -- arena / registry behavior ------------------------------------------------


def test_arena_is_reused_across_calls():
    pde = AcousticPDE()
    spec = _spec(pde, 4)
    driver = BatchedSTP("splitck", spec, pde, batch_size=4)
    held = {name: id(driver.arena.get(name, arr.shape))
            for name, arr in driver.arena._arrays.items()}
    states = _states(pde, 4, elements=10)
    driver.predictor_all(states, 1e-3, 0.5)
    driver.predictor_all(states[:3], 1e-3, 0.5)  # partial block only
    for name, arr in driver.arena._arrays.items():
        assert id(arr) == held.get(name, id(arr)), f"{name} was reallocated"
    assert driver.scratch_bytes == sum(
        a.nbytes for a in driver.arena._arrays.values()
    )


def test_scratch_arena_shape_contract():
    arena = ScratchArena()
    a = arena.get("x", (2, 3))
    assert arena.get("x", (2, 3)) is a
    b = arena.get("x", (4, 3))
    assert b is not a and b.shape == (4, 3)
    assert arena.nbytes == b.nbytes
    assert "x" in arena and len(arena) == 1


def test_operator_registry_caches_per_key():
    pde = AcousticPDE()
    spec = _spec(pde, 4)
    first = operator_set("splitck", spec, pde)
    assert operator_set("splitck", spec, pde) is first
    assert operator_set("aosoa", spec, pde) is not first
    d1 = BatchedSTP("splitck", spec, pde, batch_size=2)
    d2 = BatchedSTP("splitck", spec, pde, batch_size=7)
    assert d1.oset is d2.oset  # shared operator set, independent arenas
    assert d1.arena is not d2.arena


def test_input_validation():
    pde = AcousticPDE()
    spec = _spec(pde, 3)
    driver = BatchedSTP("splitck", spec, pde, batch_size=2)
    with pytest.raises(ValueError, match="batch_size"):
        BatchedSTP("splitck", spec, pde, batch_size=0)
    with pytest.raises(ValueError, match="unknown variant"):
        BatchedSTP("nope", spec, pde)
    with pytest.raises(ValueError, match="block size"):
        driver.predictor_block(np.zeros((3, 3, 3, 3, pde.nquantities)), 1e-3, 0.5)
    with pytest.raises(ValueError, match="expected element block"):
        driver.predictor_block(np.zeros((2, 3, 3, pde.nquantities)), 1e-3, 0.5)
    with pytest.raises(ValueError, match="sources"):
        driver.predictor_block(
            np.zeros((2, 3, 3, 3, pde.nquantities)), 1e-3, 0.5, sources=[None]
        )


def test_footprint_report_consistent_with_machine_model():
    pde = CurvilinearElasticPDE()
    spec = _spec(pde, 4)
    driver = BatchedSTP("splitck", spec, pde, batch_size=8)
    rep = driver.footprint_report()
    assert rep["arena_bytes"] == driver.scratch_bytes
    assert rep["arena_bytes_per_element"] == driver.scratch_bytes / 8
    plan = make_kernel("splitck", spec, pde).build_plan(with_source=False)
    assert rep["scalar_temp_bytes"] == plan.temp_footprint_bytes
    assert rep["scalar_temp_bytes"] > 0


# -- solver-level equivalence (LOH1-style mesh) -------------------------------


def _loh1_states(variant, batch_size, steps=2):
    scenario = LOH1Scenario(
        elements=2, order=3, variant=variant, batch_size=batch_size
    )
    for _ in range(steps):
        scenario.solver.step(2e-3)
    return scenario.solver.states


@pytest.mark.parametrize("variant", PAPER_VARIANTS)
def test_loh1_batched_matches_scalar(variant):
    """Full predictor/Riemann/corrector loop with the double-couple point
    source: batch of 3 does not divide the 8-element mesh."""
    ref = _loh1_states(variant, batch_size=None)
    got = _loh1_states(variant, batch_size=3)
    assert np.max(np.abs(got - ref)) <= 1e-12


@pytest.mark.parametrize("batch_size", [1, 5, 8], ids=lambda b: f"B{b}")
def test_loh1_batch_size_sweep(batch_size):
    ref = _loh1_states("splitck", batch_size=None)
    got = _loh1_states("splitck", batch_size=batch_size)
    assert np.max(np.abs(got - ref)) <= 1e-12
