"""Resident-stack lifecycle: dirty-tracking, egress views, invalidation.

The fused step keeps the solver state block-resident across steps
(:class:`repro.core.layouts.ResidentBlockState`); the contract tested
here is that every *observer* of the state -- the ``states`` property,
receiver sampling, ``invalidate_state_caches()`` -- sees the bitwise
post-step values while the steady-state step itself performs zero
full-stack pack/unpack traffic.
"""

import numpy as np
import pytest

from repro.core.layouts import Layout, ResidentBlockState, TensorLayout
from repro.engine.receivers import Receiver
from repro.scenarios.gaussian import gaussian_pulse_setup


def _layout(n=3, m=4):
    return TensorLayout(Layout.AOS, (n, n, n), m, vector_doubles=1)


def _states(nel=5, n=3, m=4, seed=0):
    return np.random.default_rng(seed).normal(size=(nel, n, n, n, m))


# ---------------------------------------------------------------------------
# unit lifecycle
# ---------------------------------------------------------------------------


def test_ingest_then_egress_roundtrips_bitwise():
    states = _states()
    order = np.array([3, 1, 4, 0, 2], dtype=np.int64)
    resident = ResidentBlockState(_layout(), order, block_size=2)
    resident.invalidate_resident()
    assert resident.sync_resident(states)  # ingest packs
    assert not resident.sync_resident(states)  # steady: no re-pack
    resident.mark_stepped()
    out = np.zeros_like(states)
    assert resident.sync_canonical(out)
    np.testing.assert_array_equal(out, states)
    assert not resident.sync_canonical(out)  # steady: no re-unpack
    assert resident.pack_calls == 1 and resident.unpack_calls == 1


def test_padded_tail_rows_zeroed():
    states = _states(nel=5)
    resident = ResidentBlockState(_layout(), np.arange(5), block_size=4)
    assert resident.n_rows == 8
    resident.invalidate_resident()
    resident.stack[5:] = 7.0  # garbage that ingest must clear
    resident.sync_resident(states)
    np.testing.assert_array_equal(resident.stack[5:], 0.0)


def test_peek_element_is_bitwise_and_counts_separately():
    states = _states()
    order = np.array([3, 1, 4, 0, 2], dtype=np.int64)
    resident = ResidentBlockState(_layout(), order, block_size=2)
    resident.invalidate_resident()
    resident.sync_resident(states)
    resident.mark_stepped()
    for element in order:
        np.testing.assert_array_equal(
            resident.peek_element(int(element)), states[element]
        )
    # row-level egress never runs the full unpack
    assert resident.unpack_calls == 0
    assert resident.peek_rows == 5
    assert resident.peek_bytes == 5 * resident.row_nbytes


def test_peek_on_stale_stack_rejected():
    resident = ResidentBlockState(_layout(), np.arange(3), block_size=2)
    resident.invalidate_resident()
    with pytest.raises(ValueError, match="stale"):
        resident.peek_element(0)


def test_external_rewrite_reingests():
    states = _states()
    resident = ResidentBlockState(_layout(), np.arange(5), block_size=2)
    resident.invalidate_resident()
    resident.sync_resident(states)
    states[2] += 1.0  # canonical-side edit
    resident.invalidate_resident()
    assert resident.sync_resident(states)  # must re-pack
    resident.mark_stepped()
    np.testing.assert_array_equal(resident.peek_element(2), states[2])


# ---------------------------------------------------------------------------
# solver-level observers
# ---------------------------------------------------------------------------


def _fused_solver(**kwargs):
    return gaussian_pulse_setup(
        elements=2, order=3, backend="generated", fuse=True, **kwargs
    )


def test_states_property_egresses_post_step_values_bitwise():
    solver = _fused_solver()
    with solver:
        for _ in range(2):
            solver.step(1e-3)
        resident = solver._resident
        assert resident is not None and resident.resident_valid
        # bitwise truth straight off the stack, row by row, before the
        # property getter gets a chance to egress
        expected = [resident.peek_element(e)
                    for e in range(solver.grid.n_elements)]
        states = solver.states
        for element, row in enumerate(expected):
            np.testing.assert_array_equal(states[element], row)


def test_receiver_reads_see_post_step_values_bitwise():
    solver = _fused_solver()
    receiver = Receiver((0.3, 0.45, 0.6))
    solver.add_receiver(receiver)
    with solver:
        dt = 1e-3
        for _ in range(3):
            solver.step(dt)
            # the row-level peek behind receiver sampling must match a
            # full egress of the same step bitwise
            expected = np.tensordot(
                receiver._weights, solver.states[receiver.element],
                axes=([0, 1, 2], [0, 1, 2]),
            )
            np.testing.assert_array_equal(receiver.samples[-1], expected)
        # receivers alone never force the full unpack inside step()
        record = solver.step_records[-1]
        assert record.pack_calls == 0


def test_invalidate_state_caches_sees_post_step_values_bitwise():
    solver = _fused_solver()
    with solver:
        solver.step(1e-3)
        resident = solver._resident
        # the step left the truth on the stack; canonical is stale
        assert not resident.canonical_valid
        expected = [resident.peek_element(e)
                    for e in range(solver.grid.n_elements)]
        solver.invalidate_state_caches()
        # egress-then-invalidate ordering: the canonical array now holds
        # the stepped values, not a pre-step snapshot...
        for element, row in enumerate(expected):
            np.testing.assert_array_equal(solver._states[element], row)
        # ...and the stack is marked stale, so the next step re-ingests
        assert not resident.resident_valid
        packs = resident.pack_calls
        solver.step(1e-3)
        assert resident.pack_calls == packs + 1
        assert np.isfinite(solver.states).all()


def test_in_place_rewrite_after_invalidate_is_ingested():
    solver = _fused_solver()
    twin = _fused_solver()
    with solver, twin:
        dt = 1e-3
        solver.step(dt)
        twin.step(dt)
        # perturb one element in place on both, via the documented
        # invalidate path on the fused solver and a states-setter
        # rewrite on the twin
        perturbed = solver.states.copy()
        perturbed[0] *= 1.01
        solver.states[...] = perturbed
        solver.invalidate_state_caches()
        twin.states = perturbed.copy()
        solver.step(dt)
        twin.step(dt)
        np.testing.assert_array_equal(solver.states, twin.states)