"""Equivalence and behavior tests for the four STP kernel variants.

The paper's central correctness requirement: every optimization step
(LoG, SplitCK, AoSoA) must reproduce the generic kernel's outputs.  We
check all four against an independently assembled dense-operator oracle
and against each other.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen.plan import GemmOp, TransposeOp
from repro.core.reference import ReferenceCK
from repro.core.spec import KernelSpec
from repro.core.variants import KERNEL_CLASSES, ElementSource, make_kernel
from repro.core.variants.base import taylor_coefficients
from repro.basis.operators import cached_operators
from repro.pde import AcousticPDE, AdvectionPDE, CurvilinearElasticPDE, ElasticPDE

VARIANTS = list(KERNEL_CLASSES)


def make_setup(pde, order=4, arch="skx", seed=0):
    spec = KernelSpec(order=order, nvar=pde.nvar, nparam=pde.nparam, arch=arch)
    q = pde.example_state((order,) * 3, np.random.default_rng(seed))
    return spec, q


def make_source(spec, pde, norder):
    ops = cached_operators(spec.order, spec.quadrature)
    amp = np.zeros(spec.nquantities)
    amp[: pde.nvar] = np.linspace(1.0, 2.0, pde.nvar)
    rng = np.random.default_rng(5)
    return ElementSource(
        projection=ops.source_projection(np.array([0.3, 0.6, 0.2])),
        amplitude=amp,
        derivatives=rng.standard_normal(norder),
    )


@pytest.mark.parametrize("variant", VARIANTS)
@pytest.mark.parametrize(
    "pde", [AcousticPDE(), ElasticPDE(), CurvilinearElasticPDE()], ids=lambda p: p.name
)
def test_variant_matches_dense_reference(variant, pde):
    spec, q = make_setup(pde)
    kernel = make_kernel(variant, spec, pde)
    result = kernel.predictor(q, dt=0.01, h=0.5)
    ref = ReferenceCK(spec, pde).predictor(q, dt=0.01, h=0.5)
    np.testing.assert_allclose(result.qavg, ref.qavg, atol=1e-12)
    np.testing.assert_allclose(result.vavg, ref.vavg, atol=1e-12)
    for key, face in ref.qface.items():
        np.testing.assert_allclose(result.qface[key], face, atol=1e-12)


@pytest.mark.parametrize("variant", VARIANTS)
def test_variant_matches_reference_with_source(variant):
    pde = AcousticPDE()
    spec, q = make_setup(pde, order=5)
    source = make_source(spec, pde, 5)
    kernel = make_kernel(variant, spec, pde)
    result = kernel.predictor(q, dt=0.02, h=1.0, source=source)
    ref = ReferenceCK(spec, pde).predictor(q, dt=0.02, h=1.0, source=source)
    np.testing.assert_allclose(result.qavg, ref.qavg, atol=1e-12)
    np.testing.assert_allclose(result.vavg, ref.vavg, atol=1e-12)
    np.testing.assert_allclose(result.savg, ref.savg, atol=1e-12)


@pytest.mark.parametrize("arch", ["noarch", "hsw", "skx"])
def test_all_variants_agree_across_architectures(arch):
    """Padding/vector width must never change the numbers."""
    pde = ElasticPDE()
    spec, q = make_setup(pde, order=5, arch=arch)
    results = {
        v: make_kernel(v, spec, pde).predictor(q, dt=0.005, h=0.25) for v in VARIANTS
    }
    base = results["generic"]
    for v in VARIANTS[1:]:
        np.testing.assert_allclose(results[v].qavg, base.qavg, atol=1e-12, err_msg=v)
        np.testing.assert_allclose(results[v].vavg, base.vavg, atol=1e-12, err_msg=v)


def test_vavg_total_equals_v_applied_to_qavg():
    """Linearity identity: sum_d favg_d == V qavg (what SplitCK exploits)."""
    pde = AcousticPDE()
    spec, q = make_setup(pde, order=4)
    kernel = make_kernel("generic", spec, pde)
    result = kernel.predictor(q, dt=0.01, h=0.5)
    v_d = ReferenceCK(spec, pde).volume_operators(q, h=0.5)
    expected = (v_d.sum(axis=0) @ result.qavg.reshape(-1)).reshape(result.qavg.shape)
    # Parameter slots of qavg hold dt * params and are annihilated by V
    # only up to the (zero) flux columns; compare variable slots.
    np.testing.assert_allclose(
        result.vavg_total[..., : pde.nvar], expected[..., : pde.nvar], atol=1e-12
    )


def test_taylor_coefficients():
    dt = 0.3
    coef = taylor_coefficients(4, dt)
    np.testing.assert_allclose(
        coef, [dt, dt**2 / 2, dt**3 / 6, dt**4 / 24], rtol=1e-14
    )


def test_constant_state_is_preserved():
    """A spatially constant state has zero derivatives: qavg = dt * q."""
    pde = ElasticPDE()
    spec, _ = make_setup(pde, order=4)
    n = spec.order
    const = pde.embed(
        np.broadcast_to(np.linspace(1, 2, 9), (n, n, n, 9)),
        np.broadcast_to([2.7, 6.0, 3.464], (n, n, n, 3)),
    )
    for v in VARIANTS:
        result = make_kernel(v, spec, pde).predictor(const, dt=0.01, h=1.0)
        np.testing.assert_allclose(result.qavg, 0.01 * const, atol=1e-12, err_msg=v)
        np.testing.assert_allclose(result.vavg, 0.0, atol=1e-12, err_msg=v)


def test_input_validation():
    pde = AcousticPDE()
    spec, q = make_setup(pde)
    kernel = make_kernel("generic", spec, pde)
    with pytest.raises(ValueError):
        kernel.predictor(q[:-1], dt=0.01, h=1.0)
    with pytest.raises(ValueError):
        make_kernel("generic", spec, ElasticPDE())  # m mismatch
    with pytest.raises(ValueError):
        make_kernel("warp", spec, pde)
    with pytest.raises(ValueError):
        make_kernel("generic", KernelSpec(order=4, nvar=6, dim=2), AdvectionPDE(nvar=6))


# ---------------------------------------------------------------------------
# plan recording
# ---------------------------------------------------------------------------


def elastic_plans(order=4, arch="skx"):
    pde = CurvilinearElasticPDE()
    spec = KernelSpec(order=order, nvar=9, nparam=12, arch=arch)
    return {v: make_kernel(v, spec, pde).build_plan() for v in VARIANTS}, spec


def test_generic_plan_has_no_gemms_and_is_mostly_scalar():
    plans, _ = elastic_plans()
    plan = plans["generic"]
    assert not plan.gemm_shapes()
    assert plan.flop_counts().scalar_fraction > 0.6


def test_optimized_plans_are_mostly_packed():
    plans, _ = elastic_plans(order=6)
    for v in ("log", "splitck", "aosoa"):
        fr = plans[v].flop_counts()
        assert fr.vectorized_fraction > 0.65, v
        assert plans[v].gemm_shapes(), v


def test_aosoa_plan_fully_vectorized_and_has_transposes():
    plans, _ = elastic_plans(order=8)
    plan = plans["aosoa"]
    assert plan.flop_counts().scalar_fraction == 0.0
    assert plan.ops_of(TransposeOp), "AoSoA must record layout transposes"


def test_footprint_hierarchy_matches_paper():
    """Sec. IV-A: generic/LoG are O(N^4 m), SplitCK/AoSoA are O(N^3 m)."""
    plans, _ = elastic_plans(order=6)
    assert plans["generic"].temp_footprint_bytes > 4 * plans["splitck"].temp_footprint_bytes
    assert plans["log"].temp_footprint_bytes > 4 * plans["splitck"].temp_footprint_bytes
    # the time dimension is the dominant factor
    ratio = plans["log"].temp_footprint_bytes / plans["splitck"].temp_footprint_bytes
    assert ratio > 6  # ~ (7N+1)/5 at order 6


def test_l2_crossover_at_order_six():
    """The LoG working set exceeds the 1 MiB L2 between orders 5 and 6."""
    l2 = 1024 * 1024
    below, _ = elastic_plans(order=5)
    above, _ = elastic_plans(order=6)
    assert below["log"].temp_footprint_bytes < l2
    assert above["log"].temp_footprint_bytes > l2
    # SplitCK stays inside L2 through the paper's whole sweep
    high, _ = elastic_plans(order=11)
    assert high["splitck"].temp_footprint_bytes < l2


def test_order9_padding_penalty():
    """Sec. V-A: AoSoA at order 9 executes far more FLOPs than SplitCK."""
    plans8, _ = elastic_plans(order=8)
    plans9, _ = elastic_plans(order=9)
    # Order 8: x needs no padding (8 = AVX-512 width) while the AoS
    # variants pad 21 quantities to 24, so AoSoA executes *fewer* FLOPs.
    assert plans8["aosoa"].flop_counts().total <= plans8["splitck"].flop_counts().total
    # Order 9: x pads 9 -> 16 lanes; the FLOP count blows up vs SplitCK.
    assert plans9["aosoa"].flop_counts().total > 1.3 * plans9["splitck"].flop_counts().total


def test_avx2_plans_use_256bit():
    plans, _ = elastic_plans(order=6, arch="hsw")
    counts = plans["log"].flop_counts()
    assert counts.v256 > 0 and counts.v512 == 0


def test_plan_gemm_shapes_reflect_loop_over_gemm():
    """LoG x-derivative: N^2 GEMMs of (N x mpad); z-derivative: one wide GEMM."""
    plans, spec = elastic_plans(order=6)
    shapes = plans["log"].gemm_shapes()
    n, mpad = spec.order, spec.mpad
    assert (n, mpad, n, n * n) in shapes  # x: batch of N^2 slices
    assert (n, n * mpad, n, n) in shapes  # y: fused x+quantity columns
    assert (n, n * n * mpad, n, 1) in shapes  # z: single fused GEMM


def test_aosoa_transposed_gemm_for_x_derivative():
    plans, spec = elastic_plans(order=6)
    gemms = plans["aosoa"].ops_of(GemmOp)
    n = spec.order
    x_gemms = [op for op in gemms if op.gemm.m == spec.nquantities]
    assert x_gemms, "expected transposed-form x-derivative GEMMs"
    for op in x_gemms:
        assert op.gemm.n == n and op.gemm.k == n
        assert op.gemm.ldc == spec.npad  # slice stride = padded line


def test_plan_buffers_cover_pseudocode_arrays():
    plans, spec = elastic_plans()
    generic = plans["generic"].buffers
    # space-time arrays are registered slot-wise (one buffer per time
    # level / dimension) so the cache model sees the true footprint
    for o in range(spec.order + 1):
        assert f"p[{o}]" in generic
    for name in ("flux[0][0]", "dF[3][2]", "qavg", "favg"):
        assert name in generic, name
    splitck = plans["splitck"].buffers
    assert "pnext" in splitck
    assert not any(b.startswith("dF") for b in splitck)  # the reformulation's point


def test_plan_phases_ordered():
    plans, _ = elastic_plans()
    assert plans["splitck"].phases() == [
        "predictor",
        "favg_recompute",
        "face_projection",
    ]


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**31), order=st.integers(3, 6))
def test_variant_equivalence_property(seed, order):
    """For random states and orders, all variants agree to round-off."""
    pde = AcousticPDE()
    spec = KernelSpec(order=order, nvar=4, nparam=2, arch="skx")
    q = pde.example_state((order,) * 3, np.random.default_rng(seed))
    results = [
        make_kernel(v, spec, pde).predictor(q, dt=0.01, h=1.0) for v in VARIANTS
    ]
    for r in results[1:]:
        np.testing.assert_allclose(r.qavg, results[0].qavg, atol=1e-11)
        np.testing.assert_allclose(r.vavg, results[0].vavg, atol=1e-11)


def test_combine_sources_sums_colocated_terms():
    from repro.core.variants import MultiElementSource, combine_sources

    rng = np.random.default_rng(7)
    n, m = 3, 4

    def part(scale):
        return ElementSource(
            projection=rng.standard_normal((n, n, n)),
            amplitude=scale * np.array([1.0, 0.5, 0.0, 0.0]),
            derivatives=rng.standard_normal(n),
        )

    a, b = part(1.0), part(0.25)
    assert combine_sources([]) is None
    assert combine_sources([a]) is a
    assert a.parts == (a,)
    combined = combine_sources([a, b])
    assert isinstance(combined, MultiElementSource)
    assert combined.parts == (a, b)
    for o in range(n):
        np.testing.assert_array_equal(combined.term(o), a.term(o) + b.term(o))
    assert combined.projection.shape == (2, n, n, n)
    with pytest.raises(ValueError):
        MultiElementSource(parts=(a,))
