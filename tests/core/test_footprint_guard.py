"""Footprint regression guard (paper Sec. IV-A, via the machine model).

The paper's central memory claim: the dimension-split CK reformulation
drops the STP's temporary footprint from ``O(N^{d+1} m d)`` (generic,
LoG) to ``O(N^d m)`` (SplitCK, AoSoA).  These tests pin the *scaling
exponent* of the recorded plans' ``temp_footprint_bytes`` -- the same
quantity the cache model consumes -- so a future refactor cannot
silently regress the working-set reduction.

Plans are recorded at ``arch="noarch"`` (no SIMD padding) so the fitted
exponents are clean powers of N.
"""

import numpy as np
import pytest

from repro.core.spec import KernelSpec
from repro.core.variants import make_kernel
from repro.pde import CurvilinearElasticPDE

PDE = CurvilinearElasticPDE()
ORDERS = (3, 4, 6, 8)

#: expected power of N in the temp footprint, d = 3
EXPONENT = {"generic": 4, "log": 4, "splitck": 3, "aosoa": 3}


def _temp_bytes(variant, order):
    spec = KernelSpec(
        order=order, nvar=PDE.nvar, nparam=PDE.nparam, arch="noarch"
    )
    plan = make_kernel(variant, spec, PDE).build_plan(with_source=False)
    return plan.temp_footprint_bytes


def _fitted_exponent(variant):
    sizes = [_temp_bytes(variant, order) for order in ORDERS]
    slope, _ = np.polyfit(np.log(ORDERS), np.log(sizes), 1)
    return slope, sizes


@pytest.mark.parametrize("variant", sorted(EXPONENT))
def test_temp_footprint_scaling_exponent(variant):
    slope, sizes = _fitted_exponent(variant)
    assert all(a < b for a, b in zip(sizes, sizes[1:]))
    assert abs(slope - EXPONENT[variant]) < 0.35, (
        f"{variant}: temp footprint scales like N^{slope:.2f}, "
        f"expected N^{EXPONENT[variant]}"
    )


def test_splitck_beats_spacetime_variants_at_every_order():
    """The reduction must hold pointwise, not just asymptotically."""
    for order in ORDERS:
        split = _temp_bytes("splitck", order)
        for fat in ("generic", "log"):
            assert split < _temp_bytes(fat, order) / 2, (
                f"splitck not at least 2x below {fat} at order {order}"
            )


def test_spacetime_footprint_ratio_tracks_order():
    """generic/splitck temp ratio must grow ~linearly with N (the extra
    space-time factor), pinning the O(N) separation."""
    ratios = [
        _temp_bytes("generic", order) / _temp_bytes("splitck", order)
        for order in ORDERS
    ]
    assert all(a < b for a, b in zip(ratios, ratios[1:]))
    growth = ratios[-1] / ratios[0]
    expected = ORDERS[-1] / ORDERS[0]
    assert growth == pytest.approx(expected, rel=0.35)
