"""Tests for the Sec. V-A on-the-fly-transpose variant (transpose_uf)."""

import numpy as np
import pytest

from repro.codegen.plan import TransposeOp
from repro.core.reference import ReferenceCK
from repro.core.spec import KernelSpec
from repro.core.variants import make_kernel
from repro.pde import AcousticPDE, CurvilinearElasticPDE


def setup(order=4):
    pde = CurvilinearElasticPDE()
    spec = KernelSpec(order=order, nvar=9, nparam=12, arch="skx")
    q = pde.example_state((order,) * 3, np.random.default_rng(2))
    return pde, spec, q


def test_matches_dense_reference():
    pde, spec, q = setup()
    kernel = make_kernel("transpose_uf", spec, pde)
    result = kernel.predictor(q, dt=0.01, h=0.5)
    ref = ReferenceCK(spec, pde).predictor(q, dt=0.01, h=0.5)
    np.testing.assert_allclose(result.qavg, ref.qavg, atol=1e-12)
    np.testing.assert_allclose(result.vavg, ref.vavg, atol=1e-12)


def test_numerically_identical_to_splitck():
    pde, spec, q = setup(order=5)
    a = make_kernel("transpose_uf", spec, pde).predictor(q, dt=0.01, h=0.5)
    b = make_kernel("splitck", spec, pde).predictor(q, dt=0.01, h=0.5)
    np.testing.assert_array_equal(a.qavg, b.qavg)  # same float ops, same bits
    np.testing.assert_array_equal(a.vavg, b.vavg)


def test_plan_rewrites_user_functions():
    pde, spec, _ = setup()
    plan = make_kernel("transpose_uf", spec, pde).build_plan()
    split = make_kernel("splitck", spec, pde).build_plan()

    # SoA staging buffers appear
    assert "soaQ" in plan.buffers and "soaF" in plan.buffers
    # two transposes per user-function call
    transposes = plan.ops_of(TransposeOp)
    n_user = sum(
        1 for op in split.ops
        if getattr(op, "name", "").startswith(("flux_", "ncp_"))
    )
    assert len(transposes) == 2 * n_user
    # the user functions themselves are now vectorized
    mix = plan.flop_counts()
    split_mix = split.flop_counts()
    # remaining scalar work: point source + face projection only
    assert mix.scalar_fraction < 0.07 < split_mix.scalar_fraction
    # GEMM structure untouched
    assert plan.gemm_shapes() == split.gemm_shapes()


def test_transpose_costs_make_it_slower_than_splitck():
    """The paper's verdict for cheap linear fluxes, at the model level."""
    from repro.machine.profiler import Profiler

    pde, spec, _ = setup(order=9)
    profiler = Profiler()
    slow = profiler.profile(make_kernel("transpose_uf", spec, pde).build_plan())
    fast = profiler.profile(make_kernel("splitck", spec, pde).build_plan())
    assert slow.gflops < fast.gflops


def test_works_with_small_systems_too():
    pde = AcousticPDE()
    spec = KernelSpec(order=4, nvar=4, nparam=2, arch="skx")
    q = pde.example_state((4,) * 3, np.random.default_rng(0))
    result = make_kernel("transpose_uf", spec, pde).predictor(q, dt=0.01, h=1.0)
    ref = ReferenceCK(spec, pde).predictor(q, dt=0.01, h=1.0)
    np.testing.assert_allclose(result.qavg, ref.qavg, atol=1e-12)
