"""Tests for the nonlinear (Picard) space-time predictor extension."""

import numpy as np
import pytest

from repro.core.picard import PicardSTP, time_integration_matrix
from repro.core.spec import KernelSpec
from repro.core.variants import make_kernel
from repro.basis.operators import cached_operators
from repro.pde import AcousticPDE, BurgersPDE


def test_time_integration_matrix_exact_on_polynomials():
    """K integrates the interpolant of x^p exactly: K @ x^p = x^{p+1}/(p+1)."""
    ops = cached_operators(6)
    k = time_integration_matrix(ops.nodes)
    for p in range(6):
        vals = ops.nodes**p
        np.testing.assert_allclose(
            k @ vals, ops.nodes ** (p + 1) / (p + 1), atol=1e-11
        )


def test_picard_matches_ck_for_linear_pde():
    """On a linear system Picard and Cauchy-Kowalewsky agree to O(dt^{N+1})."""
    pde = AcousticPDE()
    spec = KernelSpec(order=5, nvar=4, nparam=2, arch="skx")
    q = pde.example_state((5,) * 3, np.random.default_rng(0))
    dt, h = 2e-4, 0.5
    picard = PicardSTP(spec, pde).predictor(q, dt, h)
    ck = make_kernel("splitck", spec, pde).predictor(q, dt, h)
    np.testing.assert_allclose(picard.qavg, ck.qavg, atol=1e-14, rtol=1e-10)
    np.testing.assert_allclose(picard.vavg, ck.vavg, atol=1e-12, rtol=1e-8)
    for key in ck.qface:
        np.testing.assert_allclose(picard.qface[key], ck.qface[key], atol=1e-14,
                                   rtol=1e-10)


def test_picard_with_source_matches_ck():
    from repro.core.variants import ElementSource

    pde = AcousticPDE()
    spec = KernelSpec(order=4, nvar=4, nparam=2, arch="skx")
    ops = cached_operators(4)
    amp = np.zeros(6)
    amp[0] = 1.0
    source = ElementSource(
        projection=ops.source_projection(np.array([0.4, 0.5, 0.6])),
        amplitude=amp,
        derivatives=np.array([1.0, 0.5, 0.25, 0.125]),
    )
    q = pde.example_state((4,) * 3, np.random.default_rng(1))
    dt, h = 1e-4, 0.5
    picard = PicardSTP(spec, pde).predictor(q, dt, h, source=source)
    ck = make_kernel("generic", spec, pde).predictor(q, dt, h, source=source)
    np.testing.assert_allclose(picard.qavg, ck.qavg, atol=1e-13, rtol=1e-8)
    np.testing.assert_allclose(picard.savg, ck.savg, atol=1e-14, rtol=1e-10)


def test_picard_converges_geometrically():
    pde = AcousticPDE()
    spec = KernelSpec(order=4, nvar=4, nparam=2, arch="skx")
    q = pde.example_state((4,) * 3, np.random.default_rng(2))
    kernel = PicardSTP(spec, pde, max_iterations=30, tolerance=1e-15)
    kernel.predictor(q, dt=1e-4, h=0.5)
    assert kernel.last_residual < 1e-13
    assert kernel.last_iterations < 30


def test_burgers_rejected_by_linear_kernels():
    pde = BurgersPDE()
    spec = KernelSpec(order=4, nvar=1, arch="skx")
    with pytest.raises(TypeError, match="nonlinear"):
        make_kernel("splitck", spec, pde)
    with pytest.raises(TypeError):
        pde.flux_matrix(np.zeros(0), 0)


def test_picard_solves_burgers_short_time():
    """The nonlinear predictor tracks the characteristics solution."""
    pde = BurgersPDE(direction=(1.0, 0.0, 0.0))
    order = 5
    spec = KernelSpec(order=order, nvar=1, arch="skx")
    ops = cached_operators(order)
    h = 1.0

    def initial(points):
        return 0.2 + 0.1 * np.sin(2 * np.pi * points[..., 0])

    # one element covering [0,1]^3 with periodic-in-spirit smooth data
    coords = np.zeros((order, order, order, 3))
    coords[..., 0] = ops.nodes[None, None, :]
    coords[..., 1] = ops.nodes[None, :, None]
    coords[..., 2] = ops.nodes[:, None, None]
    q0 = initial(coords)[..., None]

    dt = 5e-3
    kernel = PicardSTP(spec, pde, max_iterations=20, tolerance=1e-14)
    result = kernel.predictor(q0, dt, h)

    # compare the *time-averaged* state with the quadrature of the
    # exact characteristics solution (interior nodes only: the single
    # element has no neighbor coupling, so boundary nodes see the
    # missing upwind information)
    exact_avg = np.zeros_like(q0[..., 0])
    for tau, w in zip(ops.nodes, ops.weights):
        exact_avg += w * pde.exact_smooth_solution(initial, coords, tau * dt)
    exact_avg *= dt
    interior = (slice(1, -1),) * 3
    err = np.abs(result.qavg[..., 0][interior] - exact_avg[interior]).max()
    # scale: qavg ~ dt * 0.3 = 1.5e-3; the residual combines the
    # quadratic flux's interpolation error (sin 4 pi x on N=5 points)
    # and the O(dt^3) collocation-vs-characteristics difference.
    assert err < 2e-6, err


def test_nonlinearity_actually_matters():
    """Doubling the state does NOT double the Burgers predictor output."""
    pde = BurgersPDE(direction=(1.0, 0.0, 0.0))
    spec = KernelSpec(order=4, nvar=1, arch="skx")
    rng = np.random.default_rng(3)
    q = 0.5 + 0.2 * rng.random((4, 4, 4, 1))
    kernel = PicardSTP(spec, pde)
    r1 = kernel.predictor(q, 0.02, 1.0)
    r2 = kernel.predictor(2 * q, 0.02, 1.0)
    rel = np.abs(r2.qavg - 2 * r1.qavg).max() / np.abs(r2.qavg).max()
    assert rel > 1e-3  # ~1.6%: the quadratic flux breaks scaling


def test_validation():
    pde = AcousticPDE()
    with pytest.raises(ValueError):
        PicardSTP(KernelSpec(order=4, nvar=4, nparam=2, dim=2), pde)
    kernel = PicardSTP(KernelSpec(order=4, nvar=4, nparam=2), pde)
    with pytest.raises(ValueError):
        kernel.predictor(np.zeros((3, 3, 3, 6)), 1e-3, 1.0)