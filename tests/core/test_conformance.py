"""Cross-variant conformance sweep (the PR's correctness tentpole guard).

Every registered kernel variant must reproduce the ``generic`` oracle on
seeded random inputs across the full (order, dimension, PDE) grid the
repo supports:

* orders 2 .. 6,
* dims {2, 3} -- the STP kernels are 3-D only, so "2-D" problems enter
  as z-extruded (z-invariant) 3-D states; every variant must preserve
  that invariance *and* agree with the oracle on it.  A genuine
  ``dim=2`` spec must be rejected uniformly by all variants.
* PDEs {advection, acoustic, elastic}.

Tolerance is 1e-11 *relative* -- tighter than the scheme's discretization
error by many orders, loose enough for contraction-order differences.
"""

import inspect

import numpy as np
import pytest

from repro.core.spec import KernelSpec
from repro.core.variants import KERNEL_CLASSES, make_kernel
import repro.core.variants as variants_pkg
from repro.pde import AcousticPDE, AdvectionPDE, ElasticPDE

PDES = {
    "advection": AdvectionPDE,
    "acoustic": AcousticPDE,
    "elastic": ElasticPDE,
}

ORDERS = range(2, 7)
NON_ORACLE_VARIANTS = [v for v in KERNEL_CLASSES if v != "generic"]


def _spec(pde, order, arch="skx"):
    return KernelSpec(order=order, nvar=pde.nvar, nparam=pde.nparam, arch=arch)


def _random_state(pde, order, dim, seed):
    """Seeded random element state; dim=2 means z-invariant (extruded)."""
    rng = np.random.default_rng(seed)
    q = pde.example_state((order,) * 3, rng)
    q[..., : pde.nvar] += 0.25 * rng.standard_normal(q[..., : pde.nvar].shape)
    if dim == 2:
        q[:] = q[:1]  # copy the first z-slab everywhere: z-invariant
    return q


def _assert_conforms(result, oracle, rtol=1e-11):
    np.testing.assert_allclose(result.qavg, oracle.qavg, rtol=rtol, atol=1e-14)
    np.testing.assert_allclose(result.vavg, oracle.vavg, rtol=rtol, atol=1e-14)
    for key, face in oracle.qface.items():
        np.testing.assert_allclose(result.qface[key], face, rtol=rtol, atol=1e-14)


@pytest.mark.parametrize("pde_name", sorted(PDES))
@pytest.mark.parametrize("dim", [2, 3])
@pytest.mark.parametrize("order", ORDERS)
@pytest.mark.parametrize("variant", NON_ORACLE_VARIANTS)
def test_variant_conforms_to_generic(variant, order, dim, pde_name):
    pde = PDES[pde_name]()
    spec = _spec(pde, order)
    q = _random_state(pde, order, dim, seed=hash((order, dim, pde_name)) % 2**32)
    dt, h = 2e-3, 0.6
    oracle = make_kernel("generic", spec, pde).predictor(q, dt, h)
    result = make_kernel(variant, spec, pde).predictor(q, dt, h)
    _assert_conforms(result, oracle)


@pytest.mark.parametrize("variant", NON_ORACLE_VARIANTS)
def test_extruded_state_stays_z_invariant(variant):
    """A z-invariant input must produce a z-invariant qavg (true 2-D limit)."""
    pde = AcousticPDE()
    spec = _spec(pde, 4)
    q = _random_state(pde, 4, dim=2, seed=11)
    result = make_kernel(variant, spec, pde).predictor(q, dt=1e-3, h=0.5)
    assert np.max(np.abs(result.qavg - result.qavg[:1])) < 1e-13


@pytest.mark.parametrize("variant", sorted(KERNEL_CLASSES))
def test_dim2_spec_rejected_by_every_variant(variant):
    pde = AcousticPDE()
    spec = KernelSpec(order=3, nvar=pde.nvar, nparam=pde.nparam, dim=2)
    with pytest.raises(ValueError, match="d = 3"):
        make_kernel(variant, spec, pde)


def test_variant_table_in_sync_with_registry():
    """The docstring table in variants/__init__ must list exactly the
    registered variants (guards against registry/doc drift)."""
    doc = inspect.getdoc(variants_pkg)
    lines = doc.splitlines()
    separators = [i for i, ln in enumerate(lines) if set(ln.split()) == {
        "=" * len(part) for part in ln.split()} and ln.startswith("=")]
    assert len(separators) >= 3, "expected an RST grid table in the docstring"
    body = lines[separators[1] + 1 : separators[2]]
    table_variants = {ln.split()[0] for ln in body if ln.strip()}
    assert table_variants == set(KERNEL_CLASSES), (
        f"docstring table lists {sorted(table_variants)}, registry has "
        f"{sorted(KERNEL_CLASSES)}"
    )
