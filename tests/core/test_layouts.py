"""Unit and property tests for the AoS / SoA / AoSoA tensor layouts."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.layouts import Layout, TensorLayout
from repro.core.spec import KernelSpec


def make_layout(kind, n=5, m=9, vec=8):
    return TensorLayout(kind, (n, n, n), m, vec)


@pytest.mark.parametrize("kind", list(Layout))
def test_pack_unpack_roundtrip(kind):
    layout = make_layout(kind)
    rng = np.random.default_rng(0)
    canonical = rng.standard_normal(layout.logical_shape)
    np.testing.assert_array_equal(layout.unpack(layout.pack(canonical)), canonical)


def test_padded_shapes():
    assert make_layout(Layout.AOS, n=6, m=21, vec=8).padded_shape == (6, 6, 6, 24)
    assert make_layout(Layout.SOA, n=6, m=21, vec=8).padded_shape == (21, 6, 6, 8)
    assert make_layout(Layout.AOSOA, n=6, m=21, vec=8).padded_shape == (6, 6, 21, 8)


def test_aosoa_quantity_dimension_between_spatial():
    """The hybrid layout is A[k, j, s, i] -- quantity between y and x (Sec. V-A)."""
    layout = make_layout(Layout.AOSOA, n=4, m=3, vec=4)
    canonical = np.arange(4 * 4 * 4 * 3, dtype=float).reshape(4, 4, 4, 3)
    packed = layout.pack(canonical)
    k, j, i, s = 1, 2, 3, 1
    assert packed[k, j, s, i] == canonical[k, j, i, s]


def test_padding_lanes_are_zero():
    layout = make_layout(Layout.AOS, n=4, m=5, vec=8)
    packed = layout.pack(np.ones(layout.logical_shape))
    assert np.all(packed[..., 5:] == 0.0)


def test_aosoa_soa_line_is_view():
    layout = make_layout(Layout.AOSOA, n=6, m=9, vec=8)
    rng = np.random.default_rng(1)
    packed = layout.pack(rng.standard_normal(layout.logical_shape))
    line = layout.soa_line(packed, (2, 3))
    assert line.shape == (9, 8)
    assert line.base is not None  # zero-copy view
    # The line holds quantity-major data: line[s, i] == canonical[2, 3, i, s].
    canonical = layout.unpack(packed)
    np.testing.assert_array_equal(line[:, :6], canonical[2, 3].T)


def test_soa_line_rejected_for_other_layouts():
    layout = make_layout(Layout.AOS)
    with pytest.raises(ValueError):
        layout.soa_line(layout.empty(), (0, 0))


def test_soa_line_index_arity():
    layout = make_layout(Layout.AOSOA)
    with pytest.raises(ValueError):
        layout.soa_line(layout.empty(), (0,))


def test_nbytes_and_overhead():
    layout = make_layout(Layout.AOS, n=6, m=21, vec=8)
    assert layout.nbytes == 6 * 6 * 6 * 24 * 8
    assert layout.padding_overhead == pytest.approx(3 / 21)
    scalar = make_layout(Layout.AOS, n=6, m=21, vec=1)
    assert scalar.padding_overhead == 0.0


def test_for_spec():
    spec = KernelSpec(order=6, nvar=9, nparam=12, arch="skx")
    layout = TensorLayout.for_spec(Layout.AOSOA, spec)
    assert layout.padded_shape == (6, 6, 21, 8)
    assert layout.vector_doubles == 8


def test_pack_shape_validation():
    layout = make_layout(Layout.AOS)
    with pytest.raises(ValueError):
        layout.pack(np.zeros((2, 2)))
    with pytest.raises(ValueError):
        layout.unpack(np.zeros((2, 2)))


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(kind=Layout.AOS, space_shape=(), nquantities=3),
        dict(kind=Layout.AOS, space_shape=(0, 3), nquantities=3),
        dict(kind=Layout.AOS, space_shape=(3,), nquantities=0),
        dict(kind=Layout.AOS, space_shape=(3,), nquantities=3, vector_doubles=0),
    ],
)
def test_layout_validation(kwargs):
    with pytest.raises(ValueError):
        TensorLayout(**kwargs)


@settings(max_examples=40, deadline=None)
@given(
    kind=st.sampled_from(list(Layout)),
    n=st.integers(2, 8),
    m=st.integers(1, 12),
    vec=st.sampled_from([1, 2, 4, 8]),
    seed=st.integers(0, 2**31),
)
def test_roundtrip_property(kind, n, m, vec, seed):
    """pack/unpack is lossless for every layout, size and SIMD width."""
    layout = TensorLayout(kind, (n, n, n), m, vec)
    rng = np.random.default_rng(seed)
    canonical = rng.standard_normal(layout.logical_shape)
    np.testing.assert_array_equal(layout.unpack(layout.pack(canonical)), canonical)


@settings(max_examples=20, deadline=None)
@given(
    src=st.sampled_from(list(Layout)),
    dst=st.sampled_from(list(Layout)),
    seed=st.integers(0, 2**31),
)
def test_layout_conversion_via_canonical(src, dst, seed):
    """Converting src -> canonical -> dst preserves all logical entries."""
    ls = make_layout(src, n=4, m=7, vec=4)
    ld = make_layout(dst, n=4, m=7, vec=4)
    rng = np.random.default_rng(seed)
    canonical = rng.standard_normal(ls.logical_shape)
    converted = ld.unpack(ld.pack(ls.unpack(ls.pack(canonical))))
    np.testing.assert_array_equal(converted, canonical)
