"""Unit tests for the discrete DG operators."""

import numpy as np
import pytest

from repro.basis.operators import DGOperators, cached_operators


@pytest.fixture(params=[4, 6, 9])
def ops(request):
    return DGOperators(request.param)


def test_mass_matrix_is_diagonal_with_weights(ops):
    m = ops.mass_matrix()
    np.testing.assert_allclose(np.diag(m), ops.weights)
    np.testing.assert_allclose(m - np.diag(np.diag(m)), 0.0)


def test_mass_matrix_is_exact_gram_matrix(ops):
    """With Gauss-Legendre nodes, w_i delta_ij equals the true Gram matrix.

    The L2 inner products (phi_i, phi_j) involve degree 2N-2 <= 2N-1
    polynomials, so an N-point Gauss rule evaluates them exactly, and the
    quadrature-diagonal mass matrix is the *exact* mass matrix.
    """
    fine = DGOperators(2 * ops.order)  # exact for degree up to 4N-1
    v = ops.basis.vandermonde(fine.nodes)  # (nfine, N)
    gram = v.T @ (fine.weights[:, None] * v)
    np.testing.assert_allclose(gram, ops.mass_matrix(), atol=1e-12)


def test_stiffness_is_mass_times_derivative(ops):
    np.testing.assert_allclose(
        ops.stiffness_matrix(), ops.weights[:, None] * ops.derivative
    )


def test_summation_by_parts_identity(ops):
    """K + K^T = phi(1)phi(1)^T - phi(0)phi(0)^T (exact integration by parts)."""
    k = ops.stiffness_matrix()
    boundary = np.outer(ops.face_right, ops.face_right) - np.outer(
        ops.face_left, ops.face_left
    )
    np.testing.assert_allclose(k + k.T, boundary, atol=1e-10)


def test_derivative_transpose_precomputed(ops):
    np.testing.assert_allclose(ops.derivative_T, ops.derivative.T)
    assert ops.derivative_T.flags["C_CONTIGUOUS"]


def test_source_projection_1d_reproduces_point_evaluation(ops):
    """Integrating P(xi) against nodal values of f equals f(xi) for poly f.

    P is defined so that sum_k w_k P_k f_k = f(xi) -- a Dirac integrated
    against the interpolant.
    """
    xi = 0.37
    p = ops.source_projection_1d(xi)
    rng = np.random.default_rng(0)
    coeffs = rng.standard_normal(ops.order)
    poly = np.polynomial.Polynomial(coeffs)
    f = poly(ops.nodes)
    assert np.dot(ops.weights * p, f) == pytest.approx(poly(xi), abs=1e-9)


def test_source_projection_3d_is_tensor_product(ops):
    point = np.array([0.2, 0.5, 0.8])
    p3 = ops.source_projection(point)
    assert p3.shape == (ops.order,) * 3
    f0 = ops.source_projection_1d(0.2)
    f1 = ops.source_projection_1d(0.5)
    f2 = ops.source_projection_1d(0.8)
    expected = np.einsum("i,j,k->ijk", f0, f1, f2)
    np.testing.assert_allclose(p3, expected)


def test_source_projection_rejects_outside_element(ops):
    with pytest.raises(ValueError):
        ops.source_projection_1d(1.5)


def test_lifting_vectors(ops):
    np.testing.assert_allclose(ops.lifting_left(), ops.face_left / ops.weights)
    np.testing.assert_allclose(ops.lifting_right(), ops.face_right / ops.weights)


def test_order_validation():
    with pytest.raises(ValueError):
        DGOperators(0)


def test_cached_operators_identity():
    assert cached_operators(5) is cached_operators(5)
    assert cached_operators(5) is not cached_operators(6)
