"""Unit tests for quadrature rules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.basis.quadrature import QuadratureRule, gauss_legendre, gauss_lobatto, get_rule


@pytest.mark.parametrize("n", range(1, 16))
def test_legendre_weights_sum_to_measure(n):
    rule = gauss_legendre(n)
    assert rule.weights.sum() == pytest.approx(1.0, abs=1e-14)


@pytest.mark.parametrize("n", range(2, 16))
def test_lobatto_weights_sum_to_measure(n):
    rule = gauss_lobatto(n)
    assert rule.weights.sum() == pytest.approx(1.0, abs=1e-13)


@pytest.mark.parametrize("n", range(1, 13))
def test_legendre_matches_numpy(n):
    rule = gauss_legendre(n)
    x_ref, w_ref = np.polynomial.legendre.leggauss(n)
    np.testing.assert_allclose(rule.nodes, (x_ref + 1) / 2, atol=1e-13)
    np.testing.assert_allclose(rule.weights, w_ref / 2, atol=1e-13)


@pytest.mark.parametrize("n", range(2, 13))
def test_lobatto_endpoints(n):
    rule = gauss_lobatto(n)
    assert rule.nodes[0] == pytest.approx(0.0, abs=1e-15)
    assert rule.nodes[-1] == pytest.approx(1.0, abs=1e-15)


@pytest.mark.parametrize("name", ["gauss_legendre", "gauss_lobatto"])
@pytest.mark.parametrize("n", range(2, 12))
def test_exactness_up_to_declared_degree(name, n):
    rule = get_rule(name, n)
    for p in range(rule.degree + 1):
        exact = 1.0 / (p + 1)  # integral of x^p over [0, 1]
        approx = float(np.dot(rule.weights, rule.nodes**p))
        assert approx == pytest.approx(exact, rel=1e-12, abs=1e-13), f"degree {p}"


def test_legendre_not_exact_beyond_degree():
    rule = gauss_legendre(3)  # exact to degree 5
    p = 6
    approx = float(np.dot(rule.weights, rule.nodes**p))
    assert approx != pytest.approx(1.0 / (p + 1), rel=1e-12)


def test_nodes_sorted_and_interior():
    for n in range(1, 12):
        rule = gauss_legendre(n)
        assert np.all(np.diff(rule.nodes) > 0)
        assert np.all((rule.nodes > 0) & (rule.nodes < 1))


def test_weights_positive():
    for n in range(2, 12):
        assert np.all(gauss_legendre(n).weights > 0)
        assert np.all(gauss_lobatto(n).weights > 0)


def test_integrate_method_shapes():
    rule = gauss_legendre(5)
    vals = np.ones((3, 5))
    out = rule.integrate(vals, axis=-1)
    assert out.shape == (3,)
    np.testing.assert_allclose(out, 1.0)


def test_integrate_rejects_bad_axis_length():
    rule = gauss_legendre(5)
    with pytest.raises(ValueError):
        rule.integrate(np.ones(4))


def test_get_rule_unknown_name():
    with pytest.raises(ValueError, match="unknown quadrature"):
        get_rule("simpson", 3)


def test_invalid_sizes():
    with pytest.raises(ValueError):
        gauss_legendre(0)
    with pytest.raises(ValueError):
        gauss_lobatto(1)


def test_rule_validation():
    with pytest.raises(ValueError):
        QuadratureRule("x", np.zeros((2, 2)), np.zeros((2, 2)))
    with pytest.raises(ValueError):
        QuadratureRule("x", np.zeros(3), np.zeros(2))


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=10),
    coeffs=st.lists(st.floats(-5, 5), min_size=1, max_size=6),
)
def test_polynomial_integration_property(n, coeffs):
    """Quadrature integrates any polynomial within its degree exactly."""
    rule = gauss_legendre(n)
    deg = len(coeffs) - 1
    if deg > rule.degree:
        coeffs = coeffs[: rule.degree + 1]
    poly = np.polynomial.Polynomial(coeffs)
    exact = poly.integ()(1.0) - poly.integ()(0.0)
    approx = float(np.dot(rule.weights, poly(rule.nodes)))
    assert approx == pytest.approx(exact, rel=1e-10, abs=1e-10)
