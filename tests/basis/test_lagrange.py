"""Unit tests for the barycentric Lagrange basis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.basis.lagrange import LagrangeBasis
from repro.basis.quadrature import gauss_legendre, gauss_lobatto


@pytest.fixture(params=[3, 5, 8, 11])
def basis(request):
    return LagrangeBasis(gauss_legendre(request.param))


def test_cardinal_property(basis):
    """phi_j(x_i) = delta_ij."""
    vals = basis.evaluate(basis.nodes)
    np.testing.assert_allclose(vals, np.eye(basis.n), atol=1e-12)


def test_partition_of_unity(basis):
    x = np.linspace(0, 1, 17)
    vals = basis.evaluate(x)
    np.testing.assert_allclose(vals.sum(axis=-1), 1.0, atol=1e-11)


def test_interpolates_polynomials_exactly(basis):
    """A polynomial of degree < n is reproduced exactly."""
    rng = np.random.default_rng(42)
    coeffs = rng.standard_normal(basis.n)
    poly = np.polynomial.Polynomial(coeffs)
    nodal = poly(basis.nodes)
    x = np.linspace(0, 1, 23)
    np.testing.assert_allclose(basis.interpolate(nodal, x), poly(x), atol=1e-9)


def test_derivative_matrix_exact_on_polynomials(basis):
    rng = np.random.default_rng(7)
    coeffs = rng.standard_normal(basis.n)
    poly = np.polynomial.Polynomial(coeffs)
    d = basis.derivative_matrix()
    np.testing.assert_allclose(d @ poly(basis.nodes), poly.deriv()(basis.nodes), atol=1e-8)


def test_derivative_matrix_annihilates_constants(basis):
    d = basis.derivative_matrix()
    np.testing.assert_allclose(d @ np.ones(basis.n), 0.0, atol=1e-10)


def test_boundary_values_interpolate(basis):
    left, right = basis.boundary_values()
    rng = np.random.default_rng(3)
    coeffs = rng.standard_normal(basis.n)
    poly = np.polynomial.Polynomial(coeffs)
    nodal = poly(basis.nodes)
    assert left @ nodal == pytest.approx(poly(0.0), abs=1e-9)
    assert right @ nodal == pytest.approx(poly(1.0), abs=1e-9)


def test_evaluate_at_node_returns_unit_vector(basis):
    vals = basis.evaluate(float(basis.nodes[2]))[0]
    expected = np.zeros(basis.n)
    expected[2] = 1.0
    np.testing.assert_allclose(vals, expected, atol=1e-13)


def test_lobatto_boundary_vectors_are_cardinal():
    basis = LagrangeBasis(gauss_lobatto(6))
    left, right = basis.boundary_values()
    np.testing.assert_allclose(left, np.eye(6)[0], atol=1e-12)
    np.testing.assert_allclose(right, np.eye(6)[-1], atol=1e-12)


def test_vandermonde_shape(basis):
    x = np.linspace(0, 1, 9)
    v = basis.vandermonde(x)
    assert v.shape == (9, basis.n)


@settings(max_examples=20, deadline=None)
@given(n=st.integers(min_value=2, max_value=10), seed=st.integers(0, 2**31))
def test_interpolation_is_projection(n, seed):
    """Interpolating nodal values back to the nodes is the identity."""
    basis = LagrangeBasis(gauss_legendre(n))
    rng = np.random.default_rng(seed)
    nodal = rng.standard_normal(n)
    np.testing.assert_allclose(basis.interpolate(nodal, basis.nodes), nodal, atol=1e-10)
