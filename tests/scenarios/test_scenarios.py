"""Integration tests for the ready-made scenarios."""

import numpy as np
import pytest

from repro.scenarios import LOH1Scenario, gaussian_pulse_setup
from repro.scenarios.loh1 import HALFSPACE, LAYER


def test_gaussian_pulse_expands():
    solver = gaussian_pulse_setup(elements=2, order=3)
    peak0 = solver.max_abs()
    center_state = solver.states.copy()
    solver.run(0.1)
    assert solver.max_abs() < peak0  # pulse spreads, peak decays
    assert not np.allclose(solver.states, center_state)


def test_gaussian_pulse_conserves_mass():
    solver = gaussian_pulse_setup(elements=2, order=4)
    before = solver.integrate()
    solver.run(0.05)
    np.testing.assert_allclose(solver.integrate()[:4], before[:4], atol=1e-12)


class TestLOH1:
    @pytest.fixture(scope="class")
    def scenario(self):
        sc = LOH1Scenario(elements=3, order=3)
        sc.run(t_end=0.12)
        return sc

    def test_material_layers(self):
        sc = LOH1Scenario(elements=3, order=3)
        mat = sc.material(np.array([0.5, 2.5]))
        assert mat["cs"][0] == LAYER["cs"]
        assert mat["cs"][1] == HALFSPACE["cs"]

    def test_m21_quantities(self, scenario):
        assert scenario.pde.nquantities == 21
        assert scenario.solver.states.shape[-1] == 21

    def test_metric_parameters_stored(self, scenario):
        g = scenario.solver.states[0, 0, 0, 0, 12:21].reshape(3, 3)
        assert np.linalg.det(g) > 0  # valid metric at every node

    def test_source_radiates(self, scenario):
        assert scenario.solver.max_abs() > 1e-8

    def test_receivers_record_motion(self, scenario):
        seis = scenario.seismograms()
        assert len(seis) == 3
        for label, (times, samples) in seis.items():
            assert len(times) == scenario.solver.step_count
            assert samples.shape[1] == 21
        assert scenario.peak_surface_velocity() > 0

    def test_stable(self, scenario):
        assert scenario.solver.max_abs() < 100.0

    def test_double_couple_radiation_pattern(self, scenario):
        """The vertical axis is nodal for an Mxy double couple.

        The receiver directly above the source must record far less
        motion than the off-axis receivers -- the classic four-lobed
        radiation pattern.
        """
        seis = scenario.seismograms()
        peaks = {
            label: float(np.abs(samples[:, :3]).max())
            for label, (_, samples) in seis.items()
        }
        assert peaks["surface_0.50"] < 0.5 * peaks["surface_0.25"]
        assert peaks["surface_0.25"] > 0

    def test_off_axis_receivers_symmetric(self, scenario):
        """Mirror receivers across the nodal plane see equal amplitude."""
        seis = scenario.seismograms()
        p25 = float(np.abs(seis["surface_0.25"][1][:, :3]).max())
        p75 = float(np.abs(seis["surface_0.75"][1][:, :3]).max())
        assert p25 == pytest.approx(p75, rel=0.05)


def test_identity_metric_option():
    sc = LOH1Scenario(elements=3, order=3, curvilinear_amplitude=0.0)
    g = sc.solver.states[0, 0, 0, 0, 12:21].reshape(3, 3)
    np.testing.assert_allclose(g, np.eye(3))
