"""The docs consistency gate: clean on the real tree, loud on seeded rot."""

import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(ROOT / "tools"))

import check_docs  # noqa: E402


def seed_tree(tmp_path: Path, markdown: str, scripts: dict | None = None) -> Path:
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "guide.md").write_text(markdown)
    for rel, source in (scripts or {}).items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return tmp_path


def test_real_repo_docs_are_clean(capsys):
    assert check_docs.main(["--check", "--root", str(ROOT)]) == 0
    assert "clean" in capsys.readouterr().out


def test_dead_relative_link_fails_the_gate(tmp_path, capsys):
    root = seed_tree(tmp_path, "see [the spec](missing.md) for details\n")
    assert check_docs.main(["--check", "--root", str(root)]) == 1
    err = capsys.readouterr().err
    assert "dead link" in err and "missing.md" in err


def test_dead_link_fails_from_the_command_line(tmp_path):
    """The exact invocation CI runs must exit non-zero on a seeded link."""
    root = seed_tree(tmp_path, "[gone](nowhere.md)\n")
    result = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "check_docs.py"),
         "--check", "--root", str(root)],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 1
    assert "dead link" in result.stderr


def test_valid_relative_and_external_links_pass(tmp_path):
    (tmp_path / "other.md").touch()
    root = seed_tree(
        tmp_path,
        "[sibling](../other.md) [root](other.md) "
        "[web](https://example.com/x) [anchor](https://e.com/a#b)\n",
    )
    assert check_docs.main(["--check", "--root", str(root)]) == 0


def test_stale_repro_reference_is_flagged(tmp_path, capsys):
    root = seed_tree(
        tmp_path,
        "use `repro.parallel.build_dependency_graph` "
        "but never `repro.parallel.does_not_exist`\n",
    )
    assert check_docs.main(["--check", "--root", str(root)]) == 1
    err = capsys.readouterr().err
    assert "repro.parallel.does_not_exist" in err
    assert "build_dependency_graph" not in err


def test_stale_cli_flag_is_flagged(tmp_path, capsys):
    script = (
        "import argparse\n"
        "p = argparse.ArgumentParser()\n"
        "p.add_argument('--quick', action='store_true')\n"
    )
    root = seed_tree(
        tmp_path,
        "run `python tools/bench.py --quick` or "
        "`python tools/bench.py --warp-speed`\n",
        scripts={"tools/bench.py": script},
    )
    assert check_docs.main(["--check", "--root", str(root)]) == 1
    err = capsys.readouterr().err
    assert "--warp-speed" in err and "--quick" not in err


def test_missing_script_reference_is_flagged(tmp_path, capsys):
    root = seed_tree(tmp_path, "run `python tools/vanished.py --x`\n")
    assert check_docs.main(["--check", "--root", str(root)]) == 1
    assert "missing script" in capsys.readouterr().err


def test_flags_of_unparseable_script_are_skipped(tmp_path):
    root = seed_tree(
        tmp_path,
        "run `python tools/broken.py --whatever`\n",
        scripts={"tools/broken.py": "def oops(:\n"},
    )
    assert check_docs.main(["--check", "--root", str(root)]) == 0
