"""The docs tooling must keep docs/api.md fresh and the gate honest."""

import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent.parent
TOOLS = ROOT / "tools"

sys.path.insert(0, str(TOOLS))

import check_docstrings  # noqa: E402
import gen_api_docs  # noqa: E402


def test_api_md_is_up_to_date():
    """CI gate: docs/api.md must match the current docstrings."""
    assert (ROOT / "docs" / "api.md").read_text() == gen_api_docs.render()


def test_render_covers_public_surface():
    text = gen_api_docs.render()
    for _, name in gen_api_docs.PUBLIC_API:
        assert f"## `{name}`" in text
    assert "ADERDGSolver" in text
    assert "GENERATED FILE" in text


def test_render_is_deterministic():
    assert gen_api_docs.render() == gen_api_docs.render()


def test_check_mode_detects_drift(tmp_path):
    stale = tmp_path / "api.md"
    stale.write_text("# stale\n")
    code = gen_api_docs.main(["--check", "--output", str(stale)])
    assert code == 1
    code = gen_api_docs.main(["--output", str(stale)])
    assert code == 0
    assert gen_api_docs.main(["--check", "--output", str(stale)]) == 0


def test_docstring_gate_passes_on_repo():
    """The repo itself must clear the CI threshold."""
    assert check_docstrings.main(["--fail-under", "90"]) == 0


def test_docstring_gate_fails_on_undocumented_code(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "bad.py").write_text("def f():\n    return 1\n")
    code = check_docstrings.main(["--root", str(pkg), "--fail-under", "90"])
    assert code == 1


def test_docstring_gate_counts_inherited_docs(tmp_path, monkeypatch):
    pkg = tmp_path / "docpkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text('"""A package."""\n')
    (pkg / "mod.py").write_text(
        '"""A module."""\n\n'
        "class Base:\n"
        '    """Base."""\n\n'
        "    def hook(self):\n"
        '        """Documented contract."""\n\n'
        "class Child(Base):\n"
        '    """Child."""\n\n'
        "    def hook(self):\n"
        "        return 1\n"
    )
    code = check_docstrings.main(["--root", str(pkg), "--fail-under", "100"])
    assert code == 0


@pytest.mark.parametrize("tool", ["gen_api_docs.py", "check_docstrings.py"])
def test_tools_run_as_scripts(tool):
    """The CI invocation (subprocess, PYTHONPATH=src) must work."""
    args = ["--check"] if tool == "gen_api_docs.py" else []
    result = subprocess.run(
        [sys.executable, str(TOOLS / tool), *args],
        capture_output=True,
        text=True,
        cwd=ROOT,
        env={"PYTHONPATH": str(ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert result.returncode == 0, result.stderr
