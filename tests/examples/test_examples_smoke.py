"""Every script in examples/ must run end to end in quick mode.

The examples are the documentation users actually execute; this smoke
test runs each one in a subprocess with ``REPRO_QUICK=1`` (the same
switch CI uses) so a refactor cannot silently break them.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent.parent
EXAMPLES = sorted((ROOT / "examples").glob("*.py"))


def test_examples_are_discovered():
    """The glob must see the examples (guards against a moved tree)."""
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert "parallel_loh1.py" in names
    assert len(EXAMPLES) >= 6


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_quick(script):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    env["REPRO_QUICK"] = "1"
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        cwd=ROOT,
        env=env,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"{script.name} failed:\n--- stdout ---\n{result.stdout}"
        f"\n--- stderr ---\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{script.name} printed nothing"
