"""Pool lifecycle hygiene: idempotent close, bounded atexit backlog.

The service layer creates and destroys many pool-backed solvers per
process; the old per-instance ``atexit.register(self.close)`` grew the
interpreter's exit-handler list without bound and kept dead pools
reachable until shutdown.  The contract now: one process-wide atexit
handler, a weak live-pool set that shrinks on close, and a
:meth:`~repro.parallel.pool.ShardWorkerPool.close` that is idempotent
under concurrent callers.
"""

import atexit
import threading

from repro.parallel import pool as pool_module
from repro.scenarios import gaussian_pulse_setup

POOLS = 6


def _make_solver():
    solver = gaussian_pulse_setup(elements=2, order=2, num_workers=2)
    solver._ensure_pool()  # the pool is lazy; tests need it live now
    return solver


def test_many_pools_leave_no_atexit_backlog():
    """N create/close cycles: live set returns to baseline, handler
    registered once (the WeakSet can only shrink, never the exit list)."""
    baseline = len(pool_module._LIVE_POOLS)
    solvers = [_make_solver() for _ in range(POOLS)]
    try:
        assert len(pool_module._LIVE_POOLS) == baseline + POOLS
        assert pool_module._ATEXIT_REGISTERED is True
    finally:
        for solver in solvers:
            solver.close()
    assert len(pool_module._LIVE_POOLS) == baseline


def test_close_is_idempotent_sequentially():
    solver = _make_solver()
    pool = solver._pool
    solver.close()
    pool.close()
    pool.close()  # any number of extra closes is a no-op
    assert pool._closed is True


def test_close_is_idempotent_under_concurrent_callers():
    """Racing closers: exactly one does the teardown, none raises."""
    solver = _make_solver()
    pool = solver._pool
    barrier = threading.Barrier(4)
    errors = []

    def closer():
        barrier.wait()
        try:
            pool.close()
        except BaseException as exc:  # noqa: BLE001 -- surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=closer) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert not any(t.is_alive() for t in threads)
    assert errors == []
    assert pool._closed is True
    assert pool not in pool_module._LIVE_POOLS
    assert all(not p.is_alive() for p in pool._processes)
    solver.close()  # solver-level close after pool close is also a no-op


def test_atexit_handler_closes_leaked_pools():
    """The process-wide handler sweeps pools nobody closed."""
    solver = _make_solver()
    pool = solver._pool
    assert pool in pool_module._LIVE_POOLS
    pool_module._close_live_pools()
    assert pool._closed is True
    assert len(pool_module._LIVE_POOLS) == 0
    solver.close()


def test_single_process_wide_atexit_registration():
    """The handler is registered with atexit exactly once, ever."""
    registered = []
    original = atexit.register
    try:
        atexit.register = lambda fn, *a, **k: (registered.append(fn), fn)[1]
        solvers = [_make_solver() for _ in range(3)]
        for solver in solvers:
            solver.close()
    finally:
        atexit.register = original
    # _ATEXIT_REGISTERED was already True from earlier pools in this
    # process, so no new registration may have happened at all
    assert pool_module._close_live_pools not in registered
