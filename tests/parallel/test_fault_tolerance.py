"""Fault injection against the worker pool: SIGKILL a shard mid-run.

The contract under test (see ``docs/parallel.md``): a dead worker
surfaces as a diagnostic :class:`WorkerCrashError` within the poll
interval -- never a raw ``queue.Empty``, never the 120 s barrier
timeout -- and the ``respawn`` / ``serial`` recovery policies finish
the run with states bitwise-identical to the serial solver (possible
by construction: one writer per element, commits only at the barrier).
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.parallel.pool import WorkerCrashError
from repro.scenarios import gaussian_pulse_setup

STEPS = 2 if os.environ.get("REPRO_QUICK") else 3


def _kill_worker(solver, worker_id: int) -> None:
    os.kill(solver._pool._processes[worker_id].pid, signal.SIGKILL)


@pytest.fixture(scope="module")
def serial_run():
    solver = gaussian_pulse_setup(elements=3, order=3)
    dt = solver.stable_dt()
    for _ in range(STEPS):
        solver.step(dt)
    return dt, np.array(solver.states)


def test_sigkill_surfaces_crash_error_quickly(serial_run):
    dt, _ = serial_run
    with gaussian_pulse_setup(elements=3, order=3, num_workers=2) as solver:
        solver.step(dt)
        _kill_worker(solver, 0)
        start = time.monotonic()
        with pytest.raises(WorkerCrashError, match="died during"):
            solver.step(dt)
        assert time.monotonic() - start < 5.0
        crash = solver._pool.last_step_events["crashes"][0]
        assert crash["worker_id"] == 0
        assert crash["phase"] == "predict"
        assert crash["exitcode"] == -signal.SIGKILL
        lo, hi = crash["shard"]
        assert 0 <= lo <= hi < solver.grid.n_elements


def test_crash_error_carries_diagnostics():
    with gaussian_pulse_setup(elements=3, order=3, num_workers=2) as solver:
        solver.step()
        _kill_worker(solver, 1)
        with pytest.raises(WorkerCrashError) as excinfo:
            solver.step()
        crash = excinfo.value
        assert crash.worker_id == 1
        assert crash.phase == "predict"
        assert crash.exitcode == -signal.SIGKILL
        assert crash.worker_ids == [1]
        assert crash.shard == solver._pool._shard_range(1)


def test_respawn_recovers_bitwise_identical(serial_run):
    dt, serial_states = serial_run
    with gaussian_pulse_setup(
        elements=3, order=3, num_workers=2, on_worker_failure="respawn"
    ) as solver:
        solver.step(dt)
        _kill_worker(solver, 1)
        for _ in range(STEPS - 1):
            solver.step(dt)
        np.testing.assert_array_equal(solver.states, serial_states)
        record = solver.step_records[1]
        assert record.mode == "parallel"
        assert record.respawns == 1
        assert record.retries == 1
        assert record.crashes[0]["worker_id"] == 1
        # the pool is fully healed: further steps don't respawn
        assert solver.step_records[-1].respawns == 0


def test_serial_fallback_identical(serial_run):
    dt, serial_states = serial_run
    with gaussian_pulse_setup(
        elements=3, order=3, num_workers=2, on_worker_failure="serial"
    ) as solver:
        solver.step(dt)
        _kill_worker(solver, 0)
        for _ in range(STEPS - 1):
            solver.step(dt)
        np.testing.assert_array_equal(solver.states, serial_states)
        assert solver.num_workers == 1
        assert solver.step_records[1].mode == "serial-fallback"
        assert solver.step_records[1].crashes
        assert isinstance(solver.last_failure, WorkerCrashError)
        # later steps are plain serial
        assert solver.step_records[-1].mode == "serial"


def test_respawn_budget_exhausted():
    with gaussian_pulse_setup(
        elements=3, order=3, num_workers=2, on_worker_failure="respawn"
    ) as solver:
        solver.step()
        solver._pool.max_respawns = 0
        _kill_worker(solver, 0)
        with pytest.raises(WorkerCrashError, match="respawn budget"):
            solver.step()


def test_stale_reply_is_a_protocol_error():
    with gaussian_pulse_setup(elements=3, order=3, num_workers=2) as solver:
        pool = solver._ensure_pool()
        pool._out_queues[0].put(("ready", 0, "ready", 0.0))
        with pytest.raises(RuntimeError, match="expected 'predict' reply"):
            solver.step()


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2, reason="fault smoke needs >= 2 cores"
)
def test_quick_fault_smoke():
    """Cheap CI smoke: kill + respawn on the smallest viable setup."""
    with gaussian_pulse_setup(
        elements=2, order=2, num_workers=2, on_worker_failure="respawn"
    ) as solver:
        solver.step()
        _kill_worker(solver, 0)
        solver.step()
        assert solver.step_records[-1].respawns == 1
        assert np.isfinite(solver.states).all()
