"""The sharded solver must reproduce the serial path exactly.

The acceptance bound is 1e-12 relative; the design goal (redundant
cross-shard Riemann solves from identical inputs, single-owner state
writes) actually delivers bitwise-equal fields, which these tests pin
down where cheap.
"""

import numpy as np
import pytest

from repro.engine.solver import ADERDGSolver
from repro.mesh.grid import UniformGrid
from repro.pde import AcousticPDE
from repro.scenarios import LOH1Scenario, gaussian_pulse_setup

STEPS = 3


def relative_diff(a: np.ndarray, b: np.ndarray) -> float:
    return float(np.abs(a - b).max() / max(np.abs(b).max(), 1e-300))


@pytest.fixture(scope="module")
def serial_pulse():
    solver = gaussian_pulse_setup(elements=3, order=3)
    for _ in range(STEPS):
        solver.step()
    return solver


@pytest.mark.parametrize("num_workers", [2, 4])
def test_matches_serial_on_periodic_acoustic(serial_pulse, num_workers):
    with gaussian_pulse_setup(elements=3, order=3, num_workers=num_workers) as par:
        for _ in range(STEPS):
            par.step()
        assert par.t == serial_pulse.t
        assert relative_diff(par.states, serial_pulse.states) < 1e-12


def test_composes_with_batching(serial_pulse):
    with gaussian_pulse_setup(
        elements=3, order=3, num_workers=2, batch_size=5
    ) as par:
        for _ in range(STEPS):
            par.step()
        assert relative_diff(par.states, serial_pulse.states) < 1e-12


def test_loh1_with_source_and_receivers_matches_serial():
    serial = LOH1Scenario(elements=3, order=3)
    serial.run(t_end=0.04)
    with LOH1Scenario(elements=3, order=3, num_workers=3, batch_size=4) as par:
        par.run(t_end=0.04)
        assert par.solver.step_count == serial.solver.step_count
        assert relative_diff(par.solver.states, serial.solver.states) < 1e-12
        seis_serial = serial.seismograms()
        seis_par = par.seismograms()
        for label, (_, samples) in seis_serial.items():
            np.testing.assert_allclose(
                seis_par[label][1], samples, rtol=0, atol=1e-12
            )


def test_num_workers_clamped_and_one_is_serial():
    grid = UniformGrid((2, 1, 1), extent=(2.0, 1.0, 1.0))
    solver = ADERDGSolver(grid, AcousticPDE(), order=2, num_workers=8)
    try:
        assert solver.num_workers == 2  # clamped to the element count
    finally:
        solver.close()
    serial = ADERDGSolver(grid, AcousticPDE(), order=2, num_workers=1)
    assert serial._shared is None  # no pool machinery for one worker
    with pytest.raises(ValueError):
        ADERDGSolver(grid, AcousticPDE(), order=2, num_workers=0)


def test_close_detaches_and_is_idempotent():
    par = gaussian_pulse_setup(elements=3, order=3, num_workers=2)
    par.step()
    states_before = np.array(par.states)
    par.close()
    par.close()
    # diagnostics still work on the detached copy
    np.testing.assert_array_equal(par.states, states_before)
    assert par.max_abs() > 0.0


def test_last_step_timings_and_plan_exposed():
    with gaussian_pulse_setup(elements=3, order=3, num_workers=2) as par:
        assert par.shard_plan.num_shards == 2
        par.step()
        timings = par.last_step_timings
        assert set(timings.predict) == {0, 1}
        assert timings.wall_predict > 0.0
        assert timings.imbalance() >= 1.0


def test_worker_error_propagates():
    with gaussian_pulse_setup(elements=3, order=3, num_workers=2) as par:
        pool = par._ensure_pool()
        for queue in pool._cmd_queues:
            queue.put(("no-such-command",))
        with pytest.raises(RuntimeError, match="worker .* failed"):
            pool._collect("no-such-command", {0, 1}, {}, {})
        # the pool survives a failed command and can still step
        par.step(dt=1e-3)
        assert np.isfinite(par.states).all()


def test_stepping_after_close_raises():
    par = gaussian_pulse_setup(elements=3, order=3, num_workers=2)
    par.step(dt=1e-3)
    pool = par._pool
    par.close()
    with pytest.raises(RuntimeError):
        pool.step(0, 1e-3, {})


def test_colocated_sources_parallel_matches_serial():
    from repro.engine.source import GaussianDerivativeWavelet, PointSource

    def build(num_workers):
        pde = AcousticPDE()
        grid = UniformGrid((3, 3, 3))
        solver = ADERDGSolver(
            grid, pde, order=3, num_workers=num_workers, cfl=0.4
        )

        def init(points):
            v = np.zeros(points.shape[:-1] + (4,))
            return pde.embed(
                v, np.broadcast_to([1.0, 1.0], points.shape[:-1] + (2,))
            )

        solver.set_initial_condition(init)
        for scale in (1.0, 0.5):
            solver.add_point_source(
                PointSource(
                    position=np.array([0.5, 0.5, 0.5]),
                    amplitude=np.array([scale, 0.0, 0.0, 0.0]),
                    wavelet=GaussianDerivativeWavelet(k=0, t0=0.05, sigma=0.02),
                )
            )
        return solver

    serial = build(1)
    dt = serial.stable_dt()
    for _ in range(STEPS):
        serial.step(dt)
    assert serial.max_abs() > 0.0
    with build(2) as par:
        for _ in range(STEPS):
            par.step(dt)
        np.testing.assert_array_equal(par.states, serial.states)


def test_solver_close_clears_buffers_and_step_raises():
    par = gaussian_pulse_setup(elements=3, order=3, num_workers=2)
    par.step()
    par.close()
    assert par._buffers is None
    assert par._cur == 0
    assert par._shared is None
    assert par._pool is None
    with pytest.raises(RuntimeError, match="solver is closed"):
        par.step()


def test_step_timings_degrade_on_empty_dicts():
    from repro.parallel.pool import StepTimings

    empty = StepTimings({}, {})
    assert empty.wall_predict == 0.0
    assert empty.wall_correct == 0.0
    assert empty.busy() == {}
    assert empty.imbalance() == 1.0
    assert empty.phase_walls() == {
        "predict": 0.0, "riemann": 0.0, "correct": 0.0,
    }
    zero = StepTimings({0: 0.0}, {0: 0.0})
    assert zero.imbalance() == 1.0
