"""Shard-plan properties: partition, SFC contiguity, communication volume."""

import numpy as np
import pytest

from repro.mesh.grid import UniformGrid
from repro.mesh.sfc import peano_order, peano_segments
from repro.parallel.sharding import make_shard_plan


def test_peano_segments_partition_the_curve():
    shape = (9, 9, 9)
    segments = peano_segments(shape, 7)
    assert len(segments) == 7
    joined = np.concatenate(segments)
    np.testing.assert_array_equal(joined, peano_order(shape))
    sizes = [s.size for s in segments]
    assert max(sizes) - min(sizes) <= 1


def test_peano_segments_validation():
    with pytest.raises(ValueError):
        peano_segments((3, 3, 3), 0)
    with pytest.raises(ValueError):
        peano_segments((3, 3, 3), 28)


@pytest.mark.parametrize("num_shards", [1, 2, 4, 9])
def test_shard_plan_is_a_partition(num_shards):
    grid = UniformGrid((3, 3, 3))
    plan = make_shard_plan(grid, num_shards)
    all_elements = np.sort(np.concatenate(plan.shards))
    np.testing.assert_array_equal(all_elements, np.arange(grid.n_elements))
    for index, shard in enumerate(plan.shards):
        assert (plan.owner[shard] == index).all()
    assert plan.load_balance() < 1.5


def test_shards_are_connected_chunks():
    """Every shard is face-connected (the SFC locality property)."""
    grid = UniformGrid((9, 9, 9))
    plan = make_shard_plan(grid, 8)
    for shard in plan.shards:
        members = set(int(e) for e in shard)
        # BFS over face neighbors inside the shard
        seen = {int(shard[0])}
        frontier = [int(shard[0])]
        while frontier:
            e = frontier.pop()
            for d in range(3):
                for side in (0, 1):
                    nb = grid.neighbor(e, d, side)
                    if nb in members and nb not in seen:
                        seen.add(nb)
                        frontier.append(nb)
        assert seen == members


def test_cut_faces_small_for_sfc_vs_strided():
    """SFC sharding cuts far fewer faces than a worst-case partition."""
    grid = UniformGrid((9, 9, 9))
    sfc_plan = make_shard_plan(grid, 8)
    # round-robin (strided) partition: nearly every face is cut
    strided = tuple(
        np.arange(grid.n_elements)[k::8] for k in range(8)
    )
    strided_plan = make_shard_plan(
        grid, 8, traversal=np.concatenate(strided)
    )
    # rebuild owner for the strided layout by hand
    owner = np.empty(grid.n_elements, dtype=np.int64)
    for k, shard in enumerate(strided):
        owner[shard] = k
    object.__setattr__(strided_plan, "owner", owner)
    assert sfc_plan.cut_faces() < 0.5 * strided_plan.cut_faces()
    assert 0.0 < sfc_plan.cut_fraction() < 0.35


def test_shard_plan_stats_and_validation():
    grid = UniformGrid((3, 3, 3))
    plan = make_shard_plan(grid, 4)
    stats = plan.stats()
    assert stats["elements"] == 27
    assert stats["num_shards"] == 4
    assert stats["cut_faces"] == plan.cut_faces()
    assert stats["interior_faces"] == 81  # periodic: 3 faces per element
    with pytest.raises(ValueError):
        make_shard_plan(grid, 0)
    with pytest.raises(ValueError):
        make_shard_plan(grid, 28)
    with pytest.raises(ValueError):
        make_shard_plan(grid, 2, traversal=np.zeros(27, dtype=int))
