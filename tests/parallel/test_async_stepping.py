"""Barrier-free (``stepping="async"``) conformance and protocol tests.

The acceptance bound for async stepping is 1e-12 relative against the
serial solver (docs/stepping.md works through why the exchange is
bitwise in practice); these tests also pin the speculation lifecycle,
the telemetry fields and the constructor policy checks.
"""

import numpy as np
import pytest

from repro.engine.solver import ADERDGSolver
from repro.mesh.grid import UniformGrid
from repro.pde import AcousticPDE
from repro.scenarios import LOH1Scenario, gaussian_pulse_setup

STEPS = 3


def relative_diff(a: np.ndarray, b: np.ndarray) -> float:
    return float(np.abs(a - b).max() / max(np.abs(b).max(), 1e-300))


@pytest.fixture(scope="module")
def serial_pulse():
    solver = gaussian_pulse_setup(elements=3, order=3)
    for _ in range(STEPS):
        solver.step()
    return solver


@pytest.mark.parametrize("num_workers", [2, 3])
def test_async_matches_serial_on_periodic_acoustic(serial_pulse, num_workers):
    with gaussian_pulse_setup(
        elements=3, order=3, num_workers=num_workers, stepping="async"
    ) as par:
        for _ in range(STEPS):
            par.step()
        assert par.t == serial_pulse.t
        assert relative_diff(par.states, serial_pulse.states) < 1e-12


def test_async_run_pipelines_and_matches_serial(serial_pulse):
    """run() supplies next-step hints; speculation must hit, not perturb."""
    with gaussian_pulse_setup(
        elements=3, order=3, num_workers=2, batch_size=5, stepping="async"
    ) as par:
        par.run(t_end=serial_pulse.t + 1e-14, max_steps=STEPS)
        assert par.step_count == STEPS
        assert relative_diff(par.states, serial_pulse.states) < 1e-12
        # every step after the first reconciled a speculative predict
        assert par._pool.last_step_events.get("speculation") == "hit"


def test_async_loh1_with_source_and_receivers():
    serial = LOH1Scenario(elements=3, order=3)
    serial.run(t_end=0.04)
    with LOH1Scenario(
        elements=3, order=3, num_workers=2, batch_size=4, stepping="async"
    ) as par:
        par.run(t_end=0.04)
        assert par.solver.step_count == serial.solver.step_count
        assert relative_diff(par.solver.states, serial.solver.states) < 1e-12


def test_speculation_miss_is_transparent(serial_pulse):
    """A wrong hint must be drained and re-predicted without a trace."""
    with gaussian_pulse_setup(
        elements=3, order=3, num_workers=2, stepping="async"
    ) as par:
        dt = par.stable_dt()
        # hint with a deliberately wrong dt: the speculation that runs
        # after this step can never match the next step's real inputs
        par._step_parallel(dt, next_hint=(dt * 0.5, par._source_payload()))
        par.t += dt
        par.step_count += 1
        par.step()
        assert par._pool.last_step_events.get("speculation") == "miss"
        par.step()
        assert par.step_count == STEPS
        assert relative_diff(par.states, serial_pulse.states) < 1e-12


def test_step_record_carries_wait_and_publish():
    with gaussian_pulse_setup(
        elements=3, order=3, num_workers=2, stepping="async"
    ) as par:
        par.run(t_end=1.0, max_steps=2)
        rec = par.step_records[-1]
        assert rec.stepping == "async"
        assert set(rec.worker_wait) == {0, 1}
        assert set(rec.worker_publish) == {0, 1}
        assert all(v >= 0.0 for v in rec.worker_wait.values())
        row = rec.to_dict()
        assert row["stepping"] == "async"
        assert row["wait_total"] == pytest.approx(sum(rec.worker_wait.values()))
        assert set(row["worker_publish"]) == {"0", "1"}


def test_barrier_records_wait_but_not_publish():
    with gaussian_pulse_setup(elements=3, order=3, num_workers=2) as par:
        par.step()
        rec = par.step_records[-1]
        assert rec.stepping == "barrier"
        assert set(rec.worker_wait) == {0, 1}
        assert rec.worker_publish == {}


def test_serial_records_say_serial():
    solver = gaussian_pulse_setup(elements=3, order=3)
    solver.step()
    rec = solver.step_records[-1]
    assert rec.stepping == "serial"
    assert rec.worker_wait == {}


def _solver(**kwargs):
    return ADERDGSolver(
        UniformGrid((3, 3, 3)), AcousticPDE(), order=3, **kwargs
    )


def test_unknown_stepping_rejected():
    with pytest.raises(ValueError, match="stepping"):
        _solver(stepping="bogus")


def test_async_requires_face_sweep():
    with pytest.raises(ValueError, match="face_sweep"):
        _solver(num_workers=2, stepping="async", face_sweep=False)


def test_async_rejects_respawn():
    with pytest.raises(ValueError, match="respawn"):
        _solver(num_workers=2, stepping="async", on_worker_failure="respawn")


def test_dependency_graph_exposed():
    with gaussian_pulse_setup(
        elements=3, order=3, num_workers=2, stepping="async"
    ) as par:
        graph = par.dependency_graph
        assert graph is not None
        assert graph.num_shards == 2
        assert graph.n_slots == par.shard_plan.cut_faces()
