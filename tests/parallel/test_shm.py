"""Shared-memory bundle: create/attach round trip, cleanup semantics."""

import multiprocessing as mp

import numpy as np
import pytest

from repro.parallel.shm import SharedArrayBundle


def test_create_zero_initialized_and_indexable():
    with SharedArrayBundle.create({"a": (4, 5), "b": (2,)}) as bundle:
        assert bundle["a"].shape == (4, 5)
        assert (bundle["a"] == 0).all()
        assert bundle.nbytes == (20 + 2) * 8
        bundle["b"][...] = [1.0, 2.0]
        assert bundle.arrays["b"][1] == 2.0


def test_attach_sees_same_memory_in_process():
    bundle = SharedArrayBundle.create({"x": (3, 3)})
    try:
        other = SharedArrayBundle.attach(bundle.handles())
        bundle["x"][1, 1] = 7.5
        assert other["x"][1, 1] == 7.5
        other["x"][0, 0] = -1.0
        assert bundle["x"][0, 0] == -1.0
        other.close()  # non-owner close must not unlink
        assert bundle["x"][1, 1] == 7.5
    finally:
        bundle.close()


def _child_roundtrip(handles, queue):
    bundle = SharedArrayBundle.attach(handles)
    bundle["x"][...] *= 2.0
    queue.put(float(bundle["x"].sum()))
    bundle.close()


@pytest.mark.parametrize("start_method", ["fork", "spawn"])
def test_attach_across_processes(start_method):
    if start_method not in mp.get_all_start_methods():
        pytest.skip(f"{start_method} not available")
    context = mp.get_context(start_method)
    bundle = SharedArrayBundle.create({"x": (4,)})
    try:
        bundle["x"][...] = [1.0, 2.0, 3.0, 4.0]
        queue = context.Queue()
        process = context.Process(
            target=_child_roundtrip, args=(bundle.handles(), queue)
        )
        process.start()
        assert queue.get(timeout=60) == 20.0
        process.join(timeout=60)
        assert process.exitcode == 0
        # the child's writes are visible and the segment survived its exit
        np.testing.assert_array_equal(bundle["x"], [2.0, 4.0, 6.0, 8.0])
    finally:
        bundle.close()


def test_close_is_idempotent():
    bundle = SharedArrayBundle.create({"x": (2,)})
    bundle.close()
    bundle.close()
    assert not bundle.arrays
