"""The async dependency graph and the mailbox flux exchange.

Process-free tests: the graph builder is checked against shard plans
with known halo structure, and the face-sweep exchange (solve the
prefix, export/import via the mailbox) is pinned bitwise-equal to the
redundant-solve sweep it replaces.
"""

import numpy as np
import pytest

from repro.engine.facesweep import FaceSweep, direction_faces
from repro.mesh.grid import UniformGrid
from repro.parallel import build_dependency_graph, make_shard_plan
from repro.pde import AcousticPDE


def grid333():
    return UniformGrid((3, 3, 3), extent=(3.0, 3.0, 3.0))


# ---------------------------------------------------------------------------
# graph builder
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("workers", [2, 3, 4, 8])
def test_graph_matches_plan_invariants(workers):
    plan = make_shard_plan(grid333(), workers)
    graph = build_dependency_graph(plan)
    assert graph.num_shards == plan.num_shards
    # one mailbox slot per partition-cut face, each used exactly once
    assert graph.n_slots == plan.cut_faces()
    slots = graph.slot_of[graph.slot_of >= 0]
    assert sorted(slots.tolist()) == list(range(graph.n_slots))
    # neighbor relation is symmetric and irreflexive
    for w, nbrs in enumerate(graph.neighbors):
        assert w not in nbrs
        for v in nbrs:
            assert w in graph.neighbors[v]
    # providers/consumers are transposes of each other, inside neighbors
    for w in range(plan.num_shards):
        assert graph.providers[w] <= graph.neighbors[w]
        for v in graph.providers[w]:
            assert w in graph.consumers[v]


def test_graph_slots_follow_canonical_owner():
    plan = make_shard_plan(grid333(), 3)
    graph = build_dependency_graph(plan)
    owner = plan.owner
    seen = 0
    for d in range(3):
        df = direction_faces(plan.grid, d)
        both = np.nonzero((df.left >= 0) & (df.right >= 0))[0]
        for row in both:
            left, right = int(df.left[row]), int(df.right[row])
            slot = int(graph.slot_of[d, left])
            if owner[left] == owner[right]:
                assert slot == -1
                continue
            seen += 1
            # exporter = owner of the left (canonical) element
            assert int(graph.exporter[slot]) == owner[left]
            assert int(graph.importer[slot]) == owner[right]
    assert seen == graph.n_slots


def test_single_shard_has_no_dependencies():
    plan = make_shard_plan(grid333(), 1)
    graph = build_dependency_graph(plan)
    assert graph.n_slots == 0
    assert graph.edges() == []
    assert graph.neighbors == (frozenset(),)
    assert graph.stats()["exchanged_faces"] == 0


def test_two_element_periodic_line_is_fully_cut():
    """Known halo structure: 2 elements, 2 shards, periodic x."""
    grid = UniformGrid((2, 1, 1), extent=(2.0, 1.0, 1.0))
    plan = make_shard_plan(grid, 2)
    graph = build_dependency_graph(plan)
    # both x-faces sit between the two shards; y/z wrap self-to-self
    assert graph.n_slots == 2
    assert graph.neighbors == (frozenset({1}), frozenset({0}))
    assert graph.providers == (frozenset({1}), frozenset({0}))
    assert graph.edges() == [(0, 1)]
    # one face exported by each side
    assert sorted(graph.exporter.tolist()) == [0, 1]
    assert [graph.importer[s] for s in (0, 1)] == [
        1 - graph.exporter[0], 1 - graph.exporter[1]
    ]


def test_exchange_spec_carries_shared_layout():
    plan = make_shard_plan(grid333(), 2)
    graph = build_dependency_graph(plan)
    spec = graph.exchange_spec(1, plan.owner)
    assert spec.shard == 1
    assert spec.slot_of is graph.slot_of
    np.testing.assert_array_equal(spec.owner, plan.owner)


# ---------------------------------------------------------------------------
# face-sweep exchange: one solve + mailbox == redundant solve, bitwise
# ---------------------------------------------------------------------------


def _random_inputs(grid, pde, order, seed=7):
    rng = np.random.default_rng(seed)
    E, m = grid.n_elements, pde.nquantities
    n = order
    states = rng.normal(size=(E, n, n, n, m))
    states[..., pde.nvar:] = 1.0 + rng.random((E, n, n, n, pde.nparam))
    qface = rng.normal(size=(E, 3, 2, n, n, m))
    return states, qface


@pytest.mark.parametrize("workers", [2, 3])
def test_exchanged_fluxes_match_redundant_sweep(workers):
    grid, pde, order = grid333(), AcousticPDE(), 3
    plan = make_shard_plan(grid, workers)
    graph = build_dependency_graph(plan)
    states, qface = _random_inputs(grid, pde, order)
    mailbox = np.zeros((max(1, graph.n_slots), order, order, pde.nquantities))

    sweeps = []
    for w, shard in enumerate(plan.shards):
        sweep = FaceSweep(
            grid, pde, order, elements=shard,
            exchange=graph.exchange_spec(w, plan.owner),
        )
        sweep.sweep(states, qface)
        sweep.export_fluxes(mailbox)
        sweeps.append(sweep)

    for w, shard in enumerate(plan.shards):
        sweeps[w].import_fluxes(mailbox)
        reference = FaceSweep(grid, pde, order, elements=shard)
        reference.sweep(states, qface)
        n, m = order, pde.nquantities
        got = np.empty((len(shard), 3, 2, n, n, m))
        want = np.empty_like(got)
        sweeps[w].gather_fstar(np.asarray(shard), got)
        reference.gather_fstar(np.asarray(shard), want)
        np.testing.assert_array_equal(got, want)


def test_export_import_require_exchange_spec():
    grid, pde = grid333(), AcousticPDE()
    sweep = FaceSweep(grid, pde, 3)
    mailbox = np.zeros((1, 3, 3, pde.nquantities))
    with pytest.raises(RuntimeError, match="exchange"):
        sweep.export_fluxes(mailbox)
    with pytest.raises(RuntimeError, match="exchange"):
        sweep.import_fluxes(mailbox)
