"""Cross-backend conformance: every executor must agree with NumPy.

The compiled backend runs *generated* kernels (see
``repro.codegen.lowering``); this suite pins them against the seed
NumPy path over the matrix ``backend x variant x face_sweep x
{serial, parallel}``, on both quick scenarios (acoustic Gaussian,
curvilinear-elastic LOH1) at two orders each.

Backends under test:

* ``"numpy"`` -- the reference; its legs assert *bitwise* identity
  (the executor refactor must not perturb the seed path at all).
* ``"generated"`` -- the compiled backend's generated source executed
  as plain Python (``CompiledExecutor(jit=None)``): identical code to
  the Numba backend minus the JIT, so it runs everywhere.
* ``"numba"`` -- the jitted backend; skipped when Numba is absent.

Generated kernels reassociate a handful of scalar operations (e.g.
``f * (1/h)`` vs ``f / h``), so their legs assert round-off-level
agreement instead of bitwise equality.
"""

import numpy as np
import pytest

from repro.codegen.executor import numba_available, resolve_executor
from repro.scenarios.gaussian import gaussian_pulse_setup
from repro.scenarios.loh1 import LOH1Scenario

#: rtol/atol of the generated-vs-numpy comparison; the kernels perform
#: the same contractions in the same order, so only scalar
#: reassociation round-off remains
RTOL, ATOL = 1e-10, 1e-13

BACKENDS = ["numpy", "generated", "numba"]


def _backend_or_skip(name: str):
    if name == "numba" and not numba_available():
        pytest.skip("numba not installed")
    return name


def _assert_agrees(result, reference, backend: str) -> None:
    if backend == "numpy":
        np.testing.assert_array_equal(result, reference)
    else:
        scale = float(np.max(np.abs(reference))) or 1.0
        np.testing.assert_allclose(
            result, reference, rtol=RTOL, atol=ATOL * scale
        )


# ---------------------------------------------------------------------------
# Gaussian pulse (acoustic, periodic) -- serial, two orders, both families
# ---------------------------------------------------------------------------


def _run_gaussian(backend, order, variant, steps=2, **kwargs):
    solver = gaussian_pulse_setup(
        elements=2, order=order, variant=variant, backend=backend, **kwargs
    )
    with solver:
        dt = 0.5 * solver.stable_dt()
        for _ in range(steps):
            solver.step(dt)
        return solver.states.copy()


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("variant", ["splitck", "generic"])
@pytest.mark.parametrize("order", [3, 4])
def test_gaussian_serial(backend, variant, order):
    backend = _backend_or_skip(backend)
    reference = _run_gaussian("numpy", order, variant)
    result = _run_gaussian(backend, order, variant)
    _assert_agrees(result, reference, backend)


@pytest.mark.parametrize("backend", ["generated", "numba"])
@pytest.mark.parametrize("variant", ["aosoa", "log", "transpose_uf"])
def test_gaussian_all_variants(backend, variant):
    """Every layout variant lowers to one of the two loop families."""
    backend = _backend_or_skip(backend)
    reference = _run_gaussian("numpy", 3, variant)
    result = _run_gaussian(backend, 3, variant)
    _assert_agrees(result, reference, backend)


# ---------------------------------------------------------------------------
# face_sweep x {serial, parallel}
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("face_sweep", [True, False])
def test_gaussian_face_sweep_modes(backend, face_sweep):
    """Both Riemann paths agree across backends.

    ``face_sweep=False`` is the legacy per-element loop, which always
    runs NumPy -- so that leg also checks that a compiled solver's
    *sweep* path stays within round-off of the legacy loop.
    """
    backend = _backend_or_skip(backend)
    reference = _run_gaussian("numpy", 3, "splitck", face_sweep=True)
    result = _run_gaussian(backend, 3, "splitck", face_sweep=face_sweep)
    if backend == "numpy" and not face_sweep:
        # legacy vs sweep on the same backend: bitwise by design
        np.testing.assert_array_equal(result, reference)
    else:
        _assert_agrees(result, reference, backend)


@pytest.mark.parametrize("backend", BACKENDS)
def test_gaussian_parallel(backend):
    """Sharded workers resolve the backend per process and still agree."""
    backend = _backend_or_skip(backend)
    reference = _run_gaussian("numpy", 3, "splitck")
    result = _run_gaussian(backend, 3, "splitck", num_workers=2, batch_size=4)
    _assert_agrees(result, reference, backend)


# ---------------------------------------------------------------------------
# LOH1 (curvilinear elastic m = 21, point source, reflective walls)
# ---------------------------------------------------------------------------


def _run_loh1(backend, order, steps=2, **kwargs):
    scenario = LOH1Scenario(
        elements=2, order=order, backend=backend, batch_size=4, **kwargs
    )
    with scenario.solver:
        dt = 0.5 * scenario.solver.stable_dt()
        for _ in range(steps):
            scenario.solver.step(dt)
        return scenario.solver.states.copy()


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("order", [3, 4])
def test_loh1_serial(backend, order):
    backend = _backend_or_skip(backend)
    reference = _run_loh1("numpy", order)
    result = _run_loh1(backend, order)
    _assert_agrees(result, reference, backend)


@pytest.mark.parametrize("backend", ["generated", "numba"])
def test_loh1_parallel(backend):
    backend = _backend_or_skip(backend)
    reference = _run_loh1("numpy", 3)
    result = _run_loh1(backend, 3, num_workers=2)
    _assert_agrees(result, reference, backend)


# ---------------------------------------------------------------------------
# backend bookkeeping along the way
# ---------------------------------------------------------------------------


def test_compiled_backend_reports_itself():
    """Compiled legs stamp their name and compile time into telemetry."""
    solver = gaussian_pulse_setup(elements=2, order=3, backend="generated")
    with solver:
        solver.step(1e-3)
        record = solver.step_records[-1]
        assert record.backend == "generated"
        assert solver.backend == "generated"
        assert solver.executor.is_compiled
        # generated kernels executed: no fallback reasons recorded
        assert solver.executor.stats.fallbacks == {}
        solver.step(1e-3)
        # after warm-up no new compile seconds accrue
        assert "compile" not in solver.last_step_timings


def test_numpy_backend_timings_unchanged():
    """The numpy backend's timing keys are exactly the seed's."""
    solver = gaussian_pulse_setup(elements=2, order=3, backend="numpy")
    with solver:
        solver.step(1e-3)
        assert set(solver.last_step_timings) == {"predict", "riemann", "correct"}
        assert solver.step_records[-1].backend == "numpy"
        assert solver.step_records[-1].compile_s == 0.0


def test_executor_instance_as_backend():
    """An Executor instance passes straight through resolution."""
    from repro.codegen.compiled import CompiledExecutor

    executor = CompiledExecutor()
    assert resolve_executor(executor) is executor
    solver = gaussian_pulse_setup(elements=2, order=3, backend=executor)
    with solver:
        assert solver.executor is executor
        solver.step(1e-3)


# ---------------------------------------------------------------------------
# fused whole-step execution: fuse x {serial, barrier, async} x scenarios
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", ["generated", "numba"])
@pytest.mark.parametrize("variant", ["splitck", "generic"])
def test_gaussian_fused_serial(backend, variant):
    """The fused serial step matches NumPy; fuse=False matches too."""
    backend = _backend_or_skip(backend)
    reference = _run_gaussian("numpy", 3, variant)
    fused = _run_gaussian(backend, 3, variant, fuse=True)
    phase = _run_gaussian(backend, 3, variant, fuse=False)
    _assert_agrees(fused, reference, backend)
    _assert_agrees(phase, reference, backend)


@pytest.mark.parametrize("backend", ["generated", "numba"])
@pytest.mark.parametrize("stepping", ["barrier", "async"])
def test_gaussian_fused_parallel(backend, stepping):
    backend = _backend_or_skip(backend)
    reference = _run_gaussian("numpy", 3, "splitck")
    result = _run_gaussian(
        backend, 3, "splitck", num_workers=2, batch_size=4,
        stepping=stepping, fuse=True,
    )
    _assert_agrees(result, reference, backend)


@pytest.mark.parametrize("backend", ["generated", "numba"])
def test_loh1_fused_serial(backend):
    backend = _backend_or_skip(backend)
    reference = _run_loh1("numpy", 3)
    result = _run_loh1(backend, 3, fuse=True)
    _assert_agrees(result, reference, backend)


@pytest.mark.parametrize("backend", ["generated", "numba"])
@pytest.mark.parametrize("stepping", ["barrier", "async"])
def test_loh1_fused_parallel(backend, stepping):
    backend = _backend_or_skip(backend)
    reference = _run_loh1("numpy", 3)
    result = _run_loh1(
        backend, 3, num_workers=2, stepping=stepping, fuse=True
    )
    _assert_agrees(result, reference, backend)


def test_fused_step_telemetry():
    """A fused step stamps the fused flag and zero steady pack/unpack."""
    solver = gaussian_pulse_setup(elements=2, order=3, backend="generated",
                                  fuse=True)
    with solver:
        solver.step(1e-3)
        first = solver.step_records[-1]
        assert first.fused
        assert first.phase_walls.get("fused", 0.0) > 0.0
        assert solver.executor.stats.fused_steps == 1
        solver.step(1e-3)
        steady = solver.step_records[-1]
        # steady state: the resident stack carries the step, no layout
        # round-trips
        assert steady.pack_calls == 0
        assert steady.unpack_calls == 0
        assert solver.executor.stats.pack_bytes_avoided > 0


def test_numpy_backend_never_fuses():
    """fuse='auto' on the NumPy executor stays phase-wise."""
    solver = gaussian_pulse_setup(elements=2, order=3, backend="numpy")
    with solver:
        solver.step(1e-3)
        assert not solver.step_records[-1].fused
        assert solver.executor.stats.fused_steps == 0


def test_fuse_requires_face_sweep():
    with pytest.raises(ValueError, match="face_sweep"):
        gaussian_pulse_setup(
            elements=2, order=3, backend="generated",
            fuse=True, face_sweep=False,
        )


def test_fused_fallback_on_unlowerable_solver():
    """A Riemann solver the lowering lacks degrades to phase-wise."""
    solver = gaussian_pulse_setup(
        elements=2, order=3, backend="generated", riemann="upwind",
        fuse=True,
    )
    reference = gaussian_pulse_setup(
        elements=2, order=3, backend="numpy", riemann="upwind"
    )
    with solver, reference:
        dt = 1e-3
        for target in (solver, reference):
            for _ in range(2):
                target.step(dt)
        assert solver.executor.stats.fused_steps == 0
        assert solver.executor.stats.phase_steps > 0
        assert not solver.step_records[-1].fused
        scale = float(np.max(np.abs(reference.states))) or 1.0
        np.testing.assert_allclose(
            solver.states, reference.states, rtol=RTOL, atol=ATOL * scale
        )
