"""Backend resolution: the env override is read once, then pinned.

``REPRO_BACKEND`` re-routes ``backend="auto"`` requests; the hazard is
*when* it is read.  The contract:
:func:`~repro.codegen.executor.resolve_backend_name` consults the
environment exactly once at resolve time and returns a concrete name,
solvers pin that name at construction (``solver.backend``, reported in
every ``StepRecord.backend``), worker processes receive the pinned
name -- an env change mid-process never silently re-routes running
work, and the service layer pins per *job spec* at validation.
"""

import pytest

from repro.codegen.executor import (
    NumpyExecutor,
    numba_available,
    resolve_backend_name,
)
from repro.scenarios import gaussian_pulse_setup


def test_concrete_names_pass_through(monkeypatch):
    # a concrete request ignores the env override entirely
    monkeypatch.setenv("REPRO_BACKEND", "generated")
    assert resolve_backend_name("numpy") == "numpy"
    assert resolve_backend_name("generated") == "generated"


def test_instance_resolves_to_its_name(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "generated")
    assert resolve_backend_name(NumpyExecutor()) == "numpy"


def test_auto_honors_env_once(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "generated")
    assert resolve_backend_name("auto") == "generated"
    monkeypatch.setenv("REPRO_BACKEND", "numpy")
    assert resolve_backend_name("auto") == "numpy"


def test_auto_without_env_matches_availability(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    expected = "numba" if numba_available() else "numpy"
    assert resolve_backend_name("auto") == expected


def test_unknown_name_raises():
    with pytest.raises(ValueError, match="unknown backend"):
        resolve_backend_name("fortran")


def test_bad_env_value_names_the_variable(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "fortran")
    with pytest.raises(ValueError, match="REPRO_BACKEND"):
        resolve_backend_name("auto")


def test_solver_pins_backend_at_construction(monkeypatch):
    """An env flip after construction changes nothing the solver reports."""
    monkeypatch.setenv("REPRO_BACKEND", "generated")
    solver = gaussian_pulse_setup(elements=2, order=2, backend="auto")
    assert solver.backend == "generated"
    monkeypatch.setenv("REPRO_BACKEND", "numpy")
    solver.step()
    assert solver.backend == "generated"
    assert solver.step_records[-1].backend == "generated"
    assert solver._worker_backend() == "generated"


def test_step_record_reports_resolved_backend(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    solver = gaussian_pulse_setup(elements=2, order=2, backend="auto")
    solver.step()
    # never the "auto" request -- always the concrete resolved name
    assert solver.step_records[-1].backend != "auto"
    assert solver.step_records[-1].backend == solver.backend


def test_worker_backend_forwards_custom_executor_by_name(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    solver = gaussian_pulse_setup(elements=2, order=2, backend=NumpyExecutor())
    assert solver._worker_backend() == "numpy"
