"""Property-based invariants of KernelPlan (hypothesis; optional skip).

Two layers of properties:

* **synthetic plans** built op-by-op through :class:`PlanRecorder` with
  hypothesis-drawn byte volumes -- cheap, so hundreds of examples pin
  the aggregation algebra (non-negativity, additivity over ops, scope
  accounting, undeclared-buffer rejection);
* **real plans** recorded from actual kernel runs over drawn
  ``(order, variant)`` pairs -- fewer examples, but the invariants hold
  on the plans the machine model actually consumes, and rendering plus
  lowering are deterministic functions of the spec.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.codegen.generator import KernelGenerator  # noqa: E402
from repro.codegen.plan import (  # noqa: E402
    BufferAccess,
    GemmOp,
    PlanRecorder,
    PointwiseOp,
    TransposeOp,
)
from repro.core.spec import VARIANTS, KernelSpec  # noqa: E402
from repro.machine.isa import FlopCounts  # noqa: E402
from repro.pde import AcousticPDE  # noqa: E402

# ---------------------------------------------------------------------------
# synthetic plans: the aggregation algebra
# ---------------------------------------------------------------------------

_SCOPES = st.sampled_from(["input", "output", "temp", "const"])
_BYTES = st.integers(min_value=0, max_value=1 << 30)
_VOLUME = st.floats(min_value=0.0, max_value=1e12, allow_nan=False)
_NAMES = st.lists(
    st.text(alphabet="abcdefgh", min_size=1, max_size=6),
    min_size=1, max_size=6, unique=True,
)


@st.composite
def recorded_plans(draw):
    """A PlanRecorder fed random buffers and pointwise/transpose ops."""
    spec = KernelSpec(order=4, nvar=5, nparam=0)
    rec = PlanRecorder("synthetic", spec)
    names = draw(_NAMES)
    for name in names:
        rec.buffer(name, draw(_BYTES), draw(_SCOPES))
    n_ops = draw(st.integers(min_value=0, max_value=8))
    for i in range(n_ops):
        kind = draw(st.sampled_from(["pointwise", "transpose"]))
        if kind == "pointwise":
            accesses = tuple(
                BufferAccess(name, read_bytes=draw(_VOLUME),
                             write_bytes=draw(_VOLUME))
                for name in draw(
                    st.lists(st.sampled_from(names), min_size=1,
                             max_size=3, unique=True)
                )
            )
            rec.pointwise(f"op{i}", FlopCounts(scalar=draw(_VOLUME)), accesses)
        else:
            rec.transpose(
                f"op{i}", draw(st.sampled_from(names)),
                draw(st.sampled_from(names)), draw(_VOLUME),
            )
    return rec.finish()


@given(recorded_plans())
@settings(max_examples=100, deadline=None)
def test_aggregates_nonnegative_and_additive(plan):
    flops = plan.flop_counts()
    traffic = plan.traffic()
    for width in (flops.scalar, flops.v128, flops.v256, flops.v512):
        assert width >= 0.0
    assert traffic.read_bytes >= 0.0 and traffic.write_bytes >= 0.0
    # plan totals are exactly the op-by-op sums
    assert flops == sum((op.flops() for op in plan.ops), FlopCounts())
    assert traffic.read_bytes == sum(op.traffic().read_bytes for op in plan.ops)
    assert traffic.write_bytes == sum(op.traffic().write_bytes for op in plan.ops)


@given(recorded_plans())
@settings(max_examples=100, deadline=None)
def test_scope_accounting_partitions_footprint(plan):
    scoped = {s: plan.bytes_in_scope(s) for s in ("input", "output", "temp", "const")}
    assert all(nbytes >= 0 for nbytes in scoped.values())
    assert plan.temp_footprint_bytes == scoped["temp"]
    assert plan.total_footprint_bytes == sum(scoped.values())


@given(
    recorded_plans(),
    st.text(alphabet="xyz", min_size=1, max_size=4),
    st.sampled_from(["pointwise", "transpose", "check"]),
)
@settings(max_examples=60, deadline=None)
def test_undeclared_buffers_rejected(plan, rogue, op_kind):
    rec = PlanRecorder("synthetic", plan.spec)
    for buf in plan.buffers.values():
        rec.buffer(buf.name, buf.nbytes, buf.scope)
    hypothesis.assume(rogue not in plan.buffers)
    with pytest.raises(ValueError, match="unregistered buffer"):
        if op_kind == "pointwise":
            rec.pointwise("bad", FlopCounts(), (BufferAccess(rogue, 8.0),))
        elif op_kind == "transpose":
            rec.transpose("bad", rogue, rogue, 8.0)
        else:
            rec._check_buffers(rogue)


# ---------------------------------------------------------------------------
# real plans: recorded kernels and deterministic rendering/lowering
# ---------------------------------------------------------------------------

_REAL = st.tuples(
    st.integers(min_value=2, max_value=4), st.sampled_from(VARIANTS)
)


def _generator(order: int) -> KernelGenerator:
    pde = AcousticPDE()
    spec = KernelSpec(order=order, nvar=pde.nvar, nparam=pde.nparam)
    return KernelGenerator(spec, pde)


@given(_REAL)
@settings(max_examples=8, deadline=None)
def test_recorded_plan_invariants(params):
    order, variant = params
    plan = _generator(order).plan(variant)
    flops = plan.flop_counts()
    for width in (flops.scalar, flops.v128, flops.v256, flops.v512):
        assert width >= 0.0
    assert plan.traffic().total_bytes > 0.0
    assert plan.temp_footprint_bytes >= 0
    assert plan.total_footprint_bytes >= plan.temp_footprint_bytes
    for op in plan.ops:
        assert isinstance(op, (GemmOp, PointwiseOp, TransposeOp))
        for access in op.accesses():
            assert access.buffer in plan.buffers
    for m, n, k, batch in plan.gemm_shapes():
        assert m > 0 and n > 0 and k > 0 and batch > 0


@given(_REAL)
@settings(max_examples=6, deadline=None)
def test_render_and_lowering_deterministic(params):
    order, variant = params
    first, second = _generator(order), _generator(order)
    assert first.render(variant) == second.render(variant)
    assert first.lower(variant) == second.lower(variant)
